module gokoala

go 1.22
