package gokoala

import (
	"fmt"
	"math/rand"

	"gokoala/internal/peps"
	"gokoala/internal/tensor"
)

// Sample draws one computational-basis bit string from the state's Born
// distribution using the chain rule: sites are measured in row-major
// order, and the marginal probability of each outcome is computed by a
// boundary contraction of the two-layer network with the already-fixed
// sites projected and the remaining sites traced. This is the standard
// tensor-network sampling scheme for circuit simulation; cost is one
// two-layer contraction per site.
func (q *QuantumState) Sample(rng *rand.Rand, opts ...Option) []int {
	c := q.cfg.withOverrides(opts)
	n := q.Rows() * q.Cols()
	bits := make([]int, n)
	opt := peps.TwoLayerBMPS{M: c.m(), Strategy: c.strategy()}

	// work holds the state with measured sites projected; unmeasured
	// sites keep their physical legs, which the two-layer contraction
	// traces over (computing the marginal).
	work := q.state.ShallowClone()
	norm := real(work.Inner(work, opt))
	if norm <= 0 {
		panic("gokoala: cannot sample from a state with non-positive norm")
	}
	for s := 0; s < n; s++ {
		r, col := q.state.Coords(s)
		// Marginal of bit 0 at site s given previous outcomes.
		zero := projectSite(work, r, col, 0)
		p0 := real(zero.Inner(zero, opt)) / norm
		if p0 < 0 {
			p0 = 0
		}
		if p0 > 1 {
			p0 = 1
		}
		if rng.Float64() < p0 {
			bits[s] = 0
			work = zero
			norm *= p0
		} else {
			bits[s] = 1
			work = projectSite(work, r, col, 1)
			norm *= 1 - p0
		}
		if norm <= 0 {
			// The remaining conditional distribution is numerically
			// degenerate; fill the rest uniformly.
			for t := s + 1; t < n; t++ {
				bits[t] = rng.Intn(2)
			}
			break
		}
	}
	return bits
}

// SampleMany draws k independent bit strings.
func (q *QuantumState) SampleMany(rng *rand.Rand, k int, opts ...Option) [][]int {
	out := make([][]int, k)
	for i := range out {
		out[i] = q.Sample(rng, opts...)
	}
	return out
}

// projectSite returns a shallow copy of p with site (r, c)'s physical
// leg contracted against |bit>.
func projectSite(p *peps.PEPS, r, c, bit int) *peps.PEPS {
	out := p.ShallowClone()
	t := p.Site(r, c)
	d := t.Dim(4)
	if bit < 0 || bit >= d {
		panic(fmt.Sprintf("gokoala: bit %d out of physical range %d", bit, d))
	}
	v := tensor.New(d)
	v.Set(1, bit)
	proj := p.Engine().Einsum("uldrp,p->uldr", t, v)
	sh := proj.Shape()
	out.SetSite(r, c, proj.Reshape(sh[0], sh[1], sh[2], sh[3], 1))
	return out
}
