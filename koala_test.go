package gokoala

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"gokoala/internal/backend"
	"gokoala/internal/dist"
	"gokoala/internal/quantum"
	"gokoala/internal/statevector"
)

func TestPaperExampleRuns(t *testing.T) {
	// The section V-A example end to end.
	q := ComputationalZeros(2, 3)
	q.ApplyOperator(quantum.Y(), []int{1})
	q.ApplyOperator(quantum.CX(), []int{1, 4}, WithRank(2))
	h := quantum.ObservableZZ(3, 4).Add(quantum.ObservableX(1).Scale(0.2))
	got := q.Expectation(h)
	// Y then CX(1->4): Z3 Z4 = -1 on |..1..1..>, X on |1> gives 0.
	if cmplx.Abs(got-(-1)) > 1e-9 {
		t.Fatalf("expectation = %v, want -1", got)
	}
}

func TestFacadeMatchesStateVector(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := ComputationalZeros(2, 2)
	sv := statevector.Zeros(4)
	gates := []quantum.TrotterGate{
		{Sites: []int{0}, Gate: quantum.H()},
		{Sites: []int{0, 1}, Gate: quantum.CX()},
		{Sites: []int{2}, Gate: quantum.Ry(0.8)},
		{Sites: []int{2, 3}, Gate: quantum.RandomUnitary(rng, 4)},
		{Sites: []int{1, 3}, Gate: quantum.ISwap()},
	}
	q.ApplyCircuit(gates)
	for _, g := range gates {
		sv.ApplyGate(g)
	}
	for i := 0; i < 16; i++ {
		bits := []int{i >> 3 & 1, i >> 2 & 1, i >> 1 & 1, i & 1}
		want := sv.Amplitude(bits)
		got := q.Amplitude(bits, WithContractionBond(64), WithExplicitSVD())
		if cmplx.Abs(got-want) > 1e-9 {
			t.Fatalf("amplitude(%v) = %v, want %v", bits, got, want)
		}
	}
	if n := q.Norm(WithContractionBond(64), WithExplicitSVD()); math.Abs(n-1) > 1e-9 {
		t.Fatalf("norm = %g", n)
	}
	obs := quantum.TransverseFieldIsing(2, 2, -1, -3.5)
	want := real(sv.Expectation(obs))
	got := real(q.Expectation(obs, WithContractionBond(64)))
	if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
		t.Fatalf("expectation %g, want %g", got, want)
	}
}

func TestProbabilityNormalizes(t *testing.T) {
	q := ComputationalZeros(2, 2)
	q.ApplyOperator(quantum.H(), []int{0})
	q.ApplyOperator(quantum.CX(), []int{0, 1})
	p00 := q.Probability([]int{0, 0, 0, 0})
	p11 := q.Probability([]int{1, 1, 0, 0})
	if math.Abs(p00-0.5) > 1e-9 || math.Abs(p11-0.5) > 1e-9 {
		t.Fatalf("Bell probabilities %g %g", p00, p11)
	}
	if p := q.Probability([]int{0, 1, 0, 0}); p > 1e-12 {
		t.Fatalf("forbidden outcome probability %g", p)
	}
}

func TestFidelitySelfAndOrthogonal(t *testing.T) {
	a := ComputationalZeros(2, 2)
	if f := a.Fidelity(a.Clone()); math.Abs(f-1) > 1e-9 {
		t.Fatalf("self fidelity %g", f)
	}
	b := ComputationalBasis(2, 2, []int{1, 0, 0, 0})
	if f := a.Fidelity(b); f > 1e-9 {
		t.Fatalf("orthogonal fidelity %g", f)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	a := ComputationalZeros(2, 2)
	b := a.Clone()
	b.ApplyOperator(quantum.X(), []int{0})
	if f := a.Fidelity(b); f > 1e-9 {
		t.Fatalf("clone mutation leaked: fidelity %g", f)
	}
	if f := a.Fidelity(a); math.Abs(f-1) > 1e-9 {
		t.Fatalf("original damaged: %g", f)
	}
}

func TestFacadeOnDistributedBackend(t *testing.T) {
	grid := dist.NewGrid(dist.Stampede2(16))
	q := ComputationalZeros(2, 2, WithBackend(backend.NewDist(grid, true)))
	q.ApplyOperator(quantum.H(), []int{0})
	q.ApplyOperator(quantum.CX(), []int{0, 1})
	if p := q.Probability([]int{1, 1, 0, 0}); math.Abs(p-0.5) > 1e-8 {
		t.Fatalf("dist-backend probability %g", p)
	}
	if grid.Snapshot().ParallelFlops == 0 {
		t.Fatal("distributed execution was not metered")
	}
}

func TestInvalidOperatorArityPanics(t *testing.T) {
	q := ComputationalZeros(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	q.ApplyOperator(quantum.X(), []int{0, 1, 2})
}

func TestSampleMatchesBornDistribution(t *testing.T) {
	// Bell pair on sites 0,1 plus |+> on site 2: outcomes 00x, 11x each
	// with probability 1/4.
	q := ComputationalZeros(1, 3)
	q.ApplyOperator(quantum.H(), []int{0})
	q.ApplyOperator(quantum.CX(), []int{0, 1})
	q.ApplyOperator(quantum.H(), []int{2})

	rng := rand.New(rand.NewSource(2))
	const trials = 2000
	counts := map[[3]int]int{}
	for i := 0; i < trials; i++ {
		b := q.Sample(rng)
		counts[[3]int{b[0], b[1], b[2]}]++
	}
	// Forbidden outcomes (bit0 != bit1) must never appear.
	for k, c := range counts {
		if k[0] != k[1] && c > 0 {
			t.Fatalf("sampled forbidden outcome %v %d times", k, c)
		}
	}
	// Allowed outcomes each ~ trials/4 within 5 sigma.
	sigma := math.Sqrt(trials * 0.25 * 0.75)
	for _, k := range [][3]int{{0, 0, 0}, {0, 0, 1}, {1, 1, 0}, {1, 1, 1}} {
		c := float64(counts[k])
		if math.Abs(c-trials/4.0) > 5*sigma {
			t.Fatalf("outcome %v count %v deviates from %v", k, c, trials/4.0)
		}
	}
}

func TestSampleDeterministicState(t *testing.T) {
	q := ComputationalBasis(2, 2, []int{1, 0, 1, 1})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5; i++ {
		b := q.Sample(rng)
		want := []int{1, 0, 1, 1}
		for j := range b {
			if b[j] != want[j] {
				t.Fatalf("sample %v, want %v", b, want)
			}
		}
	}
}

func TestSampleManyCount(t *testing.T) {
	q := ComputationalZeros(1, 2)
	rng := rand.New(rand.NewSource(4))
	s := q.SampleMany(rng, 7)
	if len(s) != 7 {
		t.Fatalf("got %d samples", len(s))
	}
}
