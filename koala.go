// Package gokoala is the public facade of the library: a PEPS-based
// quantum state with the operator-application and measurement interface
// of the paper's Koala library (section V-A), assembled from the
// internal packages. The facade owns sensible defaults (QR-SVD updates,
// implicit randomized SVD contraction with caching) so that typical use
// reads like the paper's Python example:
//
//	q := gokoala.ComputationalZeros(2, 3)
//	q.ApplyOperator(quantum.Y(), []int{1})
//	q.ApplyOperator(quantum.CX(), []int{1, 4}, gokoala.WithRank(2))
//	h := quantum.ObservableZZ(3, 4).Add(quantum.ObservableX(1).Scale(0.2))
//	e := q.Expectation(h)
//
// Lower-level control (engines, einsumsvd strategies, contraction
// options) remains available through the internal packages; the facade
// accepts those types directly where it matters.
package gokoala

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"gokoala/internal/backend"
	"gokoala/internal/einsumsvd"
	"gokoala/internal/peps"
	"gokoala/internal/quantum"
	"gokoala/internal/tensor"
)

// QuantumState is a 2-D lattice quantum state represented as a PEPS.
type QuantumState struct {
	state *peps.PEPS
	cfg   config
}

type config struct {
	engine       backend.Engine
	rank         int
	contractBond int
	seed         int64
	explicitSVD  bool
	useCache     bool
	normalize    bool
}

// Option configures a QuantumState or a single operation.
type Option func(*config)

// WithBackend selects the tensor engine (default: the dense sequential
// engine; use backend.NewDist for the simulated distributed engine).
func WithBackend(e backend.Engine) Option { return func(c *config) { c.engine = e } }

// WithRank caps the bond dimension kept by two-site updates (default 0:
// exact application, bonds grow).
func WithRank(r int) Option { return func(c *config) { c.rank = r } }

// WithContractionBond sets the boundary bond dimension m used by
// expectation values, amplitudes and norms (default: max(4, rank^2)).
func WithContractionBond(m int) Option { return func(c *config) { c.contractBond = m } }

// WithSeed seeds the randomized-SVD sketches (default 1).
func WithSeed(seed int64) Option { return func(c *config) { c.seed = seed } }

// WithExplicitSVD switches contraction from implicit randomized SVD
// (IBMPS) to explicit truncated SVD (BMPS).
func WithExplicitSVD() Option { return func(c *config) { c.explicitSVD = true } }

// WithoutCache disables the intermediate caching of expectation values
// (paper section IV-B); on by default.
func WithoutCache() Option { return func(c *config) { c.useCache = false } }

// WithNormalizedUpdates rescales site tensors after every update,
// folding factors into the state's global log-scale. Recommended for
// long imaginary-time evolutions.
func WithNormalizedUpdates() Option { return func(c *config) { c.normalize = true } }

func newConfig(opts []Option) config {
	c := config{seed: 1, useCache: true}
	for _, o := range opts {
		o(&c)
	}
	if c.engine == nil {
		c.engine = backend.NewDense()
	}
	return c
}

func (c config) withOverrides(opts []Option) config {
	for _, o := range opts {
		o(&c)
	}
	return c
}

func (c config) strategy() einsumsvd.Strategy {
	if c.explicitSVD {
		return einsumsvd.Explicit{}
	}
	return einsumsvd.ImplicitRand{Rng: rand.New(rand.NewSource(c.seed))}
}

func (c config) m() int {
	if c.contractBond > 0 {
		return c.contractBond
	}
	m := c.rank * c.rank
	if m < 4 {
		m = 4
	}
	return m
}

// ComputationalZeros returns |0...0> on a rows-by-cols lattice.
func ComputationalZeros(rows, cols int, opts ...Option) *QuantumState {
	cfg := newConfig(opts)
	return &QuantumState{state: peps.ComputationalZeros(cfg.engine, rows, cols), cfg: cfg}
}

// ComputationalBasis returns the basis product state with the given bits
// (row-major).
func ComputationalBasis(rows, cols int, bits []int, opts ...Option) *QuantumState {
	cfg := newConfig(opts)
	return &QuantumState{state: peps.ComputationalBasis(cfg.engine, rows, cols, bits), cfg: cfg}
}

// Rows and Cols report the lattice shape.
func (q *QuantumState) Rows() int { return q.state.Rows }
func (q *QuantumState) Cols() int { return q.state.Cols }

// PEPS exposes the underlying tensor-network state for advanced use.
func (q *QuantumState) PEPS() *peps.PEPS { return q.state }

// MaxBond returns the largest bond dimension in the network.
func (q *QuantumState) MaxBond() int { return q.state.MaxBond() }

// Clone returns an independent copy sharing the configuration.
func (q *QuantumState) Clone() *QuantumState {
	return &QuantumState{state: q.state.Clone(), cfg: q.cfg}
}

// ApplyOperator applies a one-site (2x2) or two-site (4x4) operator to
// the given lattice sites, mirroring Koala's qstate.apply_operator.
// Per-call options (e.g. WithRank) override the state's defaults.
func (q *QuantumState) ApplyOperator(op *tensor.Dense, sites []int, opts ...Option) {
	c := q.cfg.withOverrides(opts)
	switch len(sites) {
	case 1:
		q.state.ApplyOneSite(op, sites[0])
	case 2:
		q.state.ApplyTwoSite(op, sites[0], sites[1], peps.UpdateOptions{
			Rank:      c.rank,
			Method:    peps.UpdateQR,
			Normalize: c.normalize,
		})
	default:
		panic(fmt.Sprintf("gokoala: operators act on 1 or 2 sites, got %d", len(sites)))
	}
}

// ApplyCircuit applies a gate sequence with the state's update defaults.
func (q *QuantumState) ApplyCircuit(gates []quantum.TrotterGate, opts ...Option) {
	c := q.cfg.withOverrides(opts)
	q.state.ApplyCircuit(gates, peps.UpdateOptions{
		Rank:      c.rank,
		Method:    peps.UpdateQR,
		Normalize: c.normalize,
	})
}

// Expectation returns the Rayleigh quotient <q|H|q>/<q|q> for an
// observable given as a sum of local terms.
func (q *QuantumState) Expectation(obs *quantum.Observable, opts ...Option) complex128 {
	c := q.cfg.withOverrides(opts)
	return q.state.Expectation(obs, peps.ExpectationOptions{
		M:        c.m(),
		Strategy: c.strategy(),
		UseCache: c.useCache,
	})
}

// EnergyPerSite returns Re(Expectation)/sites.
func (q *QuantumState) EnergyPerSite(obs *quantum.Observable, opts ...Option) float64 {
	return real(q.Expectation(obs, opts...)) / float64(q.Rows()*q.Cols())
}

// Amplitude returns <bits|q> using boundary contraction.
func (q *QuantumState) Amplitude(bits []int, opts ...Option) complex128 {
	c := q.cfg.withOverrides(opts)
	return q.state.Amplitude(bits, peps.BMPS{M: c.m(), Strategy: c.strategy()})
}

// Probability returns |<bits|q>|^2 / <q|q>.
func (q *QuantumState) Probability(bits []int, opts ...Option) float64 {
	a := q.Amplitude(bits, opts...)
	n := q.Norm(opts...)
	if n == 0 {
		return 0
	}
	p := cmplx.Abs(a) / n
	return p * p
}

// Norm returns sqrt(<q|q>) via two-layer boundary contraction.
func (q *QuantumState) Norm(opts ...Option) float64 {
	c := q.cfg.withOverrides(opts)
	return q.state.Norm(peps.TwoLayerBMPS{M: c.m(), Strategy: c.strategy()})
}

// Inner returns <q|other> via two-layer boundary contraction.
func (q *QuantumState) Inner(other *QuantumState, opts ...Option) complex128 {
	c := q.cfg.withOverrides(opts)
	return q.state.Inner(other.state, peps.TwoLayerBMPS{M: c.m(), Strategy: c.strategy()})
}

// Fidelity returns |<q|other>| / (|q| |other|).
func (q *QuantumState) Fidelity(other *QuantumState, opts ...Option) float64 {
	c := q.cfg.withOverrides(opts)
	v := q.state.NormalizedInner(other.state, peps.TwoLayerBMPS{M: c.m(), Strategy: c.strategy()})
	f := cmplx.Abs(v)
	return math.Min(f, 1)
}
