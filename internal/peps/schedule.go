package peps

import "gokoala/internal/quantum"

// gateTouches returns the lattice sites a gate updates, or nil when the
// gate needs SWAP routing (non-adjacent two-site gates sweep a path of
// intermediate sites, so they are scheduled as exclusive barriers).
func (p *PEPS) gateTouches(g quantum.TrotterGate) []int {
	switch len(g.Sites) {
	case 1:
		return g.Sites
	case 2:
		r1, c1 := p.Coords(g.Sites[0])
		r2, c2 := p.Coords(g.Sites[1])
		if (r1 == r2 && abs(c1-c2) == 1) || (c1 == c2 && abs(r1-r2) == 1) {
			return g.Sites
		}
		return nil
	default:
		panic("peps: unsupported gate arity")
	}
}

// gateWaves partitions a gate sequence into waves of gates on pairwise
// disjoint sites — the checkerboard schedule of a Trotter sweep emerges
// automatically (horizontal even bonds, horizontal odd, vertical even,
// vertical odd). Each gate lands in the earliest wave after every
// earlier gate it conflicts with (list scheduling), so waves preserve
// program order between overlapping gates and gates within one wave
// commute by construction. Routed gates occupy a wave of their own.
// The schedule depends only on the gate list, never on worker counts.
func (p *PEPS) gateWaves(gates []quantum.TrotterGate) [][]int {
	waveOf := make([]int, len(gates))
	siteLast := make(map[int]int) // site -> latest wave touching it
	barrier := -1                 // wave of the last routed gate
	maxWave := -1
	for i, g := range gates {
		ts := p.gateTouches(g)
		var w int
		if ts == nil {
			w = maxWave + 1
			barrier = w
		} else {
			w = barrier + 1
			for _, s := range ts {
				if last, ok := siteLast[s]; ok && last+1 > w {
					w = last + 1
				}
			}
			for _, s := range ts {
				siteLast[s] = w
			}
		}
		waveOf[i] = w
		if w > maxWave {
			maxWave = w
		}
	}
	waves := make([][]int, maxWave+1)
	for i, w := range waveOf {
		waves[w] = append(waves[w], i)
	}
	return waves
}
