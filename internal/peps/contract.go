package peps

import (
	"fmt"
	"math"
	"math/cmplx"

	"gokoala/internal/einsumsvd"
	"gokoala/internal/mps"
	"gokoala/internal/obs"
	"gokoala/internal/pool"
	"gokoala/internal/tensor"
)

// ContractOption selects a PEPS contraction algorithm (paper sections III
// and IV).
type ContractOption interface {
	// Name identifies the option in benchmark output.
	Name() string
}

// Exact contracts without approximation by absorbing rows into a boundary
// MPS with exploding bond dimension (the baseline of paper Figure 8,
// following reference [12]). Exponential cost in the lattice height.
type Exact struct{}

func (Exact) Name() string { return "exact" }

// BMPS is boundary-MPS contraction (paper Algorithm 2) with the zip-up
// MPO application of Algorithm 3. With an Explicit strategy this is the
// paper's "BMPS"; with ImplicitRand it is "IBMPS". For inner products the
// two layers are merged site-by-site into a one-layer network first
// (the standard approach of paper section III-B2).
type BMPS struct {
	// M is the truncation bond dimension of the boundary MPS.
	M int
	// Strategy is the einsumsvd implementation; Explicit ~ BMPS,
	// ImplicitRand ~ IBMPS.
	Strategy einsumsvd.Strategy
}

func (b BMPS) Name() string {
	if _, ok := b.Strategy.(einsumsvd.ImplicitRand); ok {
		return "ibmps"
	}
	return "bmps"
}

// TwoLayerBMPS contracts an inner product keeping bra and ket layers
// implicit inside the einsumsvd operator (paper section III-B2 and
// Table II "two-layer IBMPS"). Only applicable to two-layer contractions;
// one-layer contraction falls back to BMPS behaviour.
type TwoLayerBMPS struct {
	M        int
	Strategy einsumsvd.Strategy
}

func (b TwoLayerBMPS) Name() string {
	if _, ok := b.Strategy.(einsumsvd.ImplicitRand); ok {
		return "2layer-ibmps"
	}
	return "2layer-bmps"
}

// ContractScalar contracts a PEPS with physical dimension one to its
// scalar value (one-layer contraction), including the global scale
// factor. Rows are absorbed top to bottom into a boundary MPS.
func (p *PEPS) ContractScalar(opt ContractOption) complex128 {
	for r := 0; r < p.Rows; r++ {
		for c := 0; c < p.Cols; c++ {
			if p.sites[r][c].Dim(4) != 1 {
				panic(fmt.Sprintf("peps: ContractScalar requires physical dimension 1 at (%d,%d)", r, c))
			}
		}
	}
	sp := obs.Start("bmps.sweep").SetStr("algorithm", opt.Name()).
		SetInt("rows", int64(p.Rows)).SetInt("cols", int64(p.Cols))
	defer sp.End()

	var m int
	var st einsumsvd.Strategy
	switch v := opt.(type) {
	case Exact:
		// The exact baseline stays a single top-down sweep: bisecting
		// would halve the exponent of its exponential cost and distort the
		// scaling the Figure 8 comparison measures.
	case BMPS:
		m, st = v.M, v.Strategy
	case TwoLayerBMPS:
		m, st = v.M, v.Strategy
	default:
		panic(fmt.Sprintf("peps: unsupported contract option %T", opt))
	}

	// Truncated contractions bisect: a top-down and a (flipped) bottom-up
	// sweep run as two concurrent lattice tasks and meet at the cut. The
	// bisection is applied at every worker count, so results do not depend
	// on the pool size.
	if sts := einsumsvd.Fork(st, 2); m > 0 && p.Rows >= 2 && sts != nil {
		mid := p.Rows / 2
		f := p.FlipVertical()
		var top, bottom *mps.MPS
		g := pool.NewGroup("bmps.bisect")
		g.Go(func() {
			top = p.rowMPS(0)
			for r := 1; r < mid; r++ {
				top = mps.ApplyMPOZipUp(p.eng, top, p.rowMPO(r), m, sts[0])
			}
		})
		g.Go(func() {
			bottom = f.rowMPS(0)
			for r := 1; r < p.Rows-mid; r++ {
				bottom = mps.ApplyMPOZipUp(p.eng, bottom, f.rowMPO(r), m, sts[1])
			}
		})
		g.Wait()
		// top carries the down bonds of row mid-1, bottom the up bonds of
		// row mid — the same cut, joined without conjugation.
		return mps.CloseWith(p.eng, top, bottom) * complex(math.Exp(p.LogScale), 0)
	}

	s := p.rowMPS(0)
	for r := 1; r < p.Rows; r++ {
		o := p.rowMPO(r)
		switch v := opt.(type) {
		case Exact:
			s = mps.ApplyMPOExact(p.eng, s, o)
		case BMPS:
			s = mps.ApplyMPOZipUp(p.eng, s, o, v.M, v.Strategy)
		case TwoLayerBMPS:
			s = mps.ApplyMPOZipUp(p.eng, s, o, v.M, v.Strategy)
		}
	}
	// After the last row the MPS physical legs are the bottom boundary
	// bonds (dimension one).
	return s.ContractChain(p.eng) * complex(math.Exp(p.LogScale), 0)
}

// rowMPS converts row 0 (physical dims 1) into a boundary MPS whose
// physical legs are the row's down bonds.
func (p *PEPS) rowMPS(r int) *mps.MPS {
	sites := make([]*tensor.Dense, p.Cols)
	for c := 0; c < p.Cols; c++ {
		t := p.sites[r][c]
		// [u=1, l, d, r, p=1] -> [l, d, r]
		sites[c] = p.eng.Einsum("uldrp->ldr", t)
	}
	return mps.NewMPS(sites)
}

// rowMPO converts row r (physical dims 1) into an MPO acting downward:
// site [l, d(out), u(in), r].
func (p *PEPS) rowMPO(r int) *mps.MPO {
	sites := make([]*tensor.Dense, p.Cols)
	for c := 0; c < p.Cols; c++ {
		t := p.sites[r][c]
		sites[c] = p.eng.Einsum("uldrp->ldur", t)
	}
	return mps.NewMPO(sites)
}

// Amplitude returns the amplitude <bits|psi> computed by projecting the
// physical legs and contracting the resulting one-layer network.
func (p *PEPS) Amplitude(bits []int, opt ContractOption) complex128 {
	return p.Project(bits).ContractScalar(opt)
}

// MergeLayers builds the one-layer network of the inner product <p|q>:
// each site is conj(p-site) contracted with the q-site over the physical
// leg, with bond pairs merged (bond dimensions multiply). This is the
// explicit two-layer-to-one-layer reduction whose O(r1^4 r2^4) memory the
// two-layer method avoids.
func MergeLayers(bra, ket *PEPS) *PEPS {
	if bra.Rows != ket.Rows || bra.Cols != ket.Cols {
		panic("peps: lattice size mismatch")
	}
	sp := obs.Start("peps.merge_layers")
	defer sp.End()
	eng := bra.eng
	sites := make([][]*tensor.Dense, bra.Rows)
	for r := 0; r < bra.Rows; r++ {
		sites[r] = make([]*tensor.Dense, bra.Cols)
	}
	// Per-site merges are independent; fan them out across the pool.
	pool.Tasks("peps.merge", bra.Rows*bra.Cols, func(i int) {
		r, c := i/bra.Cols, i%bra.Cols
		a := bra.sites[r][c].Conj()
		b := ket.sites[r][c]
		m := eng.Einsum("ULDRp,uldrp->UuLlDdRr", a, b)
		sh := m.Shape()
		sites[r][c] = m.Reshape(sh[0]*sh[1], sh[2]*sh[3], sh[4]*sh[5], sh[6]*sh[7], 1)
	})
	out := New(eng, sites)
	out.LogScale = bra.LogScale + ket.LogScale
	return out
}

// Inner returns <p|q> with the selected contraction algorithm. Exact and
// BMPS merge the two layers into a one-layer network first; TwoLayerBMPS
// keeps the layers implicit (see twolayer.go).
func (p *PEPS) Inner(q *PEPS, opt ContractOption) complex128 {
	sp := obs.Start("peps.inner").SetStr("algorithm", opt.Name())
	defer sp.End()
	if tl, ok := opt.(TwoLayerBMPS); ok {
		return innerTwoLayer(p, q, tl)
	}
	return MergeLayers(p, q).ContractScalar(opt)
}

// Norm returns sqrt(<p|p>).
func (p *PEPS) Norm(opt ContractOption) float64 {
	v := p.Inner(p, opt)
	return math.Sqrt(math.Max(0, real(v)))
}

// NormalizedInner returns <p|q> / (|p| |q|) — phases included — useful for
// fidelity studies.
func (p *PEPS) NormalizedInner(q *PEPS, opt ContractOption) complex128 {
	ip := p.Inner(q, opt)
	np, nq := p.Norm(opt), q.Norm(opt)
	if np == 0 || nq == 0 {
		return 0
	}
	return ip / complex(np*nq, 0)
}

// RelativeError returns |a-b| / |b|, the accuracy metric of paper
// Figure 10.
func RelativeError(approx, exact complex128) float64 {
	if exact == 0 {
		return cmplx.Abs(approx)
	}
	return cmplx.Abs(approx-exact) / cmplx.Abs(exact)
}
