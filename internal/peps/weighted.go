package peps

import (
	"fmt"
	"math"

	"gokoala/internal/einsumsvd"
	"gokoala/internal/quantum"
	"gokoala/internal/tensor"
)

// SimpleUpdate augments a PEPS with per-bond weight vectors — the lambda
// matrices of the Jiang-Weng-Xiang simple-update scheme the paper's
// two-site update is a variant of (its reference [24]). Keeping the
// weights as an explicit mean-field environment improves the accuracy of
// truncated imaginary-time evolution over the plain per-bond update at
// identical cost.
//
// Invariant: the represented state is the PEPS with sqrt(weight) absorbed
// into each side of every interior bond (see Absorb).
type SimpleUpdate struct {
	State *PEPS
	// HW[r][c] weights bond (r,c)-(r,c+1); VW[r][c] weights (r,c)-(r+1,c).
	HW [][][]float64
	VW [][][]float64
}

// NewSimpleUpdate wraps a state with unit bond weights.
func NewSimpleUpdate(p *PEPS) *SimpleUpdate {
	su := &SimpleUpdate{State: p}
	su.HW = make([][][]float64, p.Rows)
	for r := 0; r < p.Rows; r++ {
		su.HW[r] = make([][]float64, p.Cols-1)
		for c := 0; c+1 < p.Cols; c++ {
			su.HW[r][c] = onesf(p.Site(r, c).Dim(3))
		}
	}
	su.VW = make([][][]float64, p.Rows-1)
	for r := 0; r+1 < p.Rows; r++ {
		su.VW[r] = make([][]float64, p.Cols)
		for c := 0; c < p.Cols; c++ {
			su.VW[r][c] = onesf(p.Site(r, c).Dim(2))
		}
	}
	return su
}

func onesf(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// Absorb returns a plain PEPS representing the state: sqrt(weight)
// multiplied into each side of every interior bond. Use it for
// measurements (expectation values, amplitudes, norms).
func (su *SimpleUpdate) Absorb() *PEPS {
	out := su.State.Clone()
	for r := 0; r < out.Rows; r++ {
		for c := 0; c+1 < out.Cols; c++ {
			w := sqrtw(su.HW[r][c])
			out.SetSite(r, c, scaleAxis(out.Site(r, c), 3, w, false))
			out.SetSite(r, c+1, scaleAxis(out.Site(r, c+1), 1, w, false))
		}
	}
	for r := 0; r+1 < out.Rows; r++ {
		for c := 0; c < out.Cols; c++ {
			w := sqrtw(su.VW[r][c])
			out.SetSite(r, c, scaleAxis(out.Site(r, c), 2, w, false))
			out.SetSite(r+1, c, scaleAxis(out.Site(r+1, c), 0, w, false))
		}
	}
	return out
}

func sqrtw(w []float64) []float64 {
	out := make([]float64, len(w))
	for i, v := range w {
		out[i] = math.Sqrt(v)
	}
	return out
}

// scaleAxis multiplies (or, with invert, divides) a tensor along one axis
// by a weight vector. Weights below weightFloor are clamped when
// inverting so dead directions do not produce Inf.
func scaleAxis(t *tensor.Dense, axis int, w []float64, invert bool) *tensor.Dense {
	if t.Dim(axis) != len(w) {
		panic(fmt.Sprintf("peps: weight length %d does not match axis dim %d", len(w), t.Dim(axis)))
	}
	const weightFloor = 1e-12
	factors := make([]complex128, len(w))
	for i, v := range w {
		if invert {
			if v < weightFloor {
				v = weightFloor
			}
			factors[i] = complex(1/v, 0)
		} else {
			factors[i] = complex(v, 0)
		}
	}
	out := t.Clone()
	shape := t.Shape()
	inner := 1
	for i := axis + 1; i < len(shape); i++ {
		inner *= shape[i]
	}
	outer := t.Size() / (inner * shape[axis])
	d := out.Data()
	idx := 0
	for o := 0; o < outer; o++ {
		for a := 0; a < shape[axis]; a++ {
			f := factors[a]
			for i := 0; i < inner; i++ {
				d[idx] *= f
				idx++
			}
		}
	}
	return out
}

// ApplyGate applies a one- or two-site gate with weighted truncation.
// Non-adjacent pairs are routed with SWAP chains like the plain update.
func (su *SimpleUpdate) ApplyGate(g quantum.TrotterGate, rank int, st einsumsvd.Strategy) {
	switch len(g.Sites) {
	case 1:
		su.State.ApplyOneSite(g.Gate, g.Sites[0])
	case 2:
		su.applyTwoSite(g.Gate, g.Sites[0], g.Sites[1], rank, st)
	default:
		panic("peps: unsupported gate arity")
	}
}

// ApplyCircuit applies a gate sequence.
func (su *SimpleUpdate) ApplyCircuit(gates []quantum.TrotterGate, rank int, st einsumsvd.Strategy) {
	for _, g := range gates {
		su.ApplyGate(g, rank, st)
	}
}

func (su *SimpleUpdate) applyTwoSite(g *tensor.Dense, site1, site2 int, rank int, st einsumsvd.Strategy) {
	p := su.State
	r1, c1 := p.Coords(site1)
	r2, c2 := p.Coords(site2)
	if site1 == site2 {
		panic("peps: two-site gate on identical sites")
	}
	g4 := quantum.Gate4(g)
	apply := func(g4 *tensor.Dense, ra, ca, rb, cb int) {
		switch {
		case ra == rb && cb == ca+1:
			su.weightedHorizontal(g4, ra, ca, rank, st)
		case ra == rb && cb == ca-1:
			su.weightedHorizontal(swapGateOrder(g4), ra, cb, rank, st)
		case ca == cb && rb == ra+1:
			su.weightedVertical(g4, ra, ca, rank, st)
		case ca == cb && rb == ra-1:
			su.weightedVertical(swapGateOrder(g4), rb, ca, rank, st)
		default:
			panic(fmt.Sprintf("peps: sites (%d,%d) and (%d,%d) not adjacent", ra, ca, rb, cb))
		}
	}
	if r1 == r2 && abs(c1-c2) == 1 || c1 == c2 && abs(r1-r2) == 1 {
		apply(g4, r1, c1, r2, c2)
		return
	}
	for _, step := range routedApplications(r1, c1, r2, c2) {
		if step.gate {
			apply(g4, step.ra, step.ca, step.rb, step.cb)
		} else {
			apply(quantum.Gate4(quantum.SWAP()), step.ra, step.ca, step.rb, step.cb)
		}
	}
}

// envWeightsAt returns the weight vectors on a site's four legs (nil for
// boundary legs and for the excluded shared leg).
func (su *SimpleUpdate) envWeightsAt(r, c int, excludeAxis int) [4][]float64 {
	p := su.State
	var w [4][]float64
	if r > 0 {
		w[0] = su.VW[r-1][c]
	}
	if c > 0 {
		w[1] = su.HW[r][c-1]
	}
	if r+1 < p.Rows {
		w[2] = su.VW[r][c]
	}
	if c+1 < p.Cols {
		w[3] = su.HW[r][c]
	}
	if excludeAxis >= 0 {
		w[excludeAxis] = nil
	}
	return w
}

func applyEnvWeights(t *tensor.Dense, w [4][]float64, invert bool) *tensor.Dense {
	for axis := 0; axis < 4; axis++ {
		if w[axis] != nil {
			t = scaleAxis(t, axis, w[axis], invert)
		}
	}
	return t
}

// weightedHorizontal updates sites (r,c)-(r,c+1) with the gate's first
// qubit on (r,c), using the lambda-weighted environment.
func (su *SimpleUpdate) weightedHorizontal(g4 *tensor.Dense, r, c int, rank int, st einsumsvd.Strategy) {
	p := su.State
	envA := su.envWeightsAt(r, c, 3)
	envB := su.envWeightsAt(r, c+1, 1)
	a := applyEnvWeights(p.Site(r, c), envA, false)
	a = scaleAxis(a, 3, su.HW[r][c], false) // absorb the shared lambda once
	b := applyEnvWeights(p.Site(r, c+1), envB, false)

	na, nb, s := weightedPairUpdate(p, a, b, g4, rank, st, false)

	w, scale := normalizeWeights(s)
	su.HW[r][c] = w
	if scale > 0 {
		p.LogScale += math.Log(scale)
	}
	p.SetSite(r, c, applyEnvWeights(na, envA, true))
	p.SetSite(r, c+1, applyEnvWeights(nb, envB, true))
	p.normalizeSite(r, c)
	p.normalizeSite(r, c+1)
}

// weightedVertical updates sites (r,c)-(r+1,c) with the gate's first
// qubit on (r,c).
func (su *SimpleUpdate) weightedVertical(g4 *tensor.Dense, r, c int, rank int, st einsumsvd.Strategy) {
	p := su.State
	envA := su.envWeightsAt(r, c, 2)
	envB := su.envWeightsAt(r+1, c, 0)
	a := applyEnvWeights(p.Site(r, c), envA, false)
	a = scaleAxis(a, 2, su.VW[r][c], false)
	b := applyEnvWeights(p.Site(r+1, c), envB, false)

	na, nb, s := weightedPairUpdate(p, a, b, g4, rank, st, true)

	w, scale := normalizeWeights(s)
	su.VW[r][c] = w
	if scale > 0 {
		p.LogScale += math.Log(scale)
	}
	p.SetSite(r, c, applyEnvWeights(na, envA, true))
	p.SetSite(r+1, c, applyEnvWeights(nb, envB, true))
	p.normalizeSite(r, c)
	p.normalizeSite(r+1, c)
}

// weightedPairUpdate runs the QR-SVD update on pre-weighted site tensors
// with SigmaNone so the singular values come back as the new bond weights.
// vertical selects the axis convention.
func weightedPairUpdate(p *PEPS, a, b, g4 *tensor.Dense, rank int, st einsumsvd.Strategy, vertical bool) (*tensor.Dense, *tensor.Dense, []float64) {
	if rank <= 0 {
		rank = exactRank
	}
	st = withSigmaNone(st)
	if vertical {
		qa, ra := p.eng.QRSplit(a.Transpose(0, 1, 3, 2, 4), 3)
		qb, rb := p.eng.QRSplit(b.Transpose(1, 2, 3, 0, 4), 3)
		rka, rkb, s := einsumsvd.MustFactor(st, p.eng, "kxp,lxq,ijpq->kin|nlj", rank, ra, rb, g4)
		na := p.eng.Einsum("abdk,kin->abndi", qa, rka)
		nb := p.eng.Einsum("fghl,nlj->nfghj", qb, rkb)
		return na, nb, s
	}
	qa, ra := p.eng.QRSplit(a, 3)
	qb, rb := p.eng.QRSplit(b.Transpose(0, 2, 3, 1, 4), 3)
	rka, rkb, s := einsumsvd.MustFactor(st, p.eng, "kxp,lxq,ijpq->kin|nlj", rank, ra, rb, g4)
	na := p.eng.Einsum("abck,kin->abcni", qa, rka)
	nb := p.eng.Einsum("efgl,nlj->enfgj", qb, rkb)
	return na, nb, s
}

// withSigmaNone forces the strategy's sigma mode to SigmaNone.
func withSigmaNone(st einsumsvd.Strategy) einsumsvd.Strategy {
	switch v := st.(type) {
	case einsumsvd.Explicit:
		v.Mode = einsumsvd.SigmaNone
		return v
	case einsumsvd.ImplicitRand:
		v.Mode = einsumsvd.SigmaNone
		return v
	case nil:
		return einsumsvd.Explicit{Mode: einsumsvd.SigmaNone}
	default:
		return st
	}
}

// normalizeWeights rescales the weights to unit maximum, returning the
// removed factor so the caller can fold it into the state's LogScale
// (the bond weight enters the represented state exactly once).
func normalizeWeights(s []float64) ([]float64, float64) {
	out := append([]float64{}, s...)
	mx := 0.0
	for _, v := range out {
		if v > mx {
			mx = v
		}
	}
	if mx == 0 {
		return onesf(len(out)), 0
	}
	for i := range out {
		out[i] /= mx
	}
	return out, mx
}

// routedApplications returns the sequence of adjacent-pair applications
// implementing a two-site gate on distant sites: SWAPs moving the second
// qubit next to the first, the gate, and the SWAPs undone.
type adjApp struct {
	ra, ca, rb, cb int
	gate           bool
}

func routedApplications(r1, c1, r2, c2 int) []adjApp {
	type pos struct{ r, c int }
	cur := pos{r2, c2}
	var path []pos
	for cur.c != c1 {
		step := 1
		if cur.c > c1 {
			step = -1
		}
		next := pos{cur.r, cur.c + step}
		if next.r == r1 && next.c == c1 {
			break
		}
		path = append(path, next)
		cur = next
	}
	for cur.r != r1 {
		step := 1
		if cur.r > r1 {
			step = -1
		}
		next := pos{cur.r + step, cur.c}
		if next.r == r1 && next.c == c1 {
			break
		}
		path = append(path, next)
		cur = next
	}
	var out []adjApp
	prev := pos{r2, c2}
	for _, nx := range path {
		out = append(out, adjApp{prev.r, prev.c, nx.r, nx.c, false})
		prev = nx
	}
	out = append(out, adjApp{r1, c1, prev.r, prev.c, true})
	for i := len(path) - 1; i >= 0; i-- {
		var back pos
		if i == 0 {
			back = pos{r2, c2}
		} else {
			back = path[i-1]
		}
		out = append(out, adjApp{path[i].r, path[i].c, back.r, back.c, false})
	}
	return out
}
