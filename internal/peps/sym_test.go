package peps

import (
	"bytes"
	"math"
	"testing"

	"gokoala/internal/backend"
	"gokoala/internal/einsumsvd"
	"gokoala/internal/quantum"
)

func symEngine(t *testing.T) backend.SymEngine {
	t.Helper()
	se, ok := backend.SymOf(eng)
	if !ok {
		t.Fatal("dense engine must expose block-sparse kernels")
	}
	return se
}

func TestSymComputationalBasisMatchesDense(t *testing.T) {
	se := symEngine(t)
	bits := []int{0, 1, 1, 0, 1, 0}
	for _, mod := range []int{0, 2} {
		sp := SymComputationalBasis(se, mod, 2, 3, bits)
		dp := ComputationalBasis(eng, 2, 3, bits)
		for r := 0; r < 2; r++ {
			for c := 0; c < 3; c++ {
				got, want := sp.Site(r, c).ToDense(), dp.Site(r, c)
				gd, wd := got.Data(), want.Data()
				if len(gd) != len(wd) {
					t.Fatalf("mod %d site (%d,%d): size %d want %d", mod, r, c, len(gd), len(wd))
				}
				for i := range gd {
					if gd[i] != wd[i] {
						t.Fatalf("mod %d site (%d,%d) element %d: %v want %v", mod, r, c, i, gd[i], wd[i])
					}
				}
			}
		}
		if sp.NumBlocks() != 6 {
			t.Fatalf("mod %d: %d blocks, want one per site", mod, sp.NumBlocks())
		}
	}
}

func TestSymTrotterGatesConserving(t *testing.T) {
	// Every Trotter gate of the dual-frame TFI conserves Z2 parity, and
	// every gate of the U(1) J1-J2 form conserves particle number.
	obs := quantum.TransverseFieldIsingDual(2, 2, -1, -3.5)
	gates := obs.TrotterGates(complex(-0.05, 0))
	if sg, ok := SymTrotterGates(gates, 2); !ok || len(sg) != len(gates) {
		t.Fatalf("dual TFI gates must conserve Z2 parity (ok=%v, %d/%d)", ok, len(sg), len(gates))
	}
	obsU1 := quantum.J1J2HeisenbergU1(2, 2, quantum.PaperJ1J2ParamsU1())
	gatesU1 := obsU1.TrotterGates(complex(-0.05, 0))
	if _, ok := SymTrotterGates(gatesU1, 0); !ok {
		t.Fatal("U(1) J1-J2 gates must conserve particle number")
	}
}

func TestSymTrotterGatesFallback(t *testing.T) {
	// The plain TFI transverse field exp(-tau*hx*X) moves charge: the
	// whole list must be rejected, not partially converted.
	obs := quantum.TransverseFieldIsing(2, 2, -1, -3.5)
	gates := obs.TrotterGates(complex(-0.05, 0))
	if _, ok := SymTrotterGates(gates, 2); ok {
		t.Fatal("plain TFI gates must not convert under Z2")
	}
	// An Ry rotation is the classic non-conserving one-site gate.
	if _, ok := SymOneSiteGate(quantum.Ry(0.3), 0); ok {
		t.Fatal("Ry must not conserve U(1) charge")
	}
	if _, ok := SymOneSiteGate(quantum.Z(), 2); !ok {
		t.Fatal("Z must conserve parity")
	}
}

// applyDenseGates mirrors the symmetric circuit application on the dense
// path: same order, explicit balanced-sigma refactorization.
func applyDenseGates(p *PEPS, gates []quantum.TrotterGate, rank int) {
	p.ApplyCircuit(gates, UpdateOptions{
		Rank:      rank,
		Strategy:  einsumsvd.Explicit{Mode: einsumsvd.SigmaBoth},
		Normalize: true,
	})
}

func symEnergy(t *testing.T, p *PEPS, obs *quantum.Observable) float64 {
	t.Helper()
	return p.EnergyPerSite(obs, ExpectationOptions{M: 16, Strategy: einsumsvd.Explicit{}})
}

func TestSymCircuitMatchesDenseTFI(t *testing.T) {
	// One exact (untruncated) Trotter sweep of the dual-frame TFI: the
	// block-sparse evolution embedded to dense must give the same energy
	// as the dense evolution of the same gates to near machine precision.
	se := symEngine(t)
	obs := quantum.TransverseFieldIsingDual(2, 2, -1, -3.5)
	gates := obs.TrotterGates(complex(-0.05, 0))
	symGates, ok := SymTrotterGates(gates, 2)
	if !ok {
		t.Fatal("dual TFI must convert")
	}

	sp := SymComputationalBasis(se, 2, 2, 2, nil)
	dp := sp.ToDense()
	for sweep := 0; sweep < 2; sweep++ {
		sp.ApplyCircuit(symGates, SymUpdateOptions{Normalize: true})
		applyDenseGates(dp, gates, 0)
	}
	eSym := symEnergy(t, sp.ToDense(), obs)
	eDense := symEnergy(t, dp, obs)
	if math.Abs(eSym-eDense) > 1e-10 {
		t.Fatalf("energies differ: sym %.15g dense %.15g", eSym, eDense)
	}
	// Parity bookkeeping: the all-zeros start is even, and every site
	// keeps a definite total charge.
	if got := sp.Site(0, 0).Mod(); got != 2 {
		t.Fatalf("mod drifted to %d", got)
	}
}

func TestSymCircuitMatchesDenseU1Routed(t *testing.T) {
	// The U(1) J1-J2 circuit includes diagonal pairs routed via SWAP
	// chains; with truncation to rank 4 (exact here) sym and dense stay
	// in agreement from the Neel start.
	se := symEngine(t)
	obs := quantum.J1J2HeisenbergU1(2, 2, quantum.PaperJ1J2ParamsU1())
	gates := obs.TrotterGates(complex(-0.05, 0))
	symGates, ok := SymTrotterGates(gates, 0)
	if !ok {
		t.Fatal("U(1) J1-J2 must convert")
	}
	bits := quantum.NeelBits(2, 2)
	sp := SymComputationalBasis(se, 0, 2, 2, bits)
	dp := sp.ToDense()
	sp.ApplyCircuit(symGates, SymUpdateOptions{Rank: 4, Normalize: true})
	applyDenseGates(dp, gates, 4)
	eSym := symEnergy(t, sp.ToDense(), obs)
	eDense := symEnergy(t, dp, obs)
	if math.Abs(eSym-eDense) > 1e-10 {
		t.Fatalf("energies differ: sym %.15g dense %.15g", eSym, eDense)
	}
}

func TestSymStateSavingsPositive(t *testing.T) {
	se := symEngine(t)
	obs := quantum.TransverseFieldIsingDual(2, 3, -1, -3.5)
	gates := obs.TrotterGates(complex(-0.05, 0))
	symGates, _ := SymTrotterGates(gates, 2)
	sp := SymComputationalBasis(se, 2, 2, 3, nil)
	for i := 0; i < 3; i++ {
		sp.ApplyCircuit(symGates, SymUpdateOptions{Rank: 4, Normalize: true})
	}
	if sp.StateBytes() >= sp.DenseEquivBytes() {
		t.Fatalf("no memory saving: stored %d dense %d", sp.StateBytes(), sp.DenseEquivBytes())
	}
	if sp.MaxBond() < 2 {
		t.Fatal("bond did not grow")
	}
}

func TestSymSerializeRoundTrip(t *testing.T) {
	se := symEngine(t)
	obs := quantum.TransverseFieldIsingDual(2, 2, -1, -3.5)
	gates := obs.TrotterGates(complex(-0.05, 0))
	symGates, _ := SymTrotterGates(gates, 2)
	sp := SymComputationalBasis(se, 2, 2, 2, nil)
	sp.ApplyCircuit(symGates, SymUpdateOptions{Rank: 2, Normalize: true})

	var buf1 bytes.Buffer
	if err := sp.Save(&buf1); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSym(bytes.NewReader(buf1.Bytes()), se)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows != sp.Rows || back.Cols != sp.Cols || back.LogScale != sp.LogScale || back.Mod() != sp.Mod() {
		t.Fatal("header fields did not round-trip")
	}
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			gd, wd := back.Site(r, c).ToDense().Data(), sp.Site(r, c).ToDense().Data()
			if len(gd) != len(wd) {
				t.Fatalf("site (%d,%d) size changed", r, c)
			}
			for i := range gd {
				if gd[i] != wd[i] {
					t.Fatalf("site (%d,%d) element %d: %v want %v", r, c, i, gd[i], wd[i])
				}
			}
		}
	}
	// Serialization is byte-deterministic: canonical block order makes a
	// save-load-save cycle reproduce the stream exactly.
	var buf2 bytes.Buffer
	if err := back.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("save-load-save is not byte-identical")
	}
}

func TestLoadSymRejectsCorrupt(t *testing.T) {
	se := symEngine(t)
	sp := SymComputationalBasis(se, 2, 2, 2, nil)
	var buf bytes.Buffer
	if err := sp.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := LoadSym(bytes.NewReader(raw[:len(raw)/2]), se); err == nil {
		t.Fatal("truncated stream must fail")
	}
	bad := append([]byte{}, raw...)
	bad[0] ^= 0xff
	if _, err := LoadSym(bytes.NewReader(bad), se); err == nil {
		t.Fatal("bad magic must fail")
	}
}
