package peps

import (
	"fmt"
	"math"

	"gokoala/internal/backend"
	"gokoala/internal/einsumsvd"
	"gokoala/internal/obs"
	"gokoala/internal/quantum"
	"gokoala/internal/telemetry"
	"gokoala/internal/tensor"
)

// SymPEPS is a PEPS whose site tensors are charge-carrying block-sparse
// tensors: every contraction and factorization touches only the charge
// sectors a conserving evolution can populate. The leg conventions of
// a fresh state are up/left ingoing (direction -1) and down/right/phys
// outgoing (+1) with the physical leg carrying charges {0, 1}; updates
// replace bond legs with new ones whose direction may differ, so
// validation only requires each shared bond to be dual between its two
// endpoints. The physics lives entirely in the charge bookkeeping —
// embedding every site to dense (ToDense) must reproduce the state a
// dense evolution of the same gates would have produced, which is what
// the randomized equivalence tests check.
type SymPEPS struct {
	Rows, Cols int
	// LogScale is the log of a global positive prefactor on all
	// amplitudes, exactly as in the dense PEPS.
	LogScale float64

	sites [][]*tensor.Sym
	eng   backend.SymEngine
}

// NewSymPEPS wraps a grid of block-sparse site tensors after validating
// lattice shape and bond duality.
func NewSymPEPS(eng backend.SymEngine, sites [][]*tensor.Sym) *SymPEPS {
	rows := len(sites)
	if rows == 0 || len(sites[0]) == 0 {
		panic("peps: empty lattice")
	}
	p := &SymPEPS{Rows: rows, Cols: len(sites[0]), sites: sites, eng: eng}
	if err := p.checkValid(); err != nil {
		panic(err.Error())
	}
	return p
}

// trivialSymLeg is a one-sector, one-dimensional, charge-zero leg — the
// boundary bond.
func trivialSymLeg(dir int) tensor.Leg {
	return tensor.Leg{Dir: dir, Charges: []int{0}, Dims: []int{1}}
}

// PhysSymLeg is the physical qubit leg: charges {0, 1} with one state
// each. Under U(1) (mod 0) the charge counts |1> occupation; under Z2
// (mod 2) it is the bit parity.
func PhysSymLeg(dir int) tensor.Leg {
	return tensor.Leg{Dir: dir, Charges: []int{0, 1}, Dims: []int{1, 1}}
}

// checkValid verifies lattice shape, one shared mod, boundary bonds, and
// bond duality between neighbors.
func (p *SymPEPS) checkValid() error {
	mod := -1
	for r := 0; r < p.Rows; r++ {
		if len(p.sites[r]) != p.Cols {
			return fmt.Errorf("peps: ragged row %d", r)
		}
		for c := 0; c < p.Cols; c++ {
			t := p.sites[r][c]
			if t == nil {
				return fmt.Errorf("peps: missing site (%d,%d)", r, c)
			}
			if t.Rank() != 5 {
				return fmt.Errorf("peps: site (%d,%d) has rank %d, want 5", r, c, t.Rank())
			}
			if mod < 0 {
				mod = t.Mod()
			} else if t.Mod() != mod {
				return fmt.Errorf("peps: site (%d,%d) has mod %d, want %d", r, c, t.Mod(), mod)
			}
			boundary := func(ax int) bool {
				l := t.Leg(ax)
				return l.TotalDim() == 1 && l.NumSectors() == 1 && l.Charges[0] == 0
			}
			if r == 0 && !boundary(0) {
				return fmt.Errorf("peps: site (%d,%d) top boundary bond not trivial", r, c)
			}
			if r == p.Rows-1 && !boundary(2) {
				return fmt.Errorf("peps: site (%d,%d) bottom boundary bond not trivial", r, c)
			}
			if c == 0 && !boundary(1) {
				return fmt.Errorf("peps: site (%d,%d) left boundary bond not trivial", r, c)
			}
			if c == p.Cols-1 && !boundary(3) {
				return fmt.Errorf("peps: site (%d,%d) right boundary bond not trivial", r, c)
			}
			if r+1 < p.Rows && !tensor.DualLegs(t.Leg(2), p.sites[r+1][c].Leg(0)) {
				return fmt.Errorf("peps: vertical bond mismatch at (%d,%d)", r, c)
			}
			if c+1 < p.Cols && !tensor.DualLegs(t.Leg(3), p.sites[r][c+1].Leg(1)) {
				return fmt.Errorf("peps: horizontal bond mismatch at (%d,%d)", r, c)
			}
		}
	}
	return nil
}

// Engine returns the block-sparse backend engine.
func (p *SymPEPS) Engine() backend.SymEngine { return p.eng }

// Mod returns the symmetry group modulus (0 for U(1), n for Z_n).
func (p *SymPEPS) Mod() int { return p.sites[0][0].Mod() }

// Site returns the tensor at (row, col).
func (p *SymPEPS) Site(r, c int) *tensor.Sym { return p.sites[r][c] }

// SetSite replaces the tensor at (row, col) without validation.
func (p *SymPEPS) SetSite(r, c int, t *tensor.Sym) { p.sites[r][c] = t }

// SiteIndex returns the flattened index of (row, col).
func (p *SymPEPS) SiteIndex(r, c int) int { return r*p.Cols + c }

// Coords returns the (row, col) of a flattened site index.
func (p *SymPEPS) Coords(site int) (int, int) {
	if site < 0 || site >= p.Rows*p.Cols {
		panic(fmt.Sprintf("peps: site %d out of range", site))
	}
	return site / p.Cols, site % p.Cols
}

// Clone returns a deep copy of the state.
func (p *SymPEPS) Clone() *SymPEPS {
	sites := make([][]*tensor.Sym, p.Rows)
	for r := range sites {
		sites[r] = make([]*tensor.Sym, p.Cols)
		for c := range sites[r] {
			sites[r][c] = p.sites[r][c].Clone()
		}
	}
	return &SymPEPS{Rows: p.Rows, Cols: p.Cols, LogScale: p.LogScale, sites: sites, eng: p.eng}
}

// MaxBond returns the largest total bond dimension in the network.
func (p *SymPEPS) MaxBond() int {
	m := 1
	for r := 0; r < p.Rows; r++ {
		for c := 0; c < p.Cols; c++ {
			for _, ax := range []int{0, 1, 2, 3} {
				if d := p.sites[r][c].Leg(ax).TotalDim(); d > m {
					m = d
				}
			}
		}
	}
	return m
}

// StateBytes returns the bytes actually stored across all site blocks.
func (p *SymPEPS) StateBytes() int64 {
	var n int64
	for r := 0; r < p.Rows; r++ {
		for c := 0; c < p.Cols; c++ {
			n += p.sites[r][c].StoredBytes()
		}
	}
	return n
}

// DenseEquivBytes returns the bytes a dense representation of the same
// bond dimensions would occupy; StateBytes/DenseEquivBytes is the
// block-sparse memory saving.
func (p *SymPEPS) DenseEquivBytes() int64 {
	var n int64
	for r := 0; r < p.Rows; r++ {
		for c := 0; c < p.Cols; c++ {
			n += p.sites[r][c].DenseBytes()
		}
	}
	return n
}

// NumBlocks returns the total stored-block count across all sites.
func (p *SymPEPS) NumBlocks() int {
	n := 0
	for r := 0; r < p.Rows; r++ {
		for c := 0; c < p.Cols; c++ {
			n += p.sites[r][c].NumBlocks()
		}
	}
	return n
}

// ToDense embeds every site into its dense form, producing the ordinary
// PEPS the rest of the library (expectation values, benchmarks,
// reference checks) operates on. The embedding is exact.
func (p *SymPEPS) ToDense() *PEPS {
	sites := make([][]*tensor.Dense, p.Rows)
	for r := range sites {
		sites[r] = make([]*tensor.Dense, p.Cols)
		for c := range sites[r] {
			sites[r][c] = p.sites[r][c].ToDense()
		}
	}
	return &PEPS{Rows: p.Rows, Cols: p.Cols, LogScale: p.LogScale, sites: sites, eng: p.eng}
}

// SymComputationalBasis returns the basis product state with the given
// bits in row-major order (nil means all zeros) as a block-sparse PEPS
// under the symmetry group Z_mod (mod 0 selects U(1)). Each site stores
// exactly one 1x1x1x1x1 block: the physical sector of its bit.
func SymComputationalBasis(eng backend.SymEngine, mod, rows, cols int, bits []int) *SymPEPS {
	if bits != nil && len(bits) != rows*cols {
		panic(fmt.Sprintf("peps: %d bits for %d sites", len(bits), rows*cols))
	}
	sites := make([][]*tensor.Sym, rows)
	for r := range sites {
		sites[r] = make([]*tensor.Sym, cols)
		for c := range sites[r] {
			b := 0
			if bits != nil {
				b = bits[r*cols+c] & 1
			}
			legs := []tensor.Leg{
				trivialSymLeg(-1), trivialSymLeg(-1),
				trivialSymLeg(+1), trivialSymLeg(+1),
				PhysSymLeg(+1),
			}
			t := tensor.NewSym(mod, tensor.CanonCharge(b, mod), legs)
			blk := tensor.New(1, 1, 1, 1, 1)
			blk.Set(1, 0, 0, 0, 0, 0)
			t.SetBlock(blk, 0, 0, 0, 0, b)
			sites[r][c] = t
		}
	}
	return NewSymPEPS(eng, sites)
}

// symGateTol is the relative embedding residual above which a gate is
// declared non-conserving. Conserving gates built from exact matrix
// exponentials land at machine epsilon; a genuinely charge-violating
// gate has O(1) weight outside the allowed sectors.
const symGateTol = 1e-12

// SymGate is a Trotter gate converted to block-sparse form.
type SymGate struct {
	Sites []int
	// Gate has legs [i, p] (one-site) or [i, j, p, q] (two-site) with
	// the out indices carrying direction +1 and the in indices -1, and
	// total charge zero — the statement of charge conservation.
	Gate *tensor.Sym
}

// SymOneSiteGate converts a 2x2 gate to block-sparse form; ok is false
// when the gate does not conserve charge.
func SymOneSiteGate(g *tensor.Dense, mod int) (*tensor.Sym, bool) {
	legs := []tensor.Leg{PhysSymLeg(+1), PhysSymLeg(-1)}
	s, resid := tensor.SymFromDense(g, mod, 0, legs)
	return s, resid <= symGateTol*g.Norm()
}

// SymTwoSiteGate converts a two-site gate (4x4 or [2,2,2,2] over
// (site1, site2)) to block-sparse form; ok is false when the gate does
// not conserve charge.
func SymTwoSiteGate(g *tensor.Dense, mod int) (*tensor.Sym, bool) {
	g4 := quantum.Gate4(g)
	legs := []tensor.Leg{PhysSymLeg(+1), PhysSymLeg(+1), PhysSymLeg(-1), PhysSymLeg(-1)}
	s, resid := tensor.SymFromDense(g4, mod, 0, legs)
	return s, resid <= symGateTol*g4.Norm()
}

// SymTrotterGates converts a dense gate list to block-sparse form. The
// second result is false — with no gates converted — when any gate
// fails to conserve charge; callers then fall back to the dense path
// for the whole circuit (projecting individual gates onto the conserved
// sectors would silently discard amplitude).
func SymTrotterGates(gates []quantum.TrotterGate, mod int) ([]SymGate, bool) {
	out := make([]SymGate, 0, len(gates))
	for _, g := range gates {
		var sg *tensor.Sym
		var ok bool
		switch len(g.Sites) {
		case 1:
			sg, ok = SymOneSiteGate(g.Gate, mod)
		case 2:
			sg, ok = SymTwoSiteGate(g.Gate, mod)
		default:
			return nil, false
		}
		if !ok {
			return nil, false
		}
		out = append(out, SymGate{Sites: append([]int{}, g.Sites...), Gate: sg})
	}
	return out, true
}

// ApplyOneSite applies a converted one-site gate in place.
func (p *SymPEPS) ApplyOneSite(g *tensor.Sym, site int) {
	r, c := p.Coords(site)
	if g.Rank() != 2 {
		panic("peps: one-site operator must be a matrix")
	}
	p.sites[r][c] = p.eng.SymEinsum("ij,uldrj->uldri", g, p.sites[r][c])
}

// SymUpdateOptions configures block-sparse two-site updates. Only the
// QR-SVD update (paper Algorithm 1) with the balanced-sigma explicit
// refactorization is implemented: randomized sketching mixes charge
// sectors, so the implicit strategies stay dense-only.
type SymUpdateOptions struct {
	// Rank caps the total bond dimension after the update; 0 means no
	// truncation.
	Rank int
	// Normalize rescales updated site tensors to unit Frobenius norm,
	// folding the factor into LogScale.
	Normalize bool
}

func (o SymUpdateOptions) rank() int {
	if o.Rank <= 0 {
		return exactRank
	}
	return o.Rank
}

// ApplyTwoSite applies a converted two-site gate g4 (legs [i,j,p,q]
// over (site1, site2)) to two lattice sites, routing non-adjacent pairs
// with SWAP chains exactly like the dense path.
func (p *SymPEPS) ApplyTwoSite(g4 *tensor.Sym, site1, site2 int, opts SymUpdateOptions) {
	r1, c1 := p.Coords(site1)
	r2, c2 := p.Coords(site2)
	if site1 == site2 {
		panic("peps: two-site gate on identical sites")
	}
	sp := obs.Start("peps.update").SetStr("method", "sym-qr-svd")
	defer sp.End()
	switch {
	case r1 == r2 && abs(c1-c2) == 1:
		if c1 < c2 {
			p.applySymHorizontal(g4, r1, c1, opts)
		} else {
			p.applySymHorizontal(swapSymGateOrder(g4), r1, c2, opts)
		}
	case c1 == c2 && abs(r1-r2) == 1:
		if r1 < r2 {
			p.applySymVertical(g4, r1, c1, opts)
		} else {
			p.applySymVertical(swapSymGateOrder(g4), r2, c1, opts)
		}
	default:
		swap, ok := SymTwoSiteGate(quantum.SWAP(), p.Mod())
		if !ok {
			panic("peps: SWAP gate must conserve charge")
		}
		for _, step := range routedApplications(r1, c1, r2, c2) {
			g := swap
			if step.gate {
				g = g4
			}
			p.applySymAdjacent(g, step.ra, step.ca, step.rb, step.cb, opts)
		}
	}
}

// swapSymGateOrder reorders a two-qubit gate tensor g[i1,i2,j1,j2] to
// act with its qubit arguments exchanged.
func swapSymGateOrder(g4 *tensor.Sym) *tensor.Sym {
	return g4.Transpose(1, 0, 3, 2)
}

func (p *SymPEPS) applySymAdjacent(g4 *tensor.Sym, ra, ca, rb, cb int, opts SymUpdateOptions) {
	switch {
	case ra == rb && cb == ca+1:
		p.applySymHorizontal(g4, ra, ca, opts)
	case ra == rb && cb == ca-1:
		p.applySymHorizontal(swapSymGateOrder(g4), ra, cb, opts)
	case ca == cb && rb == ra+1:
		p.applySymVertical(g4, ra, ca, opts)
	case ca == cb && rb == ra-1:
		p.applySymVertical(swapSymGateOrder(g4), rb, ca, opts)
	default:
		panic(fmt.Sprintf("peps: sites (%d,%d) and (%d,%d) not adjacent", ra, ca, rb, cb))
	}
}

// applySymHorizontal is the QR-SVD update of paper Algorithm 1 on sites
// (r,c) and (r,c+1), every kernel running block by block.
func (p *SymPEPS) applySymHorizontal(g4 *tensor.Sym, r, c int, opts SymUpdateOptions) {
	a, b := p.sites[r][c], p.sites[r][c+1]
	telemetry.ClearPendingTrunc()
	qa, ra := p.eng.SymQRSplit(a, 3)                          // [a,b,c,k], [k,x,p]
	qb, rb := p.eng.SymQRSplit(b.Transpose(0, 2, 3, 1, 4), 3) // rows (e,f,g): [e,f,g,l], [l,x,q]
	rka, rkb, s := einsumsvd.MustSymFactor(p.eng, einsumsvd.SigmaBoth,
		"kxp,lxq,ijpq->kin|nlj", opts.rank(), ra, rb, g4)
	p.sites[r][c] = p.eng.SymEinsum("abck,kin->abcni", qa, rka)
	p.sites[r][c+1] = p.eng.SymEinsum("efgl,nlj->enfgj", qb, rkb)
	recordBondUpdate("h", r, c, len(s))
	if opts.Normalize {
		p.normalizeSymSite(r, c)
		p.normalizeSymSite(r, c+1)
	}
}

// applySymVertical is the same update on sites (r,c) and (r+1,c).
func (p *SymPEPS) applySymVertical(g4 *tensor.Sym, r, c int, opts SymUpdateOptions) {
	a, b := p.sites[r][c], p.sites[r+1][c]
	telemetry.ClearPendingTrunc()
	qa, ra := p.eng.SymQRSplit(a.Transpose(0, 1, 3, 2, 4), 3) // rows (a,b,d): [a,b,d,k], [k,x,p]
	qb, rb := p.eng.SymQRSplit(b.Transpose(1, 2, 3, 0, 4), 3) // rows (f,g,h): [f,g,h,l], [l,x,q]
	rka, rkb, s := einsumsvd.MustSymFactor(p.eng, einsumsvd.SigmaBoth,
		"kxp,lxq,ijpq->kin|nlj", opts.rank(), ra, rb, g4)
	p.sites[r][c] = p.eng.SymEinsum("abdk,kin->abndi", qa, rka)
	p.sites[r+1][c] = p.eng.SymEinsum("fghl,nlj->nfghj", qb, rkb)
	recordBondUpdate("v", r, c, len(s))
	if opts.Normalize {
		p.normalizeSymSite(r, c)
		p.normalizeSymSite(r+1, c)
	}
}

// normalizeSymSite rescales a site tensor to unit Frobenius norm,
// folding the factor into LogScale.
func (p *SymPEPS) normalizeSymSite(r, c int) {
	t := p.sites[r][c]
	n := t.Norm()
	if n == 0 {
		return
	}
	t.ScaleInPlace(complex(1/n, 0))
	p.LogScale += math.Log(n)
}

// ApplyGate dispatches a converted one- or two-site gate.
func (p *SymPEPS) ApplyGate(g SymGate, opts SymUpdateOptions) {
	switch len(g.Sites) {
	case 1:
		p.ApplyOneSite(g.Gate, g.Sites[0])
		if opts.Normalize {
			r, c := p.Coords(g.Sites[0])
			p.normalizeSymSite(r, c)
		}
	case 2:
		p.ApplyTwoSite(g.Gate, g.Sites[0], g.Sites[1], opts)
	default:
		panic("peps: unsupported gate arity")
	}
}

// ApplyCircuit applies a sequence of converted gates with the same
// options, strictly sequentially: the per-gate work already runs the
// parallel dense kernels block by block, and a fixed application order
// keeps results bit-identical at any worker count with no wave
// scheduling or delta reduction needed.
func (p *SymPEPS) ApplyCircuit(gates []SymGate, opts SymUpdateOptions) {
	sp := obs.Start("peps.circuit").SetInt("gates", int64(len(gates)))
	defer sp.End()
	for _, g := range gates {
		p.ApplyGate(g, opts)
	}
}
