package peps

import (
	"math"

	"gokoala/internal/backend"
	"gokoala/internal/einsumsvd"
	"gokoala/internal/obs"
	"gokoala/internal/pool"
	"gokoala/internal/tensor"
)

// boundary is a two-layer boundary MPS: one tensor per column with axes
// [left bond, bra down-bond, ket down-bond, right bond]. It represents
// the partial contraction of some rows of the <bra|ket> network; the two
// physical legs are kept separate so the bra and ket layers never have to
// be merged (the memory saving of paper section III-B2).
type boundary []*tensor.Dense

// trivialBoundary is the empty partial contraction: all legs dimension 1.
func trivialBoundary(cols int) boundary {
	b := make(boundary, cols)
	for i := range b {
		b[i] = tensor.Ones(1, 1, 1, 1)
	}
	return b
}

// maxBondOf returns the largest left/right bond in the boundary.
func (b boundary) maxBond() int {
	m := 1
	for _, t := range b {
		if t.Dim(0) > m {
			m = t.Dim(0)
		}
		if t.Dim(3) > m {
			m = t.Dim(3)
		}
	}
	return m
}

// applyTwoLayerRow absorbs one row of the <bra|ket> network into the
// boundary from above, truncating bonds to m with the given einsumsvd
// strategy via a zip-up sweep (the two-layer generalization of paper
// Algorithm 3). braRow tensors are conjugated internally; both rows use
// the site axis order [u, l, d, r, p].
//
// With an ImplicitRand strategy the per-column refactorization applies
// the {carry, boundary site, conj(bra), ket} network as an implicit
// operator — the bra and ket sites are never contracted into an r^2-bond
// MPO tensor, realizing the two-layer IBMPS costs of paper Table II.
func applyTwoLayerRow(eng backend.Engine, s boundary, braRow, ketRow []*tensor.Dense, m int, st einsumsvd.Strategy) boundary {
	sp := obs.Start("twolayer.row").SetInt("boundary_bond", int64(s.maxBond()))
	defer sp.End()
	cols := len(s)
	out := make(boundary, cols)
	// The per-column bra conjugates are independent of the zip-up carry
	// chain, so they fan out across the pool before the sweep.
	conjs := make([]*tensor.Dense, cols)
	pool.Tasks("twolayer.conj", cols, func(c int) { conjs[c] = braRow[c].Conj() })
	conj := func(c int) *tensor.Dense { return conjs[c] }

	if cols == 1 {
		v := eng.Einsum("buUe,ucdrp,UCDRp->dD", s[0], conj(0), ketRow[0])
		sh := v.Shape()
		out[0] = v.Reshape(1, sh[0], sh[1], 1)
		return out
	}

	// First column: boundary bonds (b of the boundary site, c/C of the
	// layer sites) have dimension 1 and are summed away inside the spec.
	site, carry, _ := einsumsvd.MustFactor(st, eng,
		"buUe,ucdrp,UCDRp->dDn|nerR", m, s[0], conj(0), ketRow[0])
	sh := site.Shape()
	out[0] = site.Reshape(1, sh[0], sh[1], sh[2])

	for c := 1; c < cols-1; c++ {
		site, carry, _ = einsumsvd.MustFactor(st, eng,
			"gbcC,buUe,ucdrp,UCDRp->gdDn|nerR", m, carry, s[c], conj(c), ketRow[c])
		out[c] = site
	}

	// Last column: right boundary bonds are dimension 1.
	last := cols - 1
	v := eng.Einsum("gbcC,buUe,ucdrp,UCDRp->gdD", carry, s[last], conj(last), ketRow[last])
	sh = v.Shape()
	out[last] = v.Reshape(sh[0], sh[1], sh[2], 1)
	return out
}

// closeBoundaries contracts a top boundary against a bottom boundary that
// share the same physical legs (the cut between two adjacent rows),
// producing the scalar value of the full network.
func closeBoundaries(eng backend.Engine, top, bottom boundary) complex128 {
	env := tensor.Ones(1, 1)
	for c := range top {
		env = eng.Einsum("ac,apqb,cpqd->bd", env, top[c], bottom[c])
	}
	return env.Item()
}

// row returns the site tensors of row r.
func (p *PEPS) row(r int) []*tensor.Dense { return p.sites[r] }

// innerTwoLayer computes <bra|ket> with the two-layer boundary method:
// rows are absorbed into a two-layer boundary MPS from the top, with the
// bra/ket pair of each site left uncontracted inside every einsumsvd.
func innerTwoLayer(bra, ket *PEPS, opt TwoLayerBMPS) complex128 {
	if bra.Rows != ket.Rows || bra.Cols != ket.Cols {
		panic("peps: lattice size mismatch")
	}
	sp := obs.Start("bmps.sweep").SetStr("algorithm", opt.Name()).
		SetInt("rows", int64(bra.Rows)).SetInt("cols", int64(bra.Cols))
	defer sp.End()
	eng := bra.eng
	scale := complex(math.Exp(bra.LogScale+ket.LogScale), 0)

	// Bisected contraction: a top-down sweep over rows 0..mid-1 and a
	// bottom-up sweep (vertically flipped, the BottomEnvironments
	// construction) over the rest run as two concurrent lattice tasks and
	// meet at the cut. The bisection is applied at every worker count, so
	// results do not depend on the pool size.
	if sts := einsumsvd.Fork(opt.Strategy, 2); bra.Rows >= 2 && sts != nil {
		mid := bra.Rows / 2
		fb, fk := bra.FlipVertical(), ket.FlipVertical()
		var top, bottom boundary
		g := pool.NewGroup("bmps.bisect")
		g.Go(func() {
			top = trivialBoundary(bra.Cols)
			for r := 0; r < mid; r++ {
				top = applyTwoLayerRow(eng, top, bra.row(r), ket.row(r), opt.M, sts[0])
			}
		})
		g.Go(func() {
			bottom = trivialBoundary(bra.Cols)
			for r := 0; r < bra.Rows-mid; r++ {
				bottom = applyTwoLayerRow(eng, bottom, fb.row(r), fk.row(r), opt.M, sts[1])
			}
		})
		g.Wait()
		return closeBoundaries(eng, top, bottom) * scale
	}

	s := trivialBoundary(bra.Cols)
	for r := 0; r < bra.Rows; r++ {
		s = applyTwoLayerRow(eng, s, bra.row(r), ket.row(r), opt.M, opt.Strategy)
	}
	v := closeBoundaries(eng, s, trivialBoundary(bra.Cols))
	return v * scale
}

// TopEnvironments returns boundaries tops[0..Rows] where tops[k] is the
// two-layer partial contraction of rows 0..k-1 of <p|p> (tops[0] is
// trivial). These are the cached intermediates of paper section IV-B.
func (p *PEPS) TopEnvironments(m int, st einsumsvd.Strategy) []boundary {
	sp := obs.Start("peps.environments").SetStr("side", "top")
	defer sp.End()
	return p.topEnvironments(m, st)
}

func (p *PEPS) topEnvironments(m int, st einsumsvd.Strategy) []boundary {
	tops := make([]boundary, p.Rows+1)
	tops[0] = trivialBoundary(p.Cols)
	for r := 0; r < p.Rows; r++ {
		tops[r+1] = applyTwoLayerRow(p.eng, tops[r], p.row(r), p.row(r), m, st)
	}
	return tops
}

// BottomEnvironments returns boundaries bottoms[0..Rows] where bottoms[k]
// is the partial contraction of rows k..Rows-1 from below (bottoms[Rows]
// is trivial). Physical legs are the up bonds of row k, ordered (bra,
// ket) like the top environments.
func (p *PEPS) BottomEnvironments(m int, st einsumsvd.Strategy) []boundary {
	sp := obs.Start("peps.environments").SetStr("side", "bottom")
	defer sp.End()
	f := p.FlipVertical()
	flipped := f.topEnvironments(m, st)
	bottoms := make([]boundary, p.Rows+1)
	for k := 0; k <= p.Rows; k++ {
		bottoms[k] = flipped[p.Rows-k]
	}
	return bottoms
}
