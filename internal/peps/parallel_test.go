package peps

import (
	"math/cmplx"
	"math/rand"
	"testing"

	"gokoala/internal/einsumsvd"
	"gokoala/internal/pool"
	"gokoala/internal/quantum"
	"gokoala/internal/tensor"
)

// workerCounts are the pool sizes every determinism test sweeps; results
// must be bit-identical across all of them.
var workerCounts = []int{1, 2, 4, 8}

// forEachWorkerCount runs body once per pool size and restores the
// default pool afterwards.
func forEachWorkerCount(t *testing.T, body func(t *testing.T, workers int)) {
	t.Helper()
	defer pool.SetWorkers(0)
	for _, w := range workerCounts {
		pool.SetWorkers(w)
		body(t, w)
	}
}

func equalData(a, b *tensor.Dense) bool {
	da, db := a.Data(), b.Data()
	if len(da) != len(db) {
		return false
	}
	for i := range da {
		if da[i] != db[i] {
			return false
		}
	}
	return true
}

// testState builds the same random PEPS for every call (fresh rng), so
// worker-count runs start from identical inputs.
func testState(rows, cols, bond int) *PEPS {
	return Random(eng, rand.New(rand.NewSource(41)), rows, cols, 2, bond)
}

func TestExpectationBitIdenticalAcrossWorkers(t *testing.T) {
	h := quantum.TransverseFieldIsing(3, 3, 1.0, 0.7)
	for _, tc := range []struct {
		name     string
		strategy func() einsumsvd.Strategy
		useCache bool
	}{
		{"cached-explicit", explicit, true},
		{"direct-explicit", explicit, false},
		{"cached-implicit", func() einsumsvd.Strategy { return implicit(5) }, true},
		{"direct-implicit", func() einsumsvd.Strategy { return implicit(5) }, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var want complex128
			forEachWorkerCount(t, func(t *testing.T, w int) {
				p := testState(3, 3, 2)
				got := p.Expectation(h, ExpectationOptions{M: 8, Strategy: tc.strategy(), UseCache: tc.useCache})
				if w == workerCounts[0] {
					want = got
					return
				}
				if got != want {
					t.Fatalf("workers=%d: expectation %v differs from single-worker %v", w, got, want)
				}
			})
		})
	}
}

func TestTopEnvironmentsBitIdenticalAcrossWorkers(t *testing.T) {
	var want []boundary
	forEachWorkerCount(t, func(t *testing.T, w int) {
		p := testState(4, 3, 2)
		tops := p.TopEnvironments(6, explicit())
		if w == workerCounts[0] {
			want = tops
			return
		}
		for k := range tops {
			for c := range tops[k] {
				if !equalData(tops[k][c], want[k][c]) {
					t.Fatalf("workers=%d: tops[%d][%d] differs bit-wise", w, k, c)
				}
			}
		}
	})
}

func TestApplyCircuitBitIdenticalAcrossWorkers(t *testing.T) {
	h := quantum.TransverseFieldIsing(3, 3, 1.0, 0.9)
	gates := h.TrotterGates(complex(-0.05, 0))
	run := func(st einsumsvd.Strategy) *PEPS {
		p := testState(3, 3, 2)
		p.ApplyCircuit(gates, UpdateOptions{Rank: 3, Method: UpdateQR, Strategy: st, Normalize: true})
		return p
	}
	for _, tc := range []struct {
		name     string
		strategy func() einsumsvd.Strategy
	}{
		{"explicit", func() einsumsvd.Strategy { return nil }},
		{"implicit", func() einsumsvd.Strategy { return implicit(9) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var want *PEPS
			forEachWorkerCount(t, func(t *testing.T, w int) {
				p := run(tc.strategy())
				if w == workerCounts[0] {
					want = p
					return
				}
				if p.LogScale != want.LogScale {
					t.Fatalf("workers=%d: LogScale %v differs from single-worker %v", w, p.LogScale, want.LogScale)
				}
				for r := 0; r < p.Rows; r++ {
					for c := 0; c < p.Cols; c++ {
						if !equalData(p.Site(r, c), want.Site(r, c)) {
							t.Fatalf("workers=%d: site (%d,%d) differs bit-wise", w, r, c)
						}
					}
				}
			})
		})
	}
}

func TestGateWavesCheckerboard(t *testing.T) {
	p := ComputationalZeros(eng, 3, 3)
	h := quantum.TransverseFieldIsing(3, 3, 1.0, 0.5)
	gates := h.TrotterGates(complex(-0.1, 0))
	waves := p.gateWaves(gates)
	// Every gate appears exactly once, waves preserve program order
	// between conflicting gates, and gates within a wave are disjoint.
	seen := make([]bool, len(gates))
	for _, wave := range waves {
		used := map[int]bool{}
		for _, i := range wave {
			if seen[i] {
				t.Fatalf("gate %d scheduled twice", i)
			}
			seen[i] = true
			for _, s := range gates[i].Sites {
				if used[s] {
					t.Fatalf("wave contains two gates touching site %d", s)
				}
				used[s] = true
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("gate %d never scheduled", i)
		}
	}
	// A checkerboard sweep must compress well below one-wave-per-gate.
	if len(waves) >= len(gates) {
		t.Fatalf("schedule degenerated to %d waves for %d gates", len(waves), len(gates))
	}
}

func TestGateWavesRoutedGateIsBarrier(t *testing.T) {
	p := ComputationalZeros(eng, 3, 3)
	cz := quantum.CZ()
	gates := []quantum.TrotterGate{
		{Gate: cz, Sites: []int{0, 1}},
		{Gate: cz, Sites: []int{0, 8}}, // non-adjacent: routed
		{Gate: cz, Sites: []int{3, 4}},
	}
	waves := p.gateWaves(gates)
	for _, wave := range waves {
		for _, i := range wave {
			if i == 1 && len(wave) != 1 {
				t.Fatalf("routed gate shares wave %v", wave)
			}
		}
	}
	// The routed gate must be ordered strictly between its neighbours.
	pos := make([]int, len(gates))
	for w, wave := range waves {
		for _, i := range wave {
			pos[i] = w
		}
	}
	if !(pos[0] < pos[1] && pos[1] < pos[2]) {
		t.Fatalf("routed barrier not ordered: wave positions %v", pos)
	}
}

// TestVerticalTermAcrossCachedRowBoundary is the termRowSpan regression:
// a vertical two-site term spans two rows, so its cached strip must
// rebuild both rows between the cached environments tops[rlo] and
// bottoms[rhi+1]. Cached and direct evaluation must agree.
func TestVerticalTermAcrossCachedRowBoundary(t *testing.T) {
	p := testState(4, 3, 2)
	for _, h := range []*quantum.Observable{
		// Vertical term rows 1-2: exactly the cut between the cached top
		// and bottom environment halves of a 4-row lattice.
		quantum.ObservableZZ(p.SiteIndex(1, 1), p.SiteIndex(2, 1)),
		// Routed multi-row term (diagonal neighbours, SWAP chain stays
		// within rows 1..2).
		quantum.NewObservable().AddTerm(1, quantum.CZ(), p.SiteIndex(1, 0), p.SiteIndex(2, 1)),
	} {
		opts := ExpectationOptions{M: 64, Strategy: explicit()}
		direct := p.Expectation(h, opts)
		opts.UseCache = true
		cached := p.Expectation(h, opts)
		if d := cmplx.Abs(cached - direct); d > 1e-8 {
			t.Fatalf("cached %v vs direct %v differ by %g", cached, direct, d)
		}
	}
}
