package peps

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"gokoala/internal/backend"
	"gokoala/internal/tensor"
)

// Block-sparse state serialization. Layout (all little-endian):
//
//	magic "SPEP" | version u32 | mod i64 | rows u32 | cols u32 |
//	logscale f64 | per site (row-major):
//	  total i64
//	  per leg (5): dir i32, nsec u32, per sector: charge i64, dim u32
//	  nblocks u32
//	  per block (canonical sector order): sectors [5]u32,
//	    data [size]{f64,f64}
//
// Blocks are written in the canonical sorted-key order, so identical
// states serialize to identical bytes — the property the bit-identical
// resume test relies on.
const (
	symSerializeMagic   = "SPEP"
	symSerializeVersion = 1
)

// Save writes the block-sparse state to w.
func (p *SymPEPS) Save(w io.Writer) error {
	if _, err := io.WriteString(w, symSerializeMagic); err != nil {
		return fmt.Errorf("peps: sym save: %w", err)
	}
	werr := func(v any) error { return binary.Write(w, binary.LittleEndian, v) }
	if err := werr(uint32(symSerializeVersion)); err != nil {
		return fmt.Errorf("peps: sym save: %w", err)
	}
	if err := werr(int64(p.Mod())); err != nil {
		return fmt.Errorf("peps: sym save: %w", err)
	}
	if err := werr([]uint32{uint32(p.Rows), uint32(p.Cols)}); err != nil {
		return fmt.Errorf("peps: sym save: %w", err)
	}
	if err := werr(p.LogScale); err != nil {
		return fmt.Errorf("peps: sym save: %w", err)
	}
	for r := 0; r < p.Rows; r++ {
		for c := 0; c < p.Cols; c++ {
			t := p.sites[r][c]
			if err := werr(int64(t.Total())); err != nil {
				return fmt.Errorf("peps: sym save: %w", err)
			}
			for ax := 0; ax < t.Rank(); ax++ {
				l := t.Leg(ax)
				if err := werr(int32(l.Dir)); err != nil {
					return fmt.Errorf("peps: sym save: %w", err)
				}
				if err := werr(uint32(l.NumSectors())); err != nil {
					return fmt.Errorf("peps: sym save: %w", err)
				}
				for i := range l.Charges {
					if err := werr(int64(l.Charges[i])); err != nil {
						return fmt.Errorf("peps: sym save: %w", err)
					}
					if err := werr(uint32(l.Dims[i])); err != nil {
						return fmt.Errorf("peps: sym save: %w", err)
					}
				}
			}
			if err := werr(uint32(t.NumBlocks())); err != nil {
				return fmt.Errorf("peps: sym save: %w", err)
			}
			var saveErr error
			t.EachBlock(func(sectors []int, b *tensor.Dense) {
				if saveErr != nil {
					return
				}
				sec := make([]uint32, len(sectors))
				for i, s := range sectors {
					sec[i] = uint32(s)
				}
				if err := werr(sec); err != nil {
					saveErr = err
					return
				}
				buf := make([]float64, 0, 2*b.Size())
				for _, v := range b.Data() {
					buf = append(buf, real(v), imag(v))
				}
				saveErr = werr(buf)
			})
			if saveErr != nil {
				return fmt.Errorf("peps: sym save: %w", saveErr)
			}
		}
	}
	return nil
}

// LoadSym reads a state written by (*SymPEPS).Save, attaching the given
// block-sparse engine. Corrupt input comes back as an error, never a
// panic.
func LoadSym(r io.Reader, eng backend.SymEngine) (p *SymPEPS, err error) {
	defer func() {
		// The tensor constructors panic on inconsistent inputs; for
		// untrusted checkpoint bytes that must surface as an error.
		if rec := recover(); rec != nil {
			p, err = nil, fmt.Errorf("peps: sym load: %v", rec)
		}
	}()
	magic := make([]byte, len(symSerializeMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("peps: sym load: %w", err)
	}
	if string(magic) != symSerializeMagic {
		return nil, fmt.Errorf("peps: sym load: bad magic %q", magic)
	}
	rerr := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	var version uint32
	if err := rerr(&version); err != nil {
		return nil, fmt.Errorf("peps: sym load: %w", err)
	}
	if version != symSerializeVersion {
		return nil, fmt.Errorf("peps: sym load: unsupported version %d", version)
	}
	var mod int64
	if err := rerr(&mod); err != nil {
		return nil, fmt.Errorf("peps: sym load: %w", err)
	}
	if mod < 0 || mod > 1<<16 {
		return nil, fmt.Errorf("peps: sym load: implausible mod %d", mod)
	}
	var dims [2]uint32
	if err := rerr(&dims); err != nil {
		return nil, fmt.Errorf("peps: sym load: %w", err)
	}
	rows, cols := int(dims[0]), int(dims[1])
	if rows <= 0 || cols <= 0 || rows > 1<<12 || cols > 1<<12 {
		return nil, fmt.Errorf("peps: sym load: implausible lattice %dx%d", rows, cols)
	}
	var logScale float64
	if err := rerr(&logScale); err != nil {
		return nil, fmt.Errorf("peps: sym load: %w", err)
	}
	if math.IsNaN(logScale) || math.IsInf(logScale, 0) {
		return nil, fmt.Errorf("peps: sym load: invalid log scale")
	}
	sites := make([][]*tensor.Sym, rows)
	for rr := 0; rr < rows; rr++ {
		sites[rr] = make([]*tensor.Sym, cols)
		for cc := 0; cc < cols; cc++ {
			t, err := loadSymSite(r, int(mod))
			if err != nil {
				return nil, fmt.Errorf("peps: sym load site (%d,%d): %w", rr, cc, err)
			}
			sites[rr][cc] = t
		}
	}
	p = &SymPEPS{Rows: rows, Cols: cols, LogScale: logScale, sites: sites, eng: eng}
	if err := p.checkValid(); err != nil {
		return nil, fmt.Errorf("peps: sym load: %w", err)
	}
	return p, nil
}

func loadSymSite(r io.Reader, mod int) (*tensor.Sym, error) {
	rerr := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	var total int64
	if err := rerr(&total); err != nil {
		return nil, err
	}
	if total < -(1<<30) || total > 1<<30 {
		return nil, fmt.Errorf("implausible total charge %d", total)
	}
	legs := make([]tensor.Leg, 5)
	for ax := range legs {
		var dir int32
		if err := rerr(&dir); err != nil {
			return nil, err
		}
		if dir != 1 && dir != -1 {
			return nil, fmt.Errorf("leg %d: invalid direction %d", ax, dir)
		}
		var nsec uint32
		if err := rerr(&nsec); err != nil {
			return nil, err
		}
		if nsec == 0 || nsec > 255 {
			return nil, fmt.Errorf("leg %d: implausible sector count %d", ax, nsec)
		}
		l := tensor.Leg{Dir: int(dir)}
		for i := 0; i < int(nsec); i++ {
			var q int64
			var d uint32
			if err := rerr(&q); err != nil {
				return nil, err
			}
			if err := rerr(&d); err != nil {
				return nil, err
			}
			if q < -(1<<30) || q > 1<<30 {
				return nil, fmt.Errorf("leg %d: implausible charge %d", ax, q)
			}
			if d == 0 || d > 1<<20 {
				return nil, fmt.Errorf("leg %d: implausible sector dim %d", ax, d)
			}
			l.Charges = append(l.Charges, int(q))
			l.Dims = append(l.Dims, int(d))
		}
		legs[ax] = l
	}
	t := tensor.NewSym(mod, int(total), legs)
	var nblocks uint32
	if err := rerr(&nblocks); err != nil {
		return nil, err
	}
	if nblocks > 1<<20 {
		return nil, fmt.Errorf("implausible block count %d", nblocks)
	}
	for bi := 0; bi < int(nblocks); bi++ {
		var sec [5]uint32
		if err := rerr(&sec); err != nil {
			return nil, err
		}
		sectors := make([]int, 5)
		shape := make([]int, 5)
		size := 1
		for i, s := range sec {
			if int(s) >= legs[i].NumSectors() {
				return nil, fmt.Errorf("block %d: sector %d out of range on leg %d", bi, s, i)
			}
			sectors[i] = int(s)
			shape[i] = legs[i].Dims[s]
			size *= shape[i]
			if size > maxSiteElems {
				return nil, fmt.Errorf("block %d exceeds %d elements", bi, maxSiteElems)
			}
		}
		if !t.Allowed(sectors) {
			return nil, fmt.Errorf("block %d: sectors violate charge conservation", bi)
		}
		buf := make([]float64, 2*size)
		if err := rerr(buf); err != nil {
			return nil, err
		}
		data := make([]complex128, size)
		for i := range data {
			re, im := buf[2*i], buf[2*i+1]
			if math.IsNaN(re) || math.IsInf(re, 0) || math.IsNaN(im) || math.IsInf(im, 0) {
				return nil, fmt.Errorf("block %d: non-finite amplitude at element %d", bi, i)
			}
			data[i] = complex(re, im)
		}
		t.SetBlock(tensor.FromData(data, shape...), sectors...)
	}
	return t, nil
}
