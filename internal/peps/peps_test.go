package peps

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"gokoala/internal/backend"
	"gokoala/internal/einsumsvd"
	"gokoala/internal/quantum"
	"gokoala/internal/statevector"
	"gokoala/internal/tensor"
)

var eng = backend.NewDense()

func explicit() einsumsvd.Strategy { return einsumsvd.Explicit{} }
func implicit(seed int64) einsumsvd.Strategy {
	return einsumsvd.ImplicitRand{NIter: 2, Oversample: 4, Rng: rand.New(rand.NewSource(seed))}
}

// allBits enumerates all bit strings of length n.
func allBits(n int) [][]int {
	out := make([][]int, 1<<n)
	for i := range out {
		bits := make([]int, n)
		for j := 0; j < n; j++ {
			bits[j] = (i >> (n - 1 - j)) & 1
		}
		out[i] = bits
	}
	return out
}

// compareWithStateVector applies the same gate list to a PEPS (exactly)
// and a state vector and compares every amplitude.
func compareWithStateVector(t *testing.T, rows, cols int, gates []quantum.TrotterGate, tol float64) {
	t.Helper()
	n := rows * cols
	ps := ComputationalZeros(eng, rows, cols)
	sv := statevector.Zeros(n)
	opts := UpdateOptions{Rank: 0, Method: UpdateQR} // exact
	for _, g := range gates {
		ps.ApplyGate(g, opts)
		sv.ApplyGate(g)
	}
	opt := BMPS{M: 1 << 16, Strategy: explicit()} // effectively exact
	for _, bits := range allBits(n) {
		want := sv.Amplitude(bits)
		got := ps.Amplitude(bits, opt)
		if cmplx.Abs(got-want) > tol {
			t.Fatalf("amplitude(%v) = %v, want %v", bits, got, want)
		}
	}
}

func TestComputationalZeros(t *testing.T) {
	p := ComputationalZeros(eng, 2, 3)
	opt := Exact{}
	zeros := []int{0, 0, 0, 0, 0, 0}
	if got := p.Amplitude(zeros, opt); cmplx.Abs(got-1) > 1e-14 {
		t.Fatalf("amplitude(0..0) = %v", got)
	}
	one := []int{0, 1, 0, 0, 0, 0}
	if got := p.Amplitude(one, opt); cmplx.Abs(got) > 1e-14 {
		t.Fatalf("amplitude with a 1 should vanish: %v", got)
	}
}

func TestComputationalBasis(t *testing.T) {
	bits := []int{1, 0, 1, 1}
	p := ComputationalBasis(eng, 2, 2, bits)
	if got := p.Amplitude(bits, Exact{}); cmplx.Abs(got-1) > 1e-14 {
		t.Fatalf("amplitude = %v", got)
	}
}

func TestOneSiteGateMatchesStateVector(t *testing.T) {
	gates := []quantum.TrotterGate{
		{Sites: []int{0}, Gate: quantum.H()},
		{Sites: []int{3}, Gate: quantum.X()},
		{Sites: []int{2}, Gate: quantum.Ry(0.7)},
	}
	compareWithStateVector(t, 2, 2, gates, 1e-12)
}

func TestBellPairHorizontal(t *testing.T) {
	gates := []quantum.TrotterGate{
		{Sites: []int{0}, Gate: quantum.H()},
		{Sites: []int{0, 1}, Gate: quantum.CX()},
	}
	compareWithStateVector(t, 1, 2, gates, 1e-12)
}

func TestBellPairVertical(t *testing.T) {
	gates := []quantum.TrotterGate{
		{Sites: []int{0}, Gate: quantum.H()},
		{Sites: []int{0, 2}, Gate: quantum.CX()},
	}
	compareWithStateVector(t, 2, 2, gates, 1e-12)
}

func TestReversedGateOrderMatchesStateVector(t *testing.T) {
	// Gate's first qubit on the right / bottom site.
	gates := []quantum.TrotterGate{
		{Sites: []int{1}, Gate: quantum.H()},
		{Sites: []int{1, 0}, Gate: quantum.CX()},
		{Sites: []int{3}, Gate: quantum.H()},
		{Sites: []int{3, 1}, Gate: quantum.CX()},
	}
	compareWithStateVector(t, 2, 2, gates, 1e-12)
}

func TestDistantGateRoutedWithSwaps(t *testing.T) {
	// Control and target at opposite corners of a 2x3 lattice.
	gates := []quantum.TrotterGate{
		{Sites: []int{0}, Gate: quantum.H()},
		{Sites: []int{0, 5}, Gate: quantum.CX()},
		{Sites: []int{4}, Gate: quantum.Ry(1.1)},
		{Sites: []int{5, 0}, Gate: quantum.CZ()},
	}
	compareWithStateVector(t, 2, 3, gates, 1e-11)
}

func TestDiagonalGateRouting(t *testing.T) {
	// Diagonal neighbors, the J2 coupling pattern.
	gates := []quantum.TrotterGate{
		{Sites: []int{0}, Gate: quantum.H()},
		{Sites: []int{1}, Gate: quantum.Ry(0.4)},
		{Sites: []int{0, 3}, Gate: quantum.Gate4(quantum.ISwap())},
		{Sites: []int{1, 2}, Gate: quantum.CX()}, // anti-diagonal
	}
	compareWithStateVector(t, 2, 2, gates, 1e-11)
}

func TestRandomCircuitMatchesStateVector(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var gates []quantum.TrotterGate
	for layer := 0; layer < 3; layer++ {
		for q := 0; q < 6; q++ {
			gates = append(gates, quantum.TrotterGate{Sites: []int{q}, Gate: quantum.RandomUnitary(rng, 2)})
		}
		for _, pair := range [][2]int{{0, 1}, {2, 3}, {4, 5}, {0, 3}, {1, 4}, {2, 5}} {
			gates = append(gates, quantum.TrotterGate{Sites: []int{pair[0], pair[1]}, Gate: quantum.RandomUnitary(rng, 4)})
		}
	}
	compareWithStateVector(t, 2, 3, gates, 1e-9)
}

func TestDirectAndQRUpdatesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mk := func(method UpdateMethod) *PEPS {
		p := ComputationalZeros(eng, 2, 2)
		opts := UpdateOptions{Rank: 0, Method: method}
		p.ApplyOneSite(quantum.H(), 0)
		p.ApplyTwoSite(quantum.RandomUnitary(rand.New(rand.NewSource(1)), 4), 0, 1, opts)
		p.ApplyTwoSite(quantum.RandomUnitary(rand.New(rand.NewSource(2)), 4), 0, 2, opts)
		return p
	}
	a, b := mk(UpdateDirect), mk(UpdateQR)
	opt := BMPS{M: 256, Strategy: explicit()}
	for _, bits := range allBits(4) {
		if cmplx.Abs(a.Amplitude(bits, opt)-b.Amplitude(bits, opt)) > 1e-10 {
			t.Fatalf("direct and QR updates disagree at %v", bits)
		}
	}
	_ = rng
}

func TestTruncationCapRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p := ComputationalZeros(eng, 3, 3)
	opts := UpdateOptions{Rank: 2, Method: UpdateQR}
	for i := 0; i < 9; i++ {
		p.ApplyOneSite(quantum.RandomUnitary(rng, 2), i)
	}
	for layer := 0; layer < 3; layer++ {
		for r := 0; r < 3; r++ {
			for c := 0; c < 2; c++ {
				p.ApplyTwoSite(quantum.RandomUnitary(rng, 4), p.SiteIndex(r, c), p.SiteIndex(r, c+1), opts)
			}
		}
		for r := 0; r < 2; r++ {
			for c := 0; c < 3; c++ {
				p.ApplyTwoSite(quantum.RandomUnitary(rng, 4), p.SiteIndex(r, c), p.SiteIndex(r+1, c), opts)
			}
		}
	}
	if p.MaxBond() > 2 {
		t.Fatalf("bond dimension %d exceeds cap 2", p.MaxBond())
	}
}

func TestContractionAlgorithmsAgreeOnRandomNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := RandomNoPhys(eng, rng, 4, 4, 3)
	want := p.ContractScalar(Exact{})
	for name, opt := range map[string]ContractOption{
		"bmps-large":  BMPS{M: 256, Strategy: explicit()},
		"ibmps-large": BMPS{M: 256, Strategy: implicit(1)},
	} {
		got := p.ContractScalar(opt)
		if cmplx.Abs(got-want) > 1e-8*cmplx.Abs(want) {
			t.Errorf("%s: %v vs exact %v", name, got, want)
		}
	}
}

func TestContractionErrorDecreasesWithM(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	p := RandomNoPhys(eng, rng, 4, 4, 4)
	want := p.ContractScalar(Exact{})
	errAt := func(m int) float64 {
		return RelativeError(p.ContractScalar(BMPS{M: m, Strategy: explicit()}), want)
	}
	e4, e64 := errAt(4), errAt(64)
	if e64 > 1e-8 {
		t.Fatalf("large-m contraction should be near exact, err %g", e64)
	}
	if e4 < e64 {
		t.Fatalf("error should not increase with m: e4=%g e64=%g", e4, e64)
	}
}

func TestInnerMethodsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := Random(eng, rng, 3, 3, 2, 2)
	b := Random(eng, rng, 3, 3, 2, 2)
	want := a.Inner(b, Exact{})
	for name, opt := range map[string]ContractOption{
		"bmps":         BMPS{M: 128, Strategy: explicit()},
		"ibmps":        BMPS{M: 128, Strategy: implicit(2)},
		"2layer-bmps":  TwoLayerBMPS{M: 128, Strategy: explicit()},
		"2layer-ibmps": TwoLayerBMPS{M: 128, Strategy: implicit(3)},
	} {
		got := a.Inner(b, opt)
		if cmplx.Abs(got-want) > 1e-7*cmplx.Abs(want) {
			t.Errorf("%s: inner %v, want %v", name, got, want)
		}
	}
}

func TestNormOfUnitaryCircuitIsOne(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	p := ComputationalZeros(eng, 2, 3)
	opts := UpdateOptions{Rank: 0, Method: UpdateQR}
	for i := 0; i < 6; i++ {
		p.ApplyOneSite(quantum.RandomUnitary(rng, 2), i)
	}
	for _, pair := range [][2]int{{0, 1}, {1, 2}, {3, 4}, {4, 5}, {0, 3}, {2, 5}} {
		p.ApplyTwoSite(quantum.RandomUnitary(rng, 4), pair[0], pair[1], opts)
	}
	if n := p.Norm(TwoLayerBMPS{M: 256, Strategy: explicit()}); math.Abs(n-1) > 1e-9 {
		t.Fatalf("norm = %g, want 1", n)
	}
}

func TestLogScaleBookkeeping(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g1 := quantum.RandomUnitary(rng, 4).Scale(2.5) // non-unitary scale
	g2 := quantum.RandomUnitary(rng, 4)
	mk := func(normalize bool) *PEPS {
		p := ComputationalZeros(eng, 2, 2)
		opts := UpdateOptions{Rank: 0, Method: UpdateQR, Normalize: normalize}
		p.ApplyOneSite(quantum.H(), 0)
		p.ApplyTwoSite(g1, 0, 1, opts)
		p.ApplyTwoSite(g2, 1, 3, opts)
		return p
	}
	a := mk(false)
	b := mk(true)
	opt := BMPS{M: 64, Strategy: explicit()}
	for _, bits := range allBits(4) {
		av, bv := a.Amplitude(bits, opt), b.Amplitude(bits, opt)
		if cmplx.Abs(av-bv) > 1e-9*(1+cmplx.Abs(av)) {
			t.Fatalf("normalization changed amplitudes: %v vs %v", av, bv)
		}
	}
	if b.LogScale == 0 {
		t.Fatal("normalized updates should have accumulated LogScale")
	}
}

func TestExpectationMatchesStateVector(t *testing.T) {
	// Evolve a small circuit exactly, then compare <H> against the state
	// vector for the TFI Hamiltonian.
	rng := rand.New(rand.NewSource(14))
	rows, cols := 2, 2
	ps := ComputationalZeros(eng, rows, cols)
	sv := statevector.Zeros(4)
	opts := UpdateOptions{Rank: 0, Method: UpdateQR}
	gates := []quantum.TrotterGate{
		{Sites: []int{0}, Gate: quantum.H()},
		{Sites: []int{0, 1}, Gate: quantum.CX()},
		{Sites: []int{2}, Gate: quantum.Ry(0.9)},
		{Sites: []int{2, 3}, Gate: quantum.RandomUnitary(rng, 4)},
		{Sites: []int{1, 3}, Gate: quantum.Gate4(quantum.ISwap())},
	}
	for _, g := range gates {
		ps.ApplyGate(g, opts)
		sv.ApplyGate(g)
	}
	obs := quantum.TransverseFieldIsing(rows, cols, -1, -3.5)
	want := real(sv.Expectation(obs))
	for _, cached := range []bool{false, true} {
		got := real(ps.Expectation(obs, ExpectationOptions{M: 64, Strategy: explicit(), UseCache: cached}))
		if math.Abs(got-want) > 1e-8*(1+math.Abs(want)) {
			t.Errorf("cached=%v: expectation %g, want %g", cached, got, want)
		}
	}
}

func TestExpectationWithDiagonalTerms(t *testing.T) {
	// J1-J2 includes diagonal two-site terms that exercise SWAP routing
	// inside expectation evaluation.
	rng := rand.New(rand.NewSource(15))
	rows, cols := 2, 2
	ps := ComputationalZeros(eng, rows, cols)
	sv := statevector.Zeros(4)
	opts := UpdateOptions{Rank: 0, Method: UpdateQR}
	for q := 0; q < 4; q++ {
		g := quantum.RandomUnitary(rng, 2)
		ps.ApplyOneSite(g, q)
		sv.ApplyOne(g, q)
	}
	g2 := quantum.RandomUnitary(rng, 4)
	ps.ApplyTwoSite(g2, 0, 1, opts)
	sv.ApplyTwo(g2, 0, 1)
	obs := quantum.J1J2Heisenberg(rows, cols, quantum.PaperJ1J2Params())
	want := real(sv.Expectation(obs))
	for _, cached := range []bool{false, true} {
		got := real(ps.Expectation(obs, ExpectationOptions{M: 64, Strategy: explicit(), UseCache: cached}))
		if math.Abs(got-want) > 1e-7*(1+math.Abs(want)) {
			t.Errorf("cached=%v: J1J2 expectation %g, want %g", cached, got, want)
		}
	}
}

func TestCachedAndDirectExpectationAgreeOnLargerLattice(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	p := Random(eng, rng, 3, 4, 2, 2)
	obs := quantum.TransverseFieldIsing(3, 4, -1, -3.5)
	direct := p.Expectation(obs, ExpectationOptions{M: 64, Strategy: explicit()})
	cached := p.Expectation(obs, ExpectationOptions{M: 64, Strategy: explicit(), UseCache: true})
	if cmplx.Abs(direct-cached) > 1e-6*(1+cmplx.Abs(direct)) {
		t.Fatalf("direct %v vs cached %v", direct, cached)
	}
	implicitVal := p.Expectation(obs, ExpectationOptions{M: 64, Strategy: implicit(4), UseCache: true})
	if cmplx.Abs(direct-implicitVal) > 1e-5*(1+cmplx.Abs(direct)) {
		t.Fatalf("explicit %v vs implicit %v", direct, implicitVal)
	}
}

func TestFlipVerticalInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	p := Random(eng, rng, 3, 2, 2, 2)
	f := p.FlipVertical().FlipVertical()
	for r := 0; r < p.Rows; r++ {
		for c := 0; c < p.Cols; c++ {
			if !tensor.AllClose(f.Site(r, c), p.Site(r, c), 0, 0) {
				t.Fatal("double flip is not identity")
			}
		}
	}
}

func TestProjectValidation(t *testing.T) {
	p := ComputationalZeros(eng, 2, 2)
	for _, f := range []func(){
		func() { p.Project([]int{0, 0}) },                              // wrong length
		func() { p.Project([]int{0, 0, 0, 2}) },                        // bit out of range
		func() { p.Coords(4) },                                         // site out of range
		func() { p.ApplyTwoSite(quantum.CX(), 1, 1, UpdateOptions{}) }, // same site
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSiteIndexRoundTrip(t *testing.T) {
	p := ComputationalZeros(eng, 3, 4)
	for s := 0; s < 12; s++ {
		r, c := p.Coords(s)
		if p.SiteIndex(r, c) != s {
			t.Fatalf("round trip failed at %d", s)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	p := Random(eng, rng, 2, 2, 2, 2)
	q := p.Clone()
	q.ApplyOneSite(quantum.X(), 0)
	if tensor.AllClose(p.Site(0, 0), q.Site(0, 0), 1e-12, 1e-12) {
		t.Fatal("clone shares site tensors")
	}
}
