package peps

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"gokoala/internal/einsumsvd"
	"gokoala/internal/quantum"
	"gokoala/internal/statevector"
)

func TestScaleAxis(t *testing.T) {
	m := quantum.Gate4(quantum.CX()) // [2,2,2,2]
	w := []float64{2, 3}
	scaled := scaleAxis(m, 1, w, false)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			for k := 0; k < 2; k++ {
				for l := 0; l < 2; l++ {
					want := m.At(i, j, k, l) * complex(w[j], 0)
					if scaled.At(i, j, k, l) != want {
						t.Fatalf("scaleAxis wrong at %d%d%d%d", i, j, k, l)
					}
				}
			}
		}
	}
	back := scaleAxis(scaled, 1, w, true)
	for i, v := range back.Data() {
		if cmplx.Abs(v-m.Data()[i]) > 1e-14 {
			t.Fatal("invert scaling did not round-trip")
		}
	}
}

func TestWeightedUpdateExactMatchesStateVector(t *testing.T) {
	// With no truncation the weighted update must represent the same
	// state as the plain update (weights just refactor the gauge).
	rows, cols := 2, 3
	rng := rand.New(rand.NewSource(51))
	var gates []quantum.TrotterGate
	for layer := 0; layer < 2; layer++ {
		for q := 0; q < 6; q++ {
			gates = append(gates, quantum.TrotterGate{Sites: []int{q}, Gate: quantum.RandomUnitary(rng, 2)})
		}
		for _, pr := range [][2]int{{0, 1}, {1, 2}, {3, 4}, {4, 5}, {0, 3}, {2, 5}, {0, 4}} {
			gates = append(gates, quantum.TrotterGate{Sites: []int{pr[0], pr[1]}, Gate: quantum.RandomUnitary(rng, 4)})
		}
	}
	sv := statevector.Zeros(6)
	su := NewSimpleUpdate(ComputationalZeros(eng, rows, cols))
	for _, g := range gates {
		sv.ApplyGate(g)
		su.ApplyGate(g, 0, nil) // rank 0 = exact
	}
	p := su.Absorb()
	opt := BMPS{M: 1 << 16, Strategy: explicit()}
	for _, bits := range allBits(6) {
		want := sv.Amplitude(bits)
		got := p.Amplitude(bits, opt)
		if cmplx.Abs(got-want) > 1e-8 {
			t.Fatalf("amplitude(%v) = %v, want %v", bits, got, want)
		}
	}
}

func TestWeightedUpdateRespectsRankCap(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	su := NewSimpleUpdate(ComputationalZeros(eng, 3, 3))
	for layer := 0; layer < 3; layer++ {
		for q := 0; q < 9; q++ {
			su.ApplyGate(quantum.TrotterGate{Sites: []int{q}, Gate: quantum.RandomUnitary(rng, 2)}, 2, nil)
		}
		for r := 0; r < 3; r++ {
			for c := 0; c+1 < 3; c++ {
				su.ApplyGate(quantum.TrotterGate{
					Sites: []int{3*r + c, 3*r + c + 1}, Gate: quantum.RandomUnitary(rng, 4),
				}, 2, nil)
			}
		}
		for r := 0; r+1 < 3; r++ {
			for c := 0; c < 3; c++ {
				su.ApplyGate(quantum.TrotterGate{
					Sites: []int{3*r + c, 3*(r+1) + c}, Gate: quantum.RandomUnitary(rng, 4),
				}, 2, nil)
			}
		}
	}
	if su.State.MaxBond() > 2 {
		t.Fatalf("weighted update exceeded rank cap: %d", su.State.MaxBond())
	}
	// Weight vectors track the bond dimensions.
	for r := 0; r < 3; r++ {
		for c := 0; c+1 < 3; c++ {
			if len(su.HW[r][c]) != su.State.Site(r, c).Dim(3) {
				t.Fatal("HW length out of sync with bond dimension")
			}
		}
	}
}

func TestWeightedITEBeatsPlainOnJ1J2(t *testing.T) {
	// The weighted simple update should track the true ground state at
	// least as well as the plain per-bond update at equal rank (this is
	// its reason to exist). 2x2 J1-J2 at rank 2.
	rows, cols := 2, 2
	obs := quantum.J1J2Heisenberg(rows, cols, quantum.PaperJ1J2Params())
	rng := rand.New(rand.NewSource(53))
	exactE, _ := statevector.GroundState(obs, 4, rng)
	exactPerSite := exactE / 4

	gates := obs.TrotterGates(complex(-0.05, 0))
	const steps = 150
	expOpts := ExpectationOptions{M: 16, Strategy: explicit()}

	plain := ComputationalZeros(eng, rows, cols)
	for s := 0; s < 4; s++ {
		plain.ApplyOneSite(quantum.H(), s)
	}
	upd := UpdateOptions{Rank: 2, Method: UpdateQR, Normalize: true}
	for i := 0; i < steps; i++ {
		plain.ApplyCircuit(gates, upd)
	}
	plainE := plain.EnergyPerSite(obs, expOpts)

	su := NewSimpleUpdate(ComputationalZeros(eng, rows, cols))
	for s := 0; s < 4; s++ {
		su.State.ApplyOneSite(quantum.H(), s)
	}
	for i := 0; i < steps; i++ {
		su.ApplyCircuit(gates, 2, einsumsvd.Explicit{})
	}
	weightedE := su.Absorb().EnergyPerSite(obs, expOpts)

	gapPlain := math.Abs(plainE - exactPerSite)
	gapWeighted := math.Abs(weightedE - exactPerSite)
	t.Logf("exact %.4f plain %.4f (gap %.4f) weighted %.4f (gap %.4f)",
		exactPerSite, plainE, gapPlain, weightedE, gapWeighted)
	if gapWeighted > gapPlain*1.1 {
		t.Fatalf("weighted update (gap %g) should not lose to plain (gap %g)", gapWeighted, gapPlain)
	}
}

func TestRoutedApplicationsSymmetric(t *testing.T) {
	steps := routedApplications(0, 0, 2, 2)
	gates := 0
	for _, s := range steps {
		if s.gate {
			gates++
		}
	}
	if gates != 1 {
		t.Fatalf("routed sequence has %d gate steps, want 1", gates)
	}
	// Swap-in and swap-out counts match.
	if (len(steps)-1)%2 != 0 {
		t.Fatalf("swap steps not paired: %d", len(steps)-1)
	}
}
