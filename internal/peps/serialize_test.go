package peps

import (
	"bytes"
	"math/rand"
	"testing"

	"gokoala/internal/quantum"
	"gokoala/internal/tensor"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	p := Random(eng, rng, 3, 2, 2, 3)
	p.LogScale = 1.25
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Load(&buf, eng)
	if err != nil {
		t.Fatal(err)
	}
	if q.Rows != 3 || q.Cols != 2 || q.LogScale != 1.25 {
		t.Fatalf("header mismatch: %d %d %g", q.Rows, q.Cols, q.LogScale)
	}
	for r := 0; r < 3; r++ {
		for c := 0; c < 2; c++ {
			if !tensor.AllClose(q.Site(r, c), p.Site(r, c), 0, 0) {
				t.Fatalf("site (%d,%d) differs after round trip", r, c)
			}
		}
	}
}

func TestSaveLoadPreservesPhysics(t *testing.T) {
	// Evolve, checkpoint, restore, and compare an amplitude.
	p := ComputationalZeros(eng, 2, 2)
	p.ApplyOneSite(quantum.H(), 0)
	p.ApplyTwoSite(quantum.CX(), 0, 1, UpdateOptions{Rank: 0, Method: UpdateQR, Normalize: true})
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Load(&buf, eng)
	if err != nil {
		t.Fatal(err)
	}
	opt := BMPS{M: 16, Strategy: explicit()}
	for _, bits := range allBits(4) {
		a, b := p.Amplitude(bits, opt), q.Amplitude(bits, opt)
		if a != b {
			t.Fatalf("amplitude(%v) changed across checkpoint: %v vs %v", bits, a, b)
		}
	}
}

func TestLoadRejectsCorruptInput(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	p := Random(eng, rng, 2, 2, 2, 2)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Truncation inside the float payload of a site (not just at a
	// header boundary): the loader must report short reads as errors.
	payloadCut := good[:len(good)-9]

	// A NaN amplitude in the payload: every f64 after the header is
	// payload for some site, so smash one with a quiet-NaN bit pattern.
	nan := append([]byte{}, good...)
	for i := 0; i < 8; i++ {
		nan[len(nan)-8+i] = 0xff
	}

	cases := map[string][]byte{
		"empty":             {},
		"bad magic":         append([]byte("NOPE"), good[4:]...),
		"truncated":         good[:len(good)/2],
		"payload truncated": payloadCut,
		"bad version":       append(append([]byte("PEPS"), 99, 0, 0, 0), good[8:]...),
		"nan amplitude":     nan,
	}
	for name, data := range cases {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("%s: Load panicked (%v) instead of returning an error", name, r)
				}
			}()
			if _, err := Load(bytes.NewReader(data), eng); err == nil {
				t.Errorf("%s: Load should fail", name)
			}
		}()
	}
}

func TestLoadValidatesBondConsistency(t *testing.T) {
	// Hand-craft a payload with mismatched bonds by saving a valid state
	// and corrupting one dimension field. A corrupt checkpoint must come
	// back from Load as an error — a panic would crash the resuming run
	// this format exists to save.
	rng := rand.New(rand.NewSource(42))
	p := Random(eng, rng, 2, 2, 2, 3)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// First site record begins after magic(4)+hdr(12)+logscale(8) = 24;
	// rank u32, then 5 dims. Corrupt the right-bond dim (index 3).
	off := 24 + 4 + 3*4
	data[off] = 7
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Load panicked (%v) instead of returning an error", r)
		}
	}()
	if _, err := Load(bytes.NewReader(data), eng); err == nil {
		t.Error("Load accepted inconsistent bonds")
	}
}

func TestLoadRejectsOversizedSite(t *testing.T) {
	// Five dims near 2^20 would overflow the element-count product on
	// 64-bit int multiplication chains and demand terabytes; Load must
	// reject the header before allocating anything.
	rng := rand.New(rand.NewSource(43))
	p := Random(eng, rng, 1, 1, 2, 2)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Rewrite all 5 dims of the single site to 2^20.
	for i := 0; i < 5; i++ {
		off := 24 + 4 + i*4
		data[off], data[off+1], data[off+2], data[off+3] = 0, 0, 16, 0
	}
	if _, err := Load(bytes.NewReader(data), eng); err == nil {
		t.Fatal("Load accepted a site with ~2^100 elements")
	}
}
