package peps

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"gokoala/internal/quantum"
	"gokoala/internal/statevector"
	"gokoala/internal/tensor"
)

func TestEnvironmentCutsAgree(t *testing.T) {
	// <psi|psi> computed by closing top and bottom environments must be
	// the same at every row cut (the invariant behind the caching scheme).
	rng := rand.New(rand.NewSource(30))
	p := Random(eng, rng, 4, 3, 2, 2)
	tops := p.TopEnvironments(32, explicit())
	bottoms := p.BottomEnvironments(32, explicit())
	ref := closeBoundaries(p.eng, tops[0], bottoms[0])
	for k := 1; k <= p.Rows; k++ {
		v := closeBoundaries(p.eng, tops[k], bottoms[k])
		if cmplx.Abs(v-ref) > 1e-8*cmplx.Abs(ref) {
			t.Fatalf("cut %d: %v != %v", k, v, ref)
		}
	}
	// And it must match the independent two-layer inner product.
	inner := p.Inner(p, TwoLayerBMPS{M: 32, Strategy: explicit()})
	if cmplx.Abs(inner-ref) > 1e-8*cmplx.Abs(ref) {
		t.Fatalf("environments %v vs Inner %v", ref, inner)
	}
}

func TestEnvironmentBondCapRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	p := Random(eng, rng, 4, 4, 2, 3)
	tops := p.TopEnvironments(5, explicit())
	for k, b := range tops {
		if mb := b.maxBond(); mb > 5 {
			t.Fatalf("tops[%d] bond %d exceeds cap", k, mb)
		}
	}
}

func TestTruncatedCircuitFidelity(t *testing.T) {
	// A truncated PEPS evolution is an approximation: its fidelity with
	// the exact state must be <= 1 and grow with the bond cap.
	rng := rand.New(rand.NewSource(32))
	var gates []quantum.TrotterGate
	for layer := 0; layer < 3; layer++ {
		for q := 0; q < 6; q++ {
			gates = append(gates, quantum.TrotterGate{Sites: []int{q}, Gate: quantum.RandomUnitary(rng, 2)})
		}
		for _, pr := range [][2]int{{0, 1}, {1, 2}, {3, 4}, {4, 5}, {0, 3}, {2, 5}} {
			gates = append(gates, quantum.TrotterGate{Sites: []int{pr[0], pr[1]}, Gate: quantum.RandomUnitary(rng, 4)})
		}
	}
	sv := statevector.Zeros(6)
	for _, g := range gates {
		sv.ApplyGate(g)
	}
	fidelity := func(rank int) float64 {
		p := ComputationalZeros(eng, 2, 3)
		opts := UpdateOptions{Rank: rank, Method: UpdateQR}
		for _, g := range gates {
			p.ApplyGate(g, opts)
		}
		// Enumerate amplitudes exactly so both the overlap and the norm
		// are free of contraction error.
		var overlap complex128
		var norm2 float64
		opt := BMPS{M: 1 << 16, Strategy: explicit()}
		for _, bits := range allBits(6) {
			amp := p.Amplitude(bits, opt)
			overlap += cmplx.Conj(sv.Amplitude(bits)) * amp
			norm2 += real(amp)*real(amp) + imag(amp)*imag(amp)
		}
		return cmplx.Abs(overlap) / math.Sqrt(norm2)
	}
	// Note: because the lattice has loops, no single-bond Schmidt bound
	// guarantees exactness at finite rank; only the untruncated evolution
	// (rank 0) is exact.
	f2, f4, fExact := fidelity(2), fidelity(4), fidelity(0)
	if f2 > 1+1e-9 || f4 > 1+1e-9 || fExact > 1+1e-9 {
		t.Fatalf("fidelity above 1: %g %g %g", f2, f4, fExact)
	}
	if f4 < f2-1e-9 {
		t.Fatalf("fidelity should improve with rank: f2=%g f4=%g", f2, f4)
	}
	if fExact < 1-1e-9 {
		t.Fatalf("untruncated evolution should be exact, fidelity %g", fExact)
	}
}

func TestNormalizedInnerSelfIsOne(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	p := Random(eng, rng, 3, 3, 2, 2)
	v := p.NormalizedInner(p, BMPS{M: 64, Strategy: explicit()})
	if cmplx.Abs(v-1) > 1e-9 {
		t.Fatalf("normalized self inner = %v", v)
	}
}

func TestLogScaleAffectsInnerConsistently(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	p := Random(eng, rng, 2, 2, 2, 2)
	q := p.Clone()
	// Scale one site down and push the factor into LogScale: the state is
	// unchanged, so inner products must be unchanged.
	s := q.Site(0, 0)
	s.ScaleInPlace(complex(math.Exp(-2), 0))
	q.LogScale += 2
	opt := TwoLayerBMPS{M: 32, Strategy: explicit()}
	a := p.Inner(p, opt)
	b := q.Inner(q, opt)
	if cmplx.Abs(a-b) > 1e-9*cmplx.Abs(a) {
		t.Fatalf("LogScale bookkeeping broke Inner: %v vs %v", a, b)
	}
	c := p.Inner(q, opt)
	if cmplx.Abs(a-c) > 1e-9*cmplx.Abs(a) {
		t.Fatalf("mixed Inner wrong: %v vs %v", a, c)
	}
	// ContractScalar path too (one-layer).
	pl := RandomNoPhys(eng, rng, 3, 3, 2)
	ql := pl.ShallowClone()
	ql.SetSite(1, 1, pl.Site(1, 1).Scale(complex(math.Exp(-1), 0)))
	ql.LogScale++
	va := pl.ContractScalar(BMPS{M: 16, Strategy: explicit()})
	vb := ql.ContractScalar(BMPS{M: 16, Strategy: explicit()})
	if cmplx.Abs(va-vb) > 1e-9*cmplx.Abs(va) {
		t.Fatalf("LogScale broke ContractScalar: %v vs %v", va, vb)
	}
}

func TestExpectationOptionValidation(t *testing.T) {
	p := ComputationalZeros(eng, 2, 2)
	obs := quantum.ObservableZ(0)
	for _, f := range []func(){
		func() { p.Expectation(obs, ExpectationOptions{M: 0, Strategy: explicit()}) },
		func() { p.Expectation(obs, ExpectationOptions{M: 4}) },
		func() { p.Expectation(quantum.ObservableZ(7), ExpectationOptions{M: 4, Strategy: explicit()}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSanityCheckNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	p := Random(eng, rng, 2, 2, 2, 2)
	if !p.SanityCheckNorm(ExpectationOptions{M: 16, Strategy: explicit()}) {
		t.Fatal("healthy state failed norm sanity check")
	}
}

func TestMergeLayersDimensions(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	a := Random(eng, rng, 2, 3, 2, 2)
	b := Random(eng, rng, 2, 3, 2, 3)
	m := MergeLayers(a, b)
	// Interior bonds multiply: 2*3 = 6.
	if m.Site(0, 1).Dim(3) != 6 {
		t.Fatalf("merged bond = %d, want 6", m.Site(0, 1).Dim(3))
	}
	if m.Site(0, 0).Dim(4) != 1 {
		t.Fatal("merged network should have trivial physical dims")
	}
	// Value agrees with exact two-layer inner product.
	want := a.Inner(b, Exact{})
	got := m.ContractScalar(Exact{})
	if cmplx.Abs(got-want) > 1e-10*(1+cmplx.Abs(want)) {
		t.Fatalf("MergeLayers value %v, want %v", got, want)
	}
}

func TestMergeLayersSizeMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	a := Random(eng, rng, 2, 2, 2, 2)
	b := Random(eng, rng, 2, 3, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MergeLayers(a, b)
}

func TestTransposeLatticeContractionInvariant(t *testing.T) {
	// Contracting columns (via the transposed lattice) must equal
	// contracting rows, exactly for Exact and closely for truncated BMPS.
	rng := rand.New(rand.NewSource(38))
	p := RandomNoPhys(eng, rng, 3, 5, 3)
	q := p.TransposeLattice()
	if q.Rows != 5 || q.Cols != 3 {
		t.Fatalf("transposed shape %dx%d", q.Rows, q.Cols)
	}
	a := p.ContractScalar(Exact{})
	b := q.ContractScalar(Exact{})
	if cmplx.Abs(a-b) > 1e-10*cmplx.Abs(a) {
		t.Fatalf("row vs column exact contraction: %v vs %v", a, b)
	}
	c := q.ContractScalar(BMPS{M: 64, Strategy: explicit()})
	if cmplx.Abs(a-c) > 1e-8*cmplx.Abs(a) {
		t.Fatalf("column BMPS %v vs exact %v", c, a)
	}
	// Double transpose is the identity.
	rt := q.TransposeLattice()
	for r := 0; r < p.Rows; r++ {
		for col := 0; col < p.Cols; col++ {
			if !tensor.AllClose(rt.Site(r, col), p.Site(r, col), 0, 0) {
				t.Fatal("double lattice transpose is not identity")
			}
		}
	}
}

func TestTransposeLatticeInnerInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(39))
	a := Random(eng, rng, 2, 4, 2, 2)
	b := Random(eng, rng, 2, 4, 2, 2)
	want := a.Inner(b, TwoLayerBMPS{M: 64, Strategy: explicit()})
	got := a.TransposeLattice().Inner(b.TransposeLattice(), TwoLayerBMPS{M: 64, Strategy: explicit()})
	if cmplx.Abs(got-want) > 1e-8*(1+cmplx.Abs(want)) {
		t.Fatalf("transposed inner %v vs %v", got, want)
	}
}
