package peps

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"gokoala/internal/backend"
	"gokoala/internal/tensor"
)

// Serialization: a compact binary format for checkpointing PEPS states
// across long evolutions. Layout (all little-endian):
//
//	magic "PEPS" | version u32 | rows u32 | cols u32 | logscale f64 |
//	per site (row-major): rank u32, dims [rank]u32, data [size]{f64,f64}
const (
	serializeMagic   = "PEPS"
	serializeVersion = 1

	// maxSiteElems bounds a single site tensor's element count during
	// Load (2^28 complex128s is already 4 GiB); it guards both against
	// absurd allocations from corrupt headers and against int overflow
	// in the dims product.
	maxSiteElems = 1 << 28
)

// Save writes the state to w in the checkpoint format.
func (p *PEPS) Save(w io.Writer) error {
	if _, err := io.WriteString(w, serializeMagic); err != nil {
		return fmt.Errorf("peps: save: %w", err)
	}
	hdr := []uint32{serializeVersion, uint32(p.Rows), uint32(p.Cols)}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return fmt.Errorf("peps: save: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, p.LogScale); err != nil {
		return fmt.Errorf("peps: save: %w", err)
	}
	for r := 0; r < p.Rows; r++ {
		for c := 0; c < p.Cols; c++ {
			t := p.sites[r][c]
			shape := t.Shape()
			if err := binary.Write(w, binary.LittleEndian, uint32(len(shape))); err != nil {
				return fmt.Errorf("peps: save: %w", err)
			}
			dims := make([]uint32, len(shape))
			for i, d := range shape {
				dims[i] = uint32(d)
			}
			if err := binary.Write(w, binary.LittleEndian, dims); err != nil {
				return fmt.Errorf("peps: save: %w", err)
			}
			buf := make([]float64, 0, 2*t.Size())
			for _, v := range t.Data() {
				buf = append(buf, real(v), imag(v))
			}
			if err := binary.Write(w, binary.LittleEndian, buf); err != nil {
				return fmt.Errorf("peps: save: %w", err)
			}
		}
	}
	return nil
}

// Load reads a state written by Save, attaching the given engine.
func Load(r io.Reader, eng backend.Engine) (*PEPS, error) {
	magic := make([]byte, len(serializeMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("peps: load: %w", err)
	}
	if string(magic) != serializeMagic {
		return nil, fmt.Errorf("peps: load: bad magic %q", magic)
	}
	var hdr [3]uint32
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("peps: load: %w", err)
	}
	if hdr[0] != serializeVersion {
		return nil, fmt.Errorf("peps: load: unsupported version %d", hdr[0])
	}
	rows, cols := int(hdr[1]), int(hdr[2])
	if rows <= 0 || cols <= 0 || rows > 1<<12 || cols > 1<<12 {
		return nil, fmt.Errorf("peps: load: implausible lattice %dx%d", rows, cols)
	}
	var logScale float64
	if err := binary.Read(r, binary.LittleEndian, &logScale); err != nil {
		return nil, fmt.Errorf("peps: load: %w", err)
	}
	if math.IsNaN(logScale) || math.IsInf(logScale, 0) {
		return nil, fmt.Errorf("peps: load: invalid log scale")
	}
	sites := make([][]*tensor.Dense, rows)
	for rr := 0; rr < rows; rr++ {
		sites[rr] = make([]*tensor.Dense, cols)
		for cc := 0; cc < cols; cc++ {
			var rank uint32
			if err := binary.Read(r, binary.LittleEndian, &rank); err != nil {
				return nil, fmt.Errorf("peps: load site (%d,%d): %w", rr, cc, err)
			}
			if rank != 5 {
				return nil, fmt.Errorf("peps: load site (%d,%d): rank %d, want 5", rr, cc, rank)
			}
			dims := make([]uint32, rank)
			if err := binary.Read(r, binary.LittleEndian, dims); err != nil {
				return nil, fmt.Errorf("peps: load site (%d,%d): %w", rr, cc, err)
			}
			shape := make([]int, rank)
			size := 1
			for i, d := range dims {
				if d == 0 || d > 1<<20 {
					return nil, fmt.Errorf("peps: load site (%d,%d): implausible dim %d", rr, cc, d)
				}
				shape[i] = int(d)
				size *= int(d)
				// Cap the cumulative element count: five dims of up to
				// 2^20 each can overflow int through this product, and
				// even before overflow a fabricated multi-terabyte site
				// must be rejected rather than allocated.
				if size > maxSiteElems {
					return nil, fmt.Errorf("peps: load site (%d,%d): site size exceeds %d elements", rr, cc, maxSiteElems)
				}
			}
			buf := make([]float64, 2*size)
			if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
				return nil, fmt.Errorf("peps: load site (%d,%d): %w", rr, cc, err)
			}
			data := make([]complex128, size)
			for i := range data {
				re, im := buf[2*i], buf[2*i+1]
				if math.IsNaN(re) || math.IsInf(re, 0) || math.IsNaN(im) || math.IsInf(im, 0) {
					return nil, fmt.Errorf("peps: load site (%d,%d): non-finite amplitude at element %d", rr, cc, i)
				}
				data[i] = complex(re, im)
			}
			sites[rr][cc] = tensor.FromData(data, shape...)
		}
	}
	p := &PEPS{Rows: rows, Cols: cols, LogScale: logScale, sites: sites, eng: eng}
	// Untrusted input: a corrupt checkpoint must come back as an error a
	// resuming run can handle, never a panic.
	if err := p.checkValid(); err != nil {
		return nil, fmt.Errorf("peps: load: %w", err)
	}
	return p, nil
}
