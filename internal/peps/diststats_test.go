package peps

import (
	"math/rand"
	"testing"

	"gokoala/internal/backend"
	"gokoala/internal/dist"
	"gokoala/internal/pool"
	"gokoala/internal/quantum"
)

// TestDistStatsWorkerCountInvariant is the regression test for the grid
// accounting race: when lattice task groups drive a Dist engine from
// several workers, the modeled-time accumulators must end at exactly the
// same values as a single-worker run. The accumulators hold integer
// picoseconds, so concurrent interleavings commute; float accumulators
// would differ in the last ulps depending on addition order (and the old
// unprotected fields dropped updates outright).
func TestDistStatsWorkerCountInvariant(t *testing.T) {
	defer pool.SetWorkers(0)
	run := func(workers int) dist.Stats {
		pool.SetWorkers(workers)
		g := dist.NewGrid(dist.Stampede2(16))
		eng := backend.NewDist(g, true)
		rng := rand.New(rand.NewSource(51))
		p := Random(eng, rng, 3, 3, 2, 2)
		h := quantum.TransverseFieldIsing(3, 3, 1.0, 3.0)
		// Cached expectation: environment sweeps and per-term strips all
		// run as concurrent lattice tasks on the shared grid.
		e := p.EnergyPerSite(h, ExpectationOptions{M: 4, Strategy: explicit(), UseCache: true})
		if e == 0 {
			t.Fatal("degenerate energy")
		}
		return g.Snapshot()
	}
	s1 := run(1)
	s4 := run(4)
	if s1 != s4 {
		t.Fatalf("grid stats differ between 1 and 4 workers:\n1: %+v\n4: %+v", s1, s4)
	}
	if s1.CompSeconds <= 0 || s1.Msgs <= 0 {
		t.Fatalf("implausible accounting: %+v", s1)
	}
}
