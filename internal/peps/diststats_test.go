package peps

import (
	"math/rand"
	"testing"

	"gokoala/internal/backend"
	"gokoala/internal/dist"
	"gokoala/internal/obs"
	"gokoala/internal/pool"
	"gokoala/internal/quantum"
)

// TestDistStatsWorkerCountInvariant is the regression test for the grid
// accounting race: when lattice task groups drive a Dist engine from
// several workers, the modeled-time accumulators must end at exactly the
// same values as a single-worker run. The accumulators hold integer
// picoseconds, so concurrent interleavings commute; float accumulators
// would differ in the last ulps depending on addition order (and the old
// unprotected fields dropped updates outright).
func TestDistStatsWorkerCountInvariant(t *testing.T) {
	defer pool.SetWorkers(0)
	run := func(workers int) (dist.Stats, []obs.RankRecord) {
		pool.SetWorkers(workers)
		g := dist.NewGrid(dist.Stampede2(16))
		eng := backend.NewDist(g, true)
		rng := rand.New(rand.NewSource(51))
		p := Random(eng, rng, 3, 3, 2, 2)
		h := quantum.TransverseFieldIsing(3, 3, 1.0, 3.0)
		// Cached expectation: environment sweeps and per-term strips all
		// run as concurrent lattice tasks on the shared grid.
		e := p.EnergyPerSite(h, ExpectationOptions{M: 4, Strategy: explicit(), UseCache: true})
		if e == 0 {
			t.Fatal("degenerate energy")
		}
		return g.Snapshot(), g.RankTimelines()
	}
	s1, r1 := run(1)
	s4, r4 := run(4)
	if s1 != s4 {
		t.Fatalf("grid stats differ between 1 and 4 workers:\n1: %+v\n4: %+v", s1, s4)
	}
	if s1.CompSeconds <= 0 || s1.Msgs <= 0 {
		t.Fatalf("implausible accounting: %+v", s1)
	}
	// The per-rank timeline totals share the integer-picosecond
	// determinism contract with the aggregate stats.
	if len(r1) != len(r4) {
		t.Fatalf("rank record counts differ: %d vs %d", len(r1), len(r4))
	}
	for i := range r1 {
		a, b := r1[i], r4[i]
		if a.CompSeconds != b.CompSeconds || a.LatSeconds != b.LatSeconds ||
			a.BWSeconds != b.BWSeconds || a.WaitSeconds != b.WaitSeconds {
			t.Fatalf("rank %d timeline differs between 1 and 4 workers:\n1: %+v\n4: %+v", i, a, b)
		}
	}
}
