package peps

import (
	"fmt"
	"math"

	"gokoala/internal/einsumsvd"
	"gokoala/internal/health"
	"gokoala/internal/obs"
	"gokoala/internal/pool"
	"gokoala/internal/quantum"
)

// ExpectationOptions configures expectation-value evaluation.
type ExpectationOptions struct {
	// M is the truncation bond dimension for boundary contractions.
	M int
	// Strategy is the einsumsvd strategy for boundary contractions
	// (Explicit ~ BMPS, ImplicitRand ~ IBMPS).
	Strategy einsumsvd.Strategy
	// UseCache enables the intermediate-caching scheme of paper section
	// IV-B: the row environments of <psi|psi> are computed once (two full
	// two-layer sweeps) and every local term is then evaluated with a
	// strip contraction.
	UseCache bool
}

// Expectation returns the Rayleigh quotient <psi|H|psi> / <psi|psi> for a
// Hamiltonian given as a sum of local terms.
func (p *PEPS) Expectation(h *quantum.Observable, opts ExpectationOptions) complex128 {
	if opts.M <= 0 {
		panic("peps: ExpectationOptions.M must be positive")
	}
	if opts.Strategy == nil {
		panic("peps: ExpectationOptions.Strategy must be set")
	}
	if ms := h.MaxSite(); ms >= p.Rows*p.Cols {
		panic(fmt.Sprintf("peps: observable touches site %d beyond lattice size %d", ms, p.Rows*p.Cols))
	}
	sp := obs.Start("peps.expectation").SetInt("terms", int64(len(h.Terms)))
	defer sp.End()
	var v complex128
	if opts.UseCache {
		sp.SetStr("mode", "cached")
		v = p.expectationCached(h, opts)
	} else {
		sp.SetStr("mode", "direct")
		v = p.expectationDirect(h, opts)
	}
	// Stage guard at the observable boundary: a NaN here is the first
	// user-visible symptom of a poisoned contraction upstream.
	health.CheckValue("peps.expectation", v)
	return v
}

// EnergyPerSite returns the real part of the expectation divided by the
// number of lattice sites, the quantity plotted in paper Figures 13-14.
func (p *PEPS) EnergyPerSite(h *quantum.Observable, opts ExpectationOptions) float64 {
	return real(p.Expectation(h, opts)) / float64(p.Rows*p.Cols)
}

// applyTermExact applies one observable term to a shallow clone of the
// state without truncation, returning |phi> = op |psi> (coefficient not
// included).
func (p *PEPS) applyTermExact(t quantum.Term) *PEPS {
	phi := p.ShallowClone()
	switch len(t.Sites) {
	case 1:
		phi.ApplyOneSite(t.Op, t.Sites[0])
	case 2:
		phi.ApplyTwoSite(t.Op, t.Sites[0], t.Sites[1], UpdateOptions{Rank: 0, Method: UpdateDirect})
	default:
		panic("peps: unsupported term arity")
	}
	return phi
}

// expectationDirect evaluates each term with a full two-layer contraction
// (paper equation 5 without caching): one contraction for the norm and
// one per term. The norm and all terms are independent lattice tasks;
// they run concurrently with per-task forked strategies and a fixed-order
// reduction, so results are bit-identical for every worker count.
func (p *PEPS) expectationDirect(h *quantum.Observable, opts ExpectationOptions) complex128 {
	n := len(h.Terms)
	sts := einsumsvd.Fork(opts.Strategy, 1+n)
	if sts == nil {
		opt := TwoLayerBMPS{M: opts.M, Strategy: opts.Strategy}
		den := p.Inner(p, opt)
		health.CheckValue("peps.norm", den)
		var num complex128
		for _, t := range h.Terms {
			phi := p.applyTermExact(t)
			num += t.Coef * p.Inner(phi, opt)
		}
		return num / den
	}
	var den complex128
	vals := make([]complex128, n)
	g := pool.NewGroup("peps.expectation.terms")
	g.Go(func() { den = p.Inner(p, TwoLayerBMPS{M: opts.M, Strategy: sts[0]}) })
	for i, t := range h.Terms {
		i, t := i, t
		g.Go(func() {
			phi := p.applyTermExact(t)
			vals[i] = t.Coef * p.Inner(phi, TwoLayerBMPS{M: opts.M, Strategy: sts[1+i]})
		})
	}
	g.Wait()
	health.CheckValue("peps.norm", den)
	var num complex128
	for _, v := range vals {
		num += v
	}
	return num / den
}

// expectationCached implements paper section IV-B: two full sweeps build
// the per-row top and bottom environments of <psi|psi>, and every local
// term is evaluated by contracting only the strip of rows it touches.
// The two environment sweeps run concurrently, and so do the per-term
// strip contractions; see expectationDirect for the determinism scheme.
func (p *PEPS) expectationCached(h *quantum.Observable, opts ExpectationOptions) complex128 {
	n := len(h.Terms)
	sts := einsumsvd.Fork(opts.Strategy, 2+n)
	if sts == nil {
		return p.expectationCachedSeq(h, opts)
	}
	var tops, bottoms []boundary
	eg := pool.NewGroup("peps.expectation.env")
	eg.Go(func() { tops = p.TopEnvironments(opts.M, sts[0]) })
	eg.Go(func() { bottoms = p.BottomEnvironments(opts.M, sts[1]) })
	eg.Wait()

	den := closeBoundaries(p.eng, tops[0], bottoms[0])
	health.CheckValue("peps.norm", den)
	vals := make([]complex128, n)
	tg := pool.NewGroup("peps.expectation.terms")
	for i, t := range h.Terms {
		i, t := i, t
		st := sts[2+i]
		tg.Go(func() {
			rlo, rhi := p.termRowSpan(t)
			phi := p.applyTermExact(t)
			s := tops[rlo]
			for r := rlo; r <= rhi; r++ {
				s = applyTwoLayerRow(p.eng, s, p.row(r), phi.row(r), opts.M, st)
			}
			vals[i] = t.Coef * closeBoundaries(p.eng, s, bottoms[rhi+1])
		})
	}
	tg.Wait()
	var num complex128
	for _, v := range vals {
		num += v
	}
	return num / den
}

// expectationCachedSeq is the sequential cached evaluation, the fallback
// for strategies that cannot be forked for concurrent use.
func (p *PEPS) expectationCachedSeq(h *quantum.Observable, opts ExpectationOptions) complex128 {
	tops := p.TopEnvironments(opts.M, opts.Strategy)
	bottoms := p.BottomEnvironments(opts.M, opts.Strategy)

	den := closeBoundaries(p.eng, tops[0], bottoms[0])
	health.CheckValue("peps.norm", den)
	var num complex128
	for _, t := range h.Terms {
		rlo, rhi := p.termRowSpan(t)
		phi := p.applyTermExact(t)
		s := tops[rlo]
		for r := rlo; r <= rhi; r++ {
			s = applyTwoLayerRow(p.eng, s, p.row(r), phi.row(r), opts.M, opts.Strategy)
		}
		num += t.Coef * closeBoundaries(p.eng, s, bottoms[rhi+1])
	}
	return num / den
}

// termRowSpan returns the inclusive row range a term's exact application
// modifies, including any SWAP routing for non-adjacent two-site terms
// (the routing of applyRouted stays within the rows of the two sites).
func (p *PEPS) termRowSpan(t quantum.Term) (int, int) {
	rlo, rhi := p.Rows, -1
	for _, s := range t.Sites {
		r, _ := p.Coords(s)
		if r < rlo {
			rlo = r
		}
		if r > rhi {
			rhi = r
		}
	}
	return rlo, rhi
}

// SanityCheckNorm reports whether the state's norm is finite and positive
// under the given contraction settings; useful in long evolutions.
func (p *PEPS) SanityCheckNorm(opts ExpectationOptions) bool {
	v := real(p.Inner(p, TwoLayerBMPS{M: opts.M, Strategy: opts.Strategy}))
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v > 0
}
