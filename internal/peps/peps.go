// Package peps implements projected entangled pair states on an open
// square lattice — the paper's primary contribution. It provides the
// evolution primitives (one- and two-site operator application, directly
// or via the QR-SVD update of paper Algorithm 1), the contraction
// algorithms (exact, boundary-MPS with explicit SVD = BMPS, with implicit
// randomized SVD = IBMPS, and the two-layer IBMPS variant), and the
// intermediate-caching expectation-value strategy of paper section IV-B.
//
// Site tensors use the axis order [up, left, down, right, phys]; boundary
// bonds have dimension one. Sites are addressed by (row, col) with row 0
// at the top, and flattened site indices are row*Cols + col, matching the
// paper's operator-site numbering.
package peps

import (
	"fmt"
	"math"
	"math/rand"

	"gokoala/internal/backend"
	"gokoala/internal/tensor"
)

// PEPS is a 2-D tensor network state. The represented amplitudes are the
// network contraction times exp(LogScale); the scale factor keeps site
// tensors O(1) across long imaginary-time evolutions.
type PEPS struct {
	Rows, Cols int
	// LogScale is the log of a global positive prefactor on all
	// amplitudes, maintained by normalizing updates.
	LogScale float64

	sites [][]*tensor.Dense
	eng   backend.Engine
}

// New wraps a grid of site tensors after validating shapes and bond
// consistency.
func New(eng backend.Engine, sites [][]*tensor.Dense) *PEPS {
	rows := len(sites)
	if rows == 0 || len(sites[0]) == 0 {
		panic("peps: empty lattice")
	}
	cols := len(sites[0])
	p := &PEPS{Rows: rows, Cols: cols, sites: sites, eng: eng}
	p.validate()
	return p
}

// validate panics on an inconsistent lattice; the panic form is for
// construction sites (New) where an inconsistent lattice is a programming
// error. Load validates untrusted bytes with checkValid instead, so a
// corrupt checkpoint surfaces as an error, never a crash.
func (p *PEPS) validate() {
	if err := p.checkValid(); err != nil {
		panic(err.Error())
	}
}

// checkValid verifies lattice shape and bond consistency, returning the
// first inconsistency as an error.
func (p *PEPS) checkValid() error {
	for r := 0; r < p.Rows; r++ {
		if len(p.sites[r]) != p.Cols {
			return fmt.Errorf("peps: ragged row %d", r)
		}
		for c := 0; c < p.Cols; c++ {
			t := p.sites[r][c]
			if t == nil {
				return fmt.Errorf("peps: missing site (%d,%d)", r, c)
			}
			if t.Rank() != 5 {
				return fmt.Errorf("peps: site (%d,%d) has rank %d, want 5", r, c, t.Rank())
			}
			if r == 0 && t.Dim(0) != 1 {
				return fmt.Errorf("peps: site (%d,%d) top boundary bond %d != 1", r, c, t.Dim(0))
			}
			if r == p.Rows-1 && t.Dim(2) != 1 {
				return fmt.Errorf("peps: site (%d,%d) bottom boundary bond %d != 1", r, c, t.Dim(2))
			}
			if c == 0 && t.Dim(1) != 1 {
				return fmt.Errorf("peps: site (%d,%d) left boundary bond %d != 1", r, c, t.Dim(1))
			}
			if c == p.Cols-1 && t.Dim(3) != 1 {
				return fmt.Errorf("peps: site (%d,%d) right boundary bond %d != 1", r, c, t.Dim(3))
			}
			if r+1 < p.Rows && t.Dim(2) != p.sites[r+1][c].Dim(0) {
				return fmt.Errorf("peps: vertical bond mismatch at (%d,%d)", r, c)
			}
			if c+1 < p.Cols && t.Dim(3) != p.sites[r][c+1].Dim(1) {
				return fmt.Errorf("peps: horizontal bond mismatch at (%d,%d)", r, c)
			}
		}
	}
	return nil
}

// Engine returns the backend engine the state computes with.
func (p *PEPS) Engine() backend.Engine { return p.eng }

// Site returns the tensor at (row, col).
func (p *PEPS) Site(r, c int) *tensor.Dense { return p.sites[r][c] }

// SetSite replaces the tensor at (row, col) without validation; callers
// must preserve bond consistency.
func (p *PEPS) SetSite(r, c int, t *tensor.Dense) { p.sites[r][c] = t }

// SiteIndex returns the flattened index of (row, col).
func (p *PEPS) SiteIndex(r, c int) int { return r*p.Cols + c }

// Coords returns the (row, col) of a flattened site index.
func (p *PEPS) Coords(site int) (int, int) {
	if site < 0 || site >= p.Rows*p.Cols {
		panic(fmt.Sprintf("peps: site %d out of range", site))
	}
	return site / p.Cols, site % p.Cols
}

// Clone returns a deep copy of the state.
func (p *PEPS) Clone() *PEPS {
	sites := make([][]*tensor.Dense, p.Rows)
	for r := range sites {
		sites[r] = make([]*tensor.Dense, p.Cols)
		for c := range sites[r] {
			sites[r][c] = p.sites[r][c].Clone()
		}
	}
	return &PEPS{Rows: p.Rows, Cols: p.Cols, LogScale: p.LogScale, sites: sites, eng: p.eng}
}

// ShallowClone copies the site grid but shares the tensors; used when only
// a few sites will be replaced (operator-application copies).
func (p *PEPS) ShallowClone() *PEPS {
	sites := make([][]*tensor.Dense, p.Rows)
	for r := range sites {
		sites[r] = append([]*tensor.Dense{}, p.sites[r]...)
	}
	return &PEPS{Rows: p.Rows, Cols: p.Cols, LogScale: p.LogScale, sites: sites, eng: p.eng}
}

// MaxBond returns the largest bond dimension in the network.
func (p *PEPS) MaxBond() int {
	m := 1
	for r := 0; r < p.Rows; r++ {
		for c := 0; c < p.Cols; c++ {
			t := p.sites[r][c]
			for _, ax := range []int{0, 1, 2, 3} {
				if t.Dim(ax) > m {
					m = t.Dim(ax)
				}
			}
		}
	}
	return m
}

// ComputationalZeros returns the product state |0...0> on a rows-by-cols
// lattice (all bond dimensions one), matching the paper's
// peps.computational_zeros.
func ComputationalZeros(eng backend.Engine, rows, cols int) *PEPS {
	return ComputationalBasis(eng, rows, cols, nil)
}

// ComputationalBasis returns the basis product state with the given bits
// in row-major order; nil means all zeros.
func ComputationalBasis(eng backend.Engine, rows, cols int, bits []int) *PEPS {
	if bits != nil && len(bits) != rows*cols {
		panic(fmt.Sprintf("peps: %d bits for %d sites", len(bits), rows*cols))
	}
	sites := make([][]*tensor.Dense, rows)
	for r := range sites {
		sites[r] = make([]*tensor.Dense, cols)
		for c := range sites[r] {
			t := tensor.New(1, 1, 1, 1, 2)
			b := 0
			if bits != nil {
				b = bits[r*cols+c] & 1
			}
			t.Set(1, 0, 0, 0, 0, b)
			sites[r][c] = t
		}
	}
	return New(eng, sites)
}

// Random returns a random PEPS with physical dimension d and uniform
// interior bond dimension bond.
func Random(eng backend.Engine, rng *rand.Rand, rows, cols, d, bond int) *PEPS {
	sites := make([][]*tensor.Dense, rows)
	dim := func(interior bool) int {
		if interior {
			return bond
		}
		return 1
	}
	for r := range sites {
		sites[r] = make([]*tensor.Dense, cols)
		for c := range sites[r] {
			u := dim(r > 0)
			l := dim(c > 0)
			dn := dim(r < rows-1)
			rt := dim(c < cols-1)
			t := tensor.Rand(rng, u, l, dn, rt, d)
			// Scale entries so contractions stay O(1) in magnitude.
			t.ScaleInPlace(complex(1/math.Sqrt(float64(u*l*dn*rt*d)), 0))
			sites[r][c] = t
		}
	}
	return New(eng, sites)
}

// RandomNoPhys returns a random PEPS without physical indices (physical
// dimension one), the workload of the paper's contraction benchmarks
// (Figure 8, Figure 11/12 contraction series).
func RandomNoPhys(eng backend.Engine, rng *rand.Rand, rows, cols, bond int) *PEPS {
	return Random(eng, rng, rows, cols, 1, bond)
}

// ApplyOneSite applies a 2x2 (more generally d'-by-d) one-site operator
// to the given site in place (paper equation 3).
func (p *PEPS) ApplyOneSite(g *tensor.Dense, site int) {
	r, c := p.Coords(site)
	if g.Rank() != 2 {
		panic("peps: one-site operator must be a matrix")
	}
	p.sites[r][c] = p.eng.Einsum("ij,uldrj->uldri", g, p.sites[r][c])
}

// Project contracts each site's physical leg with the corresponding basis
// vector <bit| and returns the resulting one-layer (physical-dimension-1)
// PEPS. Used to evaluate amplitudes <i|psi> (paper section II-C2).
func (p *PEPS) Project(bits []int) *PEPS {
	if len(bits) != p.Rows*p.Cols {
		panic(fmt.Sprintf("peps: %d bits for %d sites", len(bits), p.Rows*p.Cols))
	}
	out := p.ShallowClone()
	for r := 0; r < p.Rows; r++ {
		for c := 0; c < p.Cols; c++ {
			t := p.sites[r][c]
			d := t.Dim(4)
			v := tensor.New(d)
			b := bits[r*p.Cols+c]
			if b < 0 || b >= d {
				panic(fmt.Sprintf("peps: bit %d out of physical range %d", b, d))
			}
			v.Set(1, b)
			proj := p.eng.Einsum("uldrp,p->uldr", t, v)
			sh := proj.Shape()
			out.sites[r][c] = proj.Reshape(sh[0], sh[1], sh[2], sh[3], 1)
		}
	}
	return out
}

// TransposeLattice returns the state reflected about the main diagonal:
// rows become columns and each site's up/left and down/right legs swap.
// Contracting the transposed network top-to-bottom equals contracting
// the original left-to-right, which is how column-wise boundary
// contraction is exposed.
func (p *PEPS) TransposeLattice() *PEPS {
	sites := make([][]*tensor.Dense, p.Cols)
	for c := 0; c < p.Cols; c++ {
		sites[c] = make([]*tensor.Dense, p.Rows)
		for r := 0; r < p.Rows; r++ {
			// [u,l,d,r,p] -> [l,u,r,d,p]
			sites[c][r] = p.sites[r][c].Transpose(1, 0, 3, 2, 4)
		}
	}
	return &PEPS{Rows: p.Cols, Cols: p.Rows, LogScale: p.LogScale, sites: sites, eng: p.eng}
}

// FlipVertical returns the state reflected about the horizontal axis:
// row order reversed and up/down legs swapped. Environments from below
// are computed as environments from above of the flipped state.
func (p *PEPS) FlipVertical() *PEPS {
	sites := make([][]*tensor.Dense, p.Rows)
	for r := 0; r < p.Rows; r++ {
		sites[r] = make([]*tensor.Dense, p.Cols)
		for c := 0; c < p.Cols; c++ {
			sites[r][c] = p.sites[p.Rows-1-r][c].Transpose(2, 1, 0, 3, 4)
		}
	}
	return &PEPS{Rows: p.Rows, Cols: p.Cols, LogScale: p.LogScale, sites: sites, eng: p.eng}
}
