package peps

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"

	"gokoala/internal/einsumsvd"
	"gokoala/internal/obs"
	"gokoala/internal/pool"
	"gokoala/internal/quantum"
	"gokoala/internal/telemetry"
	"gokoala/internal/tensor"
)

// UpdateMethod selects the two-site operator application algorithm.
type UpdateMethod int

const (
	// UpdateQR is paper Algorithm 1: QR both site tensors, refactorize
	// the small R-G-R network, multiply back. O(d^2 r^5) time.
	UpdateQR UpdateMethod = iota
	// UpdateDirect contracts the full two-site network and refactorizes
	// it in one einsumsvd. O(d^3 r^9)-style cost; the baseline the QR
	// update improves on.
	UpdateDirect
)

// UpdateOptions configures two-site operator application.
type UpdateOptions struct {
	// Rank caps the bond dimension after the update; 0 means no
	// truncation (exact application, bond grows).
	Rank int
	// Method selects QR-SVD (default) or the direct update.
	Method UpdateMethod
	// Strategy is the einsumsvd strategy for the refactorization;
	// nil means explicit truncated SVD with balanced sigma.
	Strategy einsumsvd.Strategy
	// Normalize rescales the updated site tensors to unit Frobenius norm,
	// folding the factor into the state's LogScale. Required for long
	// imaginary-time evolutions, harmless elsewhere.
	Normalize bool
}

func (o UpdateOptions) strategy() einsumsvd.Strategy {
	if o.Strategy != nil {
		return o.Strategy
	}
	return einsumsvd.Explicit{Mode: einsumsvd.SigmaBoth}
}

// exactRank is the sentinel passed to einsumsvd for untruncated splits;
// the SVD clamps it to the true matrix rank bound.
const exactRank = 1 << 30

func (o UpdateOptions) rank() int {
	if o.Rank <= 0 {
		return exactRank
	}
	return o.Rank
}

// ApplyTwoSite applies a two-site gate (4x4 matrix or [2,2,2,2] tensor
// over (site1, site2)) to two lattice sites. Adjacent sites are updated
// directly (paper equation 4); non-adjacent sites are routed with SWAP
// chains as described in paper section II-C1.
func (p *PEPS) ApplyTwoSite(g *tensor.Dense, site1, site2 int, opts UpdateOptions) {
	p.LogScale += p.applyTwoSiteDelta(g, site1, site2, opts)
}

// applyTwoSiteDelta applies the gate and returns the LogScale delta the
// normalization produced instead of folding it in. Concurrent gate
// applications on disjoint sites go through the delta forms so the
// coordinator can sum the deltas in gate order (float addition is not
// associative; a fixed order keeps results bit-identical across worker
// counts).
func (p *PEPS) applyTwoSiteDelta(g *tensor.Dense, site1, site2 int, opts UpdateOptions) float64 {
	r1, c1 := p.Coords(site1)
	r2, c2 := p.Coords(site2)
	if site1 == site2 {
		panic("peps: two-site gate on identical sites")
	}
	sp := obs.Start("peps.update").SetStr("method", updateMethodName(opts.Method))
	defer sp.End()
	g4 := quantum.Gate4(g)
	switch {
	case r1 == r2 && abs(c1-c2) == 1:
		if c1 < c2 {
			return p.applyHorizontal(g4, r1, c1, opts)
		}
		return p.applyHorizontal(swapGateOrder(g4), r1, c2, opts)
	case c1 == c2 && abs(r1-r2) == 1:
		if r1 < r2 {
			return p.applyVertical(g4, r1, c1, opts)
		}
		return p.applyVertical(swapGateOrder(g4), r2, c1, opts)
	default:
		return p.applyRouted(g4, r1, c1, r2, c2, opts)
	}
}

// updateMethodName labels the update algorithm in trace output.
func updateMethodName(m UpdateMethod) string {
	if m == UpdateDirect {
		return "direct"
	}
	return "qr-svd"
}

// swapGateOrder reorders a two-qubit gate tensor g[i1,i2,j1,j2] to act
// with its qubit arguments exchanged.
func swapGateOrder(g4 *tensor.Dense) *tensor.Dense {
	return g4.Transpose(1, 0, 3, 2)
}

// applyRouted brings site2's qubit adjacent to site1 with a chain of SWAP
// gates, applies the gate, and swaps back (see routedApplications for the
// path construction shared with the weighted simple update).
func (p *PEPS) applyRouted(g4 *tensor.Dense, r1, c1, r2, c2 int, opts UpdateOptions) float64 {
	swap := quantum.Gate4(quantum.SWAP())
	var delta float64
	for _, step := range routedApplications(r1, c1, r2, c2) {
		if step.gate {
			delta += p.applyAdjacent(g4, step.ra, step.ca, step.rb, step.cb, opts)
		} else {
			delta += p.applyAdjacent(swap, step.ra, step.ca, step.rb, step.cb, opts)
		}
	}
	return delta
}

// applyAdjacent dispatches an adjacent-pair gate where (ra,ca) holds the
// gate's first qubit.
func (p *PEPS) applyAdjacent(g4 *tensor.Dense, ra, ca, rb, cb int, opts UpdateOptions) float64 {
	switch {
	case ra == rb && cb == ca+1:
		return p.applyHorizontal(g4, ra, ca, opts)
	case ra == rb && cb == ca-1:
		return p.applyHorizontal(swapGateOrder(g4), ra, cb, opts)
	case ca == cb && rb == ra+1:
		return p.applyVertical(g4, ra, ca, opts)
	case ca == cb && rb == ra-1:
		return p.applyVertical(swapGateOrder(g4), rb, ca, opts)
	default:
		panic(fmt.Sprintf("peps: sites (%d,%d) and (%d,%d) not adjacent", ra, ca, rb, cb))
	}
}

// applyHorizontal applies the gate to sites (r,c) and (r,c+1), with the
// gate's first qubit on (r,c).
func (p *PEPS) applyHorizontal(g4 *tensor.Dense, r, c int, opts UpdateOptions) float64 {
	a, b := p.sites[r][c], p.sites[r][c+1]
	var na, nb *tensor.Dense
	var s []float64
	telemetry.ClearPendingTrunc()
	if opts.Method == UpdateDirect {
		// A[a,b,c,x,p] B[e,x,f,g,q] G[i,j,p,q] -> [a,b,c,n,i] | [e,n,f,g,j]
		na, nb, s = einsumsvd.MustFactor(opts.strategy(), p.eng,
			"abcxp,exfgq,ijpq->abcni|enfgj", opts.rank(), a, b, g4)
	} else {
		// Paper Algorithm 1, steps (1)->(2): QR with environment bonds as
		// rows and (shared bond, phys) as columns.
		qa, ra := p.eng.QRSplit(a, 3)                          // [a,b,c,k], [k,x,p]
		qb, rb := p.eng.QRSplit(b.Transpose(0, 2, 3, 1, 4), 3) // rows (e,f,g): [e,f,g,l], [l,x,q]
		// Step (2)->(4): einsumsvd on the small network.
		rka, rkb, sk := einsumsvd.MustFactor(opts.strategy(), p.eng,
			"kxp,lxq,ijpq->kin|nlj", opts.rank(), ra, rb, g4)
		s = sk
		// Step (4)->(5): multiply the Q factors back.
		na = p.eng.Einsum("abck,kin->abcni", qa, rka)
		nb = p.eng.Einsum("efgl,nlj->enfgj", qb, rkb)
	}
	recordBondUpdate("h", r, c, len(s))
	p.sites[r][c] = na
	p.sites[r][c+1] = nb
	if opts.Normalize {
		return p.siteLogNorm(r, c) + p.siteLogNorm(r, c+1)
	}
	return 0
}

// applyVertical applies the gate to sites (r,c) and (r+1,c), with the
// gate's first qubit on (r,c).
func (p *PEPS) applyVertical(g4 *tensor.Dense, r, c int, opts UpdateOptions) float64 {
	a, b := p.sites[r][c], p.sites[r+1][c]
	var na, nb *tensor.Dense
	var s []float64
	telemetry.ClearPendingTrunc()
	if opts.Method == UpdateDirect {
		// A[a,b,x,d,p] B[x,f,g,h,q] G[i,j,p,q] -> [a,b,n,d,i] | [n,f,g,h,j]
		na, nb, s = einsumsvd.MustFactor(opts.strategy(), p.eng,
			"abxdp,xfghq,ijpq->abndi|nfghj", opts.rank(), a, b, g4)
	} else {
		qa, ra := p.eng.QRSplit(a.Transpose(0, 1, 3, 2, 4), 3) // rows (a,b,d): [a,b,d,k], [k,x,p]
		qb, rb := p.eng.QRSplit(b.Transpose(1, 2, 3, 0, 4), 3) // rows (f,g,h): [f,g,h,l], [l,x,q]
		rka, rkb, sk := einsumsvd.MustFactor(opts.strategy(), p.eng,
			"kxp,lxq,ijpq->kin|nlj", opts.rank(), ra, rb, g4)
		s = sk
		na = p.eng.Einsum("abdk,kin->abndi", qa, rka)
		nb = p.eng.Einsum("fghl,nlj->nfghj", qb, rkb)
	}
	recordBondUpdate("v", r, c, len(s))
	p.sites[r][c] = na
	p.sites[r+1][c] = nb
	if opts.Normalize {
		return p.siteLogNorm(r, c) + p.siteLogNorm(r+1, c)
	}
	return 0
}

// recordBondUpdate publishes one two-site update's telemetry: the new
// bond dimension as a per-bond labeled series plus a lattice-wide
// histogram, and — when the factorization went through an explicit
// truncated SVD on this goroutine — the per-bond discarded spectral
// weight it stashed. Bonds are labeled by direction and the (row, col)
// of the gate's first site. One atomic load when no listener is
// attached.
func recordBondUpdate(dir string, r, c, dim int) {
	if !telemetry.Active() {
		return
	}
	labels := []telemetry.Label{
		{Key: "dir", Value: dir},
		{Key: "row", Value: strconv.Itoa(r)},
		{Key: "col", Value: strconv.Itoa(c)},
	}
	telemetry.Observe("peps.bond_dim", float64(dim), labels...)
	telemetry.ObserveHist("peps.bond_dim_hist", telemetry.Pow2Bounds, float64(dim))
	if te, ok := telemetry.TakePendingTrunc(); ok {
		telemetry.Observe("peps.bond_trunc_error", te, labels...)
	}
}

// normalizeSite rescales a site tensor to unit Frobenius norm, folding
// the factor into LogScale.
func (p *PEPS) normalizeSite(r, c int) {
	p.LogScale += p.siteLogNorm(r, c)
}

// siteLogNorm rescales a site tensor to unit Frobenius norm and returns
// the log of the factor without touching LogScale, so concurrent updates
// can report their scale contributions for an ordered reduction.
func (p *PEPS) siteLogNorm(r, c int) float64 {
	t := p.sites[r][c]
	n := t.Norm()
	if n == 0 {
		return 0
	}
	t.ScaleInPlace(complex(1/n, 0))
	return math.Log(n)
}

// ApplyGate dispatches a one- or two-site TrotterGate.
func (p *PEPS) ApplyGate(g quantum.TrotterGate, opts UpdateOptions) {
	p.LogScale += p.applyGateDelta(g, opts)
}

// applyGateDelta is ApplyGate returning the LogScale delta instead of
// folding it in (see applyTwoSiteDelta).
func (p *PEPS) applyGateDelta(g quantum.TrotterGate, opts UpdateOptions) float64 {
	switch len(g.Sites) {
	case 1:
		p.ApplyOneSite(g.Gate, g.Sites[0])
		if opts.Normalize {
			r, c := p.Coords(g.Sites[0])
			return p.siteLogNorm(r, c)
		}
		return 0
	case 2:
		return p.applyTwoSiteDelta(g.Gate, g.Sites[0], g.Sites[1], opts)
	default:
		panic("peps: unsupported gate arity")
	}
}

// ApplyCircuit applies a sequence of gates with the same options. Gates
// on disjoint bonds are applied concurrently in checkerboard waves (see
// gateWaves); results are bit-identical to any worker count because the
// wave schedule depends only on the gate list, per-gate strategies are
// forked deterministically, and LogScale deltas are summed in gate
// order.
func (p *PEPS) ApplyCircuit(gates []quantum.TrotterGate, opts UpdateOptions) {
	sts := einsumsvd.Fork(opts.Strategy, len(gates))
	if len(gates) < 2 || sts == nil {
		for _, g := range gates {
			p.ApplyGate(g, opts)
		}
		return
	}
	sp := obs.Start("peps.circuit").SetInt("gates", int64(len(gates)))
	defer sp.End()
	deltas := make([]float64, len(gates))
	for _, wave := range p.gateWaves(gates) {
		if len(wave) == 1 {
			i := wave[0]
			o := opts
			o.Strategy = sts[i]
			deltas[i] = p.applyGateDelta(gates[i], o)
			continue
		}
		g := pool.NewGroup("peps.circuit.wave")
		for _, i := range wave {
			i := i
			g.Go(func() {
				o := opts
				o.Strategy = sts[i]
				deltas[i] = p.applyGateDelta(gates[i], o)
			})
		}
		g.Wait()
	}
	for _, d := range deltas {
		p.LogScale += d
	}
}

// RandomGateUpdateOptions returns update options suitable for random
// circuit evolution: exact QR updates with a deterministic sub-rng.
func RandomGateUpdateOptions(rank int, rng *rand.Rand, implicit bool) UpdateOptions {
	opts := UpdateOptions{Rank: rank, Method: UpdateQR}
	if implicit {
		opts.Strategy = einsumsvd.ImplicitRand{Mode: einsumsvd.SigmaBoth, Rng: rng}
	}
	return opts
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
