package bench

import (
	"strings"
	"testing"
)

func baseResult() SuiteResult {
	return SuiteResult{
		Suite:          "t",
		Flops:          1_000_000,
		CommBytes:      500_000,
		ModeledSeconds: 2.0,
		TaskCount:      128,
		PlanCacheRate:  0.95,
		WallSeconds:    10,
		PeakBytes:      1 << 20,
		Health:         HealthCounters{SVDFallbacks: 3},
	}
}

func violationsFor(t *testing.T, mutate func(*SuiteResult)) []Violation {
	t.Helper()
	base := baseResult()
	got := baseResult()
	mutate(&got)
	return CompareSuite(base, got)
}

func TestCompareIdenticalPasses(t *testing.T) {
	if v := violationsFor(t, func(*SuiteResult) {}); len(v) != 0 {
		t.Fatalf("identical results must pass, got %v", v)
	}
}

func TestCompareFlopsDrift(t *testing.T) {
	// 0.5% drift passes, 2% fails, in either direction.
	if v := violationsFor(t, func(r *SuiteResult) { r.Flops = 1_005_000 }); len(v) != 0 {
		t.Fatalf("0.5%% flops drift should pass: %v", v)
	}
	v := violationsFor(t, func(r *SuiteResult) { r.Flops = 1_020_000 })
	if len(v) != 1 || v[0].Metric != "flops" {
		t.Fatalf("2%% flops drift should fail on flops: %v", v)
	}
	if v := violationsFor(t, func(r *SuiteResult) { r.Flops = 980_000 }); len(v) != 1 {
		t.Fatalf("flops gate must be symmetric: %v", v)
	}
}

func TestCompareModeledSecondsTolerance(t *testing.T) {
	if v := violationsFor(t, func(r *SuiteResult) { r.ModeledSeconds = 2.08 }); len(v) != 0 {
		t.Fatalf("4%% modeled drift should pass: %v", v)
	}
	if v := violationsFor(t, func(r *SuiteResult) { r.ModeledSeconds = 2.2 }); len(v) != 1 {
		t.Fatalf("10%% modeled drift should fail: %v", v)
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	base := baseResult()
	base.CommBytes = 0
	got := baseResult()
	got.CommBytes = 7
	v := CompareSuite(base, got)
	if len(v) != 1 || v[0].Metric != "comm_bytes" {
		t.Fatalf("nonzero against zero baseline must fail: %v", v)
	}
	got.CommBytes = 0
	if v := CompareSuite(base, got); len(v) != 0 {
		t.Fatalf("zero against zero must pass: %v", v)
	}
}

func TestComparePlanCacheOneSided(t *testing.T) {
	// Small dips and any improvement pass; a real drop fails.
	if v := violationsFor(t, func(r *SuiteResult) { r.PlanCacheRate = 0.94 }); len(v) != 0 {
		t.Fatalf("0.01 hit-rate dip should pass: %v", v)
	}
	if v := violationsFor(t, func(r *SuiteResult) { r.PlanCacheRate = 0.99 }); len(v) != 0 {
		t.Fatalf("hit-rate improvement should pass: %v", v)
	}
	v := violationsFor(t, func(r *SuiteResult) { r.PlanCacheRate = 0.85 })
	if len(v) != 1 || v[0].Metric != "plan_cache_hit_rate" {
		t.Fatalf("0.10 hit-rate drop should fail: %v", v)
	}
}

func TestCompareHealthOneSided(t *testing.T) {
	v := violationsFor(t, func(r *SuiteResult) { r.Health.SVDFallbacks = 4 })
	if len(v) != 1 || v[0].Metric != "health.svd_fallbacks" {
		t.Fatalf("health increase should fail: %v", v)
	}
	if v := violationsFor(t, func(r *SuiteResult) { r.Health.SVDFallbacks = 0 }); len(v) != 0 {
		t.Fatalf("health recovery should pass: %v", v)
	}
	v = violationsFor(t, func(r *SuiteResult) { r.Health.NaNDetected = 1 })
	if len(v) != 1 || v[0].Metric != "health.nan_detected" {
		t.Fatalf("new NaNs should fail: %v", v)
	}
}

func TestCompareWallClockNeverGated(t *testing.T) {
	if v := violationsFor(t, func(r *SuiteResult) {
		r.WallSeconds = 1000 // 100x slower
		r.PeakBytes = 1 << 40
		r.GroupTasks = 12345
	}); len(v) != 0 {
		t.Fatalf("wall clock, peak bytes and scheduling splits must not gate: %v", v)
	}
}

func TestCompareTaskCount(t *testing.T) {
	v := violationsFor(t, func(r *SuiteResult) { r.TaskCount = 200 })
	if len(v) != 1 || v[0].Metric != "task_count" {
		t.Fatalf("task count drift should fail: %v", v)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Suite: "fig7a", Metric: "flops", Base: 10, Got: 20, Reason: "r"}
	s := v.String()
	for _, part := range []string{"fig7a", "flops", "10", "20", "r"} {
		if !strings.Contains(s, part) {
			t.Fatalf("violation string %q missing %q", s, part)
		}
	}
}
