package bench

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"gokoala/internal/backend"
	"gokoala/internal/dist"
	"gokoala/internal/peps"
)

// Fig11Config controls the strong-scaling study.
type Fig11Config struct {
	N          int
	SmallBond  int // problem sized for ~1 node
	LargeBond  int // problem sized for ~16 nodes
	RankCounts []int
	M          int // contraction bond for the contraction series
	Seed       int64
}

// DefaultFig11Config mirrors paper Figure 11 at reduced scale.
func DefaultFig11Config() Fig11Config {
	return Fig11Config{
		N: 6, SmallBond: 4, LargeBond: 8,
		RankCounts: []int{8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096},
		M:          8, Seed: 7,
	}
}

// runOnGrid executes work on a fresh grid of the given rank count and
// returns the modeled seconds of the metered SPMD execution.
func runOnGrid(ranks int, useGram bool, work func(eng backend.Engine)) dist.Stats {
	grid := dist.NewGrid(dist.Stampede2(ranks)).SetLabel(fmt.Sprintf("ranks-%d", ranks))
	eng := backend.Instrument(backend.NewDist(grid, useGram))
	work(eng)
	return grid.Snapshot()
}

// ExperimentFig11 reproduces the strong-scaling study (paper Figure 11):
// one layer of TEBD operators (evolution) and an IBMPS contraction of a
// PEPS without physical indices, at a smaller and a larger problem size,
// across rank counts. The modeled time comes from the alpha-beta-gamma
// machine model applied to the measured communication and flop counts of
// the SPMD execution at each rank count.
func ExperimentFig11(w io.Writer, cfg Fig11Config) {
	fmt.Fprintf(w, "Figure 11: strong scaling (modeled seconds from metered SPMD execution), %dx%d PEPS\n\n", cfg.N, cfg.N)
	t := NewTable("ranks", "series", "modeled_s", "speedup_vs_first", "comm_frac")
	series := []struct {
		name string
		bond int
		work func(eng backend.Engine, bond int)
	}{
		{"evolution", cfg.SmallBond, func(eng backend.Engine, bond int) {
			evolutionWorkload(eng, cfg.Seed, cfg.N, bond, peps.UpdateOptions{Rank: bond, Method: peps.UpdateQR})()
		}},
		{"evolution-large", cfg.LargeBond, func(eng backend.Engine, bond int) {
			evolutionWorkload(eng, cfg.Seed, cfg.N, bond, peps.UpdateOptions{Rank: bond, Method: peps.UpdateQR})()
		}},
		{"contraction", cfg.SmallBond, func(eng backend.Engine, bond int) {
			rng := rand.New(rand.NewSource(cfg.Seed + 3))
			net := peps.RandomNoPhys(eng, rng, cfg.N, cfg.N, bond)
			net.ContractScalar(peps.BMPS{M: cfg.M, Strategy: implicitStrategy(cfg.Seed)})
		}},
		{"contraction-large", cfg.LargeBond, func(eng backend.Engine, bond int) {
			rng := rand.New(rand.NewSource(cfg.Seed + 4))
			net := peps.RandomNoPhys(eng, rng, cfg.N, cfg.N, bond)
			net.ContractScalar(peps.BMPS{M: 2 * cfg.M, Strategy: implicitStrategy(cfg.Seed)})
		}},
	}
	for _, s := range series {
		var first float64
		for _, ranks := range cfg.RankCounts {
			stats := runOnGrid(ranks, true, func(eng backend.Engine) { s.work(eng, s.bond) })
			secs := stats.ModeledSeconds()
			if first == 0 {
				first = secs
			}
			commFrac := 0.0
			if secs > 0 {
				commFrac = stats.CommSeconds() / secs
			}
			t.Add(ranks, s.name, secs, first/secs, commFrac)
		}
	}
	t.Print(w)
	fmt.Fprintln(w, "\npaper shape: near-linear scaling within a node, diminishing returns as the")
	fmt.Fprintln(w, "communication fraction grows; the larger problem scales further out.")
}

// Fig12Config controls the weak-scaling study.
type Fig12Config struct {
	N          int
	RankCounts []int
	BaseBond   int // r at the first rank count; r scales as ranks^(1/4)
	BaseM      int
	Seed       int64
}

// DefaultFig12Config mirrors paper Figure 12 (ranks 64..4096 with
// r = 70..280, m = 80..320) at reduced bond dimensions.
func DefaultFig12Config() Fig12Config {
	return Fig12Config{
		N:          6,
		RankCounts: []int{64, 128, 256, 512, 1024, 2048, 4096},
		BaseBond:   4,
		BaseM:      6,
		Seed:       8,
	}
}

// ExperimentFig12 reproduces the weak-scaling study (paper Figure 12):
// bond dimensions grow as ranks^(1/4) so the memory per node stays
// constant (site tensors hold r^4 elements), and the figure of merit is
// sustained Gflop/s per core under the machine model.
//
// Two throughput columns are reported. "gflops_per_core" evaluates the
// machine model at our scaled-down bond dimensions, where the arithmetic
// intensity (flops per byte moved) is r_paper/r_ours times lower than in
// the paper's runs, so communication shows through more. The
// "paper_scale" column evaluates the same measured operation counts with
// flops, bytes, and local-factorization work rescaled to the paper's
// bond dimensions (r = 70..280, m = 80..320) using the kernels' known
// growth laws (GEMM flops ~ r^5 evolution / r^6 contraction at m ~ r,
// moved bytes ~ r^4, local factorizations ~ r^3); this is where the
// paper's flat sustained-throughput claim is checked.
func ExperimentFig12(w io.Writer, cfg Fig12Config) {
	fmt.Fprintln(w, "Figure 12: weak scaling, bond dimension grows as ranks^(1/4)")
	fmt.Fprintln(w)
	t := NewTable("ranks", "series", "r", "m", "modeled_s", "gflops_per_core", "paper_scale_gflops_per_core")
	base := float64(cfg.RankCounts[0])
	for _, series := range []string{"evolution", "contraction"} {
		flopExp := 5.0
		if series == "contraction" {
			flopExp = 6.0
		}
		for _, ranks := range cfg.RankCounts {
			scale := math.Pow(float64(ranks)/base, 0.25)
			r := int(math.Round(float64(cfg.BaseBond) * scale))
			m := int(math.Round(float64(cfg.BaseM) * scale))
			var stats dist.Stats
			machine := dist.Stampede2(ranks)
			if series == "evolution" {
				stats = runOnGrid(ranks, true, func(eng backend.Engine) {
					evolutionWorkload(eng, cfg.Seed, cfg.N, r, peps.UpdateOptions{Rank: r, Method: peps.UpdateQR})()
				})
			} else {
				stats = runOnGrid(ranks, true, func(eng backend.Engine) {
					rng := rand.New(rand.NewSource(cfg.Seed + 9))
					net := peps.RandomNoPhys(eng, rng, cfg.N, cfg.N, r)
					net.ContractScalar(peps.BMPS{M: m, Strategy: implicitStrategy(cfg.Seed)})
				})
			}
			secs := stats.ModeledSeconds()
			flops := float64(stats.ParallelFlops + stats.SequentialFlops)
			// One complex fused multiply-add is 8 real flops.
			gflopsPerCore := flops * 8 / secs / float64(ranks) / 1e9

			// Rescale the measured counts to the paper's bond dimension at
			// this rank count, per bandwidth class: GEMM-bound traffic
			// scales as flops/sqrt(memory) ~ r^(flopExp-2), full-tensor
			// moves as r^4, Gram-path small collectives as r^2.
			rPaper := 70 * scale
			ratio := rPaper / float64(r)
			parF := float64(stats.ParallelFlops) * math.Pow(ratio, flopExp)
			seqF := float64(stats.SequentialFlops) * math.Pow(ratio, 3)
			bwS := stats.BWGemmSeconds*math.Pow(ratio, flopExp-2) +
				stats.BWBigSeconds*math.Pow(ratio, 4) +
				stats.BWSmallSeconds*math.Pow(ratio, 2)
			paperSecs := stats.CommLatencySeconds + bwS +
				machine.Gamma*parF/float64(ranks) + machine.Gamma*seqF
			paperGf := (parF + seqF) * 8 / paperSecs / float64(ranks) / 1e9

			t.Add(ranks, series, r, m, secs, gflopsPerCore, paperGf)
		}
	}
	t.Print(w)
	fmt.Fprintln(w, "\npaper shape: sustained per-core throughput holds roughly flat up to 64 nodes")
	fmt.Fprintln(w, "(4096 cores); at our reduced bond dimensions the raw column decays because the")
	fmt.Fprintln(w, "arithmetic intensity is ~(70/4)x lower, which the paper-scale column corrects.")
}
