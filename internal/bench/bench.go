// Package bench contains the workload generators, parameter sweeps, and
// report printers that regenerate every table and figure of the paper's
// evaluation (section VI). Each ExperimentXxx function runs one
// experiment and writes an aligned text table of the same rows/series the
// paper plots; cmd/koala-bench exposes them on the command line and
// bench_test.go wraps the underlying kernels in testing.B benchmarks.
//
// Problem sizes are scaled to a single core (see DESIGN.md section 3);
// the swept shapes — who wins, crossovers, thresholds, scaling slopes —
// are the reproduction targets recorded in EXPERIMENTS.md.
package bench

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"strings"
	"time"

	"gokoala/internal/backend"
	"gokoala/internal/dist"
	"gokoala/internal/einsumsvd"
	"gokoala/internal/peps"
	"gokoala/internal/quantum"
	"gokoala/internal/tensor"
)

// Table accumulates rows and prints them aligned.
type Table struct {
	Header []string
	Rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{Header: header} }

// Add appends a row, formatting each cell with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e4 || math.Abs(v) < 1e-3:
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Print writes the table to w.
func (t *Table) Print(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
}

// timeIt returns the wall-clock seconds of f.
func timeIt(f func()) float64 {
	start := time.Now()
	f()
	return time.Since(start).Seconds()
}

// flopsOf returns the complex-flop count of f.
func flopsOf(f func()) int64 {
	before := tensor.FlopCount()
	f()
	return tensor.FlopCount() - before
}

// logSlope fits the least-squares slope of log(y) against log(x),
// the empirical scaling exponent.
func logSlope(xs []float64, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

// tebdLayer applies one layer of two-site TEBD-style operators: one gate
// on every horizontally and vertically adjacent pair (the paper's "one
// layer of TEBD operators" evolution benchmark).
func tebdLayer(p *peps.PEPS, gate *tensor.Dense, opts peps.UpdateOptions) {
	for r := 0; r < p.Rows; r++ {
		for c := 0; c+1 < p.Cols; c++ {
			p.ApplyTwoSite(gate, p.SiteIndex(r, c), p.SiteIndex(r, c+1), opts)
		}
	}
	for r := 0; r+1 < p.Rows; r++ {
		for c := 0; c < p.Cols; c++ {
			p.ApplyTwoSite(gate, p.SiteIndex(r, c), p.SiteIndex(r+1, c), opts)
		}
	}
}

// evolutionWorkload builds a random PEPS of the given bond dimension and
// returns a function applying one TEBD layer with the given engine and
// options.
func evolutionWorkload(eng backend.Engine, seed int64, n, bond int, opts peps.UpdateOptions) func() {
	rng := rand.New(rand.NewSource(seed))
	state := peps.Random(eng, rng, n, n, 2, bond)
	gate := quantum.ISwap()
	return func() { tebdLayer(state.Clone(), gate, opts) }
}

// denseEngine returns the sequential engine wrapped with obs
// instrumentation (a no-op passthrough while tracing is off), so every
// experiment feeds spans and counters when cmd/koala-bench enables
// collection.
func denseEngine() backend.Engine { return backend.Instrument(backend.NewDense()) }

// benchTransport is an optional real collective transport (koala-bench
// -transport unix|tcp) attached to every grid whose rank count matches
// the transport's process count. Modeled stats are unchanged by the
// attachment; the grids additionally record measured wall clock. One
// transport serves all grids and suite reruns (collectives serialize on
// it, exactly like operations on one MPI communicator).
var benchTransport dist.Transport

// SetTransport installs the transport future grids attach to; nil
// restores the in-process default. Call before running suites.
func SetTransport(t dist.Transport) { benchTransport = t }

// attachTransport hooks the shared bench transport onto a grid when the
// rank counts line up (a fig7b grid of 1024 modeled ranks stays
// modeled-only under a 4-process transport).
func attachTransport(g *dist.Grid, ranks int) *dist.Grid {
	if benchTransport != nil && benchTransport.Ranks() == ranks {
		g.SetTransport(benchTransport)
	}
	return g
}

// engineSet returns the named engines of the evolution benchmarks
// (paper Figure 7): the dense (NumPy-analog) engine and the three
// Cyclops-analog variants, each with its own grid so modeled costs are
// attributable. All engines carry obs instrumentation.
func engineSet(ranks int) (map[string]backend.Engine, map[string]*dist.Grid) {
	g1 := attachTransport(dist.NewGrid(dist.Stampede2(ranks)).SetLabel("dist-qr-svd"), ranks)
	g2 := attachTransport(dist.NewGrid(dist.Stampede2(ranks)).SetLabel("dist-local-gram-qr"), ranks)
	g3 := attachTransport(dist.NewGrid(dist.Stampede2(ranks)).SetLabel("dist-local-gram-qr-svd"), ranks)
	engines := map[string]backend.Engine{
		"dense-qr-svd":           denseEngine(),
		"dist-qr-svd":            backend.Instrument(backend.NewDist(g1, false)),
		"dist-local-gram-qr":     backend.Instrument(backend.NewDist(g2, true)),
		"dist-local-gram-qr-svd": backend.Instrument(&backend.Dist{Grid: g3, UseGram: true, LocalSVD: true}),
	}
	grids := map[string]*dist.Grid{
		"dist-qr-svd":            g1,
		"dist-local-gram-qr":     g2,
		"dist-local-gram-qr-svd": g3,
	}
	return engines, grids
}

// explicitStrategy and implicitStrategy are the standard einsumsvd
// strategies used throughout the experiments.
func explicitStrategy() einsumsvd.Strategy { return einsumsvd.Explicit{} }

func implicitStrategy(seed int64) einsumsvd.Strategy {
	return einsumsvd.ImplicitRand{NIter: 1, Oversample: 4, Rng: rand.New(rand.NewSource(seed)), Sketch32: sketch32}
}

// sketch32 opts every implicit strategy the experiments construct into
// the complex64 sketch stage (the koala-bench -f32-sketch flag); it is
// recorded in each suite's KernelInfo.
var sketch32 bool

// SetSketch32 toggles the complex64 RandSVD sketch stage for every
// implicit strategy the experiments build. Call before running suites.
func SetSketch32(on bool) { sketch32 = on }
