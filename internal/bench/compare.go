package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
)

// Regression gating (koala-bench -compare): a fresh SuiteResult is
// checked against a committed BENCH_<suite>.json baseline on the
// deterministic metrics only. Flops, communication volume, modeled
// machine time, and the task count are exact functions of the
// algorithm and configuration, so they gate with tight symmetric
// tolerances (any drift in either direction means the computation
// changed). The plan-cache hit rate can dip slightly when concurrent
// workers double-compile a plan, so it gates one-sided with a small
// allowance; health counters gate one-sided at zero tolerance (new
// numerical trouble fails, recovering from old trouble passes).
// Wall-clock seconds and peak scratch bytes are reported for context
// but never gated — CI machines are too noisy for timing gates.

// Gate tolerances.
const (
	relTolFlops   = 0.01 // symmetric, relative
	relTolComm    = 0.01 // symmetric, relative
	relTolModeled = 0.05 // symmetric, relative
	relTolTasks   = 0.01 // symmetric, relative
	absTolHitRate = 0.02 // one-sided, absolute decrease
)

// Violation is one gated metric outside its tolerance.
type Violation struct {
	Suite  string
	Metric string
	Base   float64
	Got    float64
	// Reason states the tolerance that was exceeded.
	Reason string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s: baseline %g, got %g (%s)", v.Suite, v.Metric, v.Base, v.Got, v.Reason)
}

// CompareSuite gates a fresh result against its baseline and returns
// the violations (nil when the run passes).
func CompareSuite(base, got SuiteResult) []Violation {
	var out []Violation
	sym := func(metric string, b, g, relTol float64) {
		var rel float64
		switch {
		case b == g:
			return
		case b == 0:
			rel = math.Inf(1)
		default:
			rel = math.Abs(g-b) / math.Abs(b)
		}
		if rel > relTol {
			out = append(out, Violation{
				Suite: got.Suite, Metric: metric, Base: b, Got: g,
				Reason: fmt.Sprintf("relative change %.4f exceeds %.2f", rel, relTol),
			})
		}
	}
	// The whole-run flop counter is deterministic for the evolution
	// suites, but ITE-with-measurement suites charge the expectation
	// cache's scheduling-dependent double-computes to it, so for the sym
	// suite it is wall-clock-like: reported, never gated. Its
	// deterministic contraction-level counters gate below instead.
	if base.Sym == nil && got.Sym == nil {
		sym("flops", float64(base.Flops), float64(got.Flops), relTolFlops)
	}
	sym("comm_bytes", float64(base.CommBytes), float64(got.CommBytes), relTolComm)
	sym("modeled_seconds", base.ModeledSeconds, got.ModeledSeconds, relTolModeled)
	sym("task_count", float64(base.TaskCount), float64(got.TaskCount), relTolTasks)
	if drop := base.PlanCacheRate - got.PlanCacheRate; drop > absTolHitRate {
		out = append(out, Violation{
			Suite: got.Suite, Metric: "plan_cache_hit_rate",
			Base: base.PlanCacheRate, Got: got.PlanCacheRate,
			Reason: fmt.Sprintf("hit rate dropped %.4f, more than %.2f", drop, absTolHitRate),
		})
	}
	oneSided := func(metric string, b, g int64) {
		if g > b {
			out = append(out, Violation{
				Suite: got.Suite, Metric: "health." + metric,
				Base: float64(b), Got: float64(g),
				Reason: "health counter increased",
			})
		}
	}
	// Sym-suite details gate like the other deterministic metrics: the
	// executed and dense-equivalent GEMM flops are exact functions of the
	// configuration, and a model that passed acceptance must keep passing.
	if base.Sym != nil && got.Sym != nil {
		byModel := make(map[string]SymModelResult, len(got.Sym.Models))
		for _, m := range got.Sym.Models {
			byModel[m.Model] = m
		}
		for _, b := range base.Sym.Models {
			g, ok := byModel[b.Model]
			if !ok {
				out = append(out, Violation{
					Suite: got.Suite, Metric: "sym." + b.Model,
					Base: 1, Got: 0, Reason: "model missing from fresh run",
				})
				continue
			}
			sym("sym."+b.Model+".gemm_flops", float64(b.SymGEMMFlops), float64(g.SymGEMMFlops), relTolFlops)
			sym("sym."+b.Model+".dense_equiv_flops", float64(b.SymDenseEquivFlops), float64(g.SymDenseEquivFlops), relTolFlops)
			if b.Pass && !g.Pass {
				out = append(out, Violation{
					Suite: got.Suite, Metric: "sym." + b.Model + ".pass",
					Base: 1, Got: 0, Reason: "acceptance verdict regressed",
				})
			}
		}
	}
	oneSided("nan_detected", base.Health.NaNDetected, got.Health.NaNDetected)
	oneSided("svd_fallbacks", base.Health.SVDFallbacks, got.Health.SVDFallbacks)
	oneSided("gram_fallbacks", base.Health.GramFallbacks, got.Health.GramFallbacks)
	oneSided("nonconverged", base.Health.Nonconverged, got.Health.Nonconverged)
	oneSided("checkpoint_failures", base.Health.CheckpointFailures, got.Health.CheckpointFailures)
	return out
}

// ReadBenchJSON loads dir/BENCH_<suite>.json.
func ReadBenchJSON(dir, suite string) (SuiteResult, error) {
	var res SuiteResult
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", suite))
	data, err := os.ReadFile(path)
	if err != nil {
		return res, err
	}
	if err := json.Unmarshal(data, &res); err != nil {
		return res, fmt.Errorf("%s: %w", path, err)
	}
	return res, nil
}
