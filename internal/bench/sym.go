package bench

import (
	"fmt"
	"io"
	"math"

	"gokoala/internal/backend"
	"gokoala/internal/einsum"
	"gokoala/internal/ite"
	"gokoala/internal/peps"
	"gokoala/internal/quantum"
)

// SymConfig controls the block-sparse-versus-dense ITE comparison: the
// same Trotter schedule is evolved on both backends at equal bond
// dimension and the executed GEMM flops, wall time, and state memory are
// compared.
type SymConfig struct {
	Rows, Cols      int
	Tau             float64
	Steps           int
	Rank            int
	ContractionRank int
	Seed            int64
}

// DefaultSymConfig runs both charge-conserving benchmark models (dual-
// frame TFI under Z2 parity, J1-J2 under U(1) particle number) on a 2x3
// lattice in a few seconds.
func DefaultSymConfig() SymConfig {
	return SymConfig{Rows: 2, Cols: 3, Tau: 0.05, Steps: 6, Rank: 4, ContractionRank: 8, Seed: 1}
}

// SymModelResult is the per-model record of the sym suite, emitted into
// BENCH_sym.json for regression tracking.
type SymModelResult struct {
	Model string `json:"model"`
	// Mod is the charge modulus (0 = U(1), 2 = Z2).
	Mod  int `json:"mod"`
	Rank int `json:"rank"`
	// Whole-run numeric-kernel flops and wall time per backend.
	DenseWallSeconds float64 `json:"dense_wall_seconds"`
	SymWallSeconds   float64 `json:"sym_wall_seconds"`
	DenseFlops       int64   `json:"dense_flops"`
	SymFlops         int64   `json:"sym_flops"`
	// Contraction-level accounting from einsum.SymStats: GEMM flops the
	// block-sparse contractions executed versus what dense contractions
	// of the same embedded operands would have cost. Their quotient is
	// GEMMReduction, the headline "x-fold fewer flops" figure.
	SymGEMMFlops       int64   `json:"sym_gemm_flops"`
	SymDenseEquivFlops int64   `json:"sym_dense_equiv_flops"`
	GEMMReduction      float64 `json:"gemm_reduction"`
	// Final-state memory per backend at the same bond dimension.
	DenseStateBytes int64 `json:"dense_state_bytes"`
	SymStateBytes   int64 `json:"sym_state_bytes"`
	// Final measured energy per site on each backend; the acceptance
	// gate requires agreement within 1e-10.
	EnergyDense float64 `json:"energy_dense"`
	EnergySym   float64 `json:"energy_sym"`
	// Pass records the acceptance verdict: GEMMReduction >= 2, state
	// memory below dense, energies within 1e-10.
	Pass bool `json:"pass"`
}

// SymSuiteDetail is the sym-suite payload attached to SuiteResult.
type SymSuiteDetail struct {
	Models []SymModelResult `json:"models"`
}

// lastSymDetail hands the most recent ExperimentSym detail to
// CollectSuiteMetrics (the suite runner's io.Writer-only callback cannot
// return it directly).
var lastSymDetail *SymSuiteDetail

// TakeSymDetail returns and clears the detail recorded by the last
// ExperimentSym run, nil when none ran since the last take.
func TakeSymDetail() *SymSuiteDetail {
	d := lastSymDetail
	lastSymDetail = nil
	return d
}

func densePEPSBytes(p *peps.PEPS) int64 {
	var b int64
	for r := 0; r < p.Rows; r++ {
		for c := 0; c < p.Cols; c++ {
			b += int64(16 * len(p.Site(r, c).Data()))
		}
	}
	return b
}

// ExperimentSym evolves each charge-conserving benchmark model with the
// dense and the block-sparse backend from the same initial state and the
// same Trotter schedule, then prints the flop, wall-clock, and memory
// comparison plus a per-model acceptance verdict.
func ExperimentSym(w io.Writer, cfg SymConfig) {
	eng := denseEngine()
	se, ok := backend.SymOf(eng)
	if !ok {
		panic("bench: dense engine must expose block-sparse kernels")
	}
	fmt.Fprintf(w, "Block-sparse vs dense ITE on %dx%d, r=%d, m=%d, %d steps of tau=%g\n\n",
		cfg.Rows, cfg.Cols, cfg.Rank, cfg.ContractionRank, cfg.Steps, cfg.Tau)

	type model struct {
		name       string
		mod        int
		rows, cols int
		obs        *quantum.Observable
		bits       []int
	}
	// The J1-J2 comparison runs on 2x2, where rank 4 is the exact bond
	// dimension: the Neel-start spectrum is degenerate, and with active
	// truncation the two backends may keep different (equally valid)
	// subspaces, which would turn a tie-break difference into an energy
	// gap. The TFI spectrum has no such ties, so it exercises active
	// truncation on the full lattice.
	models := []model{
		{"tfi-dual-z2", 2, cfg.Rows, cfg.Cols, quantum.TransverseFieldIsingDual(cfg.Rows, cfg.Cols, -1, -3.5), nil},
		{"j1j2-u1", 0, 2, 2, quantum.J1J2HeisenbergU1(2, 2, quantum.PaperJ1J2ParamsU1()), quantum.NeelBits(2, 2)},
	}

	opts := ite.Options{
		Tau: cfg.Tau, Steps: cfg.Steps, EvolutionRank: cfg.Rank,
		ContractionRank: cfg.ContractionRank, Strategy: explicitStrategy(),
		MeasureEvery: cfg.Steps, Seed: cfg.Seed,
	}

	detail := &SymSuiteDetail{}
	t := NewTable("model", "backend", "wall_s", "run_flops", "gemm_flops", "state_bytes", "energy_per_site")
	for _, m := range models {
		r := SymModelResult{Model: m.name, Mod: m.mod, Rank: cfg.Rank}

		dstate := peps.SymComputationalBasis(se, m.mod, m.rows, m.cols, m.bits).ToDense()
		var dres ite.Result
		r.DenseFlops = flopsOf(func() {
			r.DenseWallSeconds = timeIt(func() { dres = ite.Evolve(dstate, m.obs, opts) })
		})
		r.DenseStateBytes = densePEPSBytes(dres.Final)
		r.EnergyDense = dres.Energies[len(dres.Energies)-1]

		sstate := peps.SymComputationalBasis(se, m.mod, m.rows, m.cols, m.bits)
		_, _, f0, d0 := einsum.SymStats()
		var sres ite.Result
		r.SymFlops = flopsOf(func() {
			r.SymWallSeconds = timeIt(func() { sres = ite.EvolveSym(sstate, m.obs, opts) })
		})
		_, _, f1, d1 := einsum.SymStats()
		if sres.FellBack {
			panic(fmt.Sprintf("bench: %s fell back to dense — its gates must conserve charge", m.name))
		}
		r.SymGEMMFlops = f1 - f0
		r.SymDenseEquivFlops = d1 - d0
		if r.SymGEMMFlops > 0 {
			r.GEMMReduction = float64(r.SymDenseEquivFlops) / float64(r.SymGEMMFlops)
		}
		r.SymStateBytes = sres.FinalSym.StateBytes()
		r.EnergySym = sres.Energies[len(sres.Energies)-1]

		r.Pass = r.GEMMReduction >= 2 &&
			r.SymStateBytes < r.DenseStateBytes &&
			math.Abs(r.EnergySym-r.EnergyDense) <= 1e-10
		detail.Models = append(detail.Models, r)

		t.Add(m.name, "dense", r.DenseWallSeconds, r.DenseFlops, "-", r.DenseStateBytes, r.EnergyDense)
		t.Add(m.name, "block-sparse", r.SymWallSeconds, r.SymFlops, r.SymGEMMFlops, r.SymStateBytes, r.EnergySym)
	}
	t.Print(w)
	fmt.Fprintln(w)
	for _, r := range detail.Models {
		verdict := "PASS"
		if !r.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(w, "sym acceptance %s: gemm reduction %.2fx (%d vs dense-equiv %d), state bytes %.2fx, |dE| %.2e: %s\n",
			r.Model, r.GEMMReduction, r.SymGEMMFlops, r.SymDenseEquivFlops,
			float64(r.SymStateBytes)/float64(r.DenseStateBytes),
			math.Abs(r.EnergySym-r.EnergyDense), verdict)
	}
	fmt.Fprintln(w, "\npaper shape: charge conservation empties most sectors, so block-by-block")
	fmt.Fprintln(w, "contraction executes a fraction of the dense GEMM flops and stores a")
	fmt.Fprintln(w, "fraction of the dense state at the same bond dimension and accuracy.")
	lastSymDetail = detail
}
