package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"gokoala/internal/dist"
	"gokoala/internal/einsum"
	"gokoala/internal/obs"
	"gokoala/internal/pool"
	"gokoala/internal/tensor"
)

// SuiteResult is the machine-readable record koala-bench emits per
// experiment when -json is given: one BENCH_<suite>.json per suite, so
// downstream tooling (regression trackers, plotting scripts) can diff
// runs without scraping the text tables.
type SuiteResult struct {
	// Suite is the experiment name as passed on the command line
	// (e.g. "table2", "fig7a").
	Suite string `json:"suite"`
	// Params records the configuration the suite ran with.
	Params interface{} `json:"params,omitempty"`
	// WallSeconds is the measured wall-clock time of the whole suite.
	WallSeconds float64 `json:"wall_seconds"`
	// ModeledSeconds is the machine-model time accumulated by the
	// simulated distributed runtime during the suite (computation plus
	// communication), zero for dense-only suites. The Comp/Comm fields
	// carry the split.
	ModeledSeconds     float64 `json:"modeled_seconds"`
	ModeledCompSeconds float64 `json:"modeled_comp_seconds"`
	ModeledCommSeconds float64 `json:"modeled_comm_seconds"`
	// Flops is the complex-flop count charged to the global tensor
	// counter during the suite.
	Flops int64 `json:"flops"`
	// CommBytes is the modeled communication volume.
	CommBytes int64 `json:"comm_bytes"`
	// PlanCacheHits/Misses/HitRate record how well the einsum plan
	// cache absorbed the suite's contraction stream (hit rate over the
	// whole process up to collection, since the cache is global).
	PlanCacheHits   int64   `json:"plan_cache_hits"`
	PlanCacheMisses int64   `json:"plan_cache_misses"`
	PlanCacheRate   float64 `json:"plan_cache_hit_rate"`
	// Workers is the pool size the primary run used.
	Workers int `json:"workers"`
	// SpeedupVs1 is the wall-clock speedup at the primary worker count
	// relative to the single-worker rerun of the scaling sweep (zero when
	// no sweep ran).
	SpeedupVs1 float64 `json:"speedup_vs_1,omitempty"`
	// Scaling is the worker-count scaling curve recorded by rerunning the
	// suite at increasing pool sizes.
	Scaling []ScalingPoint `json:"scaling,omitempty"`
	// Lattice task scheduler counters: tasks that got their own
	// goroutine, tasks run inline under token contention, and coordinator
	// seconds spent waiting on task groups.
	GroupTasks       int64   `json:"group_tasks"`
	GroupInline      int64   `json:"group_inline"`
	GroupWaitSeconds float64 `json:"group_wait_seconds"`
	// TaskCount is the deterministic task-submission count
	// (pool.task.count): every lattice task, whether it ran on its own
	// goroutine or inline, unlike the scheduling-dependent split above.
	TaskCount int64 `json:"task_count"`
	// PeakBytes is the high-water mark of tracked scratch memory
	// (einsum frame pools, threaded-kernel output staging) during the
	// suite. Wall-clock-like: it depends on scheduling, so it is
	// reported but never gated.
	PeakBytes int64 `json:"peak_bytes"`
	// Health records the numerical-health counters the suite tripped.
	Health HealthCounters `json:"health"`
	// Sym carries the per-model dense-versus-block-sparse comparison of
	// the sym suite (nil for every other suite).
	Sym *SymSuiteDetail `json:"sym,omitempty"`
	// Kernel records which compute kernels served the suite. Every field
	// is machine-dependent (which CPU ran, which dispatch won), so like
	// wall-clock it is reported for context and never gated by
	// CompareSuite.
	Kernel *KernelInfo `json:"kernel,omitempty"`
	// Ranks carries the per-rank measured comm stats of a real-transport
	// run (-transport unix|tcp): per-process measured wall clock per
	// collective plus the clock-offset estimates from the sync pings.
	// Like wall-clock it is machine-dependent and never gated by
	// CompareSuite; nil for inproc runs.
	Ranks []dist.RankStat `json:"ranks,omitempty"`
}

// KernelInfo is the per-suite snapshot of the compute-kernel dispatch:
// the variant that won CPU detection (or was forced via KOALA_KERNEL /
// -kernel), the features behind the choice, per-class GEMM dispatch
// counts, and the realized arithmetic rate.
type KernelInfo struct {
	// Variant is the selected kernel implementation ("avx2" or "go").
	Variant string `json:"variant"`
	// CPUFeatures lists the detected SIMD features (empty on non-amd64
	// and purego builds).
	CPUFeatures string `json:"cpu_features,omitempty"`
	// GFlops is the realized rate in real GFLOP/s over the suite's wall
	// time, counting one complex multiply-add as 8 real flops. Zero when
	// no wall time was measured.
	GFlops float64 `json:"gflops,omitempty"`
	// GEMMAsm / GEMMGo / GEMMMixed count gemm dispatches per kernel
	// class: assembly complex128 panels, portable Go panels, and
	// complex64 mixed-precision batches (the RandSVD sketch path).
	GEMMAsm   int64 `json:"gemm_asm_calls"`
	GEMMGo    int64 `json:"gemm_go_calls"`
	GEMMMixed int64 `json:"gemm_mixed_calls"`
	// F32Sketch records whether the complex64 RandSVD sketch stage
	// (-f32-sketch) was enabled for the run.
	F32Sketch bool `json:"f32_sketch"`
}

// HealthCounters is the per-suite snapshot of the numerical-health
// counters (see internal/health); all zero on a clean run.
type HealthCounters struct {
	NaNDetected        int64 `json:"nan_detected"`
	SVDFallbacks       int64 `json:"svd_fallbacks"`
	GramFallbacks      int64 `json:"gram_fallbacks"`
	Nonconverged       int64 `json:"nonconverged"`
	CheckpointFailures int64 `json:"checkpoint_failures"`
}

// ScalingPoint is one entry of a worker-count scaling curve.
type ScalingPoint struct {
	Workers     int     `json:"workers"`
	WallSeconds float64 `json:"wall_seconds"`
	SpeedupVs1  float64 `json:"speedup_vs_1"`
}

// CollectSuiteMetrics fills the obs-derived fields of a SuiteResult from
// the current counter registry. Call it after the suite ran and before
// obs.ResetCounters.
func CollectSuiteMetrics(res *SuiteResult) {
	res.ModeledCommSeconds = obs.MetricValueOf("dist.modeled.comm_seconds")
	res.ModeledCompSeconds = obs.MetricValueOf("dist.modeled.comp_seconds")
	res.ModeledSeconds = res.ModeledCommSeconds + res.ModeledCompSeconds
	res.CommBytes = int64(obs.MetricValueOf("dist.comm.bytes"))
	res.PlanCacheHits, res.PlanCacheMisses, _ = einsum.PlanCacheStats()
	if total := res.PlanCacheHits + res.PlanCacheMisses; total > 0 {
		res.PlanCacheRate = float64(res.PlanCacheHits) / float64(total)
	}
	res.Workers = pool.Size()
	res.GroupTasks = int64(obs.MetricValueOf("pool.group.tasks"))
	res.GroupInline = int64(obs.MetricValueOf("pool.group.inline"))
	res.GroupWaitSeconds = obs.MetricValueOf("pool.group.wait_seconds")
	res.TaskCount = int64(obs.MetricValueOf("pool.task.count"))
	res.PeakBytes = obs.PeakBytes()
	if d := TakeSymDetail(); d != nil {
		res.Sym = d
	}
	res.Kernel = &KernelInfo{
		Variant:     tensor.KernelVariant(),
		CPUFeatures: tensor.CPUFeatures(),
		GEMMAsm:     int64(obs.MetricValueOf("kernel.gemm_asm")),
		GEMMGo:      int64(obs.MetricValueOf("kernel.gemm_go")),
		GEMMMixed:   int64(obs.MetricValueOf("kernel.gemm_mixed")),
		F32Sketch:   sketch32,
	}
	if res.WallSeconds > 0 {
		res.Kernel.GFlops = 8 * float64(res.Flops) / res.WallSeconds / 1e9
	}
	res.Health = HealthCounters{
		NaNDetected:        int64(obs.MetricValueOf("health.nan_detected")),
		SVDFallbacks:       int64(obs.MetricValueOf("health.svd_fallbacks")),
		GramFallbacks:      int64(obs.MetricValueOf("health.gram_fallbacks")),
		Nonconverged:       int64(obs.MetricValueOf("health.nonconverged")),
		CheckpointFailures: int64(obs.MetricValueOf("health.checkpoint_failures")),
	}
	if rs, ok := benchTransport.(dist.RankStatser); ok {
		res.Ranks = rs.RankStats()
	}
}

// WriteBenchJSON writes res as dir/BENCH_<suite>.json (indented, with a
// trailing newline) and returns the path written.
func WriteBenchJSON(dir string, res SuiteResult) (string, error) {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", res.Suite))
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}
