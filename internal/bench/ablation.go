package bench

import (
	"fmt"
	"io"
	"math/rand"

	"gokoala/internal/einsumsvd"
	"gokoala/internal/ite"
	"gokoala/internal/linalg"
	"gokoala/internal/peps"
	"gokoala/internal/quantum"
	"gokoala/internal/statevector"
	"gokoala/internal/tensor"
)

// AblationConfig controls the design-choice ablation studies.
type AblationConfig struct {
	Seed int64
}

// ExperimentAblationRSVD quantifies the two knobs of the implicit
// randomized SVD (paper Algorithm 4) — orthogonal-iteration rounds and
// sketch oversampling — in the truncating regime that PEPS compression
// lives in: a matrix with a geometrically decaying spectrum is truncated
// to a fixed rank, and the achieved error is compared to the optimal
// (Eckart-Young) error of the exact truncated SVD. This backs the
// paper's Figure 10 observation that IBMPS adds no error over BMPS once
// the sketch is refined.
func ExperimentAblationRSVD(w io.Writer, cfg AblationConfig) {
	fmt.Fprintln(w, "Ablation: randomized SVD parameters (NIter x Oversample)")
	fmt.Fprintln(w, "task: rank-8 truncation of a 64x64 matrix with spectrum 0.8^i")
	fmt.Fprintln(w)
	eng := denseEngine()
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Build A = U diag(0.8^i) V* with Haar-ish factors.
	const n, rank = 64, 8
	u := quantum.RandomUnitary(rng, n)
	v := quantum.RandomUnitary(rng, n)
	d := tensor.New(n, n)
	sig := 1.0
	for i := 0; i < n; i++ {
		d.Set(complex(sig, 0), i, i)
		sig *= 0.8
	}
	a := tensor.MatMul(tensor.MatMul(u, d), v.Conj().Transpose(1, 0))

	truncErr := func(u2 *tensor.Dense, s []float64, v2 *tensor.Dense) float64 {
		k := len(s)
		sd := tensor.New(k, k)
		for i := 0; i < k; i++ {
			sd.Set(complex(s[i], 0), i, i)
		}
		approx := tensor.MatMul(tensor.MatMul(u2, sd), v2.Conj().Transpose(1, 0))
		return approx.Sub(a).Norm() / a.Norm()
	}
	uo, so, vo := eng.TruncSVD(a, rank)
	optimal := truncErr(uo, so, vo)
	fmt.Fprintf(w, "optimal (Eckart-Young) relative error: %.6f\n\n", optimal)

	t := NewTable("niter", "oversample", "rel_err", "excess_over_optimal")
	for _, niter := range []int{0, 1, 2, 3} {
		for _, over := range []int{0, 4, 8} {
			u2, s2, v2 := linalg.RandSVD(linalg.MatrixOperator{M: a}, rank, linalg.RandSVDOptions{
				NIter: niter, Oversample: over, Rng: rand.New(rand.NewSource(cfg.Seed + int64(10*niter+over))),
			})
			e := truncErr(u2, s2, v2)
			t.Add(niter, over, e, e/optimal-1)
		}
	}
	t.Print(w)
	fmt.Fprintln(w, "\nexpected: the plain sketch (niter=0, no oversampling) overshoots the optimal")
	fmt.Fprintln(w, "error; one power iteration or modest oversampling closes the gap, matching the")
	fmt.Fprintln(w, "defaults the library uses inside einsumsvd.")
}

// ExperimentAblationUpdate compares the two-site operator application
// algorithms: the direct contract-and-refactor update versus the QR-SVD
// update of paper Algorithm 1 (O(d^3 r^9)-class vs O(d^2 r^5)-class).
// It reports flops per update as the bond dimension grows and the fitted
// log-log slopes.
func ExperimentAblationUpdate(w io.Writer, cfg AblationConfig) {
	fmt.Fprintln(w, "Ablation: two-site update algorithm (paper Algorithm 1 vs direct)")
	fmt.Fprintln(w)
	eng := denseEngine()
	gate := quantum.ISwap()
	bonds := []int{2, 4, 6, 8, 10}
	t := NewTable("r", "method", "flops_per_update")
	slopes := map[string][]float64{}
	for _, r := range bonds {
		for _, method := range []struct {
			name string
			m    peps.UpdateMethod
		}{{"qr-svd", peps.UpdateQR}, {"direct", peps.UpdateDirect}} {
			rng := rand.New(rand.NewSource(cfg.Seed))
			state := peps.Random(eng, rng, 3, 3, 2, r)
			opts := peps.UpdateOptions{Rank: r, Method: method.m}
			fl := flopsOf(func() {
				state.ApplyTwoSite(gate, state.SiteIndex(1, 0), state.SiteIndex(1, 1), opts)
			})
			t.Add(r, method.name, fmt.Sprintf("%d", fl))
			slopes[method.name] = append(slopes[method.name], float64(fl))
		}
	}
	t.Print(w)
	xs := make([]float64, len(bonds))
	for i, b := range bonds {
		xs[i] = float64(b)
	}
	fmt.Fprintln(w, "\nmeasured r-exponents (paper: direct ~ r^9-class, qr-svd ~ r^5-class):")
	st := NewTable("method", "slope d log(flops)/d log(r)")
	for _, name := range []string{"qr-svd", "direct"} {
		st.Add(name, logSlope(xs, slopes[name]))
	}
	st.Print(w)
}

// ExperimentAblationWeighted compares the plain per-bond simple update
// against the lambda-weighted (Jiang-Weng-Xiang) variant at equal rank on
// imaginary time evolution of the J1-J2 model — the weighted environment
// is the classic accuracy upgrade the paper's reference [24] introduced.
func ExperimentAblationWeighted(w io.Writer, cfg AblationConfig) {
	fmt.Fprintln(w, "Ablation: plain vs lambda-weighted simple update (2x2 J1-J2 ITE, 150 steps)")
	fmt.Fprintln(w)
	obs := quantum.J1J2Heisenberg(2, 2, quantum.PaperJ1J2Params())
	eng := denseEngine()
	rng := rand.New(rand.NewSource(cfg.Seed))
	exactE, _ := statevector.GroundState(obs, 4, rng)
	exact := exactE / 4
	t := NewTable("rank", "update", "energy_per_site", "gap_to_exact")
	for _, r := range []int{1, 2, 3} {
		for _, weighted := range []bool{false, true} {
			state := ite.PlusState(peps.ComputationalZeros(eng, 2, 2))
			res := ite.Evolve(state, obs, ite.Options{
				Tau: 0.05, Steps: 150, EvolutionRank: r, ContractionRank: r * r,
				Strategy: einsumsvd.Explicit{}, MeasureEvery: 150, WeightedUpdate: weighted,
			})
			name := "plain"
			if weighted {
				name = "weighted"
			}
			e := res.Energies[len(res.Energies)-1]
			t.Add(r, name, e, e-exact)
		}
	}
	t.Print(w)
	fmt.Fprintf(w, "\nexact ground state energy per site: %.4f\n", exact)
	fmt.Fprintln(w, "expected: the weighted environment closes most of the gap at equal rank.")
}

// ExperimentAblationCanonical compares simple-update sigma placement:
// balanced sqrt(sigma) on both factors versus all of sigma on one side,
// measuring ITE accuracy on the 2x2 TFI model.
func ExperimentAblationCanonical(w io.Writer, cfg AblationConfig) {
	fmt.Fprintln(w, "Ablation: einsumsvd sigma placement in truncated gate updates")
	fmt.Fprintln(w)
	obs := quantum.TransverseFieldIsing(2, 2, -1, -3.5)
	eng := denseEngine()
	t := NewTable("sigma_mode", "final_energy_per_site")
	for _, mode := range []struct {
		name string
		m    einsumsvd.SigmaMode
	}{{"both(sqrt)", einsumsvd.SigmaBoth}, {"right", einsumsvd.SigmaRight}, {"left", einsumsvd.SigmaLeft}} {
		state := peps.ComputationalZeros(eng, 2, 2)
		for s := 0; s < 4; s++ {
			state.ApplyOneSite(quantum.H(), s)
		}
		gates := obs.TrotterGates(complex(-0.05, 0))
		opts := peps.UpdateOptions{
			Rank: 2, Method: peps.UpdateQR, Normalize: true,
			Strategy: einsumsvd.Explicit{Mode: mode.m},
		}
		for step := 0; step < 60; step++ {
			state.ApplyCircuit(gates, opts)
		}
		e := state.EnergyPerSite(obs, peps.ExpectationOptions{M: 8, Strategy: einsumsvd.Explicit{}})
		t.Add(mode.name, e)
	}
	t.Print(w)
	fmt.Fprintln(w, "\nexpected: all placements give similar fixed points on this gapped model;")
	fmt.Fprintln(w, "the balanced split keeps site norms even, which matters for long evolutions.")
}
