package bench

import (
	"fmt"
	"io"
	"math/rand"

	"gokoala/internal/peps"
)

// Table2Config controls the empirical complexity study.
type Table2Config struct {
	N     int   // lattice side
	Bonds []int // PEPS (state) bond dimensions b; one-layer bond is b^2
	Ms    []int // truncation bond dimensions at fixed bond
	FixB  int   // bond used for the m sweep
	Seed  int64
}

// DefaultTable2Config returns a single-core-friendly configuration.
func DefaultTable2Config() Table2Config {
	// FixB = 3 keeps the m sweep inside the scaling regime (the merged
	// one-layer bond is 9, so boundary ranks saturate only beyond m = 81).
	return Table2Config{N: 4, Bonds: []int{2, 3, 4}, Ms: []int{4, 8, 16, 32}, FixB: 3, Seed: 1}
}

// ExperimentTable2 reproduces paper Table II empirically: it measures the
// complex-flop count of computing <P|P> with BMPS (explicit SVD on the
// merged one-layer network), IBMPS (implicit randomized SVD, merged), and
// two-layer IBMPS (layers kept implicit), sweeping the truncation bond m
// at fixed state bond b and sweeping b at m = b^2. It reports the
// measured log-log scaling exponents next to the paper's asymptotic
// terms, and the BMPS/IBMPS flop ratios that quantify the asymptotic
// advantage.
func ExperimentTable2(w io.Writer, cfg Table2Config) {
	eng := denseEngine()
	rng := rand.New(rand.NewSource(cfg.Seed))

	methods := []struct {
		name string
		run  func(state *peps.PEPS, m int, seed int64) complex128
	}{
		{"bmps", func(s *peps.PEPS, m int, seed int64) complex128 {
			return s.Inner(s, peps.BMPS{M: m, Strategy: explicitStrategy()})
		}},
		{"ibmps", func(s *peps.PEPS, m int, seed int64) complex128 {
			return s.Inner(s, peps.BMPS{M: m, Strategy: implicitStrategy(seed)})
		}},
		{"2layer-ibmps", func(s *peps.PEPS, m int, seed int64) complex128 {
			return s.Inner(s, peps.TwoLayerBMPS{M: m, Strategy: implicitStrategy(seed)})
		}},
	}

	fmt.Fprintf(w, "Table II: flops of <P|P> on a %dx%d PEPS (physical dim 2)\n\n", cfg.N, cfg.N)

	// Sweep m at fixed bond.
	state := peps.Random(eng, rng, cfg.N, cfg.N, 2, cfg.FixB)
	tm := NewTable("method", "b", "m", "flops")
	flopsByMethodM := map[string][]float64{}
	for _, m := range cfg.Ms {
		for _, meth := range methods {
			fl := flopsOf(func() { meth.run(state, m, cfg.Seed+int64(m)) })
			tm.Add(meth.name, cfg.FixB, m, fmt.Sprintf("%d", fl))
			flopsByMethodM[meth.name] = append(flopsByMethodM[meth.name], float64(fl))
		}
	}
	tm.Print(w)

	ms := make([]float64, len(cfg.Ms))
	for i, m := range cfg.Ms {
		ms[i] = float64(m)
	}
	fmt.Fprintf(w, "\nmeasured m-exponents (paper: bmps m^3 dominant, ibmps m^2..m^3, 2-layer m^2..m^3):\n")
	st := NewTable("method", "slope d log(flops)/d log(m)")
	for _, meth := range methods {
		st.Add(meth.name, logSlope(ms, flopsByMethodM[meth.name]))
	}
	st.Print(w)

	// Sweep bond with m = b^2 (the accuracy-matched setting).
	fmt.Fprintf(w, "\nbond sweep with m = b^2:\n")
	tb := NewTable("method", "b", "m", "flops", "flops/ibmps")
	flopsByMethodB := map[string][]float64{}
	for _, b := range cfg.Bonds {
		state := peps.Random(eng, rng, cfg.N, cfg.N, 2, b)
		m := b * b
		fls := make([]float64, len(methods))
		var ibmpsFl float64
		for i, meth := range methods {
			fls[i] = float64(flopsOf(func() { meth.run(state, m, cfg.Seed+int64(b)) }))
			if meth.name == "ibmps" {
				ibmpsFl = fls[i]
			}
		}
		for i, meth := range methods {
			ratio := 0.0
			if ibmpsFl > 0 {
				ratio = fls[i] / ibmpsFl
			}
			tb.Add(meth.name, b, m, fmt.Sprintf("%.0f", fls[i]), ratio)
			flopsByMethodB[meth.name] = append(flopsByMethodB[meth.name], fls[i])
		}
	}
	tb.Print(w)

	bs := make([]float64, len(cfg.Bonds))
	for i, b := range cfg.Bonds {
		bs[i] = float64(b)
	}
	fmt.Fprintf(w, "\nmeasured b-exponents at m=b^2 (higher = worse asymptotics):\n")
	sb := NewTable("method", "slope d log(flops)/d log(b)")
	for _, meth := range methods {
		sb.Add(meth.name, logSlope(bs, flopsByMethodB[meth.name]))
	}
	sb.Print(w)
}
