package bench

import (
	"fmt"
	"io"
	"math/rand"

	"gokoala/internal/ite"
	"gokoala/internal/peps"
	"gokoala/internal/quantum"
	"gokoala/internal/statevector"
	"gokoala/internal/vqe"
)

// Fig13Config controls the ITE application study.
type Fig13Config struct {
	Rows, Cols   int
	Tau          float64
	Steps        int
	Bonds        []int
	MeasureEvery int
	Seed         int64
}

// DefaultFig13Config mirrors paper Figure 13 (4x4 J1-J2, 150 steps,
// r = 1..10) at reduced scale: r = 1..3 with 60 steps on the 4x4 lattice.
func DefaultFig13Config() Fig13Config {
	return Fig13Config{Rows: 4, Cols: 4, Tau: 0.05, Steps: 60, Bonds: []int{1, 2, 3}, MeasureEvery: 10, Seed: 9}
}

// ExperimentFig13a reproduces paper Figure 13a: PEPS ITE energy per site
// at each measurement step for the 4x4 J1-J2 model, for small bond
// dimensions with m = r^2 and m = r, next to the state-vector TEBD
// reference (same Trotterization, exact amplitudes).
func ExperimentFig13a(w io.Writer, cfg Fig13Config) {
	obs := quantum.J1J2Heisenberg(cfg.Rows, cfg.Cols, quantum.PaperJ1J2Params())
	n := cfg.Rows * cfg.Cols
	fmt.Fprintf(w, "Figure 13a: ITE on the %dx%d J1-J2 model, tau=%g\n\n", cfg.Rows, cfg.Cols, cfg.Tau)

	svTrace := statevector.ITE(obs, n, cfg.Tau, cfg.Steps)
	t := NewTable("series", "step", "energy_per_site")
	for s := cfg.MeasureEvery; s <= cfg.Steps; s += cfg.MeasureEvery {
		t.Add("state-vector", s, svTrace[s-1]/float64(n))
	}
	eng := denseEngine()
	for _, r := range cfg.Bonds {
		for _, mMode := range []string{"m=r^2", "m=r"} {
			m := r * r
			if mMode == "m=r" {
				m = r
			}
			if m < 2 {
				m = 2
			}
			state := ite.PlusState(peps.ComputationalZeros(eng, cfg.Rows, cfg.Cols))
			res := ite.Evolve(state, obs, ite.Options{
				Tau: cfg.Tau, Steps: cfg.Steps, EvolutionRank: r, ContractionRank: m,
				Strategy: implicitStrategy(cfg.Seed + int64(r)), MeasureEvery: cfg.MeasureEvery,
				UseCache: true,
			})
			for i, e := range res.Energies {
				t.Add(fmt.Sprintf("r=%d %s", r, mMode), res.MeasuredAt[i], e)
			}
		}
	}
	t.Print(w)
	fmt.Fprintln(w, "\npaper shape: energies fall with steps; larger r tracks the state-vector")
	fmt.Fprintln(w, "curve more closely; m=r is nearly as accurate as m=r^2 on this model.")
}

// ExperimentFig13b reproduces paper Figure 13b: the final ITE energy per
// site after all steps, as the evolution bond dimension grows, with
// m = r and m = r^2, against the exact ground state (Lanczos for up to 16
// sites).
func ExperimentFig13b(w io.Writer, cfg Fig13Config) {
	obs := quantum.J1J2Heisenberg(cfg.Rows, cfg.Cols, quantum.PaperJ1J2Params())
	n := cfg.Rows * cfg.Cols
	fmt.Fprintf(w, "Figure 13b: final ITE energy per site after %d steps, %dx%d J1-J2\n\n", cfg.Steps, cfg.Rows, cfg.Cols)

	rng := rand.New(rand.NewSource(cfg.Seed))
	exactE, _ := statevector.GroundState(obs, n, rng)
	svTrace := statevector.ITE(obs, n, cfg.Tau, cfg.Steps)

	eng := denseEngine()
	t := NewTable("r", "m_mode", "energy_per_site", "gap_to_exact")
	t.Add(0, "exact-ground", exactE/float64(n), 0.0)
	t.Add(0, "state-vector-ite", svTrace[cfg.Steps-1]/float64(n), svTrace[cfg.Steps-1]/float64(n)-exactE/float64(n))
	for _, r := range cfg.Bonds {
		for _, mMode := range []string{"m=r^2", "m=r"} {
			m := r * r
			if mMode == "m=r" {
				m = r
			}
			if m < 2 {
				m = 2
			}
			state := ite.PlusState(peps.ComputationalZeros(eng, cfg.Rows, cfg.Cols))
			res := ite.Evolve(state, obs, ite.Options{
				Tau: cfg.Tau, Steps: cfg.Steps, EvolutionRank: r, ContractionRank: m,
				Strategy: implicitStrategy(cfg.Seed + int64(10*r)), MeasureEvery: cfg.Steps,
				UseCache: true,
			})
			e := res.Energies[len(res.Energies)-1]
			t.Add(r, mMode, e, e-exactE/float64(n))
		}
	}
	t.Print(w)
	fmt.Fprintln(w, "\npaper shape: the energy approaches the reference as r grows; m=r and m=r^2")
	fmt.Fprintln(w, "reach similar accuracy at much different cost.")
}

// Fig14Config controls the VQE application study.
type Fig14Config struct {
	Rows, Cols int
	Layers     int
	Bonds      []int
	MaxIter    int
	Seed       int64
}

// DefaultFig14Config mirrors paper Figure 14 (3x3 TFI, r = 1..4). The
// paper's SLSQP uses gradients; the derivative-free Nelder-Mead simplex
// needs a few hundred iterations on the 18-parameter landscape to reach
// the same energies, so the iteration axis is scaled accordingly.
func DefaultFig14Config() Fig14Config {
	return Fig14Config{Rows: 3, Cols: 3, Layers: 2, Bonds: []int{1, 2}, MaxIter: 150, Seed: 10}
}

// ExperimentFig14 reproduces paper Figure 14: VQE on the ferromagnetic
// transverse-field Ising model (Jz = -1, hx = -3.5) with the layered
// Ry+CNOT ansatz, comparing PEPS simulations at several bond dimensions
// against the state-vector objective and the exact ground state energy
// (paper values: -3.5 floor at r=1, improving toward the state vector's
// -3.57049, exact -3.60024 per site).
func ExperimentFig14(w io.Writer, cfg Fig14Config) {
	obs := quantum.TransverseFieldIsing(cfg.Rows, cfg.Cols, -1, -3.5)
	n := cfg.Rows * cfg.Cols
	fmt.Fprintf(w, "Figure 14: VQE on the %dx%d TFI model (Jz=-1, hx=-3.5), %d ansatz layers\n\n", cfg.Rows, cfg.Cols, cfg.Layers)

	rng := rand.New(rand.NewSource(cfg.Seed))
	exactE, _ := statevector.GroundState(obs, n, rng)
	fmt.Fprintf(w, "exact ground state energy per site: %.5f (paper: -3.60024)\n\n", exactE/float64(n))

	a := vqe.Ansatz{Rows: cfg.Rows, Cols: cfg.Cols, Layers: cfg.Layers}
	t := NewTable("series", "iteration", "best_energy_per_site")
	final := NewTable("series", "objective_per_site", "true_energy_per_site", "gap_to_exact")

	runOne := func(name string, rank int) {
		res := vqe.Run(a, obs, vqe.Options{
			Rank: rank, MaxIter: cfg.MaxIter, Seed: cfg.Seed, UseCache: true,
		})
		for i, e := range res.History {
			if (i+1)%25 == 0 || i == len(res.History)-1 {
				t.Add(name, i+1, e)
			}
		}
		// Re-evaluate the optimized circuit exactly: for truncated PEPS
		// objectives the optimizer can exploit approximation error (the
		// effect behind the paper's anomalous r=2 value), so the true
		// energy of the optimized parameters is the honest figure.
		trueE := vqe.EnergyStateVector(a, obs, res.Theta)
		final.Add(name, res.EnergyPerSite, trueE, trueE-exactE/float64(n))
	}
	runOne("state-vector", 0)
	for _, r := range cfg.Bonds {
		runOne(fmt.Sprintf("peps r=%d", r), r)
	}
	t.Print(w)
	fmt.Fprintln(w)
	final.Print(w)
	fmt.Fprintln(w, "\nreading the final table: objective_per_site is the energy of the truncated")
	fmt.Fprintln(w, "PEPS simulation, the quantity the paper reports (r=1 saturates exactly at the")
	fmt.Fprintln(w, "product-state floor -3.5; r=2 is anomalous because the truncated objective")
	fmt.Fprintln(w, "misleads the optimizer, the effect behind the paper's -2.35 outlier at r=2).")
	fmt.Fprintln(w, "true_energy_per_site re-evaluates the same circuit parameters exactly: a")
	fmt.Fprintln(w, "truncated simulation optimizes its own truncated state, not the circuit, so")
	fmt.Fprintln(w, "low-rank objectives do not transfer; only the true energies are variational")
	fmt.Fprintln(w, "(they stay above the exact ground state).")
}
