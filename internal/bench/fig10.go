package bench

import (
	"fmt"
	"io"
	"math/rand"

	"gokoala/internal/peps"
	"gokoala/internal/rqc"
)

// Fig10Config controls the RQC contraction-accuracy study.
type Fig10Config struct {
	Sides  []int // lattice side lengths n
	Layers int   // RQC depth (4 layers -> bond 4, 8 layers -> bond 16)
	Ms     []int // contraction bond dimensions
	Seed   int64
}

// DefaultFig10Config mirrors paper Figure 10 at reduced scale: the paper
// contracts 8-layer (bond 16) circuits on 4x4..7x7 lattices with m up to
// 256; here 4-layer (bond 4) circuits on 4x4 and 5x5 with m up to 32 show
// the same threshold behaviour within single-core budgets.
func DefaultFig10Config() Fig10Config {
	return Fig10Config{Sides: []int{4, 5}, Layers: 4, Ms: []int{1, 2, 4, 8, 16, 32}, Seed: 6}
}

// ExperimentFig10 evolves a random quantum circuit exactly on an n-by-n
// PEPS, computes one output amplitude with BMPS and IBMPS at varying
// contraction bond dimension m, and reports the relative error against
// exact contraction (paper Figure 10). The reproduction targets: error
// drops to near machine epsilon above an n-dependent threshold, the
// threshold grows with lattice size, and IBMPS tracks BMPS (implicit
// randomized SVD adds no error).
func ExperimentFig10(w io.Writer, cfg Fig10Config) {
	fmt.Fprintf(w, "Figure 10: RQC amplitude relative error, %d layers (initial bond %d)\n\n",
		cfg.Layers, initialBond(cfg.Layers))
	eng := denseEngine()
	t := NewTable("n", "m", "err_bmps", "err_ibmps")
	for _, n := range cfg.Sides {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(n)))
		circ := rqc.Generate(rng, n, n, cfg.Layers)
		state := peps.ComputationalZeros(eng, n, n)
		opts := peps.UpdateOptions{Rank: 0, Method: peps.UpdateQR}
		for _, g := range circ.Gates {
			state.ApplyGate(g, opts)
		}
		bits := rqc.RandomBits(rng, n*n)
		proj := state.Project(bits)
		exact := proj.ContractScalar(peps.Exact{})
		for _, m := range cfg.Ms {
			eb := peps.RelativeError(proj.ContractScalar(peps.BMPS{M: m, Strategy: explicitStrategy()}), exact)
			ib := peps.RelativeError(proj.ContractScalar(peps.BMPS{M: m, Strategy: implicitStrategy(cfg.Seed + int64(100*n+m))}), exact)
			t.Add(n, m, eb, ib)
		}
	}
	t.Print(w)
	fmt.Fprintln(w, "\npaper shape: error collapses to ~machine epsilon above an n-dependent m")
	fmt.Fprintln(w, "threshold; IBMPS overlaps BMPS (randomized SVD adds no error).")
}

// initialBond returns the maximum bond dimension after `layers` RQC
// layers: iSWAP has operator Schmidt rank 4 and each bond pattern fires
// every 4 layers, so bonds reach 4^ceil(layers/4).
func initialBond(layers int) int {
	b := 1
	for i := 0; i < (layers+3)/4; i++ {
		b *= 4
	}
	return b
}
