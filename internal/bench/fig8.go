package bench

import (
	"fmt"
	"io"
	"math/rand"

	"gokoala/internal/backend"
	"gokoala/internal/dist"
	"gokoala/internal/peps"
)

// Fig8Config controls the contraction benchmarks.
type Fig8Config struct {
	N        int
	Bonds    []int // one-layer contraction bond dimensions r (and m = r)
	ExactMax int   // largest bond the exact algorithm attempts
	Ranks    int
	Seed     int64
}

// DefaultFig8aConfig mirrors paper Figure 8a (8x8, one node) at reduced
// scale.
func DefaultFig8aConfig() Fig8Config {
	return Fig8Config{N: 6, Bonds: []int{2, 4, 8, 12}, ExactMax: 4, Ranks: 64, Seed: 3}
}

// DefaultFig8bConfig mirrors paper Figure 8b (15x15, 16 nodes). Bond 9 is
// included as a perfect square so the two-layer series gets a data point
// (state bond 3).
func DefaultFig8bConfig() Fig8Config {
	return Fig8Config{N: 8, Bonds: []int{2, 4, 9, 12}, ExactMax: 0, Ranks: 1024, Seed: 4}
}

// ExperimentFig8 benchmarks full contraction of a PEPS without physical
// indices as the bond dimension grows (paper Figure 8): the exact
// algorithm, BMPS, and IBMPS contract a directly generated one-layer
// network with contraction bond m equal to the initial bond r; two-layer
// IBMPS contracts the inner product of a state PEPS with bond sqrt(r)
// (hence the fewer data points, as in the paper). With dense=true the
// dense engine runs too (Figure 8a); otherwise only the distributed
// engine (Figure 8b).
func ExperimentFig8(w io.Writer, cfg Fig8Config, dense bool) {
	fmt.Fprintf(w, "Figure 8: contracting a %dx%d PEPS (no physical indices), m = r, %d ranks\n\n", cfg.N, cfg.N, cfg.Ranks)
	t := NewTable("r", "algorithm", "engine", "wall_s", "modeled_s")

	type engineRow struct {
		name string
		eng  backend.Engine
		grid *dist.Grid
	}
	mkEngines := func() []engineRow {
		grid := attachTransport(dist.NewGrid(dist.Stampede2(cfg.Ranks)).SetLabel("dist-gram"), cfg.Ranks)
		rows := []engineRow{}
		if dense {
			rows = append(rows, engineRow{"dense", denseEngine(), nil})
		}
		rows = append(rows, engineRow{"dist-gram", backend.Instrument(backend.NewDist(grid, true)), grid})
		return rows
	}

	for _, r := range cfg.Bonds {
		for _, er := range mkEngines() {
			rng := rand.New(rand.NewSource(cfg.Seed))
			net := peps.RandomNoPhys(er.eng, rng, cfg.N, cfg.N, r)
			algos := []struct {
				name string
				opt  peps.ContractOption
				skip bool
			}{
				{"exact", peps.Exact{}, r > cfg.ExactMax},
				{"bmps", peps.BMPS{M: r, Strategy: explicitStrategy()}, false},
				{"ibmps", peps.BMPS{M: r, Strategy: implicitStrategy(cfg.Seed + int64(r))}, false},
			}
			for _, a := range algos {
				if a.skip {
					continue
				}
				if er.grid != nil {
					er.grid.Reset()
				}
				wall := timeIt(func() { net.ContractScalar(a.opt) })
				modeled := wall
				if er.grid != nil {
					modeled = er.grid.Snapshot().ModeledSeconds()
				}
				t.Add(r, a.name, er.eng.Name(), wall, modeled)
			}
			// Two-layer IBMPS: only when r is a perfect square, contracting
			// the inner product of a state with bond sqrt(r).
			b := isqrt(r)
			if b*b == r && b >= 2 {
				rng2 := rand.New(rand.NewSource(cfg.Seed + 100))
				state := peps.Random(er.eng, rng2, cfg.N, cfg.N, 2, b)
				if er.grid != nil {
					er.grid.Reset()
				}
				wall := timeIt(func() {
					state.Inner(state, peps.TwoLayerBMPS{M: r, Strategy: implicitStrategy(cfg.Seed + int64(r) + 7)})
				})
				modeled := wall
				if er.grid != nil {
					modeled = er.grid.Snapshot().ModeledSeconds()
				}
				t.Add(r, "2layer-ibmps", er.eng.Name(), wall, modeled)
			}
		}
	}
	t.Print(w)
	fmt.Fprintln(w, "\npaper shape: exact blows up fastest and stops early; IBMPS beats BMPS with a")
	fmt.Fprintln(w, "factor growing in r; two-layer IBMPS is cheapest where applicable.")
}

func isqrt(x int) int {
	for i := 0; i*i <= x; i++ {
		if i*i == x {
			return i
		}
	}
	// floor sqrt
	i := 0
	for (i+1)*(i+1) <= x {
		i++
	}
	return i
}
