package bench

import (
	"fmt"
	"io"
	"sort"

	"gokoala/internal/peps"
)

// Fig7Config controls the PEPS evolution benchmarks.
type Fig7Config struct {
	N     int   // lattice side
	Bonds []int // evolution bond dimensions r
	Ranks int   // simulated rank count for the dist engines
	Seed  int64
}

// DefaultFig7aConfig mirrors paper Figure 7a (8x8, 1 node) at reduced
// scale: a 6x6 lattice on a 64-rank (one-node) grid.
func DefaultFig7aConfig() Fig7Config {
	return Fig7Config{N: 6, Bonds: []int{2, 4, 6, 8}, Ranks: 64, Seed: 1}
}

// DefaultFig7bConfig mirrors paper Figure 7b (15x15, 16 nodes): an 8x8
// lattice on a 1024-rank grid, dist variants only.
func DefaultFig7bConfig() Fig7Config {
	return Fig7Config{N: 8, Bonds: []int{2, 4, 6}, Ranks: 1024, Seed: 2}
}

// ExperimentFig7 benchmarks one layer of TEBD operators (every adjacent
// pair updated once with QR-SVD, paper Algorithm 1) across the engine
// variants of paper Figure 7: the dense engine and the three distributed
// variants (qr-svd, local-gram-qr, local-gram-qr-svd). Wall-clock seconds
// are the single-core execution time; modeled seconds are the alpha-beta-
// gamma machine-model time of the metered SPMD execution (dist engines
// only). denseToo selects whether the dense engine participates (it does
// in Figure 7a, not in 7b).
func ExperimentFig7(w io.Writer, cfg Fig7Config, denseToo bool) {
	fmt.Fprintf(w, "Figure 7: one TEBD layer on a %dx%d PEPS, %d simulated ranks (%d nodes)\n\n",
		cfg.N, cfg.N, cfg.Ranks, (cfg.Ranks+63)/64)
	t := NewTable("r", "engine", "wall_s", "modeled_s", "comm_bytes", "redists")
	for _, r := range cfg.Bonds {
		engines, grids := engineSet(cfg.Ranks)
		names := make([]string, 0, len(engines))
		for name := range engines {
			if !denseToo && name == "dense-qr-svd" {
				continue
			}
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			eng := engines[name]
			opts := peps.UpdateOptions{Rank: r, Method: peps.UpdateQR}
			work := evolutionWorkload(eng, cfg.Seed, cfg.N, r, opts)
			grid := grids[name]
			if grid != nil {
				grid.Reset()
			}
			wall := timeIt(work)
			if grid != nil {
				s := grid.Snapshot()
				t.Add(r, name, wall, s.ModeledSeconds(), fmt.Sprintf("%d", s.Bytes), fmt.Sprintf("%d", s.Redistributions))
			} else {
				t.Add(r, name, wall, wall, "0", "0")
			}
		}
	}
	t.Print(w)
	fmt.Fprintln(w, "\npaper shape: local-gram variants beat qr-svd by growing factors (up to 3.7x);")
	fmt.Fprintln(w, "dense wins at small r, distributed engines amortize overhead as r grows.")
}
