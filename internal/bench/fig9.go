package bench

import (
	"fmt"
	"io"
	"math/rand"

	"gokoala/internal/peps"
	"gokoala/internal/quantum"
	"gokoala/internal/tensor"
)

// Fig9Config controls the expectation-value caching benchmark.
type Fig9Config struct {
	Sides []int // square lattice side lengths
	Bond  int   // PEPS bond dimension (paper uses 4)
	M     int   // contraction bond dimension
	Seed  int64
}

// DefaultFig9Config reproduces paper Figure 9 at reduced scale: side
// lengths 2..6 with bond dimension 2 (the paper's 2..12 at bond 4 follows
// the same curve, just bigger).
func DefaultFig9Config() Fig9Config {
	return Fig9Config{Sides: []int{2, 3, 4, 5, 6}, Bond: 2, M: 4, Seed: 5}
}

// fullNeighborObservable builds the Figure 9 expectation operator: a
// one-site operator on every site and a two-site operator on every pair
// of adjacent sites.
func fullNeighborObservable(n int) *quantum.Observable {
	o := quantum.NewObservable()
	zz := tensor.Kron(quantum.Z(), quantum.Z())
	site := func(r, c int) int { return r*n + c }
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			o.AddTerm(1, quantum.X(), site(r, c))
			if c+1 < n {
				o.AddTerm(1, zz, site(r, c), site(r, c+1))
			}
			if r+1 < n {
				o.AddTerm(1, zz, site(r, c), site(r+1, c))
			}
		}
	}
	return o
}

// ExperimentFig9 measures the expectation-value evaluation time with and
// without the intermediate caching of paper section IV-B, as the lattice
// side grows (paper Figure 9). The speedup grows with the side length
// because caching replaces one full two-layer contraction per term with a
// strip contraction.
func ExperimentFig9(w io.Writer, cfg Fig9Config) {
	fmt.Fprintf(w, "Figure 9: expectation value with/without caching, bond %d, m=%d\n\n", cfg.Bond, cfg.M)
	eng := denseEngine()
	t := NewTable("side", "terms", "cached_s", "uncached_s", "speedup")
	for _, n := range cfg.Sides {
		rng := rand.New(rand.NewSource(cfg.Seed))
		state := peps.Random(eng, rng, n, n, 2, cfg.Bond)
		obs := fullNeighborObservable(n)
		var vc, vd complex128
		cached := timeIt(func() {
			vc = state.Expectation(obs, peps.ExpectationOptions{M: cfg.M, Strategy: implicitStrategy(cfg.Seed + int64(n)), UseCache: true})
		})
		uncached := timeIt(func() {
			vd = state.Expectation(obs, peps.ExpectationOptions{M: cfg.M, Strategy: implicitStrategy(cfg.Seed + int64(n)), UseCache: false})
		})
		_ = vc
		_ = vd
		t.Add(n, len(obs.Terms), cached, uncached, uncached/cached)
	}
	t.Print(w)
	fmt.Fprintln(w, "\npaper shape: the caching speedup grows with the number of PEPS sites")
	fmt.Fprintln(w, "(the paper reaches 4.5x at side 12 with bond 4).")
}
