// Package quantum provides quantum gates, local observables, and lattice
// Hamiltonians shared by the PEPS and state-vector simulators. Gate
// conventions follow the paper: a one-qubit gate is a 2x2 matrix g_{ij}
// (out, in) and a two-qubit gate is a rank-4 tensor g_{i1 i2 j1 j2} with
// the two output indices first (paper equation 2).
package quantum

import (
	"math"
	"math/cmplx"
	"math/rand"

	"gokoala/internal/linalg"
	"gokoala/internal/tensor"
)

// I returns the single-qubit identity gate.
func I() *tensor.Dense { return tensor.Eye(2) }

// X returns the Pauli-X gate.
func X() *tensor.Dense { return tensor.FromData([]complex128{0, 1, 1, 0}, 2, 2) }

// Y returns the Pauli-Y gate.
func Y() *tensor.Dense { return tensor.FromData([]complex128{0, -1i, 1i, 0}, 2, 2) }

// Z returns the Pauli-Z gate.
func Z() *tensor.Dense { return tensor.FromData([]complex128{1, 0, 0, -1}, 2, 2) }

// H returns the Hadamard gate.
func H() *tensor.Dense {
	s := complex(1/math.Sqrt2, 0)
	return tensor.FromData([]complex128{s, s, s, -s}, 2, 2)
}

// S returns the phase gate diag(1, i).
func S() *tensor.Dense { return tensor.FromData([]complex128{1, 0, 0, 1i}, 2, 2) }

// T returns the pi/8 gate diag(1, e^{i pi/4}).
func T() *tensor.Dense {
	return tensor.FromData([]complex128{1, 0, 0, cmplx.Exp(1i * math.Pi / 4)}, 2, 2)
}

// SqrtX is sqrt(X), one of the single-qubit gates used by Google-style
// random quantum circuits (paper Figure 10 workload).
func SqrtX() *tensor.Dense {
	return tensor.FromData([]complex128{0.5 + 0.5i, 0.5 - 0.5i, 0.5 - 0.5i, 0.5 + 0.5i}, 2, 2)
}

// SqrtY is sqrt(Y), a second RQC single-qubit gate.
func SqrtY() *tensor.Dense {
	return tensor.FromData([]complex128{0.5 + 0.5i, -0.5 - 0.5i, 0.5 + 0.5i, 0.5 + 0.5i}, 2, 2)
}

// SqrtW is sqrt(W) with W = (X+Y)/sqrt(2), computed as V sqrt(D) V* from
// the eigendecomposition of the Hermitian unitary W (principal branch).
func SqrtW() *tensor.Dense {
	w := X().Add(Y()).Scale(complex(1/math.Sqrt2, 0))
	vals, vecs := linalg.EigH(w)
	d := tensor.New(2, 2)
	for i := 0; i < 2; i++ {
		d.Set(cmplx.Sqrt(complex(vals[i], 0)), i, i)
	}
	return tensor.MatMul(tensor.MatMul(vecs, d), vecs.Conj().Transpose(1, 0))
}

// Rx returns exp(-i theta X / 2).
func Rx(theta float64) *tensor.Dense {
	c, s := complex(math.Cos(theta/2), 0), complex(0, -math.Sin(theta/2))
	return tensor.FromData([]complex128{c, s, s, c}, 2, 2)
}

// Ry returns exp(-i theta Y / 2), the rotation used by the paper's VQE
// ansatz layers.
func Ry(theta float64) *tensor.Dense {
	c, s := complex(math.Cos(theta/2), 0), complex(math.Sin(theta/2), 0)
	return tensor.FromData([]complex128{c, -s, s, c}, 2, 2)
}

// Rz returns exp(-i theta Z / 2).
func Rz(theta float64) *tensor.Dense {
	return tensor.FromData([]complex128{cmplx.Exp(complex(0, -theta/2)), 0, 0, cmplx.Exp(complex(0, theta/2))}, 2, 2)
}

// Two-qubit gates are returned as 4x4 matrices in the basis
// |00>, |01>, |10>, |11> (first qubit is the more significant index).
// Use Gate4 to view them as rank-4 tensors.

// CX returns the controlled-NOT gate (control on the first qubit).
func CX() *tensor.Dense {
	return tensor.FromData([]complex128{
		1, 0, 0, 0,
		0, 1, 0, 0,
		0, 0, 0, 1,
		0, 0, 1, 0,
	}, 4, 4)
}

// CZ returns the controlled-Z gate.
func CZ() *tensor.Dense {
	return tensor.FromData([]complex128{
		1, 0, 0, 0,
		0, 1, 0, 0,
		0, 0, 1, 0,
		0, 0, 0, -1,
	}, 4, 4)
}

// SWAP returns the two-qubit swap gate.
func SWAP() *tensor.Dense {
	return tensor.FromData([]complex128{
		1, 0, 0, 0,
		0, 0, 1, 0,
		0, 1, 0, 0,
		0, 0, 0, 1,
	}, 4, 4)
}

// ISwap is the entangling gate used by the paper's RQC benchmark.
func ISwap() *tensor.Dense {
	return tensor.FromData([]complex128{
		1, 0, 0, 0,
		0, 0, 1i, 0,
		0, 1i, 0, 0,
		0, 0, 0, 1,
	}, 4, 4)
}

// Gate4 reshapes a 4x4 two-qubit gate matrix into the rank-4 tensor
// g[i1, i2, j1, j2] used by tensor-network contractions.
func Gate4(g *tensor.Dense) *tensor.Dense {
	if g.Rank() == 4 {
		return g
	}
	return g.Reshape(2, 2, 2, 2)
}

// RandomUnitary returns a Haar-ish random d-by-d unitary obtained by
// QR-orthogonalizing a random complex matrix.
func RandomUnitary(rng *rand.Rand, d int) *tensor.Dense {
	q, r := linalg.QR(tensor.Rand(rng, d, d))
	// Fix the phase ambiguity so the distribution is closer to Haar.
	for j := 0; j < d; j++ {
		rj := r.At(j, j)
		if rj == 0 {
			continue
		}
		ph := rj / complex(cmplx.Abs(rj), 0)
		for i := 0; i < d; i++ {
			q.Set(q.At(i, j)*ph, i, j)
		}
	}
	return q
}

// Dagger returns the conjugate transpose of a gate matrix.
func Dagger(g *tensor.Dense) *tensor.Dense { return g.Conj().Transpose(1, 0) }
