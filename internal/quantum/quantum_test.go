package quantum

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"gokoala/internal/linalg"
	"gokoala/internal/tensor"
)

func isUnitary(g *tensor.Dense, tol float64) bool {
	n := g.Dim(0)
	p := tensor.MatMul(g.Conj().Transpose(1, 0), g)
	return tensor.AllClose(p, tensor.Eye(n), 0, tol)
}

func TestStandardGatesUnitary(t *testing.T) {
	gates := map[string]*tensor.Dense{
		"I": I(), "X": X(), "Y": Y(), "Z": Z(), "H": H(), "S": S(), "T": T(),
		"SqrtX": SqrtX(), "SqrtY": SqrtY(), "SqrtW": SqrtW(),
		"Rx": Rx(0.3), "Ry": Ry(1.1), "Rz": Rz(-0.7),
		"CX": CX(), "CZ": CZ(), "SWAP": SWAP(), "ISwap": ISwap(),
	}
	for name, g := range gates {
		if !isUnitary(g, 1e-12) {
			t.Errorf("%s is not unitary", name)
		}
	}
}

func TestPauliAlgebra(t *testing.T) {
	// X^2 = Y^2 = Z^2 = I, XY = iZ
	for _, g := range []*tensor.Dense{X(), Y(), Z()} {
		if !tensor.AllClose(tensor.MatMul(g, g), tensor.Eye(2), 0, 1e-14) {
			t.Fatal("Pauli square is not identity")
		}
	}
	xy := tensor.MatMul(X(), Y())
	if !tensor.AllClose(xy, Z().Scale(1i), 0, 1e-14) {
		t.Fatal("XY != iZ")
	}
}

func TestSqrtGatesSquareToTarget(t *testing.T) {
	if !tensor.AllClose(tensor.MatMul(SqrtX(), SqrtX()), X(), 0, 1e-12) {
		t.Fatal("SqrtX^2 != X")
	}
	if !tensor.AllClose(tensor.MatMul(SqrtY(), SqrtY()), Y(), 0, 1e-12) {
		t.Fatal("SqrtY^2 != Y")
	}
	w := X().Add(Y()).Scale(complex(1/math.Sqrt2, 0))
	if !tensor.AllClose(tensor.MatMul(SqrtW(), SqrtW()), w, 0, 1e-12) {
		t.Fatal("SqrtW^2 != W")
	}
}

func TestRotationComposition(t *testing.T) {
	lhs := tensor.MatMul(Ry(0.4), Ry(0.6))
	rhs := Ry(1.0)
	if !tensor.AllClose(lhs, rhs, 0, 1e-13) {
		t.Fatal("Ry(a)Ry(b) != Ry(a+b)")
	}
	if !tensor.AllClose(Ry(0), tensor.Eye(2), 0, 1e-14) {
		t.Fatal("Ry(0) != I")
	}
}

func TestCXTruthTable(t *testing.T) {
	cx := CX()
	// |10> -> |11>, |11> -> |10>, |00>,|01> fixed.
	wantCols := [][]int{{0}, {1}, {3}, {2}}
	for in, outs := range wantCols {
		for out := 0; out < 4; out++ {
			want := complex128(0)
			if out == outs[0] {
				want = 1
			}
			if cx.At(out, in) != want {
				t.Fatalf("CX[%d,%d] = %v, want %v", out, in, cx.At(out, in), want)
			}
		}
	}
}

func TestISwapAction(t *testing.T) {
	g := ISwap()
	if g.At(1, 2) != 1i || g.At(2, 1) != 1i {
		t.Fatal("ISwap should map |01>,|10> with factor i")
	}
	if g.At(0, 0) != 1 || g.At(3, 3) != 1 {
		t.Fatal("ISwap should fix |00>, |11>")
	}
}

func TestRandomUnitaryIsUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range []int{2, 4, 7} {
		u := RandomUnitary(rng, d)
		if !isUnitary(u, 1e-11) {
			t.Fatalf("RandomUnitary(%d) not unitary", d)
		}
	}
}

func TestGate4RoundTrip(t *testing.T) {
	g := Gate4(CX())
	if !tensor.SameShape(g.Shape(), []int{2, 2, 2, 2}) {
		t.Fatalf("Gate4 shape %v", g.Shape())
	}
	// g[i1,i2,j1,j2] = CX[(i1 i2),(j1 j2)]
	if g.At(1, 1, 1, 0) != 1 {
		t.Fatal("Gate4 index convention broken")
	}
	if !tensor.SameShape(Gate4(g).Shape(), []int{2, 2, 2, 2}) {
		t.Fatal("Gate4 should pass rank-4 through")
	}
}

func TestObservableArithmetic(t *testing.T) {
	o := ObservableZZ(3, 4).Add(ObservableX(1).Scale(0.2))
	if len(o.Terms) != 2 {
		t.Fatalf("terms = %d", len(o.Terms))
	}
	if o.Terms[1].Coef != 0.2 {
		t.Fatalf("scaled coef = %v", o.Terms[1].Coef)
	}
	if o.MaxSite() != 4 {
		t.Fatalf("MaxSite = %d", o.MaxSite())
	}
	if NewObservable().MaxSite() != -1 {
		t.Fatal("empty MaxSite should be -1")
	}
}

func TestObservableAddDoesNotMutate(t *testing.T) {
	a := ObservableX(0)
	b := ObservableZ(1)
	c := a.Add(b)
	c.AddTerm(1, Y(), 2)
	if len(a.Terms) != 1 || len(b.Terms) != 1 {
		t.Fatal("Add mutated an input observable")
	}
}

func TestAddTermValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewObservable().AddTerm(1, tensor.Eye(4), 0) },       // wrong one-site shape
		func() { NewObservable().AddTerm(1, tensor.Eye(2), 0, 1) },    // wrong two-site shape
		func() { NewObservable().AddTerm(1, tensor.Eye(4), 2, 2) },    // identical sites
		func() { NewObservable().AddTerm(1, tensor.Eye(8), 0, 1, 2) }, // 3 sites
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestTrotterGatesUnitaryForRealTime(t *testing.T) {
	o := TransverseFieldIsing(2, 2, -1, -3.5)
	gates := o.TrotterGates(complex(0, -0.1))
	if len(gates) != 4+4 {
		t.Fatalf("gate count = %d, want 8", len(gates))
	}
	for _, g := range gates {
		if !isUnitary(g.Gate, 1e-11) {
			t.Fatal("real-time Trotter gate not unitary")
		}
	}
	// Two-site gates come before one-site gates.
	if len(gates[0].Sites) != 2 || len(gates[len(gates)-1].Sites) != 1 {
		t.Fatal("Trotter gate ordering wrong")
	}
}

func TestTrotterGateMatchesScalarExp(t *testing.T) {
	o := NewObservable().AddTerm(0.7, Z(), 0)
	g := o.TrotterGates(-0.5)[0].Gate
	want := cmplx.Exp(complex(-0.5*0.7, 0))
	if cmplx.Abs(g.At(0, 0)-want) > 1e-13 {
		t.Fatalf("gate[0,0] = %v, want %v", g.At(0, 0), want)
	}
}

func TestTFITermCount(t *testing.T) {
	o := TransverseFieldIsing(3, 3, -1, -3.5)
	// 12 bonds + 9 fields
	if len(o.Terms) != 21 {
		t.Fatalf("TFI 3x3 terms = %d, want 21", len(o.Terms))
	}
}

func TestJ1J2TermCount(t *testing.T) {
	o := J1J2Heisenberg(4, 4, PaperJ1J2Params())
	// J1 bonds: 2*4*3 = 24, each contributing XX,YY,ZZ -> 72
	// J2 bonds: 2*3*3 = 18 -> 54
	// fields: 16 sites * 3 axes = 48
	if len(o.Terms) != 72+54+48 {
		t.Fatalf("J1J2 4x4 terms = %d, want %d", len(o.Terms), 72+54+48)
	}
}

func TestJ1J2NoDiagonalWhenJ2Zero(t *testing.T) {
	p := PaperJ1J2Params()
	p.J2x, p.J2y, p.J2z = 0, 0, 0
	o := J1J2Heisenberg(3, 3, p)
	site := func(r, c int) int { return r*3 + c }
	for _, term := range o.Terms {
		if len(term.Sites) == 2 {
			s1, s2 := term.Sites[0], term.Sites[1]
			r1, c1 := s1/3, s1%3
			r2, c2 := s2/3, s2%3
			if abs(r1-r2)+abs(c1-c2) != 1 {
				t.Fatalf("non-adjacent term %d-%d with J2=0", s1, s2)
			}
		}
	}
	_ = site
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestSecondOrderTrotterGateCount(t *testing.T) {
	o := TransverseFieldIsing(2, 2, -1, -3.5)
	g1 := o.TrotterGates(-0.1)
	g2 := o.TrotterGatesSecondOrder(-0.1)
	if len(g2) != 2*len(g1) {
		t.Fatalf("second order gates = %d, want %d", len(g2), 2*len(g1))
	}
	// Palindromic structure.
	for i := range g2 {
		j := len(g2) - 1 - i
		if len(g2[i].Sites) != len(g2[j].Sites) {
			t.Fatal("second-order sequence is not symmetric")
		}
	}
}

func TestSecondOrderTrotterIsMoreAccurate(t *testing.T) {
	// Compare exp(-tau H) applied exactly (dense expm of the full 16x16
	// Hamiltonian on 2x2) against the two Trotterizations.
	o := TransverseFieldIsing(2, 2, -1, -3.5)
	n := 4
	dim := 1 << n
	// Build dense H.
	h := tensor.New(dim, dim)
	for col := 0; col < dim; col++ {
		x := make([]complex128, dim)
		x[col] = 1
		// apply each term via Kron-free brute force using TrotterGates at
		// scale 0 is useless; instead assemble from terms directly.
		for _, term := range o.Terms {
			y := applyTermDense(term, x, n)
			for rw := 0; rw < dim; rw++ {
				h.Set(h.At(rw, col)+y[rw], rw, col)
			}
		}
	}
	applySeq := func(gates []TrotterGate) *tensor.Dense {
		m := tensor.Eye(dim)
		for _, g := range gates {
			gd := gateDense(g, n)
			m = tensor.MatMul(gd, m)
		}
		return m
	}
	errAt := func(tau float64) (float64, float64) {
		exact := linalg.ExpmHermitian(h, complex(-tau, 0))
		e1 := applySeq(o.TrotterGates(complex(-tau, 0))).Sub(exact).Norm()
		e2 := applySeq(o.TrotterGatesSecondOrder(complex(-tau, 0))).Sub(exact).Norm()
		return e1, e2
	}
	e1, e2 := errAt(0.05)
	if e2 >= e1 {
		t.Fatalf("second order error %g should beat first order %g", e2, e1)
	}
	// Order check: halving tau reduces the per-sweep error by ~2^2 for
	// first order and ~2^3 for second order.
	h1, h2 := errAt(0.025)
	if r := e1 / h1; r < 2.5 || r > 6 {
		t.Fatalf("first-order tau-scaling ratio %g, want ~4", r)
	}
	if r := e2 / h2; r < 5 || r > 12 {
		t.Fatalf("second-order tau-scaling ratio %g, want ~8", r)
	}
}

// applyTermDense applies coef*op on the term's sites to a dense vector.
func applyTermDense(term Term, x []complex128, n int) []complex128 {
	dim := len(x)
	y := make([]complex128, dim)
	switch len(term.Sites) {
	case 1:
		q := term.Sites[0]
		stride := 1 << (n - 1 - q)
		op := term.Op
		for i := 0; i < dim; i++ {
			b := (i / stride) & 1
			for a := 0; a < 2; a++ {
				j := i&^(stride) | a*stride
				y[i] += term.Coef * op.At(b, a) * x[j]
			}
		}
	case 2:
		q1, q2 := term.Sites[0], term.Sites[1]
		s1, s2 := 1<<(n-1-q1), 1<<(n-1-q2)
		op := term.Op.Reshape(2, 2, 2, 2)
		for i := 0; i < dim; i++ {
			b1, b2 := (i/s1)&1, (i/s2)&1
			for a1 := 0; a1 < 2; a1++ {
				for a2 := 0; a2 < 2; a2++ {
					j := i&^s1&^s2 | a1*s1 | a2*s2
					y[i] += term.Coef * op.At(b1, b2, a1, a2) * x[j]
				}
			}
		}
	}
	return y
}

// gateDense expands a 1- or 2-site gate to the full 2^n matrix.
func gateDense(g TrotterGate, n int) *tensor.Dense {
	dim := 1 << n
	out := tensor.New(dim, dim)
	for col := 0; col < dim; col++ {
		x := make([]complex128, dim)
		x[col] = 1
		y := applyTermDense(Term{Coef: 1, Sites: g.Sites, Op: g.Gate}, x, n)
		for rw := 0; rw < dim; rw++ {
			out.Set(y[rw], rw, col)
		}
	}
	return out
}
