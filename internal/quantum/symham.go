package quantum

import (
	"fmt"

	"gokoala/internal/tensor"
)

// Charge-conserving Hamiltonian builders for the block-sparse backend.
// The existing builders stay the dense references; these variants express
// the same physics in a frame (or parameter regime) where every Trotter
// gate conserves a U(1) or Z2 charge, so the symmetric evolution never
// has to fall back to dense.

// TransverseFieldIsingDual builds the TFI Hamiltonian conjugated by a
// Hadamard on every site: H~ = sum_<ij> jz X_i X_j + sum_i hx Z_i. It
// is unitarily equivalent to TransverseFieldIsing (same spectrum), and
// evolving |0...0> under H~ is the Hadamard frame of evolving |+...+>
// under the original H. Every term conserves the Z2 bit parity — X X
// flips two bits, Z flips none — which the standard frame's X field
// does not, so this is the form the -sym z2 runs use.
func TransverseFieldIsingDual(nrows, ncols int, jz, hx float64) *Observable {
	o := NewObservable()
	xx := tensor.Kron(X(), X())
	site := func(r, c int) int { return r*ncols + c }
	for r := 0; r < nrows; r++ {
		for c := 0; c < ncols; c++ {
			if c+1 < ncols {
				o.AddTerm(complex(jz, 0), xx, site(r, c), site(r, c+1))
			}
			if r+1 < nrows {
				o.AddTerm(complex(jz, 0), xx, site(r, c), site(r+1, c))
			}
			o.AddTerm(complex(hx, 0), Z(), site(r, c))
		}
	}
	return o
}

// J1J2HeisenbergU1 builds the J1-J2 Heisenberg Hamiltonian in its
// U(1)-conserving regime: per-pair terms are emitted as single combined
// operators jx (XX + YY) + jz ZZ, and the field may only point along z.
// The combination matters for Trotterization: exp of XX alone has
// matrix elements between |00> and |11> (charge +-2), while the XX + YY
// combination keeps only the charge-conserving |01> <-> |10> flip-flop,
// so every Trotter gate of this observable conserves total S_z. It
// panics on parameters outside the conserving regime (jx != jy or a
// transverse field) rather than silently producing gates the symmetric
// evolution would reject.
func J1J2HeisenbergU1(nrows, ncols int, p J1J2Params) *Observable {
	if p.J1x != p.J1y || p.J2x != p.J2y {
		panic(fmt.Sprintf("quantum: U(1) J1-J2 needs jx == jy within each coupling, got J1 (%g,%g) J2 (%g,%g)",
			p.J1x, p.J1y, p.J2x, p.J2y))
	}
	if p.Hx != 0 || p.Hy != 0 {
		panic(fmt.Sprintf("quantum: U(1) J1-J2 allows only a z field, got h = (%g,%g,%g)", p.Hx, p.Hy, p.Hz))
	}
	o := NewObservable()
	xx := tensor.Kron(X(), X())
	yy := tensor.Kron(Y(), Y())
	zz := tensor.Kron(Z(), Z())
	pairOp := func(jxy, jz float64) *tensor.Dense {
		op := tensor.New(4, 4)
		d := op.Data()
		for i, v := range xx.Data() {
			d[i] += complex(jxy, 0) * v
		}
		for i, v := range yy.Data() {
			d[i] += complex(jxy, 0) * v
		}
		for i, v := range zz.Data() {
			d[i] += complex(jz, 0) * v
		}
		return op
	}
	site := func(r, c int) int { return r*ncols + c }
	addPair := func(s1, s2 int, jxy, jz float64) {
		if jxy == 0 && jz == 0 {
			return
		}
		o.AddTerm(1, pairOp(jxy, jz), s1, s2)
	}
	for r := 0; r < nrows; r++ {
		for c := 0; c < ncols; c++ {
			if c+1 < ncols {
				addPair(site(r, c), site(r, c+1), p.J1x, p.J1z)
			}
			if r+1 < nrows {
				addPair(site(r, c), site(r+1, c), p.J1x, p.J1z)
			}
			if r+1 < nrows && c+1 < ncols {
				addPair(site(r, c), site(r+1, c+1), p.J2x, p.J2z)
			}
			if r+1 < nrows && c-1 >= 0 {
				addPair(site(r, c), site(r+1, c-1), p.J2x, p.J2z)
			}
			if p.Hz != 0 {
				o.AddTerm(complex(p.Hz, 0), Z(), site(r, c))
			}
		}
	}
	return o
}

// PaperJ1J2ParamsU1 is the Figure 13 parameter set restricted to its
// U(1)-conserving form: the isotropic couplings are kept and the
// uniform field points along z only.
func PaperJ1J2ParamsU1() J1J2Params {
	p := PaperJ1J2Params()
	p.Hx, p.Hy = 0, 0
	return p
}

// NeelBits returns the row-major checkerboard bit pattern, the natural
// U(1) starting state for antiferromagnetic Heisenberg evolutions (its
// total charge sits in the S_z = 0 sector for even lattices).
func NeelBits(rows, cols int) []int {
	bits := make([]int, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			bits[r*cols+c] = (r + c) % 2
		}
	}
	return bits
}
