package quantum

import "gokoala/internal/tensor"

// J1J2Params are the couplings of the spin-1/2 J1-J2 Heisenberg model of
// paper equation (7): J1 couples nearest neighbors, J2 couples diagonal
// neighbors, and h is a uniform field.
type J1J2Params struct {
	J1x, J1y, J1z float64
	J2x, J2y, J2z float64
	Hx, Hy, Hz    float64
}

// PaperJ1J2Params returns the parameter set used in paper Figure 13:
// J1 = 1.0 isotropic, J2 = 0.5 isotropic, h = 0.2 along all axes.
func PaperJ1J2Params() J1J2Params {
	return J1J2Params{
		J1x: 1.0, J1y: 1.0, J1z: 1.0,
		J2x: 0.5, J2y: 0.5, J2z: 0.5,
		Hx: 0.2, Hy: 0.2, Hz: 0.2,
	}
}

// J1J2Heisenberg builds the J1-J2 Heisenberg Hamiltonian of paper
// equation (7) on an nrows-by-ncols square lattice. Pair sums run over
// horizontally/vertically adjacent sites (J1) and both diagonal
// directions (J2); site indices are row-major.
func J1J2Heisenberg(nrows, ncols int, p J1J2Params) *Observable {
	o := NewObservable()
	xx := tensor.Kron(X(), X())
	yy := tensor.Kron(Y(), Y())
	zz := tensor.Kron(Z(), Z())
	site := func(r, c int) int { return r*ncols + c }
	addPair := func(s1, s2 int, jx, jy, jz float64) {
		if jx != 0 {
			o.AddTerm(complex(jx, 0), xx, s1, s2)
		}
		if jy != 0 {
			o.AddTerm(complex(jy, 0), yy, s1, s2)
		}
		if jz != 0 {
			o.AddTerm(complex(jz, 0), zz, s1, s2)
		}
	}
	for r := 0; r < nrows; r++ {
		for c := 0; c < ncols; c++ {
			if c+1 < ncols {
				addPair(site(r, c), site(r, c+1), p.J1x, p.J1y, p.J1z)
			}
			if r+1 < nrows {
				addPair(site(r, c), site(r+1, c), p.J1x, p.J1y, p.J1z)
			}
			if r+1 < nrows && c+1 < ncols {
				addPair(site(r, c), site(r+1, c+1), p.J2x, p.J2y, p.J2z)
			}
			if r+1 < nrows && c-1 >= 0 {
				addPair(site(r, c), site(r+1, c-1), p.J2x, p.J2y, p.J2z)
			}
			if p.Hx != 0 {
				o.AddTerm(complex(p.Hx, 0), X(), site(r, c))
			}
			if p.Hy != 0 {
				o.AddTerm(complex(p.Hy, 0), Y(), site(r, c))
			}
			if p.Hz != 0 {
				o.AddTerm(complex(p.Hz, 0), Z(), site(r, c))
			}
		}
	}
	return o
}

// TransverseFieldIsing builds the TFI Hamiltonian of paper equation (8):
// H = sum_<ij> Jz Z_i Z_j + sum_i hx X_i on an nrows-by-ncols lattice.
// The paper's ferromagnetic VQE benchmark uses Jz = -1, hx = -3.5.
func TransverseFieldIsing(nrows, ncols int, jz, hx float64) *Observable {
	o := NewObservable()
	zz := tensor.Kron(Z(), Z())
	site := func(r, c int) int { return r*ncols + c }
	for r := 0; r < nrows; r++ {
		for c := 0; c < ncols; c++ {
			if c+1 < ncols {
				o.AddTerm(complex(jz, 0), zz, site(r, c), site(r, c+1))
			}
			if r+1 < nrows {
				o.AddTerm(complex(jz, 0), zz, site(r, c), site(r+1, c))
			}
			o.AddTerm(complex(hx, 0), X(), site(r, c))
		}
	}
	return o
}
