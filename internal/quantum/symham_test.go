package quantum_test

import (
	"math"
	"math/rand"
	"testing"

	"gokoala/internal/quantum"
	"gokoala/internal/statevector"
)

func TestTFIDualSameSpectrum(t *testing.T) {
	// The dual frame is a Hadamard conjugation: the ground energy is
	// unchanged.
	rng := rand.New(rand.NewSource(1))
	a := quantum.TransverseFieldIsing(2, 2, -1, -3.5)
	b := quantum.TransverseFieldIsingDual(2, 2, -1, -3.5)
	ea, _ := statevector.GroundState(a, 4, rng)
	eb, _ := statevector.GroundState(b, 4, rng)
	if math.Abs(ea-eb) > 1e-8 {
		t.Fatalf("dual frame shifted the ground energy: %.10f vs %.10f", ea, eb)
	}
}

func TestJ1J2U1SameSpectrumAsReference(t *testing.T) {
	// The combined-pair form is the same operator as the term-by-term
	// reference at U(1)-conserving parameters.
	rng := rand.New(rand.NewSource(2))
	p := quantum.PaperJ1J2ParamsU1()
	a := quantum.J1J2Heisenberg(2, 2, p)
	b := quantum.J1J2HeisenbergU1(2, 2, p)
	ea, _ := statevector.GroundState(a, 4, rng)
	eb, _ := statevector.GroundState(b, 4, rng)
	if math.Abs(ea-eb) > 1e-8 {
		t.Fatalf("U(1) form shifted the ground energy: %.10f vs %.10f", ea, eb)
	}
}

func TestJ1J2U1RejectsNonConservingParams(t *testing.T) {
	for name, p := range map[string]quantum.J1J2Params{
		"anisotropic": func() quantum.J1J2Params {
			p := quantum.PaperJ1J2ParamsU1()
			p.J1y = p.J1x + 0.1
			return p
		}(),
		"transverse field": func() quantum.J1J2Params {
			p := quantum.PaperJ1J2ParamsU1()
			p.Hx = 0.2
			return p
		}(),
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			quantum.J1J2HeisenbergU1(2, 2, p)
		}()
	}
}

func TestNeelBits(t *testing.T) {
	bits := quantum.NeelBits(2, 3)
	want := []int{0, 1, 0, 1, 0, 1}
	for i := range want {
		if bits[i] != want[i] {
			t.Fatalf("bits = %v, want %v", bits, want)
		}
	}
	// Even lattice: half the sites are up, pinning S_z = 0.
	sum := 0
	for _, b := range quantum.NeelBits(2, 2) {
		sum += b
	}
	if sum != 2 {
		t.Fatalf("2x2 Neel has %d up bits, want 2", sum)
	}
}
