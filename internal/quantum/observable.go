package quantum

import (
	"fmt"
	"sort"

	"gokoala/internal/linalg"
	"gokoala/internal/tensor"
)

// Term is one local term of an observable: a coefficient times an operator
// acting on one or two named sites. Sites are flattened lattice positions
// (row-major, site = row*ncols + col, matching the paper's i_{pn+q}).
// For two-site terms Op is a 4x4 matrix over (site1, site2) with site1 the
// more significant qubit.
type Term struct {
	Coef  complex128
	Sites []int
	Op    *tensor.Dense
}

// Observable is a Hermitian operator expressed as a sum of local terms,
// H = sum_i coef_i * op_i, the form assumed by both the expectation-value
// caching strategy (paper section IV-B) and Trotterized evolution.
type Observable struct {
	Terms []Term
}

// NewObservable returns an empty observable.
func NewObservable() *Observable { return &Observable{} }

// AddTerm appends coef * op acting on the given sites (one or two).
func (o *Observable) AddTerm(coef complex128, op *tensor.Dense, sites ...int) *Observable {
	switch len(sites) {
	case 1:
		if op.Rank() != 2 || op.Dim(0) != 2 || op.Dim(1) != 2 {
			panic(fmt.Sprintf("quantum: one-site term must be 2x2, got %v", op.Shape()))
		}
	case 2:
		if sites[0] == sites[1] {
			panic("quantum: two-site term on identical sites")
		}
		if op.Size() != 16 {
			panic(fmt.Sprintf("quantum: two-site term must be 4x4, got %v", op.Shape()))
		}
		op = op.Reshape(4, 4)
	default:
		panic(fmt.Sprintf("quantum: terms must act on 1 or 2 sites, got %d", len(sites)))
	}
	o.Terms = append(o.Terms, Term{Coef: coef, Sites: append([]int{}, sites...), Op: op})
	return o
}

// Add returns a new observable with the terms of both inputs.
func (o *Observable) Add(other *Observable) *Observable {
	out := &Observable{Terms: append(append([]Term{}, o.Terms...), other.Terms...)}
	return out
}

// Scale returns a new observable with every coefficient multiplied by c.
func (o *Observable) Scale(c complex128) *Observable {
	out := &Observable{Terms: append([]Term{}, o.Terms...)}
	for i := range out.Terms {
		out.Terms[i].Coef *= c
	}
	return out
}

// MaxSite returns the largest site index any term touches, or -1.
func (o *Observable) MaxSite() int {
	m := -1
	for _, t := range o.Terms {
		for _, s := range t.Sites {
			if s > m {
				m = s
			}
		}
	}
	return m
}

// Convenience constructors mirroring the paper's example code
// (Observable.ZZ(3,4) + 0.2 * Observable.X(1)).

// ObservableX returns X acting on one site.
func ObservableX(site int) *Observable { return NewObservable().AddTerm(1, X(), site) }

// ObservableY returns Y acting on one site.
func ObservableY(site int) *Observable { return NewObservable().AddTerm(1, Y(), site) }

// ObservableZ returns Z acting on one site.
func ObservableZ(site int) *Observable { return NewObservable().AddTerm(1, Z(), site) }

// ObservableZZ returns Z(x)Z acting on two sites.
func ObservableZZ(s1, s2 int) *Observable {
	return NewObservable().AddTerm(1, tensor.Kron(Z(), Z()), s1, s2)
}

// TrotterGate is one factor of the Trotter-Suzuki product
// prod_j exp(scale * coef_j * op_j).
type TrotterGate struct {
	Sites []int
	// Gate is 2x2 for one-site factors and 4x4 for two-site factors.
	Gate *tensor.Dense
}

// TrotterGates decomposes exp(scale * H) into local factors via the
// first-order Trotter-Suzuki splitting (paper section II-D1). With
// scale = -tau this yields one sweep of imaginary time evolution.
// Two-site terms are emitted before one-site terms, grouped so gates on
// disjoint sites appear consecutively (the application order of a
// first-order splitting affects only the O(tau^2) error).
func (o *Observable) TrotterGates(scale complex128) []TrotterGate {
	gates := make([]TrotterGate, 0, len(o.Terms))
	terms := append([]Term{}, o.Terms...)
	sort.SliceStable(terms, func(i, j int) bool { return len(terms[i].Sites) > len(terms[j].Sites) })
	for _, t := range terms {
		// exp(scale * coef * op) with Hermitian op: fold coef into the
		// exponent scale so the eigendecomposition stays on the Hermitian
		// operator itself.
		gates = append(gates, TrotterGate{
			Sites: t.Sites,
			Gate:  linalg.ExpmHermitian(t.Op, scale*t.Coef),
		})
	}
	return gates
}

// TrotterGatesSecondOrder decomposes exp(scale * H) with the symmetric
// (Strang) splitting: half-steps of every factor in order, then the same
// half-steps in reverse. The per-sweep error is O(scale^3) instead of
// the first-order O(scale^2), at twice the gate count.
func (o *Observable) TrotterGatesSecondOrder(scale complex128) []TrotterGate {
	half := o.TrotterGates(scale / 2)
	out := make([]TrotterGate, 0, 2*len(half))
	out = append(out, half...)
	for i := len(half) - 1; i >= 0; i-- {
		out = append(out, half[i])
	}
	return out
}
