// Package rqc generates Google-style random quantum circuits on a square
// lattice (paper Figure 10 workload, following references [53], [54]):
// each layer applies a random single-qubit gate from {sqrtX, sqrtY,
// sqrtW} to every qubit, and entangling layers apply iSWAP to all pairs
// of one of the four neighbor patterns in rotation. Applying all four
// patterns multiplies the PEPS bond dimension by up to 4 (2 per
// direction), so 8 layers of this construction reach initial bond
// dimension 16 as in the paper's RQC benchmark.
package rqc

import (
	"math/rand"

	"gokoala/internal/peps"
	"gokoala/internal/quantum"
	"gokoala/internal/telemetry"
	"gokoala/internal/tensor"
)

// Pattern enumerates the four nearest-neighbor two-qubit gate layouts.
type Pattern int

const (
	// HorizontalEven couples (r, 2k)-(r, 2k+1).
	HorizontalEven Pattern = iota
	// HorizontalOdd couples (r, 2k+1)-(r, 2k+2).
	HorizontalOdd
	// VerticalEven couples (2k, c)-(2k+1, c).
	VerticalEven
	// VerticalOdd couples (2k+1, c)-(2k+2, c).
	VerticalOdd
)

// PatternPairs returns the site-index pairs of a pattern on a
// rows-by-cols lattice.
func PatternPairs(p Pattern, rows, cols int) [][2]int {
	site := func(r, c int) int { return r*cols + c }
	var out [][2]int
	switch p {
	case HorizontalEven, HorizontalOdd:
		start := 0
		if p == HorizontalOdd {
			start = 1
		}
		for r := 0; r < rows; r++ {
			for c := start; c+1 < cols; c += 2 {
				out = append(out, [2]int{site(r, c), site(r, c+1)})
			}
		}
	case VerticalEven, VerticalOdd:
		start := 0
		if p == VerticalOdd {
			start = 1
		}
		for r := start; r+1 < rows; r += 2 {
			for c := 0; c < cols; c++ {
				out = append(out, [2]int{site(r, c), site(r+1, c)})
			}
		}
	}
	return out
}

// Circuit is a generated random circuit.
type Circuit struct {
	Rows, Cols int
	Gates      []quantum.TrotterGate
	// Layers is the number of layers generated.
	Layers int
}

// Generate builds a `layers`-deep random circuit. Layer k applies random
// single-qubit gates to all sites followed by iSWAP on pattern k mod 4.
// The single-qubit gate on each site is drawn from {sqrtX, sqrtY, sqrtW}
// with the constraint that it differs from the gate the site received in
// the previous layer (the Google RQC rule).
func Generate(rng *rand.Rand, rows, cols, layers int) Circuit {
	n := rows * cols
	single := []*tensor.Dense{quantum.SqrtX(), quantum.SqrtY(), quantum.SqrtW()}
	prev := make([]int, n)
	for i := range prev {
		prev[i] = -1
	}
	var gates []quantum.TrotterGate
	for layer := 0; layer < layers; layer++ {
		for s := 0; s < n; s++ {
			choice := rng.Intn(len(single))
			for choice == prev[s] {
				choice = rng.Intn(len(single))
			}
			prev[s] = choice
			gates = append(gates, quantum.TrotterGate{Sites: []int{s}, Gate: single[choice]})
		}
		for _, pr := range PatternPairs(Pattern(layer%4), rows, cols) {
			gates = append(gates, quantum.TrotterGate{Sites: []int{pr[0], pr[1]}, Gate: quantum.ISwap()})
		}
	}
	return Circuit{Rows: rows, Cols: cols, Gates: gates, Layers: layers}
}

// RandomBits returns a random measurement bit string for amplitude
// queries.
func RandomBits(rng *rand.Rand, n int) []int {
	bits := make([]int, n)
	for i := range bits {
		bits[i] = rng.Intn(2)
	}
	return bits
}

// Apply evolves state through the circuit gate by gate, publishing
// per-gate progress telemetry (gate index, circuit size, current max
// bond dimension) so a live watcher can follow the bond-dimension
// growth of a deep circuit. stop, when non-nil, is polled between gates
// for graceful interruption; Apply returns how many gates were applied
// (len(c.Gates) on a full evolution).
func Apply(state *peps.PEPS, c Circuit, opts peps.UpdateOptions, stop func() bool) int {
	for i, g := range c.Gates {
		if stop != nil && stop() {
			telemetry.Publish("rqc.stop", i, nil)
			return i
		}
		state.ApplyGate(g, opts)
		if telemetry.Active() {
			fields := map[string]float64{
				"gate":        float64(i + 1),
				"gates_total": float64(len(c.Gates)),
				"max_bond":    float64(state.MaxBond()),
			}
			telemetry.Observe("rqc.gate", float64(i+1))
			telemetry.Observe("rqc.max_bond", fields["max_bond"])
			telemetry.Publish("rqc.gate", i+1, fields)
		}
	}
	return len(c.Gates)
}
