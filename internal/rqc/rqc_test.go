package rqc

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"gokoala/internal/backend"
	"gokoala/internal/einsumsvd"
	"gokoala/internal/peps"
	"gokoala/internal/statevector"
)

func TestPatternPairsCoverAllBondsOnce(t *testing.T) {
	rows, cols := 3, 4
	seen := map[[2]int]int{}
	for _, p := range []Pattern{HorizontalEven, HorizontalOdd, VerticalEven, VerticalOdd} {
		for _, pr := range PatternPairs(p, rows, cols) {
			seen[pr]++
		}
	}
	// Every lattice bond appears exactly once across the four patterns.
	wantBonds := rows*(cols-1) + (rows-1)*cols
	if len(seen) != wantBonds {
		t.Fatalf("covered %d bonds, want %d", len(seen), wantBonds)
	}
	for pr, n := range seen {
		if n != 1 {
			t.Fatalf("bond %v covered %d times", pr, n)
		}
	}
}

func TestPatternPairsDisjointWithinPattern(t *testing.T) {
	for _, p := range []Pattern{HorizontalEven, HorizontalOdd, VerticalEven, VerticalOdd} {
		used := map[int]bool{}
		for _, pr := range PatternPairs(p, 4, 4) {
			if used[pr[0]] || used[pr[1]] {
				t.Fatalf("pattern %d reuses a site", p)
			}
			used[pr[0]] = true
			used[pr[1]] = true
		}
	}
}

func TestGenerateGateStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := Generate(rng, 3, 3, 8)
	if c.Layers != 8 {
		t.Fatalf("layers = %d", c.Layers)
	}
	singles, doubles := 0, 0
	for _, g := range c.Gates {
		switch len(g.Sites) {
		case 1:
			singles++
		case 2:
			doubles++
		}
	}
	if singles != 8*9 {
		t.Fatalf("single-qubit gates = %d, want 72", singles)
	}
	// Two full pattern rotations: each covers all 12 bonds.
	if doubles != 2*12 {
		t.Fatalf("two-qubit gates = %d, want 24", doubles)
	}
}

func TestNoRepeatedSingleQubitGate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := Generate(rng, 2, 2, 12)
	last := map[int]*struct{ data []complex128 }{}
	for _, g := range c.Gates {
		if len(g.Sites) != 1 {
			continue
		}
		s := g.Sites[0]
		if prev, ok := last[s]; ok {
			same := true
			for i, v := range g.Gate.Data() {
				if v != prev.data[i] {
					same = false
					break
				}
			}
			if same {
				t.Fatalf("site %d received the same gate twice in a row", s)
			}
		}
		last[s] = &struct{ data []complex128 }{g.Gate.Data()}
	}
}

func TestExactRQCEvolutionMatchesStateVector(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows, cols := 2, 3
	c := Generate(rng, rows, cols, 6)
	eng := backend.NewDense()
	ps := peps.ComputationalZeros(eng, rows, cols)
	sv := statevector.Zeros(rows * cols)
	opts := peps.UpdateOptions{Rank: 0, Method: peps.UpdateQR}
	for _, g := range c.Gates {
		ps.ApplyGate(g, opts)
		sv.ApplyGate(g)
	}
	bits := RandomBits(rng, rows*cols)
	want := sv.Amplitude(bits)
	got := ps.Amplitude(bits, peps.BMPS{M: 1 << 16, Strategy: einsumsvd.Explicit{}})
	if cmplx.Abs(got-want) > 1e-9 {
		t.Fatalf("RQC amplitude %v, want %v", got, want)
	}
	if n := ps.Norm(peps.TwoLayerBMPS{M: 1 << 16, Strategy: einsumsvd.Explicit{}}); math.Abs(n-1) > 1e-9 {
		t.Fatalf("RQC state norm %g", n)
	}
}

func TestBondDimensionGrowth(t *testing.T) {
	// iSWAP has operator Schmidt rank 4, so each full pattern rotation
	// multiplies bond dimensions by up to 4; after 8 layers (two
	// rotations) bonds reach 16, matching the paper's "initial bond
	// dimension of 16" for its 8-layer RQC states.
	rng := rand.New(rand.NewSource(4))
	rows, cols := 3, 3
	eng := backend.NewDense()
	ps := peps.ComputationalZeros(eng, rows, cols)
	opts := peps.UpdateOptions{Rank: 0, Method: peps.UpdateQR}
	c := Generate(rng, rows, cols, 8)
	for _, g := range c.Gates {
		ps.ApplyGate(g, opts)
	}
	if ps.MaxBond() > 16 {
		t.Fatalf("bond grew beyond iSWAP bound: %d", ps.MaxBond())
	}
	if ps.MaxBond() < 8 {
		t.Fatalf("entangling layers did not grow bonds enough: %d", ps.MaxBond())
	}
}

func TestTruncatedContractionErrorDropsWithM(t *testing.T) {
	// Miniature of paper Figure 10: fix an RQC state, contract one
	// amplitude with increasing contraction bond dimension, and require
	// the relative error against exact contraction to fall below 1e-10
	// once m passes the state's own bond dimension, with BMPS and IBMPS
	// agreeing.
	rng := rand.New(rand.NewSource(5))
	rows, cols := 3, 3
	c := Generate(rng, rows, cols, 4) // one pattern rotation: bond <= 4
	eng := backend.NewDense()
	ps := peps.ComputationalZeros(eng, rows, cols)
	for _, g := range c.Gates {
		ps.ApplyGate(g, peps.UpdateOptions{Rank: 0, Method: peps.UpdateQR})
	}
	bits := RandomBits(rng, rows*cols)
	proj := ps.Project(bits)
	exact := proj.ContractScalar(peps.Exact{})
	errs := map[string][]float64{}
	for _, m := range []int{1, 4, 32} {
		eVal := peps.RelativeError(proj.ContractScalar(peps.BMPS{M: m, Strategy: einsumsvd.Explicit{}}), exact)
		iVal := peps.RelativeError(proj.ContractScalar(peps.BMPS{M: m, Strategy: einsumsvd.ImplicitRand{NIter: 2, Oversample: 4, Rng: rng}}), exact)
		errs["bmps"] = append(errs["bmps"], eVal)
		errs["ibmps"] = append(errs["ibmps"], iVal)
	}
	for name, es := range errs {
		last := es[len(es)-1]
		if last > 1e-8 {
			t.Fatalf("%s: error at m=32 should be near machine precision, got %g (all %v)", name, last, es)
		}
		if es[0] < last {
			t.Fatalf("%s: error should not grow with m: %v", name, es)
		}
	}
}
