package vqe

import (
	"path/filepath"
	"testing"

	"gokoala/internal/checkpoint"
	"gokoala/internal/quantum"
)

// TestVQEResumeBitIdentical: a run checkpointed after round 2 of 4 and
// resumed reproduces the uninterrupted run exactly. Each objective
// evaluation is a pure function of (Seed, theta) and Nelder-Mead is
// deterministic, so round-granularity resume loses nothing.
func TestVQEResumeBitIdentical(t *testing.T) {
	a := Ansatz{Rows: 2, Cols: 2, Layers: 1}
	obs := quantum.TransverseFieldIsing(2, 2, -1, -2.0)
	base := Options{
		Rank:     2,
		MaxIter:  25,
		Restarts: 4,
		Seed:     11,
	}
	full := Run(a, obs, base)

	path := filepath.Join(t.TempDir(), "vqe.ckpt")
	partial := base
	partial.Restarts = 2
	partial.CheckpointPath = path
	Run(a, obs, partial)

	cp, err := checkpoint.LoadVQE(path)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Round != 2 {
		t.Fatalf("checkpoint at round %d, want 2", cp.Round)
	}
	resumed := base
	resumed.From = cp
	resumed.Seed = 0 // must be irrelevant: the checkpoint's seed wins
	res := Run(a, obs, resumed)

	if res.EnergyPerSite != full.EnergyPerSite {
		t.Fatalf("energy differs: %.17g vs %.17g", res.EnergyPerSite, full.EnergyPerSite)
	}
	if res.Evals != full.Evals {
		t.Fatalf("eval counts differ: %d vs %d", res.Evals, full.Evals)
	}
	if len(res.Theta) != len(full.Theta) || len(res.History) != len(full.History) {
		t.Fatalf("result shapes differ")
	}
	for i := range full.Theta {
		if res.Theta[i] != full.Theta[i] {
			t.Fatalf("theta[%d] differs: %.17g vs %.17g", i, res.Theta[i], full.Theta[i])
		}
	}
	for i := range full.History {
		if res.History[i] != full.History[i] {
			t.Fatalf("history[%d] differs: %.17g vs %.17g", i, res.History[i], full.History[i])
		}
	}
}
