package vqe

import (
	"math"
	"math/rand"
	"testing"

	"gokoala/internal/quantum"
	"gokoala/internal/statevector"
)

func TestAnsatzGateCount(t *testing.T) {
	a := Ansatz{Rows: 3, Cols: 3, Layers: 2}
	if a.NumParams() != 18 {
		t.Fatalf("NumParams = %d", a.NumParams())
	}
	gates := a.Gates(make([]float64, 18))
	// per layer: 9 Ry + 12 CX
	if len(gates) != 2*(9+12) {
		t.Fatalf("gate count = %d", len(gates))
	}
}

func TestZeroParamsGiveProductState(t *testing.T) {
	// Ry(0) = I and CX|00> = |00>: energy equals the |0...0> energy.
	a := Ansatz{Rows: 2, Cols: 2, Layers: 1}
	obs := quantum.TransverseFieldIsing(2, 2, -1, -3.5)
	got := EnergyStateVector(a, obs, make([]float64, a.NumParams()))
	// <0000|H|0000>: 4 ZZ bonds at -1, X terms vanish -> -4/4 = -1.
	if math.Abs(got-(-1)) > 1e-12 {
		t.Fatalf("product-state energy per site %g, want -1", got)
	}
}

func TestPEPSObjectiveMatchesStateVectorAtFullRank(t *testing.T) {
	a := Ansatz{Rows: 2, Cols: 2, Layers: 1}
	obs := quantum.TransverseFieldIsing(2, 2, -1, -3.5)
	rng := rand.New(rand.NewSource(1))
	theta := make([]float64, a.NumParams())
	for i := range theta {
		theta[i] = rng.Float64()
	}
	want := EnergyStateVector(a, obs, theta)
	got := EnergyPEPS(a, obs, theta, Options{Rank: 4, ContractionRank: 16, Seed: 2})
	if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
		t.Fatalf("PEPS %g vs state vector %g", got, want)
	}
}

func TestVQEFindsIsingGroundStateSmall(t *testing.T) {
	// 1x2 ferromagnetic TFI: the 2-parameter single-layer ansatz can get
	// close to the true ground state.
	a := Ansatz{Rows: 1, Cols: 2, Layers: 2}
	obs := quantum.TransverseFieldIsing(1, 2, -1, -3.5)
	rng := rand.New(rand.NewSource(3))
	exactE, _ := statevector.GroundState(obs, 2, rng)
	exactPerSite := exactE / 2
	res := Run(a, obs, Options{Rank: 0, MaxIter: 300, Seed: 4})
	if res.EnergyPerSite > exactPerSite+0.05*math.Abs(exactPerSite) {
		t.Fatalf("VQE %g, exact %g", res.EnergyPerSite, exactPerSite)
	}
	if res.EnergyPerSite < exactPerSite-1e-9 {
		t.Fatalf("VQE went below the exact ground state: %g < %g", res.EnergyPerSite, exactPerSite)
	}
}

func TestVQEHistoryNonIncreasing(t *testing.T) {
	a := Ansatz{Rows: 2, Cols: 2, Layers: 1}
	obs := quantum.TransverseFieldIsing(2, 2, -1, -3.5)
	res := Run(a, obs, Options{Rank: 0, MaxIter: 20, Seed: 5})
	for i := 1; i < len(res.History); i++ {
		if res.History[i] > res.History[i-1]+1e-12 {
			t.Fatalf("history increased: %v", res.History)
		}
	}
	if res.Evals == 0 {
		t.Fatal("no evaluations recorded")
	}
}

func TestRank1PEPSIsProductStateBound(t *testing.T) {
	// Paper Figure 14: with bond dimension 1 the PEPS cannot represent
	// entanglement, so its energy landscape is that of product states.
	// For the ferromagnetic TFI model the optimal product state reaches
	// about -3.5 per site (the field term), clearly above the exact
	// ground energy.
	a := Ansatz{Rows: 2, Cols: 2, Layers: 1}
	obs := quantum.TransverseFieldIsing(2, 2, -1, -3.5)
	res := Run(a, obs, Options{Rank: 1, ContractionRank: 4, MaxIter: 60, Seed: 6})
	rng := rand.New(rand.NewSource(7))
	exactE, _ := statevector.GroundState(obs, 4, rng)
	exactPerSite := exactE / 4
	if res.EnergyPerSite < exactPerSite-1e-6 {
		t.Fatalf("rank-1 energy %g below exact %g", res.EnergyPerSite, exactPerSite)
	}
}
