// Package vqe implements the variational quantum eigensolver simulation
// of paper section II-D2 and the Figure 14 accuracy study. The ansatz is
// the paper's layered circuit: a parameterized Ry rotation on every qubit
// followed by CNOTs on every nearest-neighbor pair, repeated per layer.
// The classical optimizer is derivative-free Nelder-Mead (documented
// SLSQP substitution, DESIGN.md section 3).
package vqe

import (
	"math/rand"

	"gokoala/internal/backend"
	"gokoala/internal/checkpoint"
	"gokoala/internal/einsumsvd"
	"gokoala/internal/health"
	"gokoala/internal/optimize"
	"gokoala/internal/peps"
	"gokoala/internal/quantum"
	"gokoala/internal/statevector"
	"gokoala/internal/telemetry"
)

// Ansatz describes the parameterized circuit.
type Ansatz struct {
	Rows, Cols int
	Layers     int
}

// NumParams returns the parameter count: one Ry angle per qubit per layer.
func (a Ansatz) NumParams() int { return a.Rows * a.Cols * a.Layers }

// Gates expands the ansatz at the given parameters into a gate list:
// for each layer, Ry(theta_i) on every site, then CNOTs on every
// horizontally and vertically adjacent pair.
func (a Ansatz) Gates(theta []float64) []quantum.TrotterGate {
	if len(theta) != a.NumParams() {
		panic("vqe: wrong parameter count")
	}
	var gates []quantum.TrotterGate
	site := func(r, c int) int { return r*a.Cols + c }
	k := 0
	for layer := 0; layer < a.Layers; layer++ {
		for s := 0; s < a.Rows*a.Cols; s++ {
			gates = append(gates, quantum.TrotterGate{Sites: []int{s}, Gate: quantum.Ry(theta[k])})
			k++
		}
		for r := 0; r < a.Rows; r++ {
			for c := 0; c+1 < a.Cols; c++ {
				gates = append(gates, quantum.TrotterGate{Sites: []int{site(r, c), site(r, c+1)}, Gate: quantum.CX()})
			}
		}
		for r := 0; r+1 < a.Rows; r++ {
			for c := 0; c < a.Cols; c++ {
				gates = append(gates, quantum.TrotterGate{Sites: []int{site(r, c), site(r+1, c)}, Gate: quantum.CX()})
			}
		}
	}
	return gates
}

// Options configures a VQE run.
type Options struct {
	// Rank is the PEPS bond dimension r; 0 runs the exact state-vector
	// simulation instead (the paper's "state vector" reference curve).
	Rank int
	// ContractionRank is the boundary bond dimension for energy
	// evaluation (defaults to Rank*Rank).
	ContractionRank int
	// MaxIter bounds optimizer iterations per restart round.
	MaxIter int
	// Restarts is the number of Nelder-Mead rounds; each round rebuilds
	// the simplex around the best point found so far, which is what lets
	// the derivative-free optimizer traverse the 2-layer 18-parameter
	// landscape (default 6).
	Restarts int
	// Seed seeds the randomized SVD sketches and start parameters.
	Seed int64
	// Strategy overrides the einsumsvd strategy for energy contraction;
	// nil selects implicit randomized SVD.
	Strategy einsumsvd.Strategy
	// Engine is the tensor backend (defaults to the dense engine).
	Engine backend.Engine
	// UseCache enables cached expectation evaluation.
	UseCache bool

	// CheckpointPath, when non-empty, writes a crash-safe checkpoint after
	// every CheckpointEvery-th completed optimizer round (and after the
	// last). Failed writes are counted in health.checkpoint_failures and
	// the optimization continues.
	CheckpointPath string
	// CheckpointEvery is the round interval between checkpoints
	// (default 1).
	CheckpointEvery int
	// From resumes from a loaded checkpoint: the best point, trace, and
	// base seed come from the checkpoint (its seed overrides Seed), and
	// optimization restarts at the next round. Because each objective
	// evaluation is a pure function of (Seed, theta) and Nelder-Mead is
	// deterministic, the resumed run is bit-identical to an uninterrupted
	// one.
	From *checkpoint.VQECheckpoint
	// AfterRound, when non-nil, runs after each round's bookkeeping with
	// the number of completed rounds. Crash-injection tests use it to kill
	// the process mid-run.
	AfterRound func(round int)
	// Stop, when non-nil, is polled after each optimizer round; when it
	// returns true the optimization writes a final checkpoint (when
	// CheckpointPath is set) and returns early with the best point so
	// far. cliutil's SIGINT handler drives it.
	Stop func() bool
}

// Result reports the optimization outcome.
type Result struct {
	// EnergyPerSite is the best objective value found.
	EnergyPerSite float64
	// Theta is the best parameter vector.
	Theta []float64
	// History is the best energy per site after each optimizer iteration
	// (paper Figure 14's x-axis).
	History []float64
	// Evals is the number of objective evaluations.
	Evals int
}

// EnergyPEPS evaluates the ansatz energy per site with a PEPS simulation
// at bond dimension rank.
func EnergyPEPS(a Ansatz, obs *quantum.Observable, theta []float64, opts Options) float64 {
	eng := opts.Engine
	if eng == nil {
		eng = backend.NewDense()
	}
	strategy := opts.Strategy
	if strategy == nil {
		strategy = einsumsvd.ImplicitRand{Rng: rand.New(rand.NewSource(opts.Seed + 17))}
	}
	m := opts.ContractionRank
	if m <= 0 {
		m = opts.Rank * opts.Rank
		if m < 4 {
			m = 4
		}
	}
	state := peps.ComputationalZeros(eng, a.Rows, a.Cols)
	state.ApplyCircuit(a.Gates(theta), peps.UpdateOptions{
		Rank:      opts.Rank,
		Method:    peps.UpdateQR,
		Normalize: true,
	})
	return state.EnergyPerSite(obs, peps.ExpectationOptions{
		M:        m,
		Strategy: strategy,
		UseCache: opts.UseCache,
	})
}

// EnergyStateVector evaluates the ansatz energy per site exactly.
func EnergyStateVector(a Ansatz, obs *quantum.Observable, theta []float64) float64 {
	sv := statevector.Zeros(a.Rows * a.Cols)
	for _, g := range a.Gates(theta) {
		sv.ApplyGate(g)
	}
	return real(sv.Expectation(obs)) / float64(a.Rows*a.Cols)
}

// Run minimizes the ansatz energy with restarted Nelder-Mead. Rank 0
// uses the state-vector objective; otherwise PEPS at the given bond
// dimension.
func Run(a Ansatz, obs *quantum.Observable, opts Options) Result {
	if opts.MaxIter <= 0 {
		opts.MaxIter = 150
	}
	if opts.Restarts <= 0 {
		opts.Restarts = 6
	}
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = 1
	}
	start := 0
	var out Result
	if cp := opts.From; cp != nil {
		opts.Seed = cp.Seed
		start = cp.Round
		out = Result{
			EnergyPerSite: cp.Energy,
			Theta:         append([]float64(nil), cp.Theta...),
			History:       append([]float64(nil), cp.History...),
			Evals:         cp.Evals,
		}
	}
	objective := func(theta []float64) float64 {
		var e float64
		if opts.Rank <= 0 {
			e = EnergyStateVector(a, obs, theta)
		} else {
			e = EnergyPEPS(a, obs, theta, opts)
			health.CheckFloat("vqe.energy", e)
		}
		telemetry.Observe("vqe.eval_energy_per_site", e)
		return e
	}
	if opts.From == nil {
		rng := rand.New(rand.NewSource(opts.Seed))
		x := make([]float64, a.NumParams())
		for i := range x {
			x[i] = 0.1 * (2*rng.Float64() - 1)
		}
		out = Result{EnergyPerSite: objective(x), Theta: x}
		out.Evals++
	}
	for round := start; round < opts.Restarts; round++ {
		res := optimize.NelderMead(objective, out.Theta, optimize.Options{
			MaxIter:     opts.MaxIter,
			InitialStep: 0.5,
		})
		out.Evals += res.Evals
		// Keep the best-so-far trace monotone across rounds.
		for _, e := range res.History {
			if len(out.History) > 0 && e > out.History[len(out.History)-1] {
				e = out.History[len(out.History)-1]
			}
			out.History = append(out.History, e)
		}
		if res.F <= out.EnergyPerSite {
			out.EnergyPerSite = res.F
			out.Theta = res.X
		}
		done := round + 1
		if opts.CheckpointPath != "" && (done%opts.CheckpointEvery == 0 || done == opts.Restarts) {
			// Failures are counted by WriteAtomic; the previous checkpoint
			// stays valid and the optimization keeps going.
			_ = checkpoint.SaveVQE(opts.CheckpointPath, &checkpoint.VQECheckpoint{
				Round:   done,
				Evals:   out.Evals,
				Energy:  out.EnergyPerSite,
				Theta:   out.Theta,
				History: out.History,
				Seed:    opts.Seed,
			})
		}
		if telemetry.Active() {
			telemetry.Observe("vqe.energy_per_site", out.EnergyPerSite)
			telemetry.Observe("vqe.round", float64(done))
			telemetry.Publish("vqe.round", done, map[string]float64{
				"round":           float64(done),
				"rounds_total":    float64(opts.Restarts),
				"energy_per_site": out.EnergyPerSite,
				"evals":           float64(out.Evals),
			})
		}
		if opts.AfterRound != nil {
			opts.AfterRound(done)
		}
		if opts.Stop != nil && opts.Stop() {
			if opts.CheckpointPath != "" && done%opts.CheckpointEvery != 0 && done != opts.Restarts {
				_ = checkpoint.SaveVQE(opts.CheckpointPath, &checkpoint.VQECheckpoint{
					Round:   done,
					Evals:   out.Evals,
					Energy:  out.EnergyPerSite,
					Theta:   out.Theta,
					History: out.History,
					Seed:    opts.Seed,
				})
			}
			telemetry.Publish("vqe.stop", done, nil)
			break
		}
	}
	return out
}
