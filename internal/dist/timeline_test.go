package dist

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"gokoala/internal/obs"
	"gokoala/internal/tensor"
)

// driveGrid runs a fixed metered workload: a matmul (parallel compute +
// collectives) and a Gram sequence (partial-parallel compute, so some
// ranks accrue imbalance wait).
func driveGrid(g *Grid) {
	rng := rand.New(rand.NewSource(9))
	a := tensor.Rand(rng, 24, 12)
	b := tensor.Rand(rng, 12, 8)
	g.MatMul(a, b)
	g.GramMatrix(a)
	// A rank-0-only phase (the local factorization of the Gram method),
	// so ranks past 0 accrue imbalance wait.
	g.ChargeFlops(1_000_000, 1)
}

// The model is bulk-synchronous: every rank's timeline covers the same
// modeled wall clock, so each rank's total must equal ModeledSeconds.
func TestRankTotalsEqualModeledSeconds(t *testing.T) {
	g := NewGrid(Stampede2(8))
	driveGrid(g)
	want := g.Snapshot().ModeledSeconds()
	if want <= 0 {
		t.Fatal("workload accrued no modeled time")
	}
	tls := g.RankTimelines()
	if len(tls) != 8 {
		t.Fatalf("want 8 rank records, got %d", len(tls))
	}
	var sawWait bool
	for _, r := range tls {
		if got := r.TotalSeconds(); math.Abs(got-want) > 1e-12*want {
			t.Fatalf("rank %d total %.15g != modeled %.15g", r.Rank, got, want)
		}
		if r.WaitSeconds > 0 {
			sawWait = true
		}
	}
	if !sawWait {
		t.Fatal("partial-parallel Gram phase should park some ranks in wait")
	}
	// Rank 0 computes in every phase; it must never wait more than the
	// others and must carry the most compute.
	for _, r := range tls[1:] {
		if r.CompSeconds > tls[0].CompSeconds {
			t.Fatalf("rank %d compute %.3g exceeds rank 0's %.3g", r.Rank, r.CompSeconds, tls[0].CompSeconds)
		}
		if r.WaitSeconds < tls[0].WaitSeconds {
			t.Fatalf("rank %d waits %.3g, less than rank 0's %.3g", r.Rank, r.WaitSeconds, tls[0].WaitSeconds)
		}
	}
}

// Rank timeline totals are integer-picosecond accumulations, so two
// identical workloads must agree bit for bit.
func TestRankTimelinesDeterministic(t *testing.T) {
	run := func() []obs.RankRecord {
		g := NewGrid(Stampede2(16))
		driveGrid(g)
		return g.RankTimelines()
	}
	a, b := run(), run()
	for i := range a {
		ra, rb := a[i], b[i]
		if ra.Grid != rb.Grid || ra.Rank != rb.Rank ||
			ra.CompSeconds != rb.CompSeconds || ra.LatSeconds != rb.LatSeconds ||
			ra.BWSeconds != rb.BWSeconds || ra.WaitSeconds != rb.WaitSeconds {
			t.Fatalf("rank %d differs across identical runs:\n%+v\n%+v", i, ra, rb)
		}
	}
}

// Segments are only collected while obs is enabled, coalesce repeats,
// and cap out with the truncated flag while totals stay exact.
func TestRankSegmentsGatedAndCoalesced(t *testing.T) {
	g := NewGrid(Stampede2(2))
	driveGrid(g)
	if tls := g.RankTimelines(); len(tls[0].Segments) != 0 {
		t.Fatal("segments collected while obs disabled")
	}

	obs.Enable()
	defer func() {
		obs.Disable()
		obs.ResetCounters()
	}()
	g2 := NewGrid(Stampede2(2))
	driveGrid(g2)
	tls := g2.RankTimelines()
	segs := tls[0].Segments
	if len(segs) == 0 {
		t.Fatal("no segments collected while obs enabled")
	}
	var sum float64
	for i, s := range segs {
		sum += s.Seconds
		if i > 0 && segs[i-1].Kind == s.Kind {
			t.Fatalf("segments %d and %d not coalesced (both %q)", i-1, i, s.Kind)
		}
	}
	if total := tls[0].TotalSeconds(); math.Abs(sum-total) > 1e-12 {
		t.Fatalf("segment sum %.15g != totals %.15g", sum, total)
	}

	// Push one rank past the cap: totals keep counting, details stop.
	g3 := NewGrid(Stampede2(1))
	for i := 0; i < 3*maxRankSegments; i++ {
		kind := uint8(i % numSegKinds)
		g3.mu.Lock()
		g3.ensureRanks()
		g3.ranks[0].add(kind, 1000, true)
		g3.mu.Unlock()
	}
	g3.mu.Lock()
	r := &g3.ranks[0]
	if len(r.segs) > maxRankSegments {
		t.Fatalf("segment list grew past cap: %d", len(r.segs))
	}
	if !r.truncated {
		t.Fatal("truncated flag not set past the cap")
	}
	var totalPs int64
	for _, ps := range r.ps {
		totalPs += ps
	}
	g3.mu.Unlock()
	if totalPs != int64(3*maxRankSegments)*1000 {
		t.Fatalf("totals lost updates past the cap: %d", totalPs)
	}
}

// FlushTimelines emits every driven grid registered since the last
// reset into the sinks, skipping idle grids.
func TestFlushTimelinesEmission(t *testing.T) {
	var buf bytes.Buffer
	obs.Enable(obs.NewJSONLSink(&buf))
	defer func() {
		obs.Disable()
		obs.ResetCounters()
	}()
	ResetTimelines()

	driven := NewGrid(Stampede2(4)).SetLabel("driven")
	idle := NewGrid(Stampede2(4)).SetLabel("idle")
	_ = idle
	driveGrid(driven)

	n := FlushTimelines()
	if n != 4 {
		t.Fatalf("want 4 rank records emitted (driven grid only), got %d", n)
	}
	out := buf.String()
	if !bytes.Contains([]byte(out), []byte(`"grid":"driven"`)) {
		t.Fatalf("JSONL missing driven grid records: %s", out)
	}
	if bytes.Contains([]byte(out), []byte(`"grid":"idle"`)) {
		t.Fatal("idle grid must not be emitted")
	}

	ResetTimelines()
	if n := FlushTimelines(); n != 0 {
		t.Fatalf("registry not cleared: %d records after reset", n)
	}
}
