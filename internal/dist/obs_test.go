package dist

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"gokoala/internal/obs"
	"gokoala/internal/tensor"
)

func TestStatsSub(t *testing.T) {
	g := NewGrid(Stampede2(64))
	g.Allgather(1 << 20)
	before := g.Snapshot()
	g.AllToAll(1 << 16)
	g.ParallelFlops(1000)
	d := g.Snapshot().Sub(before)
	if d.Redistributions != 1 {
		t.Fatalf("delta redistributions = %d want 1", d.Redistributions)
	}
	if d.Bytes != 1<<16 {
		t.Fatalf("delta bytes = %d want %d", d.Bytes, 1<<16)
	}
	if d.ParallelFlops != 1000 {
		t.Fatalf("delta parallel flops = %d want 1000", d.ParallelFlops)
	}
	if d.CompSeconds <= 0 || d.CommSeconds() <= 0 {
		t.Fatalf("delta seconds not positive: %+v", d)
	}
	// The region before the snapshot must not leak into the delta.
	full := g.Snapshot()
	if d.Bytes >= full.Bytes {
		t.Fatalf("delta bytes %d should be less than cumulative %d", d.Bytes, full.Bytes)
	}
	// Sub of a snapshot with itself is zero.
	z := full.Sub(full)
	if z.Msgs != 0 || z.Bytes != 0 || z.ModeledSeconds() != 0 {
		t.Fatalf("self-subtraction not zero: %+v", z)
	}
}

// TestSnapshotConcurrent hammers the grid's metered operations from
// concurrent rank goroutines while snapshots are taken — the data-race
// hazard of bridging per-rank accounting into shared counters. Run under
// go test -race.
func TestSnapshotConcurrent(t *testing.T) {
	g := NewGrid(Stampede2(64))
	const workers = 8
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				g.Allgather(1024)
				g.Allreduce(256)
				g.AllToAll(512)
				g.Bcast(128)
				g.ParallelFlops(10)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		prev := g.Snapshot()
		for i := 0; i < 500; i++ {
			cur := g.Snapshot()
			d := cur.Sub(prev)
			if d.Bytes < 0 || d.Msgs < 0 || d.CompSeconds < 0 {
				t.Error("snapshot went backwards")
				return
			}
			prev = cur
		}
	}()
	wg.Wait()
	<-done
	s := g.Snapshot()
	wantBytes := int64(workers * iters * (1024 + 256 + 512 + 128))
	if s.Bytes != wantBytes {
		t.Fatalf("bytes = %d want %d", s.Bytes, wantBytes)
	}
	if s.Redistributions != workers*iters {
		t.Fatalf("redistributions = %d want %d", s.Redistributions, workers*iters)
	}
	if s.ParallelFlops != workers*iters*10 {
		t.Fatalf("parallel flops = %d want %d", s.ParallelFlops, workers*iters*10)
	}
}

// TestObsBridgeConcurrent checks the grid-to-obs counter bridge under
// concurrent increments: the obs totals must match the grid's own
// accounting exactly.
func TestObsBridgeConcurrent(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	g := NewGrid(Stampede2(128))
	const workers = 6
	const iters = 150
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				g.AllToAll(2048)
				g.ParallelFlops(64)
				g.Sequential(func() { tensor.AddFlops(8) })
			}
		}()
	}
	wg.Wait()
	s := g.Snapshot()
	if got := obs.MetricValueOf("dist.comm.bytes"); got != float64(s.Bytes) {
		t.Fatalf("obs dist.comm.bytes = %v want %d", got, s.Bytes)
	}
	if got := obs.MetricValueOf("dist.comm.msgs"); got != float64(s.Msgs) {
		t.Fatalf("obs dist.comm.msgs = %v want %d", got, s.Msgs)
	}
	if got := obs.MetricValueOf("dist.redistributions"); got != float64(s.Redistributions) {
		t.Fatalf("obs dist.redistributions = %v want %d", got, s.Redistributions)
	}
	if got := obs.MetricValueOf("dist.modeled.comm_seconds"); math.Abs(got-s.CommSeconds()) > 1e-9*math.Abs(s.CommSeconds()) {
		t.Fatalf("obs modeled comm seconds = %v want %v", got, s.CommSeconds())
	}
	if got := obs.MetricValueOf("dist.modeled.comp_seconds"); math.Abs(got-s.CompSeconds) > 1e-9*math.Abs(s.CompSeconds) {
		t.Fatalf("obs modeled comp seconds = %v want %v", got, s.CompSeconds)
	}
}

// TestTraceRegion checks the span annotations produced from a Stats
// delta, and that TraceRegion is transparent when obs is disabled.
func TestTraceRegion(t *testing.T) {
	g := NewGrid(Stampede2(64))
	ran := false
	g.TraceRegion("disabled", func() { ran = true })
	if !ran {
		t.Fatal("TraceRegion must run f while disabled")
	}

	obs.Enable()
	defer obs.Disable()
	rng := rand.New(rand.NewSource(1))
	a := tensor.Rand(rng, 32, 8)
	b := tensor.Rand(rng, 8, 16)
	g.TraceRegion("dist.matmul", func() { g.MatMul(a, b) })
	var stat obs.PhaseStat
	for _, s := range obs.Summary() {
		if s.Name == "dist.matmul" {
			stat = s
		}
	}
	if stat.Count != 1 {
		t.Fatalf("span missing: %+v", obs.Summary())
	}
	if stat.Attrs["modeled_s"] <= 0 {
		t.Fatalf("span has no modeled seconds: %+v", stat.Attrs)
	}
	if stat.Attrs["comm_bytes"] <= 0 {
		t.Fatalf("span has no comm bytes: %+v", stat.Attrs)
	}
}
