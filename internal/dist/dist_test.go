package dist

import (
	"math"
	"math/rand"
	"testing"

	"gokoala/internal/tensor"
)

func TestMachineNodes(t *testing.T) {
	m := Stampede2(64)
	if m.Nodes() != 1 {
		t.Fatalf("64 ranks should be 1 node, got %d", m.Nodes())
	}
	m = Stampede2(65)
	if m.Nodes() != 2 {
		t.Fatalf("65 ranks should be 2 nodes, got %d", m.Nodes())
	}
	m = Stampede2(4096)
	if m.Nodes() != 64 {
		t.Fatalf("4096 ranks should be 64 nodes, got %d", m.Nodes())
	}
}

func TestIntraNodeCommIsCheaper(t *testing.T) {
	oneNode := Stampede2(64)
	multi := Stampede2(128)
	if oneNode.alphaEff() >= multi.alphaEff() {
		t.Fatal("intra-node latency should be cheaper")
	}
	if oneNode.betaEff() >= multi.betaEff() {
		t.Fatal("intra-node bandwidth should be cheaper")
	}
}

func TestGridMatMulMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, ranks := range []int{1, 3, 16, 64} {
		g := NewGrid(Stampede2(ranks))
		a := tensor.Rand(rng, 17, 9)
		b := tensor.Rand(rng, 9, 13)
		got := g.MatMul(a, b)
		want := tensor.MatMul(a, b)
		if !tensor.AllClose(got, want, 1e-12, 1e-12) {
			t.Fatalf("ranks=%d: distributed MatMul differs from sequential", ranks)
		}
	}
}

func TestGridMatMulFewerRowsThanRanks(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := NewGrid(Stampede2(64))
	a := tensor.Rand(rng, 2, 5)
	b := tensor.Rand(rng, 5, 3)
	got := g.MatMul(a, b)
	if !tensor.AllClose(got, tensor.MatMul(a, b), 1e-12, 1e-12) {
		t.Fatal("small matmul wrong")
	}
}

func TestGridBatchMatMulMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, bt := range []int{1, 2, 20} {
		g := NewGrid(Stampede2(8))
		a := tensor.Rand(rng, bt, 6, 7)
		b := tensor.Rand(rng, bt, 7, 4)
		got := g.BatchMatMul(a, b)
		want := tensor.BatchMatMul(a, b)
		if !tensor.AllClose(got, want, 1e-12, 1e-12) {
			t.Fatalf("bt=%d: distributed BatchMatMul differs", bt)
		}
	}
}

func TestGramMatrixMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := NewGrid(Stampede2(16))
	a := tensor.Rand(rng, 40, 6)
	got := g.GramMatrix(a)
	want := tensor.MatMul(a.Conj().Transpose(1, 0), a)
	if !tensor.AllClose(got, want, 1e-11, 1e-11) {
		t.Fatal("distributed Gram matrix differs from sequential")
	}
}

func TestGramMovesLessDataThanGather(t *testing.T) {
	// The whole point of Algorithm 5: Gram method's traffic is O(n^2),
	// independent of the tall dimension m.
	rng := rand.New(rand.NewSource(5))
	g := NewGrid(Stampede2(16))
	a := tensor.Rand(rng, 4096, 8)
	g.Reset()
	g.GramMatrix(a)
	gramBytes := g.Snapshot().Bytes
	g.Reset()
	g.AllToAll(int64(a.Size()) * 16) // what a distributed reshape would cost
	reshapeBytes := g.Snapshot().Bytes
	if gramBytes*10 > reshapeBytes {
		t.Fatalf("gram traffic %d should be far below reshape traffic %d", gramBytes, reshapeBytes)
	}
}

func TestCountersAndReset(t *testing.T) {
	g := NewGrid(Stampede2(8))
	g.Allgather(1000)
	g.AllToAll(2000)
	g.Gather(500)
	g.Bcast(100)
	g.Allreduce(64)
	g.ParallelFlops(1_000_000)
	s := g.Snapshot()
	if s.Msgs == 0 || s.Bytes != 3664 || s.CommSeconds() <= 0 {
		t.Fatalf("counters wrong: %+v", s)
	}
	if s.Redistributions != 1 {
		t.Fatalf("redistributions = %d", s.Redistributions)
	}
	if s.ParallelFlops != 1_000_000 || s.CompSeconds <= 0 {
		t.Fatalf("flops wrong: %+v", s)
	}
	g.Reset()
	if z := g.Snapshot(); z.Msgs != 0 || z.Bytes != 0 || z.CommSeconds() != 0 || z.CompSeconds != 0 {
		t.Fatalf("reset failed: %+v", z)
	}
}

func TestSingleRankCollectivesFree(t *testing.T) {
	g := NewGrid(Stampede2(1))
	g.Allgather(1 << 20)
	g.AllToAll(1 << 20)
	g.Gather(1 << 20)
	g.Bcast(1 << 20)
	g.Allreduce(1 << 20)
	if s := g.Snapshot(); s.Bytes != 0 || s.CommSeconds() != 0 {
		t.Fatalf("single-rank collectives should be free: %+v", s)
	}
}

func TestSequentialMetering(t *testing.T) {
	g := NewGrid(Stampede2(4))
	g.Sequential(func() {
		a := tensor.New(10, 10)
		b := tensor.New(10, 10)
		tensor.MatMul(a, b)
	})
	s := g.Snapshot()
	if s.SequentialFlops != 1000 {
		t.Fatalf("sequential flops = %d, want 1000", s.SequentialFlops)
	}
	// Sequential work is not divided by rank count. The accumulator holds
	// integer picoseconds, so allow that quantization (far below any
	// modeled cost) when comparing against the float expectation.
	want := g.Machine.Gamma * 1000
	if diff := math.Abs(s.CompSeconds - want); diff > 1e-12 {
		t.Fatalf("comp seconds = %g, want %g", s.CompSeconds, want)
	}
}

func TestPartialParallelClampsEff(t *testing.T) {
	g := NewGrid(Stampede2(4))
	g.PartialParallel(100, func() {
		tensor.MatMul(tensor.New(10, 10), tensor.New(10, 10))
	})
	s := g.Snapshot()
	// eff clamps to 4 ranks; tolerance covers picosecond quantization.
	want := g.Machine.Gamma * 1000 / 4
	if diff := s.CompSeconds - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("comp seconds = %g, want %g", s.CompSeconds, want)
	}
}

func TestStatsSubAndModeledSeconds(t *testing.T) {
	g := NewGrid(Stampede2(8))
	g.ParallelFlops(800)
	before := g.Snapshot()
	g.Allgather(1 << 10)
	g.ParallelFlops(1600)
	delta := g.Snapshot().Sub(before)
	if delta.ParallelFlops != 1600 {
		t.Fatalf("delta flops = %d", delta.ParallelFlops)
	}
	if delta.ModeledSeconds() <= 0 {
		t.Fatal("modeled seconds should be positive")
	}
	if delta.CommSeconds() <= 0 {
		t.Fatal("comm seconds missing from delta")
	}
}

func TestMoreRanksReduceComputeTime(t *testing.T) {
	// Strong-scaling sanity of the model: same flops, more ranks, less
	// compute time; communication grows with latency terms.
	small := NewGrid(Stampede2(4))
	big := NewGrid(Stampede2(64))
	small.ParallelFlops(1 << 30)
	big.ParallelFlops(1 << 30)
	if small.Snapshot().CompSeconds <= big.Snapshot().CompSeconds {
		t.Fatal("more ranks should reduce parallel compute time")
	}
}
