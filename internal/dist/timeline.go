package dist

import (
	"sync"

	"gokoala/internal/obs"
)

// Per-rank timelines: besides the aggregate Stats accounting, every
// metered collective and flop credit assigns each modeled rank its share
// of the α-β-γ time — compute for the ranks a kernel actually uses,
// message latency and byte-transfer time for every participant of a
// collective, and imbalance wait for the ranks a partially-parallel
// kernel leaves idle (the Sequential/PartialParallel path of the Gram
// method, where rank 0 factorizes while the rest of the machine waits).
// This is the per-rank compute/communication breakdown the paper's
// scaling discussion (Figures 8-10, Table II) attributes cliffs with.
//
// The model is bulk-synchronous, so every operation advances every
// rank's timeline by the same wall duration; each rank's total therefore
// equals the grid's ModeledSeconds, and the per-rank split shows where
// that rank spent the time. Totals accumulate in integer picoseconds
// under the grid mutex, exactly like the aggregate Stats, so they are
// bit-identical for any worker count and interleaving. Segment lists —
// kept only while obs collection is enabled, coalesced when consecutive
// operations land in the same category, and truncated at a cap — feed
// the per-rank tracks of the Chrome trace and are the one
// order-dependent (hence never gated) part.

// Timeline segment kinds.
const (
	segCompute = iota
	segLatency
	segBandwidth
	segWait
	numSegKinds
)

var segKindNames = [numSegKinds]string{"compute", "latency", "bandwidth", "wait"}

// maxRankSegments bounds one rank's stored segment list; past the cap
// new operations still accumulate into the totals but detail is dropped
// (Truncated is reported so analyzers can say so).
const maxRankSegments = 2048

type rankSeg struct {
	kind  uint8
	durPs int64
}

// rankAcct is one modeled rank's accumulated timeline.
type rankAcct struct {
	ps        [numSegKinds]int64
	segs      []rankSeg
	truncated bool
}

// add advances the rank's timeline by durPs in the given category,
// coalescing into the previous segment when the category repeats.
func (r *rankAcct) add(kind uint8, durPs int64, keepSegs bool) {
	r.ps[kind] += durPs
	if !keepSegs || durPs == 0 {
		return
	}
	if n := len(r.segs); n > 0 && r.segs[n-1].kind == kind {
		r.segs[n-1].durPs += durPs
		return
	}
	if len(r.segs) >= maxRankSegments {
		r.truncated = true
		return
	}
	r.segs = append(r.segs, rankSeg{kind, durPs})
}

// rankComm advances every rank by a collective's latency and bandwidth
// time. Caller holds g.mu.
func (g *Grid) rankComm(latPs, bwPs int64) {
	g.ensureRanks()
	keep := obs.Enabled()
	for i := range g.ranks {
		g.ranks[i].add(segLatency, latPs, keep)
		g.ranks[i].add(segBandwidth, bwPs, keep)
	}
}

// rankComp advances ranks 0..eff-1 by a kernel's compute time and parks
// the remaining ranks in imbalance wait for the same duration. Caller
// holds g.mu.
func (g *Grid) rankComp(compPs int64, eff int) {
	g.ensureRanks()
	keep := obs.Enabled()
	for i := range g.ranks {
		if i < eff {
			g.ranks[i].add(segCompute, compPs, keep)
		} else {
			g.ranks[i].add(segWait, compPs, keep)
		}
	}
}

// ensureRanks lazily allocates the per-rank accounts. Caller holds g.mu.
func (g *Grid) ensureRanks() {
	if g.ranks == nil {
		g.ranks = make([]rankAcct, g.Machine.Ranks)
	}
}

// SetLabel names the grid in rank-timeline records (engine name in the
// bench suites); returns the grid for chaining.
func (g *Grid) SetLabel(name string) *Grid {
	g.mu.Lock()
	g.label = name
	g.mu.Unlock()
	return g
}

// RankTimelines snapshots every rank's accumulated timeline. Ranks with
// no accumulated time at all yield records with zero totals (the grid
// was never driven); callers typically skip all-zero grids.
func (g *Grid) RankTimelines() []obs.RankRecord {
	g.mu.Lock()
	defer g.mu.Unlock()
	label := g.label
	if label == "" {
		label = "grid"
	}
	out := make([]obs.RankRecord, len(g.ranks))
	for i := range g.ranks {
		r := &g.ranks[i]
		rec := obs.RankRecord{
			Grid:        label,
			Rank:        i,
			CompSeconds: secs(r.ps[segCompute]),
			LatSeconds:  secs(r.ps[segLatency]),
			BWSeconds:   secs(r.ps[segBandwidth]),
			WaitSeconds: secs(r.ps[segWait]),
		}
		if len(r.segs) > 0 {
			rec.Segments = make([]obs.RankSegment, len(r.segs))
			for j, s := range r.segs {
				rec.Segments[j] = obs.RankSegment{Kind: segKindNames[s.kind], Seconds: secs(s.durPs)}
			}
		}
		out[i] = rec
	}
	return out
}

// --- grid registry for end-of-run emission ---

// Grids register themselves while obs collection is enabled so the
// orchestrating command (koala-bench, cliutil.Finish) can emit every
// driven grid's rank timelines into the trace sinks without threading
// grid handles through every experiment.
var timelineReg struct {
	mu    sync.Mutex
	grids []*Grid
}

func registerGrid(g *Grid) {
	if !obs.Enabled() {
		return
	}
	timelineReg.mu.Lock()
	timelineReg.grids = append(timelineReg.grids, g)
	timelineReg.mu.Unlock()
}

// ResetTimelines clears the grid registry; call alongside
// obs.ResetCounters when starting a fresh measured region.
func ResetTimelines() {
	timelineReg.mu.Lock()
	timelineReg.grids = nil
	timelineReg.mu.Unlock()
}

// FlushTimelines emits the rank timelines of every grid registered since
// the last ResetTimelines into the installed obs sinks (JSONL "rank"
// records, Chrome per-rank tracks), skipping grids that were never
// driven. Returns the number of rank records emitted.
func FlushTimelines() int {
	timelineReg.mu.Lock()
	grids := append([]*Grid(nil), timelineReg.grids...)
	timelineReg.mu.Unlock()
	n := 0
	for _, g := range grids {
		for _, rec := range g.RankTimelines() {
			if rec.TotalSeconds() == 0 && len(rec.Segments) == 0 {
				continue
			}
			obs.EmitRank(rec)
			n++
		}
	}
	return n
}
