package dist

// Op identifies one of the grid's metered communication patterns. The
// five collectives (bcast, gather, allgather, allreduce, alltoall) have
// real point-to-point realizations in the socket transport
// (internal/dist/net); OpGemm is the GEMM communication lower bound of
// GemmComm, which has no collective realization — its real counterpart
// is the block kernel's operand movement, which shared memory provides
// — so it stays modeled-only.
type Op uint8

const (
	OpBcast Op = iota
	OpGather
	OpAllgather
	OpAllreduce
	OpAllToAll
	OpGemm
	NumOps
)

var opNames = [NumOps]string{"bcast", "gather", "allgather", "allreduce", "alltoall", "gemm"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "unknown"
}

// Ops returns the collective ops a transport realizes (everything but
// OpGemm), in wire order.
func Ops() []Op {
	return []Op{OpBcast, OpGather, OpAllgather, OpAllreduce, OpAllToAll}
}

// Transport moves real bytes between rank processes for each collective
// the grid meters. The grid's modeled alpha-beta-gamma accounting is
// independent of the transport — modeled Stats are bit-identical whether
// a transport is attached or not — while the transport contributes the
// *measured* wall-clock seconds recorded beside the modeled ones.
//
// A nil transport is the in-process engine: ranks are goroutines over
// shared memory, collectives are metering-only, and no measured time is
// recorded. That is the deterministic CI surface and the default.
//
// Run executes one collective with a synthetic payload of the given
// aggregate byte count and returns the measured wall seconds. A
// transport must be safe for concurrent Run calls (the grid is driven
// by concurrent task-group workers); implementations serialize
// internally, exactly as collectives on one MPI communicator are
// ordered. After the first error a transport is permanently failed:
// every later Run returns the same error immediately.
type Transport interface {
	Name() string
	Ranks() int
	Run(op Op, totalBytes int64) (seconds float64, err error)
	Close() error
}

// OpMeasured is the measured wall-clock total of one collective op on
// one rank: how many times it ran and the summed seconds.
type OpMeasured struct {
	Ops     int64   `json:"ops"`
	Seconds float64 `json:"seconds"`
}

// RankStat is one rank's measured communication summary as reported by
// a multi-process transport. Rank 0 is the driver: its numbers are the
// full collective wall clock (fan-out to last ack); child ranks report
// their local n.run wall, so the rows are comparable but not identical.
type RankStat struct {
	Rank                int     `json:"rank"`
	PID                 int     `json:"pid,omitempty"`
	MeasuredOps         int64   `json:"measured_ops"`
	MeasuredCommSeconds float64 `json:"measured_comm_seconds"`
	// ClockOffsetNS is the rank's wall clock minus the driver's, as
	// estimated by the transport's NTP-style sync pings; RTTNS is the
	// round-trip delay of the sample the estimate came from (its
	// half-width bounds the residual skew). Zero for rank 0.
	ClockOffsetNS int64                 `json:"clock_offset_ns,omitempty"`
	RTTNS         int64                 `json:"rtt_ns,omitempty"`
	Ops           map[string]OpMeasured `json:"ops_breakdown,omitempty"`
}

// RankStatser is implemented by transports that can break the measured
// collective wall clock down by rank (the socket transport polls its
// child processes for their local per-op totals).
type RankStatser interface {
	RankStats() []RankStat
}

// RecordMeasured adds one realized collective's wall clock to the
// dist.measured.* obs counters. Exported for rank processes: a child
// rank serves collectives without a Grid, so its local trace log gets
// the measured totals through this instead of Grid.realize. No-op for
// OpGemm (modeled-only) and while obs is disabled.
func RecordMeasured(op Op, secs float64) {
	if op >= NumOps || obsMeasOpSecs[op] == nil {
		return
	}
	observeMeasured(op, secs)
}

// SetTransport attaches a transport whose collectives are executed for
// real alongside the modeled accounting; nil detaches (in-process mode).
// Returns the grid for chaining. Attach before driving the grid.
func (g *Grid) SetTransport(t Transport) *Grid {
	g.mu.Lock()
	g.transport = t
	g.mu.Unlock()
	return g
}

// TransportError returns the first error the attached transport hit, or
// nil. After a transport error the grid stops driving the transport (the
// modeled accounting continues), so a run's driver can check this once
// at the end rather than after every operation.
func (g *Grid) TransportError() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.transportErr
}

// realize executes op on the attached transport (if any) and records
// the measured wall seconds beside the modeled accounting. Called
// outside g.mu: Run blocks on real sockets.
func (g *Grid) realize(op Op, bytes int64) {
	g.mu.Lock()
	t, terr := g.transport, g.transportErr
	g.mu.Unlock()
	if t == nil || terr != nil {
		return
	}
	secs, err := t.Run(op, bytes)
	if err != nil {
		g.mu.Lock()
		if g.transportErr == nil {
			g.transportErr = err
		}
		g.mu.Unlock()
		return
	}
	ps := picos(secs)
	g.mu.Lock()
	g.measOps[op]++
	g.measPs[op] += ps
	observeMeasured(op, secs)
	g.mu.Unlock()
}
