package dist

import (
	"math"
	"sync"
	"testing"

	"gokoala/internal/obs"
)

// Satellite coverage for the collective metering identities the cost
// model promises (paper Table/§V): single-rank no-ops, the allreduce
// recursive-halving/doubling charge, and the alltoall message count and
// redistribution accounting. The cross-transport half of these
// identities (socket transport must leave modeled stats bit-identical)
// lives in internal/dist/net.

// Every collective at Ranks<=1 must be a strict no-op: not just "free"
// but zero across the entire Stats struct, including measured fields
// and redistribution counts, and it must never touch a transport.
func TestCollectivesStrictNoOpAtOneRank(t *testing.T) {
	collectives := map[string]func(*Grid){
		"bcast":     func(g *Grid) { g.Bcast(1 << 20) },
		"gather":    func(g *Grid) { g.Gather(1 << 20) },
		"allgather": func(g *Grid) { g.Allgather(1 << 20) },
		"allreduce": func(g *Grid) { g.Allreduce(1 << 20) },
		"alltoall":  func(g *Grid) { g.AllToAll(1 << 20) },
	}
	for name, call := range collectives {
		t.Run(name, func(t *testing.T) {
			g := NewGrid(Stampede2(1)).SetTransport(failTransport{})
			call(g)
			if s := g.Snapshot(); s != (Stats{}) {
				t.Errorf("%s at ranks=1 left a nonzero snapshot: %+v", name, s)
			}
			if err := g.TransportError(); err != nil {
				t.Errorf("%s at ranks=1 reached the transport: %v", name, err)
			}
		})
	}
}

// failTransport fails every Run; attaching it proves a path never
// realizes a collective.
type failTransport struct{}

func (failTransport) Name() string { return "fail" }
func (failTransport) Ranks() int   { return 1 }
func (failTransport) Run(op Op, totalBytes int64) (float64, error) {
	panic("collective realized on a path that must not reach the transport")
}
func (failTransport) Close() error { return nil }

// Allreduce charges 2*log2(P) messages and twice the allgather latency
// and bandwidth of the same payload (recursive halving/doubling).
func TestAllreduceMeteringIdentity(t *testing.T) {
	const bytes = 1 << 16
	for _, p := range []int{2, 3, 4, 7, 8, 64, 100} {
		g := NewGrid(Stampede2(p))
		g.Allreduce(bytes)
		s := g.Snapshot()
		if want := 2 * log2msgs(p); s.Msgs != want {
			t.Errorf("P=%d: allreduce msgs = %d, want 2*log2(P) = %d", p, s.Msgs, want)
		}
		lat, bw := g.Machine.allgatherSeconds(bytes)
		if want := secs(picos(2 * lat)); s.CommLatencySeconds != want {
			t.Errorf("P=%d: allreduce latency = %g, want 2x allgather = %g", p, s.CommLatencySeconds, want)
		}
		if want := secs(picos(2 * bw)); s.BWSmallSeconds != want {
			t.Errorf("P=%d: allreduce bandwidth = %g, want 2x allgather = %g", p, s.BWSmallSeconds, want)
		}
		// Allreduce is a small-matrix (Gram-path) collective: its byte
		// time must land in the small class, nowhere else.
		if s.BWBigSeconds != 0 || s.BWGemmSeconds != 0 {
			t.Errorf("P=%d: allreduce leaked into other bandwidth classes: %+v", p, s)
		}
	}
}

// AllToAll charges P*(P-1) messages and exactly one redistribution per
// call.
func TestAllToAllMeteringIdentity(t *testing.T) {
	for _, p := range []int{2, 3, 8, 100} {
		g := NewGrid(Stampede2(p))
		g.AllToAll(1 << 18)
		s := g.Snapshot()
		if want := int64(p) * int64(p-1); s.Msgs != want {
			t.Errorf("P=%d: alltoall msgs = %d, want P*(P-1) = %d", p, s.Msgs, want)
		}
		if s.Redistributions != 1 {
			t.Errorf("P=%d: alltoall redistributions = %d, want exactly 1", p, s.Redistributions)
		}
		g.AllToAll(1 << 18)
		if s := g.Snapshot(); s.Redistributions != 2 {
			t.Errorf("P=%d: second alltoall redistributions = %d, want 2", p, s.Redistributions)
		}
	}
}

// The in-process engine records no measured time: the measured side of
// Stats exists only when a real transport is attached.
func TestInProcessEngineRecordsNoMeasuredTime(t *testing.T) {
	g := NewGrid(Stampede2(16))
	g.Bcast(4096)
	g.Allreduce(4096)
	g.AllToAll(4096)
	s := g.Snapshot()
	if s.MeasuredOps != 0 || s.MeasuredCommSeconds != 0 {
		t.Fatalf("in-process engine recorded measured time: %+v", s)
	}
	if s.ModeledOnly() != s {
		t.Fatalf("ModeledOnly changed an in-process snapshot: %+v", s)
	}
}

// Regression test for the addComm publish ordering bug: observeComm used
// to run after g.mu was released, so concurrent collectives could
// publish obs samples out of order relative to the counters they
// describe. With publishing under the lock, the obs mirrors must agree
// exactly with the grid totals after any concurrent schedule — run under
// -race this also proves the locking. Deltas are measured against other
// tests' contributions to the global obs registry.
func TestObsPublishOrderingUnderConcurrentCollectives(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	baseMsgs := obs.MetricValueOf("dist.comm.msgs")
	baseBytes := obs.MetricValueOf("dist.comm.bytes")
	baseRedists := obs.MetricValueOf("dist.redistributions")
	baseOps := [NumOps]float64{}
	for op := Op(0); op < NumOps; op++ {
		baseOps[op] = obs.MetricValueOf("dist.modeled." + op.String() + "_seconds")
	}

	g := NewGrid(Stampede2(64))
	const workers = 8
	const iters = 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				g.Bcast(int64(128 + w))
				g.Gather(int64(4096 + i))
				g.Allgather(2048)
				g.Allreduce(int64(64 * (w + 1)))
				g.AllToAll(int64(8192 + i + w))
			}
		}(w)
	}
	wg.Wait()

	s := g.Snapshot()
	if got := obs.MetricValueOf("dist.comm.msgs") - baseMsgs; got != float64(s.Msgs) {
		t.Errorf("obs msgs delta = %v, grid msgs = %d", got, s.Msgs)
	}
	if got := obs.MetricValueOf("dist.comm.bytes") - baseBytes; got != float64(s.Bytes) {
		t.Errorf("obs bytes delta = %v, grid bytes = %d", got, s.Bytes)
	}
	if got := obs.MetricValueOf("dist.redistributions") - baseRedists; got != float64(s.Redistributions) {
		t.Errorf("obs redistributions delta = %v, grid = %d", got, s.Redistributions)
	}
	// Per-op modeled seconds: the grid holds integer picoseconds (each
	// addComm rounds lat and bw once) while the obs counter sums floats,
	// so the two can differ by up to 1 ps per rounded addend.
	tol := 2e-12 * float64(workers*iters)
	for _, os := range g.OpBreakdown() {
		got := obs.MetricValueOf("dist.modeled."+os.Op.String()+"_seconds") - baseOps[os.Op]
		if math.Abs(got-os.ModeledSeconds) > tol {
			t.Errorf("op %v: obs modeled seconds delta = %v, grid = %v", os.Op, got, os.ModeledSeconds)
		}
	}
}
