// Package dist implements a simulated distributed-memory runtime that
// stands in for the Cyclops/MPI layer the paper runs on Stampede2
// (see DESIGN.md, "Substitutions"). Tensors are row-block distributed
// across P ranks; the distributed GEMM that every einsum lowers to is
// actually executed as an SPMD computation (one goroutine per rank
// computing its own block after an allgather of the stationary operand),
// and every collective is metered with an alpha-beta communication model
// plus a gamma flop model. The modeled time of a region is therefore a
// function of the measured message, byte, and flop counts of the real
// execution — which is exactly what the paper's scaling experiments
// compare between algorithms (Gram orthogonalization vs. distributed
// reshape, IBMPS vs. BMPS).
package dist

import (
	"math"
)

// Machine describes the modeled parallel machine. The defaults are
// calibrated to Stampede2-class Intel Xeon Phi (KNL) nodes: 64 usable
// cores per node, ~2 Gflop/s sustained per core on complex GEMM, ~1 us
// MPI latency and ~1 GB/s per-rank effective inter-node bandwidth.
type Machine struct {
	// Ranks is the number of SPMD ranks (cores in the paper's flat
	// MPI-style decomposition).
	Ranks int
	// CoresPerNode controls when communication is intra-node (cheap
	// shared-memory transfers) versus inter-node.
	CoresPerNode int
	// Alpha is the per-message latency in seconds.
	Alpha float64
	// Beta is the per-byte transfer time in seconds (inverse bandwidth).
	Beta float64
	// Gamma is the per-complex-flop compute time in seconds. One complex
	// fused multiply-add is counted as a single flop unit.
	Gamma float64
	// IntraNodeFactor scales Alpha and Beta when all ranks fit on one node.
	IntraNodeFactor float64
}

// Stampede2 returns a machine model with the given total rank count on
// KNL-like nodes of 64 cores.
//
// Calibration note: the paper's full-size runs (bond dimensions up to
// ~300, site tensors of 10^8+ elements) sit firmly in the bandwidth- and
// compute-dominated regime; latency is negligible there. Our experiments
// run the same algorithms at bond dimensions scaled down for one core,
// where real MPI latency (~2 us) would swamp every other term and hide
// exactly the effects the paper measures. Alpha and Beta are therefore
// chosen so the scaled-down tensor sizes reproduce the full-size regime:
// per-byte cost dominates per-message cost for the tensors these
// experiments move, keeping the algorithm ranking a function of
// communication volume and flops, as on the real machine.
func Stampede2(ranks int) Machine {
	return Machine{
		Ranks:           ranks,
		CoresPerNode:    64,
		Alpha:           1e-8,
		Beta:            2e-9,
		Gamma:           1.0 / 2e9,
		IntraNodeFactor: 0.05,
	}
}

// Nodes returns the number of nodes the rank count occupies.
func (m Machine) Nodes() int {
	if m.CoresPerNode <= 0 {
		return 1
	}
	return (m.Ranks + m.CoresPerNode - 1) / m.CoresPerNode
}

// commFactor scales communication cost by the fraction of traffic that
// crosses node boundaries: with ranks spread uniformly over the nodes,
// ~1/nodes of pairwise traffic stays on-node and costs only
// IntraNodeFactor of the inter-node price.
func (m Machine) commFactor() float64 {
	nodes := float64(m.Nodes())
	intraFrac := 1.0 / nodes
	return intraFrac*m.IntraNodeFactor + (1 - intraFrac)
}

func (m Machine) alphaEff() float64 { return m.Alpha * m.commFactor() }

func (m Machine) betaEff() float64 { return m.Beta * m.commFactor() }

func log2ceil(p int) float64 {
	if p <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(p)))
}

// Collective cost formulas (standard alpha-beta models; see e.g. Thakur &
// Gropp). totalBytes is the aggregate payload across all ranks.

func (m Machine) allgatherSeconds(totalBytes int64) (lat, bw float64) {
	p := float64(m.Ranks)
	return m.alphaEff() * log2ceil(m.Ranks), m.betaEff() * float64(totalBytes) * (p - 1) / p
}

func (m Machine) alltoallSeconds(totalBytes int64) (lat, bw float64) {
	// Personalized all-to-all of a tensor of totalBytes: each rank sends
	// and receives only its totalBytes/p share, but pays p-1 message
	// startups.
	p := float64(m.Ranks)
	return m.alphaEff() * (p - 1), m.betaEff() * float64(totalBytes) / p
}

func (m Machine) gatherSeconds(totalBytes int64) (lat, bw float64) {
	p := float64(m.Ranks)
	return m.alphaEff() * log2ceil(m.Ranks), m.betaEff() * float64(totalBytes) * (p - 1) / p
}

func (m Machine) bcastSeconds(bytes int64) (lat, bw float64) {
	l := log2ceil(m.Ranks)
	return m.alphaEff() * l, m.betaEff() * float64(bytes) * l
}
