package dist

import (
	"gokoala/internal/obs"
)

// Bridge from the grid's alpha-beta-gamma accounting into the obs
// metrics layer: every metered collective and flop credit also advances
// the global dist.* counters (no-ops while obs is disabled), and
// TraceRegion turns a Stats delta into span annotations so modeled
// seconds appear next to measured seconds in traces and phase summaries.
//
// The dist.modeled.* counters are deterministic (functions of the
// machine model and the metered operation counts); the dist.measured.*
// counters are real-transport wall clock and are excluded from the
// deterministic diff/gate surface (obsfile.DeterministicMetric).
var (
	obsCommMsgs  = obs.NewCounter("dist.comm.msgs")
	obsCommBytes = obs.NewCounter("dist.comm.bytes")
	obsRedists   = obs.NewCounter("dist.redistributions")
	obsCommSecs  = obs.NewFloatCounter("dist.modeled.comm_seconds")
	obsCompSecs  = obs.NewFloatCounter("dist.modeled.comp_seconds")

	obsMeasSecs = obs.NewFloatCounter("dist.measured.comm_seconds")
	obsMeasOps  = obs.NewCounter("dist.measured.comm_ops")

	// Per-collective modeled/measured split, indexed by Op; the names
	// feed the modeled-vs-measured table of koala-obs report.
	obsModeledOp  [NumOps]*obs.FloatCounter
	obsMeasOpSecs [NumOps]*obs.FloatCounter
	obsMeasOpN    [NumOps]*obs.Counter
)

func init() {
	for op := Op(0); op < NumOps; op++ {
		obsModeledOp[op] = obs.NewFloatCounter("dist.modeled." + op.String() + "_seconds")
		if op == OpGemm {
			continue // modeled-only: no collective realization
		}
		obsMeasOpSecs[op] = obs.NewFloatCounter("dist.measured." + op.String() + "_seconds")
		obsMeasOpN[op] = obs.NewCounter("dist.measured." + op.String() + "_ops")
	}
}

// observeComm mirrors one addComm call into the obs counters. Called
// with the grid mutex held so the published samples advance in the same
// order as the grid counters they describe (see addComm).
func observeComm(op Op, msgs, bytes int64, secs float64, redists int64) {
	if !obs.Enabled() {
		return
	}
	obsCommMsgs.Add(msgs)
	obsCommBytes.Add(bytes)
	obsCommSecs.Add(secs)
	obsModeledOp[op].Add(secs)
	if redists != 0 {
		obsRedists.Add(redists)
	}
}

// observeMeasured mirrors one realized collective's wall clock into the
// obs counters. Called with the grid mutex held, like observeComm.
func observeMeasured(op Op, secs float64) {
	if !obs.Enabled() {
		return
	}
	obsMeasSecs.Add(secs)
	obsMeasOps.Add(1)
	obsMeasOpSecs[op].Add(secs)
	obsMeasOpN[op].Add(1)
}

// observeComp mirrors modeled compute seconds into the obs counters.
func observeComp(secs float64) {
	if !obs.Enabled() {
		return
	}
	obsCompSecs.Add(secs)
}

// AnnotateSpan attaches the Stats delta since before to the span: the
// modeled wall seconds, their communication/computation split, the
// measured message/byte counts of the region, and — when a real
// transport is attached — the measured collective wall clock beside the
// modeled seconds.
func (g *Grid) AnnotateSpan(sp *obs.Span, before Stats) {
	if sp == nil {
		return
	}
	d := g.Snapshot().Sub(before)
	sp.SetFloat("modeled_s", d.ModeledSeconds())
	sp.SetFloat("modeled_comm_s", d.CommSeconds())
	sp.SetFloat("modeled_comp_s", d.CompSeconds)
	sp.SetInt("comm_bytes", d.Bytes)
	sp.SetInt("comm_msgs", d.Msgs)
	sp.SetInt("redistributions", d.Redistributions)
	if d.MeasuredOps > 0 {
		sp.SetFloat("measured_comm_s", d.MeasuredCommSeconds)
		sp.SetInt("measured_ops", d.MeasuredOps)
	}
}

// TraceRegion runs f inside a span named name, annotated with the grid's
// machine-model delta for the region. While obs is disabled it just
// calls f.
func (g *Grid) TraceRegion(name string, f func()) {
	if !obs.Enabled() {
		f()
		return
	}
	sp := obs.Start(name)
	before := g.Snapshot()
	f()
	g.AnnotateSpan(sp, before)
	sp.End()
}
