package dist

import (
	"gokoala/internal/obs"
)

// Bridge from the grid's alpha-beta-gamma accounting into the obs
// metrics layer: every metered collective and flop credit also advances
// the global dist.* counters (no-ops while obs is disabled), and
// TraceRegion turns a Stats delta into span annotations so modeled
// seconds appear next to measured seconds in traces and phase summaries.
var (
	obsCommMsgs  = obs.NewCounter("dist.comm.msgs")
	obsCommBytes = obs.NewCounter("dist.comm.bytes")
	obsRedists   = obs.NewCounter("dist.redistributions")
	obsCommSecs  = obs.NewFloatCounter("dist.modeled.comm_seconds")
	obsCompSecs  = obs.NewFloatCounter("dist.modeled.comp_seconds")
)

// observeComm mirrors one addComm call into the obs counters.
func observeComm(msgs, bytes int64, secs float64) {
	if !obs.Enabled() {
		return
	}
	obsCommMsgs.Add(msgs)
	obsCommBytes.Add(bytes)
	obsCommSecs.Add(secs)
}

// observeComp mirrors modeled compute seconds into the obs counters.
func observeComp(secs float64) {
	if !obs.Enabled() {
		return
	}
	obsCompSecs.Add(secs)
}

// AnnotateSpan attaches the Stats delta since before to the span: the
// modeled wall seconds, their communication/computation split, and the
// measured message/byte counts of the region.
func (g *Grid) AnnotateSpan(sp *obs.Span, before Stats) {
	if sp == nil {
		return
	}
	d := g.Snapshot().Sub(before)
	sp.SetFloat("modeled_s", d.ModeledSeconds())
	sp.SetFloat("modeled_comm_s", d.CommSeconds())
	sp.SetFloat("modeled_comp_s", d.CompSeconds)
	sp.SetInt("comm_bytes", d.Bytes)
	sp.SetInt("comm_msgs", d.Msgs)
	sp.SetInt("redistributions", d.Redistributions)
}

// TraceRegion runs f inside a span named name, annotated with the grid's
// machine-model delta for the region. While obs is disabled it just
// calls f.
func (g *Grid) TraceRegion(name string, f func()) {
	if !obs.Enabled() {
		f()
		return
	}
	sp := obs.Start(name)
	before := g.Snapshot()
	f()
	g.AnnotateSpan(sp, before)
	sp.End()
}
