package distnet

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"gokoala/internal/dist"
	"gokoala/internal/obs"
	"gokoala/internal/telemetry"
)

// MaybeRankMain turns the current process into a rank endpoint when the
// KOALA_RANK_MODE environment variable is set (the hidden koala-rank
// mode: the driver re-execs its own binary for ranks 1..P-1). It never
// returns in that case — the rank loop runs until the driver sends bye
// or its control connection drops, then the process exits. In a normal
// invocation it is a no-op. Every CLI entry point calls this first,
// before flag parsing, so any koala binary can serve as the rank
// executable.
func MaybeRankMain() {
	if os.Getenv("KOALA_RANK_MODE") == "" {
		return
	}
	if err := rankMain(); err != nil {
		fmt.Fprintf(os.Stderr, "koala-rank: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

type rankEnv struct {
	rank     int
	ranks    int
	network  string
	addr     string // driver (rank 0) listen address
	dir      string // unix socket dir
	token    string
	timeout  time.Duration
	dieAfter int    // KOALA_RANK_DIE_AFTER: exit after N commands (fault injection)
	traceDir string // KOALA_RANK_TRACE_DIR: per-rank JSONL trace capture
	listen   bool   // KOALA_RANK_LISTEN: serve /metrics on 127.0.0.1:0
}

func parseRankEnv() (rankEnv, error) {
	var e rankEnv
	var err error
	if e.rank, err = strconv.Atoi(os.Getenv("KOALA_RANK")); err != nil || e.rank < 1 {
		return e, fmt.Errorf("bad KOALA_RANK %q", os.Getenv("KOALA_RANK"))
	}
	if e.ranks, err = strconv.Atoi(os.Getenv("KOALA_RANK_N")); err != nil || e.ranks <= e.rank {
		return e, fmt.Errorf("bad KOALA_RANK_N %q", os.Getenv("KOALA_RANK_N"))
	}
	e.network = os.Getenv("KOALA_RANK_NET")
	if e.network != "unix" && e.network != "tcp" {
		return e, fmt.Errorf("bad KOALA_RANK_NET %q", e.network)
	}
	e.addr = os.Getenv("KOALA_RANK_ADDR")
	e.dir = os.Getenv("KOALA_RANK_DIR")
	e.token = os.Getenv("KOALA_RANK_TOKEN")
	if e.addr == "" || e.token == "" {
		return e, fmt.Errorf("missing KOALA_RANK_ADDR/KOALA_RANK_TOKEN")
	}
	e.timeout = 30 * time.Second
	if s := os.Getenv("KOALA_RANK_TIMEOUT"); s != "" {
		if d, err := time.ParseDuration(s); err == nil && d > 0 {
			e.timeout = d
		}
	}
	e.dieAfter = -1
	if s := os.Getenv("KOALA_RANK_DIE_AFTER"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v >= 0 {
			e.dieAfter = v
		}
	}
	e.traceDir = os.Getenv("KOALA_RANK_TRACE_DIR")
	e.listen = os.Getenv("KOALA_RANK_LISTEN") != ""
	return e, nil
}

// rankObs is the child's observability state: the trace sink capturing
// this rank's spans, its telemetry listener, and a flush that is safe
// to run from the SIGTERM path while the command loop is mid-span.
type rankObs struct {
	flushOnce sync.Once
	file      *os.File
	srv       interface{ Close() error }

	mu    sync.Mutex
	stats childStats // per-op measured totals, reported in every pong
}

// setup enables trace capture and the per-rank /metrics listener as the
// driver requested via env. Best-effort by design: a rank that cannot
// open its trace file still serves collectives.
func (ro *rankObs) setup(e rankEnv) {
	ro.stats.PID = os.Getpid()
	if e.traceDir != "" {
		path := filepath.Join(e.traceDir, fmt.Sprintf("rank%d.jsonl", e.rank))
		if f, err := os.Create(path); err == nil {
			ro.file = f
			sink := obs.NewJSONLSink(f)
			sink.SetRank(e.rank)
			obs.Enable(sink)
		} else {
			fmt.Fprintf(os.Stderr, "koala-rank %d: trace capture: %v\n", e.rank, err)
		}
	}
	if e.listen {
		if srv, err := telemetry.Serve("127.0.0.1:0"); err == nil {
			ro.srv = srv
			telemetry.SetRunInfo("rank", map[string]string{
				"rank":  strconv.Itoa(e.rank),
				"ranks": strconv.Itoa(e.ranks),
			})
			if e.traceDir != "" {
				addr := filepath.Join(e.traceDir, fmt.Sprintf("rank%d.addr", e.rank))
				if err := os.WriteFile(addr, []byte(srv.Addr()), 0o666); err != nil {
					fmt.Fprintf(os.Stderr, "koala-rank %d: write addr file: %v\n", e.rank, err)
				}
			}
		} else {
			fmt.Fprintf(os.Stderr, "koala-rank %d: telemetry listen: %v\n", e.rank, err)
		}
	}
}

// flush drains the trace sink (appending the metrics record) and syncs
// the file so the log is complete on disk. Idempotent; called on every
// exit path that is allowed to take time — the graceful bye/EOF return
// and the SIGTERM handler — but not on fault-injected crashes.
func (ro *rankObs) flush() {
	ro.flushOnce.Do(func() {
		obs.Disable()
		if ro.file != nil {
			ro.file.Sync()
			ro.file.Close()
		}
		if ro.srv != nil {
			ro.srv.Close()
		}
	})
}

// handleSignals flushes and exits on SIGTERM/SIGINT: the driver's
// teardown escalation sends SIGTERM before SIGKILL exactly so in-flight
// spans reach the trace file.
func (ro *rankObs) handleSignals() {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		<-ch
		ro.flush()
		os.Exit(0)
	}()
}

// record folds one served collective into the pong-reported stats and
// the local obs/telemetry planes.
func (ro *rankObs) record(op dist.Op, secs float64) {
	ro.mu.Lock()
	if ro.stats.Ops == nil {
		ro.stats.Ops = map[string]dist.OpMeasured{}
	}
	m := ro.stats.Ops[op.String()]
	m.Ops++
	m.Seconds += secs
	ro.stats.Ops[op.String()] = m
	ro.mu.Unlock()
	dist.RecordMeasured(op, secs)
	telemetry.Observe("dist_measured_comm_seconds", secs,
		telemetry.Label{Key: "op", Value: op.String()})
}

// pongBody renders the reply to a sync ping: receive/send timestamps
// followed by the JSON per-op stats.
func (ro *rankObs) pongBody(t2 int64) []byte {
	ro.mu.Lock()
	stats, err := json.Marshal(&ro.stats)
	ro.mu.Unlock()
	if err != nil {
		stats = nil
	}
	body := make([]byte, 16, 16+len(stats))
	binary.LittleEndian.PutUint64(body[0:8], uint64(t2))
	// t3 is stamped immediately before the write, after the (cheap but
	// nonzero) stats marshal, to keep the NTP midpoint honest.
	binary.LittleEndian.PutUint64(body[8:16], uint64(time.Now().UnixNano()))
	return append(body, stats...)
}

func rankMain() error {
	e, err := parseRankEnv()
	if err != nil {
		return err
	}

	// Observability first, so even handshake-phase failures leave a
	// valid (if empty) trace log, and SIGTERM always flushes.
	ro := &rankObs{}
	ro.setup(e)
	defer ro.flush()
	ro.handleSignals()

	// Listen for peers with a higher rank before announcing ourselves,
	// so the driver can hand out an address that already accepts.
	var ln net.Listener
	switch e.network {
	case "unix":
		ln, err = net.Listen("unix", filepath.Join(e.dir, fmt.Sprintf("r%d.sock", e.rank)))
	case "tcp":
		ln, err = net.Listen("tcp", "127.0.0.1:0")
	}
	if err != nil {
		return fmt.Errorf("rank %d listen: %w", e.rank, err)
	}
	defer ln.Close()

	// Control connection to the driver: hello(token + own address),
	// then the peer address list.
	raw, err := dialRetry(e.network, e.addr, e.timeout)
	if err != nil {
		return fmt.Errorf("rank %d dial driver: %w", e.rank, err)
	}
	control := newConn(raw, e.timeout)
	hello := []byte(e.token + "\n" + ln.Addr().String())
	if err := control.writeFrame(ftHello, 0, uint16(e.rank), 0, hello); err != nil {
		return fmt.Errorf("rank %d hello: %w", e.rank, err)
	}
	pf, err := control.expectFrame(ftPeers, 0)
	if err != nil {
		return fmt.Errorf("rank %d peers: %w", e.rank, err)
	}
	addrs := strings.Split(string(pf.body), "\n")
	if len(addrs) != e.ranks {
		return fmt.Errorf("rank %d: peer list has %d entries, want %d", e.rank, len(addrs), e.ranks)
	}

	// Mesh wiring: dial every lower rank (they listen), accept every
	// higher rank (we listen). Rank 0's link is the control connection.
	conns := make([]*conn, e.ranks)
	conns[0] = control
	type dialRes struct {
		r   int
		c   *conn
		err error
	}
	ch := make(chan dialRes, e.ranks)
	for r := 1; r < e.rank; r++ {
		go func(r int) {
			raw, err := dialRetry(e.network, addrs[r], e.timeout)
			if err != nil {
				ch <- dialRes{r: r, err: err}
				return
			}
			c := newConn(raw, e.timeout)
			if err := c.writeFrame(ftHello, 0, uint16(e.rank), 0, []byte(e.token+"\n-")); err != nil {
				ch <- dialRes{r: r, err: err}
				return
			}
			ch <- dialRes{r: r, c: c}
		}(r)
	}
	go func() {
		for i := e.rank + 1; i < e.ranks; i++ {
			raw, err := ln.Accept()
			if err != nil {
				ch <- dialRes{r: -1, err: err}
				return
			}
			c := newConn(raw, e.timeout)
			f, err := c.expectFrame(ftHello, 0)
			if err != nil {
				ch <- dialRes{r: -1, err: err}
				return
			}
			tok := strings.SplitN(string(f.body), "\n", 2)
			if len(tok) != 2 || tok[0] != e.token {
				ch <- dialRes{r: -1, err: fmt.Errorf("peer hello rejected: bad token")}
				return
			}
			ch <- dialRes{r: int(f.from), c: c}
		}
	}()
	need := e.ranks - 2 // everyone but self and rank 0
	for i := 0; i < need; i++ {
		res := <-ch
		if res.err != nil {
			return fmt.Errorf("rank %d mesh: %w", e.rank, res.err)
		}
		if res.r < 1 || res.r >= e.ranks || conns[res.r] != nil {
			return fmt.Errorf("rank %d mesh: invalid peer rank %d", e.rank, res.r)
		}
		conns[res.r] = res.c
	}

	if err := control.writeFrame(ftReady, 0, uint16(e.rank), 0, nil); err != nil {
		return fmt.Errorf("rank %d ready: %w", e.rank, err)
	}

	n := &node{rank: e.rank, ranks: e.ranks, conns: conns, maxFrame: maxFrameEnv()}

	// Command loop: block (no deadline) on the driver's next frame — the
	// driver may compute for a long time between collectives, and a dead
	// driver surfaces as EOF either way.
	done := 0
	for {
		f, err := control.readFrame(true)
		if err != nil {
			// Driver gone: EOF/reset is normal teardown, exit quietly.
			return nil
		}
		switch f.typ {
		case ftBye:
			return nil
		case ftPing:
			// Clock-sync/heartbeat: t2 is the receipt stamp; pongBody
			// stamps t3 right before the write.
			t2 := time.Now().UnixNano()
			if err := control.writeFrame(ftPong, 0, uint16(e.rank), f.seq, ro.pongBody(t2)); err != nil {
				return fmt.Errorf("rank %d pong: %w", e.rank, err)
			}
		case ftCmd:
			total, err := cmdTotal(f.body)
			if err != nil {
				return fmt.Errorf("rank %d: %w", e.rank, err)
			}
			op := dist.Op(f.op)
			sp := obs.Start(spanCollective)
			sp.SetStr("op", op.String()).SetInt("seq", int64(f.seq)).SetInt("bytes", total)
			start := time.Now()
			runErr := n.run(op, total, f.seq, sp)
			secs := time.Since(start).Seconds()
			sp.SetFloat("measured_s", secs)
			sp.End()
			if runErr != nil {
				msg := fmt.Sprintf("rank %d %v: %v", e.rank, op, runErr)
				control.writeFrame(ftErr, f.op, uint16(e.rank), f.seq, []byte(msg))
				return fmt.Errorf("%s", msg)
			}
			ro.record(op, secs)
			done++
			if e.dieAfter >= 0 && done >= e.dieAfter {
				// Fault injection: die without acking, mid-job — and
				// without flushing, like a real crash.
				os.Exit(3)
			}
			if err := control.writeFrame(ftAck, f.op, uint16(e.rank), f.seq, nil); err != nil {
				return fmt.Errorf("rank %d ack: %w", e.rank, err)
			}
		default:
			return fmt.Errorf("rank %d: unexpected frame type %d", e.rank, f.typ)
		}
	}
}

func maxFrameEnv() int {
	if s := os.Getenv("KOALA_RANK_MAXFRAME"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 4 << 20
}

// dialRetry dials with bounded retry: peers come up asynchronously, so
// early connection refusals are expected and retried until the budget
// runs out.
func dialRetry(network, addr string, budget time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(budget)
	delay := 2 * time.Millisecond
	for {
		c, err := net.DialTimeout(network, addr, time.Until(deadline))
		if err == nil {
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(delay)
		if delay < 100*time.Millisecond {
			delay *= 2
		}
	}
}
