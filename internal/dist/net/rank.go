package distnet

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"gokoala/internal/dist"
)

// MaybeRankMain turns the current process into a rank endpoint when the
// KOALA_RANK_MODE environment variable is set (the hidden koala-rank
// mode: the driver re-execs its own binary for ranks 1..P-1). It never
// returns in that case — the rank loop runs until the driver sends bye
// or its control connection drops, then the process exits. In a normal
// invocation it is a no-op. Every CLI entry point calls this first,
// before flag parsing, so any koala binary can serve as the rank
// executable.
func MaybeRankMain() {
	if os.Getenv("KOALA_RANK_MODE") == "" {
		return
	}
	if err := rankMain(); err != nil {
		fmt.Fprintf(os.Stderr, "koala-rank: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

type rankEnv struct {
	rank     int
	ranks    int
	network  string
	addr     string // driver (rank 0) listen address
	dir      string // unix socket dir
	token    string
	timeout  time.Duration
	dieAfter int // KOALA_RANK_DIE_AFTER: exit after N commands (fault injection)
}

func parseRankEnv() (rankEnv, error) {
	var e rankEnv
	var err error
	if e.rank, err = strconv.Atoi(os.Getenv("KOALA_RANK")); err != nil || e.rank < 1 {
		return e, fmt.Errorf("bad KOALA_RANK %q", os.Getenv("KOALA_RANK"))
	}
	if e.ranks, err = strconv.Atoi(os.Getenv("KOALA_RANK_N")); err != nil || e.ranks <= e.rank {
		return e, fmt.Errorf("bad KOALA_RANK_N %q", os.Getenv("KOALA_RANK_N"))
	}
	e.network = os.Getenv("KOALA_RANK_NET")
	if e.network != "unix" && e.network != "tcp" {
		return e, fmt.Errorf("bad KOALA_RANK_NET %q", e.network)
	}
	e.addr = os.Getenv("KOALA_RANK_ADDR")
	e.dir = os.Getenv("KOALA_RANK_DIR")
	e.token = os.Getenv("KOALA_RANK_TOKEN")
	if e.addr == "" || e.token == "" {
		return e, fmt.Errorf("missing KOALA_RANK_ADDR/KOALA_RANK_TOKEN")
	}
	e.timeout = 30 * time.Second
	if s := os.Getenv("KOALA_RANK_TIMEOUT"); s != "" {
		if d, err := time.ParseDuration(s); err == nil && d > 0 {
			e.timeout = d
		}
	}
	e.dieAfter = -1
	if s := os.Getenv("KOALA_RANK_DIE_AFTER"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v >= 0 {
			e.dieAfter = v
		}
	}
	return e, nil
}

func rankMain() error {
	e, err := parseRankEnv()
	if err != nil {
		return err
	}

	// Listen for peers with a higher rank before announcing ourselves,
	// so the driver can hand out an address that already accepts.
	var ln net.Listener
	switch e.network {
	case "unix":
		ln, err = net.Listen("unix", filepath.Join(e.dir, fmt.Sprintf("r%d.sock", e.rank)))
	case "tcp":
		ln, err = net.Listen("tcp", "127.0.0.1:0")
	}
	if err != nil {
		return fmt.Errorf("rank %d listen: %w", e.rank, err)
	}
	defer ln.Close()

	// Control connection to the driver: hello(token + own address),
	// then the peer address list.
	raw, err := dialRetry(e.network, e.addr, e.timeout)
	if err != nil {
		return fmt.Errorf("rank %d dial driver: %w", e.rank, err)
	}
	control := newConn(raw, e.timeout)
	hello := []byte(e.token + "\n" + ln.Addr().String())
	if err := control.writeFrame(ftHello, 0, uint16(e.rank), 0, hello); err != nil {
		return fmt.Errorf("rank %d hello: %w", e.rank, err)
	}
	pf, err := control.expectFrame(ftPeers, 0)
	if err != nil {
		return fmt.Errorf("rank %d peers: %w", e.rank, err)
	}
	addrs := strings.Split(string(pf.body), "\n")
	if len(addrs) != e.ranks {
		return fmt.Errorf("rank %d: peer list has %d entries, want %d", e.rank, len(addrs), e.ranks)
	}

	// Mesh wiring: dial every lower rank (they listen), accept every
	// higher rank (we listen). Rank 0's link is the control connection.
	conns := make([]*conn, e.ranks)
	conns[0] = control
	type dialRes struct {
		r   int
		c   *conn
		err error
	}
	ch := make(chan dialRes, e.ranks)
	for r := 1; r < e.rank; r++ {
		go func(r int) {
			raw, err := dialRetry(e.network, addrs[r], e.timeout)
			if err != nil {
				ch <- dialRes{r: r, err: err}
				return
			}
			c := newConn(raw, e.timeout)
			if err := c.writeFrame(ftHello, 0, uint16(e.rank), 0, []byte(e.token+"\n-")); err != nil {
				ch <- dialRes{r: r, err: err}
				return
			}
			ch <- dialRes{r: r, c: c}
		}(r)
	}
	go func() {
		for i := e.rank + 1; i < e.ranks; i++ {
			raw, err := ln.Accept()
			if err != nil {
				ch <- dialRes{r: -1, err: err}
				return
			}
			c := newConn(raw, e.timeout)
			f, err := c.expectFrame(ftHello, 0)
			if err != nil {
				ch <- dialRes{r: -1, err: err}
				return
			}
			tok := strings.SplitN(string(f.body), "\n", 2)
			if len(tok) != 2 || tok[0] != e.token {
				ch <- dialRes{r: -1, err: fmt.Errorf("peer hello rejected: bad token")}
				return
			}
			ch <- dialRes{r: int(f.from), c: c}
		}
	}()
	need := e.ranks - 2 // everyone but self and rank 0
	for i := 0; i < need; i++ {
		res := <-ch
		if res.err != nil {
			return fmt.Errorf("rank %d mesh: %w", e.rank, res.err)
		}
		if res.r < 1 || res.r >= e.ranks || conns[res.r] != nil {
			return fmt.Errorf("rank %d mesh: invalid peer rank %d", e.rank, res.r)
		}
		conns[res.r] = res.c
	}

	if err := control.writeFrame(ftReady, 0, uint16(e.rank), 0, nil); err != nil {
		return fmt.Errorf("rank %d ready: %w", e.rank, err)
	}

	n := &node{rank: e.rank, ranks: e.ranks, conns: conns, maxFrame: maxFrameEnv()}

	// Command loop: block (no deadline) on the driver's next frame — the
	// driver may compute for a long time between collectives, and a dead
	// driver surfaces as EOF either way.
	done := 0
	for {
		f, err := control.readFrame(true)
		if err != nil {
			// Driver gone: EOF/reset is normal teardown, exit quietly.
			return nil
		}
		switch f.typ {
		case ftBye:
			return nil
		case ftCmd:
			total, err := cmdTotal(f.body)
			if err != nil {
				return fmt.Errorf("rank %d: %w", e.rank, err)
			}
			if err := n.run(dist.Op(f.op), total, f.seq); err != nil {
				msg := fmt.Sprintf("rank %d %v: %v", e.rank, dist.Op(f.op), err)
				control.writeFrame(ftErr, f.op, uint16(e.rank), f.seq, []byte(msg))
				return fmt.Errorf("%s", msg)
			}
			done++
			if e.dieAfter >= 0 && done >= e.dieAfter {
				// Fault injection: die without acking, mid-job.
				os.Exit(3)
			}
			if err := control.writeFrame(ftAck, f.op, uint16(e.rank), f.seq, nil); err != nil {
				return fmt.Errorf("rank %d ack: %w", e.rank, err)
			}
		default:
			return fmt.Errorf("rank %d: unexpected frame type %d", e.rank, f.typ)
		}
	}
}

func maxFrameEnv() int {
	if s := os.Getenv("KOALA_RANK_MAXFRAME"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 4 << 20
}

// dialRetry dials with bounded retry: peers come up asynchronously, so
// early connection refusals are expected and retried until the budget
// runs out.
func dialRetry(network, addr string, budget time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(budget)
	delay := 2 * time.Millisecond
	for {
		c, err := net.DialTimeout(network, addr, time.Until(deadline))
		if err == nil {
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(delay)
		if delay < 100*time.Millisecond {
			delay *= 2
		}
	}
}
