package distnet

import (
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"gokoala/internal/dist"
	"gokoala/internal/obs"
	"gokoala/internal/obsfile"
	"gokoala/internal/telemetry"
)

// driverSink mirrors what cliutil.EnableRankTrace does for the parent
// process: route the driver's own spans to TraceDir/rank0.jsonl so the
// merge sees all ranks, not just the children.
func driverSink(t *testing.T, dir string) {
	t.Helper()
	f, err := os.Create(filepath.Join(dir, "rank0.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.NewJSONLSink(f)
	sink.SetRank(0)
	obs.Enable(sink)
	t.Cleanup(func() {
		if obs.Enabled() {
			obs.Disable()
		}
		f.Close()
	})
}

// End-to-end tentpole check: a multi-rank run with TraceDir set yields
// per-rank JSONL logs plus a manifest, and MergeDir aligns them into one
// trace with at least one matched send→recv flow per collective op.
func TestTraceCaptureAndMerge(t *testing.T) {
	const ranks = 3
	dir := t.TempDir()
	driverSink(t, dir)

	tr := startTB(t, Options{Ranks: ranks, Network: "unix", TraceDir: dir})
	for _, op := range dist.Ops() {
		if _, err := tr.Run(op, 1<<14); err != nil {
			t.Fatalf("%v: %v", op, err)
		}
	}

	// Clock sync ran at handshake and on every stats pull.
	rs := tr.RankStats()
	if len(rs) != ranks {
		t.Fatalf("RankStats len = %d, want %d", len(rs), ranks)
	}
	if rs[0].Rank != 0 || rs[0].PID != os.Getpid() || rs[0].MeasuredOps == 0 {
		t.Errorf("driver row = %+v, want rank 0, own pid, measured ops", rs[0])
	}
	for _, r := range rs[1:] {
		if r.PID <= 0 {
			t.Errorf("rank %d: pid = %d, want > 0", r.Rank, r.PID)
		}
		if r.RTTNS <= 0 {
			t.Errorf("rank %d: rtt = %d, want > 0", r.Rank, r.RTTNS)
		}
		if r.MeasuredOps == 0 || r.MeasuredCommSeconds <= 0 {
			t.Errorf("rank %d: measured ops=%d secs=%g, want > 0", r.Rank, r.MeasuredOps, r.MeasuredCommSeconds)
		}
	}

	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := obs.Disable(); err != nil { // flush rank0.jsonl before merging
		t.Fatalf("obs.Disable: %v", err)
	}

	man, err := obsfile.ReadManifest(dir)
	if err != nil {
		t.Fatalf("ReadManifest: %v", err)
	}
	if man.Ranks != ranks || len(man.RankInfo) != ranks {
		t.Fatalf("manifest ranks = %d/%d entries, want %d", man.Ranks, len(man.RankInfo), ranks)
	}
	for _, ri := range man.RankInfo[1:] {
		if ri.PID <= 0 || ri.RTTNS <= 0 {
			t.Errorf("manifest rank %d: pid=%d rtt=%d, want > 0", ri.Rank, ri.PID, ri.RTTNS)
		}
	}

	m, err := obsfile.MergeDir(dir)
	if err != nil {
		t.Fatalf("MergeDir: %v", err)
	}
	if len(m.MissingRanks) != 0 {
		t.Fatalf("missing ranks %v, want none", m.MissingRanks)
	}
	if len(m.Ranks) != ranks {
		t.Fatalf("merged ranks = %v, want %d of them", m.Ranks, ranks)
	}
	for _, op := range dist.Ops() {
		if m.PairsByOp[op.String()] == 0 {
			t.Errorf("op %s: no matched send→recv flow pairs (got %v)", op, m.PairsByOp)
		}
	}
	if m.MaxResidualNS <= 0 {
		t.Errorf("max residual skew = %d ns, want > 0 (rtt/2 bound)", m.MaxResidualNS)
	}
	seen := map[int]bool{}
	for _, s := range m.Trace.Spans {
		if v, ok := s.AttrFloat("rank"); ok {
			seen[int(v)] = true
		}
	}
	for r := 0; r < ranks; r++ {
		if !seen[r] {
			t.Errorf("merged trace has no spans tagged rank %d", r)
		}
	}
	util := m.Trace.RankUtilization()
	if len(util) != ranks {
		t.Fatalf("utilization rows = %d, want %d", len(util), ranks)
	}
	for _, u := range util[1:] {
		if u.CommS <= 0 {
			t.Errorf("rank %d: comm seconds = %g, want > 0", u.Rank, u.CommS)
		}
	}
	if rows := m.Trace.RankMeasuredOps(); len(rows) == 0 {
		t.Error("merged trace has no per-rank measured-op metrics")
	}
	if cp := m.Trace.CrossRankCriticalPath(); cp == nil || len(cp.Steps) == 0 {
		t.Error("merged trace has no cross-rank critical path")
	}
}

// SIGTERM is the flush signal: a child told to terminate must drain its
// trace sink before exiting, leaving a complete (metrics-terminated)
// JSONL log behind.
func TestSIGTERMFlushesChildTrace(t *testing.T) {
	dir := t.TempDir()
	failed := make(chan error, 1)
	tr := startTB(t, Options{
		Ranks: 2, Network: "unix", TraceDir: dir,
		OnFailure: func(err error) { failed <- err },
	})
	if _, err := tr.Run(dist.OpBcast, 1<<12); err != nil {
		t.Fatalf("bcast: %v", err)
	}
	if err := tr.procs[1].Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	select {
	case <-failed:
	case <-time.After(20 * time.Second):
		t.Fatal("transport did not notice the terminated rank")
	}
	// The signal handler flushes asynchronously with process exit; give
	// the file a moment to reach its final form.
	path := filepath.Join(dir, "rank1.jsonl")
	deadline := time.Now().Add(10 * time.Second)
	for {
		trace, err := obsfile.ReadFile(path)
		if err == nil && !trace.Truncated && trace.Metrics != nil {
			if len(trace.Spans) == 0 {
				t.Fatal("flushed trace has no spans")
			}
			if v := trace.Metrics["dist.measured.bcast_seconds"]; v <= 0 {
				t.Fatalf("flushed metrics missing measured bcast seconds: %v", trace.Metrics)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("rank1.jsonl never became complete: err=%v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// A reaped rank must flip the parent's health rollup to degraded with
// that rank marked down — the 503 path of /healthz.
func TestDeadRankDegradesHealth(t *testing.T) {
	telemetry.ResetRanks()
	t.Cleanup(telemetry.ResetRanks)

	failed := make(chan error, 1)
	tr := startTB(t, Options{
		Ranks: 2, Network: "unix",
		OnFailure: func(err error) { failed <- err },
	})
	if _, err := tr.Run(dist.OpAllreduce, 1<<12); err != nil {
		t.Fatalf("allreduce: %v", err)
	}
	if st := telemetry.CurrentHealth(); st.Status != "ok" {
		t.Fatalf("health before kill = %q, want ok (%+v)", st.Status, st.Ranks)
	}
	if err := tr.procs[1].Process.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	select {
	case <-failed:
	case <-time.After(20 * time.Second):
		t.Fatal("transport did not notice the killed rank")
	}
	st := telemetry.CurrentHealth()
	if st.Status != "degraded" {
		t.Fatalf("health after kill = %q, want degraded", st.Status)
	}
	down := false
	for _, r := range st.Ranks {
		if r.Rank == 1 && !r.Up && r.Err != "" {
			down = true
		}
	}
	if !down {
		t.Fatalf("rank 1 not marked down: %+v", st.Ranks)
	}
}
