package distnet

import (
	"encoding/binary"
	"fmt"

	"gokoala/internal/dist"
	"gokoala/internal/obs"
)

// Span names of the transport's trace instrumentation. Every realized
// collective is one spanCollective with spanSend/spanRecv children per
// point-to-point message; the (op, seq, step, from, to) attributes on
// the send/recv pairs mirror the wire header, which is what lets
// obsfile.MergeRanks match a sender's span to the receiver's span in a
// different process's trace log.
const (
	spanCollective = "dist.net.collective"
	spanSend       = "dist.net.send"
	spanRecv       = "dist.net.recv"
)

// stepDowncast offsets the step indices of the broadcast phase of
// allreduce so they cannot collide with its reduce phase (both phases
// walk the same strides under one seq). Strides are < 2^12 (the rank
// cap), so the offset is unambiguous.
const stepDowncast = 1 << 14

// collCtx carries one collective's identity (for wire step tagging) and
// its open span (for send/recv children) through the point-to-point
// helpers. sp is nil while obs is disabled — every use is nil-safe.
type collCtx struct {
	op  dist.Op
	seq uint32
	sp  *obs.Span
}

// node is one rank's view of the fully connected mesh: conns[r] is the
// framed link to rank r (nil at the own index). Rank 0 is always the
// driver process; ranks 1..P-1 are koala-rank children. The same
// collective algorithms run on both sides.
//
// Collectives move synthetic payloads: the grid meters collectives by
// aggregate byte count, not by tensor contents (the numerics live in
// shared memory either way), so the transport realizes each collective
// as the same communication pattern over pattern-filled buffers. That
// is what keeps results bit-identical across transports while the
// measured wall-clock is real.
type node struct {
	rank     int
	ranks    int
	conns    []*conn
	maxFrame int
}

// payload returns a deterministic pattern-filled buffer of n bytes (at
// least 1, at most maxFrame) so checksums exercise real data movement.
func (n *node) payload(size int64, seq uint32) []byte {
	if size < 1 {
		size = 1
	}
	if size > int64(n.maxFrame) {
		size = int64(n.maxFrame)
	}
	b := make([]byte, size)
	x := byte(n.rank*31) ^ byte(seq) ^ byte(seq>>8)
	for i := range b {
		b[i] = x + byte(i)
	}
	return b
}

func (n *node) send(to, step int, body []byte, cc collCtx) error {
	sp := cc.sp.StartChild(spanSend)
	err := n.conns[to].writeFrameStep(ftData, byte(cc.op), uint16(n.rank), uint16(step), cc.seq, body)
	if sp != nil {
		sp.SetStr("op", cc.op.String()).SetInt("seq", int64(cc.seq)).SetInt("step", int64(step))
		sp.SetInt("from", int64(n.rank)).SetInt("to", int64(to)).SetInt("bytes", int64(len(body)))
		sp.End()
	}
	if err != nil {
		return fmt.Errorf("send to rank %d: %w", to, err)
	}
	return nil
}

func (n *node) recv(from, step int, cc collCtx) ([]byte, error) {
	sp := cc.sp.StartChild(spanRecv)
	f, err := n.conns[from].expectFrame(ftData, cc.seq)
	if sp != nil {
		sp.SetStr("op", cc.op.String()).SetInt("seq", int64(cc.seq)).SetInt("step", int64(step))
		sp.SetInt("from", int64(from)).SetInt("to", int64(n.rank)).SetInt("bytes", int64(len(f.body)))
		sp.End()
	}
	if err != nil {
		return nil, fmt.Errorf("recv from rank %d: %w", from, err)
	}
	if int(f.step) != step {
		return nil, fmt.Errorf("recv from rank %d: step %d, want %d", from, f.step, step)
	}
	return f.body, nil
}

// asyncSend issues the send on a goroutine and returns a channel with
// its result, so a rank can post its outgoing message before blocking
// on the matching receive (ring and pairwise exchanges deadlock
// otherwise once payloads exceed the socket buffer).
func (n *node) asyncSend(to, step int, body []byte, cc collCtx) <-chan error {
	ch := make(chan error, 1)
	go func() { ch <- n.send(to, step, body, cc) }()
	return ch
}

// run executes one collective with the given aggregate byte count. Every
// rank of the job calls run with the same (op, total, seq) triple; the
// patterns below are the textbook small-P algorithms, chosen to mirror
// the grid's modeled message counts (binomial bcast/reduce, linear
// gather, ring allgather, pairwise alltoall). sp is the rank's open
// spanCollective (nil while obs is disabled); point-to-point messages
// trace as its children.
func (n *node) run(op dist.Op, total int64, seq uint32, sp *obs.Span) error {
	if n.ranks <= 1 {
		return nil
	}
	cc := collCtx{op: op, seq: seq, sp: sp}
	switch op {
	case dist.OpBcast:
		return n.bcast(total, cc)
	case dist.OpGather:
		return n.gather(total, cc)
	case dist.OpAllgather:
		return n.allgather(total, cc)
	case dist.OpAllreduce:
		return n.allreduce(total, cc)
	case dist.OpAllToAll:
		return n.alltoall(total, cc)
	}
	return fmt.Errorf("collective %v has no transport realization", op)
}

// bcast: binomial tree rooted at rank 0, log2(P) rounds. In round k a
// rank that already holds the data (rank < 2^k) forwards to rank+2^k.
func (n *node) bcast(total int64, cc collCtx) error {
	_, err := n.downcast(n.payload(total, cc.seq), 0, cc)
	return err
}

// downcast runs the binomial broadcast of buf from rank 0; every rank
// returns the (received) buffer. Shared by bcast and the second phase
// of allreduce; stepBase keeps the two phases' step keys disjoint. Each
// message is tagged with its stride, which both sides derive from their
// own rank, so sender and receiver agree on the step.
func (n *node) downcast(buf []byte, stepBase int, cc collCtx) ([]byte, error) {
	have := n.rank == 0
	for stride := 1; stride < n.ranks; stride <<= 1 {
		if have && n.rank < stride && n.rank+stride < n.ranks {
			if err := n.send(n.rank+stride, stepBase+stride, buf, cc); err != nil {
				return nil, err
			}
		} else if !have && n.rank >= stride && n.rank < stride<<1 {
			b, err := n.recv(n.rank-stride, stepBase+stride, cc)
			if err != nil {
				return nil, err
			}
			buf = b
			have = true
		}
	}
	return buf, nil
}

// gather: linear gather to rank 0; each rank owns total/P bytes. The
// step is the contributing rank.
func (n *node) gather(total int64, cc collCtx) error {
	share := total / int64(n.ranks)
	if n.rank == 0 {
		for r := 1; r < n.ranks; r++ {
			if _, err := n.recv(r, r, cc); err != nil {
				return err
			}
		}
		return nil
	}
	return n.send(0, n.rank, n.payload(share, cc.seq), cc)
}

// allgather: ring with P-1 steps; each step forwards a share of
// total/P bytes to the right neighbor while receiving from the left.
func (n *node) allgather(total int64, cc collCtx) error {
	share := n.payload(total/int64(n.ranks), cc.seq)
	right := (n.rank + 1) % n.ranks
	left := (n.rank + n.ranks - 1) % n.ranks
	for step := 0; step < n.ranks-1; step++ {
		sent := n.asyncSend(right, step, share, cc)
		got, err := n.recv(left, step, cc)
		if err != nil {
			return err
		}
		if err := <-sent; err != nil {
			return err
		}
		share = got // forward what arrived, as a real ring would
	}
	return nil
}

// allreduce: binomial reduce to rank 0 followed by binomial bcast —
// 2*log2(P) rounds, matching the modeled charge of twice the allgather
// latency and bandwidth. The "reduction" XORs buffers so the payload
// content actually depends on every contribution.
func (n *node) allreduce(total int64, cc collCtx) error {
	buf := n.payload(total, cc.seq)
	// Reduce: in round k, ranks with the 2^k bit set send to rank-2^k
	// and drop out of the up phase; receivers fold the contribution in.
	for stride := 1; stride < n.ranks; stride <<= 1 {
		if n.rank&stride != 0 {
			if err := n.send(n.rank-stride, stride, buf, cc); err != nil {
				return err
			}
			break
		}
		if n.rank+stride < n.ranks {
			got, err := n.recv(n.rank+stride, stride, cc)
			if err != nil {
				return err
			}
			for i := range buf {
				if i < len(got) {
					buf[i] ^= got[i]
				}
			}
		}
	}
	// Broadcast the reduced buffer back down; every rank participates.
	_, err := n.downcast(buf, stepDowncast, cc)
	return err
}

// alltoall: pairwise exchange, P-1 rounds; in round k rank r exchanges
// a total/P^2 chunk with rank r XOR k (power-of-two P) or (r+k) mod P
// paired with (r-k) mod P otherwise. The step is the round index, which
// sender and receiver share by construction.
func (n *node) alltoall(total int64, cc collCtx) error {
	chunk := total / int64(n.ranks*n.ranks)
	buf := n.payload(chunk, cc.seq)
	for k := 1; k < n.ranks; k++ {
		sendTo := (n.rank + k) % n.ranks
		recvFrom := (n.rank + n.ranks - k) % n.ranks
		sent := n.asyncSend(sendTo, k, buf, cc)
		if _, err := n.recv(recvFrom, k, cc); err != nil {
			return err
		}
		if err := <-sent; err != nil {
			return err
		}
	}
	return nil
}

// cmdBody encodes a collective's aggregate byte count for a cmd frame.
func cmdBody(total int64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(total))
	return b[:]
}

func cmdTotal(body []byte) (int64, error) {
	if len(body) != 8 {
		return 0, fmt.Errorf("malformed cmd payload (%d bytes)", len(body))
	}
	return int64(binary.LittleEndian.Uint64(body)), nil
}
