package distnet

import (
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"gokoala/internal/dist"
)

// TestMain doubles as the rank executable: the driver re-execs the test
// binary with KOALA_RANK_MODE set, and MaybeRankMain takes over before
// any test runs.
func TestMain(m *testing.M) {
	MaybeRankMain()
	os.Exit(m.Run())
}

func startTB(t *testing.T, o Options) *Transport {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	o.Exe = exe
	if o.ConnectTimeout == 0 {
		o.ConnectTimeout = 20 * time.Second
	}
	if o.OpTimeout == 0 {
		o.OpTimeout = 20 * time.Second
	}
	tr, err := Start(o)
	if err != nil {
		t.Fatalf("Start(%+v): %v", o, err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

// drive runs a representative mix of collectives against g.
func drive(g *dist.Grid) {
	g.Bcast(1 << 12)
	g.Gather(1 << 14)
	g.Allgather(3 << 10)
	g.Allreduce(1 << 13)
	g.AllToAll(1 << 15)
	g.Allreduce(257)
	g.ChargeFlops(1_000_000_000, 4)
}

func TestCollectivesOverSockets(t *testing.T) {
	for _, network := range []string{"unix", "tcp"} {
		for _, ranks := range []int{2, 3, 4} {
			t.Run(fmt.Sprintf("%s/ranks=%d", network, ranks), func(t *testing.T) {
				tr := startTB(t, Options{Ranks: ranks, Network: network})
				for _, op := range dist.Ops() {
					secs, err := tr.Run(op, 1<<14)
					if err != nil {
						t.Fatalf("%v: %v", op, err)
					}
					if secs < 0 {
						t.Fatalf("%v: negative measured seconds %g", op, secs)
					}
				}
				if err := tr.Close(); err != nil {
					t.Fatalf("Close: %v", err)
				}
			})
		}
	}
}

// Modeled Stats must be bit-identical with and without a real transport
// attached — the transport only adds measured wall-clock.
func TestModeledStatsIdenticalAcrossTransports(t *testing.T) {
	const ranks = 4
	ref := dist.NewGrid(dist.Stampede2(ranks))
	drive(ref)
	want := ref.Snapshot().ModeledOnly()

	for _, network := range []string{"unix", "tcp"} {
		t.Run(network, func(t *testing.T) {
			tr := startTB(t, Options{Ranks: ranks, Network: network})
			g := dist.NewGrid(dist.Stampede2(ranks)).SetTransport(tr)
			drive(g)
			if err := g.TransportError(); err != nil {
				t.Fatalf("transport error: %v", err)
			}
			got := g.Snapshot()
			if got.ModeledOnly() != want {
				t.Errorf("modeled stats diverged:\n got %+v\nwant %+v", got.ModeledOnly(), want)
			}
			if got.MeasuredOps == 0 {
				t.Error("no measured collectives recorded")
			}
			if got.MeasuredCommSeconds <= 0 {
				t.Errorf("measured seconds = %g, want > 0", got.MeasuredCommSeconds)
			}
			// 5 collectives + 1 extra allreduce driven above; ChargeFlops
			// and the P<=1 guard must not hit the transport.
			if got.MeasuredOps != 6 {
				t.Errorf("MeasuredOps = %d, want 6", got.MeasuredOps)
			}
		})
	}
}

// Concurrent Run calls serialize like operations on one communicator.
func TestConcurrentRunsSerialize(t *testing.T) {
	tr := startTB(t, Options{Ranks: 2, Network: "unix"})
	var wg sync.WaitGroup
	errs := make(chan error, 24)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for _, op := range []dist.Op{dist.OpBcast, dist.OpAllreduce, dist.OpAllToAll} {
				if _, err := tr.Run(op, int64(1024+i)); err != nil {
					errs <- err
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestRanksOneIsNoProcessNoOp(t *testing.T) {
	tr := startTB(t, Options{Ranks: 1, Network: "unix"})
	secs, err := tr.Run(dist.OpAllreduce, 1<<20)
	if err != nil || secs != 0 {
		t.Fatalf("Run at ranks=1 = (%g, %v), want (0, nil)", secs, err)
	}
}

// A killed rank must cancel the job with an error naming the rank, fire
// OnFailure exactly once, and leave no child processes behind.
func TestKilledRankCancelsJob(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	// Rank children inherit our env: make every child die (without
	// acking) after its first collective.
	t.Setenv("KOALA_RANK_DIE_AFTER", "1")
	failed := make(chan error, 1)
	tr, err := Start(Options{
		Ranks: 3, Network: "unix", Exe: exe,
		ConnectTimeout: 20 * time.Second, OpTimeout: 10 * time.Second,
		OnFailure: func(e error) { failed <- e },
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer tr.Close()

	_, err = tr.Run(dist.OpBcast, 1<<12)
	if err == nil {
		// The dying rank may have raced the ack; the next collective
		// must fail for sure.
		_, err = tr.Run(dist.OpAllreduce, 1<<12)
	}
	if err == nil {
		t.Fatal("Run succeeded twice against dying ranks")
	}
	if !strings.Contains(err.Error(), "rank") {
		t.Errorf("error does not name a rank: %v", err)
	}

	// Sticky: later Runs fail immediately with the same job error.
	if _, err2 := tr.Run(dist.OpGather, 1); err2 == nil {
		t.Error("Run after failure succeeded, want sticky error")
	}

	select {
	case e := <-failed:
		if !strings.Contains(e.Error(), "rank") {
			t.Errorf("OnFailure error does not name a rank: %v", e)
		}
	case <-time.After(10 * time.Second):
		t.Error("OnFailure not fired")
	}

	tr.Close()
	// No orphans: every child must be reaped (Wait returned), and
	// signalling it must fail because the process is gone.
	for r, cmd := range tr.procs {
		if cmd == nil {
			continue
		}
		if cmd.ProcessState == nil {
			t.Errorf("rank %d not reaped", r)
		} else if err := cmd.Process.Signal(syscall.Signal(0)); err == nil {
			t.Errorf("rank %d still signalable after Close", r)
		}
	}
}

// Grid keeps working (modeled-only) after a transport failure, and the
// sticky error is visible via TransportError.
func TestGridSurvivesTransportFailure(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	t.Setenv("KOALA_RANK_DIE_AFTER", "1")
	tr, err := Start(Options{Ranks: 2, Network: "unix", Exe: exe,
		ConnectTimeout: 20 * time.Second, OpTimeout: 10 * time.Second})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer tr.Close()

	g := dist.NewGrid(dist.Stampede2(2)).SetTransport(tr)
	for i := 0; i < 4; i++ {
		g.Bcast(1 << 10) // first realization may ack, second fails, rest skip
	}
	if g.TransportError() == nil {
		t.Fatal("TransportError = nil after rank death")
	}
	s := g.Snapshot()
	if s.Msgs == 0 {
		t.Error("modeled accounting stopped after transport failure")
	}

	ref := dist.NewGrid(dist.Stampede2(2))
	for i := 0; i < 4; i++ {
		ref.Bcast(1 << 10)
	}
	if s.ModeledOnly() != ref.Snapshot().ModeledOnly() {
		t.Error("modeled stats diverged after transport failure")
	}
}

func TestBadOptions(t *testing.T) {
	if _, err := Start(Options{Ranks: 0}); err == nil {
		t.Error("Ranks=0 accepted")
	}
	if _, err := Start(Options{Ranks: 2, Network: "ipx"}); err == nil {
		t.Error("unknown network accepted")
	}
}

func TestWireChecksumRejected(t *testing.T) {
	a, b, err := socketPair()
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	ca := newConn(a, 5*time.Second)
	cb := newConn(b, 5*time.Second)

	go ca.writeFrame(ftData, 0, 1, 7, []byte("payload"))
	if f, err := cb.readFrame(false); err != nil || string(f.body) != "payload" || f.seq != 7 {
		t.Fatalf("clean frame: %v %q", err, f.body)
	}

	// Corrupt a frame on the wire: flip a payload byte after framing.
	raw := frameBytes(ftData, 0, 1, 8, []byte("payload"))
	raw[headerLen] ^= 0xff
	go a.Write(raw)
	if _, err := cb.readFrame(false); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupt frame accepted: %v", err)
	}
}

func TestWireBadMagicRejected(t *testing.T) {
	a, b, err := socketPair()
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	cb := newConn(b, 5*time.Second)
	raw := frameBytes(ftData, 0, 1, 1, nil)
	raw[0] = 0x00
	go a.Write(raw)
	if _, err := cb.readFrame(false); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic accepted: %v", err)
	}
}

func TestRankEnvValidation(t *testing.T) {
	t.Setenv("KOALA_RANK", "x")
	if _, err := parseRankEnv(); err == nil {
		t.Error("bad KOALA_RANK accepted")
	}
	t.Setenv("KOALA_RANK", "1")
	t.Setenv("KOALA_RANK_N", "1") // N must exceed rank
	if _, err := parseRankEnv(); err == nil {
		t.Error("KOALA_RANK_N <= rank accepted")
	}
}

func TestDialRetryGivesUp(t *testing.T) {
	start := time.Now()
	_, err := dialRetry("tcp", "127.0.0.1:1", 300*time.Millisecond)
	if err == nil {
		t.Skip("something listens on port 1")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("dialRetry took %v, want bounded by budget", elapsed)
	}
}

// socketPair returns two ends of an in-memory full-duplex connection.
func socketPair() (net.Conn, net.Conn, error) {
	a, b := net.Pipe()
	return a, b, nil
}

// frameBytes renders one frame to raw bytes for corruption tests.
func frameBytes(typ, op byte, from uint16, seq uint32, body []byte) []byte {
	return appendFrame(nil, typ, op, from, seq, body)
}
