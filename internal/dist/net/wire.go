// Package distnet is the socket transport behind the dist.Transport
// interface: real rank processes (self re-execs of the running binary in
// the hidden koala-rank mode, see rank.go) connected over Unix-domain or
// loopback TCP sockets, executing every collective the grid meters as
// real point-to-point messages. The modeled alpha-beta-gamma accounting
// is untouched — the transport contributes the measured wall-clock
// recorded beside it.
//
// Wire format: length-prefixed frames with a fixed 20-byte header
//
//	[0]     magic 'K' (0x4b)
//	[1]     protocol version (1)
//	[2]     frame type (hello, peers, ready, cmd, data, ack, err, bye,
//	        ping, pong)
//	[3]     collective op (cmd/data frames; 0 otherwise)
//	[4:6]   sender rank, little-endian uint16
//	[6:8]   step index within a collective, little-endian uint16
//	        (data frames; 0 otherwise) — with op and seq it keys a sent
//	        frame to the matching receive for cross-rank trace pairing
//	[8:12]  sequence number, little-endian uint32
//	[12:16] payload length, little-endian uint32
//	[16:20] IEEE CRC-32 of the payload
//
// followed by the payload. Every receive validates magic, version, and
// checksum; a mismatch is a hard transport error (first error cancels
// the job). Reads and writes carry deadlines so a dead peer surfaces as
// a bounded timeout, never a hang.
package distnet

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"time"
)

const (
	wireMagic   = 0x4b
	wireVersion = 1
	headerLen   = 20
)

// Frame types.
const (
	ftHello = iota + 1
	ftPeers
	ftReady
	ftCmd
	ftData
	ftAck
	ftErr
	ftBye
	// ftPing/ftPong carry the NTP-style clock-sync handshake: the driver
	// sends its wall clock (t1) in an 8-byte ping body; the child replies
	// with receive/send wall clocks (t2, t3) plus its per-op measured
	// stats as JSON. Doubles as the liveness heartbeat.
	ftPing
	ftPong
)

// maxWireFrame bounds the payload length a receiver will allocate for;
// senders chunk synthetic payloads well below it (Options.MaxFrame).
const maxWireFrame = 1 << 28

type frame struct {
	typ  byte
	op   byte
	from uint16
	step uint16
	seq  uint32
	body []byte
}

// conn is one framed point-to-point link. Writes are frame-atomic (one
// buffered Write call under the mutex) so concurrent async sends from a
// collective's send goroutine and the main loop never interleave.
type conn struct {
	c    net.Conn
	r    *bufio.Reader
	wmu  sync.Mutex
	rmu  sync.Mutex
	tout time.Duration // per-frame I/O deadline; 0 = none
}

func newConn(c net.Conn, timeout time.Duration) *conn {
	return &conn{c: c, r: bufio.NewReaderSize(c, 1<<16), tout: timeout}
}

func (c *conn) Close() error { return c.c.Close() }

// appendFrame renders header + payload onto dst (step 0; data frames
// use appendFrameStep).
func appendFrame(dst []byte, typ, op byte, from uint16, seq uint32, body []byte) []byte {
	return appendFrameStep(dst, typ, op, from, 0, seq, body)
}

// appendFrameStep renders header + payload onto dst with an explicit
// collective step index.
func appendFrameStep(dst []byte, typ, op byte, from, step uint16, seq uint32, body []byte) []byte {
	var h [headerLen]byte
	h[0] = wireMagic
	h[1] = wireVersion
	h[2] = typ
	h[3] = op
	binary.LittleEndian.PutUint16(h[4:6], from)
	binary.LittleEndian.PutUint16(h[6:8], step)
	binary.LittleEndian.PutUint32(h[8:12], seq)
	binary.LittleEndian.PutUint32(h[12:16], uint32(len(body)))
	binary.LittleEndian.PutUint32(h[16:20], crc32.ChecksumIEEE(body))
	dst = append(dst, h[:]...)
	return append(dst, body...)
}

// writeFrame sends one frame. The header and payload go out as a single
// write under the write mutex, so concurrent senders never interleave.
func (c *conn) writeFrame(typ, op byte, from uint16, seq uint32, body []byte) error {
	return c.writeFrameStep(typ, op, from, 0, seq, body)
}

// writeFrameStep is writeFrame with an explicit collective step index
// (data frames, where the step disambiguates the multiple messages a
// ring or pairwise exchange sends under one seq).
func (c *conn) writeFrameStep(typ, op byte, from, step uint16, seq uint32, body []byte) error {
	if len(body) > maxWireFrame {
		return fmt.Errorf("frame payload %d exceeds wire limit", len(body))
	}
	buf := appendFrameStep(make([]byte, 0, headerLen+len(body)), typ, op, from, step, seq, body)
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.tout > 0 {
		c.c.SetWriteDeadline(time.Now().Add(c.tout))
	}
	_, err := c.c.Write(buf)
	return err
}

// readFrame reads and validates the next frame. block=true suspends the
// per-frame deadline (the child's idle command loop, where the driver
// may legitimately compute for a long time between collectives; a dead
// driver still surfaces as EOF).
func (c *conn) readFrame(block bool) (frame, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	if c.tout > 0 && !block {
		c.c.SetReadDeadline(time.Now().Add(c.tout))
	} else {
		c.c.SetReadDeadline(time.Time{})
	}
	return c.readLocked()
}

// readLocked reads and validates one frame; rmu and the read deadline
// are the caller's business.
func (c *conn) readLocked() (frame, error) {
	var h [headerLen]byte
	if _, err := io.ReadFull(c.r, h[:]); err != nil {
		return frame{}, err
	}
	if h[0] != wireMagic || h[1] != wireVersion {
		return frame{}, fmt.Errorf("bad frame header magic=%#x version=%d", h[0], h[1])
	}
	f := frame{
		typ:  h[2],
		op:   h[3],
		from: binary.LittleEndian.Uint16(h[4:6]),
		step: binary.LittleEndian.Uint16(h[6:8]),
		seq:  binary.LittleEndian.Uint32(h[8:12]),
	}
	n := binary.LittleEndian.Uint32(h[12:16])
	if n > maxWireFrame {
		return frame{}, fmt.Errorf("frame payload %d exceeds wire limit", n)
	}
	sum := binary.LittleEndian.Uint32(h[16:20])
	if n > 0 {
		f.body = make([]byte, n)
		if _, err := io.ReadFull(c.r, f.body); err != nil {
			return frame{}, err
		}
	}
	if got := crc32.ChecksumIEEE(f.body); got != sum {
		return frame{}, fmt.Errorf("payload checksum mismatch: got %#x want %#x", got, sum)
	}
	return f, nil
}

// readFrameWithin is readFrame with a one-shot deadline override: the
// sync/heartbeat pings use a budget much shorter than the collective
// OpTimeout so a hung rank can't stall the driver's mutex for long.
func (c *conn) readFrameWithin(d time.Duration) (frame, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	c.c.SetReadDeadline(time.Now().Add(d))
	f, err := c.readLocked()
	// Restore the default so a later readFrame isn't cut short.
	if c.tout > 0 {
		c.c.SetReadDeadline(time.Now().Add(c.tout))
	} else {
		c.c.SetReadDeadline(time.Time{})
	}
	return f, err
}

// expectFrame reads the next frame and requires the given type (and seq
// when nonzero types carry one).
func (c *conn) expectFrame(typ byte, seq uint32) (frame, error) {
	f, err := c.readFrame(false)
	if err != nil {
		return f, err
	}
	if f.typ == ftErr {
		return f, fmt.Errorf("peer error: %s", f.body)
	}
	if f.typ != typ {
		return f, fmt.Errorf("unexpected frame type %d (want %d)", f.typ, typ)
	}
	if f.seq != seq {
		return f, fmt.Errorf("out-of-sequence frame: got seq %d want %d", f.seq, seq)
	}
	return f, nil
}
