package distnet

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"gokoala/internal/dist"
	"gokoala/internal/obs"
	"gokoala/internal/obsfile"
	"gokoala/internal/telemetry"
)

// Options configures a socket transport job.
type Options struct {
	Ranks   int    // total ranks including the driver (rank 0)
	Network string // "unix" (default) or "tcp" (loopback)

	// Dir holds the Unix sockets; defaults to a fresh temp dir that is
	// removed on Close. Ignored for tcp.
	Dir string

	// Exe is the rank binary; defaults to the running executable
	// (children run the hidden koala-rank mode via KOALA_RANK_MODE).
	Exe string

	// TraceDir enables per-rank trace capture: every child rank writes
	// rank<N>.jsonl (an obs JSONL trace log) plus rank<N>.addr (its own
	// /metrics listen address) into this directory, and the driver
	// maintains manifest.json with pids and measured clock offsets so
	// obsfile.MergeDir can fold the logs onto one clock. The directory
	// is created if missing. The driver's own spans are not captured
	// here — route them to TraceDir/rank0.jsonl with an obs.JSONLSink
	// (cliutil.EnableRankTrace does).
	TraceDir string

	ConnectTimeout time.Duration // spawn+handshake budget (default 10s)
	OpTimeout      time.Duration // per-frame I/O deadline in collectives (default 30s)
	MaxFrame       int           // synthetic payload cap per message (default 4 MiB)

	// OnFailure is invoked exactly once, after teardown, with the first
	// transport error. The CLI default prints the error and exits so a
	// dead rank cancels the whole job.
	OnFailure func(error)

	// Stderr receives the children's stderr (default os.Stderr).
	Stderr io.Writer
}

func (o *Options) defaults() error {
	if o.Ranks < 1 {
		return fmt.Errorf("dist/net: ranks must be >= 1, got %d", o.Ranks)
	}
	if o.Ranks > 1<<12 {
		return fmt.Errorf("dist/net: ranks %d beyond sane process budget", o.Ranks)
	}
	switch o.Network {
	case "":
		o.Network = "unix"
	case "unix", "tcp":
	default:
		return fmt.Errorf("dist/net: unknown network %q (want unix or tcp)", o.Network)
	}
	if o.Exe == "" {
		exe, err := os.Executable()
		if err != nil {
			return fmt.Errorf("dist/net: resolve executable: %w", err)
		}
		o.Exe = exe
	}
	if o.ConnectTimeout <= 0 {
		o.ConnectTimeout = 10 * time.Second
	}
	if o.OpTimeout <= 0 {
		o.OpTimeout = 30 * time.Second
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = 4 << 20
	}
	return nil
}

// Transport implements dist.Transport over real rank processes. One
// collective runs at a time (Run serializes, like operations on an MPI
// communicator); the first error permanently fails the transport,
// tears the job down, and fires Options.OnFailure.
type Transport struct {
	o     Options
	n     *node
	ln    net.Listener
	dir   string // temp socket dir we created (removed on Close)
	token string

	procs  []*exec.Cmd     // index 1..Ranks-1; [0] nil
	exited []chan struct{} // closed by a rank's monitor once reaped

	mu       sync.Mutex
	seq      uint32
	pingSeq  uint32
	err      error
	closing  bool
	dead     map[int]error // rank -> exit cause, recorded by monitors
	stop     chan struct{} // closed in teardown; ends the heartbeat loop
	opStats  [dist.NumOps]opAgg
	rankInfo []rankInfo // index by rank; [0] unused
	wg       sync.WaitGroup
}

// opAgg accumulates the driver-side measured wall clock of one op.
type opAgg struct {
	n    int64
	secs float64
}

// rankInfo is the driver's latest knowledge of one child rank, refreshed
// by every sync/heartbeat pong.
type rankInfo struct {
	pid      int
	offsetNS int64 // child wall clock minus driver wall clock
	rttNS    int64 // round trip of the sample offsetNS came from
	stats    childStats
}

// childStats is the per-op measured summary a child rank reports in
// every pong body (JSON after the two timestamps).
type childStats struct {
	PID int                        `json:"pid"`
	Ops map[string]dist.OpMeasured `json:"ops,omitempty"`
}

// Sync/heartbeat tuning: the initial clock sync takes the best of
// syncPings round trips per rank; the heartbeat loop re-pings every
// alive rank each heartbeatPeriod (skipping ticks while a collective
// holds the transport). Pings use their own short deadline so a hung
// rank cannot stall the driver for a full OpTimeout.
const (
	syncPings       = 8
	heartbeatPeriod = 1 * time.Second
	pingTimeout     = 2 * time.Second
)

var _ dist.Transport = (*Transport)(nil)

// Start launches ranks 1..Ranks-1 as koala-rank child processes of the
// given binary, builds the fully connected mesh, and returns once every
// rank reported ready. Ranks==1 degenerates to a no-process transport
// whose Run is an immediate no-op (the grid never realizes collectives
// at P<=1 anyway).
func Start(o Options) (*Transport, error) {
	if err := o.defaults(); err != nil {
		return nil, err
	}
	t := &Transport{o: o, dead: make(map[int]error)}
	if o.Ranks == 1 {
		t.n = &node{rank: 0, ranks: 1, maxFrame: o.MaxFrame}
		return t, nil
	}
	if err := t.start(); err != nil {
		t.teardown()
		return nil, fmt.Errorf("dist/net: start: %w", err)
	}
	return t, nil
}

func (t *Transport) start() error {
	tok := make([]byte, 16)
	if _, err := rand.Read(tok); err != nil {
		return err
	}
	t.token = hex.EncodeToString(tok)

	// Driver listener: children dial it for their control connection.
	var err error
	switch t.o.Network {
	case "unix":
		dir := t.o.Dir
		if dir == "" {
			dir, err = os.MkdirTemp("", "koala-dist-")
			if err != nil {
				return err
			}
			t.dir = dir
		}
		t.ln, err = net.Listen("unix", filepath.Join(dir, "r0.sock"))
	case "tcp":
		t.ln, err = net.Listen("tcp", "127.0.0.1:0")
	}
	if err != nil {
		return err
	}

	stderr := t.o.Stderr
	if stderr == nil {
		stderr = os.Stderr
	}
	sockDir := t.o.Dir
	if sockDir == "" {
		sockDir = t.dir
	}
	if t.o.TraceDir != "" {
		if err := os.MkdirAll(t.o.TraceDir, 0o777); err != nil {
			return fmt.Errorf("trace dir: %w", err)
		}
	}
	t.procs = make([]*exec.Cmd, t.o.Ranks)
	t.exited = make([]chan struct{}, t.o.Ranks)
	t.rankInfo = make([]rankInfo, t.o.Ranks)
	for r := 1; r < t.o.Ranks; r++ {
		cmd := exec.Command(t.o.Exe)
		cmd.Env = append(os.Environ(),
			"KOALA_RANK_MODE=1",
			"KOALA_RANK="+strconv.Itoa(r),
			"KOALA_RANK_N="+strconv.Itoa(t.o.Ranks),
			"KOALA_RANK_NET="+t.o.Network,
			"KOALA_RANK_ADDR="+t.ln.Addr().String(),
			"KOALA_RANK_DIR="+sockDir,
			"KOALA_RANK_TOKEN="+t.token,
			"KOALA_RANK_TIMEOUT="+t.o.OpTimeout.String(),
			"KOALA_RANK_MAXFRAME="+strconv.Itoa(t.o.MaxFrame),
		)
		if t.o.TraceDir != "" {
			// Absolute so the children agree on the directory regardless
			// of their working directory.
			abs, err := filepath.Abs(t.o.TraceDir)
			if err != nil {
				abs = t.o.TraceDir
			}
			cmd.Env = append(cmd.Env,
				"KOALA_RANK_TRACE_DIR="+abs,
				"KOALA_RANK_LISTEN=1",
			)
		}
		cmd.Stdout = stderr
		cmd.Stderr = stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("spawn rank %d: %w", r, err)
		}
		t.procs[r] = cmd
		t.rankInfo[r].pid = cmd.Process.Pid
		t.exited[r] = make(chan struct{})
		t.wg.Add(1)
		go t.monitor(r)
	}

	// Accept one control connection per child; hello carries the rank,
	// the shared-secret token, and the child's own listen address.
	conns := make([]*conn, t.o.Ranks)
	addrs := make([]string, t.o.Ranks)
	deadline := time.Now().Add(t.o.ConnectTimeout)
	for i := 1; i < t.o.Ranks; i++ {
		setAcceptDeadline(t.ln, deadline)
		raw, err := t.ln.Accept()
		if err != nil {
			return fmt.Errorf("accept rank handshake: %w (%v)", err, t.deadSummary())
		}
		c := newConn(raw, t.o.OpTimeout)
		f, err := c.expectFrame(ftHello, 0)
		if err != nil {
			return fmt.Errorf("rank hello: %w", err)
		}
		tokAddr := strings.SplitN(string(f.body), "\n", 2)
		if len(tokAddr) != 2 || tokAddr[0] != t.token {
			raw.Close()
			return fmt.Errorf("rank %d hello rejected: bad token", f.from)
		}
		r := int(f.from)
		if r < 1 || r >= t.o.Ranks || conns[r] != nil {
			raw.Close()
			return fmt.Errorf("rank hello with invalid rank %d", r)
		}
		conns[r] = c
		addrs[r] = tokAddr[1]
	}

	// Tell every child where its peers listen, then wait for each to
	// finish its own mesh wiring and report ready.
	peers := []byte(strings.Join(addrs, "\n"))
	for r := 1; r < t.o.Ranks; r++ {
		if err := conns[r].writeFrame(ftPeers, 0, 0, 0, peers); err != nil {
			return fmt.Errorf("send peers to rank %d: %w", r, err)
		}
	}
	for r := 1; r < t.o.Ranks; r++ {
		if _, err := conns[r].expectFrame(ftReady, 0); err != nil {
			return fmt.Errorf("rank %d ready: %w", r, err)
		}
	}

	t.mu.Lock()
	t.n = &node{rank: 0, ranks: t.o.Ranks, conns: conns, maxFrame: t.o.MaxFrame}
	// Initial clock sync: best-of-N ping per rank estimates each child's
	// wall-clock offset before the first collective, registers the rank
	// as alive, and seeds the telemetry series.
	for r := 1; r < t.o.Ranks; r++ {
		if err := t.syncRankLocked(r, syncPings); err != nil {
			t.mu.Unlock()
			return fmt.Errorf("clock sync rank %d: %w", r, err)
		}
	}
	t.writeManifestLocked()
	t.stop = make(chan struct{})
	t.wg.Add(1)
	go t.heartbeatLoop(t.stop)
	t.mu.Unlock()
	return nil
}

// syncRankLocked pings rank r n times and keeps the minimum-delay
// sample's offset estimate (the NTP rule: the shortest round trip has
// the least queueing asymmetry, and its half-width bounds the residual
// error). Called with t.mu held.
func (t *Transport) syncRankLocked(r, n int) error {
	best := rankInfo{pid: t.rankInfo[r].pid, rttNS: 1<<63 - 1}
	for i := 0; i < n; i++ {
		off, rtt, st, err := t.pingLocked(r)
		if err != nil {
			return err
		}
		best.stats = st
		if rtt < best.rttNS {
			best.offsetNS, best.rttNS = off, rtt
		}
	}
	t.rankInfo[r] = best
	t.noteRankLocked(r)
	return nil
}

// pingLocked runs one ping/pong round trip with rank r and returns the
// offset estimate (child clock minus driver clock), the round-trip
// delay, and the child's per-op measured stats. Called with t.mu held;
// the child is idle in its command loop whenever the mutex is free, so
// the reply is immediate.
func (t *Transport) pingLocked(r int) (offsetNS, rttNS int64, st childStats, err error) {
	t.pingSeq++
	seq := t.pingSeq
	c := t.n.conns[r]
	var body [8]byte
	t1 := time.Now().UnixNano()
	binary.LittleEndian.PutUint64(body[:], uint64(t1))
	if err = c.writeFrame(ftPing, 0, 0, seq, body[:]); err != nil {
		return 0, 0, st, fmt.Errorf("ping rank %d: %w", r, err)
	}
	f, err := c.readFrameWithin(pingTimeout)
	t4 := time.Now().UnixNano()
	if err != nil {
		return 0, 0, st, fmt.Errorf("pong rank %d: %w", r, err)
	}
	if f.typ != ftPong || f.seq != seq || len(f.body) < 16 {
		return 0, 0, st, fmt.Errorf("pong rank %d: bad reply (type %d seq %d)", r, f.typ, f.seq)
	}
	t2 := int64(binary.LittleEndian.Uint64(f.body[0:8]))
	t3 := int64(binary.LittleEndian.Uint64(f.body[8:16]))
	if len(f.body) > 16 {
		if jerr := json.Unmarshal(f.body[16:], &st); jerr != nil {
			return 0, 0, st, fmt.Errorf("pong rank %d stats: %w", r, jerr)
		}
	}
	offsetNS = ((t2 - t1) + (t3 - t4)) / 2
	rttNS = (t4 - t1) - (t3 - t2)
	return offsetNS, rttNS, st, nil
}

// noteRankLocked publishes rank r's freshly observed state: liveness
// heartbeat plus the rank-labeled telemetry series federated into the
// driver's /metrics.
func (t *Transport) noteRankLocked(r int) {
	telemetry.RankHeartbeat(r)
	ri := t.rankInfo[r]
	lbl := telemetry.Label{Key: "rank", Value: strconv.Itoa(r)}
	telemetry.Observe("dist_rank_up", 1, lbl)
	telemetry.Observe("dist_rank_clock_offset_ns", float64(ri.offsetNS), lbl)
	telemetry.Observe("dist_rank_rtt_ns", float64(ri.rttNS), lbl)
	var ops int64
	var secs float64
	for _, m := range ri.stats.Ops {
		ops += m.Ops
		secs += m.Seconds
	}
	telemetry.Observe("dist_rank_measured_ops", float64(ops), lbl)
	telemetry.Observe("dist_rank_measured_comm_seconds", secs, lbl)
}

// heartbeatLoop re-pings every alive rank each period, refreshing clock
// offsets, liveness, and the federated per-rank series. A tick is
// skipped when a collective holds the transport (the children are busy
// in that exact case, and Run's acks already prove liveness). A ping
// failure on an idle transport is a real protocol breakdown and fails
// the job like any collective error.
func (t *Transport) heartbeatLoop(stop <-chan struct{}) {
	defer t.wg.Done()
	tick := time.NewTicker(heartbeatPeriod)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		if !t.mu.TryLock() {
			continue
		}
		if t.closing || t.err != nil {
			t.mu.Unlock()
			return
		}
		for r := 1; r < t.o.Ranks; r++ {
			if _, dead := t.dead[r]; dead {
				continue
			}
			off, rtt, st, err := t.pingLocked(r)
			if err != nil {
				t.failLocked(fmt.Errorf("heartbeat: %w", err))
				t.mu.Unlock()
				return
			}
			t.rankInfo[r].offsetNS, t.rankInfo[r].rttNS, t.rankInfo[r].stats = off, rtt, st
			t.noteRankLocked(r)
		}
		t.mu.Unlock()
	}
}

// writeManifestLocked (re)writes TraceDir/manifest.json: the rank
// roster, pids, trace file names, and the latest clock offsets — the
// input obsfile.MergeDir aligns the logs with. Best-effort: capture
// must never fail the job. Called with t.mu held.
func (t *Transport) writeManifestLocked() {
	if t.o.TraceDir == "" || t.o.Ranks == 1 {
		return
	}
	m := obsfile.Manifest{
		Ranks:     t.o.Ranks,
		Network:   t.o.Network,
		DriverPID: os.Getpid(),
	}
	m.RankInfo = append(m.RankInfo, obsfile.ManifestRank{
		Rank: 0, PID: os.Getpid(), File: "rank0.jsonl",
	})
	for r := 1; r < t.o.Ranks; r++ {
		ri := t.rankInfo[r]
		m.RankInfo = append(m.RankInfo, obsfile.ManifestRank{
			Rank: r, PID: ri.pid,
			File:          fmt.Sprintf("rank%d.jsonl", r),
			ClockOffsetNS: ri.offsetNS,
			RTTNS:         ri.rttNS,
		})
	}
	if err := obsfile.WriteManifest(t.o.TraceDir, m); err != nil {
		fmt.Fprintf(os.Stderr, "dist/net: write trace manifest: %v\n", err)
	}
}

func setAcceptDeadline(ln net.Listener, d time.Time) {
	type deadliner interface{ SetDeadline(time.Time) error }
	if dl, ok := ln.(deadliner); ok {
		dl.SetDeadline(d)
	}
}

// monitor reaps one child (started at spawn time, so no child is ever
// left a zombie). An exit before Close is a transport failure: the
// cause is recorded for error attribution and the rank's connection is
// closed so any collective blocked on it fails immediately.
func (t *Transport) monitor(r int) {
	defer t.wg.Done()
	err := t.procs[r].Wait()
	close(t.exited[r])
	t.mu.Lock()
	closing := t.closing
	if !closing {
		if err == nil {
			err = errors.New("exited before job end")
		}
		t.dead[r] = err
		if t.n != nil && t.n.conns != nil && t.n.conns[r] != nil {
			t.n.conns[r].Close()
		}
	}
	t.mu.Unlock()
	if !closing {
		telemetry.MarkRankDead(r, fmt.Sprintf("rank %d died: %v", r, err))
		telemetry.Observe("dist_rank_up", 0, telemetry.Label{Key: "rank", Value: strconv.Itoa(r)})
		// Surface the failure even if the driver is between collectives.
		t.fail(fmt.Errorf("rank %d died: %v", r, err))
	}
}

func (t *Transport) Name() string { return "net/" + t.o.Network }
func (t *Transport) Ranks() int   { return t.o.Ranks }

// Run executes one collective across all ranks and returns its measured
// wall-clock seconds (command fan-out through last acknowledgement).
func (t *Transport) Run(op dist.Op, totalBytes int64) (float64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return 0, t.err
	}
	if t.closing {
		return 0, errors.New("dist/net: transport closed")
	}
	if t.o.Ranks == 1 {
		return 0, nil
	}
	t.seq++
	seq := t.seq
	sp := obs.Start(spanCollective)
	sp.SetStr("op", op.String()).SetInt("seq", int64(seq)).SetInt("bytes", totalBytes)
	start := time.Now()
	for r := 1; r < t.o.Ranks; r++ {
		if err := t.n.conns[r].writeFrame(ftCmd, byte(op), 0, seq, cmdBody(totalBytes)); err != nil {
			sp.End()
			return 0, t.failLocked(fmt.Errorf("command rank %d: %w", r, err))
		}
	}
	if err := t.n.run(op, totalBytes, seq, sp); err != nil {
		sp.End()
		return 0, t.failLocked(fmt.Errorf("%v: %w", op, err))
	}
	for r := 1; r < t.o.Ranks; r++ {
		if _, err := t.n.conns[r].expectFrame(ftAck, seq); err != nil {
			sp.End()
			return 0, t.failLocked(fmt.Errorf("%v ack from rank %d: %w", op, r, err))
		}
		// Every ack proves the rank alive; keep the liveness rollup warm
		// between heartbeat ticks (which skip while Run holds the mutex).
		telemetry.RankHeartbeat(r)
	}
	secs := time.Since(start).Seconds()
	sp.SetFloat("measured_s", secs)
	sp.End()
	t.opStats[op].n++
	t.opStats[op].secs += secs
	telemetry.Observe("dist_measured_comm_seconds", secs,
		telemetry.Label{Key: "op", Value: op.String()})
	return secs, nil
}

// RankStats implements dist.RankStatser: rank 0 is the driver's per-op
// collective wall clock (fan-out to last ack); child rows carry each
// rank's local measured totals plus its latest clock offset. On a
// healthy open transport the child rows are refreshed with a fresh ping
// sweep so a caller at end-of-suite sees final, not second-old, totals.
func (t *Transport) RankStats() []dist.RankStat {
	t.mu.Lock()
	defer t.mu.Unlock()
	driver := dist.RankStat{Rank: 0, PID: os.Getpid(), Ops: map[string]dist.OpMeasured{}}
	for op := dist.Op(0); op < dist.NumOps; op++ {
		if a := t.opStats[op]; a.n > 0 {
			driver.Ops[op.String()] = dist.OpMeasured{Ops: a.n, Seconds: a.secs}
			driver.MeasuredOps += a.n
			driver.MeasuredCommSeconds += a.secs
		}
	}
	if len(driver.Ops) == 0 {
		driver.Ops = nil
	}
	out := []dist.RankStat{driver}
	for r := 1; r < t.o.Ranks; r++ {
		_, dead := t.dead[r]
		if t.n != nil && t.err == nil && !t.closing && !dead {
			if off, rtt, st, err := t.pingLocked(r); err == nil {
				t.rankInfo[r].offsetNS, t.rankInfo[r].rttNS, t.rankInfo[r].stats = off, rtt, st
				t.noteRankLocked(r)
			}
		}
		ri := t.rankInfo[r]
		rs := dist.RankStat{
			Rank: r, PID: ri.pid,
			ClockOffsetNS: ri.offsetNS, RTTNS: ri.rttNS,
			Ops: ri.stats.Ops,
		}
		for _, m := range ri.stats.Ops {
			rs.MeasuredOps += m.Ops
			rs.MeasuredCommSeconds += m.Seconds
		}
		out = append(out, rs)
	}
	return out
}

// fail records err as the sticky transport error (unless one is already
// set), tears the job down, and fires OnFailure once.
func (t *Transport) fail(err error) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.failLocked(err)
}

func (t *Transport) failLocked(err error) error {
	if t.err != nil {
		return t.err
	}
	if t.closing {
		return err
	}
	// Attribute to a recorded child death when one explains the I/O error.
	if len(t.dead) > 0 {
		err = fmt.Errorf("%w (%s)", err, t.deadSummary())
	}
	t.err = fmt.Errorf("dist/net: %w", err)
	t.teardownLocked()
	if t.o.OnFailure != nil {
		go t.o.OnFailure(t.err)
	}
	return t.err
}

func (t *Transport) deadSummary() string {
	if len(t.dead) == 0 {
		return "no ranks reported dead"
	}
	parts := make([]string, 0, len(t.dead))
	for r, e := range t.dead {
		parts = append(parts, fmt.Sprintf("rank %d: %v", r, e))
	}
	return strings.Join(parts, "; ")
}

// Close tears the job down: children get a bye frame (they exit on it,
// or on the control-connection EOF that follows), stragglers are
// killed, and the socket dir is removed. No orphans survive Close.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closing {
		t.mu.Unlock()
		t.wg.Wait()
		return nil
	}
	t.closing = true
	// Final manifest with the freshest clock offsets before the children
	// flush and exit on bye.
	t.writeManifestLocked()
	if t.n != nil && t.n.conns != nil {
		for r := 1; r < t.o.Ranks; r++ {
			if c := t.n.conns[r]; c != nil {
				c.writeFrame(ftBye, 0, 0, 0, nil)
			}
		}
	}
	t.teardownLocked()
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}

// teardown outside a held lock (start-path cleanup).
func (t *Transport) teardown() {
	t.mu.Lock()
	t.closing = true
	t.teardownLocked()
	t.mu.Unlock()
	t.wg.Wait()
}

// teardownLocked closes the mesh and reaps every child, escalating to
// SIGTERM and then SIGKILL after grace periods. Called with t.mu held;
// marks closing so monitors treat subsequent exits as expected.
func (t *Transport) teardownLocked() {
	t.closing = true
	if t.stop != nil {
		close(t.stop)
		t.stop = nil
	}
	if t.ln != nil {
		t.ln.Close()
		t.ln = nil
	}
	if t.n != nil && t.n.conns != nil {
		for _, c := range t.n.conns {
			if c != nil {
				c.Close()
			}
		}
	}
	for r, cmd := range t.procs {
		if cmd == nil || cmd.Process == nil {
			continue
		}
		if _, dead := t.dead[r]; dead {
			continue
		}
		// Children exit on bye/EOF; give each a grace period. A child
		// that misses it gets SIGTERM first — its signal handler flushes
		// the trace/telemetry sinks so a slow rank still leaves a
		// parseable log — and SIGKILL only if it ignores that too.
		go func(cmd *exec.Cmd, exited <-chan struct{}) {
			select {
			case <-exited:
			case <-time.After(2 * time.Second):
				cmd.Process.Signal(syscall.SIGTERM)
				select {
				case <-exited:
				case <-time.After(2 * time.Second):
					cmd.Process.Kill()
				}
			}
		}(cmd, t.exited[r])
	}
	if t.dir != "" {
		dir := t.dir
		t.dir = ""
		// Remove once the children (whose sockets live there) are gone.
		go func() {
			t.wg.Wait()
			os.RemoveAll(dir)
		}()
	}
}
