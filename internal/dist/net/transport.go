package distnet

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"gokoala/internal/dist"
	"gokoala/internal/telemetry"
)

// Options configures a socket transport job.
type Options struct {
	Ranks   int    // total ranks including the driver (rank 0)
	Network string // "unix" (default) or "tcp" (loopback)

	// Dir holds the Unix sockets; defaults to a fresh temp dir that is
	// removed on Close. Ignored for tcp.
	Dir string

	// Exe is the rank binary; defaults to the running executable
	// (children run the hidden koala-rank mode via KOALA_RANK_MODE).
	Exe string

	ConnectTimeout time.Duration // spawn+handshake budget (default 10s)
	OpTimeout      time.Duration // per-frame I/O deadline in collectives (default 30s)
	MaxFrame       int           // synthetic payload cap per message (default 4 MiB)

	// OnFailure is invoked exactly once, after teardown, with the first
	// transport error. The CLI default prints the error and exits so a
	// dead rank cancels the whole job.
	OnFailure func(error)

	// Stderr receives the children's stderr (default os.Stderr).
	Stderr io.Writer
}

func (o *Options) defaults() error {
	if o.Ranks < 1 {
		return fmt.Errorf("dist/net: ranks must be >= 1, got %d", o.Ranks)
	}
	if o.Ranks > 1<<12 {
		return fmt.Errorf("dist/net: ranks %d beyond sane process budget", o.Ranks)
	}
	switch o.Network {
	case "":
		o.Network = "unix"
	case "unix", "tcp":
	default:
		return fmt.Errorf("dist/net: unknown network %q (want unix or tcp)", o.Network)
	}
	if o.Exe == "" {
		exe, err := os.Executable()
		if err != nil {
			return fmt.Errorf("dist/net: resolve executable: %w", err)
		}
		o.Exe = exe
	}
	if o.ConnectTimeout <= 0 {
		o.ConnectTimeout = 10 * time.Second
	}
	if o.OpTimeout <= 0 {
		o.OpTimeout = 30 * time.Second
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = 4 << 20
	}
	return nil
}

// Transport implements dist.Transport over real rank processes. One
// collective runs at a time (Run serializes, like operations on an MPI
// communicator); the first error permanently fails the transport,
// tears the job down, and fires Options.OnFailure.
type Transport struct {
	o     Options
	n     *node
	ln    net.Listener
	dir   string // temp socket dir we created (removed on Close)
	token string

	procs  []*exec.Cmd     // index 1..Ranks-1; [0] nil
	exited []chan struct{} // closed by a rank's monitor once reaped

	mu      sync.Mutex
	seq     uint32
	err     error
	closing bool
	dead    map[int]error // rank -> exit cause, recorded by monitors
	wg      sync.WaitGroup
}

var _ dist.Transport = (*Transport)(nil)

// Start launches ranks 1..Ranks-1 as koala-rank child processes of the
// given binary, builds the fully connected mesh, and returns once every
// rank reported ready. Ranks==1 degenerates to a no-process transport
// whose Run is an immediate no-op (the grid never realizes collectives
// at P<=1 anyway).
func Start(o Options) (*Transport, error) {
	if err := o.defaults(); err != nil {
		return nil, err
	}
	t := &Transport{o: o, dead: make(map[int]error)}
	if o.Ranks == 1 {
		t.n = &node{rank: 0, ranks: 1, maxFrame: o.MaxFrame}
		return t, nil
	}
	if err := t.start(); err != nil {
		t.teardown()
		return nil, fmt.Errorf("dist/net: start: %w", err)
	}
	return t, nil
}

func (t *Transport) start() error {
	tok := make([]byte, 16)
	if _, err := rand.Read(tok); err != nil {
		return err
	}
	t.token = hex.EncodeToString(tok)

	// Driver listener: children dial it for their control connection.
	var err error
	switch t.o.Network {
	case "unix":
		dir := t.o.Dir
		if dir == "" {
			dir, err = os.MkdirTemp("", "koala-dist-")
			if err != nil {
				return err
			}
			t.dir = dir
		}
		t.ln, err = net.Listen("unix", filepath.Join(dir, "r0.sock"))
	case "tcp":
		t.ln, err = net.Listen("tcp", "127.0.0.1:0")
	}
	if err != nil {
		return err
	}

	stderr := t.o.Stderr
	if stderr == nil {
		stderr = os.Stderr
	}
	sockDir := t.o.Dir
	if sockDir == "" {
		sockDir = t.dir
	}
	t.procs = make([]*exec.Cmd, t.o.Ranks)
	t.exited = make([]chan struct{}, t.o.Ranks)
	for r := 1; r < t.o.Ranks; r++ {
		cmd := exec.Command(t.o.Exe)
		cmd.Env = append(os.Environ(),
			"KOALA_RANK_MODE=1",
			"KOALA_RANK="+strconv.Itoa(r),
			"KOALA_RANK_N="+strconv.Itoa(t.o.Ranks),
			"KOALA_RANK_NET="+t.o.Network,
			"KOALA_RANK_ADDR="+t.ln.Addr().String(),
			"KOALA_RANK_DIR="+sockDir,
			"KOALA_RANK_TOKEN="+t.token,
			"KOALA_RANK_TIMEOUT="+t.o.OpTimeout.String(),
			"KOALA_RANK_MAXFRAME="+strconv.Itoa(t.o.MaxFrame),
		)
		cmd.Stdout = stderr
		cmd.Stderr = stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("spawn rank %d: %w", r, err)
		}
		t.procs[r] = cmd
		t.exited[r] = make(chan struct{})
		t.wg.Add(1)
		go t.monitor(r)
	}

	// Accept one control connection per child; hello carries the rank,
	// the shared-secret token, and the child's own listen address.
	conns := make([]*conn, t.o.Ranks)
	addrs := make([]string, t.o.Ranks)
	deadline := time.Now().Add(t.o.ConnectTimeout)
	for i := 1; i < t.o.Ranks; i++ {
		setAcceptDeadline(t.ln, deadline)
		raw, err := t.ln.Accept()
		if err != nil {
			return fmt.Errorf("accept rank handshake: %w (%v)", err, t.deadSummary())
		}
		c := newConn(raw, t.o.OpTimeout)
		f, err := c.expectFrame(ftHello, 0)
		if err != nil {
			return fmt.Errorf("rank hello: %w", err)
		}
		tokAddr := strings.SplitN(string(f.body), "\n", 2)
		if len(tokAddr) != 2 || tokAddr[0] != t.token {
			raw.Close()
			return fmt.Errorf("rank %d hello rejected: bad token", f.from)
		}
		r := int(f.from)
		if r < 1 || r >= t.o.Ranks || conns[r] != nil {
			raw.Close()
			return fmt.Errorf("rank hello with invalid rank %d", r)
		}
		conns[r] = c
		addrs[r] = tokAddr[1]
	}

	// Tell every child where its peers listen, then wait for each to
	// finish its own mesh wiring and report ready.
	peers := []byte(strings.Join(addrs, "\n"))
	for r := 1; r < t.o.Ranks; r++ {
		if err := conns[r].writeFrame(ftPeers, 0, 0, 0, peers); err != nil {
			return fmt.Errorf("send peers to rank %d: %w", r, err)
		}
	}
	for r := 1; r < t.o.Ranks; r++ {
		if _, err := conns[r].expectFrame(ftReady, 0); err != nil {
			return fmt.Errorf("rank %d ready: %w", r, err)
		}
	}

	t.mu.Lock()
	t.n = &node{rank: 0, ranks: t.o.Ranks, conns: conns, maxFrame: t.o.MaxFrame}
	t.mu.Unlock()
	return nil
}

func setAcceptDeadline(ln net.Listener, d time.Time) {
	type deadliner interface{ SetDeadline(time.Time) error }
	if dl, ok := ln.(deadliner); ok {
		dl.SetDeadline(d)
	}
}

// monitor reaps one child (started at spawn time, so no child is ever
// left a zombie). An exit before Close is a transport failure: the
// cause is recorded for error attribution and the rank's connection is
// closed so any collective blocked on it fails immediately.
func (t *Transport) monitor(r int) {
	defer t.wg.Done()
	err := t.procs[r].Wait()
	close(t.exited[r])
	t.mu.Lock()
	closing := t.closing
	if !closing {
		if err == nil {
			err = errors.New("exited before job end")
		}
		t.dead[r] = err
		if t.n != nil && t.n.conns != nil && t.n.conns[r] != nil {
			t.n.conns[r].Close()
		}
	}
	t.mu.Unlock()
	if !closing {
		// Surface the failure even if the driver is between collectives.
		t.fail(fmt.Errorf("rank %d died: %v", r, err))
	}
}

func (t *Transport) Name() string { return "net/" + t.o.Network }
func (t *Transport) Ranks() int   { return t.o.Ranks }

// Run executes one collective across all ranks and returns its measured
// wall-clock seconds (command fan-out through last acknowledgement).
func (t *Transport) Run(op dist.Op, totalBytes int64) (float64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return 0, t.err
	}
	if t.closing {
		return 0, errors.New("dist/net: transport closed")
	}
	if t.o.Ranks == 1 {
		return 0, nil
	}
	t.seq++
	seq := t.seq
	start := time.Now()
	for r := 1; r < t.o.Ranks; r++ {
		if err := t.n.conns[r].writeFrame(ftCmd, byte(op), 0, seq, cmdBody(totalBytes)); err != nil {
			return 0, t.failLocked(fmt.Errorf("command rank %d: %w", r, err))
		}
	}
	if err := t.n.run(op, totalBytes, seq); err != nil {
		return 0, t.failLocked(fmt.Errorf("%v: %w", op, err))
	}
	for r := 1; r < t.o.Ranks; r++ {
		if _, err := t.n.conns[r].expectFrame(ftAck, seq); err != nil {
			return 0, t.failLocked(fmt.Errorf("%v ack from rank %d: %w", op, r, err))
		}
	}
	secs := time.Since(start).Seconds()
	telemetry.Observe("dist_measured_comm_seconds", secs,
		telemetry.Label{Key: "op", Value: op.String()})
	return secs, nil
}

// fail records err as the sticky transport error (unless one is already
// set), tears the job down, and fires OnFailure once.
func (t *Transport) fail(err error) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.failLocked(err)
}

func (t *Transport) failLocked(err error) error {
	if t.err != nil {
		return t.err
	}
	if t.closing {
		return err
	}
	// Attribute to a recorded child death when one explains the I/O error.
	if len(t.dead) > 0 {
		err = fmt.Errorf("%w (%s)", err, t.deadSummary())
	}
	t.err = fmt.Errorf("dist/net: %w", err)
	t.teardownLocked()
	if t.o.OnFailure != nil {
		go t.o.OnFailure(t.err)
	}
	return t.err
}

func (t *Transport) deadSummary() string {
	if len(t.dead) == 0 {
		return "no ranks reported dead"
	}
	parts := make([]string, 0, len(t.dead))
	for r, e := range t.dead {
		parts = append(parts, fmt.Sprintf("rank %d: %v", r, e))
	}
	return strings.Join(parts, "; ")
}

// Close tears the job down: children get a bye frame (they exit on it,
// or on the control-connection EOF that follows), stragglers are
// killed, and the socket dir is removed. No orphans survive Close.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closing {
		t.mu.Unlock()
		t.wg.Wait()
		return nil
	}
	t.closing = true
	if t.n != nil && t.n.conns != nil {
		for r := 1; r < t.o.Ranks; r++ {
			if c := t.n.conns[r]; c != nil {
				c.writeFrame(ftBye, 0, 0, 0, nil)
			}
		}
	}
	t.teardownLocked()
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}

// teardown outside a held lock (start-path cleanup).
func (t *Transport) teardown() {
	t.mu.Lock()
	t.closing = true
	t.teardownLocked()
	t.mu.Unlock()
	t.wg.Wait()
}

// teardownLocked closes the mesh and reaps every child, escalating to
// SIGKILL after a grace period. Called with t.mu held; marks closing so
// monitors treat subsequent exits as expected.
func (t *Transport) teardownLocked() {
	t.closing = true
	if t.ln != nil {
		t.ln.Close()
		t.ln = nil
	}
	if t.n != nil && t.n.conns != nil {
		for _, c := range t.n.conns {
			if c != nil {
				c.Close()
			}
		}
	}
	for r, cmd := range t.procs {
		if cmd == nil || cmd.Process == nil {
			continue
		}
		if _, dead := t.dead[r]; dead {
			continue
		}
		// Children exit on bye/EOF; give each a grace period, then kill.
		// The spawn-time monitor reaps it either way.
		go func(cmd *exec.Cmd, exited <-chan struct{}) {
			select {
			case <-exited:
			case <-time.After(2 * time.Second):
				cmd.Process.Kill()
			}
		}(cmd, t.exited[r])
	}
	if t.dir != "" {
		dir := t.dir
		t.dir = ""
		// Remove once the children (whose sockets live there) are gone.
		go func() {
			t.wg.Wait()
			os.RemoveAll(dir)
		}()
	}
}
