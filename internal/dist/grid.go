package dist

import (
	"math"
	"sync"

	"gokoala/internal/tensor"
)

// Grid is an SPMD execution context: a machine model plus the accumulated
// communication and computation accounting of every distributed operation
// executed on it. Block computations really execute as one goroutine per
// (occupied) rank over disjoint row blocks; the accounting converts the
// measured message, byte, and flop counts into modeled seconds on the
// machine.
//
// All accounting entry points are safe to drive from multiple task-group
// workers concurrently: time accumulates in integer picoseconds under the
// mutex, so the totals are independent of the interleaving (integer
// addition commutes; float summation would make the stats depend on
// worker count). The exceptions are Sequential and PartialParallel, which
// attribute a *measured* global flop delta and therefore still require a
// single driving goroutine — concurrent callers should charge analytic
// counts through ChargeFlops instead.
type Grid struct {
	Machine Machine

	mu          sync.Mutex
	msgs        int64
	bytes       int64
	commLatPs   int64 // alpha (message startup) time, picoseconds
	bwGemmPs    int64 // GEMM-lower-bound traffic (scales ~ flops/sqrt(memory))
	bwBigPs     int64 // full-tensor redistributions and gathers (scale ~ r^4)
	bwSmallPs   int64 // small-matrix collectives of the Gram path (scale ~ r^2)
	compPs      int64
	parFlops    int64
	seqFlops    int64
	redistCount int64

	// Per-op modeled communication time, for the modeled-vs-measured
	// split of koala-obs report (OpGemm has no measured counterpart).
	modeledOpPs [NumOps]int64

	// Real-transport state: the attached transport (nil = in-process),
	// its first error, and the measured wall-clock per collective
	// recorded beside the modeled accounting. See transport.go.
	transport    Transport
	transportErr error
	measOps      [NumOps]int64
	measPs       [NumOps]int64

	// Per-rank timeline accounts and the label naming this grid in
	// emitted rank records; see timeline.go.
	ranks []rankAcct
	label string
}

// picos converts modeled seconds to the integer picoseconds the
// accumulators hold. A picosecond is far below the alpha of any machine
// model (Stampede2 alpha is 10 us), so the rounding is invisible, while
// integer accumulation makes concurrent metering order-independent.
func picos(secs float64) int64 { return int64(math.Round(secs * 1e12)) }

func secs(ps int64) float64 { return float64(ps) / 1e12 }

// NewGrid returns a grid for the given machine model. While obs
// collection is enabled the grid also registers for end-of-run rank
// timeline emission (see FlushTimelines).
func NewGrid(m Machine) *Grid {
	if m.Ranks < 1 {
		m.Ranks = 1
	}
	g := &Grid{Machine: m}
	registerGrid(g)
	return g
}

// Stats is a snapshot of a grid's accounting. Subtract two snapshots with
// Sub to measure a region.
type Stats struct {
	Msgs  int64
	Bytes int64
	// CommLatencySeconds is the alpha (message startup) component of
	// communication time; the three bandwidth components split the beta
	// (byte transfer) time by how the payload scales with bond dimension:
	// GEMM-lower-bound traffic, full-tensor moves, and the small-matrix
	// collectives of the Gram method.
	CommLatencySeconds float64
	BWGemmSeconds      float64
	BWBigSeconds       float64
	BWSmallSeconds     float64
	CompSeconds        float64
	ParallelFlops      int64
	SequentialFlops    int64
	Redistributions    int64
	// MeasuredOps and MeasuredCommSeconds are the real-transport side of
	// the accounting: how many collectives actually moved bytes between
	// rank processes and the wall-clock they took. Both stay zero on the
	// in-process engine, and neither is deterministic — compare modeled
	// accounting across transports with ModeledOnly.
	MeasuredOps         int64
	MeasuredCommSeconds float64
}

// ModeledOnly returns the deterministic machine-model part of the
// snapshot with the measured (wall-clock) fields zeroed, so modeled
// accounting can be compared bit-for-bit across transports.
func (s Stats) ModeledOnly() Stats {
	s.MeasuredOps = 0
	s.MeasuredCommSeconds = 0
	return s
}

// CommBandwidthSeconds is the total byte-transfer time.
func (s Stats) CommBandwidthSeconds() float64 {
	return s.BWGemmSeconds + s.BWBigSeconds + s.BWSmallSeconds
}

// CommSeconds is the total communication time.
func (s Stats) CommSeconds() float64 { return s.CommLatencySeconds + s.CommBandwidthSeconds() }

// Sub returns s - prev, the accounting of the region between two snapshots.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Msgs:               s.Msgs - prev.Msgs,
		Bytes:              s.Bytes - prev.Bytes,
		CommLatencySeconds: s.CommLatencySeconds - prev.CommLatencySeconds,
		BWGemmSeconds:      s.BWGemmSeconds - prev.BWGemmSeconds,
		BWBigSeconds:       s.BWBigSeconds - prev.BWBigSeconds,
		BWSmallSeconds:     s.BWSmallSeconds - prev.BWSmallSeconds,
		CompSeconds:        s.CompSeconds - prev.CompSeconds,
		ParallelFlops:      s.ParallelFlops - prev.ParallelFlops,
		SequentialFlops:    s.SequentialFlops - prev.SequentialFlops,
		Redistributions:    s.Redistributions - prev.Redistributions,

		MeasuredOps:         s.MeasuredOps - prev.MeasuredOps,
		MeasuredCommSeconds: s.MeasuredCommSeconds - prev.MeasuredCommSeconds,
	}
}

// ModeledSeconds is the modeled wall time of the region: communication
// plus compute (compute was already divided by the parallelism each
// kernel achieves when it was recorded).
func (s Stats) ModeledSeconds() float64 { return s.CommSeconds() + s.CompSeconds }

// Reset zeroes all counters, including the per-rank timelines.
func (g *Grid) Reset() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.msgs, g.bytes, g.parFlops, g.seqFlops, g.redistCount = 0, 0, 0, 0, 0
	g.commLatPs, g.bwGemmPs, g.bwBigPs, g.bwSmallPs, g.compPs = 0, 0, 0, 0, 0
	g.modeledOpPs = [NumOps]int64{}
	g.measOps = [NumOps]int64{}
	g.measPs = [NumOps]int64{}
	g.ranks = nil
}

// Snapshot returns the current counters.
func (g *Grid) Snapshot() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	var mOps, mPs int64
	for op := Op(0); op < NumOps; op++ {
		mOps += g.measOps[op]
		mPs += g.measPs[op]
	}
	return Stats{
		Msgs:               g.msgs,
		Bytes:              g.bytes,
		CommLatencySeconds: secs(g.commLatPs),
		BWGemmSeconds:      secs(g.bwGemmPs),
		BWBigSeconds:       secs(g.bwBigPs),
		BWSmallSeconds:     secs(g.bwSmallPs),
		CompSeconds:        secs(g.compPs),
		ParallelFlops:      g.parFlops,
		SequentialFlops:    g.seqFlops,
		Redistributions:    g.redistCount,

		MeasuredOps:         mOps,
		MeasuredCommSeconds: secs(mPs),
	}
}

// OpStats is the per-collective modeled-vs-measured split of one op.
type OpStats struct {
	Op              Op
	ModeledSeconds  float64
	MeasuredSeconds float64
	MeasuredOps     int64
}

// OpBreakdown returns the per-op modeled and measured communication
// accounting, in Op order (OpGemm last, always measured-zero).
func (g *Grid) OpBreakdown() []OpStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]OpStats, 0, NumOps)
	for op := Op(0); op < NumOps; op++ {
		out = append(out, OpStats{
			Op:              op,
			ModeledSeconds:  secs(g.modeledOpPs[op]),
			MeasuredSeconds: secs(g.measPs[op]),
			MeasuredOps:     g.measOps[op],
		})
	}
	return out
}

// --- collective accounting ---

// bandwidth classes for addComm
type bwClass int

const (
	bwClassGemm bwClass = iota
	bwClassBig
	bwClassSmall
)

// addComm records one collective's modeled cost. The obs-counter mirror
// (observeComm) runs while g.mu is still held: the obs totals therefore
// advance in the same order as the grid's own counters, so a concurrent
// snapshot can never observe grid totals ahead of (or behind) the
// published samples — publishing after unlock let collectives racing on
// the same grid publish out of order relative to the counters they
// describe.
func (g *Grid) addComm(op Op, msgs int64, bytes int64, latSecs, bwSecs float64, class bwClass, redists int64) {
	latPs, bwPs := picos(latSecs), picos(bwSecs)
	g.mu.Lock()
	g.msgs += msgs
	g.bytes += bytes
	g.commLatPs += latPs
	switch class {
	case bwClassGemm:
		g.bwGemmPs += bwPs
	case bwClassBig:
		g.bwBigPs += bwPs
	default:
		g.bwSmallPs += bwPs
	}
	g.modeledOpPs[op] += latPs + bwPs
	g.redistCount += redists
	g.rankComm(latPs, bwPs)
	observeComm(op, msgs, bytes, latSecs+bwSecs, redists)
	g.mu.Unlock()
}

// Allgather meters an allgather of totalBytes aggregate payload.
func (g *Grid) Allgather(totalBytes int64) {
	if g.Machine.Ranks <= 1 {
		return
	}
	lat, bw := g.Machine.allgatherSeconds(totalBytes)
	g.addComm(OpAllgather, int64(g.Machine.Ranks), totalBytes, lat, bw, bwClassBig, 0)
	g.realize(OpAllgather, totalBytes)
}

// Allreduce meters an allreduce of a bytes-sized buffer replicated on
// every rank (recursive halving/doubling: twice the allgather volume).
func (g *Grid) Allreduce(bytes int64) {
	if g.Machine.Ranks <= 1 {
		return
	}
	lat, bw := g.Machine.allgatherSeconds(bytes)
	g.addComm(OpAllreduce, 2*log2msgs(g.Machine.Ranks), bytes, 2*lat, 2*bw, bwClassSmall, 0)
	g.realize(OpAllreduce, bytes)
}

// AllToAll meters a full redistribution (the cost of a distributed
// reshape or transpose, the bottleneck paper section V-C removes).
func (g *Grid) AllToAll(totalBytes int64) {
	if g.Machine.Ranks <= 1 {
		return
	}
	lat, bw := g.Machine.alltoallSeconds(totalBytes)
	g.addComm(OpAllToAll, int64(g.Machine.Ranks)*int64(g.Machine.Ranks-1), totalBytes, lat, bw, bwClassBig, 1)
	g.realize(OpAllToAll, totalBytes)
}

// Gather meters collecting a distributed tensor onto one rank (or the
// reverse scatter; the cost model is symmetric).
func (g *Grid) Gather(totalBytes int64) {
	if g.Machine.Ranks <= 1 {
		return
	}
	lat, bw := g.Machine.gatherSeconds(totalBytes)
	g.addComm(OpGather, int64(g.Machine.Ranks), totalBytes, lat, bw, bwClassBig, 0)
	g.realize(OpGather, totalBytes)
}

// Bcast meters broadcasting bytes from one rank to all.
func (g *Grid) Bcast(bytes int64) {
	if g.Machine.Ranks <= 1 {
		return
	}
	lat, bw := g.Machine.bcastSeconds(bytes)
	g.addComm(OpBcast, log2msgs(g.Machine.Ranks), bytes, lat, bw, bwClassSmall, 0)
	g.realize(OpBcast, bytes)
}

func log2msgs(p int) int64 {
	n := int64(0)
	for v := 1; v < p; v <<= 1 {
		n++
	}
	return n
}

// ParallelFlops credits flops that are evenly distributed over the ranks.
func (g *Grid) ParallelFlops(n int64) { g.ChargeFlops(n, g.Machine.Ranks) }

// ChargeFlops accounts an analytic flop count n at an effective
// parallelism of eff ranks (clamped to [1, Ranks]). Unlike Sequential and
// PartialParallel it never reads the measured global flop counter, so it
// is safe — and exact — when concurrent task-group workers drive the same
// grid: linalg exposes the analytic counts its kernels charge (SVDFlops,
// QRFlops, EigFlops) precisely so callers can meter this way.
func (g *Grid) ChargeFlops(n int64, eff int) {
	if eff < 1 {
		eff = 1
	}
	if eff > g.Machine.Ranks {
		eff = g.Machine.Ranks
	}
	s := g.Machine.Gamma * float64(n) / float64(eff)
	p := picos(s)
	g.mu.Lock()
	if eff == 1 {
		g.seqFlops += n
	} else {
		g.parFlops += n
	}
	g.compPs += p
	g.rankComp(p, eff)
	observeComp(s)
	g.mu.Unlock()
}

// Sequential runs f, measuring the flops it adds to the global tensor
// counter, and accounts them as single-rank work (small local matrices in
// the Gram-method path, paper Algorithm 5 steps 3-8). The measured delta
// includes any flops charged concurrently by other goroutines, so this
// must only be used from a single driving goroutine; concurrent metering
// goes through ChargeFlops.
func (g *Grid) Sequential(f func()) { g.PartialParallel(1, f) }

// PartialParallel runs f and accounts its measured flops at an effective
// parallelism of eff ranks. This models kernels like ScaLAPACK SVD whose
// scalability saturates well below the GEMM-style rank count. Like
// Sequential it attributes a global measured delta and is not safe for
// concurrent drivers; prefer ChargeFlops with an analytic count.
func (g *Grid) PartialParallel(eff int, f func()) {
	if eff < 1 {
		eff = 1
	}
	if eff > g.Machine.Ranks {
		eff = g.Machine.Ranks
	}
	before := tensor.FlopCount()
	f()
	delta := tensor.FlopCount() - before
	g.ChargeFlops(delta, eff)
}

const bytesPerElem = 16 // complex128

// GemmComm meters the communication of one distributed GEMM of the given
// total flop count over operands/result totalling elems tensor elements.
// Cyclops-class frameworks choose processor mappings approaching the
// communication lower bound for matrix multiplication (Irony, Toledo,
// Tiskin): per-rank traffic >= flops_per_rank / sqrt(local memory), with
// ~2 sqrt(P) message rounds. We charge exactly that bound; simpler
// 2-D algorithms would only be a constant factor away.
func (g *Grid) GemmComm(flops, elems int64) {
	p := g.Machine.Ranks
	if p <= 1 {
		return
	}
	perRank := float64(elems) / float64(p)
	if perRank < 1 {
		perRank = 1
	}
	bwBytes := 2 * bytesPerElem * float64(flops) / float64(p) / math.Sqrt(perRank)
	rounds := 2 * math.Sqrt(float64(p))
	g.addComm(OpGemm, int64(rounds), int64(bwBytes), g.Machine.alphaEff()*rounds, g.Machine.betaEff()*bwBytes, bwClassGemm, 0)
}

// --- distributed kernels ---

// workers returns how many rank goroutines to actually spawn for a block
// computation of `rows` rows totalling `flops` work: never more than rows
// or ranks, and few enough that each goroutine gets a meaningful chunk
// (spawning 64 goroutines for a 100-flop multiply would measure scheduler
// overhead, not the algorithm). The accounting is unaffected — modeled
// costs always use the full rank count.
func (g *Grid) workers(rows int, flops int64) int {
	w := g.Machine.Ranks
	if rows < w {
		w = rows
	}
	if byWork := int(flops/32768) + 1; byWork < w {
		w = byWork
	}
	if w < 1 {
		w = 1
	}
	return w
}

// MatMul computes C = A @ B with A row-block distributed across the
// ranks. The stationary operand B is allgathered, each rank goroutine
// computes its own row block with the sequential kernel, and the row
// blocks concatenate into C (which stays row-distributed, so no gather
// is metered).
func (g *Grid) MatMul(a, b *tensor.Dense) *tensor.Dense {
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(1)
	flops := int64(m) * int64(n) * int64(k)
	g.GemmComm(flops, int64(a.Size()+b.Size())+int64(m)*int64(n))
	g.ParallelFlops(flops)

	out := tensor.New(m, n)
	w := g.workers(m, flops)
	var wg sync.WaitGroup
	for r := 0; r < w; r++ {
		lo := m * r / w
		hi := m * (r + 1) / w
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			ablk := tensor.FromData(a.Data()[lo*k:hi*k], hi-lo, k)
			cblk := tensor.MatMul(ablk, b)
			copy(out.Data()[lo*n:hi*n], cblk.Data())
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// BatchMatMul is the batched counterpart used by einsum lowering: operands
// [bt, m, k] and [bt, k, n]. The batch is distributed when it is at least
// the rank count, otherwise each slice's rows are distributed.
func (g *Grid) BatchMatMul(a, b *tensor.Dense) *tensor.Dense {
	bt, m, k := a.Dim(0), a.Dim(1), a.Dim(2)
	n := b.Dim(2)
	if bt == 1 {
		return g.MatMul(a.Reshape(m, k), b.Reshape(k, n)).Reshape(1, m, n)
	}
	flops := int64(bt) * int64(m) * int64(n) * int64(k)
	g.GemmComm(flops, int64(a.Size()+b.Size())+int64(bt)*int64(m)*int64(n))
	g.ParallelFlops(flops)
	out := tensor.New(bt, m, n)
	w := g.workers(bt, flops)
	var wg sync.WaitGroup
	for r := 0; r < w; r++ {
		lo := bt * r / w
		hi := bt * (r + 1) / w
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			ablk := tensor.FromData(a.Data()[lo*m*k:hi*m*k], hi-lo, m, k)
			bblk := tensor.FromData(b.Data()[lo*k*n:hi*k*n], hi-lo, k, n)
			cblk := tensor.BatchMatMul(ablk, bblk)
			copy(out.Data()[lo*m*n:hi*m*n], cblk.Data())
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// GramMatrix computes G = A^H A for a row-block distributed m-by-n A
// without any redistribution: each rank forms the n-by-n Gram matrix of
// its own row block locally and the contributions are allreduced. This is
// the communication pattern that makes paper Algorithm 5 cheap — only
// n^2 elements ever cross the network.
func (g *Grid) GramMatrix(a *tensor.Dense) *tensor.Dense {
	m, n := a.Dim(0), a.Dim(1)
	flops := int64(m) * int64(n) * int64(n)
	g.ParallelFlops(flops)
	w := g.workers(m, flops)
	partials := make([]*tensor.Dense, w)
	var wg sync.WaitGroup
	for r := 0; r < w; r++ {
		lo := m * r / w
		hi := m * (r + 1) / w
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(r, lo, hi int) {
			defer wg.Done()
			ablk := tensor.FromData(a.Data()[lo*n:hi*n], hi-lo, n)
			partials[r] = tensor.MatMul(ablk.Conj().Transpose(1, 0), ablk)
		}(r, lo, hi)
	}
	wg.Wait()
	g.Allreduce(int64(n) * int64(n) * bytesPerElem)
	sum := tensor.New(n, n)
	for _, p := range partials {
		if p != nil {
			sum = sum.Add(p)
		}
	}
	return sum
}
