// Package optimize provides the derivative-free classical optimizer used
// by the VQE driver. The paper uses scipy's SLSQP; VQE treats the
// optimizer as a black box over the energy landscape, so the Nelder-Mead
// simplex method (documented substitution, DESIGN.md section 3) serves the
// same role with only function evaluations.
package optimize

import "sort"

// Result reports the outcome of a minimization.
type Result struct {
	X          []float64
	F          float64
	Evals      int
	Iterations int
	// History holds the best objective value after each iteration,
	// the convergence trace plotted in paper Figure 14.
	History []float64
}

// Options configures NelderMead.
type Options struct {
	// MaxIter bounds the number of simplex iterations (default 100).
	MaxIter int
	// FTol stops when the simplex function-value spread drops below it.
	FTol float64
	// InitialStep is the coordinate offset used to build the starting
	// simplex (default 0.5).
	InitialStep float64
	// OnIteration, if set, is called with (iteration, best x, best f)
	// after each iteration.
	OnIteration func(iter int, x []float64, f float64)
}

// NelderMead minimizes f starting from x0 using the standard
// reflection/expansion/contraction/shrink simplex rules.
func NelderMead(f func([]float64) float64, x0 []float64, opts Options) Result {
	n := len(x0)
	if n == 0 {
		panic("optimize: empty parameter vector")
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 100
	}
	step := opts.InitialStep
	if step == 0 {
		step = 0.5
	}
	ftol := opts.FTol
	if ftol <= 0 {
		ftol = 1e-10
	}

	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)

	evals := 0
	eval := func(x []float64) float64 {
		evals++
		return f(x)
	}

	type vertex struct {
		x []float64
		f float64
	}
	simplex := make([]vertex, n+1)
	simplex[0] = vertex{append([]float64{}, x0...), eval(x0)}
	for i := 0; i < n; i++ {
		x := append([]float64{}, x0...)
		x[i] += step
		simplex[i+1] = vertex{x, eval(x)}
	}
	sortSimplex := func() {
		sort.SliceStable(simplex, func(i, j int) bool { return simplex[i].f < simplex[j].f })
	}
	sortSimplex()

	var history []float64
	iter := 0
	for ; iter < maxIter; iter++ {
		best, worst := simplex[0], simplex[n]
		if worst.f-best.f < ftol {
			break
		}
		// Centroid of all but the worst vertex.
		centroid := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				centroid[j] += simplex[i].x[j] / float64(n)
			}
		}
		lin := func(a, b []float64, t float64) []float64 {
			out := make([]float64, n)
			for j := 0; j < n; j++ {
				out[j] = a[j] + t*(a[j]-b[j])
			}
			return out
		}
		xr := lin(centroid, worst.x, alpha)
		fr := eval(xr)
		switch {
		case fr < best.f:
			xe := lin(centroid, worst.x, gamma)
			fe := eval(xe)
			if fe < fr {
				simplex[n] = vertex{xe, fe}
			} else {
				simplex[n] = vertex{xr, fr}
			}
		case fr < simplex[n-1].f:
			simplex[n] = vertex{xr, fr}
		default:
			xc := lin(centroid, worst.x, -rho)
			fc := eval(xc)
			if fc < worst.f {
				simplex[n] = vertex{xc, fc}
			} else {
				// Shrink toward the best vertex.
				for i := 1; i <= n; i++ {
					x := make([]float64, n)
					for j := 0; j < n; j++ {
						x[j] = best.x[j] + sigma*(simplex[i].x[j]-best.x[j])
					}
					simplex[i] = vertex{x, eval(x)}
				}
			}
		}
		sortSimplex()
		history = append(history, simplex[0].f)
		if opts.OnIteration != nil {
			opts.OnIteration(iter, simplex[0].x, simplex[0].f)
		}
	}
	return Result{
		X:          append([]float64{}, simplex[0].x...),
		F:          simplex[0].f,
		Evals:      evals,
		Iterations: iter,
		History:    history,
	}
}
