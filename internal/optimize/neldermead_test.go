package optimize

import (
	"math"
	"testing"
)

func TestQuadraticBowl(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-1)*(x[0]-1) + 2*(x[1]+2)*(x[1]+2)
	}
	res := NelderMead(f, []float64{0, 0}, Options{MaxIter: 400, FTol: 1e-14})
	if math.Abs(res.X[0]-1) > 1e-4 || math.Abs(res.X[1]+2) > 1e-4 {
		t.Fatalf("minimum at %v, want (1,-2)", res.X)
	}
	if res.F > 1e-7 {
		t.Fatalf("f = %g", res.F)
	}
	if res.Evals == 0 || res.Iterations == 0 {
		t.Fatal("counters not recorded")
	}
}

func TestRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	res := NelderMead(f, []float64{-1.2, 1}, Options{MaxIter: 2000, FTol: 1e-16, InitialStep: 0.5})
	if math.Abs(res.X[0]-1) > 1e-3 || math.Abs(res.X[1]-1) > 1e-3 {
		t.Fatalf("Rosenbrock minimum at %v, want (1,1)", res.X)
	}
}

func TestHistoryNonIncreasing(t *testing.T) {
	f := func(x []float64) float64 { return x[0] * x[0] }
	res := NelderMead(f, []float64{3}, Options{MaxIter: 50})
	for i := 1; i < len(res.History); i++ {
		if res.History[i] > res.History[i-1]+1e-15 {
			t.Fatalf("best-so-far increased at %d: %g -> %g", i, res.History[i-1], res.History[i])
		}
	}
}

func TestOnIterationCallback(t *testing.T) {
	calls := 0
	f := func(x []float64) float64 { return x[0] * x[0] }
	NelderMead(f, []float64{2}, Options{MaxIter: 10, OnIteration: func(iter int, x []float64, fv float64) {
		calls++
	}})
	if calls == 0 {
		t.Fatal("OnIteration never called")
	}
}

func TestEarlyStopOnFTol(t *testing.T) {
	f := func(x []float64) float64 { return 0 } // flat
	res := NelderMead(f, []float64{1, 2, 3}, Options{MaxIter: 1000, FTol: 1e-9})
	if res.Iterations > 1 {
		t.Fatalf("flat function should stop immediately, took %d iterations", res.Iterations)
	}
}

func TestEmptyVectorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NelderMead(func(x []float64) float64 { return 0 }, nil, Options{})
}
