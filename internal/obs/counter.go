package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counters and gauges are registered once (package init of the
// instrumented layer) and incremented from hot paths, including
// concurrent rank goroutines; increments are a single atomic op and are
// skipped entirely while collection is disabled.

var registry struct {
	mu       sync.Mutex
	counters []*Counter
	floats   []*FloatCounter
	gauges   []*Gauge
}

// Counter is a monotonically increasing integer metric (flops, bytes
// moved, GEMM calls, messages).
type Counter struct {
	name string
	v    atomic.Int64
}

// NewCounter registers and returns a counter. Registering the same name
// twice returns distinct counters whose values are reported separately;
// callers should register at package init so names stay unique.
func NewCounter(name string) *Counter {
	c := &Counter{name: name}
	registry.mu.Lock()
	registry.counters = append(registry.counters, c)
	registry.mu.Unlock()
	return c
}

// Add increments the counter by n when collection is enabled.
func (c *Counter) Add(n int64) {
	if !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// FloatCounter is a monotonically increasing float metric (modeled
// seconds). Adds are lock-free compare-and-swap on the bit pattern.
type FloatCounter struct {
	name string
	bits atomic.Uint64
}

// NewFloatCounter registers and returns a float counter.
func NewFloatCounter(name string) *FloatCounter {
	c := &FloatCounter{name: name}
	registry.mu.Lock()
	registry.floats = append(registry.floats, c)
	registry.mu.Unlock()
	return c
}

// Add increments the counter by v when collection is enabled.
func (c *FloatCounter) Add(v float64) {
	if !enabled.Load() {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (c *FloatCounter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Name returns the counter's registered name.
func (c *FloatCounter) Name() string { return c.name }

// Gauge is a last-value float metric (SVD truncation error, current
// boundary bond dimension).
type Gauge struct {
	name string
	bits atomic.Uint64
	set  atomic.Bool
}

// NewGauge registers and returns a gauge.
func NewGauge(name string) *Gauge {
	g := &Gauge{name: name}
	registry.mu.Lock()
	registry.gauges = append(registry.gauges, g)
	registry.mu.Unlock()
	return g
}

// Set records v as the gauge's current value when collection is enabled.
func (g *Gauge) Set(v float64) {
	if !enabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
	g.set.Store(true)
}

// Value returns the gauge's current value and whether it was ever set.
func (g *Gauge) Value() (float64, bool) {
	return math.Float64frombits(g.bits.Load()), g.set.Load()
}

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// MetricValue is one entry of a metrics snapshot.
type MetricValue struct {
	Name  string
	Value float64
	// Kind is "counter", "float", or "gauge".
	Kind string
}

// Metrics returns a snapshot of every registered counter, float counter,
// and set gauge, sorted by name. Zero-valued counters are skipped so
// reports only show metrics the run actually touched.
func Metrics() []MetricValue {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	var out []MetricValue
	for _, c := range registry.counters {
		if v := c.Value(); v != 0 {
			out = append(out, MetricValue{Name: c.name, Value: float64(v), Kind: "counter"})
		}
	}
	for _, c := range registry.floats {
		if v := c.Value(); v != 0 {
			out = append(out, MetricValue{Name: c.name, Value: v, Kind: "float"})
		}
	}
	for _, g := range registry.gauges {
		if v, ok := g.Value(); ok {
			out = append(out, MetricValue{Name: g.name, Value: v, Kind: "gauge"})
		}
	}
	// Scratch-memory account (see mem.go): reported as gauges when the
	// run tracked any scratch at all.
	if p := PeakBytes(); p > 0 {
		out = append(out,
			MetricValue{Name: "mem.live_bytes", Value: float64(LiveBytes()), Kind: "gauge"},
			MetricValue{Name: "mem.peak_bytes", Value: float64(p), Kind: "gauge"})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// MetricValueOf returns the snapshot value of the named metric, or 0 if
// absent. Convenience for report code summing a single counter.
func MetricValueOf(name string) float64 {
	for _, m := range Metrics() {
		if m.Name == name {
			return m.Value
		}
	}
	return 0
}

// ResetCounters zeroes every registered counter, float counter, and
// gauge. Called by Enable so each enabled run starts from zero.
func ResetCounters() {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, c := range registry.counters {
		c.v.Store(0)
	}
	for _, c := range registry.floats {
		c.bits.Store(0)
	}
	for _, g := range registry.gauges {
		g.bits.Store(0)
		g.set.Store(false)
	}
	resetPeakBytes()
}
