package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// chromeEvents parses a flushed Chrome trace back into raw events.
func chromeEvents(t *testing.T, buf *bytes.Buffer) []map[string]interface{} {
	t.Helper()
	var evs []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	return evs
}

// The Chrome trace must place spans on pid 1 with tid = 1 + track, and
// child span timestamps must nest inside their parents.
func TestChromeTraceTracksAndNesting(t *testing.T) {
	cleanup()
	var buf bytes.Buffer
	Enable(NewChromeTraceSink(&buf))

	parent := Start("parent")
	lane := parent.StartChild("lane-work").SetTrack(2)
	lane.End()
	child := Start("child")
	child.End()
	parent.End()
	if err := Disable(); err != nil {
		t.Fatal(err)
	}

	byName := map[string]map[string]interface{}{}
	for _, e := range chromeEvents(t, &buf) {
		if e["ph"] == "X" {
			byName[e["name"].(string)] = e
		}
	}
	for name, wantTID := range map[string]float64{"parent": 1, "child": 1, "lane-work": 3} {
		e, ok := byName[name]
		if !ok {
			t.Fatalf("span %q missing from chrome trace", name)
		}
		if e["pid"].(float64) != 1 {
			t.Fatalf("%q on pid %v, want 1", name, e["pid"])
		}
		if e["tid"].(float64) != wantTID {
			t.Fatalf("%q on tid %v, want %v", name, e["tid"], wantTID)
		}
	}
	p, c := byName["parent"], byName["child"]
	pStart, pEnd := p["ts"].(float64), p["ts"].(float64)+p["dur"].(float64)
	cStart, cEnd := c["ts"].(float64), c["ts"].(float64)+c["dur"].(float64)
	if cStart < pStart || cEnd > pEnd+1 { // +1us for rounding
		t.Fatalf("child [%v,%v] not nested in parent [%v,%v]", cStart, cEnd, pStart, pEnd)
	}
}

// Rank timelines must land on their own per-grid process with one tid
// per rank and back-to-back segments.
func TestChromeTraceRankTracks(t *testing.T) {
	cleanup()
	var buf bytes.Buffer
	Enable(NewChromeTraceSink(&buf))

	EmitRank(RankRecord{
		Grid: "gridA", Rank: 0, CompSeconds: 2e-6,
		Segments: []RankSegment{{Kind: "compute", Seconds: 1e-6}, {Kind: "wait", Seconds: 1e-6}},
	})
	EmitRank(RankRecord{
		Grid: "gridA", Rank: 1, WaitSeconds: 2e-6,
		Segments: []RankSegment{{Kind: "wait", Seconds: 2e-6}},
	})
	if err := Disable(); err != nil {
		t.Fatal(err)
	}

	var meta, segs []map[string]interface{}
	for _, e := range chromeEvents(t, &buf) {
		switch e["ph"] {
		case "M":
			meta = append(meta, e)
		case "X":
			segs = append(segs, e)
		}
	}
	if len(meta) != 1 || meta[0]["pid"].(float64) != 2 {
		t.Fatalf("want one process_name meta event on pid 2, got %+v", meta)
	}
	if len(segs) != 3 {
		t.Fatalf("want 3 segment events, got %d", len(segs))
	}
	var cursor float64
	for _, e := range segs {
		if e["pid"].(float64) != 2 {
			t.Fatalf("rank segment on pid %v, want 2", e["pid"])
		}
		tid := e["tid"].(float64)
		if tid != 1 && tid != 2 {
			t.Fatalf("rank segment on tid %v, want 1 or 2", tid)
		}
		if tid == 1 { // rank 0: segments laid out back to back
			if e["ts"].(float64) != cursor {
				t.Fatalf("segment ts %v, want %v", e["ts"], cursor)
			}
			cursor += e["dur"].(float64)
		}
	}
}

// A JSONL log must round-trip rank totals bit-exactly; the segment
// detail is Chrome-trace-only (it would dominate the log size).
func TestJSONLRankRoundTrip(t *testing.T) {
	cleanup()
	var buf bytes.Buffer
	Enable(NewJSONLSink(&buf))

	want := RankRecord{
		Grid: "g", Rank: 3,
		CompSeconds: 0.125, LatSeconds: 0.25, BWSeconds: 0.0625, WaitSeconds: 0.5,
		Segments: []RankSegment{{Kind: "compute", Seconds: 0.125}},
	}
	EmitRank(want)
	if err := Disable(); err != nil {
		t.Fatal(err)
	}

	var got struct {
		Type string `json:"type"`
		RankRecord
	}
	line, err := buf.ReadBytes('\n') // leading writer-identity meta record
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(line, &got); err != nil {
		t.Fatal(err)
	}
	if got.Type != "meta" {
		t.Fatalf("leading record type %q, want meta", got.Type)
	}
	line, err = buf.ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(line, &got); err != nil {
		t.Fatal(err)
	}
	if got.Type != "rank" {
		t.Fatalf("record type %q, want rank", got.Type)
	}
	if got.Grid != want.Grid || got.Rank != want.Rank ||
		got.CompSeconds != want.CompSeconds || got.LatSeconds != want.LatSeconds ||
		got.BWSeconds != want.BWSeconds || got.WaitSeconds != want.WaitSeconds {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", want, got.RankRecord)
	}
	if len(got.Segments) != 0 {
		t.Fatalf("JSONL rank records must omit segment detail, got %d segments", len(got.Segments))
	}
}
