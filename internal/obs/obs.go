// Package obs is the unified tracing and metrics layer of gokoala: a
// lightweight, allocation-conscious substrate every layer (backend,
// einsum, dist, peps, mps, bench) reports into, so a run can be broken
// down into the paper's phases — contraction, orthogonalization, SVD,
// communication — end to end (the accounting behind paper Figures 7-10
// and Table II).
//
// The package is disabled by default and its hot-path entry points are
// near-free when disabled: Start performs one atomic load and returns a
// nil *Span whose methods are all nil-receiver no-ops, and counters skip
// their atomic add. Enabling installs zero or more sinks:
//
//   - JSONLSink: one JSON object per completed span, plus a final
//     counters record; machine-readable event log.
//   - ChromeTraceSink: Chrome trace_event JSON loadable in
//     chrome://tracing or https://ui.perfetto.dev.
//   - the built-in phase summary (always collected while enabled),
//     printed with WriteSummary.
//
// Span hierarchy follows the library's execution model: the public APIs
// of the tensor-network layer are driven from a single orchestrating
// goroutine (see dist.Grid), so spans nest on a simple stack. Counters
// are fully concurrent (rank goroutines increment them); only span
// Start/End assume the orchestrating goroutine. Spans started from other
// goroutines are still safe (a mutex guards the stack) but may attach to
// a surprising parent.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// enabled is the global fast-path switch; all public entry points load
// it before doing any work.
var enabled atomic.Bool

// Enabled reports whether tracing/metrics collection is on.
func Enabled() bool { return enabled.Load() }

// tracer is the package-global collector state behind the mutex.
var tracer struct {
	mu      sync.Mutex
	stack   []*Span // active spans, innermost last
	sinks   []Sink
	summary map[string]*phaseAgg
	origin  time.Time // trace epoch for relative timestamps
}

// Enable turns collection on, installing the given sinks (zero sinks is
// valid: counters and the phase summary are still collected). It resets
// all counters, the summary, and the span stack, so a run's totals start
// from zero.
func Enable(sinks ...Sink) {
	tracer.mu.Lock()
	tracer.sinks = append([]Sink(nil), sinks...)
	tracer.stack = nil
	tracer.summary = make(map[string]*phaseAgg)
	tracer.origin = time.Now()
	tracer.mu.Unlock()
	ResetCounters()
	enabled.Store(true)
}

// Disable turns collection off and flushes and detaches the sinks,
// returning the first flush error. Spans still open are dropped.
func Disable() error {
	enabled.Store(false)
	tracer.mu.Lock()
	sinks := tracer.sinks
	tracer.sinks = nil
	tracer.stack = nil
	tracer.mu.Unlock()
	var first error
	for _, s := range sinks {
		if err := s.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Attr is one key/value annotation on a span. Values are kept as the
// small set of types the sinks know how to serialize.
type Attr struct {
	Key string
	Str string
	Num float64
	Int int64
	// Kind: 0 string, 1 float, 2 int.
	Kind uint8
}

// Span is one timed region. A nil *Span (what Start returns while
// disabled) is valid: every method is a no-op.
type Span struct {
	name     string
	start    time.Time
	parent   *Span
	depth    int
	attrs    []Attr
	childDur time.Duration
}

// Start opens a span nested under the innermost open span. While
// disabled it returns nil without allocating.
func Start(name string) *Span {
	if !enabled.Load() {
		return nil
	}
	s := &Span{name: name, start: time.Now()}
	tracer.mu.Lock()
	if n := len(tracer.stack); n > 0 {
		s.parent = tracer.stack[n-1]
		s.depth = s.parent.depth + 1
	}
	tracer.stack = append(tracer.stack, s)
	tracer.mu.Unlock()
	pprofPush(name)
	return s
}

// SetStr annotates the span with a string attribute.
func (s *Span) SetStr(key, v string) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, Attr{Key: key, Str: v, Kind: 0})
	return s
}

// SetFloat annotates the span with a numeric attribute. Float attributes
// are summed per span name in the phase summary, which is how modeled
// seconds from the dist machine model appear alongside measured seconds.
func (s *Span) SetFloat(key string, v float64) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, Attr{Key: key, Num: v, Kind: 1})
	return s
}

// SetInt annotates the span with an integer attribute. Like float
// attributes, integer attributes are summed per span name in the
// phase summary.
func (s *Span) SetInt(key string, v int64) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, Attr{Key: key, Int: v, Kind: 2})
	return s
}

// Event is a completed span as delivered to sinks. Offset is relative to
// the Enable call so traces start at t=0.
type Event struct {
	Name   string
	Offset time.Duration
	Dur    time.Duration
	Depth  int
	Attrs  []Attr
}

// End closes the span, attributing its duration to the phase summary and
// emitting it to the sinks. Safe on nil receivers and after Disable.
func (s *Span) End() {
	if s == nil {
		return
	}
	dur := time.Since(s.start)
	pprofPop()
	if !enabled.Load() {
		return
	}
	tracer.mu.Lock()
	// Pop s from the stack; tolerate out-of-order ends by searching from
	// the top (children ended late are simply removed where found).
	for i := len(tracer.stack) - 1; i >= 0; i-- {
		if tracer.stack[i] == s {
			tracer.stack = append(tracer.stack[:i], tracer.stack[i+1:]...)
			break
		}
	}
	if s.parent != nil {
		s.parent.childDur += dur
	}
	agg := tracer.summary[s.name]
	if agg == nil {
		agg = &phaseAgg{attrs: map[string]float64{}}
		tracer.summary[s.name] = agg
	}
	agg.count++
	agg.total += dur
	self := dur - s.childDur
	if self < 0 {
		self = 0
	}
	agg.self += self
	for _, a := range s.attrs {
		switch a.Kind {
		case 1:
			agg.attrs[a.Key] += a.Num
		case 2:
			agg.attrs[a.Key] += float64(a.Int)
		}
	}
	ev := Event{
		Name:   s.name,
		Offset: s.start.Sub(tracer.origin),
		Dur:    dur,
		Depth:  s.depth,
		Attrs:  s.attrs,
	}
	sinks := tracer.sinks
	tracer.mu.Unlock()
	for _, sk := range sinks {
		sk.SpanEnd(ev)
	}
}

// Flush flushes every installed sink, returning the first error.
func Flush() error {
	tracer.mu.Lock()
	sinks := append([]Sink(nil), tracer.sinks...)
	tracer.mu.Unlock()
	var first error
	for _, s := range sinks {
		if err := s.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// phaseAgg accumulates the per-span-name summary.
type phaseAgg struct {
	count int64
	total time.Duration
	self  time.Duration
	attrs map[string]float64
}

// PhaseStat is one row of the phase summary.
type PhaseStat struct {
	Name  string
	Count int64
	// Total is the cumulative wall time of all spans with this name;
	// Self excludes time spent in child spans, so Self sums to the
	// traced wall time without double counting.
	Total time.Duration
	Self  time.Duration
	// Attrs holds the per-name sums of numeric span attributes (e.g.
	// modeled_s, comm_bytes).
	Attrs map[string]float64
}

// Summary returns the per-phase aggregation collected since Enable,
// sorted by descending total time.
func Summary() []PhaseStat {
	tracer.mu.Lock()
	defer tracer.mu.Unlock()
	out := make([]PhaseStat, 0, len(tracer.summary))
	for name, a := range tracer.summary {
		attrs := make(map[string]float64, len(a.attrs))
		for k, v := range a.attrs {
			if !math.IsNaN(v) {
				attrs[k] = v
			}
		}
		out = append(out, PhaseStat{Name: name, Count: a.count, Total: a.total, Self: a.self, Attrs: attrs})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ResetSummary clears the per-phase aggregation (counters are separate;
// see ResetCounters). Useful between experiments sharing one Enable.
func ResetSummary() {
	tracer.mu.Lock()
	if tracer.summary != nil {
		tracer.summary = make(map[string]*phaseAgg)
	}
	tracer.mu.Unlock()
}
