// Package obs is the unified tracing and metrics layer of gokoala: a
// lightweight, allocation-conscious substrate every layer (backend,
// einsum, dist, peps, mps, bench) reports into, so a run can be broken
// down into the paper's phases — contraction, orthogonalization, SVD,
// communication — end to end (the accounting behind paper Figures 7-10
// and Table II).
//
// The package is disabled by default and its hot-path entry points are
// near-free when disabled: Start performs one atomic load and returns a
// nil *Span whose methods are all nil-receiver no-ops, and counters skip
// their atomic add. Enabling installs zero or more sinks:
//
//   - JSONLSink: one JSON object per completed span, plus a final
//     counters record; machine-readable event log (the input format of
//     cmd/koala-obs).
//   - ChromeTraceSink: Chrome trace_event JSON loadable in
//     chrome://tracing or https://ui.perfetto.dev.
//   - the built-in phase summary (always collected while enabled),
//     printed with WriteSummary.
//
// Span hierarchy is explicit: every span records its parent handle, and
// parents are resolved per goroutine. Start nests under the innermost
// span open on the *calling* goroutine; code that fans work out to other
// goroutines either passes a handle and calls StartChild, or binds a
// span to the worker goroutine with Adopt so the legacy Start path nests
// correctly inside the task body (this is what pool.Group and the kernel
// dispatch loops do). A goroutine with no open span and no adopted span
// attaches to the trace root — never to another goroutine's stack — so
// concurrent spans can no longer land under a racing, surprising parent.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// enabled is the global fast-path switch; all public entry points load
// it before doing any work.
var enabled atomic.Bool

// Enabled reports whether tracing/metrics collection is on.
func Enabled() bool { return enabled.Load() }

// nextSpanID hands out span ids, unique within a process run. Ids exist
// so offline analyzers (cmd/koala-obs) can rebuild the span tree from a
// JSONL log; they are assigned in start order and are therefore not
// deterministic across worker counts — analyzers must not diff them.
var nextSpanID atomic.Int64

// tracer is the package-global collector state behind the mutex.
type goStackMap map[uint64][]*Span

var tracer struct {
	mu sync.Mutex
	// goStacks holds the per-goroutine stacks of open spans: Start
	// pushes onto the calling goroutine's stack, Adopt binds a span to a
	// worker goroutine's stack. Entries are removed when a stack drains
	// so the map does not grow with goroutine churn.
	goStacks goStackMap
	sinks    []Sink
	summary  map[string]*phaseAgg
	origin   time.Time // trace epoch for relative timestamps
}

// Enable turns collection on, installing the given sinks (zero sinks is
// valid: counters and the phase summary are still collected). It resets
// all counters, the summary, and the span stacks, so a run's totals
// start from zero.
func Enable(sinks ...Sink) {
	tracer.mu.Lock()
	tracer.sinks = append([]Sink(nil), sinks...)
	tracer.goStacks = make(goStackMap)
	tracer.summary = make(map[string]*phaseAgg)
	tracer.origin = time.Now()
	tracer.mu.Unlock()
	ResetCounters()
	enabled.Store(true)
}

// AddSink attaches one more sink to an already-enabled tracer without
// resetting counters, the summary, or the trace origin — the way a
// driver routes its own spans into a per-run rank-trace directory after
// -trace/-metrics already installed their sinks. No-op while disabled.
func AddSink(s Sink) {
	if !enabled.Load() || s == nil {
		return
	}
	tracer.mu.Lock()
	tracer.sinks = append(tracer.sinks, s)
	tracer.mu.Unlock()
}

// Origin returns the trace epoch: the wall-clock instant of the Enable
// call that all span offsets are relative to. Zero while disabled.
// Multi-process trace merging (obsfile.MergeRanks) aligns per-rank logs
// by pairing each log's epoch with the measured inter-process clock
// offset.
func Origin() time.Time {
	tracer.mu.Lock()
	defer tracer.mu.Unlock()
	if !enabled.Load() {
		return time.Time{}
	}
	return tracer.origin
}

// Disable turns collection off and flushes and detaches the sinks,
// returning the first flush error. Spans still open are dropped.
func Disable() error {
	enabled.Store(false)
	tracer.mu.Lock()
	sinks := tracer.sinks
	tracer.sinks = nil
	tracer.goStacks = nil
	tracer.mu.Unlock()
	var first error
	for _, s := range sinks {
		if err := s.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Attr is one key/value annotation on a span. Values are kept as the
// small set of types the sinks know how to serialize.
type Attr struct {
	Key string
	Str string
	Num float64
	Int int64
	// Kind: 0 string, 1 float, 2 int.
	Kind uint8
}

// Span is one timed region. A nil *Span (what Start returns while
// disabled) is valid: every method is a no-op.
//
// A span is owned by the goroutine that starts it until End; the
// attribute setters are not synchronized. The one cross-goroutine field,
// childDur, is only touched under the tracer mutex in End.
type Span struct {
	name     string
	start    time.Time
	parent   *Span
	depth    int
	id       int64
	track    int
	attrs    []Attr
	childDur time.Duration
	// onStack/gid record which goroutine stack (if any) the span sits
	// on, so End can pop it. Spans created with StartChild are off-stack
	// until Adopt binds them to their executing goroutine.
	onStack bool
	gid     uint64
}

// newSpan allocates a span under parent (nil = trace root).
func newSpan(name string, parent *Span) *Span {
	s := &Span{name: name, start: time.Now(), parent: parent, id: nextSpanID.Add(1)}
	if parent != nil {
		s.depth = parent.depth + 1
		s.track = parent.track
	}
	return s
}

// Start opens a span nested under the innermost span open on the calling
// goroutine. On a goroutine with no open or adopted span the new span
// attaches to the trace root. While disabled it returns nil without
// allocating.
func Start(name string) *Span {
	if !enabled.Load() {
		return nil
	}
	gid := curGoID()
	tracer.mu.Lock()
	var parent *Span
	if st := tracer.goStacks[gid]; len(st) > 0 {
		parent = st[len(st)-1]
	}
	s := newSpan(name, parent)
	s.onStack, s.gid = true, gid
	if tracer.goStacks != nil {
		tracer.goStacks[gid] = append(tracer.goStacks[gid], s)
	}
	tracer.mu.Unlock()
	pprofPush(name)
	return s
}

// StartChild opens a span explicitly parented under s, from any
// goroutine — the handle-passing form task schedulers use to attribute
// work running on worker goroutines to the group that spawned it. The
// child is not bound to any goroutine stack; call Adopt to make legacy
// Start calls inside the task body nest under it. Returns nil on a nil
// receiver or while disabled.
func (s *Span) StartChild(name string) *Span {
	if s == nil || !enabled.Load() {
		return nil
	}
	return newSpan(name, s)
}

// Adopt binds the span to the calling goroutine as its innermost open
// span, so Start calls made by this goroutine (and kernels it invokes)
// nest under it. End unbinds. Typically called by a task runner right
// after StartChild, on the goroutine that will execute the task body.
func (s *Span) Adopt() {
	if s == nil || !enabled.Load() {
		return
	}
	gid := curGoID()
	tracer.mu.Lock()
	if tracer.goStacks != nil {
		s.onStack, s.gid = true, gid
		tracer.goStacks[gid] = append(tracer.goStacks[gid], s)
	}
	tracer.mu.Unlock()
}

// Current returns the innermost span open on the calling goroutine, or
// nil if there is none (or collection is disabled). Kernel dispatchers
// use it to pick up the span handle to parent worker-side chunks under.
func Current() *Span {
	if !enabled.Load() {
		return nil
	}
	gid := curGoID()
	tracer.mu.Lock()
	defer tracer.mu.Unlock()
	if st := tracer.goStacks[gid]; len(st) > 0 {
		return st[len(st)-1]
	}
	return nil
}

// SetTrack assigns the span (and, by inheritance, its future children)
// to a display track: 0 is the orchestrator, positive values are worker
// or rank lanes. Tracks map to Chrome trace tids.
func (s *Span) SetTrack(t int) *Span {
	if s == nil {
		return nil
	}
	s.track = t
	return s
}

// SetStr annotates the span with a string attribute.
func (s *Span) SetStr(key, v string) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, Attr{Key: key, Str: v, Kind: 0})
	return s
}

// SetFloat annotates the span with a numeric attribute. Float attributes
// are summed per span name in the phase summary, which is how modeled
// seconds from the dist machine model appear alongside measured seconds.
func (s *Span) SetFloat(key string, v float64) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, Attr{Key: key, Num: v, Kind: 1})
	return s
}

// SetInt annotates the span with an integer attribute. Like float
// attributes, integer attributes are summed per span name in the
// phase summary.
func (s *Span) SetInt(key string, v int64) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, Attr{Key: key, Int: v, Kind: 2})
	return s
}

// Event is a completed span as delivered to sinks. Offset is relative to
// the Enable call so traces start at t=0. ID/Parent let offline readers
// rebuild the tree (Parent 0 = trace root); Track is the display lane.
type Event struct {
	Name   string
	Offset time.Duration
	Dur    time.Duration
	Depth  int
	ID     int64
	Parent int64
	Track  int
	Attrs  []Attr
}

// End closes the span, attributing its duration to the phase summary and
// emitting it to the sinks. Safe on nil receivers and after Disable.
func (s *Span) End() {
	if s == nil {
		return
	}
	dur := time.Since(s.start)
	pprofPop()
	if !enabled.Load() {
		return
	}
	tracer.mu.Lock()
	if s.onStack {
		// Pop s from its goroutine's stack; tolerate out-of-order ends
		// by searching from the top (children ended late are simply
		// removed where found).
		st := tracer.goStacks[s.gid]
		for i := len(st) - 1; i >= 0; i-- {
			if st[i] == s {
				st = append(st[:i], st[i+1:]...)
				break
			}
		}
		if len(st) == 0 {
			delete(tracer.goStacks, s.gid)
		} else {
			tracer.goStacks[s.gid] = st
		}
		s.onStack = false
	}
	if s.parent != nil {
		s.parent.childDur += dur
	}
	agg := tracer.summary[s.name]
	if agg == nil {
		agg = &phaseAgg{attrs: map[string]float64{}}
		tracer.summary[s.name] = agg
	}
	agg.count++
	agg.total += dur
	self := dur - s.childDur
	if self < 0 {
		self = 0
	}
	agg.self += self
	for _, a := range s.attrs {
		switch a.Kind {
		case 1:
			agg.attrs[a.Key] += a.Num
		case 2:
			agg.attrs[a.Key] += float64(a.Int)
		}
	}
	var parentID int64
	if s.parent != nil {
		parentID = s.parent.id
	}
	ev := Event{
		Name:   s.name,
		Offset: s.start.Sub(tracer.origin),
		Dur:    dur,
		Depth:  s.depth,
		ID:     s.id,
		Parent: parentID,
		Track:  s.track,
		Attrs:  s.attrs,
	}
	sinks := tracer.sinks
	tracer.mu.Unlock()
	for _, sk := range sinks {
		sk.SpanEnd(ev)
	}
}

// Flush flushes every installed sink, returning the first error.
func Flush() error {
	tracer.mu.Lock()
	sinks := append([]Sink(nil), tracer.sinks...)
	tracer.mu.Unlock()
	var first error
	for _, s := range sinks {
		if err := s.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// phaseAgg accumulates the per-span-name summary.
type phaseAgg struct {
	count int64
	total time.Duration
	self  time.Duration
	attrs map[string]float64
}

// PhaseStat is one row of the phase summary.
type PhaseStat struct {
	Name  string
	Count int64
	// Total is the cumulative wall time of all spans with this name;
	// Self excludes time spent in child spans, so Self sums to the
	// traced wall time without double counting.
	Total time.Duration
	Self  time.Duration
	// Attrs holds the per-name sums of numeric span attributes (e.g.
	// modeled_s, comm_bytes).
	Attrs map[string]float64
}

// Summary returns the per-phase aggregation collected since Enable,
// sorted by descending total time.
func Summary() []PhaseStat {
	tracer.mu.Lock()
	defer tracer.mu.Unlock()
	out := make([]PhaseStat, 0, len(tracer.summary))
	for name, a := range tracer.summary {
		attrs := make(map[string]float64, len(a.attrs))
		for k, v := range a.attrs {
			if !math.IsNaN(v) {
				attrs[k] = v
			}
		}
		out = append(out, PhaseStat{Name: name, Count: a.count, Total: a.total, Self: a.self, Attrs: attrs})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ResetSummary clears the per-phase aggregation (counters are separate;
// see ResetCounters). Useful between experiments sharing one Enable.
func ResetSummary() {
	tracer.mu.Lock()
	if tracer.summary != nil {
		tracer.summary = make(map[string]*phaseAgg)
	}
	tracer.mu.Unlock()
}
