package obs

import (
	"bytes"
	"runtime"
	"strconv"
)

// curGoID returns the current goroutine's id, parsed from the
// "goroutine N [status]:" header runtime.Stack writes. The runtime does
// not expose goids on purpose — they must never drive program logic —
// but for observability they are exactly what we need: a stable key for
// per-goroutine span stacks, so spans started on worker goroutines nest
// under the task span bound to that goroutine instead of racing a global
// stack. The parse costs on the order of a microsecond and runs only
// while collection is enabled, on span starts and binds (never on the
// disabled fast path).
func curGoID() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := buf[:n]
	s = bytes.TrimPrefix(s, goroutinePrefix)
	if i := bytes.IndexByte(s, ' '); i > 0 {
		if id, err := strconv.ParseUint(string(s[:i]), 10, 64); err == nil {
			return id
		}
	}
	return 0
}

var goroutinePrefix = []byte("goroutine ")

// GoID exposes the goroutine id to sibling observability layers (the
// telemetry recorder uses it to hand truncation errors from linalg to
// the peps call site on the same goroutine). Same caveat as curGoID:
// observability only, never program logic.
func GoID() uint64 { return curGoID() }
