package obs

import "sync/atomic"

// Scratch-memory accounting: the tensor frame pool and the kernel
// executors report checkout/return of their working buffers through
// TrackBytes, giving a live-bytes gauge and a high-water mark
// (mem.live_bytes / mem.peak_bytes in metrics snapshots, "peak scratch
// bytes" in WriteSummary, peak_bytes in koala-bench -json).
//
// The account is always on — a pair of atomic ops per frame checkout,
// orders of magnitude below the work a frame carries — so checkouts and
// returns stay balanced across Enable/Disable boundaries. Enable (via
// ResetCounters) rebases the peak to the current live level, so each
// run reports its own high water. Peak depends on how many frames are
// in flight at once and is therefore wall-clock-like: it varies with
// worker count and must not be diffed or gated.

var (
	memLive atomic.Int64
	memPeak atomic.Int64
)

// TrackBytes adjusts the live scratch-byte account by delta (positive on
// checkout/allocation, negative on return) and advances the high-water
// mark.
func TrackBytes(delta int64) {
	live := memLive.Add(delta)
	if delta <= 0 {
		return
	}
	for {
		peak := memPeak.Load()
		if live <= peak || memPeak.CompareAndSwap(peak, live) {
			return
		}
	}
}

// LiveBytes returns the bytes of tracked scratch currently checked out.
func LiveBytes() int64 { return memLive.Load() }

// PeakBytes returns the high-water mark of tracked scratch bytes since
// the last Enable/ResetCounters.
func PeakBytes() int64 { return memPeak.Load() }

// resetPeakBytes rebases the high-water mark to the current live level;
// called from ResetCounters so each enabled run starts fresh.
func resetPeakBytes() {
	live := memLive.Load()
	if live < 0 {
		live = 0
	}
	memPeak.Store(live)
}
