package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteSummary prints the per-phase breakdown collected since Enable (or
// the last ResetSummary) as an aligned text table: span name, call
// count, total and self wall seconds, and the per-name sums of numeric
// span attributes (modeled seconds, comm bytes, ...). Numeric-attribute
// columns are the union over all phases, so modeled seconds from the
// dist machine model line up against measured seconds.
func WriteSummary(w io.Writer) {
	stats := Summary()
	if len(stats) == 0 {
		fmt.Fprintln(w, "obs: no spans recorded")
		return
	}
	attrKeys := map[string]bool{}
	for _, s := range stats {
		for k := range s.Attrs {
			attrKeys[k] = true
		}
	}
	keys := make([]string, 0, len(attrKeys))
	for k := range attrKeys {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	header := append([]string{"phase", "count", "total_s", "self_s"}, keys...)
	rows := make([][]string, 0, len(stats))
	for _, s := range stats {
		row := []string{
			s.Name,
			fmt.Sprintf("%d", s.Count),
			fmt.Sprintf("%.4f", s.Total.Seconds()),
			fmt.Sprintf("%.4f", s.Self.Seconds()),
		}
		for _, k := range keys {
			if v, ok := s.Attrs[k]; ok {
				row = append(row, formatMetric(v))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}

	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	if p := PeakBytes(); p > 0 {
		fmt.Fprintf(w, "peak scratch bytes: %d\n", p)
	}
}

// WriteMetrics prints the current counter/gauge snapshot, one per line.
func WriteMetrics(w io.Writer) {
	ms := Metrics()
	if len(ms) == 0 {
		return
	}
	width := 0
	for _, m := range ms {
		if len(m.Name) > width {
			width = len(m.Name)
		}
	}
	for _, m := range ms {
		fmt.Fprintf(w, "%-*s  %s\n", width, m.Name, formatMetric(m.Value))
	}
}

// formatMetric renders integers without exponents and everything else
// compactly.
func formatMetric(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.6g", v)
}
