package obs

import (
	"sync"
	"testing"
)

// collectSink records every completed span event for inspection.
type collectSink struct {
	mu     sync.Mutex
	events []Event
}

func (c *collectSink) SpanEnd(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

func (c *collectSink) Flush() error { return nil }

func (c *collectSink) byName(name string) []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Event
	for _, e := range c.events {
		if e.Name == name {
			out = append(out, e)
		}
	}
	return out
}

// A Start on a goroutine with no open span must attach to the trace
// root, not to whatever span another goroutine happens to have open.
func TestForeignGoroutineStartAttachesToRoot(t *testing.T) {
	cleanup()
	sink := &collectSink{}
	Enable(sink)
	defer cleanup()

	outer := Start("outer")
	done := make(chan struct{})
	go func() {
		defer close(done)
		inner := Start("foreign")
		inner.End()
	}()
	<-done
	outer.End()

	foreign := sink.byName("foreign")
	if len(foreign) != 1 {
		t.Fatalf("want 1 foreign span, got %d", len(foreign))
	}
	if foreign[0].Parent != 0 {
		t.Fatalf("foreign-goroutine span parented under id %d; want trace root (0)", foreign[0].Parent)
	}
	if foreign[0].Depth != 0 {
		t.Fatalf("foreign-goroutine span depth = %d; want 0", foreign[0].Depth)
	}
}

// StartChild parents explicitly across goroutines, and Adopt makes
// legacy Start calls inside the task body nest under the task span.
func TestStartChildAdoptNesting(t *testing.T) {
	cleanup()
	sink := &collectSink{}
	Enable(sink)
	defer cleanup()

	outer := Start("outer")
	done := make(chan struct{})
	go func() {
		defer close(done)
		task := outer.StartChild("task")
		task.Adopt()
		leaf := Start("leaf") // must nest under the adopted task span
		leaf.End()
		task.End()
	}()
	<-done
	outer.End()

	outerEv := sink.byName("outer")
	taskEv := sink.byName("task")
	leafEv := sink.byName("leaf")
	if len(outerEv) != 1 || len(taskEv) != 1 || len(leafEv) != 1 {
		t.Fatalf("missing spans: outer=%d task=%d leaf=%d", len(outerEv), len(taskEv), len(leafEv))
	}
	if taskEv[0].Parent != outerEv[0].ID {
		t.Fatalf("task parent = %d, want outer id %d", taskEv[0].Parent, outerEv[0].ID)
	}
	if leafEv[0].Parent != taskEv[0].ID {
		t.Fatalf("leaf parent = %d, want task id %d", leafEv[0].Parent, taskEv[0].ID)
	}
	if taskEv[0].Depth != 1 || leafEv[0].Depth != 2 {
		t.Fatalf("depths task=%d leaf=%d, want 1 and 2", taskEv[0].Depth, leafEv[0].Depth)
	}
}

// Current returns the innermost open span of the calling goroutine only.
func TestCurrentIsPerGoroutine(t *testing.T) {
	cleanup()
	Enable()
	defer cleanup()

	outer := Start("outer")
	if Current() != outer {
		t.Fatal("Current should see the goroutine's own open span")
	}
	var onWorker *Span
	done := make(chan struct{})
	go func() {
		defer close(done)
		onWorker = Current()
	}()
	<-done
	if onWorker != nil {
		t.Fatalf("fresh goroutine sees span %v; want nil", onWorker)
	}
	outer.End()
	if Current() != nil {
		t.Fatal("Current should be nil after the last span ends")
	}
}

// SetTrack propagates to children, including StartChild children.
func TestTrackInheritance(t *testing.T) {
	cleanup()
	sink := &collectSink{}
	Enable(sink)
	defer cleanup()

	parent := Start("parent").SetTrack(3)
	child := parent.StartChild("child")
	child.End()
	parent.End()

	if ev := sink.byName("child"); len(ev) != 1 || ev[0].Track != 3 {
		t.Fatalf("child track = %+v, want 3", ev)
	}
}

// The scratch-memory gauge tracks live bytes and a resettable peak.
func TestTrackBytesPeak(t *testing.T) {
	cleanup()
	baseLive := LiveBytes()

	TrackBytes(100)
	TrackBytes(200)
	if got := LiveBytes() - baseLive; got != 300 {
		t.Fatalf("live delta = %d, want 300", got)
	}
	if PeakBytes() < baseLive+300 {
		t.Fatalf("peak %d below live high water %d", PeakBytes(), baseLive+300)
	}
	TrackBytes(-250)
	peakBefore := PeakBytes()
	if got := LiveBytes() - baseLive; got != 50 {
		t.Fatalf("live delta after release = %d, want 50", got)
	}
	if PeakBytes() != peakBefore {
		t.Fatal("peak must not fall when bytes are released")
	}
	// ResetCounters rebases the peak to the current live level.
	ResetCounters()
	if PeakBytes() != LiveBytes() {
		t.Fatalf("after reset peak %d != live %d", PeakBytes(), LiveBytes())
	}
	TrackBytes(-50) // drain this test's remaining bytes
	cleanup()
}
