package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Sink receives completed spans. Implementations must be safe for
// concurrent SpanEnd calls.
type Sink interface {
	// SpanEnd delivers one completed span.
	SpanEnd(Event)
	// Flush writes any buffered state (for file-backed sinks, the full
	// serialized trace) and leaves the sink reusable.
	Flush() error
}

// attrMap converts span attributes to a JSON-friendly map.
func attrMap(attrs []Attr) map[string]interface{} {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]interface{}, len(attrs))
	for _, a := range attrs {
		switch a.Kind {
		case 0:
			m[a.Key] = a.Str
		case 1:
			m[a.Key] = a.Num
		case 2:
			m[a.Key] = a.Int
		}
	}
	return m
}

// JSONLSink writes one JSON object per completed span to w, immediately,
// in end order: {"type":"span","name":...,"offset_us":...,"dur_us":...,
// "depth":...,"attrs":{...}}. Flush appends a {"type":"metrics"} record
// with the current counter snapshot, so a finished log carries the run's
// totals.
type JSONLSink struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewJSONLSink returns a JSONL sink writing to w.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

type jsonlSpan struct {
	Type     string                 `json:"type"`
	Name     string                 `json:"name"`
	OffsetUS float64                `json:"offset_us"`
	DurUS    float64                `json:"dur_us"`
	Depth    int                    `json:"depth"`
	Attrs    map[string]interface{} `json:"attrs,omitempty"`
}

func (s *JSONLSink) SpanEnd(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	rec := jsonlSpan{
		Type:     "span",
		Name:     e.Name,
		OffsetUS: float64(e.Offset.Nanoseconds()) / 1e3,
		DurUS:    float64(e.Dur.Nanoseconds()) / 1e3,
		Depth:    e.Depth,
		Attrs:    attrMap(e.Attrs),
	}
	b, err := json.Marshal(rec)
	if err != nil {
		s.err = err
		return
	}
	_, s.err = fmt.Fprintf(s.w, "%s\n", b)
}

// Flush appends the metrics record and returns any accumulated error.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	metrics := map[string]float64{}
	for _, m := range Metrics() {
		metrics[m.Name] = m.Value
	}
	rec := struct {
		Type    string             `json:"type"`
		Metrics map[string]float64 `json:"metrics"`
	}{"metrics", metrics}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(s.w, "%s\n", b)
	return err
}

// ChromeTraceSink buffers completed spans and serializes them on Flush
// as Chrome trace_event JSON (the "JSON Array Format"): complete ("X")
// events with microsecond timestamps, loadable in chrome://tracing or
// https://ui.perfetto.dev. Counter totals are appended as a final
// counter ("C") event so they are visible in the trace too.
type ChromeTraceSink struct {
	mu     sync.Mutex
	w      io.Writer
	events []Event
}

// NewChromeTraceSink returns a trace_event sink writing to w on Flush.
func NewChromeTraceSink(w io.Writer) *ChromeTraceSink { return &ChromeTraceSink{w: w} }

func (s *ChromeTraceSink) SpanEnd(e Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

type chromeEvent struct {
	Name string                 `json:"name"`
	Ph   string                 `json:"ph"`
	TS   float64                `json:"ts"`
	Dur  float64                `json:"dur,omitempty"`
	PID  int                    `json:"pid"`
	TID  int                    `json:"tid"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// Flush serializes the buffered spans. The buffer is retained, so a
// later Flush rewrites the full trace only if w supports it; callers
// normally Flush once at exit.
func (s *ChromeTraceSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	evs := make([]chromeEvent, 0, len(s.events)+1)
	var last float64
	for _, e := range s.events {
		ts := float64(e.Offset.Nanoseconds()) / 1e3
		dur := float64(e.Dur.Nanoseconds()) / 1e3
		if end := ts + dur; end > last {
			last = end
		}
		evs = append(evs, chromeEvent{
			Name: e.Name,
			Ph:   "X",
			TS:   ts,
			Dur:  dur,
			PID:  1,
			TID:  1,
			Args: attrMap(e.Attrs),
		})
	}
	counters := map[string]interface{}{}
	for _, m := range Metrics() {
		counters[m.Name] = m.Value
	}
	if len(counters) > 0 {
		evs = append(evs, chromeEvent{Name: "metrics", Ph: "C", TS: last, PID: 1, TID: 1, Args: counters})
	}
	b, err := json.MarshalIndent(evs, "", " ")
	if err != nil {
		return err
	}
	_, err = s.w.Write(append(b, '\n'))
	return err
}
