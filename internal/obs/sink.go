package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Sink receives completed spans. Implementations must be safe for
// concurrent SpanEnd calls.
type Sink interface {
	// SpanEnd delivers one completed span.
	SpanEnd(Event)
	// Flush writes any buffered state (for file-backed sinks, the full
	// serialized trace) and leaves the sink reusable.
	Flush() error
}

// RankSegment is one coalesced stretch of a modeled rank's timeline:
// compute, message latency, byte transfer, or imbalance wait.
type RankSegment struct {
	Kind    string  `json:"kind"`
	Seconds float64 `json:"s"`
}

// RankRecord is the per-rank timeline snapshot a simulated grid emits
// (see dist.Grid.RankTimelines): the modeled time of one rank split by
// where it went, plus the (optionally truncated) segment sequence.
type RankRecord struct {
	Grid        string        `json:"grid"`
	Rank        int           `json:"rank"`
	CompSeconds float64       `json:"comp_s"`
	LatSeconds  float64       `json:"lat_s"`
	BWSeconds   float64       `json:"bw_s"`
	WaitSeconds float64       `json:"wait_s"`
	Segments    []RankSegment `json:"segments,omitempty"`
}

// TotalSeconds is the rank's full modeled timeline span.
func (r RankRecord) TotalSeconds() float64 {
	return r.CompSeconds + r.LatSeconds + r.BWSeconds + r.WaitSeconds
}

// RankSink is the optional sink extension that receives per-rank
// timelines; both built-in sinks implement it.
type RankSink interface {
	RankTimeline(RankRecord)
}

// EmitRank forwards a rank-timeline record to every installed sink that
// understands it. No-op while disabled.
func EmitRank(rec RankRecord) {
	if !enabled.Load() {
		return
	}
	tracer.mu.Lock()
	sinks := append([]Sink(nil), tracer.sinks...)
	tracer.mu.Unlock()
	for _, s := range sinks {
		if rs, ok := s.(RankSink); ok {
			rs.RankTimeline(rec)
		}
	}
}

// attrMap converts span attributes to a JSON-friendly map.
func attrMap(attrs []Attr) map[string]interface{} {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]interface{}, len(attrs))
	for _, a := range attrs {
		switch a.Kind {
		case 0:
			m[a.Key] = a.Str
		case 1:
			m[a.Key] = a.Num
		case 2:
			m[a.Key] = a.Int
		}
	}
	return m
}

// JSONLSink writes one JSON object per completed span to w, immediately,
// in end order: {"type":"span","name":...,"id":...,"parent":...,
// "offset_us":...,"dur_us":...,"depth":...,"track":...,"attrs":{...}}.
// Rank timelines append {"type":"rank"} records, and Flush appends a
// {"type":"metrics"} record with the current counter snapshot, so a
// finished log carries the run's totals. The first record is preceded by
// a {"type":"meta"} line identifying the writing process (rank, pid) and
// its trace epoch (Origin, unix ns) — the anchor obsfile.MergeRanks
// needs to put several processes' logs on one clock. This is the format
// cmd/koala-obs (internal/obsfile) reads back.
type JSONLSink struct {
	mu       sync.Mutex
	w        io.Writer
	err      error
	rank     int
	metaDone bool
}

// NewJSONLSink returns a JSONL sink writing to w.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w, rank: -1} }

// SetRank tags the log with the writing process's dist rank, making the
// leading meta record carry it (rank-trace directories name files
// rank<N>.jsonl and the merger cross-checks the tag). Call before the
// first span ends; untagged sinks write rank -1 (single-process trace).
func (s *JSONLSink) SetRank(rank int) {
	s.mu.Lock()
	s.rank = rank
	s.mu.Unlock()
}

// jsonlMeta is the leading record identifying the writing process.
type jsonlMeta struct {
	Type        string `json:"type"`
	Rank        int    `json:"rank"`
	PID         int    `json:"pid"`
	EpochUnixNS int64  `json:"epoch_unix_ns"`
}

type jsonlSpan struct {
	Type     string                 `json:"type"`
	Name     string                 `json:"name"`
	ID       int64                  `json:"id"`
	Parent   int64                  `json:"parent,omitempty"`
	OffsetUS float64                `json:"offset_us"`
	DurUS    float64                `json:"dur_us"`
	Depth    int                    `json:"depth"`
	Track    int                    `json:"track,omitempty"`
	Attrs    map[string]interface{} `json:"attrs,omitempty"`
}

// writeRecord marshals and writes one JSONL record under the lock,
// lazily emitting the meta line first. Lazy because the epoch is the
// tracer origin, and a sink may be constructed before (or attached
// after) Enable sets it; by the first record the tracer is live.
func (s *JSONLSink) writeRecord(rec interface{}) {
	if s.err != nil {
		return
	}
	if !s.metaDone {
		s.metaDone = true
		var epoch int64
		if o := Origin(); !o.IsZero() {
			epoch = o.UnixNano()
		}
		s.writeRecord(jsonlMeta{Type: "meta", Rank: s.rank, PID: os.Getpid(), EpochUnixNS: epoch})
		if s.err != nil {
			return
		}
	}
	b, err := json.Marshal(rec)
	if err != nil {
		s.err = err
		return
	}
	_, s.err = fmt.Fprintf(s.w, "%s\n", b)
}

func (s *JSONLSink) SpanEnd(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writeRecord(jsonlSpan{
		Type:     "span",
		Name:     e.Name,
		ID:       e.ID,
		Parent:   e.Parent,
		OffsetUS: float64(e.Offset.Nanoseconds()) / 1e3,
		DurUS:    float64(e.Dur.Nanoseconds()) / 1e3,
		Depth:    e.Depth,
		Track:    e.Track,
		Attrs:    attrMap(e.Attrs),
	})
}

// RankTimeline appends one {"type":"rank"} record. The segment list is
// omitted: segments exist to draw per-rank lanes in the Chrome trace,
// while JSONL consumers (koala-obs report/diff, the regression gate)
// work from the exact totals — and a bench run flushes thousands of
// rank records, which at up to 2048 segments each would balloon the
// log by orders of magnitude.
func (s *JSONLSink) RankTimeline(rec RankRecord) {
	rec.Segments = nil
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writeRecord(struct {
		Type string `json:"type"`
		RankRecord
	}{"rank", rec})
}

// Flush appends the metrics record and returns any accumulated error.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	metrics := map[string]float64{}
	for _, m := range Metrics() {
		metrics[m.Name] = m.Value
	}
	s.writeRecord(struct {
		Type    string             `json:"type"`
		Metrics map[string]float64 `json:"metrics"`
	}{"metrics", metrics})
	return s.err
}

// ChromeTraceSink buffers completed spans and serializes them on Flush
// as Chrome trace_event JSON (the "JSON Array Format"): complete ("X")
// events with microsecond timestamps, loadable in chrome://tracing or
// https://ui.perfetto.dev. Measured spans land on pid 1, one tid per
// track (orchestrator = tid 1, worker lanes above it); per-rank modeled
// timelines land on pid 2+ (one process per grid, one tid per rank), so
// the modeled machine appears as its own process next to the measured
// one. Counter totals are appended as a final counter ("C") event.
type ChromeTraceSink struct {
	mu     sync.Mutex
	w      io.Writer
	events []Event
	ranks  []RankRecord
}

// NewChromeTraceSink returns a trace_event sink writing to w on Flush.
func NewChromeTraceSink(w io.Writer) *ChromeTraceSink { return &ChromeTraceSink{w: w} }

func (s *ChromeTraceSink) SpanEnd(e Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

// RankTimeline buffers one rank's modeled timeline for Flush.
func (s *ChromeTraceSink) RankTimeline(rec RankRecord) {
	s.mu.Lock()
	s.ranks = append(s.ranks, rec)
	s.mu.Unlock()
}

type chromeEvent struct {
	Name string                 `json:"name"`
	Ph   string                 `json:"ph"`
	TS   float64                `json:"ts"`
	Dur  float64                `json:"dur,omitempty"`
	PID  int                    `json:"pid"`
	TID  int                    `json:"tid"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// Flush serializes the buffered spans. The buffer is retained, so a
// later Flush rewrites the full trace only if w supports it; callers
// normally Flush once at exit.
func (s *ChromeTraceSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	evs := make([]chromeEvent, 0, len(s.events)+1)
	var last float64
	for _, e := range s.events {
		ts := float64(e.Offset.Nanoseconds()) / 1e3
		dur := float64(e.Dur.Nanoseconds()) / 1e3
		if end := ts + dur; end > last {
			last = end
		}
		evs = append(evs, chromeEvent{
			Name: e.Name,
			Ph:   "X",
			TS:   ts,
			Dur:  dur,
			PID:  1,
			TID:  1 + e.Track,
			Args: attrMap(e.Attrs),
		})
	}
	// Per-rank modeled timelines: one process per grid, one thread per
	// rank, segments laid out from the trace origin in modeled time.
	gridPID := map[string]int{}
	for _, r := range s.ranks {
		pid, ok := gridPID[r.Grid]
		if !ok {
			pid = 2 + len(gridPID)
			gridPID[r.Grid] = pid
			evs = append(evs, chromeEvent{
				Name: "process_name", Ph: "M", PID: pid, TID: 0,
				Args: map[string]interface{}{"name": "modeled " + r.Grid},
			})
		}
		cursor := 0.0
		for _, seg := range r.Segments {
			dur := seg.Seconds * 1e6
			evs = append(evs, chromeEvent{
				Name: seg.Kind,
				Ph:   "X",
				TS:   cursor,
				Dur:  dur,
				PID:  pid,
				TID:  1 + r.Rank,
			})
			cursor += dur
		}
	}
	counters := map[string]interface{}{}
	for _, m := range Metrics() {
		counters[m.Name] = m.Value
	}
	if len(counters) > 0 {
		evs = append(evs, chromeEvent{Name: "metrics", Ph: "C", TS: last, PID: 1, TID: 1, Args: counters})
	}
	b, err := json.MarshalIndent(evs, "", " ")
	if err != nil {
		return err
	}
	_, err = s.w.Write(append(b, '\n'))
	return err
}
