package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// cleanup returns collection to the disabled default state.
func cleanup() {
	Disable()
	ResetCounters()
}

func TestDisabledFastPath(t *testing.T) {
	cleanup()
	if Enabled() {
		t.Fatal("obs should start disabled")
	}
	sp := Start("anything")
	if sp != nil {
		t.Fatal("Start while disabled must return nil")
	}
	// All nil-receiver methods must be no-ops.
	sp.SetStr("k", "v").SetFloat("f", 1).SetInt("i", 2)
	sp.End()
	c := NewCounter("test.disabled.counter")
	c.Add(5)
	if c.Value() != 0 {
		t.Fatalf("disabled counter advanced to %d", c.Value())
	}
}

func TestSpanNestingAndSummary(t *testing.T) {
	cleanup()
	Enable()
	defer cleanup()

	outer := Start("outer")
	inner := Start("inner")
	time.Sleep(time.Millisecond)
	inner.SetFloat("modeled_s", 0.5)
	inner.End()
	inner2 := Start("inner")
	inner2.SetFloat("modeled_s", 0.25)
	inner2.End()
	outer.End()

	stats := Summary()
	byName := map[string]PhaseStat{}
	for _, s := range stats {
		byName[s.Name] = s
	}
	in, ok := byName["inner"]
	if !ok || in.Count != 2 {
		t.Fatalf("inner summary wrong: %+v", byName)
	}
	if got := in.Attrs["modeled_s"]; got != 0.75 {
		t.Fatalf("modeled_s sum = %v want 0.75", got)
	}
	out := byName["outer"]
	if out.Count != 1 {
		t.Fatalf("outer count = %d", out.Count)
	}
	if out.Self > out.Total {
		t.Fatalf("self %v exceeds total %v", out.Self, out.Total)
	}
	// Outer's self time excludes the sleeping child.
	if out.Self >= out.Total-500*time.Microsecond {
		t.Fatalf("outer self %v should exclude child time (total %v)", out.Self, out.Total)
	}
}

func TestCountersAndGauges(t *testing.T) {
	cleanup()
	c := NewCounter("test.counter")
	f := NewFloatCounter("test.float")
	g := NewGauge("test.gauge")
	Enable()
	defer cleanup()
	c.Add(3)
	c.Add(4)
	f.Add(1.5)
	f.Add(2.5)
	g.Set(0.125)
	if c.Value() != 7 {
		t.Fatalf("counter = %d want 7", c.Value())
	}
	if f.Value() != 4 {
		t.Fatalf("float counter = %v want 4", f.Value())
	}
	if v, ok := g.Value(); !ok || v != 0.125 {
		t.Fatalf("gauge = %v,%v want 0.125,true", v, ok)
	}
	if got := MetricValueOf("test.counter"); got != 7 {
		t.Fatalf("MetricValueOf = %v want 7", got)
	}
	// Enable resets.
	Enable()
	if c.Value() != 0 || f.Value() != 0 {
		t.Fatal("Enable should reset counters")
	}
	if _, ok := g.Value(); ok {
		t.Fatal("Enable should reset gauges")
	}
}

func TestJSONLSink(t *testing.T) {
	cleanup()
	var buf bytes.Buffer
	c := NewCounter("test.jsonl.counter")
	Enable(NewJSONLSink(&buf))
	defer cleanup()
	c.Add(9)
	sp := Start("phase.a")
	sp.SetStr("spec", "ab,bc->ac").SetInt("bytes", 128)
	sp.End()
	if err := Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 JSONL lines (meta, span, metrics), got %d: %q", len(lines), buf.String())
	}
	var meta struct {
		Type        string `json:"type"`
		Rank        int    `json:"rank"`
		PID         int    `json:"pid"`
		EpochUnixNS int64  `json:"epoch_unix_ns"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &meta); err != nil {
		t.Fatalf("meta line not JSON: %v", err)
	}
	if meta.Type != "meta" || meta.Rank != -1 || meta.PID <= 0 || meta.EpochUnixNS <= 0 {
		t.Fatalf("bad leading meta record: %+v", meta)
	}
	var span struct {
		Type  string                 `json:"type"`
		Name  string                 `json:"name"`
		Attrs map[string]interface{} `json:"attrs"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &span); err != nil {
		t.Fatalf("span line not JSON: %v", err)
	}
	if span.Type != "span" || span.Name != "phase.a" || span.Attrs["spec"] != "ab,bc->ac" {
		t.Fatalf("bad span record: %+v", span)
	}
	var metrics struct {
		Type    string             `json:"type"`
		Metrics map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(lines[2]), &metrics); err != nil {
		t.Fatalf("metrics line not JSON: %v", err)
	}
	if metrics.Metrics["test.jsonl.counter"] != 9 {
		t.Fatalf("metrics record missing counter: %+v", metrics)
	}
}

func TestChromeTraceSinkNesting(t *testing.T) {
	cleanup()
	var buf bytes.Buffer
	Enable(NewChromeTraceSink(&buf))
	defer cleanup()

	sweep := Start("bmps.sweep")
	contraction := Start("einsum")
	gemm := Start("einsum.gemm")
	time.Sleep(200 * time.Microsecond)
	gemm.End()
	contraction.End()
	sweep.End()
	if err := Flush(); err != nil {
		t.Fatal(err)
	}

	var evs []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		TS   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		PID  int     `json:"pid"`
		TID  int     `json:"tid"`
	}
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	byName := map[string]int{}
	for i, e := range evs {
		byName[e.Name] = i
	}
	for _, name := range []string{"bmps.sweep", "einsum", "einsum.gemm"} {
		i, ok := byName[name]
		if !ok {
			t.Fatalf("trace missing span %q", name)
		}
		if evs[i].Ph != "X" {
			t.Fatalf("span %q has phase %q, want X", name, evs[i].Ph)
		}
	}
	s, c, g := evs[byName["bmps.sweep"]], evs[byName["einsum"]], evs[byName["einsum.gemm"]]
	if !(s.TS <= c.TS && c.TS+c.Dur <= s.TS+s.Dur+1) {
		t.Fatalf("einsum not nested in sweep: %+v %+v", s, c)
	}
	if !(c.TS <= g.TS && g.TS+g.Dur <= c.TS+c.Dur+1) {
		t.Fatalf("gemm not nested in einsum: %+v %+v", c, g)
	}
}

// TestConcurrentCounters exercises the lock-free paths under the race
// detector: many goroutines hammering counters, floats, and gauges while
// spans open and close on the main goroutine.
func TestConcurrentCounters(t *testing.T) {
	cleanup()
	c := NewCounter("test.race.counter")
	f := NewFloatCounter("test.race.float")
	g := NewGauge("test.race.gauge")
	Enable()
	defer cleanup()

	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Add(1)
				f.Add(0.5)
				g.Set(float64(w))
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		sp := Start("race.phase")
		sp.SetInt("i", int64(i))
		sp.End()
	}
	wg.Wait()
	if c.Value() != workers*iters {
		t.Fatalf("counter = %d want %d", c.Value(), workers*iters)
	}
	if f.Value() != workers*iters*0.5 {
		t.Fatalf("float = %v want %v", f.Value(), workers*iters*0.5)
	}
}

// TestConcurrentSpans verifies span Start/End is safe (if not
// hierarchy-meaningful) from multiple goroutines.
func TestConcurrentSpans(t *testing.T) {
	cleanup()
	Enable(NewJSONLSink(&bytes.Buffer{}))
	defer cleanup()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sp := Start("concurrent")
				sp.End()
			}
		}()
	}
	wg.Wait()
	stats := Summary()
	var total int64
	for _, s := range stats {
		if s.Name == "concurrent" {
			total = s.Count
		}
	}
	if total != 2000 {
		t.Fatalf("span count = %d want 2000", total)
	}
}

func TestWriteSummaryTable(t *testing.T) {
	cleanup()
	Enable()
	defer cleanup()
	sp := Start("phase.x")
	sp.SetFloat("modeled_s", 1.5)
	sp.End()
	var buf bytes.Buffer
	WriteSummary(&buf)
	out := buf.String()
	if !strings.Contains(out, "phase.x") || !strings.Contains(out, "modeled_s") {
		t.Fatalf("summary table missing content:\n%s", out)
	}
}
