package obs

import (
	"context"
	"runtime/pprof"
	"sync"
	"sync/atomic"
)

// pprof label integration: when enabled, every open span also sets a
// runtime/pprof goroutine label ("obs" = span name), so CPU profiles
// taken while tracing attribute samples to the innermost span. Off by
// default because label switching allocates; turn it on for profiling
// sessions with EnablePprofLabels(true).

var pprofLabels atomic.Bool

// EnablePprofLabels toggles pprof goroutine labelling of spans.
func EnablePprofLabels(on bool) { pprofLabels.Store(on) }

// pprofState tracks the label-context stack of the orchestrating
// goroutine (the same single-driver assumption as the span stack).
var pprofState struct {
	mu    sync.Mutex
	stack []context.Context
}

func pprofPush(name string) {
	if !pprofLabels.Load() {
		return
	}
	pprofState.mu.Lock()
	parent := context.Background()
	if n := len(pprofState.stack); n > 0 {
		parent = pprofState.stack[n-1]
	}
	ctx := pprof.WithLabels(parent, pprof.Labels("obs", name))
	pprofState.stack = append(pprofState.stack, ctx)
	pprofState.mu.Unlock()
	pprof.SetGoroutineLabels(ctx)
}

func pprofPop() {
	if !pprofLabels.Load() {
		return
	}
	pprofState.mu.Lock()
	if n := len(pprofState.stack); n > 0 {
		pprofState.stack = pprofState.stack[:n-1]
	}
	restore := context.Background()
	if n := len(pprofState.stack); n > 0 {
		restore = pprofState.stack[n-1]
	}
	pprofState.mu.Unlock()
	pprof.SetGoroutineLabels(restore)
}
