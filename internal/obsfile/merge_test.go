package obsfile

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// mkTrace assembles a parsed-looking trace from raw spans (linking the
// tree exactly as Read would).
func mkTrace(epochNS int64, spans ...*Span) *Trace {
	t := &Trace{byID: map[int64]*Span{}}
	for _, s := range spans {
		t.Spans = append(t.Spans, s)
		t.byID[s.ID] = s
	}
	if epochNS != 0 {
		t.Meta = &TraceMeta{EpochUnixNS: epochNS}
	}
	t.link()
	return t
}

func commSpan(name string, id int64, off, dur float64, op string, seq, step, from, to int) *Span {
	return &Span{
		Name: name, ID: id, OffsetUS: off, DurUS: dur,
		Attrs: map[string]interface{}{
			"op": op, "seq": float64(seq), "step": float64(step),
			"from": float64(from), "to": float64(to),
		},
	}
}

func TestMergeRanksClockAlignment(t *testing.T) {
	// Rank 1's clock runs 2ms ahead of the driver's and its trace epoch
	// started 5ms later (on its own clock): a span at local offset 0
	// lands at 5ms − 2ms = 3ms on the merged timeline.
	base := int64(1_000_000_000_000)
	r0 := mkTrace(base, &Span{Name: "compute", ID: 1, OffsetUS: 0, DurUS: 100})
	r1 := mkTrace(base+5_000_000, &Span{Name: "compute", ID: 1, OffsetUS: 0, DurUS: 100})
	m, err := MergeRanks([]RankInput{
		{Rank: 0, Trace: r0},
		{Rank: 1, Trace: r1, ClockOffsetNS: 2_000_000, RTTNS: 10_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	var r1span *Span
	for _, s := range m.Trace.Spans {
		if v, _ := s.AttrFloat("rank"); v == 1 {
			r1span = s
		}
	}
	if r1span == nil {
		t.Fatal("rank 1 span missing from merge")
	}
	if got, want := r1span.OffsetUS, 3000.0; got != want {
		t.Fatalf("rank 1 corrected offset %.1fus, want %.1f", got, want)
	}
	if m.MaxAbsOffsetNS != 2_000_000 || m.MaxResidualNS != 5_000 {
		t.Fatalf("alignment diagnostics: offset %d residual %d", m.MaxAbsOffsetNS, m.MaxResidualNS)
	}
	if m.Trace.Meta == nil || !m.Trace.Meta.Merged || m.Trace.Meta.RankCount != 2 {
		t.Fatalf("merged meta: %+v", m.Trace.Meta)
	}
}

func TestMergeRanksNegativeOffset(t *testing.T) {
	// A rank whose clock trails the driver's: negative offset must shift
	// spans later, and count into MaxAbsOffsetNS by magnitude.
	base := int64(1_000_000_000_000)
	r1 := mkTrace(base, &Span{Name: "compute", ID: 1, OffsetUS: 10, DurUS: 5})
	m, err := MergeRanks([]RankInput{
		{Rank: 0, Trace: mkTrace(base, &Span{Name: "compute", ID: 1, OffsetUS: 0, DurUS: 1})},
		{Rank: 1, Trace: r1, ClockOffsetNS: -4_000_000, RTTNS: 8_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	var got float64
	for _, s := range m.Trace.Spans {
		if v, _ := s.AttrFloat("rank"); v == 1 {
			got = s.OffsetUS
		}
	}
	if want := 4010.0; got != want {
		t.Fatalf("negative-offset correction: offset %.1fus, want %.1f", got, want)
	}
	if m.MaxAbsOffsetNS != 4_000_000 {
		t.Fatalf("MaxAbsOffsetNS %d, want 4000000", m.MaxAbsOffsetNS)
	}
}

func TestMergeRanksFlowPairing(t *testing.T) {
	// Sender on rank 0, receiver on rank 1; spans deliberately given out
	// of order and with overlapping timelines. One bcast pair plus one
	// gather pair; a stray recv with no matching send stays unmatched.
	base := int64(1_000_000_000_000)
	r0 := mkTrace(base,
		commSpan(SpanSend, 2, 50, 10, "gather", 7, 1, 0, 1),
		commSpan(SpanSend, 1, 10, 10, "bcast", 5, 1, 0, 1),
		&Span{Name: "compute", ID: 3, OffsetUS: 0, DurUS: 80},
	)
	r1 := mkTrace(base,
		commSpan(SpanRecv, 1, 12, 20, "bcast", 5, 1, 0, 1),
		commSpan(SpanRecv, 2, 55, 20, "gather", 7, 1, 0, 1),
		commSpan(SpanRecv, 3, 90, 5, "alltoall", 9, 2, 3, 1),
	)
	m, err := MergeRanks([]RankInput{{Rank: 0, Trace: r0}, {Rank: 1, Trace: r1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Trace.Flows) != 2 {
		t.Fatalf("want 2 flows, got %d: %+v", len(m.Trace.Flows), m.Trace.Flows)
	}
	if m.PairsByOp["bcast"] != 1 || m.PairsByOp["gather"] != 1 {
		t.Fatalf("pairs by op: %v", m.PairsByOp)
	}
	if m.UnmatchedRecvs != 1 || m.UnmatchedSends != 0 {
		t.Fatalf("unmatched: sends %d recvs %d", m.UnmatchedSends, m.UnmatchedRecvs)
	}
	for _, f := range m.Trace.Flows {
		send, recv := m.Trace.Span(f.SendID), m.Trace.Span(f.RecvID)
		if send == nil || recv == nil || send.Name != SpanSend || recv.Name != SpanRecv {
			t.Fatalf("flow ids don't resolve to send/recv spans: %+v", f)
		}
		if f.LatencyUS != recv.EndUS()-send.OffsetUS {
			t.Fatalf("flow latency %.1f, want %.1f", f.LatencyUS, recv.EndUS()-send.OffsetUS)
		}
	}
}

func TestMergeRanksRetriedFrame(t *testing.T) {
	// A retried frame leaves two send spans with the same wire key; FIFO
	// pairing matches the earlier one and counts the duplicate unmatched.
	base := int64(1_000_000_000_000)
	r0 := mkTrace(base,
		commSpan(SpanSend, 1, 10, 5, "bcast", 5, 1, 0, 1),
		commSpan(SpanSend, 2, 30, 5, "bcast", 5, 1, 0, 1), // retry
	)
	r1 := mkTrace(base, commSpan(SpanRecv, 1, 12, 6, "bcast", 5, 1, 0, 1))
	m, err := MergeRanks([]RankInput{{Rank: 0, Trace: r0}, {Rank: 1, Trace: r1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Trace.Flows) != 1 || m.UnmatchedSends != 1 {
		t.Fatalf("retried frame: flows %d unmatched sends %d", len(m.Trace.Flows), m.UnmatchedSends)
	}
	send := m.Trace.Span(m.Trace.Flows[0].SendID)
	if send.OffsetUS != 10 {
		t.Fatalf("FIFO pairing picked the retry (offset %.1f), want the original", send.OffsetUS)
	}
}

func TestMergeDirMissingRank(t *testing.T) {
	dir := t.TempDir()
	man := Manifest{Ranks: 3, Network: "unix", RankInfo: []ManifestRank{
		{Rank: 0, File: "rank0.jsonl"},
		{Rank: 1, File: "rank1.jsonl", ClockOffsetNS: 1000},
		{Rank: 2, File: "rank2.jsonl"}, // never written (crashed before setup)
	}}
	if err := WriteManifest(dir, man); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		log := fmt.Sprintf(`{"type":"meta","rank":%d,"pid":1,"epoch_unix_ns":1000000000000}
{"type":"span","name":"compute","id":1,"offset_us":0,"dur_us":10}
{"type":"metrics","metrics":{"dist.measured.bcast_seconds":0.5,"dist.measured.bcast_ops":2}}
`, r)
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("rank%d.jsonl", r)), []byte(log), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	m, err := MergeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.MissingRanks) != 1 || m.MissingRanks[0] != 2 {
		t.Fatalf("missing ranks %v, want [2]", m.MissingRanks)
	}
	if len(m.Ranks) != 2 {
		t.Fatalf("merged ranks %v", m.Ranks)
	}
	if m.Trace.Metrics["rank1.dist.measured.bcast_seconds"] != 0.5 {
		t.Fatalf("per-rank measured metrics missing: %v", m.Trace.Metrics)
	}
	// Rank 0's metrics also land unprefixed.
	if m.Trace.Metrics["dist.measured.bcast_seconds"] != 0.5 {
		t.Fatalf("rank 0 base metrics missing: %v", m.Trace.Metrics)
	}
}

func TestMergeDirNoManifest(t *testing.T) {
	dir := t.TempDir()
	log := `{"type":"meta","rank":1,"pid":1,"epoch_unix_ns":1000000000000}
{"type":"span","name":"compute","id":1,"offset_us":0,"dur_us":10}
`
	if err := os.WriteFile(filepath.Join(dir, "rank1.jsonl"), []byte(log), 0o666); err != nil {
		t.Fatal(err)
	}
	m, err := MergeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Ranks) != 1 || m.Ranks[0] != 1 {
		t.Fatalf("globbed merge ranks %v", m.Ranks)
	}
}

func TestReadTruncatedFinalLine(t *testing.T) {
	log := `{"type":"meta","rank":2,"pid":9,"epoch_unix_ns":5}
{"type":"span","name":"a","id":1,"offset_us":0,"dur_us":10}
{"type":"span","name":"b","id":2,"offs`
	tr, err := Read(strings.NewReader(log))
	if err != nil {
		t.Fatalf("truncated final line must not fail the read: %v", err)
	}
	if !tr.Truncated {
		t.Fatal("Truncated flag not set")
	}
	if len(tr.Spans) != 1 || tr.Spans[0].Name != "a" {
		t.Fatalf("intact prefix not preserved: %+v", tr.Spans)
	}
	if tr.Meta == nil || tr.Meta.Rank != 2 {
		t.Fatalf("meta record lost: %+v", tr.Meta)
	}
	// A malformed line with intact lines after it is still an error.
	bad := `{"type":"span","name":"a","id":1,"offs
{"type":"span","name":"b","id":2,"offset_us":0,"dur_us":1}
`
	if _, err := Read(strings.NewReader(bad)); err == nil {
		t.Fatal("mid-file corruption must fail the read")
	}
}

func TestRankUtilization(t *testing.T) {
	base := int64(1_000_000_000_000)
	r0 := mkTrace(base,
		&Span{Name: "compute", ID: 1, OffsetUS: 0, DurUS: 600_000},
		&Span{Name: SpanCollective, ID: 2, OffsetUS: 600_000, DurUS: 400_000,
			Attrs: map[string]interface{}{"op": "bcast", "seq": float64(1), "bytes": float64(8)}},
	)
	r1 := mkTrace(base,
		&Span{Name: SpanCollective, ID: 1, OffsetUS: 100_000, DurUS: 200_000,
			Attrs: map[string]interface{}{"op": "bcast", "seq": float64(1), "bytes": float64(8)}},
	)
	m, err := MergeRanks([]RankInput{{Rank: 0, Trace: r0}, {Rank: 1, Trace: r1}})
	if err != nil {
		t.Fatal(err)
	}
	utils := m.Trace.RankUtilization()
	if len(utils) != 2 {
		t.Fatalf("want 2 rank rows, got %+v", utils)
	}
	u0, u1 := utils[0], utils[1]
	if u0.Rank != 0 || u1.Rank != 1 {
		t.Fatalf("rank order: %+v", utils)
	}
	const eps = 1e-9
	if diff := u0.WallS - 1.0; diff > eps || diff < -eps {
		t.Fatalf("global window %.3fs, want 1.0", u0.WallS)
	}
	if u0.CommS != 0.4 || u0.ComputeS != 0.6 {
		t.Fatalf("rank 0 comm %.3f compute %.3f", u0.CommS, u0.ComputeS)
	}
	if u1.CommS != 0.2 || u1.ComputeS != 0 {
		t.Fatalf("rank 1 comm %.3f compute %.3f", u1.CommS, u1.ComputeS)
	}
	if diff := u1.IdleS - 0.8; diff > eps || diff < -eps {
		t.Fatalf("rank 1 idle %.3fs, want 0.8", u1.IdleS)
	}
}

func TestCrossRankCriticalPath(t *testing.T) {
	// rank0 send(20) -> rank1 recv(30) -> rank1 send(10) -> rank0 recv(15):
	// the chain crosses ranks twice; total = 20+30+10+15 = 75us. A lone
	// fat span on rank 2 (40us, no predecessors) must lose to the chain.
	base := int64(1_000_000_000_000)
	r0 := mkTrace(base,
		commSpan(SpanSend, 1, 0, 20, "allreduce", 1, 1, 0, 1),
		commSpan(SpanRecv, 2, 70, 15, "allreduce", 1, 16384+1, 1, 0),
	)
	r1 := mkTrace(base,
		commSpan(SpanRecv, 1, 5, 30, "allreduce", 1, 1, 0, 1),
		commSpan(SpanSend, 2, 40, 10, "allreduce", 1, 16384+1, 1, 0),
	)
	r2 := mkTrace(base,
		commSpan(SpanSend, 1, 0, 40, "gather", 2, 1, 2, 3), // unmatched, off-path
	)
	m, err := MergeRanks([]RankInput{
		{Rank: 0, Trace: r0}, {Rank: 1, Trace: r1}, {Rank: 2, Trace: r2},
	})
	if err != nil {
		t.Fatal(err)
	}
	cp := m.Trace.CrossRankCriticalPath()
	if cp == nil {
		t.Fatal("no critical path on a trace with comm spans")
	}
	if len(cp.Steps) != 4 {
		t.Fatalf("want 4 steps, got %d: %+v", len(cp.Steps), cp.Steps)
	}
	if cp.TotalUS != 75 {
		t.Fatalf("critical path %.1fus, want 75", cp.TotalUS)
	}
	crossings := 0
	for _, st := range cp.Steps {
		if st.CrossRank {
			crossings++
		}
	}
	if crossings != 2 {
		t.Fatalf("want 2 cross-rank hops, got %d", crossings)
	}
}

func TestMergedTraceJSONLRoundTrip(t *testing.T) {
	base := int64(1_000_000_000_000)
	r0 := mkTrace(base, commSpan(SpanSend, 1, 0, 20, "bcast", 1, 1, 0, 1))
	r0.Metrics = map[string]float64{"dist.measured.bcast_seconds": 0.25, "dist.measured.bcast_ops": 1}
	r1 := mkTrace(base, commSpan(SpanRecv, 1, 5, 30, "bcast", 1, 1, 0, 1))
	m, err := MergeRanks([]RankInput{
		{Rank: 0, Trace: r0},
		{Rank: 1, Trace: r1, ClockOffsetNS: 1_000, RTTNS: 4_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("merged trace not readable: %v\n%s", err, buf.String())
	}
	if !back.IsMerged() || back.Meta.RankCount != 2 || back.Meta.MaxResidualNS != 2_000 {
		t.Fatalf("merged meta lost in round trip: %+v", back.Meta)
	}
	if len(back.Spans) != 2 || len(back.Flows) != 1 {
		t.Fatalf("round trip: %d spans %d flows", len(back.Spans), len(back.Flows))
	}
	if back.Metrics["rank0.dist.measured.bcast_seconds"] != 0.25 {
		t.Fatalf("per-rank metrics lost: %v", back.Metrics)
	}
	rows := back.RankMeasuredOps()
	if len(rows) != 1 || rows[0].Rank != 0 || rows[0].Op != "bcast" || rows[0].Ops != 1 {
		t.Fatalf("RankMeasuredOps: %+v", rows)
	}
	var chrome bytes.Buffer
	if err := m.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"ph": "s"`, `"ph": "f"`, `"rank 1"`, `"rank 0 (driver)"`} {
		if !strings.Contains(chrome.String(), want) {
			t.Fatalf("chrome trace missing %s:\n%s", want, chrome.String())
		}
	}
}
