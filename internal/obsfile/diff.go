package obsfile

import (
	"fmt"
	"sort"
	"strings"
)

// DeterministicMetric reports whether a counter is part of the
// determinism contract: bit-identical for a given experiment across
// worker counts, schedules, and machines. Deterministic counters come
// from the machine model and the algorithmic operation counts
// (picosecond-integer dist accounting, GEMM/move tallies, health
// counters, the per-task submission count). Everything else — wall
// times, queue waits, inline-vs-worker split, plan-cache hit counts
// under concurrent compilation, scratch memory peaks — depends on
// scheduling and is reported but never diffed or gated.
func DeterministicMetric(name string) bool {
	// dist.measured.* is real-transport wall clock (recorded beside the
	// modeled dist.* accounting) — never deterministic.
	if strings.HasPrefix(name, "dist.measured.") {
		return false
	}
	deterministic := []string{
		"dist.",
		"einsum.gemm.",
		"einsum.move.",
		"einsum.contractions",
		"health.",
		"pool.task.count",
	}
	for _, p := range deterministic {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// DiffLine is one deterministic field that differs between two traces.
type DiffLine struct {
	Field string
	A, B  float64
	InA   bool
	InB   bool
}

func (d DiffLine) String() string {
	switch {
	case !d.InA:
		return fmt.Sprintf("%s: (absent) -> %g", d.Field, d.B)
	case !d.InB:
		return fmt.Sprintf("%s: %g -> (absent)", d.Field, d.A)
	default:
		return fmt.Sprintf("%s: %g -> %g (%+g)", d.Field, d.A, d.B, d.B-d.A)
	}
}

// Diff compares the deterministic fields of two traces — the counter
// snapshot filtered by DeterministicMetric plus the per-rank timeline
// totals — and returns the differing fields sorted by name. An empty
// result means the traces agree on every deterministic field (the
// expected outcome for the same experiment at different worker counts).
// Checked is the number of fields compared.
func Diff(a, b *Trace) (diffs []DiffLine, checked int) {
	fa, fb := a.deterministicFields(), b.deterministicFields()
	names := map[string]bool{}
	for n := range fa {
		names[n] = true
	}
	for n := range fb {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, n := range sorted {
		va, inA := fa[n]
		vb, inB := fb[n]
		checked++
		if inA != inB || va != vb {
			diffs = append(diffs, DiffLine{Field: n, A: va, B: vb, InA: inA, InB: inB})
		}
	}
	return diffs, checked
}

// deterministicFields flattens a trace's gate-stable values: filtered
// metrics and rank timeline totals keyed rank[grid/N].<part>.
func (t *Trace) deterministicFields() map[string]float64 {
	out := map[string]float64{}
	for name, v := range t.Metrics {
		if DeterministicMetric(name) {
			out[name] = v
		}
	}
	for _, row := range t.RankTable() {
		prefix := fmt.Sprintf("rank[%s/%d].", row.Grid, row.Rank)
		out[prefix+"comp_s"] = row.CompS
		out[prefix+"lat_s"] = row.LatS
		out[prefix+"bw_s"] = row.BWS
		out[prefix+"wait_s"] = row.WaitS
	}
	return out
}
