package obsfile

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestBuildReportMirrorsTextReport checks the JSON report carries the
// same aggregates the text report prints: span/root counts, phases,
// rankings, a critical path no longer than the traced wall, rank rows,
// and the final counters — and that it round-trips through encoding.
func TestBuildReportMirrorsTextReport(t *testing.T) {
	log, _ := buildLog(t)
	tr, err := Read(bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	doc := BuildReport(tr, 5)

	if doc.Spans != len(tr.Spans) || doc.Roots != len(tr.Roots) {
		t.Fatalf("counts %d/%d, want %d/%d", doc.Spans, doc.Roots, len(tr.Spans), len(tr.Roots))
	}
	if doc.WallUS != tr.WallUS() {
		t.Fatalf("wall %g != %g", doc.WallUS, tr.WallUS())
	}
	if len(doc.Phases) != len(tr.Phases()) {
		t.Fatalf("phases %d != %d", len(doc.Phases), len(tr.Phases()))
	}
	for _, by := range []string{ByInclusive, ByExclusive} {
		spans, ok := doc.Top[by]
		if !ok || len(spans) == 0 {
			t.Fatalf("ranking %q missing: %v", by, doc.Top)
		}
		if len(spans) > 5 {
			t.Fatalf("ranking %q exceeds top-k: %d", by, len(spans))
		}
		for i := 1; i < len(spans); i++ {
			a, b := spans[i-1], spans[i]
			if by == ByInclusive && a.DurUS < b.DurUS {
				t.Fatalf("%q not sorted: %g before %g", by, a.DurUS, b.DurUS)
			}
			if by == ByExclusive && a.SelfUS < b.SelfUS {
				t.Fatalf("%q not sorted: %g before %g", by, a.SelfUS, b.SelfUS)
			}
		}
	}
	// buildLog's leaves carry flops, so the flops ranking must survive
	// the positive-flops filter.
	if len(doc.Top[ByFlops]) == 0 {
		t.Fatalf("flops ranking missing: %v", doc.Top)
	}
	if doc.CriticalPath == nil || len(doc.CriticalPath.Steps) == 0 {
		t.Fatal("critical path missing")
	}
	if doc.CriticalPath.TotalUS > doc.WallUS+1 {
		t.Fatalf("critical path %g exceeds wall %g", doc.CriticalPath.TotalUS, doc.WallUS)
	}
	for _, st := range doc.CriticalPath.Steps {
		if st.SlackUS == nil {
			t.Fatalf("critical-path step %q missing slack", st.Name)
		}
	}
	if len(doc.Ranks) != 2 {
		t.Fatalf("rank rows %d, want 2", len(doc.Ranks))
	}
	if doc.Metrics["dist.test.ops"] != 42 {
		t.Fatalf("metrics map lost the counter: %v", doc.Metrics)
	}

	// Round-trip: the document is part of the CLI contract and must
	// encode/decode losslessly.
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var back ReportDoc
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Spans != doc.Spans || len(back.Phases) != len(doc.Phases) ||
		len(back.CriticalPath.Steps) != len(doc.CriticalPath.Steps) {
		t.Fatalf("round-trip mismatch: %+v vs %+v", back, doc)
	}
}
