// Package obsfile reads the JSON-lines trace logs written by
// obs.JSONLSink and reconstructs the span tree, per-rank machine-model
// timelines, and the final counter snapshot for offline analysis. It is
// the library behind cmd/koala-obs: phase summaries (matching
// obs.WriteSummary), top-K span rankings, critical-path extraction
// through the task DAG, per-rank utilization tables, and deterministic
// trace diffing.
package obsfile

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"gokoala/internal/obs"
)

// Span is one completed span read back from a trace log, linked into
// the parent/child tree the explicit span handles recorded.
type Span struct {
	Name     string
	ID       int64
	Parent   int64
	OffsetUS float64
	DurUS    float64
	Depth    int
	Track    int
	Attrs    map[string]interface{}

	// Children are the spans whose Parent is this span, in start order.
	Children []*Span

	selfUS float64
}

// EndUS is the span's end offset in microseconds from the trace origin.
func (s *Span) EndUS() float64 { return s.OffsetUS + s.DurUS }

// SelfUS is the span's exclusive time: duration minus the summed
// durations of its children, clamped at zero (concurrent children can
// sum past the parent) — the same definition obs.Summary uses.
func (s *Span) SelfUS() float64 { return s.selfUS }

// AttrFloat returns a numeric attribute (ints and floats both decode as
// float64 from JSON).
func (s *Span) AttrFloat(key string) (float64, bool) {
	v, ok := s.Attrs[key].(float64)
	return v, ok
}

// TraceMeta identifies the process (or merge) that wrote a trace log.
type TraceMeta struct {
	// Rank is the writing process's dist rank; -1 for a plain
	// single-process trace.
	Rank int
	// PID is the writer's OS process id (0 in merged traces).
	PID int
	// EpochUnixNS is the writer's trace origin on its own wall clock
	// (unix nanoseconds); the base clock in merged traces.
	EpochUnixNS int64
	// Merged marks a multi-rank trace produced by MergeRanks, with
	// RankCount rank logs folded in and MaxResidualNS the worst-case
	// clock skew remaining after correction (half the largest sync-ping
	// round trip).
	Merged        bool
	RankCount     int
	MaxResidualNS int64
}

// Flow is one matched sender→receiver communication pair: a
// dist.net.send span on rank From paired with the dist.net.recv span on
// rank To that consumed the same frame (key: op/seq/step/from/to from
// the wire header). Written by MergeRanks as {"type":"flow"} records.
type Flow struct {
	Op        string
	Seq       int64
	Step      int64
	From, To  int
	SendID    int64
	RecvID    int64
	LatencyUS float64
}

// Trace is one parsed trace log.
type Trace struct {
	// Spans holds every span record in file (= end) order.
	Spans []*Span
	// Roots are the spans with no parent, in start order.
	Roots []*Span
	// Ranks holds the per-rank modeled timelines, in file order.
	Ranks []obs.RankRecord
	// Metrics is the final counter snapshot (the last metrics record in
	// the file; nil when the log was cut before Flush).
	Metrics map[string]float64
	// Meta is the leading writer-identity record (nil in logs predating
	// it).
	Meta *TraceMeta
	// Flows holds the matched cross-rank comm pairs of a merged trace.
	Flows []Flow
	// Truncated reports that the final line of the log failed to parse
	// and was dropped — the signature of a writer killed mid-record
	// (rank teardown past the SIGTERM grace). Everything before it is
	// intact.
	Truncated bool

	byID map[int64]*Span
}

// IsMerged reports whether this is a multi-rank trace produced by
// MergeRanks (spans carry "rank" attributes and tracks are rank ids).
func (t *Trace) IsMerged() bool { return t.Meta != nil && t.Meta.Merged }

// Span returns the span with the given id, or nil.
func (t *Trace) Span(id int64) *Span { return t.byID[id] }

// WallUS is the traced wall clock: the latest span end offset.
func (t *Trace) WallUS() float64 {
	var wall float64
	for _, s := range t.Spans {
		if end := s.EndUS(); end > wall {
			wall = end
		}
	}
	return wall
}

// record is the union of the JSONL record types, keyed by "type".
type record struct {
	Type string `json:"type"`

	// span fields
	Name     string                 `json:"name"`
	ID       int64                  `json:"id"`
	Parent   int64                  `json:"parent"`
	OffsetUS float64                `json:"offset_us"`
	DurUS    float64                `json:"dur_us"`
	Depth    int                    `json:"depth"`
	Track    int                    `json:"track"`
	Attrs    map[string]interface{} `json:"attrs"`

	// rank fields
	Grid        string            `json:"grid"`
	Rank        int               `json:"rank"`
	CompSeconds float64           `json:"comp_s"`
	LatSeconds  float64           `json:"lat_s"`
	BWSeconds   float64           `json:"bw_s"`
	WaitSeconds float64           `json:"wait_s"`
	Segments    []obs.RankSegment `json:"segments"`

	// metrics fields
	Metrics map[string]float64 `json:"metrics"`

	// meta fields (Rank is shared with the rank record above)
	PID           int   `json:"pid"`
	EpochUnixNS   int64 `json:"epoch_unix_ns"`
	Merged        bool  `json:"merged"`
	RankCount     int   `json:"ranks"`
	MaxResidualNS int64 `json:"max_residual_ns"`

	// flow fields (Op shares "op"; From/To/Seq/Step are flow-only)
	Op        string  `json:"op"`
	Seq       int64   `json:"seq"`
	Step      int64   `json:"step"`
	From      int     `json:"from"`
	To        int     `json:"to"`
	SendID    int64   `json:"send_id"`
	RecvID    int64   `json:"recv_id"`
	LatencyUS float64 `json:"latency_us"`
}

// Read parses a JSONL trace log and links the span tree. A final line
// that fails to parse is dropped and flagged (Trace.Truncated) rather
// than failing the read: a rank killed past its teardown grace leaves
// exactly that — a log cut mid-record. A malformed line with intact
// lines after it is still an error.
func Read(r io.Reader) (*Trace, error) {
	t := &Trace{byID: map[int64]*Span{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	line := 0
	var badLine error
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		if badLine != nil {
			// The earlier failure was not on the final line after all.
			return nil, badLine
		}
		var rec record
		if err := json.Unmarshal(raw, &rec); err != nil {
			badLine = fmt.Errorf("line %d: %w", line, err)
			continue
		}
		switch rec.Type {
		case "span":
			sp := &Span{
				Name: rec.Name, ID: rec.ID, Parent: rec.Parent,
				OffsetUS: rec.OffsetUS, DurUS: rec.DurUS,
				Depth: rec.Depth, Track: rec.Track, Attrs: rec.Attrs,
			}
			t.Spans = append(t.Spans, sp)
			t.byID[sp.ID] = sp
		case "rank":
			t.Ranks = append(t.Ranks, obs.RankRecord{
				Grid: rec.Grid, Rank: rec.Rank,
				CompSeconds: rec.CompSeconds, LatSeconds: rec.LatSeconds,
				BWSeconds: rec.BWSeconds, WaitSeconds: rec.WaitSeconds,
				Segments: rec.Segments,
			})
		case "metrics":
			t.Metrics = rec.Metrics
		case "meta":
			if t.Meta == nil {
				t.Meta = &TraceMeta{
					Rank: rec.Rank, PID: rec.PID, EpochUnixNS: rec.EpochUnixNS,
					Merged: rec.Merged, RankCount: rec.RankCount,
					MaxResidualNS: rec.MaxResidualNS,
				}
			}
		case "flow":
			t.Flows = append(t.Flows, Flow{
				Op: rec.Op, Seq: rec.Seq, Step: rec.Step,
				From: rec.From, To: rec.To,
				SendID: rec.SendID, RecvID: rec.RecvID,
				LatencyUS: rec.LatencyUS,
			})
		default:
			return nil, fmt.Errorf("line %d: unknown record type %q", line, rec.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	t.Truncated = badLine != nil
	t.link()
	return t, nil
}

// ReadFile parses the trace log at path.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// link builds the parent/child tree and computes exclusive times.
// Records arrive in end order (children before parents), so linking
// runs after the whole file is read. A span whose parent id never
// appears (the log was cut mid-run) is treated as a root.
func (t *Trace) link() {
	for _, s := range t.Spans {
		if p := t.byID[s.Parent]; p != nil && p != s {
			p.Children = append(p.Children, s)
		} else {
			t.Roots = append(t.Roots, s)
		}
	}
	byStart := func(spans []*Span) {
		sort.SliceStable(spans, func(i, j int) bool {
			return spans[i].OffsetUS < spans[j].OffsetUS
		})
	}
	byStart(t.Roots)
	for _, s := range t.Spans {
		byStart(s.Children)
		var child float64
		for _, c := range s.Children {
			child += c.DurUS
		}
		s.selfUS = s.DurUS - child
		if s.selfUS < 0 {
			s.selfUS = 0
		}
	}
}
