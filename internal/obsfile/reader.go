// Package obsfile reads the JSON-lines trace logs written by
// obs.JSONLSink and reconstructs the span tree, per-rank machine-model
// timelines, and the final counter snapshot for offline analysis. It is
// the library behind cmd/koala-obs: phase summaries (matching
// obs.WriteSummary), top-K span rankings, critical-path extraction
// through the task DAG, per-rank utilization tables, and deterministic
// trace diffing.
package obsfile

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"gokoala/internal/obs"
)

// Span is one completed span read back from a trace log, linked into
// the parent/child tree the explicit span handles recorded.
type Span struct {
	Name     string
	ID       int64
	Parent   int64
	OffsetUS float64
	DurUS    float64
	Depth    int
	Track    int
	Attrs    map[string]interface{}

	// Children are the spans whose Parent is this span, in start order.
	Children []*Span

	selfUS float64
}

// EndUS is the span's end offset in microseconds from the trace origin.
func (s *Span) EndUS() float64 { return s.OffsetUS + s.DurUS }

// SelfUS is the span's exclusive time: duration minus the summed
// durations of its children, clamped at zero (concurrent children can
// sum past the parent) — the same definition obs.Summary uses.
func (s *Span) SelfUS() float64 { return s.selfUS }

// AttrFloat returns a numeric attribute (ints and floats both decode as
// float64 from JSON).
func (s *Span) AttrFloat(key string) (float64, bool) {
	v, ok := s.Attrs[key].(float64)
	return v, ok
}

// Trace is one parsed trace log.
type Trace struct {
	// Spans holds every span record in file (= end) order.
	Spans []*Span
	// Roots are the spans with no parent, in start order.
	Roots []*Span
	// Ranks holds the per-rank modeled timelines, in file order.
	Ranks []obs.RankRecord
	// Metrics is the final counter snapshot (the last metrics record in
	// the file; nil when the log was cut before Flush).
	Metrics map[string]float64

	byID map[int64]*Span
}

// Span returns the span with the given id, or nil.
func (t *Trace) Span(id int64) *Span { return t.byID[id] }

// WallUS is the traced wall clock: the latest span end offset.
func (t *Trace) WallUS() float64 {
	var wall float64
	for _, s := range t.Spans {
		if end := s.EndUS(); end > wall {
			wall = end
		}
	}
	return wall
}

// record is the union of the JSONL record types, keyed by "type".
type record struct {
	Type string `json:"type"`

	// span fields
	Name     string                 `json:"name"`
	ID       int64                  `json:"id"`
	Parent   int64                  `json:"parent"`
	OffsetUS float64                `json:"offset_us"`
	DurUS    float64                `json:"dur_us"`
	Depth    int                    `json:"depth"`
	Track    int                    `json:"track"`
	Attrs    map[string]interface{} `json:"attrs"`

	// rank fields
	Grid        string            `json:"grid"`
	Rank        int               `json:"rank"`
	CompSeconds float64           `json:"comp_s"`
	LatSeconds  float64           `json:"lat_s"`
	BWSeconds   float64           `json:"bw_s"`
	WaitSeconds float64           `json:"wait_s"`
	Segments    []obs.RankSegment `json:"segments"`

	// metrics fields
	Metrics map[string]float64 `json:"metrics"`
}

// Read parses a JSONL trace log and links the span tree.
func Read(r io.Reader) (*Trace, error) {
	t := &Trace{byID: map[int64]*Span{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		switch rec.Type {
		case "span":
			sp := &Span{
				Name: rec.Name, ID: rec.ID, Parent: rec.Parent,
				OffsetUS: rec.OffsetUS, DurUS: rec.DurUS,
				Depth: rec.Depth, Track: rec.Track, Attrs: rec.Attrs,
			}
			t.Spans = append(t.Spans, sp)
			t.byID[sp.ID] = sp
		case "rank":
			t.Ranks = append(t.Ranks, obs.RankRecord{
				Grid: rec.Grid, Rank: rec.Rank,
				CompSeconds: rec.CompSeconds, LatSeconds: rec.LatSeconds,
				BWSeconds: rec.BWSeconds, WaitSeconds: rec.WaitSeconds,
				Segments: rec.Segments,
			})
		case "metrics":
			t.Metrics = rec.Metrics
		default:
			return nil, fmt.Errorf("line %d: unknown record type %q", line, rec.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	t.link()
	return t, nil
}

// ReadFile parses the trace log at path.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// link builds the parent/child tree and computes exclusive times.
// Records arrive in end order (children before parents), so linking
// runs after the whole file is read. A span whose parent id never
// appears (the log was cut mid-run) is treated as a root.
func (t *Trace) link() {
	for _, s := range t.Spans {
		if p := t.byID[s.Parent]; p != nil && p != s {
			p.Children = append(p.Children, s)
		} else {
			t.Roots = append(t.Roots, s)
		}
	}
	byStart := func(spans []*Span) {
		sort.SliceStable(spans, func(i, j int) bool {
			return spans[i].OffsetUS < spans[j].OffsetUS
		})
	}
	byStart(t.Roots)
	for _, s := range t.Spans {
		byStart(s.Children)
		var child float64
		for _, c := range s.Children {
			child += c.DurUS
		}
		s.selfUS = s.DurUS - child
		if s.selfUS < 0 {
			s.selfUS = 0
		}
	}
}
