// Multi-rank trace merging: fold the per-rank JSONL logs a distributed
// run captures (one obs.JSONLSink per process, each on its own wall
// clock) into one trace on the driver's clock. The pipeline is
//
//	capture   one rank<N>.jsonl per process + manifest.json (offsets)
//	align     corrected = offset_us + (epoch_r − clockOffset_r − epoch_0)
//	merge     span ids remapped per rank, "rank" attribute added
//	pair      dist.net.send ↔ dist.net.recv matched on the wire key
//	          (op, seq, step, from, to) into Flow events
//	analyze   RankUtilization, RankMeasuredOps, CrossRankCriticalPath
//
// The clock offsets come from the transport's NTP-style sync pings; the
// half-width of the best ping's round trip bounds the residual skew,
// reported as MaxResidualNS.

package obsfile

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Span names of the socket transport's comm instrumentation
// (internal/dist/net references these; defined here so the analyzer
// does not import the transport).
const (
	SpanCollective = "dist.net.collective"
	SpanSend       = "dist.net.send"
	SpanRecv       = "dist.net.recv"
)

// Manifest is the trace-directory roster the driver maintains
// (manifest.json): which ranks ran, their pids and trace files, and the
// latest clock-offset estimates.
type Manifest struct {
	Ranks     int            `json:"ranks"`
	Network   string         `json:"network"`
	DriverPID int            `json:"driver_pid"`
	RankInfo  []ManifestRank `json:"rank_info"`
}

// ManifestRank is one rank's manifest entry.
type ManifestRank struct {
	Rank int    `json:"rank"`
	PID  int    `json:"pid"`
	File string `json:"file"`
	// ClockOffsetNS is the rank's wall clock minus the driver's; RTTNS
	// the round trip of the ping that produced it (0 for rank 0).
	ClockOffsetNS int64 `json:"clock_offset_ns"`
	RTTNS         int64 `json:"rtt_ns"`
}

// WriteManifest writes dir/manifest.json atomically (temp + rename), so
// a merge racing a rewrite never sees a half manifest.
func WriteManifest(dir string, m Manifest) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, ".manifest.json.tmp")
	if err := os.WriteFile(tmp, append(b, '\n'), 0o666); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, "manifest.json"))
}

// ReadManifest reads dir/manifest.json.
func ReadManifest(dir string) (Manifest, error) {
	var m Manifest
	b, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(b, &m); err != nil {
		return m, fmt.Errorf("manifest.json: %w", err)
	}
	return m, nil
}

// RankInput is one rank's parsed trace plus its clock alignment.
type RankInput struct {
	Rank  int
	Trace *Trace
	// EpochUnixNS is the rank's trace origin on its own wall clock; 0
	// falls back to the trace's meta record.
	EpochUnixNS int64
	// ClockOffsetNS is the rank's wall clock minus the driver's (from
	// the sync pings); RTTNS bounds its error.
	ClockOffsetNS int64
	RTTNS         int64
}

// Merged is the result of MergeRanks: one Trace on the base (rank 0)
// clock, with pairing and alignment diagnostics.
type Merged struct {
	Trace *Trace
	// Ranks lists the merged rank ids in ascending order; MissingRanks
	// the ranks MergeDir expected but found no readable log for.
	Ranks        []int
	MissingRanks []int
	// PairsByOp counts the matched send/recv flow events per collective
	// op; Unmatched* count comm spans with no partner (a missing rank,
	// a truncated log, or a retried frame's duplicate).
	PairsByOp      map[string]int
	UnmatchedSends int
	UnmatchedRecvs int
	// MaxAbsOffsetNS is the largest clock correction applied;
	// MaxResidualNS the worst-case skew remaining after it.
	MaxAbsOffsetNS int64
	MaxResidualNS  int64
}

// idStride separates the id spaces of merged ranks: span ids are
// per-process counters, so rank r's ids are remapped to (r+1)*idStride+id.
const idStride int64 = 1 << 40

// MergeRanks merges per-rank traces onto the base clock: rank 0's epoch
// if present, else the smallest epoch given. Span offsets are shifted by
// (epoch_r − clockOffset_r − epoch_0); every span gains a "rank"
// attribute; send/recv spans are paired into Flow events on the wire key
// (op, seq, step, from, to) — duplicates (a retried frame) pair FIFO in
// corrected start order, the surplus counted unmatched.
func MergeRanks(inputs []RankInput) (*Merged, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("obsfile: merge of zero rank traces")
	}
	sorted := append([]RankInput(nil), inputs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Rank < sorted[j].Rank })

	epochOf := func(in RankInput) int64 {
		if in.EpochUnixNS != 0 {
			return in.EpochUnixNS
		}
		if in.Trace != nil && in.Trace.Meta != nil {
			return in.Trace.Meta.EpochUnixNS
		}
		return 0
	}
	var baseEpoch int64
	for _, in := range sorted {
		e := epochOf(in)
		if in.Rank == 0 && e != 0 {
			baseEpoch = e
			break
		}
		if e != 0 && (baseEpoch == 0 || e < baseEpoch) {
			baseEpoch = e
		}
	}

	m := &Merged{PairsByOp: map[string]int{}}
	out := &Trace{byID: map[int64]*Span{}, Metrics: map[string]float64{}}
	for _, in := range sorted {
		if in.Trace == nil {
			continue
		}
		m.Ranks = append(m.Ranks, in.Rank)
		if off := in.ClockOffsetNS; off > m.MaxAbsOffsetNS || -off > m.MaxAbsOffsetNS {
			if off < 0 {
				off = -off
			}
			m.MaxAbsOffsetNS = off
		}
		if res := in.RTTNS / 2; res > m.MaxResidualNS {
			m.MaxResidualNS = res
		}
		var shiftUS float64
		if e := epochOf(in); e != 0 && baseEpoch != 0 {
			shiftUS = float64(e-in.ClockOffsetNS-baseEpoch) / 1e3
		} else {
			shiftUS = float64(-in.ClockOffsetNS) / 1e3
		}
		remap := func(id int64) int64 {
			if id == 0 {
				return 0
			}
			return int64(in.Rank+1)*idStride + id
		}
		for _, s := range in.Trace.Spans {
			attrs := make(map[string]interface{}, len(s.Attrs)+1)
			for k, v := range s.Attrs {
				attrs[k] = v
			}
			attrs["rank"] = float64(in.Rank)
			ns := &Span{
				Name: s.Name, ID: remap(s.ID), Parent: remap(s.Parent),
				OffsetUS: s.OffsetUS + shiftUS, DurUS: s.DurUS,
				Depth: s.Depth, Track: s.Track, Attrs: attrs,
			}
			out.Spans = append(out.Spans, ns)
			out.byID[ns.ID] = ns
		}
		out.Ranks = append(out.Ranks, in.Trace.Ranks...)
		for k, v := range in.Trace.Metrics {
			if in.Rank == 0 {
				out.Metrics[k] = v
			}
			// Per-rank measured comm lands under a rank<r>. prefix —
			// outside the deterministic dist.* namespace by design.
			if strings.HasPrefix(k, "dist.measured.") {
				out.Metrics["rank"+strconv.Itoa(in.Rank)+"."+k] = v
			}
		}
		if in.Trace.Truncated {
			out.Truncated = true
		}
	}
	sort.SliceStable(out.Spans, func(i, j int) bool {
		return out.Spans[i].EndUS() < out.Spans[j].EndUS()
	})
	out.Meta = &TraceMeta{
		Rank: -1, EpochUnixNS: baseEpoch,
		Merged: true, RankCount: len(m.Ranks), MaxResidualNS: m.MaxResidualNS,
	}
	m.Trace = out
	m.pairFlows()
	out.link()
	return m, nil
}

// commKey is the wire identity both sides of a point-to-point message
// agree on.
type commKey struct {
	op       string
	seq      int64
	step     int64
	from, to int
}

func commSpanKey(s *Span) (commKey, bool) {
	op, _ := s.Attrs["op"].(string)
	seq, ok1 := s.AttrFloat("seq")
	step, ok2 := s.AttrFloat("step")
	from, ok3 := s.AttrFloat("from")
	to, ok4 := s.AttrFloat("to")
	if op == "" || !ok1 || !ok2 || !ok3 || !ok4 {
		return commKey{}, false
	}
	return commKey{op: op, seq: int64(seq), step: int64(step), from: int(from), to: int(to)}, true
}

// pairFlows matches send and recv spans FIFO per wire key.
func (m *Merged) pairFlows() {
	sends := map[commKey][]*Span{}
	recvs := map[commKey][]*Span{}
	for _, s := range m.Trace.Spans {
		if s.Name != SpanSend && s.Name != SpanRecv {
			continue
		}
		k, ok := commSpanKey(s)
		if !ok {
			continue
		}
		if s.Name == SpanSend {
			sends[k] = append(sends[k], s)
		} else {
			recvs[k] = append(recvs[k], s)
		}
	}
	byStart := func(ss []*Span) {
		sort.SliceStable(ss, func(i, j int) bool { return ss[i].OffsetUS < ss[j].OffsetUS })
	}
	keys := make([]commKey, 0, len(sends))
	for k := range sends {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.op != b.op {
			return a.op < b.op
		}
		if a.seq != b.seq {
			return a.seq < b.seq
		}
		if a.step != b.step {
			return a.step < b.step
		}
		if a.from != b.from {
			return a.from < b.from
		}
		return a.to < b.to
	})
	for _, k := range keys {
		ss, rs := sends[k], recvs[k]
		byStart(ss)
		byStart(rs)
		n := len(ss)
		if len(rs) < n {
			n = len(rs)
		}
		for i := 0; i < n; i++ {
			m.Trace.Flows = append(m.Trace.Flows, Flow{
				Op: k.op, Seq: k.seq, Step: k.step, From: k.from, To: k.to,
				SendID: ss[i].ID, RecvID: rs[i].ID,
				LatencyUS: rs[i].EndUS() - ss[i].OffsetUS,
			})
			m.PairsByOp[k.op]++
		}
		m.UnmatchedSends += len(ss) - n
		m.UnmatchedRecvs += len(rs) - n
	}
	// Recvs whose key never saw a send.
	for k, rs := range recvs {
		if _, ok := sends[k]; !ok {
			m.UnmatchedRecvs += len(rs)
		}
	}
}

// MergeDir merges a rank-trace directory: manifest.json names the rank
// files and clock offsets; without one, every rank<N>.jsonl present is
// merged with zero offsets. A missing or unreadable rank file is
// recorded in MissingRanks, not fatal — a crashed rank must not make
// the surviving traces unreadable.
func MergeDir(dir string) (*Merged, error) {
	var entries []ManifestRank
	if man, err := ReadManifest(dir); err == nil {
		entries = man.RankInfo
	} else if os.IsNotExist(err) {
		paths, _ := filepath.Glob(filepath.Join(dir, "rank*.jsonl"))
		sort.Strings(paths)
		for _, p := range paths {
			base := filepath.Base(p)
			r, cerr := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(base, "rank"), ".jsonl"))
			if cerr != nil {
				continue
			}
			entries = append(entries, ManifestRank{Rank: r, File: base})
		}
	} else {
		return nil, err
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("obsfile: no rank traces in %s", dir)
	}
	var inputs []RankInput
	var missing []int
	for _, e := range entries {
		t, err := ReadFile(filepath.Join(dir, e.File))
		if err != nil {
			missing = append(missing, e.Rank)
			continue
		}
		inputs = append(inputs, RankInput{
			Rank: e.Rank, Trace: t,
			ClockOffsetNS: e.ClockOffsetNS, RTTNS: e.RTTNS,
		})
	}
	if len(inputs) == 0 {
		return nil, fmt.Errorf("obsfile: no readable rank traces in %s (missing ranks %v)", dir, missing)
	}
	m, err := MergeRanks(inputs)
	if err != nil {
		return nil, err
	}
	m.MissingRanks = missing
	return m, nil
}

// WriteJSONL serializes the merged trace in the standard JSONL log
// format (readable back with Read/ReadFile, analyzable by koala-obs
// report): meta, spans in end order, rank records, flow records,
// metrics.
func (m *Merged) WriteJSONL(w io.Writer) error {
	write := func(rec interface{}) error {
		b, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "%s\n", b)
		return err
	}
	meta := m.Trace.Meta
	if err := write(struct {
		Type          string `json:"type"`
		Rank          int    `json:"rank"`
		EpochUnixNS   int64  `json:"epoch_unix_ns"`
		Merged        bool   `json:"merged"`
		Ranks         int    `json:"ranks"`
		MaxResidualNS int64  `json:"max_residual_ns"`
	}{"meta", -1, meta.EpochUnixNS, true, meta.RankCount, meta.MaxResidualNS}); err != nil {
		return err
	}
	for _, s := range m.Trace.Spans {
		if err := write(struct {
			Type     string                 `json:"type"`
			Name     string                 `json:"name"`
			ID       int64                  `json:"id"`
			Parent   int64                  `json:"parent,omitempty"`
			OffsetUS float64                `json:"offset_us"`
			DurUS    float64                `json:"dur_us"`
			Depth    int                    `json:"depth"`
			Track    int                    `json:"track,omitempty"`
			Attrs    map[string]interface{} `json:"attrs,omitempty"`
		}{"span", s.Name, s.ID, s.Parent, s.OffsetUS, s.DurUS, s.Depth, s.Track, s.Attrs}); err != nil {
			return err
		}
	}
	for _, r := range m.Trace.Ranks {
		rec := r
		rec.Segments = nil
		if err := write(struct {
			Type string  `json:"type"`
			Grid string  `json:"grid"`
			Rank int     `json:"rank"`
			Comp float64 `json:"comp_s"`
			Lat  float64 `json:"lat_s"`
			BW   float64 `json:"bw_s"`
			Wait float64 `json:"wait_s"`
		}{"rank", rec.Grid, rec.Rank, rec.CompSeconds, rec.LatSeconds, rec.BWSeconds, rec.WaitSeconds}); err != nil {
			return err
		}
	}
	for _, f := range m.Trace.Flows {
		if err := write(struct {
			Type      string  `json:"type"`
			Op        string  `json:"op"`
			Seq       int64   `json:"seq"`
			Step      int64   `json:"step"`
			From      int     `json:"from"`
			To        int     `json:"to"`
			SendID    int64   `json:"send_id"`
			RecvID    int64   `json:"recv_id"`
			LatencyUS float64 `json:"latency_us"`
		}{"flow", f.Op, f.Seq, f.Step, f.From, f.To, f.SendID, f.RecvID, f.LatencyUS}); err != nil {
			return err
		}
	}
	return write(struct {
		Type    string             `json:"type"`
		Metrics map[string]float64 `json:"metrics"`
	}{"metrics", m.Trace.Metrics})
}

// chromeEv is a Chrome trace_event record, including the flow-event
// fields (id/cat/bp) the obs sink's plain span events never need.
type chromeEv struct {
	Name string                 `json:"name"`
	Ph   string                 `json:"ph"`
	TS   float64                `json:"ts"`
	Dur  float64                `json:"dur,omitempty"`
	PID  int                    `json:"pid"`
	TID  int                    `json:"tid"`
	ID   int                    `json:"id,omitempty"`
	Cat  string                 `json:"cat,omitempty"`
	BP   string                 `json:"bp,omitempty"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// WriteChromeTrace serializes the merged trace as Chrome trace_event
// JSON: one process per rank (pid = rank+1, named), spans on their
// original thread lanes with skew-corrected timestamps, and one flow
// event arrow per matched send/recv pair.
func (m *Merged) WriteChromeTrace(w io.Writer) error {
	var evs []chromeEv
	named := map[int]bool{}
	for _, s := range m.Trace.Spans {
		rank := 0
		if v, ok := s.AttrFloat("rank"); ok {
			rank = int(v)
		}
		pid := rank + 1
		if !named[pid] {
			named[pid] = true
			name := fmt.Sprintf("rank %d", rank)
			if rank == 0 {
				name += " (driver)"
			}
			evs = append(evs, chromeEv{
				Name: "process_name", Ph: "M", PID: pid, TID: 0,
				Args: map[string]interface{}{"name": name},
			})
			evs = append(evs, chromeEv{
				Name: "process_sort_index", Ph: "M", PID: pid, TID: 0,
				Args: map[string]interface{}{"sort_index": rank},
			})
		}
		evs = append(evs, chromeEv{
			Name: s.Name, Ph: "X", TS: s.OffsetUS, Dur: s.DurUS,
			PID: pid, TID: 1 + s.Track, Args: s.Attrs,
		})
	}
	rankOf := func(id int64) int { return int(id/idStride) - 1 }
	for i, f := range m.Trace.Flows {
		send, recv := m.Trace.Span(f.SendID), m.Trace.Span(f.RecvID)
		if send == nil || recv == nil {
			continue
		}
		evs = append(evs, chromeEv{
			Name: f.Op, Ph: "s", Cat: "comm", ID: i + 1,
			TS: send.EndUS(), PID: rankOf(send.ID) + 1, TID: 1 + send.Track,
		})
		evs = append(evs, chromeEv{
			Name: f.Op, Ph: "f", BP: "e", Cat: "comm", ID: i + 1,
			TS: recv.EndUS(), PID: rankOf(recv.ID) + 1, TID: 1 + recv.Track,
		})
	}
	b, err := json.MarshalIndent(evs, "", " ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}
