// Analyses specific to merged multi-rank traces: per-rank
// compute/comm/idle utilization, the per-rank measured-vs-modeled comm
// table, and the cross-rank critical path threaded through matched
// send/recv flow pairs.

package obsfile

import (
	"regexp"
	"sort"
	"strconv"
)

// RankUtil is one rank's share of the merged run window. Comm is the
// summed duration of its dist.net.collective spans, compute the summed
// exclusive time of everything that is not transport instrumentation,
// and idle the remainder of the window (clamped at zero — overlapping
// worker lanes can oversubscribe it).
type RankUtil struct {
	Rank     int     `json:"rank"`
	Spans    int     `json:"spans"`
	WallS    float64 `json:"wall_s"`
	ComputeS float64 `json:"compute_s"`
	CommS    float64 `json:"comm_s"`
	IdleS    float64 `json:"idle_s"`
}

// RankUtilization computes per-rank utilization over the merged trace's
// global window (earliest span start to latest span end, so every rank
// is judged against the same wall clock). Spans without a "rank"
// attribute (a non-merged trace) fall into rank 0.
func (t *Trace) RankUtilization() []RankUtil {
	if len(t.Spans) == 0 {
		return nil
	}
	start, end := t.Spans[0].OffsetUS, t.Spans[0].EndUS()
	for _, s := range t.Spans {
		if s.OffsetUS < start {
			start = s.OffsetUS
		}
		if e := s.EndUS(); e > end {
			end = e
		}
	}
	wallS := (end - start) / 1e6
	agg := map[int]*RankUtil{}
	for _, s := range t.Spans {
		rank := 0
		if v, ok := s.AttrFloat("rank"); ok {
			rank = int(v)
		}
		u := agg[rank]
		if u == nil {
			u = &RankUtil{Rank: rank, WallS: wallS}
			agg[rank] = u
		}
		u.Spans++
		switch s.Name {
		case SpanCollective:
			u.CommS += s.DurUS / 1e6
		case SpanSend, SpanRecv:
			// Children of the collective span; already counted.
		default:
			u.ComputeS += s.SelfUS() / 1e6
		}
	}
	out := make([]RankUtil, 0, len(agg))
	for _, u := range agg {
		u.IdleS = u.WallS - u.CommS - u.ComputeS
		if u.IdleS < 0 {
			u.IdleS = 0
		}
		out = append(out, *u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}

// RankOpRow is one rank's measured wall-clock for one collective op,
// with the driver's modeled charge for the same op alongside (the model
// meters the job once, so ModeledS repeats per rank).
type RankOpRow struct {
	Rank     int     `json:"rank"`
	Op       string  `json:"op"`
	Ops      int64   `json:"measured_ops"`
	SecondsM float64 `json:"measured_seconds"` // measured on that rank
	ModeledS float64 `json:"modeled_seconds"`  // modeled total for the op (driver-side)
}

var rankMeasuredRe = regexp.MustCompile(`^rank(\d+)\.dist\.measured\.([a-z_]+)_seconds$`)

// RankMeasuredOps extracts the per-rank measured-vs-modeled comm table
// from a merged trace's metrics snapshot (rank<r>.dist.measured.* keys
// beside the driver's dist.modeled.* charges). Sorted by rank then op.
func (t *Trace) RankMeasuredOps() []RankOpRow {
	var rows []RankOpRow
	for k, v := range t.Metrics {
		m := rankMeasuredRe.FindStringSubmatch(k)
		if m == nil {
			continue
		}
		rank, _ := strconv.Atoi(m[1])
		op := m[2]
		row := RankOpRow{Rank: rank, Op: op, SecondsM: v}
		row.Ops = int64(t.Metrics["rank"+m[1]+".dist.measured."+op+"_ops"])
		row.ModeledS = t.Metrics["dist.modeled."+op+"_seconds"]
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Rank != rows[j].Rank {
			return rows[i].Rank < rows[j].Rank
		}
		return rows[i].Op < rows[j].Op
	})
	return rows
}

// CrossStep is one hop of the cross-rank critical path.
type CrossStep struct {
	Span *Span
	Rank int
	// CrossRank marks a hop reached from the previous step over a
	// matched send→recv flow edge (a rank switch), as opposed to
	// serialization on the same rank.
	CrossRank bool
}

// CrossPath is the heaviest dependency chain through the merged trace's
// point-to-point messages.
type CrossPath struct {
	Steps   []CrossStep
	TotalUS float64
}

// CrossRankCriticalPath finds the longest chain of dist.net.send /
// dist.net.recv spans under the dependency order: a comm span follows
// every earlier-finishing comm span on its own rank that ended before it
// started, and a recv follows the send the flow records paired it with.
// This is the skew-corrected path an imbalance analysis should chase —
// the chain that, shortened, shortens the run. Returns nil when the
// trace has no comm spans.
func (t *Trace) CrossRankCriticalPath() *CrossPath {
	type nd struct {
		s    *Span
		rank int
		cp   float64
		pred int // index into nodes; -1 none
		flow bool
	}
	var nodes []nd
	idxByID := map[int64]int{}
	for _, s := range t.Spans {
		if s.Name != SpanSend && s.Name != SpanRecv {
			continue
		}
		rank := 0
		if v, ok := s.AttrFloat("rank"); ok {
			rank = int(v)
		}
		nodes = append(nodes, nd{s: s, rank: rank, pred: -1})
	}
	if len(nodes) == 0 {
		return nil
	}
	sort.SliceStable(nodes, func(i, j int) bool { return nodes[i].s.EndUS() < nodes[j].s.EndUS() })
	for i := range nodes {
		idxByID[nodes[i].s.ID] = i
	}
	sendOf := map[int64]int64{} // recv span id -> send span id
	for _, f := range t.Flows {
		sendOf[f.RecvID] = f.SendID
	}
	// done[rank] holds that rank's processed nodes in end order with a
	// running prefix-max of cp, so the best same-rank predecessor that
	// ended before a start is one binary search away.
	type fin struct {
		endUS  float64
		bestCP float64
		bestAt int
	}
	done := map[int][]fin{}
	for i := range nodes {
		n := &nodes[i]
		// Same-rank serialization edge.
		fs := done[n.rank]
		lo, hi := 0, len(fs)
		for lo < hi {
			mid := (lo + hi) / 2
			if fs[mid].endUS <= n.s.OffsetUS {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo > 0 {
			n.cp = fs[lo-1].bestCP
			n.pred = fs[lo-1].bestAt
		}
		// Flow edge: the matched send must finish before the recv does
		// (guaranteed up to residual skew; guard against the pathological
		// case so the DP stays acyclic).
		if sid, ok := sendOf[n.s.ID]; ok {
			if j, ok := idxByID[sid]; ok && j < i && nodes[j].cp > n.cp {
				n.cp = nodes[j].cp
				n.pred = j
				n.flow = true
			}
		}
		n.cp += n.s.DurUS
		f := fin{endUS: n.s.EndUS(), bestCP: n.cp, bestAt: i}
		if len(fs) > 0 && fs[len(fs)-1].bestCP > f.bestCP {
			f.bestCP = fs[len(fs)-1].bestCP
			f.bestAt = fs[len(fs)-1].bestAt
		}
		done[n.rank] = append(fs, f)
	}
	best := 0
	for i := range nodes {
		if nodes[i].cp > nodes[best].cp {
			best = i
		}
	}
	var steps []CrossStep
	for i := best; i >= 0; {
		n := nodes[i]
		steps = append(steps, CrossStep{Span: n.s, Rank: n.rank, CrossRank: n.flow})
		i = n.pred
	}
	for l, r := 0, len(steps)-1; l < r; l, r = l+1, r-1 {
		steps[l], steps[r] = steps[r], steps[l]
	}
	// CrossRank marks the edge *into* a step; the first step has none.
	if len(steps) > 0 {
		steps[0].CrossRank = false
	}
	return &CrossPath{Steps: steps, TotalUS: nodes[best].cp}
}
