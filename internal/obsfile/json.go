// Machine-readable report: the same aggregations the koala-obs text
// report prints — phases, top spans, critical path, rank utilization,
// final counters — as one stable JSON document, so dashboards and CI
// scripts can consume a trace without scraping the aligned tables.
package obsfile

import "sort"

// ReportDoc is the JSON form of a full trace report. Field names are
// part of the CLI contract (koala-obs report -json); extend, don't
// rename.
type ReportDoc struct {
	Spans  int        `json:"spans"`
	Roots  int        `json:"roots"`
	WallUS float64    `json:"wall_us"`
	Phases []PhaseDoc `json:"phases,omitempty"`
	// Top maps ranking name (inclusive, exclusive, flops) to the top-k
	// spans under that order.
	Top          map[string][]SpanDoc `json:"top_spans,omitempty"`
	CriticalPath *CriticalPathDoc     `json:"critical_path,omitempty"`
	Ranks        []RankRow            `json:"ranks,omitempty"`
	// Collectives is the per-collective modeled-vs-measured table; the
	// measured columns stay zero for in-process (modeled-only) runs.
	Collectives []CollectiveRow    `json:"collectives,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
	// Merged carries the multi-rank sections of a trace produced by
	// koala-obs merge; nil for single-process traces.
	Merged *MergedDoc `json:"merged,omitempty"`
}

// MergedDoc is the merged-trace section of a report: alignment quality,
// per-rank utilization over the shared window, per-rank measured comm,
// and the cross-rank critical path through matched send/recv pairs.
type MergedDoc struct {
	Ranks         int           `json:"ranks"`
	MaxResidualNS int64         `json:"max_residual_ns"`
	Truncated     bool          `json:"truncated,omitempty"`
	Flows         int           `json:"flows"`
	FlowsByOp     []FlowOpRow   `json:"flows_by_op,omitempty"`
	Utilization   []RankUtil    `json:"utilization,omitempty"`
	MeasuredOps   []RankOpRow   `json:"measured_ops,omitempty"`
	CrossRankPath *CrossPathDoc `json:"cross_rank_critical_path,omitempty"`
}

// FlowOpRow aggregates the matched comm pairs of one collective op.
type FlowOpRow struct {
	Op            string  `json:"op"`
	Pairs         int     `json:"pairs"`
	MeanLatencyUS float64 `json:"mean_latency_us"`
}

// CrossPathDoc is the cross-rank critical path in JSON form.
type CrossPathDoc struct {
	TotalUS float64        `json:"total_us"`
	Steps   []CrossStepDoc `json:"steps"`
}

// CrossStepDoc is one hop of the cross-rank critical path.
type CrossStepDoc struct {
	SpanDoc
	Rank      int  `json:"rank"`
	CrossRank bool `json:"cross_rank"`
}

// PhaseDoc is one per-phase aggregate row.
type PhaseDoc struct {
	Name    string             `json:"name"`
	Count   int64              `json:"count"`
	TotalUS float64            `json:"total_us"`
	SelfUS  float64            `json:"self_us"`
	Attrs   map[string]float64 `json:"attrs,omitempty"`
}

// SpanDoc is one individual span in a ranking or on the critical path.
type SpanDoc struct {
	Name     string                 `json:"name"`
	ID       int64                  `json:"id"`
	Depth    int                    `json:"depth"`
	OffsetUS float64                `json:"offset_us"`
	DurUS    float64                `json:"dur_us"`
	SelfUS   float64                `json:"self_us"`
	Attrs    map[string]interface{} `json:"attrs,omitempty"`
	// SlackUS is set only on critical-path steps: how much longer the
	// step could have run before delaying its container.
	SlackUS *float64 `json:"slack_us,omitempty"`
}

// CriticalPathDoc is the longest exclusive-time chain through the span
// tree, in execution order.
type CriticalPathDoc struct {
	TotalUS float64   `json:"total_us"`
	Steps   []SpanDoc `json:"steps"`
}

func spanDoc(s *Span) SpanDoc {
	return SpanDoc{
		Name:     s.Name,
		ID:       s.ID,
		Depth:    s.Depth,
		OffsetUS: s.OffsetUS,
		DurUS:    s.DurUS,
		SelfUS:   s.SelfUS(),
		Attrs:    s.Attrs,
	}
}

// BuildReport assembles the ReportDoc for a trace with top-k span
// rankings, mirroring the text report's content exactly (the flops
// ranking drops spans without a positive flops attribute, as the text
// report does).
func BuildReport(t *Trace, topK int) *ReportDoc {
	doc := &ReportDoc{
		Spans:   len(t.Spans),
		Roots:   len(t.Roots),
		WallUS:  t.WallUS(),
		Metrics: t.Metrics,
	}
	for _, p := range t.Phases() {
		attrs := p.Attrs
		if len(attrs) == 0 {
			attrs = nil
		}
		doc.Phases = append(doc.Phases, PhaseDoc{
			Name: p.Name, Count: p.Count, TotalUS: p.TotalUS, SelfUS: p.SelfUS, Attrs: attrs,
		})
	}
	for _, by := range []string{ByInclusive, ByExclusive, ByFlops} {
		spans := t.TopSpans(topK, by)
		if by == ByFlops {
			n := 0
			for _, s := range spans {
				if v, ok := s.AttrFloat("flops"); ok && v > 0 {
					spans[n] = s
					n++
				}
			}
			spans = spans[:n]
		}
		if len(spans) == 0 {
			continue
		}
		if doc.Top == nil {
			doc.Top = map[string][]SpanDoc{}
		}
		for _, s := range spans {
			doc.Top[by] = append(doc.Top[by], spanDoc(s))
		}
	}
	if steps, total := t.CriticalPath(); len(steps) > 0 {
		cp := &CriticalPathDoc{TotalUS: total}
		for _, st := range steps {
			d := spanDoc(st.Span)
			slack := st.SlackUS
			d.SlackUS = &slack
			cp.Steps = append(cp.Steps, d)
		}
		doc.CriticalPath = cp
	}
	doc.Ranks = t.RankTable()
	doc.Collectives = t.Collectives()
	if t.IsMerged() {
		doc.Merged = buildMergedDoc(t)
	}
	return doc
}

// buildMergedDoc assembles the multi-rank sections for a merged trace.
func buildMergedDoc(t *Trace) *MergedDoc {
	md := &MergedDoc{
		Ranks:         t.Meta.RankCount,
		MaxResidualNS: t.Meta.MaxResidualNS,
		Truncated:     t.Truncated,
		Flows:         len(t.Flows),
		Utilization:   t.RankUtilization(),
		MeasuredOps:   t.RankMeasuredOps(),
	}
	md.FlowsByOp = FlowsByOp(t)
	if cp := t.CrossRankCriticalPath(); cp != nil {
		cpd := &CrossPathDoc{TotalUS: cp.TotalUS}
		for _, st := range cp.Steps {
			cpd.Steps = append(cpd.Steps, CrossStepDoc{
				SpanDoc: spanDoc(st.Span), Rank: st.Rank, CrossRank: st.CrossRank,
			})
		}
		md.CrossRankPath = cpd
	}
	return md
}

// FlowsByOp aggregates a merged trace's flow records per collective op
// (pair count and mean end-to-end latency), sorted by op.
func FlowsByOp(t *Trace) []FlowOpRow {
	agg := map[string]*FlowOpRow{}
	order := []string{}
	for _, f := range t.Flows {
		r := agg[f.Op]
		if r == nil {
			r = &FlowOpRow{Op: f.Op}
			agg[f.Op] = r
			order = append(order, f.Op)
		}
		r.Pairs++
		r.MeanLatencyUS += f.LatencyUS
	}
	sort.Strings(order)
	rows := make([]FlowOpRow, 0, len(order))
	for _, op := range order {
		r := *agg[op]
		if r.Pairs > 0 {
			r.MeanLatencyUS /= float64(r.Pairs)
		}
		rows = append(rows, r)
	}
	return rows
}
