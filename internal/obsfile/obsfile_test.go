package obsfile

import (
	"bytes"
	"math"
	"testing"
	"time"

	"gokoala/internal/obs"
)

// buildLog drives a small traced workload through a real JSONL sink and
// returns the log bytes plus the live summary obs computed, so the
// reader can be checked against the source of truth.
func buildLog(t *testing.T) ([]byte, []obs.PhaseStat) {
	t.Helper()
	obs.Disable()
	var buf bytes.Buffer
	obs.Enable(obs.NewJSONLSink(&buf))
	cnt := obs.NewCounter("dist.test.ops")
	cnt.Add(42)

	for step := 0; step < 3; step++ {
		root := obs.Start("step")
		task := root.StartChild("task")
		done := make(chan struct{})
		go func() {
			defer close(done)
			task.Adopt()
			leaf := obs.Start("leaf").SetInt("flops", 1000)
			time.Sleep(200 * time.Microsecond)
			leaf.End()
			task.End()
		}()
		<-done
		root.End()
	}
	obs.EmitRank(obs.RankRecord{Grid: "g", Rank: 0, CompSeconds: 0.75, WaitSeconds: 0.25})
	obs.EmitRank(obs.RankRecord{Grid: "g", Rank: 1, CompSeconds: 0.25, WaitSeconds: 0.75})

	want := obs.Summary()
	if err := obs.Disable(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), want
}

// The reader must rebuild the same per-phase summary obs computed live:
// same counts, same totals and selfs (up to microsecond serialization).
func TestPhasesMatchLiveSummary(t *testing.T) {
	log, want := buildLog(t)
	tr, err := Read(bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]Phase{}
	for _, p := range tr.Phases() {
		got[p.Name] = p
	}
	if len(got) != len(want) {
		t.Fatalf("phase count %d != live %d", len(got), len(want))
	}
	const tolUS = 1.0
	for _, w := range want {
		g, ok := got[w.Name]
		if !ok {
			t.Fatalf("phase %q missing from reader output", w.Name)
		}
		if g.Count != w.Count {
			t.Fatalf("%s count %d != %d", w.Name, g.Count, w.Count)
		}
		wantTotal := float64(w.Total.Nanoseconds()) / 1e3
		wantSelf := float64(w.Self.Nanoseconds()) / 1e3
		if math.Abs(g.TotalUS-wantTotal) > tolUS {
			t.Fatalf("%s total %.3fus != live %.3fus", w.Name, g.TotalUS, wantTotal)
		}
		if math.Abs(g.SelfUS-wantSelf) > tolUS {
			t.Fatalf("%s self %.3fus != live %.3fus", w.Name, g.SelfUS, wantSelf)
		}
	}
	if v, ok := got["leaf"]; !ok || v.Attrs["flops"] != 3000 {
		t.Fatalf("leaf flops sum = %v, want 3000", got["leaf"].Attrs)
	}
	if tr.Metrics["dist.test.ops"] != 42 {
		t.Fatalf("metrics record lost: %v", tr.Metrics)
	}
}

// The tree must reflect the explicit handles: leaf under task under
// step, three of each, and roots only at depth zero.
func TestTreeStructure(t *testing.T) {
	log, _ := buildLog(t)
	tr, err := Read(bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Roots) != 3 {
		t.Fatalf("want 3 roots, got %d", len(tr.Roots))
	}
	for _, root := range tr.Roots {
		if root.Name != "step" || root.Depth != 0 {
			t.Fatalf("unexpected root %q depth %d", root.Name, root.Depth)
		}
		if len(root.Children) != 1 || root.Children[0].Name != "task" {
			t.Fatalf("step children = %+v", root.Children)
		}
		task := root.Children[0]
		if len(task.Children) != 1 || task.Children[0].Name != "leaf" {
			t.Fatalf("task children = %+v", task.Children)
		}
	}
}

// Critical path: bounded below by the longest single chain and above by
// the summed root durations (and the traced wall for serial roots), and
// it must walk through the sleeping leaves.
func TestCriticalPathBounds(t *testing.T) {
	log, _ := buildLog(t)
	tr, err := Read(bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	steps, total := tr.CriticalPath()
	if len(steps) != 9 { // 3 roots x (step, task, leaf)
		t.Fatalf("want 9 path steps, got %d", len(steps))
	}
	var maxChain, rootDur float64
	for _, root := range tr.Roots {
		rootDur += root.DurUS
		chain := root.SelfUS() + root.Children[0].SelfUS() + root.Children[0].Children[0].SelfUS()
		if chain > maxChain {
			maxChain = chain
		}
	}
	if total < maxChain {
		t.Fatalf("critical path %.1fus below longest chain %.1fus", total, maxChain)
	}
	if total > rootDur+1 {
		t.Fatalf("critical path %.1fus exceeds summed root durations %.1fus", total, rootDur)
	}
	if wall := tr.WallUS(); total > wall+1 {
		t.Fatalf("critical path %.1fus exceeds traced wall %.1fus", total, wall)
	}
	for _, st := range steps {
		if st.SlackUS < -1 {
			t.Fatalf("negative slack %.1fus on %s", st.SlackUS, st.Span.Name)
		}
	}
}

func TestRankTable(t *testing.T) {
	log, _ := buildLog(t)
	tr, err := Read(bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	rows := tr.RankTable()
	if len(rows) != 2 {
		t.Fatalf("want 2 rank rows, got %d", len(rows))
	}
	if rows[0].Rank != 0 || rows[0].UtilPct != 75 || rows[0].TotalS != 1 {
		t.Fatalf("rank 0 row wrong: %+v", rows[0])
	}
	if rows[1].Rank != 1 || rows[1].UtilPct != 25 {
		t.Fatalf("rank 1 row wrong: %+v", rows[1])
	}
}

func TestDiffDeterministicFieldsOnly(t *testing.T) {
	log, _ := buildLog(t)
	a, err := Read(bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Read(bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if diffs, checked := Diff(a, b); len(diffs) != 0 || checked == 0 {
		t.Fatalf("identical traces differ: %v (checked %d)", diffs, checked)
	}
	// A deterministic counter change must surface...
	b.Metrics["dist.test.ops"] = 43
	diffs, _ := Diff(a, b)
	if len(diffs) != 1 || diffs[0].Field != "dist.test.ops" {
		t.Fatalf("want the dist.test.ops diff, got %v", diffs)
	}
	// ...while wall-clock-like metrics are ignored.
	b.Metrics["dist.test.ops"] = 42
	b.Metrics["mem.peak_bytes"] = 1 << 30
	b.Metrics["pool.group.tasks"] = 999
	if diffs, _ := Diff(a, b); len(diffs) != 0 {
		t.Fatalf("nondeterministic metrics leaked into diff: %v", diffs)
	}
	// Rank timeline totals are part of the deterministic surface.
	b.Ranks[0].CompSeconds += 0.5
	if diffs, _ := Diff(a, b); len(diffs) != 1 || diffs[0].Field != "rank[g/0].comp_s" {
		t.Fatalf("want the rank comp_s diff, got %v", diffs)
	}
}

func TestDeterministicMetricPredicate(t *testing.T) {
	yes := []string{
		"dist.modeled.comm_seconds", "dist.comm.bytes", "dist.redistributions",
		"einsum.gemm.flops", "einsum.move.bytes", "einsum.contractions",
		"health.nan_detected", "pool.task.count",
	}
	no := []string{
		"pool.group.tasks", "pool.group.inline", "pool.tasks", "pool.inline",
		"pool.queue_wait_seconds", "einsum.plan.hits", "einsum.plan.misses",
		"mem.peak_bytes", "mem.live_bytes", "svd.trunc_error",
		// Real-transport wall clock lives under the dist. prefix but must
		// never be diffed or gated.
		"dist.measured.comm_seconds", "dist.measured.allreduce_seconds",
		"dist.measured.alltoall_ops", "dist.measured.comm_ops",
	}
	for _, n := range yes {
		if !DeterministicMetric(n) {
			t.Fatalf("%s should be deterministic", n)
		}
	}
	for _, n := range no {
		if DeterministicMetric(n) {
			t.Fatalf("%s must not be gated/diffed", n)
		}
	}
}
