package obsfile

import (
	"fmt"
	"sort"

	"gokoala/internal/dist"
)

// Phase is one row of the reconstructed per-phase summary: the same
// aggregation obs.Summary performs live (count, total, self, numeric
// attribute sums per span name), rebuilt from the log.
type Phase struct {
	Name    string
	Count   int64
	TotalUS float64
	SelfUS  float64
	Attrs   map[string]float64
}

// Phases aggregates spans by name, sorted by total time descending then
// name — the order obs.WriteSummary prints.
func (t *Trace) Phases() []Phase {
	agg := map[string]*Phase{}
	for _, s := range t.Spans {
		p := agg[s.Name]
		if p == nil {
			p = &Phase{Name: s.Name, Attrs: map[string]float64{}}
			agg[s.Name] = p
		}
		p.Count++
		p.TotalUS += s.DurUS
		p.SelfUS += s.SelfUS()
		for k := range s.Attrs {
			if v, ok := s.AttrFloat(k); ok {
				p.Attrs[k] += v
			}
		}
	}
	out := make([]Phase, 0, len(agg))
	for _, p := range agg {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalUS != out[j].TotalUS {
			return out[i].TotalUS > out[j].TotalUS
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Span ranking orders for TopSpans.
const (
	ByInclusive = "inclusive" // span duration
	ByExclusive = "exclusive" // duration minus children
	ByFlops     = "flops"     // the span's flops attribute
)

// TopSpans returns the k highest-ranked individual spans by the given
// order (ByInclusive, ByExclusive, ByFlops). Spans without a flops
// attribute rank last under ByFlops.
func (t *Trace) TopSpans(k int, by string) []*Span {
	key := func(s *Span) float64 {
		switch by {
		case ByExclusive:
			return s.SelfUS()
		case ByFlops:
			v, _ := s.AttrFloat("flops")
			return v
		default:
			return s.DurUS
		}
	}
	sorted := append([]*Span(nil), t.Spans...)
	sort.SliceStable(sorted, func(i, j int) bool { return key(sorted[i]) > key(sorted[j]) })
	if k < len(sorted) {
		sorted = sorted[:k]
	}
	return sorted
}

// PathStep is one span on the critical path. SlackUS is how much longer
// the step could have run before delaying its container: the gap
// between the step's end and its parent's end (for roots, the traced
// wall clock).
type PathStep struct {
	Span    *Span
	SlackUS float64
}

// CriticalPath walks the longest exclusive-time chain through the span
// tree: for each span, CP = self + max over children CP(child); roots
// execute in sequence, so the full path concatenates each root's chain.
// Returns the steps in execution order and the total critical-path
// length in microseconds. The length is at most the summed root
// durations (each level's self time excludes all children), so for a
// serially-rooted trace it never exceeds the traced wall clock.
func (t *Trace) CriticalPath() ([]PathStep, float64) {
	memo := map[*Span]float64{}
	var cp func(s *Span) float64
	cp = func(s *Span) float64 {
		if v, ok := memo[s]; ok {
			return v
		}
		best := 0.0
		for _, c := range s.Children {
			if v := cp(c); v > best {
				best = v
			}
		}
		v := s.SelfUS() + best
		memo[s] = v
		return v
	}
	wall := t.WallUS()
	var steps []PathStep
	var total float64
	for _, root := range t.Roots {
		total += cp(root)
		s, containerEnd := root, wall
		for s != nil {
			steps = append(steps, PathStep{Span: s, SlackUS: containerEnd - s.EndUS()})
			var next *Span
			best := -1.0
			for _, c := range s.Children {
				if v := cp(c); v > best {
					best, next = v, c
				}
			}
			containerEnd = s.EndUS()
			s = next
		}
	}
	return steps, total
}

// RankRow is one modeled rank's utilization summary. Duplicate
// (grid, rank) records in the log (one per flushed suite) are summed.
type RankRow struct {
	Grid    string
	Rank    int
	CompS   float64
	LatS    float64
	BWS     float64
	WaitS   float64
	TotalS  float64
	UtilPct float64 // compute share of the rank's modeled timeline
}

// RankTable aggregates the per-rank timeline records into utilization
// rows, sorted by grid then rank.
func (t *Trace) RankTable() []RankRow {
	type gridRank struct {
		grid string
		rank int
	}
	agg := map[gridRank]*RankRow{}
	for _, r := range t.Ranks {
		k := gridRank{r.Grid, r.Rank}
		row := agg[k]
		if row == nil {
			row = &RankRow{Grid: r.Grid, Rank: r.Rank}
			agg[k] = row
		}
		row.CompS += r.CompSeconds
		row.LatS += r.LatSeconds
		row.BWS += r.BWSeconds
		row.WaitS += r.WaitSeconds
	}
	out := make([]RankRow, 0, len(agg))
	for _, row := range agg {
		row.TotalS = row.CompS + row.LatS + row.BWS + row.WaitS
		if row.TotalS > 0 {
			row.UtilPct = 100 * row.CompS / row.TotalS
		}
		out = append(out, *row)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Grid != out[j].Grid {
			return out[i].Grid < out[j].Grid
		}
		return out[i].Rank < out[j].Rank
	})
	return out
}

// CollectiveRow is one collective's modeled-vs-measured comparison,
// rebuilt from the dist.modeled.* / dist.measured.* counters: the
// machine-model seconds beside the wall clock the attached transport
// actually took (zero when the run used the in-process engine).
type CollectiveRow struct {
	Op              string  `json:"op"`
	ModeledSeconds  float64 `json:"modeled_s"`
	MeasuredSeconds float64 `json:"measured_s"`
	MeasuredOps     int64   `json:"measured_ops,omitempty"`
}

// Collectives returns the per-collective modeled-vs-measured rows for
// every op the run metered, in op order. Empty when the run drove no
// dist grid.
func (t *Trace) Collectives() []CollectiveRow {
	var out []CollectiveRow
	for op := dist.Op(0); op < dist.NumOps; op++ {
		name := op.String()
		row := CollectiveRow{
			Op:              name,
			ModeledSeconds:  t.Metrics["dist.modeled."+name+"_seconds"],
			MeasuredSeconds: t.Metrics["dist.measured."+name+"_seconds"],
			MeasuredOps:     int64(t.Metrics["dist.measured."+name+"_ops"]),
		}
		if row.ModeledSeconds != 0 || row.MeasuredSeconds != 0 || row.MeasuredOps != 0 {
			out = append(out, row)
		}
	}
	return out
}

// FormatUS renders a microsecond quantity with an adaptive unit.
func FormatUS(us float64) string {
	switch {
	case us >= 1e6:
		return fmt.Sprintf("%.3fs", us/1e6)
	case us >= 1e3:
		return fmt.Sprintf("%.3fms", us/1e3)
	default:
		return fmt.Sprintf("%.1fus", us)
	}
}
