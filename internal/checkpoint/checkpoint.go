// Package checkpoint provides crash-safe serialization of long-running
// simulations: atomic checkpoint files (temp file + fsync + rename, so a
// kill at any instant leaves either the previous checkpoint or the new
// one, never a torn file) and the ITE/VQE checkpoint records that make a
// resumed run bit-identical to an uninterrupted one.
//
// The records save everything the dead process knew that the resuming
// process cannot recompute: the evolved PEPS state (with its LogScale),
// the step/round counter, the base strategy seed, and the trace measured
// so far. Random streams are NOT saved — ite.Evolve reseeds its strategy
// from (seed, step) at every measurement (einsumsvd.Reseed) and vqe.Run
// resumes at round granularity from the best point, so stream positions
// are reconstructible by construction.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"gokoala/internal/backend"
	"gokoala/internal/health"
	"gokoala/internal/peps"
)

const (
	iteMagic = "KOIT"
	vqeMagic = "KOVQ"
	version  = 1
	// iteVersionSym is the ITE record version that adds a state-kind
	// flag byte (0 dense, 1 block-sparse) before the serialized state.
	// Dense checkpoints keep writing version 1, so their bytes are
	// unchanged; only symmetric runs emit the new version.
	iteVersionSym = 2

	// maxSliceLen bounds trace-slice lengths during load, rejecting
	// corrupt headers before allocation.
	maxSliceLen = 1 << 24
)

// WriteAtomic writes a file through a temp-file-plus-rename sequence in
// the target's directory: the write callback streams into the temp file,
// which is fsynced, closed, and renamed over path. A crash at any point
// leaves either the old file or the new one. Failed writes (including
// faults injected via health.SetCheckpointFault) are counted in
// health.checkpoint_failures and leave the previous file untouched.
func WriteAtomic(path string, write func(io.Writer) error) (err error) {
	defer func() {
		if err != nil {
			health.CountCheckpointFailure()
		}
	}()
	if err := health.CheckpointFault(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return fmt.Errorf("checkpoint: write %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("checkpoint: sync %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: close %s: %w", path, err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: rename %s: %w", path, err)
	}
	return nil
}

// IsNotExist reports whether err means the checkpoint file does not
// exist yet — the "fresh start" case of a -resume flag.
func IsNotExist(err error) bool { return errors.Is(err, os.ErrNotExist) }

// ITECheckpoint is the resumable state of an imaginary-time-evolution
// run after Step completed sweeps.
type ITECheckpoint struct {
	// Step is the number of completed Trotter sweeps.
	Step int
	// Seed is the base strategy seed of the run; measurement streams are
	// derived from (Seed, step), so the resumed process reproduces them.
	Seed int64
	// Energies and MeasuredAt are the trace recorded so far.
	Energies   []float64
	MeasuredAt []int
	// State is the evolved PEPS (including LogScale). Exactly one of
	// State and SymState is set.
	State *peps.PEPS
	// SymState is the evolved block-sparse PEPS of a symmetric run.
	SymState *peps.SymPEPS
}

// SaveITE atomically writes an ITE checkpoint. Dense states use the
// original version-1 layout byte for byte; block-sparse states bump the
// record to version 2, which inserts a state-kind flag byte before the
// serialized state.
func SaveITE(path string, c *ITECheckpoint) error {
	return WriteAtomic(path, func(w io.Writer) error {
		if (c.State == nil) == (c.SymState == nil) {
			return fmt.Errorf("ite checkpoint needs exactly one of State and SymState")
		}
		if _, err := io.WriteString(w, iteMagic); err != nil {
			return err
		}
		v := uint64(version)
		if c.SymState != nil {
			v = iteVersionSym
		}
		hdr := []uint64{v, uint64(c.Step), uint64(c.Seed), uint64(len(c.Energies))}
		if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
			return err
		}
		if len(c.MeasuredAt) != len(c.Energies) {
			return fmt.Errorf("trace length mismatch: %d energies, %d steps", len(c.Energies), len(c.MeasuredAt))
		}
		if err := binary.Write(w, binary.LittleEndian, c.Energies); err != nil {
			return err
		}
		at := make([]uint64, len(c.MeasuredAt))
		for i, s := range c.MeasuredAt {
			at[i] = uint64(s)
		}
		if err := binary.Write(w, binary.LittleEndian, at); err != nil {
			return err
		}
		if c.SymState != nil {
			if _, err := w.Write([]byte{1}); err != nil {
				return err
			}
			return c.SymState.Save(w)
		}
		return c.State.Save(w)
	})
}

// LoadITE reads an ITE checkpoint written by SaveITE, attaching the
// engine to the restored state. Corrupt input comes back as an error.
func LoadITE(path string, eng backend.Engine) (*ITECheckpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	if err := readMagic(f, iteMagic); err != nil {
		return nil, err
	}
	var hdr [4]uint64
	if err := binary.Read(f, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("checkpoint: ite header: %w", err)
	}
	if hdr[0] != version && hdr[0] != iteVersionSym {
		return nil, fmt.Errorf("checkpoint: unsupported ite version %d", hdr[0])
	}
	n := hdr[3]
	if n > maxSliceLen {
		return nil, fmt.Errorf("checkpoint: implausible trace length %d", n)
	}
	c := &ITECheckpoint{Step: int(hdr[1]), Seed: int64(hdr[2])}
	if c.Step < 0 || c.Step > maxSliceLen {
		return nil, fmt.Errorf("checkpoint: implausible step %d", c.Step)
	}
	c.Energies = make([]float64, n)
	if err := binary.Read(f, binary.LittleEndian, c.Energies); err != nil {
		return nil, fmt.Errorf("checkpoint: ite energies: %w", err)
	}
	for i, e := range c.Energies {
		if math.IsNaN(e) || math.IsInf(e, 0) {
			return nil, fmt.Errorf("checkpoint: non-finite energy at measurement %d", i)
		}
	}
	at := make([]uint64, n)
	if err := binary.Read(f, binary.LittleEndian, at); err != nil {
		return nil, fmt.Errorf("checkpoint: ite trace steps: %w", err)
	}
	c.MeasuredAt = make([]int, n)
	for i, s := range at {
		if s > uint64(c.Step) {
			return nil, fmt.Errorf("checkpoint: measurement %d at step %d beyond checkpoint step %d", i, s, c.Step)
		}
		c.MeasuredAt[i] = int(s)
	}
	if hdr[0] == iteVersionSym {
		var kind [1]byte
		if _, err := io.ReadFull(f, kind[:]); err != nil {
			return nil, fmt.Errorf("checkpoint: ite state kind: %w", err)
		}
		switch kind[0] {
		case 0:
			c.State, err = peps.Load(f, eng)
		case 1:
			se, ok := backend.SymOf(eng)
			if !ok {
				return nil, fmt.Errorf("checkpoint: %s holds a block-sparse state but engine %s has no block-sparse kernels", path, eng.Name())
			}
			c.SymState, err = peps.LoadSym(f, se)
		default:
			return nil, fmt.Errorf("checkpoint: unknown ite state kind %d", kind[0])
		}
		if err != nil {
			return nil, err
		}
		return c, nil
	}
	c.State, err = peps.Load(f, eng)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// VQECheckpoint is the resumable state of a VQE run after Round
// completed optimizer rounds.
type VQECheckpoint struct {
	// Round is the number of completed Nelder-Mead restart rounds.
	Round int
	// Evals is the cumulative objective-evaluation count.
	Evals int
	// Energy is the best energy per site found so far.
	Energy float64
	// Theta is the best parameter vector found so far.
	Theta []float64
	// History is the best-so-far energy trace.
	History []float64
	// Seed is the base seed of the run.
	Seed int64
}

// SaveVQE atomically writes a VQE checkpoint.
func SaveVQE(path string, c *VQECheckpoint) error {
	return WriteAtomic(path, func(w io.Writer) error {
		if _, err := io.WriteString(w, vqeMagic); err != nil {
			return err
		}
		hdr := []uint64{version, uint64(c.Round), uint64(c.Evals), uint64(c.Seed),
			uint64(len(c.Theta)), uint64(len(c.History))}
		if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, c.Energy); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, c.Theta); err != nil {
			return err
		}
		return binary.Write(w, binary.LittleEndian, c.History)
	})
}

// LoadVQE reads a VQE checkpoint written by SaveVQE.
func LoadVQE(path string) (*VQECheckpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	if err := readMagic(f, vqeMagic); err != nil {
		return nil, err
	}
	var hdr [6]uint64
	if err := binary.Read(f, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("checkpoint: vqe header: %w", err)
	}
	if hdr[0] != version {
		return nil, fmt.Errorf("checkpoint: unsupported vqe version %d", hdr[0])
	}
	nt, nh := hdr[4], hdr[5]
	if nt > maxSliceLen || nh > maxSliceLen {
		return nil, fmt.Errorf("checkpoint: implausible vector lengths %d, %d", nt, nh)
	}
	c := &VQECheckpoint{Round: int(hdr[1]), Evals: int(hdr[2]), Seed: int64(hdr[3])}
	if err := binary.Read(f, binary.LittleEndian, &c.Energy); err != nil {
		return nil, fmt.Errorf("checkpoint: vqe energy: %w", err)
	}
	c.Theta = make([]float64, nt)
	if err := binary.Read(f, binary.LittleEndian, c.Theta); err != nil {
		return nil, fmt.Errorf("checkpoint: vqe theta: %w", err)
	}
	c.History = make([]float64, nh)
	if err := binary.Read(f, binary.LittleEndian, c.History); err != nil {
		return nil, fmt.Errorf("checkpoint: vqe history: %w", err)
	}
	for _, v := range append(append([]float64{c.Energy}, c.Theta...), c.History...) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("checkpoint: non-finite value in vqe record")
		}
	}
	return c, nil
}

func readMagic(r io.Reader, want string) error {
	got := make([]byte, len(want))
	if _, err := io.ReadFull(r, got); err != nil {
		return fmt.Errorf("checkpoint: magic: %w", err)
	}
	if string(got) != want {
		return fmt.Errorf("checkpoint: bad magic %q, want %q", got, want)
	}
	return nil
}
