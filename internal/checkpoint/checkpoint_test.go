package checkpoint

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gokoala/internal/backend"
	"gokoala/internal/health"
	"gokoala/internal/peps"
	"gokoala/internal/tensor"
)

var eng = backend.NewDense()

func sampleITE(t *testing.T) *ITECheckpoint {
	t.Helper()
	rng := rand.New(rand.NewSource(61))
	st := peps.Random(eng, rng, 2, 3, 2, 2)
	st.LogScale = -3.5
	return &ITECheckpoint{
		Step:       7,
		Seed:       42,
		Energies:   []float64{-0.5, -0.8, -0.9},
		MeasuredAt: []int{2, 4, 6},
		State:      st,
	}
}

func TestITERoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	c := sampleITE(t)
	if err := SaveITE(path, c); err != nil {
		t.Fatal(err)
	}
	got, err := LoadITE(path, eng)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != c.Step || got.Seed != c.Seed {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Energies) != 3 || got.Energies[1] != -0.8 || got.MeasuredAt[2] != 6 {
		t.Fatalf("trace mismatch: %v %v", got.Energies, got.MeasuredAt)
	}
	if got.State.LogScale != c.State.LogScale {
		t.Fatalf("LogScale %g, want %g", got.State.LogScale, c.State.LogScale)
	}
	for r := 0; r < 2; r++ {
		for cc := 0; cc < 3; cc++ {
			if !tensor.AllClose(got.State.Site(r, cc), c.State.Site(r, cc), 0, 0) {
				t.Fatalf("site (%d,%d) not bit-identical", r, cc)
			}
		}
	}
}

func TestWriteAtomicSurvivesInjectedFailure(t *testing.T) {
	defer health.SetCheckpointFault(nil)
	health.ResetCounters()
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	c := sampleITE(t)
	if err := SaveITE(path, c); err != nil {
		t.Fatal(err)
	}

	// Arm one injected write fault: the save must fail, be counted, and
	// leave the previous checkpoint byte-for-byte loadable.
	health.NewInjector(62).FailCheckpoints(1)
	c2 := sampleITE(t)
	c2.Step = 9
	if err := SaveITE(path, c2); err == nil {
		t.Fatal("injected fault did not fail the save")
	}
	if got := health.CheckpointFailures(); got != 1 {
		t.Fatalf("CheckpointFailures = %d, want exactly 1", got)
	}
	old, err := LoadITE(path, eng)
	if err != nil {
		t.Fatalf("previous checkpoint unreadable after failed save: %v", err)
	}
	if old.Step != 7 {
		t.Fatalf("previous checkpoint step %d, want 7", old.Step)
	}

	// The fault is spent: the next save succeeds and becomes current.
	if err := SaveITE(path, c2); err != nil {
		t.Fatal(err)
	}
	cur, err := LoadITE(path, eng)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Step != 9 {
		t.Fatalf("new checkpoint step %d, want 9", cur.Step)
	}
	// No temp-file debris.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}

func TestWriteAtomicKeepsOldFileOnWriterError(t *testing.T) {
	health.ResetCounters()
	dir := t.TempDir()
	path := filepath.Join(dir, "f.ckpt")
	if err := WriteAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "good")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	err := WriteAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "partial garbage")
		return fmt.Errorf("simulated mid-write crash")
	})
	if err == nil {
		t.Fatal("writer error not propagated")
	}
	if got := health.CheckpointFailures(); got != 1 {
		t.Fatalf("CheckpointFailures = %d, want 1", got)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "good" {
		t.Fatalf("old content damaged: %q, %v", data, err)
	}
}

func TestLoadITERejectsCorruptInput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := SaveITE(path, sampleITE(t)); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("NOPE"), good[4:]...),
		"truncated": good[:len(good)/2],
		"short":     good[:len(good)-5],
	}
	for name, data := range cases {
		bad := filepath.Join(t.TempDir(), "bad.ckpt")
		if err := os.WriteFile(bad, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadITE(bad, eng); err == nil {
			t.Errorf("%s: LoadITE accepted corrupt input", name)
		}
	}
	if _, err := LoadITE(filepath.Join(t.TempDir(), "absent.ckpt"), eng); !IsNotExist(err) {
		t.Errorf("missing file should be IsNotExist, got %v", err)
	}
}

func TestVQERoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vqe.ckpt")
	c := &VQECheckpoint{
		Round:   3,
		Evals:   412,
		Energy:  -1.0625,
		Theta:   []float64{0.1, -0.2, 0.3},
		History: []float64{-0.5, -1.0, -1.0625},
		Seed:    17,
	}
	if err := SaveVQE(path, c); err != nil {
		t.Fatal(err)
	}
	got, err := LoadVQE(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != 3 || got.Evals != 412 || got.Seed != 17 || got.Energy != -1.0625 {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range c.Theta {
		if got.Theta[i] != c.Theta[i] {
			t.Fatalf("theta[%d] = %g, want %g", i, got.Theta[i], c.Theta[i])
		}
	}
	for i := range c.History {
		if got.History[i] != c.History[i] {
			t.Fatalf("history[%d] = %g, want %g", i, got.History[i], c.History[i])
		}
	}
	// Cross-format confusion must be rejected.
	if _, err := LoadITE(path, eng); err == nil {
		t.Fatal("LoadITE accepted a VQE checkpoint")
	}
}
