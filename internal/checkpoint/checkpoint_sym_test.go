package checkpoint

import (
	"os"
	"path/filepath"
	"testing"

	"gokoala/internal/backend"
	"gokoala/internal/peps"
	"gokoala/internal/quantum"
)

func sampleSymITE(t *testing.T) *ITECheckpoint {
	t.Helper()
	se, ok := backend.SymOf(eng)
	if !ok {
		t.Fatal("dense engine must expose block-sparse kernels")
	}
	st := peps.SymComputationalBasis(se, 2, 2, 2, nil)
	obs := quantum.TransverseFieldIsingDual(2, 2, -1, -3.5)
	gates, ok := peps.SymTrotterGates(obs.TrotterGates(complex(-0.05, 0)), 2)
	if !ok {
		t.Fatal("dual TFI gates must conserve parity")
	}
	st.ApplyCircuit(gates, peps.SymUpdateOptions{Rank: 2, Normalize: true})
	return &ITECheckpoint{
		Step:       5,
		Seed:       42,
		Energies:   []float64{-0.5, -0.8},
		MeasuredAt: []int{2, 4},
		SymState:   st,
	}
}

// TestITEDenseFormatUnchanged pins the on-disk compatibility promise: a
// dense checkpoint still carries record version 1, so files written
// before the block-sparse backend existed load unchanged and vice versa.
func TestITEDenseFormatUnchanged(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dense.ckpt")
	if err := SaveITE(path, sampleITE(t)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Layout: 4 magic bytes, then the version as little-endian uint64.
	if string(raw[:4]) != iteMagic || raw[4] != version {
		t.Fatalf("dense checkpoint starts %q version %d, want %q version %d", raw[:4], raw[4], iteMagic, version)
	}
}

func TestITESymRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sym.ckpt")
	c := sampleSymITE(t)
	if err := SaveITE(path, c); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if raw[4] != iteVersionSym {
		t.Fatalf("sym checkpoint version %d, want %d", raw[4], iteVersionSym)
	}

	got, err := LoadITE(path, eng)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != c.Step || got.Seed != c.Seed {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.State != nil || got.SymState == nil {
		t.Fatal("sym checkpoint must restore exactly the block-sparse state")
	}
	if got.SymState.Mod() != 2 || got.SymState.LogScale != c.SymState.LogScale {
		t.Fatalf("sym state header mismatch: mod %d logscale %g", got.SymState.Mod(), got.SymState.LogScale)
	}
	for r := 0; r < 2; r++ {
		for cc := 0; cc < 2; cc++ {
			gd := got.SymState.Site(r, cc).ToDense().Data()
			wd := c.SymState.Site(r, cc).ToDense().Data()
			if len(gd) != len(wd) {
				t.Fatalf("site (%d,%d) size changed", r, cc)
			}
			for i := range gd {
				if gd[i] != wd[i] {
					t.Fatalf("site (%d,%d) element %d not bit-identical", r, cc, i)
				}
			}
		}
	}

	// Canonical block order makes a save-load-save cycle byte-identical.
	path2 := filepath.Join(t.TempDir(), "again.ckpt")
	if err := SaveITE(path2, got); err != nil {
		t.Fatal(err)
	}
	raw2, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(raw2) {
		t.Fatal("sym checkpoint save-load-save is not byte-identical")
	}
}

func TestSaveITERejectsAmbiguousState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.ckpt")
	both := sampleSymITE(t)
	both.State = sampleITE(t).State
	if err := SaveITE(path, both); err == nil {
		t.Fatal("checkpoint with both states must be rejected")
	}
	neither := &ITECheckpoint{Step: 1, Energies: []float64{-1}, MeasuredAt: []int{1}}
	if err := SaveITE(path, neither); err == nil {
		t.Fatal("checkpoint with no state must be rejected")
	}
}
