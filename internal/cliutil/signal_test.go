package cliutil

import (
	"os"
	"syscall"
	"testing"
	"time"
)

// drive runs handleSignalSequence against a fake signal channel and
// returns the exit code it requested (or -1 if it never exited).
func drive(t *testing.T, graceful bool, sigs []os.Signal, flush func()) int {
	t.Helper()
	ch := make(chan os.Signal, len(sigs))
	exited := make(chan int, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		handleSignalSequence(ch, graceful, flush, func(code int) {
			exited <- code
			// The real handler never returns from os.Exit; park so the
			// goroutine does not run past the exit point.
			select {}
		})
	}()
	for _, s := range sigs {
		ch <- s
	}
	select {
	case code := <-exited:
		return code
	case <-time.After(2 * time.Second):
		return -1
	}
}

func TestGracefulFirstSignalOnlyRequestsStop(t *testing.T) {
	stopRequested.Store(false)
	defer stopRequested.Store(false)
	ch := make(chan os.Signal, 1)
	go handleSignalSequence(ch, true, nil, func(int) { select {} })
	ch <- syscall.SIGINT
	deadline := time.Now().Add(2 * time.Second)
	for !StopRequested() {
		if time.Now().After(deadline) {
			t.Fatal("first signal did not set StopRequested")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestGracefulSecondSignalFlushesAndExits(t *testing.T) {
	stopRequested.Store(false)
	defer stopRequested.Store(false)
	flushed := false
	code := drive(t, true, []os.Signal{syscall.SIGINT, syscall.SIGINT}, func() { flushed = true })
	if code != 130 {
		t.Fatalf("exit code %d, want 130 (128+SIGINT)", code)
	}
	if !flushed {
		t.Fatal("flush did not run before forced exit")
	}
	if !StopRequested() {
		t.Fatal("StopRequested must be set after the first signal")
	}
}

func TestNonGracefulFirstSignalExits(t *testing.T) {
	stopRequested.Store(false)
	defer stopRequested.Store(false)
	flushed := false
	code := drive(t, false, []os.Signal{syscall.SIGTERM}, func() { flushed = true })
	if code != 128+int(syscall.SIGTERM) {
		t.Fatalf("exit code %d, want %d", code, 128+int(syscall.SIGTERM))
	}
	if !flushed {
		t.Fatal("flush did not run")
	}
}
