// Graceful shutdown: before this file existed, ^C on a multi-hour run
// silently discarded the entire -trace/-metrics file (sinks buffer and
// only Flush on a clean Finish) and any un-checkpointed progress. The
// handler installed here turns the first SIGINT/SIGTERM into a
// cooperative stop — commands with a step loop (koala-ite, koala-vqe,
// koala-rqc) poll StopRequested, finish the current step, write a final
// checkpoint, and unwind normally so every sink flushes — and the
// second signal (or the first, for commands without a stop loop) into
// an immediate flush-and-exit.
package cliutil

import (
	"fmt"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
)

var stopRequested atomic.Bool

// StopRequested reports whether a graceful-stop signal arrived. Step
// loops receive it through their Options.Stop hook; commands pass
// cliutil.StopRequested there.
func StopRequested() bool { return stopRequested.Load() }

// requestStop is the test seam for the first-signal path.
func requestStop() { stopRequested.Store(true) }

// HandleSignals installs the SIGINT/SIGTERM handler. graceful says the
// command polls StopRequested (via an Options.Stop hook): then the
// first signal only requests a cooperative stop and the second forces
// exit. Commands without a stop loop pass graceful=false and the first
// signal forces exit. flush runs before a forced exit — it must flush
// obs sinks and close the telemetry listener; keep it free of
// long-running work. The forced exit code is the conventional 128+sig.
func HandleSignals(graceful bool, flush func()) {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go handleSignalSequence(ch, graceful, flush, func(code int) { os.Exit(code) })
}

// handleSignalSequence is the testable handler body.
func handleSignalSequence(ch <-chan os.Signal, graceful bool, flush func(), exit func(int)) {
	sig := <-ch
	if graceful {
		requestStop()
		fmt.Fprintf(os.Stderr,
			"\n%v: stopping after the current step (checkpoint + flush); signal again to abort\n", sig)
		sig = <-ch
	}
	fmt.Fprintf(os.Stderr, "\n%v: flushing observability state and exiting\n", sig)
	if flush != nil {
		flush()
	}
	code := 130
	if s, ok := sig.(syscall.Signal); ok {
		code = 128 + int(s)
	}
	exit(code)
}
