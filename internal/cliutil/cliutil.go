// Package cliutil holds the flag helpers shared by the koala command
// line tools, so every binary exposes the same seeding and
// observability surface: -seed, -trace (Chrome trace_event file for
// chrome://tracing or Perfetto), and -metrics (JSON-lines span/metrics
// log). See DESIGN.md "Observability" for the file formats.
package cliutil

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gokoala/internal/dist"
	"gokoala/internal/health"
	"gokoala/internal/obs"
	"gokoala/internal/pool"
	"gokoala/internal/telemetry"
	"gokoala/internal/tensor"
)

// KernelFlag registers the standard -kernel flag selecting the compute
// kernel implementation. Call ApplyKernel with its value after
// flag.Parse. The KOALA_KERNEL environment variable sets the same
// override for library users; the flag wins when both are given.
func KernelFlag() *string {
	return flag.String("kernel", "",
		"compute kernels: auto (CPU detect) | asm (require AVX2+FMA) | go (portable reference)")
}

// ApplyKernel installs the -kernel flag value; "" keeps the KOALA_KERNEL
// environment override (or auto-detection) already in effect.
func ApplyKernel(s string) error {
	if s == "" {
		return nil
	}
	return tensor.SetKernel(s)
}

// F32SketchFlag registers the standard -f32-sketch flag: compute the
// randomized-SVD sketch and power-iteration contractions in complex64
// (see einsumsvd.ImplicitRand.Sketch32). The probe and final projection
// stay complex128 and the probe-driven exact fallback still applies.
func F32SketchFlag() *bool {
	return flag.Bool("f32-sketch", false,
		"complex64 sketch stage for randomized SVD (probe and projection stay complex128)")
}

// SeedFlag registers the standard -seed flag with the given default.
func SeedFlag(def int64) *int64 {
	return flag.Int64("seed", def, "random seed")
}

// SymFlag registers the standard -sym flag selecting the block-sparse
// symmetric tensor backend. Parse its value with ParseSym after
// flag.Parse.
func SymFlag() *string {
	return flag.String("sym", "none",
		"charge symmetry for the block-sparse backend: u1 | z2 | none")
}

// ParseSym maps a -sym flag value to (enabled, modulus): "u1" enables
// the particle-number symmetry (modulus 0), "z2" the parity symmetry
// (modulus 2), "none" or "" disables the symmetric backend.
func ParseSym(s string) (enabled bool, mod int, err error) {
	switch s {
	case "", "none":
		return false, 0, nil
	case "u1":
		return true, 0, nil
	case "z2":
		return true, 2, nil
	}
	return false, 0, fmt.Errorf("cliutil: unknown symmetry %q (want u1|z2|none)", s)
}

// WorkersFlag registers the standard -workers flag. Call ApplyWorkers
// with its value after flag.Parse.
func WorkersFlag() *int {
	return flag.Int("workers", 0, "worker pool size (0 = KOALA_WORKERS env or GOMAXPROCS)")
}

// ApplyWorkers resizes the worker pool when the -workers flag was given
// a positive value; 0 keeps the KOALA_WORKERS / GOMAXPROCS default. A
// negative value is rejected with a one-line warning (mirroring the
// KOALA_WORKERS validation in pool) rather than silently ignored.
func ApplyWorkers(n int) {
	if n > 0 {
		pool.SetWorkers(n)
		return
	}
	if n < 0 {
		fmt.Fprintf(os.Stderr, "koala: ignoring -workers=%d: must be positive; using default (%d workers)\n",
			n, pool.Size())
	}
}

// ListenFlag registers the standard -listen flag. Call StartTelemetry
// with its value after flag.Parse (and after ObsConfig.Setup, so sinks
// installed by -trace/-metrics are kept).
func ListenFlag() *string {
	return flag.String("listen", "",
		"serve live telemetry on this address (/metrics /healthz /events /debug/pprof), e.g. :9090")
}

// StartTelemetry starts the live telemetry plane when addr is non-empty
// and returns the server (nil when addr is empty). component and labels
// become the run info exposed as koala_run_info and the SSE hello
// event. Because the /metrics exposition renders the obs counter
// registry, obs collection is enabled (with zero sinks) when no
// -trace/-metrics flag already did. The bound address is printed so
// wrappers can discover a :0 port.
func StartTelemetry(addr, component string, labels map[string]string) (*telemetry.Server, error) {
	if addr == "" {
		return nil, nil
	}
	if !obs.Enabled() {
		obs.Enable()
	}
	srv, err := telemetry.Serve(addr)
	if err != nil {
		return nil, err
	}
	// Every component reports which compute kernels served the run (and
	// the CPU features behind the choice) without each main wiring it.
	merged := map[string]string{"kernel": tensor.KernelVariant()}
	if feats := tensor.CPUFeatures(); feats != "" {
		merged["cpu_features"] = feats
	}
	for k, v := range labels {
		merged[k] = v
	}
	telemetry.SetRunInfo(component, merged)
	fmt.Printf("telemetry: listening on http://%s (/metrics /healthz /events /debug/pprof)\n", srv.Addr())
	return srv, nil
}

// HealthFlag registers the standard -health flag. Call ApplyHealth with
// its value after flag.Parse.
func HealthFlag() *string {
	return flag.String("health", "off", "numerical health policy: off | count | error")
}

// ApplyHealth parses the -health flag value and installs the policy.
func ApplyHealth(s string) error {
	p, err := health.ParsePolicy(s)
	if err != nil {
		return err
	}
	health.SetPolicy(p)
	return nil
}

// WriteHealthCounters prints the always-on numerical-health counters to w
// when any of them fired; silent on a clean run.
func WriteHealthCounters(w io.Writer) {
	counters := []struct {
		name string
		n    int64
	}{
		{"nan_detected", health.NaNDetected()},
		{"svd_fallbacks", health.SVDFallbacks()},
		{"gram_fallbacks", health.GramFallbacks()},
		{"nonconverged", health.Nonconverged()},
		{"checkpoint_failures", health.CheckpointFailures()},
	}
	any := false
	for _, c := range counters {
		if c.n != 0 {
			any = true
		}
	}
	if !any {
		return
	}
	fmt.Fprintln(w, "\n-- numerical health --")
	for _, c := range counters {
		if c.n != 0 {
			fmt.Fprintf(w, "health.%s: %d\n", c.name, c.n)
		}
	}
}

// CheckpointConfig carries the shared crash-safe checkpoint flags.
// Construct with CheckpointFlags before flag.Parse.
type CheckpointConfig struct {
	// Path is the -checkpoint flag: the checkpoint file to write (and to
	// resume from with -resume).
	Path *string
	// Every is the -checkpoint-every flag: the interval (in the unit
	// passed to CheckpointFlags) between checkpoint writes.
	Every *int
	// Resume is the -resume flag: continue from Path when it exists, and
	// start fresh when it does not.
	Resume *bool
	// DieAfter is the -die-after flag: exit with code 3 after that many
	// completed units — the crash-injection hook the resume smoke test
	// (make bench-resume) uses.
	DieAfter *int
}

// CheckpointFlags registers the shared -checkpoint, -checkpoint-every,
// -resume and -die-after flags; unit names the checkpoint granularity
// ("steps" for ITE, "rounds" for VQE).
func CheckpointFlags(unit string) *CheckpointConfig {
	return &CheckpointConfig{
		Path:     flag.String("checkpoint", "", "write crash-safe checkpoints to this file"),
		Every:    flag.Int("checkpoint-every", 1, "checkpoint every k "+unit),
		Resume:   flag.Bool("resume", false, "resume from -checkpoint when it exists"),
		DieAfter: flag.Int("die-after", 0, "exit(3) after this many "+unit+" (crash-injection testing)"),
	}
}

// Validate checks flag consistency after flag.Parse.
func (c *CheckpointConfig) Validate() error {
	if (*c.Resume || *c.DieAfter > 0) && *c.Path == "" {
		return fmt.Errorf("-resume and -die-after require -checkpoint")
	}
	return nil
}

// ObsConfig carries the shared observability flags. Zero value is
// inert; construct with ObsFlags before flag.Parse.
type ObsConfig struct {
	trace   *string
	metrics *string
	files   []*os.File
	on      bool
}

// ObsFlags registers the shared -trace and -metrics flags.
func ObsFlags() *ObsConfig {
	return &ObsConfig{
		trace:   flag.String("trace", "", "write a Chrome trace_event JSON file"),
		metrics: flag.String("metrics", "", "write a JSON-lines span/metrics log"),
	}
}

// Setup enables span collection when either flag was given. Call once
// after flag.Parse; returns whether collection is on.
func (c *ObsConfig) Setup() (bool, error) {
	if *c.trace != "" && *c.trace == *c.metrics {
		return false, fmt.Errorf("-trace and -metrics must name different files")
	}
	var sinks []obs.Sink
	if *c.trace != "" {
		f, err := os.Create(*c.trace)
		if err != nil {
			return false, err
		}
		c.files = append(c.files, f)
		sinks = append(sinks, obs.NewChromeTraceSink(f))
	}
	if *c.metrics != "" {
		f, err := os.Create(*c.metrics)
		if err != nil {
			return false, err
		}
		c.files = append(c.files, f)
		sinks = append(sinks, obs.NewJSONLSink(f))
	}
	if len(sinks) > 0 {
		obs.Enable(sinks...)
		c.on = true
	}
	return c.on, nil
}

// Finish writes the per-phase summary and counters to w (when non-nil),
// flushes the sinks, and closes the output files. No-op when collection
// is off.
func (c *ObsConfig) Finish(w io.Writer) error {
	if !c.on {
		return nil
	}
	// Per-rank machine-model timelines of every grid the run drove land
	// in the sinks next to the span records.
	dist.FlushTimelines()
	if w != nil {
		fmt.Fprintln(w, "\n-- phase breakdown --")
		obs.WriteSummary(w)
		obs.WriteMetrics(w)
	}
	if err := obs.Disable(); err != nil {
		return err
	}
	for _, f := range c.files {
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
