package cliutil

import (
	"flag"
	"fmt"
	"os"

	"gokoala/internal/dist"
	distnet "gokoala/internal/dist/net"
)

// MaybeRankMode hands the process over to the hidden koala-rank mode
// when the KOALA_RANK_MODE environment variable is set (the socket
// transport re-execs the running binary for ranks 1..P-1) and never
// returns in that case. Every koala main calls this first — before flag
// parsing — so any of the binaries can serve as the rank executable.
func MaybeRankMode() {
	distnet.MaybeRankMain()
}

// TransportFlag registers the standard -transport flag selecting how
// dist collectives execute: metering-only in-process goroutines (the
// deterministic default) or real rank processes over sockets.
func TransportFlag() *string {
	return flag.String("transport", "inproc",
		"dist collective transport: inproc (goroutines, modeled only) | unix | tcp (real rank processes)")
}

// RanksFlag registers the standard -ranks flag: the SPMD grid size for
// engines that take one (and the process count for -transport unix/tcp).
// 0 keeps each suite's own default.
func RanksFlag() *int {
	return flag.Int("ranks", 0, "SPMD ranks for dist engines (0 = suite default); with -transport unix|tcp, also the process count")
}

// OpenTransport starts the socket transport named by the -transport flag
// value for the given rank count. "inproc" (or "") returns nil — the
// grid's in-process default. The transport's failure hook prints the
// first error and exits, so a dead rank cancels the whole job; the
// caller owns Close.
func OpenTransport(name string, ranks int) (dist.Transport, error) {
	switch name {
	case "", "inproc":
		return nil, nil
	case "unix", "tcp":
		t, err := distnet.Start(distnet.Options{
			Ranks:   ranks,
			Network: name,
			OnFailure: func(err error) {
				fmt.Fprintf(os.Stderr, "koala: distributed job failed: %v\n", err)
				os.Exit(1)
			},
		})
		if err != nil {
			return nil, err
		}
		return t, nil
	}
	return nil, fmt.Errorf("cliutil: unknown transport %q (want inproc|unix|tcp)", name)
}
