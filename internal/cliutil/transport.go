package cliutil

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"gokoala/internal/dist"
	distnet "gokoala/internal/dist/net"
	"gokoala/internal/obs"
)

// MaybeRankMode hands the process over to the hidden koala-rank mode
// when the KOALA_RANK_MODE environment variable is set (the socket
// transport re-execs the running binary for ranks 1..P-1) and never
// returns in that case. Every koala main calls this first — before flag
// parsing — so any of the binaries can serve as the rank executable.
func MaybeRankMode() {
	distnet.MaybeRankMain()
}

// TransportFlag registers the standard -transport flag selecting how
// dist collectives execute: metering-only in-process goroutines (the
// deterministic default) or real rank processes over sockets.
func TransportFlag() *string {
	return flag.String("transport", "inproc",
		"dist collective transport: inproc (goroutines, modeled only) | unix | tcp (real rank processes)")
}

// RanksFlag registers the standard -ranks flag: the SPMD grid size for
// engines that take one (and the process count for -transport unix/tcp).
// 0 keeps each suite's own default.
func RanksFlag() *int {
	return flag.Int("ranks", 0, "SPMD ranks for dist engines (0 = suite default); with -transport unix|tcp, also the process count")
}

// RankTraceFlag registers the standard -rank-trace flag: a directory
// receiving one JSONL trace log per rank process (rank0.jsonl for the
// driver, written by EnableRankTrace; rank<N>.jsonl per child) plus a
// manifest.json with the clock-offset estimates. Merge the directory
// with `koala-obs merge`.
func RankTraceFlag() *string {
	return flag.String("rank-trace", "",
		"with -transport unix|tcp: per-rank trace directory (merge with 'koala-obs merge')")
}

// EnableRankTrace installs the driver's side of a -rank-trace capture: a
// JSONL sink tagged rank 0 writing dir/rank0.jsonl, added to whatever
// sinks -trace/-metrics already enabled. Call before OpenTransport so
// the transport's spans land in the log, and close the returned closer
// last (after any ObsConfig.Finish) — it disables obs collection if
// still enabled, then closes the file.
func EnableRankTrace(dir string) (io.Closer, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	f, err := os.Create(filepath.Join(dir, "rank0.jsonl"))
	if err != nil {
		return nil, err
	}
	sink := obs.NewJSONLSink(f)
	sink.SetRank(0)
	if obs.Enabled() {
		obs.AddSink(sink)
	} else {
		obs.Enable(sink)
	}
	return rankTraceCloser{f}, nil
}

type rankTraceCloser struct{ f *os.File }

func (c rankTraceCloser) Close() error {
	// Flush the sink's final metrics snapshot unless an ObsConfig.Finish
	// (or explicit Disable) already did.
	if obs.Enabled() {
		if err := obs.Disable(); err != nil {
			c.f.Close()
			return err
		}
	}
	if err := c.f.Sync(); err != nil {
		c.f.Close()
		return err
	}
	return c.f.Close()
}

// OpenTransport starts the socket transport named by the -transport flag
// value for the given rank count. "inproc" (or "") returns nil — the
// grid's in-process default. traceDir is the -rank-trace directory ("" =
// no per-rank capture); pass it through EnableRankTrace first so the
// driver's own log exists beside the children's. The transport's failure
// hook prints the first error and exits, so a dead rank cancels the
// whole job; the caller owns Close.
func OpenTransport(name string, ranks int, traceDir string) (dist.Transport, error) {
	switch name {
	case "", "inproc":
		if traceDir != "" {
			return nil, fmt.Errorf("cliutil: -rank-trace requires -transport unix|tcp")
		}
		return nil, nil
	case "unix", "tcp":
		if traceDir != "" {
			abs, err := filepath.Abs(traceDir)
			if err != nil {
				return nil, err
			}
			traceDir = abs
		}
		t, err := distnet.Start(distnet.Options{
			Ranks:    ranks,
			Network:  name,
			TraceDir: traceDir,
			OnFailure: func(err error) {
				fmt.Fprintf(os.Stderr, "koala: distributed job failed: %v\n", err)
				os.Exit(1)
			},
		})
		if err != nil {
			return nil, err
		}
		return t, nil
	}
	return nil, fmt.Errorf("cliutil: unknown transport %q (want inproc|unix|tcp)", name)
}
