package ite

import (
	"math/rand"

	"gokoala/internal/checkpoint"
	"gokoala/internal/einsumsvd"
	"gokoala/internal/health"
	"gokoala/internal/peps"
	"gokoala/internal/quantum"
	"gokoala/internal/telemetry"
)

// EvolveSym runs imaginary time evolution on a block-sparse symmetric
// state. The whole gate list is charge-checked up front: if every
// Trotter gate conserves the state's charge, the evolution stays block-
// sparse end to end (updates contract and factor sector by sector);
// otherwise the state is embedded to dense once and the run continues
// through the ordinary Evolve, reported via Result.FellBack — per-gate
// projection would silently discard amplitude, so fallback is all or
// nothing. Energies are measured by embedding the current state to
// dense and reusing the existing expectation machinery, with the same
// (Seed, step) reseeding discipline, so measured values are directly
// comparable with a dense run of the same schedule. The evolution is
// strictly sequential over gates and therefore bit-identical at any
// worker count.
func EvolveSym(state *peps.SymPEPS, obs *quantum.Observable, opts Options) Result {
	if opts.MeasureEvery <= 0 {
		opts.MeasureEvery = 1
	}
	if opts.WeightedUpdate {
		panic("ite: the weighted simple update does not support the block-sparse backend")
	}
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = 1
	}
	var res Result
	start := 1
	if opts.From != nil {
		cp := opts.From
		if cp.SymState == nil {
			// The interrupted run had fallen back to dense (or predates the
			// symmetric format): resume it on the dense path.
			res := Evolve(nil, obs, opts)
			res.FellBack = true
			return res
		}
		state = cp.SymState
		opts.Seed = cp.Seed
		start = cp.Step + 1
		res.Energies = append(res.Energies, cp.Energies...)
		res.MeasuredAt = append(res.MeasuredAt, cp.MeasuredAt...)
	}
	var gates []quantum.TrotterGate
	if opts.SecondOrder {
		gates = obs.TrotterGatesSecondOrder(complex(-opts.Tau, 0))
	} else {
		gates = obs.TrotterGates(complex(-opts.Tau, 0))
	}
	symGates, ok := peps.SymTrotterGates(gates, state.Mod())
	if !ok {
		// Non-conserving circuit: embed once and run the dense evolution
		// with unchanged options (including checkpointing, which then
		// writes ordinary dense records).
		health.CountSymFallback()
		r := Evolve(state.ToDense(), obs, opts)
		r.FellBack = true
		return r
	}
	strategy := opts.Strategy
	if strategy == nil {
		strategy = einsumsvd.ImplicitRand{Rng: rand.New(rand.NewSource(opts.Seed + 1))}
	}
	upd := peps.SymUpdateOptions{Rank: opts.EvolutionRank, Normalize: true}
	for step := start; step <= opts.Steps; step++ {
		state.ApplyCircuit(symGates, upd)
		stopping := opts.Stop != nil && opts.Stop()
		measuredNow := false
		if step%opts.MeasureEvery == 0 || step == opts.Steps || stopping {
			st := einsumsvd.Reseed(strategy, stepSeed(opts.Seed, step))
			e := state.ToDense().EnergyPerSite(obs, peps.ExpectationOptions{
				M:        opts.ContractionRank,
				Strategy: st,
				UseCache: opts.UseCache,
			})
			health.CheckFloat("ite.energy", e)
			res.Energies = append(res.Energies, e)
			res.MeasuredAt = append(res.MeasuredAt, step)
			measuredNow = true
		}
		if telemetry.Active() {
			stored := state.StateBytes()
			denseEquiv := state.DenseEquivBytes()
			fields := map[string]float64{
				"step":              float64(step),
				"steps_total":       float64(opts.Steps),
				"max_bond":          float64(state.MaxBond()),
				"state_bytes":       float64(stored),
				"dense_equiv_bytes": float64(denseEquiv),
				"blocks":            float64(state.NumBlocks()),
			}
			if measuredNow {
				e := res.Energies[len(res.Energies)-1]
				fields["energy_per_site"] = e
				telemetry.Observe("ite.energy_per_site", e)
			}
			telemetry.Observe("ite.step", float64(step))
			telemetry.Observe("peps.sym.state_bytes", float64(stored))
			telemetry.Observe("peps.sym.dense_equiv_bytes", float64(denseEquiv))
			telemetry.Publish("ite.step", step, fields)
		}
		if opts.CheckpointPath != "" && (step%opts.CheckpointEvery == 0 || step == opts.Steps || stopping) {
			_ = checkpoint.SaveITE(opts.CheckpointPath, &checkpoint.ITECheckpoint{
				Step:       step,
				Seed:       opts.Seed,
				Energies:   res.Energies,
				MeasuredAt: res.MeasuredAt,
				SymState:   state,
			})
		}
		if opts.AfterStep != nil {
			opts.AfterStep(step)
		}
		if stopping {
			telemetry.Publish("ite.stop", step, nil)
			break
		}
	}
	res.Final = state.ToDense()
	res.FinalSym = state
	return res
}
