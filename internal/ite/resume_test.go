package ite

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"gokoala/internal/backend"
	"gokoala/internal/checkpoint"
	"gokoala/internal/einsumsvd"
	"gokoala/internal/health"
	"gokoala/internal/peps"
	"gokoala/internal/pool"
	"gokoala/internal/quantum"
	"gokoala/internal/tensor"
)

// TestResumeBitIdentical is the headline checkpoint property: killing a
// run after step k and resuming from the checkpoint reproduces the
// uninterrupted run's energy trace and final state bit for bit, at any
// worker count. Per-measurement reseeding (stepSeed) is what makes this
// hold for the randomized strategies.
func TestResumeBitIdentical(t *testing.T) {
	defer pool.SetWorkers(0)
	rows, cols := 2, 3
	obs := quantum.TransverseFieldIsing(rows, cols, -1, -2.5)
	newState := func() *peps.PEPS {
		return PlusState(peps.ComputationalZeros(backend.NewDense(), rows, cols))
	}
	base := Options{
		Tau:             0.05,
		Steps:           6,
		EvolutionRank:   2,
		ContractionRank: 4,
		Strategy:        einsumsvd.ImplicitRand{Rng: rand.New(rand.NewSource(7))},
		Seed:            99,
		UseCache:        true,
	}
	for _, workers := range []int{1, 4} {
		pool.SetWorkers(workers)
		full := Evolve(newState(), obs, base)

		// "Crash" after step 3: run only the first half with checkpointing.
		path := filepath.Join(t.TempDir(), "run.ckpt")
		partial := base
		partial.Steps = 3
		partial.CheckpointPath = path
		Evolve(newState(), obs, partial)

		cp, err := checkpoint.LoadITE(path, backend.NewDense())
		if err != nil {
			t.Fatal(err)
		}
		if cp.Step != 3 {
			t.Fatalf("checkpoint at step %d, want 3", cp.Step)
		}
		resumed := base
		resumed.From = cp
		resumed.Seed = 0 // must be irrelevant: the checkpoint's seed wins
		res := Evolve(nil, obs, resumed)

		if len(res.Energies) != len(full.Energies) {
			t.Fatalf("workers=%d: trace lengths differ: %d vs %d", workers, len(res.Energies), len(full.Energies))
		}
		for i := range full.Energies {
			if res.Energies[i] != full.Energies[i] {
				t.Fatalf("workers=%d: energy[%d] differs: %.17g vs %.17g",
					workers, i, res.Energies[i], full.Energies[i])
			}
			if res.MeasuredAt[i] != full.MeasuredAt[i] {
				t.Fatalf("workers=%d: MeasuredAt[%d] differs", workers, i)
			}
		}
		if res.Final.LogScale != full.Final.LogScale {
			t.Fatalf("workers=%d: LogScale differs: %g vs %g", workers, res.Final.LogScale, full.Final.LogScale)
		}
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if !tensor.AllClose(res.Final.Site(r, c), full.Final.Site(r, c), 0, 0) {
					t.Fatalf("workers=%d: site (%d,%d) not bit-identical", workers, r, c)
				}
			}
		}
	}
}

// TestCheckpointFailureDoesNotAbortEvolution: a failed checkpoint write is
// counted and skipped; the run completes and a later checkpoint is still
// written and resumable.
func TestCheckpointFailureDoesNotAbortEvolution(t *testing.T) {
	defer health.SetCheckpointFault(nil)
	health.ResetCounters()
	path := filepath.Join(t.TempDir(), "run.ckpt")
	obs := quantum.TransverseFieldIsing(2, 2, -1, -2.5)
	state := PlusState(peps.ComputationalZeros(backend.NewDense(), 2, 2))

	// First checkpoint write (after step 1) fails; the rest succeed.
	health.NewInjector(5).FailCheckpoints(1)
	res := Evolve(state, obs, Options{
		Tau:             0.05,
		Steps:           3,
		EvolutionRank:   2,
		ContractionRank: 4,
		Strategy:        einsumsvd.Explicit{},
		CheckpointPath:  path,
	})
	if len(res.Energies) != 3 {
		t.Fatalf("run did not complete: %d measurements", len(res.Energies))
	}
	if got := health.CheckpointFailures(); got != 1 {
		t.Fatalf("CheckpointFailures = %d, want exactly 1", got)
	}
	cp, err := checkpoint.LoadITE(path, backend.NewDense())
	if err != nil {
		t.Fatalf("final checkpoint unreadable: %v", err)
	}
	if cp.Step != 3 {
		t.Fatalf("final checkpoint at step %d, want 3", cp.Step)
	}
}

// TestEvolveDetectsInjectedNaN: a NaN flipped into the state surfaces at
// the expectation stage guard under PolicyCount without aborting the run.
func TestEvolveDetectsInjectedNaN(t *testing.T) {
	defer health.SetPolicy(health.PolicyOff)
	health.ResetCounters()
	health.SetPolicy(health.PolicyCount)

	obs := quantum.TransverseFieldIsing(2, 2, -1, -2.5)
	state := PlusState(peps.ComputationalZeros(backend.NewDense(), 2, 2))
	health.NewInjector(3).FlipNaN(state.Site(0, 0))
	res := Evolve(state, obs, Options{
		Tau:             0.05,
		Steps:           1,
		EvolutionRank:   2,
		ContractionRank: 4,
		Strategy:        einsumsvd.Explicit{},
	})
	if health.NaNDetected() == 0 {
		t.Fatal("injected NaN not detected at any stage guard")
	}
	if !math.IsNaN(res.Energies[0]) {
		t.Fatalf("poisoned run produced finite energy %g", res.Energies[0])
	}
}

// TestStepSeedDistinct: adjacent steps and adjacent seeds must not share
// measurement streams.
func TestStepSeedDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for seed := int64(0); seed < 3; seed++ {
		for step := 0; step < 64; step++ {
			s := stepSeed(seed, step)
			if seen[s] {
				t.Fatalf("stepSeed collision at seed %d step %d", seed, step)
			}
			seen[s] = true
		}
	}
}
