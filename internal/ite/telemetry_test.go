package ite

import (
	"testing"

	"gokoala/internal/backend"
	"gokoala/internal/einsumsvd"
	"gokoala/internal/peps"
	"gokoala/internal/quantum"
	"gokoala/internal/telemetry"
)

func evolveWithTelemetry(t *testing.T, steps int, stop func() bool) ([]telemetry.Event, Result) {
	t.Helper()
	telemetry.Reset()
	telemetry.SetActive(true)
	t.Cleanup(func() {
		telemetry.SetActive(false)
		telemetry.Reset()
	})

	rows, cols := 2, 2
	obs := quantum.TransverseFieldIsing(rows, cols, -1, -3.5)
	state := PlusState(peps.ComputationalZeros(backend.NewDense(), rows, cols))
	res := Evolve(state, obs, Options{
		Tau:             0.05,
		Steps:           steps,
		EvolutionRank:   2,
		ContractionRank: 4,
		Strategy:        einsumsvd.Explicit{},
		MeasureEvery:    2,
		Stop:            stop,
	})
	_, replay, cancel := telemetry.Subscribe(1)
	cancel()
	return replay, res
}

// TestITEPublishesStepEvents is the acceptance check that a live run
// emits at least one SSE event per ITE step, with the energy attached
// on measured steps.
func TestITEPublishesStepEvents(t *testing.T) {
	const steps = 5
	events, _ := evolveWithTelemetry(t, steps, nil)

	stepSeen := map[int]bool{}
	measured := 0
	for _, ev := range events {
		if ev.Kind != "ite.step" {
			continue
		}
		stepSeen[ev.Step] = true
		if ev.Fields["steps_total"] != steps {
			t.Fatalf("event %+v missing steps_total=%d", ev, steps)
		}
		if _, ok := ev.Fields["energy_per_site"]; ok {
			measured++
		}
	}
	for s := 1; s <= steps; s++ {
		if !stepSeen[s] {
			t.Fatalf("no ite.step event for step %d; events: %+v", s, events)
		}
	}
	if measured == 0 {
		t.Fatal("no step event carried energy_per_site")
	}

	series, _ := telemetry.Snapshot()
	names := map[string]telemetry.SeriesSnapshot{}
	for _, s := range series {
		names[s.Name] = s
	}
	if s, ok := names["ite.step"]; !ok || s.Last != steps {
		t.Fatalf("ite.step series = %+v, want last=%d", s, steps)
	}
	if s, ok := names["ite.energy_per_site"]; !ok || s.Count == 0 {
		t.Fatalf("ite.energy_per_site series missing or empty: %+v", s)
	}
	if _, ok := names["svd.trunc_error"]; !ok {
		t.Fatal("svd.trunc_error series missing (linalg publisher not wired)")
	}
}

// TestITEStopHookExitsEarly verifies the cooperative stop: the loop
// finishes the in-flight step, measures, publishes ite.stop, and
// returns early.
func TestITEStopHookExitsEarly(t *testing.T) {
	calls := 0
	stop := func() bool {
		calls++
		return calls >= 2
	}
	events, res := evolveWithTelemetry(t, 50, stop)

	var stopped bool
	lastStep := 0
	for _, ev := range events {
		if ev.Kind == "ite.stop" {
			stopped = true
			lastStep = ev.Step
		}
	}
	if !stopped {
		t.Fatalf("no ite.stop event; events: %+v", events)
	}
	if lastStep != 2 {
		t.Fatalf("stopped at step %d, want 2", lastStep)
	}
	if n := len(res.MeasuredAt); n == 0 || res.MeasuredAt[n-1] != 2 {
		t.Fatalf("stop must force a final measurement at step 2; measured at %v", res.MeasuredAt)
	}
}
