package ite

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"gokoala/internal/backend"
	"gokoala/internal/checkpoint"
	"gokoala/internal/einsumsvd"
	"gokoala/internal/health"
	"gokoala/internal/peps"
	"gokoala/internal/pool"
	"gokoala/internal/quantum"
	"gokoala/internal/statevector"
)

func symEngineOf(t *testing.T, eng backend.Engine) backend.SymEngine {
	t.Helper()
	se, ok := backend.SymOf(eng)
	if !ok {
		t.Fatalf("engine %s has no block-sparse kernels", eng.Name())
	}
	return se
}

func symTestOptions(r, steps int) Options {
	return Options{
		Tau:             0.05,
		Steps:           steps,
		EvolutionRank:   r,
		ContractionRank: 16,
		Strategy:        einsumsvd.Explicit{},
		MeasureEvery:    1,
		Seed:            1,
	}
}

// runSymDensePair evolves the same dual-frame TFI schedule on the
// block-sparse and the dense path from the same initial state and
// returns both traces.
func runSymDensePair(t *testing.T, r, steps int) (sym, dense []float64) {
	t.Helper()
	eng := backend.NewDense()
	se := symEngineOf(t, eng)
	obs := quantum.TransverseFieldIsingDual(2, 2, -1, -3.5)

	state := peps.SymComputationalBasis(se, 2, 2, 2, nil)
	resSym := EvolveSym(state, obs, symTestOptions(r, steps))
	if resSym.FellBack {
		t.Fatal("dual TFI must not fall back")
	}
	if resSym.FinalSym == nil || resSym.Final == nil {
		t.Fatal("symmetric result missing final state")
	}

	dstate := peps.SymComputationalBasis(se, 2, 2, 2, nil).ToDense()
	resDense := Evolve(dstate, obs, symTestOptions(r, steps))
	return resSym.Energies, resDense.Energies
}

// TestEvolveSymMatchesDense is the randomized-equivalence acceptance
// check: full ITE runs, dense versus block-sparse, at worker counts 1
// and 4. Within one backend the trace must be bit-identical across
// worker counts; across backends the energies must agree to 1e-10 —
// both untruncated and with rank truncation.
func TestEvolveSymMatchesDense(t *testing.T) {
	defer pool.SetWorkers(0)
	for _, r := range []int{0, 2} {
		// Untruncated bonds double every step and the doubled-layer
		// expectation contraction scales with bond^2, so keep the r=0 run
		// short; the truncated run can afford an extra step.
		steps := 3
		if r == 0 {
			steps = 2
		}
		var symTraces, denseTraces [][]float64
		for _, workers := range []int{1, 4} {
			pool.SetWorkers(workers)
			sym, dense := runSymDensePair(t, r, steps)
			if len(sym) != steps || len(dense) != steps {
				t.Fatalf("r=%d workers=%d: trace lengths %d/%d, want %d", r, workers, len(sym), len(dense), steps)
			}
			for i := range sym {
				if math.Abs(sym[i]-dense[i]) > 1e-10 {
					t.Fatalf("r=%d workers=%d step %d: sym %.17g dense %.17g", r, workers, i, sym[i], dense[i])
				}
			}
			symTraces = append(symTraces, sym)
			denseTraces = append(denseTraces, dense)
		}
		for i := range symTraces[0] {
			if symTraces[0][i] != symTraces[1][i] {
				t.Fatalf("r=%d: sym trace not bit-identical across workers at %d: %.17g vs %.17g",
					r, i, symTraces[0][i], symTraces[1][i])
			}
			if denseTraces[0][i] != denseTraces[1][i] {
				t.Fatalf("r=%d: dense trace not bit-identical across workers at %d", r, i)
			}
		}
	}
}

func TestEvolveSymU1MatchesDense(t *testing.T) {
	// The U(1) J1-J2 schedule exercises combined pair gates and routed
	// diagonal terms from the Neel start.
	eng := backend.NewDense()
	se := symEngineOf(t, eng)
	obs := quantum.J1J2HeisenbergU1(2, 2, quantum.PaperJ1J2ParamsU1())
	bits := quantum.NeelBits(2, 2)

	state := peps.SymComputationalBasis(se, 0, 2, 2, bits)
	resSym := EvolveSym(state, obs, symTestOptions(4, 2))
	if resSym.FellBack {
		t.Fatal("U(1) J1-J2 must not fall back")
	}
	dstate := peps.SymComputationalBasis(se, 0, 2, 2, bits).ToDense()
	resDense := Evolve(dstate, obs, symTestOptions(4, 2))
	for i := range resSym.Energies {
		if math.Abs(resSym.Energies[i]-resDense.Energies[i]) > 1e-10 {
			t.Fatalf("step %d: sym %.17g dense %.17g", i, resSym.Energies[i], resDense.Energies[i])
		}
	}
}

func TestEvolveSymFallsBackOnNonConservingCircuit(t *testing.T) {
	// The plain-frame TFI transverse field does not conserve parity: the
	// whole run must complete on the dense path and say so.
	eng := backend.NewDense()
	se := symEngineOf(t, eng)
	health.ResetCounters()
	obs := quantum.TransverseFieldIsing(2, 2, -1, -3.5)
	state := peps.SymComputationalBasis(se, 2, 2, 2, nil)
	res := EvolveSym(state, obs, symTestOptions(2, 2))
	if !res.FellBack {
		t.Fatal("plain TFI must fall back")
	}
	if res.FinalSym != nil {
		t.Fatal("fallback run must not report a symmetric final state")
	}
	if len(res.Energies) != 2 {
		t.Fatalf("fallback run measured %d energies, want 2", len(res.Energies))
	}
	if health.SymFallbacks() != 1 {
		t.Fatalf("sym fallback counter = %d, want 1", health.SymFallbacks())
	}
}

func TestEvolveSymResumeBitIdentical(t *testing.T) {
	// Kill-and-resume: a symmetric run checkpointed at every step and
	// restarted mid-way must reproduce the uninterrupted trace bit for
	// bit (checkpoint format v2 round-trips the block-sparse state).
	eng := backend.NewDense()
	se := symEngineOf(t, eng)
	obs := quantum.TransverseFieldIsingDual(2, 2, -1, -3.5)
	const steps = 4

	full := EvolveSym(peps.SymComputationalBasis(se, 2, 2, 2, nil), obs, symTestOptions(2, steps))

	path := filepath.Join(t.TempDir(), "sym.ckpt")
	opts := symTestOptions(2, steps)
	opts.CheckpointPath = path
	opts.CheckpointEvery = 1
	died := false
	opts.AfterStep = func(step int) {
		if step >= 2 {
			died = true
			panic("injected crash")
		}
	}
	func() {
		defer func() { recover() }()
		EvolveSym(peps.SymComputationalBasis(se, 2, 2, 2, nil), obs, opts)
	}()
	if !died {
		t.Fatal("crash injection did not fire")
	}

	cp, err := checkpoint.LoadITE(path, eng)
	if err != nil {
		t.Fatal(err)
	}
	if cp.SymState == nil || cp.State != nil {
		t.Fatal("checkpoint must hold the block-sparse state")
	}
	if cp.Step != 2 {
		t.Fatalf("checkpoint at step %d, want 2", cp.Step)
	}
	opts2 := symTestOptions(2, steps)
	opts2.CheckpointPath = path
	opts2.From = cp
	opts2.AfterStep = nil
	resumed := EvolveSym(nil, obs, opts2)
	if len(resumed.Energies) != len(full.Energies) {
		t.Fatalf("resumed trace has %d points, want %d", len(resumed.Energies), len(full.Energies))
	}
	for i := range full.Energies {
		if resumed.Energies[i] != full.Energies[i] {
			t.Fatalf("resumed trace differs at %d: %.17g vs %.17g", i, resumed.Energies[i], full.Energies[i])
		}
		if resumed.MeasuredAt[i] != full.MeasuredAt[i] {
			t.Fatalf("resumed measurement steps differ at %d", i)
		}
	}
}

func TestEvolveSymConvergesToReference(t *testing.T) {
	// Physics check: the symmetric dual-frame evolution approaches the
	// exact TFI ground energy, like the dense |+...+> evolution does.
	eng := backend.NewDense()
	se := symEngineOf(t, eng)
	obs := quantum.TransverseFieldIsingDual(2, 2, -1, -3.5)
	opts := symTestOptions(4, 120)
	opts.Tau = 0.03
	opts.MeasureEvery = 120
	res := EvolveSym(peps.SymComputationalBasis(se, 2, 2, 2, nil), obs, opts)
	exactE, _ := statevector.GroundState(obs, 4, rand.New(rand.NewSource(1)))
	ref := exactE / 4
	got := res.Energies[len(res.Energies)-1]
	if math.Abs(got-ref) > 0.02*math.Abs(ref) {
		t.Fatalf("sym ITE energy %.6f, exact %.6f", got, ref)
	}
}
