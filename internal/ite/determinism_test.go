package ite

import (
	"testing"

	"gokoala/internal/backend"
	"gokoala/internal/peps"
	"gokoala/internal/pool"
	"gokoala/internal/quantum"
)

// TestITEEnergiesBitIdenticalAcrossWorkers pins the determinism contract
// of the lattice task scheduler end to end: a short ITE run (checkerboard
// gate waves, cached parallel expectations, implicit randomized SVD)
// must produce bit-identical energy traces for every pool size.
func TestITEEnergiesBitIdenticalAcrossWorkers(t *testing.T) {
	obs := quantum.TransverseFieldIsing(3, 3, -1, -2.5)
	run := func() []float64 {
		eng := backend.NewDense()
		state := PlusState(peps.ComputationalZeros(eng, 3, 3))
		res := Evolve(state, obs, Options{
			Tau:             0.05,
			Steps:           6,
			EvolutionRank:   2,
			ContractionRank: 4,
			MeasureEvery:    2,
			Seed:            3,
			UseCache:        true,
		})
		return res.Energies
	}
	defer pool.SetWorkers(0)
	var want []float64
	for _, w := range []int{1, 2, 4, 8} {
		pool.SetWorkers(w)
		got := run()
		if w == 1 {
			want = got
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d measurements, want %d", w, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: energy[%d] = %.17g differs from single-worker %.17g", w, i, got[i], want[i])
			}
		}
	}
}
