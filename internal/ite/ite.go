// Package ite implements imaginary time evolution for PEPS (paper
// section II-D1 and the Figure 13 application study). Each step applies
// one first-order Trotterized sweep of e^{-tau H} with truncated
// simple/QR updates, and the Rayleigh quotient is measured with the
// boundary contraction of choice.
package ite

import (
	"math/rand"

	"gokoala/internal/checkpoint"
	"gokoala/internal/einsumsvd"
	"gokoala/internal/health"
	"gokoala/internal/peps"
	"gokoala/internal/quantum"
	"gokoala/internal/telemetry"
)

// Options configures a PEPS imaginary time evolution run.
type Options struct {
	// Tau is the imaginary time step.
	Tau float64
	// Steps is the number of Trotter sweeps.
	Steps int
	// EvolutionRank is the PEPS bond dimension r kept during updates.
	EvolutionRank int
	// ContractionRank is the boundary bond dimension m used when
	// measuring energies (paper studies m = r and m = r^2).
	ContractionRank int
	// Strategy is the einsumsvd strategy for energy contraction; nil
	// selects implicit randomized SVD (IBMPS), as in the paper's
	// Figure 13 runs. Stateful strategies are reseeded from (Seed, step)
	// before every measurement, making each measurement's random stream a
	// pure function of the step — the property checkpoint resume needs.
	Strategy einsumsvd.Strategy
	// MeasureEvery measures the energy every k steps (default 1). The
	// final step is always measured.
	MeasureEvery int
	// Seed seeds the randomized-SVD sketches.
	Seed int64
	// UseCache enables the intermediate-caching expectation evaluation.
	UseCache bool
	// SecondOrder selects the symmetric (Strang) Trotter splitting,
	// reducing the per-sweep error from O(tau^2) to O(tau^3) at twice the
	// gate count.
	SecondOrder bool
	// WeightedUpdate uses the lambda-weighted (Jiang-Weng-Xiang) simple
	// update instead of the plain per-bond truncation; substantially more
	// accurate at equal rank. Incompatible with checkpointing (the bond
	// weights are not serialized).
	WeightedUpdate bool

	// CheckpointPath, when non-empty, writes a crash-safe checkpoint of
	// the evolved state and trace after every CheckpointEvery-th step
	// (and after the final step). A failed write is counted in
	// health.checkpoint_failures and the evolution continues.
	CheckpointPath string
	// CheckpointEvery is the step interval between checkpoints
	// (default 1).
	CheckpointEvery int
	// From resumes the evolution from a loaded checkpoint: the state,
	// completed-step counter, energy trace, and base seed all come from
	// the checkpoint (the checkpoint's seed overrides Seed, so a resumed
	// run reproduces the uninterrupted one bit for bit).
	From *checkpoint.ITECheckpoint
	// AfterStep, when non-nil, runs after each step's bookkeeping
	// (measurement and checkpoint write) with the 1-based step index.
	// Crash-injection tests use it to kill the process mid-run.
	AfterStep func(step int)
	// Stop, when non-nil, is polled after each step; when it returns
	// true the evolution measures the current state, writes a final
	// checkpoint (when CheckpointPath is set), and returns early with
	// the partial trace. cliutil's SIGINT handler drives it.
	Stop func() bool
}

// Result holds the evolution trace.
type Result struct {
	// Energies[k] is the energy per site after step Steps recorded at the
	// k-th measurement.
	Energies []float64
	// MeasuredAt[k] is the 1-based step index of the k-th measurement.
	MeasuredAt []int
	// Final is the evolved state (for symmetric runs, its dense
	// embedding).
	Final *peps.PEPS
	// FinalSym is the evolved block-sparse state of a symmetric run
	// that did not fall back; nil otherwise.
	FinalSym *peps.SymPEPS
	// FellBack reports that a symmetric run hit a non-conserving gate
	// and completed on the dense path (see EvolveSym).
	FellBack bool
}

// stepSeed derives the measurement-stream seed for one step from the base
// seed (splitmix64-style mixing, so adjacent steps get unrelated streams).
func stepSeed(seed int64, step int) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(step+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Evolve runs ITE on the given initial state and returns the energy
// trace. The state is evolved in place (resume replaces it with the
// checkpointed state). Starting from the |+...+> product state (see
// PlusState) guarantees overlap with the ground sector of the benchmark
// Hamiltonians.
func Evolve(state *peps.PEPS, obs *quantum.Observable, opts Options) Result {
	if opts.MeasureEvery <= 0 {
		opts.MeasureEvery = 1
	}
	if (opts.CheckpointPath != "" || opts.From != nil) && opts.WeightedUpdate {
		panic("ite: checkpointing does not support WeightedUpdate (bond weights are not serialized)")
	}
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = 1
	}
	var res Result
	start := 1
	if opts.From != nil {
		cp := opts.From
		state = cp.State
		opts.Seed = cp.Seed
		start = cp.Step + 1
		res.Energies = append(res.Energies, cp.Energies...)
		res.MeasuredAt = append(res.MeasuredAt, cp.MeasuredAt...)
	}
	strategy := opts.Strategy
	if strategy == nil {
		strategy = einsumsvd.ImplicitRand{Rng: rand.New(rand.NewSource(opts.Seed + 1))}
	}
	var gates []quantum.TrotterGate
	if opts.SecondOrder {
		gates = obs.TrotterGatesSecondOrder(complex(-opts.Tau, 0))
	} else {
		gates = obs.TrotterGates(complex(-opts.Tau, 0))
	}
	upd := peps.UpdateOptions{
		Rank:      opts.EvolutionRank,
		Method:    peps.UpdateQR,
		Normalize: true,
	}
	var su *peps.SimpleUpdate
	if opts.WeightedUpdate {
		su = peps.NewSimpleUpdate(state)
	}
	for step := start; step <= opts.Steps; step++ {
		if su != nil {
			su.ApplyCircuit(gates, opts.EvolutionRank, nil)
		} else {
			state.ApplyCircuit(gates, upd)
		}
		// Poll after the sweep so a signal mid-sweep still yields a
		// consistent measured + checkpointed state for this step.
		stopping := opts.Stop != nil && opts.Stop()
		measuredNow := false
		if step%opts.MeasureEvery == 0 || step == opts.Steps || stopping {
			measured := state
			if su != nil {
				measured = su.Absorb()
			}
			// Reseed the measurement stream from (Seed, step): the stream
			// no longer depends on how many measurements ran before, so a
			// resumed run reproduces it exactly.
			st := einsumsvd.Reseed(strategy, stepSeed(opts.Seed, step))
			e := measured.EnergyPerSite(obs, peps.ExpectationOptions{
				M:        opts.ContractionRank,
				Strategy: st,
				UseCache: opts.UseCache,
			})
			health.CheckFloat("ite.energy", e)
			res.Energies = append(res.Energies, e)
			res.MeasuredAt = append(res.MeasuredAt, step)
			measuredNow = true
		}
		if telemetry.Active() {
			fields := map[string]float64{
				"step":        float64(step),
				"steps_total": float64(opts.Steps),
				"max_bond":    float64(state.MaxBond()),
			}
			if measuredNow {
				e := res.Energies[len(res.Energies)-1]
				fields["energy_per_site"] = e
				telemetry.Observe("ite.energy_per_site", e)
			}
			telemetry.Observe("ite.step", float64(step))
			telemetry.Publish("ite.step", step, fields)
		}
		if opts.CheckpointPath != "" && (step%opts.CheckpointEvery == 0 || step == opts.Steps || stopping) {
			// Failed writes are counted (health.checkpoint_failures) by
			// WriteAtomic and the previous checkpoint stays valid; losing
			// one checkpoint must not kill an hours-long evolution.
			_ = checkpoint.SaveITE(opts.CheckpointPath, &checkpoint.ITECheckpoint{
				Step:       step,
				Seed:       opts.Seed,
				Energies:   res.Energies,
				MeasuredAt: res.MeasuredAt,
				State:      state,
			})
		}
		if opts.AfterStep != nil {
			opts.AfterStep(step)
		}
		if stopping {
			telemetry.Publish("ite.stop", step, nil)
			break
		}
	}
	res.Final = state
	if su != nil {
		res.Final = su.Absorb()
	}
	return res
}

// PlusState returns the |+>^(rows*cols) product state as a PEPS, the
// standard ITE starting point.
func PlusState(state *peps.PEPS) *peps.PEPS {
	h := quantum.H()
	for s := 0; s < state.Rows*state.Cols; s++ {
		state.ApplyOneSite(h, s)
	}
	return state
}
