// Package ite implements imaginary time evolution for PEPS (paper
// section II-D1 and the Figure 13 application study). Each step applies
// one first-order Trotterized sweep of e^{-tau H} with truncated
// simple/QR updates, and the Rayleigh quotient is measured with the
// boundary contraction of choice.
package ite

import (
	"math/rand"

	"gokoala/internal/einsumsvd"
	"gokoala/internal/peps"
	"gokoala/internal/quantum"
)

// Options configures a PEPS imaginary time evolution run.
type Options struct {
	// Tau is the imaginary time step.
	Tau float64
	// Steps is the number of Trotter sweeps.
	Steps int
	// EvolutionRank is the PEPS bond dimension r kept during updates.
	EvolutionRank int
	// ContractionRank is the boundary bond dimension m used when
	// measuring energies (paper studies m = r and m = r^2).
	ContractionRank int
	// Strategy is the einsumsvd strategy for energy contraction; nil
	// selects implicit randomized SVD (IBMPS), as in the paper's
	// Figure 13 runs.
	Strategy einsumsvd.Strategy
	// MeasureEvery measures the energy every k steps (default 1). The
	// final step is always measured.
	MeasureEvery int
	// Seed seeds the randomized-SVD sketches.
	Seed int64
	// UseCache enables the intermediate-caching expectation evaluation.
	UseCache bool
	// SecondOrder selects the symmetric (Strang) Trotter splitting,
	// reducing the per-sweep error from O(tau^2) to O(tau^3) at twice the
	// gate count.
	SecondOrder bool
	// WeightedUpdate uses the lambda-weighted (Jiang-Weng-Xiang) simple
	// update instead of the plain per-bond truncation; substantially more
	// accurate at equal rank.
	WeightedUpdate bool
}

// Result holds the evolution trace.
type Result struct {
	// Energies[k] is the energy per site after step Steps recorded at the
	// k-th measurement.
	Energies []float64
	// MeasuredAt[k] is the 1-based step index of the k-th measurement.
	MeasuredAt []int
	// Final is the evolved state.
	Final *peps.PEPS
}

// Evolve runs ITE on the given initial state and returns the energy
// trace. The state is evolved in place. Starting from the |+...+> product
// state (see PlusState) guarantees overlap with the ground sector of the
// benchmark Hamiltonians.
func Evolve(state *peps.PEPS, obs *quantum.Observable, opts Options) Result {
	if opts.MeasureEvery <= 0 {
		opts.MeasureEvery = 1
	}
	strategy := opts.Strategy
	if strategy == nil {
		strategy = einsumsvd.ImplicitRand{Rng: rand.New(rand.NewSource(opts.Seed + 1))}
	}
	var gates []quantum.TrotterGate
	if opts.SecondOrder {
		gates = obs.TrotterGatesSecondOrder(complex(-opts.Tau, 0))
	} else {
		gates = obs.TrotterGates(complex(-opts.Tau, 0))
	}
	upd := peps.UpdateOptions{
		Rank:      opts.EvolutionRank,
		Method:    peps.UpdateQR,
		Normalize: true,
	}
	expOpts := peps.ExpectationOptions{
		M:        opts.ContractionRank,
		Strategy: strategy,
		UseCache: opts.UseCache,
	}
	var su *peps.SimpleUpdate
	if opts.WeightedUpdate {
		su = peps.NewSimpleUpdate(state)
	}
	var res Result
	for step := 1; step <= opts.Steps; step++ {
		if su != nil {
			su.ApplyCircuit(gates, opts.EvolutionRank, nil)
		} else {
			state.ApplyCircuit(gates, upd)
		}
		if step%opts.MeasureEvery == 0 || step == opts.Steps {
			measured := state
			if su != nil {
				measured = su.Absorb()
			}
			res.Energies = append(res.Energies, measured.EnergyPerSite(obs, expOpts))
			res.MeasuredAt = append(res.MeasuredAt, step)
		}
	}
	res.Final = state
	if su != nil {
		res.Final = su.Absorb()
	}
	return res
}

// PlusState returns the |+>^(rows*cols) product state as a PEPS, the
// standard ITE starting point.
func PlusState(state *peps.PEPS) *peps.PEPS {
	h := quantum.H()
	for s := 0; s < state.Rows*state.Cols; s++ {
		state.ApplyOneSite(h, s)
	}
	return state
}
