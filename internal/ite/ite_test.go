package ite

import (
	"math"
	"math/rand"
	"testing"

	"gokoala/internal/backend"
	"gokoala/internal/einsumsvd"
	"gokoala/internal/peps"
	"gokoala/internal/quantum"
	"gokoala/internal/statevector"
)

func TestITEConvergesToStateVectorReference(t *testing.T) {
	// 2x2 TFI: PEPS ITE at exact bond dimension must track state-vector
	// ITE and approach the exact ground state.
	rows, cols := 2, 2
	obs := quantum.TransverseFieldIsing(rows, cols, -1, -3.5)
	rng := rand.New(rand.NewSource(1))
	exactE, _ := statevector.GroundState(obs, rows*cols, rng)
	exactPerSite := exactE / float64(rows*cols)

	eng := backend.NewDense()
	state := PlusState(peps.ComputationalZeros(eng, rows, cols))
	res := Evolve(state, obs, Options{
		Tau:             0.03,
		Steps:           120,
		EvolutionRank:   4, // exact for 2x2
		ContractionRank: 16,
		Strategy:        einsumsvd.Explicit{},
		MeasureEvery:    20,
	})
	final := res.Energies[len(res.Energies)-1]
	if math.Abs(final-exactPerSite) > 0.02*math.Abs(exactPerSite) {
		t.Fatalf("ITE energy per site %g, exact %g", final, exactPerSite)
	}
	// Energy should be near-monotone decreasing across measurements;
	// small drifts near the Trotterized fixed point are expected.
	for i := 1; i < len(res.Energies); i++ {
		if res.Energies[i] > res.Energies[i-1]+1e-3 {
			t.Fatalf("energy increased between measurements: %v", res.Energies)
		}
	}
}

func TestITEMatchesStateVectorTrotterTrace(t *testing.T) {
	// With exact bond dimension, the PEPS energy trace equals the
	// state-vector TEBD trace step by step (same Trotter error).
	rows, cols := 1, 3
	obs := quantum.TransverseFieldIsing(rows, cols, -1, -3.5)
	svTrace := statevector.ITE(obs, rows*cols, 0.05, 10)

	eng := backend.NewDense()
	state := PlusState(peps.ComputationalZeros(eng, rows, cols))
	res := Evolve(state, obs, Options{
		Tau:             0.05,
		Steps:           10,
		EvolutionRank:   8,
		ContractionRank: 64,
		Strategy:        einsumsvd.Explicit{},
		MeasureEvery:    1,
	})
	for i := range res.Energies {
		got := res.Energies[i] * float64(rows*cols)
		want := svTrace[i]
		if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("step %d: PEPS %g vs state vector %g", i+1, got, want)
		}
	}
}

func TestHigherBondDimensionIsMoreAccurate(t *testing.T) {
	// Paper Figure 13b: final ITE energy improves (decreases toward the
	// exact value) as the evolution bond dimension grows.
	rows, cols := 2, 2
	obs := quantum.J1J2Heisenberg(rows, cols, quantum.PaperJ1J2Params())
	rng := rand.New(rand.NewSource(2))
	exactE, _ := statevector.GroundState(obs, rows*cols, rng)
	exactPerSite := exactE / float64(rows*cols)

	eng := backend.NewDense()
	run := func(r int) float64 {
		state := PlusState(peps.ComputationalZeros(eng, rows, cols))
		res := Evolve(state, obs, Options{
			Tau:             0.05,
			Steps:           150, // the paper's Figure 13 step count; ITE on this model converges slowly
			EvolutionRank:   r,
			ContractionRank: r * r,
			Strategy:        einsumsvd.Explicit{},
			MeasureEvery:    150,
		})
		return res.Energies[len(res.Energies)-1]
	}
	e1, e2 := run(1), run(4)
	gap1 := math.Abs(e1 - exactPerSite)
	gap2 := math.Abs(e2 - exactPerSite)
	if gap2 > gap1 {
		t.Fatalf("r=4 gap %g should beat r=1 gap %g (exact %g, e1 %g, e2 %g)", gap2, gap1, exactPerSite, e1, e2)
	}
	// Simple-update truncation on routed J2 swaps keeps r=4 slightly off
	// the exact value; the paper sees the same systematic gap (Fig. 13b).
	if gap2 > 0.15*math.Abs(exactPerSite) {
		t.Fatalf("r=4 should be close to exact: %g vs %g", e2, exactPerSite)
	}
}

func TestImplicitStrategyMatchesExplicit(t *testing.T) {
	rows, cols := 2, 2
	obs := quantum.TransverseFieldIsing(rows, cols, -1, -3.5)
	eng := backend.NewDense()
	run := func(st einsumsvd.Strategy) float64 {
		state := PlusState(peps.ComputationalZeros(eng, rows, cols))
		res := Evolve(state, obs, Options{
			Tau: 0.05, Steps: 20, EvolutionRank: 2, ContractionRank: 8,
			Strategy: st, MeasureEvery: 20,
		})
		return res.Energies[0]
	}
	e := run(einsumsvd.Explicit{})
	i := run(einsumsvd.ImplicitRand{NIter: 2, Oversample: 4, Rng: rand.New(rand.NewSource(3))})
	if math.Abs(e-i) > 1e-4*(1+math.Abs(e)) {
		t.Fatalf("explicit %g vs implicit %g", e, i)
	}
}

func TestSecondOrderITEAtLeastAsAccurate(t *testing.T) {
	// With exact bond dimension on 1x3 (no truncation, no routing), the
	// only error versus the true ground state is Trotter error at the
	// fixed point; the symmetric splitting must not be worse.
	rows, cols := 1, 3
	obs := quantum.TransverseFieldIsing(rows, cols, -1, -3.5)
	rng := rand.New(rand.NewSource(4))
	exactE, _ := statevector.GroundState(obs, rows*cols, rng)
	exactPerSite := exactE / float64(rows*cols)
	eng := backend.NewDense()
	run := func(second bool) float64 {
		state := PlusState(peps.ComputationalZeros(eng, rows, cols))
		res := Evolve(state, obs, Options{
			Tau: 0.1, Steps: 80, EvolutionRank: 8, ContractionRank: 64,
			Strategy: einsumsvd.Explicit{}, MeasureEvery: 80, SecondOrder: second,
		})
		return res.Energies[len(res.Energies)-1]
	}
	gap1 := math.Abs(run(false) - exactPerSite)
	gap2 := math.Abs(run(true) - exactPerSite)
	if gap2 > gap1*1.05 {
		t.Fatalf("second-order gap %g should not exceed first-order gap %g", gap2, gap1)
	}
	if gap2 > 1e-2*math.Abs(exactPerSite) {
		t.Fatalf("second-order fixed point too far from exact: gap %g", gap2)
	}
}
