package einsumsvd

import (
	"math/rand"
	"testing"

	"gokoala/internal/backend"
	"gokoala/internal/health"
	"gokoala/internal/obs"
	"gokoala/internal/tensor"
)

// flatSpectrum returns an n-by-n identity: at rank k < n the randomized
// sketch can only capture k of n equally important directions, so the
// subspace probe must flag the factorization.
func flatSpectrum(n int) *tensor.Dense {
	t := tensor.New(n, n)
	for i := 0; i < n; i++ {
		t.Set(1, i, i)
	}
	return t
}

func TestImplicitRandFallsBackToExplicit(t *testing.T) {
	health.ResetCounters()
	obs.Enable() // zero sinks: counters only
	defer obs.Disable()
	eng := backend.NewDense()
	// 16 equal directions, sketch width rank+oversample = 6: the probe
	// must see most of the operator outside the sketch.
	op := flatSpectrum(16)
	const spec = "ab->ax|xb"

	ir := ImplicitRand{Rng: rand.New(rand.NewSource(21)), NIter: 1}
	a, b, s, err := ir.Factor(eng, spec, 2, op)
	if err != nil {
		t.Fatal(err)
	}
	if got := health.SVDFallbacks(); got != 1 {
		t.Fatalf("SVDFallbacks = %d, want exactly 1", got)
	}
	if got := obs.MetricValueOf("health.svd_fallbacks"); got != 1 {
		t.Fatalf("obs health.svd_fallbacks = %g, want 1", got)
	}

	// The degraded result must be exactly what the Explicit strategy
	// produces: the fallback re-factors through the same path.
	ea, eb, es, err := (Explicit{}).Factor(eng, spec, 2, op)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(a, ea, 0, 0) || !tensor.AllClose(b, eb, 0, 0) {
		t.Fatal("fallback factors differ from the Explicit strategy's")
	}
	if len(s) != len(es) {
		t.Fatalf("fallback kept %d singular values, Explicit kept %d", len(s), len(es))
	}
	for i := range s {
		if s[i] != es[i] {
			t.Fatalf("singular value %d: %g vs Explicit %g", i, s[i], es[i])
		}
	}
}

func TestImplicitRandFallbackDisabled(t *testing.T) {
	health.ResetCounters()
	eng := backend.NewDense()
	ir := ImplicitRand{Rng: rand.New(rand.NewSource(22)), NIter: 1, FallbackTol: -1}
	if _, _, _, err := ir.Factor(eng, "ab->ax|xb", 2, flatSpectrum(16)); err != nil {
		t.Fatal(err)
	}
	if got := health.SVDFallbacks(); got != 0 {
		t.Fatalf("FallbackTol=-1 still fell back %d times", got)
	}
}

func TestImplicitRandHealthyFactorizationDoesNotFallBack(t *testing.T) {
	health.ResetCounters()
	eng := backend.NewDense()
	// Rapidly decaying spectrum: rank 2 captures essentially everything.
	op := tensor.New(6, 6)
	diag := []float64{3, 2, 1e-9, 1e-9, 1e-9, 1e-9}
	for i, d := range diag {
		op.Set(complex(d, 0), i, i)
	}
	ir := ImplicitRand{Rng: rand.New(rand.NewSource(23)), NIter: 2, Oversample: 2}
	if _, _, _, err := ir.Factor(eng, "ab->ax|xb", 2, op); err != nil {
		t.Fatal(err)
	}
	if got := health.SVDFallbacks(); got != 0 {
		t.Fatalf("healthy factorization fell back %d times", got)
	}
}
