// Package einsumsvd implements the paper's central software abstraction:
// contracting a tensor network into one tensor and refactorizing it into
// two tensors joined by a single new (truncated) bond index
// (paper section II-C, Figure 2).
//
// A spec extends einsum syntax with a split output:
//
//	"gbd,bpe,dqpf->gqx|xef"
//
// means: contract the three operands, then factor the result so the first
// output tensor carries subscript "gqx" and the second "xef", where "x"
// is the new bond shared by exactly the two outputs (it must not appear in
// the inputs). Letters that appear in inputs but in neither output are
// contracted/summed away as in plain einsum.
//
// Two strategies implement the abstraction:
//
//   - Explicit: contract fully, matricize, truncated SVD — the standard
//     approach.
//   - ImplicitRand: never form the contracted tensor; run randomized SVD
//     (paper Algorithm 4) applying the uncontracted network as an implicit
//     operator. This is what turns BMPS into IBMPS and gives the
//     asymptotic savings of paper Table II.
package einsumsvd

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"gokoala/internal/backend"
	"gokoala/internal/health"
	"gokoala/internal/linalg"
	"gokoala/internal/tensor"
)

// SigmaMode controls where the singular values go.
type SigmaMode int

const (
	// SigmaRight multiplies diag(s) into the second factor (zip-up
	// convention: the first factor is an isometry).
	SigmaRight SigmaMode = iota
	// SigmaLeft multiplies diag(s) into the first factor.
	SigmaLeft
	// SigmaBoth splits diag(sqrt(s)) into each factor (simple-update
	// convention, keeping the two site tensors balanced).
	SigmaBoth
	// SigmaNone attaches the singular values to neither factor: the first
	// factor is the isometry U and the second is V*; callers use the
	// returned singular values themselves (weighted simple update keeps
	// them as bond weights).
	SigmaNone
)

// Strategy factors a contracted network into two tensors.
type Strategy interface {
	// Name identifies the strategy in benchmark output.
	Name() string
	// Factor evaluates the split spec over the operands with the given
	// truncation rank. It returns the two factors (shaped per the output
	// subscripts) and the retained singular values.
	Factor(eng backend.Engine, spec string, rank int, ops ...*tensor.Dense) (a, b *tensor.Dense, s []float64, err error)
}

// Explicit contracts the network and computes a truncated SVD.
type Explicit struct {
	Mode SigmaMode
}

func (e Explicit) Name() string { return "explicit-svd" }

// ImplicitRand applies the network as an implicit operator inside
// randomized SVD (paper Algorithm 4). Every factorization is followed by
// a deterministic subspace probe (linalg.RandSVDReport); when the probe
// residual exceeds FallbackTol the randomized factors are discarded and
// the spec is re-factored through the exact Explicit path, counted in
// health.svd_fallbacks. Graceful degradation: the result is then the one
// the paper's baseline algorithm would have produced.
type ImplicitRand struct {
	Mode SigmaMode
	// NIter is the number of orthogonal-iteration rounds (default 1).
	NIter int
	// Oversample adds sketch columns truncated away at the end (default 4).
	Oversample int
	// Rng supplies the sketch; required.
	Rng *rand.Rand
	// FallbackTol is the probe-residual threshold beyond which the
	// factorization degrades to the exact path. Zero selects
	// health.DefaultSubspaceTol; negative disables the fallback (the
	// probe still runs and non-convergence is still visible in the
	// returned report counters).
	FallbackTol float64
	// Sketch32 computes the sketch and power-iteration contractions in
	// complex64 (the -f32-sketch CLI option). The subspace probe and the
	// final projection stay complex128, and the probe-driven fallback
	// above guards against precision-degraded sketches; on engines
	// without a mixed-precision path the option is a no-op.
	Sketch32 bool
}

func (ImplicitRand) Name() string { return "implicit-rsvd" }

// MustFactor is a panic-on-error convenience for specs that are constants
// in library code.
func MustFactor(st Strategy, eng backend.Engine, spec string, rank int, ops ...*tensor.Dense) (*tensor.Dense, *tensor.Dense, []float64) {
	a, b, s, err := st.Factor(eng, spec, rank, ops...)
	if err != nil {
		panic("einsumsvd: " + err.Error())
	}
	return a, b, s
}

// splitSpec holds the parsed form of a split spec.
type splitSpec struct {
	inputs     string // comma-joined input subscripts
	out1, out2 string // output subscripts including the new letter
	newLetter  byte
	row, col   string // out1/out2 with the new letter removed
	rowDims    []int
	colDims    []int
	rowSize    int
	colSize    int
	dims       map[byte]int
	free       byte // an unused letter for block-vector columns
}

func shapesOf(ops []*tensor.Dense) [][]int {
	shapes := make([][]int, len(ops))
	for i, op := range ops {
		shapes[i] = op.Shape()
	}
	return shapes
}

// parse works from operand shapes alone so the dense and block-sparse
// factor paths share it; for block-sparse operands the shapes are the
// per-leg total dimensions.
func parse(spec string, shapes [][]int) (*splitSpec, error) {
	arrow := strings.Index(spec, "->")
	if arrow < 0 {
		return nil, fmt.Errorf("spec %q missing \"->\"", spec)
	}
	inputs := spec[:arrow]
	outs := strings.Split(spec[arrow+2:], "|")
	if len(outs) != 2 {
		return nil, fmt.Errorf("spec %q must have exactly two outputs separated by |", spec)
	}
	out1, out2 := strings.TrimSpace(outs[0]), strings.TrimSpace(outs[1])

	inLetters := map[byte]bool{}
	subsList := strings.Split(inputs, ",")
	if len(subsList) != len(shapes) {
		return nil, fmt.Errorf("spec %q has %d inputs but %d operands", spec, len(subsList), len(shapes))
	}
	dims := map[byte]int{}
	for i, subs := range subsList {
		subs = strings.TrimSpace(subs)
		if len(subs) != len(shapes[i]) {
			return nil, fmt.Errorf("operand %d rank %d does not match subscript %q", i, len(shapes[i]), subs)
		}
		for j := 0; j < len(subs); j++ {
			c := subs[j]
			inLetters[c] = true
			d := shapes[i][j]
			if prev, ok := dims[c]; ok && prev != d {
				return nil, fmt.Errorf("letter %q has conflicting dimensions %d and %d", string(c), prev, d)
			}
			dims[c] = d
		}
	}

	// Identify the new letter: in both outputs, not in inputs.
	var newLetter byte
	set1 := map[byte]bool{}
	for i := 0; i < len(out1); i++ {
		set1[out1[i]] = true
	}
	for i := 0; i < len(out2); i++ {
		c := out2[i]
		if set1[c] {
			if inLetters[c] {
				return nil, fmt.Errorf("shared output letter %q also appears in inputs", string(c))
			}
			if newLetter != 0 {
				return nil, fmt.Errorf("outputs share more than one new letter")
			}
			newLetter = c
		}
	}
	if newLetter == 0 {
		return nil, fmt.Errorf("outputs %q and %q share no new letter", out1, out2)
	}
	strip := func(s string) string {
		return strings.ReplaceAll(s, string(newLetter), "")
	}
	row, col := strip(out1), strip(out2)
	for i := 0; i < len(row); i++ {
		if !inLetters[row[i]] {
			return nil, fmt.Errorf("output letter %q not found in inputs", string(row[i]))
		}
	}
	for i := 0; i < len(col); i++ {
		if !inLetters[col[i]] {
			return nil, fmt.Errorf("output letter %q not found in inputs", string(col[i]))
		}
	}

	p := &splitSpec{inputs: inputs, out1: out1, out2: out2, newLetter: newLetter, row: row, col: col, dims: dims}
	p.rowSize, p.colSize = 1, 1
	for i := 0; i < len(row); i++ {
		d := dims[row[i]]
		p.rowDims = append(p.rowDims, d)
		p.rowSize *= d
	}
	for i := 0; i < len(col); i++ {
		d := dims[col[i]]
		p.colDims = append(p.colDims, d)
		p.colSize *= d
	}
	// Find a free letter for the block-vector column index.
	used := map[byte]bool{newLetter: true}
	for c := range inLetters {
		used[c] = true
	}
	for _, c := range []byte("zyxwvutsrqponmlkjihgfedcbaZYXWVUTSRQPONMLKJIHGFEDCBA") {
		if !used[c] {
			p.free = c
			break
		}
	}
	if p.free == 0 {
		return nil, fmt.Errorf("no free subscript letter available")
	}
	return p, nil
}

// assemble folds the U factor (rowSize x k) and the sigma-carrying V
// factor into tensors shaped per out1/out2, applying the sigma mode.
func (p *splitSpec) assemble(eng backend.Engine, u *tensor.Dense, s []float64, v *tensor.Dense, mode SigmaMode) (*tensor.Dense, *tensor.Dense) {
	k := len(s)
	var uScale, vScale []float64
	switch mode {
	case SigmaRight:
		uScale, vScale = ones(k), s
	case SigmaLeft:
		uScale, vScale = s, ones(k)
	case SigmaNone:
		uScale, vScale = ones(k), ones(k)
	case SigmaBoth:
		uScale, vScale = make([]float64, k), make([]float64, k)
		for i, x := range s {
			r := math.Sqrt(x)
			uScale[i], vScale[i] = r, r
		}
	}
	// A0[row..., k] = U * diag(uScale)
	a0 := u.Clone()
	ad := a0.Data()
	for i := 0; i < p.rowSize; i++ {
		for j := 0; j < k; j++ {
			ad[i*k+j] *= complex(uScale[j], 0)
		}
	}
	// B0[k, col...] = diag(vScale) * V^H
	b0 := tensor.New(k, p.colSize)
	bd := b0.Data()
	vd := v.Data()
	for j := 0; j < k; j++ {
		sc := complex(vScale[j], 0)
		for i := 0; i < p.colSize; i++ {
			x := vd[i*k+j]
			bd[j*p.colSize+i] = sc * complex(real(x), -imag(x))
		}
	}
	aShape := append(append([]int{}, p.rowDims...), k)
	bShape := append([]int{k}, p.colDims...)
	a := a0.Reshape(aShape...)
	b := b0.Reshape(bShape...)
	// Permute to the requested output orders.
	a = permuteTo(a, p.row+string(p.newLetter), p.out1)
	b = permuteTo(b, string(p.newLetter)+p.col, p.out2)
	return a, b
}

func ones(k int) []float64 {
	o := make([]float64, k)
	for i := range o {
		o[i] = 1
	}
	return o
}

// permuteTo transposes t (whose axes are labeled by from) into the axis
// order given by to.
func permuteTo(t *tensor.Dense, from, to string) *tensor.Dense {
	if from == to {
		return t
	}
	perm := make([]int, len(to))
	for i := 0; i < len(to); i++ {
		p := strings.IndexByte(from, to[i])
		if p < 0 {
			panic(fmt.Sprintf("einsumsvd: internal label mismatch %q vs %q", from, to))
		}
		perm[i] = p
	}
	return t.Transpose(perm...)
}

// Factor implements Strategy for the explicit contract-then-SVD path.
func (e Explicit) Factor(eng backend.Engine, spec string, rank int, ops ...*tensor.Dense) (*tensor.Dense, *tensor.Dense, []float64, error) {
	p, err := parse(spec, shapesOf(ops))
	if err != nil {
		return nil, nil, nil, err
	}
	full := eng.Einsum(p.inputs+"->"+p.row+p.col, ops...)
	u, s, v := eng.TruncSVD(full.Reshape(p.rowSize, p.colSize), rank)
	a, b := p.assemble(eng, u, s, v, e.Mode)
	return a, b, s, nil
}

// networkOperator applies the uncontracted network as a linear operator
// from the col index group to the row index group.
type networkOperator struct {
	eng                backend.Engine
	p                  *splitSpec
	ops                []*tensor.Dense
	conjOps            []*tensor.Dense
	applySpec, adjSpec string
}

func newNetworkOperator(eng backend.Engine, p *splitSpec, ops []*tensor.Dense) *networkOperator {
	conj := make([]*tensor.Dense, len(ops))
	for i, o := range ops {
		conj[i] = o.Conj()
	}
	z := string(p.free)
	return &networkOperator{
		eng:       eng,
		p:         p,
		ops:       ops,
		conjOps:   conj,
		applySpec: p.inputs + "," + p.col + z + "->" + p.row + z,
		adjSpec:   p.inputs + "," + p.row + z + "->" + p.col + z,
	}
}

func (o *networkOperator) Rows() int { return o.p.rowSize }
func (o *networkOperator) Cols() int { return o.p.colSize }

func (o *networkOperator) Apply(q *tensor.Dense) *tensor.Dense {
	r := q.Dim(1)
	qt := q.Reshape(append(append([]int{}, o.p.colDims...), r)...)
	out := o.eng.Einsum(o.applySpec, append(append([]*tensor.Dense{}, o.ops...), qt)...)
	return out.Reshape(o.p.rowSize, r)
}

func (o *networkOperator) ApplyAdjoint(pv *tensor.Dense) *tensor.Dense {
	r := pv.Dim(1)
	pt := pv.Reshape(append(append([]int{}, o.p.rowDims...), r)...)
	out := o.eng.Einsum(o.adjSpec, append(append([]*tensor.Dense{}, o.conjOps...), pt)...)
	return out.Reshape(o.p.colSize, r)
}

// mixedEinsum routes a contraction through the engine's complex64 GEMM
// path when the engine has one, full precision otherwise — the sketch
// option must degrade to a no-op on engines (Sym, Dist) that cannot
// compute in reduced precision.
func (o *networkOperator) mixedEinsum(spec string, ops ...*tensor.Dense) *tensor.Dense {
	if mc, ok := o.eng.(backend.MixedContractor); ok {
		return mc.EinsumMixed(spec, ops...)
	}
	return o.eng.Einsum(spec, ops...)
}

// ApplySketch and ApplyAdjointSketch implement linalg.SketchApplier:
// the same network contractions as Apply/ApplyAdjoint with the batched
// GEMMs in complex64.
func (o *networkOperator) ApplySketch(q *tensor.Dense) *tensor.Dense {
	r := q.Dim(1)
	qt := q.Reshape(append(append([]int{}, o.p.colDims...), r)...)
	out := o.mixedEinsum(o.applySpec, append(append([]*tensor.Dense{}, o.ops...), qt)...)
	return out.Reshape(o.p.rowSize, r)
}

func (o *networkOperator) ApplyAdjointSketch(pv *tensor.Dense) *tensor.Dense {
	r := pv.Dim(1)
	pt := pv.Reshape(append(append([]int{}, o.p.rowDims...), r)...)
	out := o.mixedEinsum(o.adjSpec, append(append([]*tensor.Dense{}, o.conjOps...), pt)...)
	return out.Reshape(o.p.colSize, r)
}

var (
	_ linalg.Operator      = (*networkOperator)(nil)
	_ linalg.SketchApplier = (*networkOperator)(nil)
)

// Factor implements Strategy for the implicit randomized-SVD path.
func (ir ImplicitRand) Factor(eng backend.Engine, spec string, rank int, ops ...*tensor.Dense) (*tensor.Dense, *tensor.Dense, []float64, error) {
	if ir.Rng == nil {
		return nil, nil, nil, fmt.Errorf("ImplicitRand requires a Rng")
	}
	p, err := parse(spec, shapesOf(ops))
	if err != nil {
		return nil, nil, nil, err
	}
	nIter := ir.NIter
	if nIter == 0 {
		nIter = 1
	}
	oversample := ir.Oversample
	if oversample == 0 {
		oversample = 4
	}
	op := newNetworkOperator(eng, p, ops)
	u, s, v, rep := backend.RandSVDChecked(eng, op, rank, nIter, oversample, ir.Rng, ir.FallbackTol, ir.Sketch32)
	if !rep.Converged && ir.FallbackTol >= 0 {
		// The sketch missed too much of the operator: degrade to the
		// exact contract-then-SVD path. The probe and this decision are
		// deterministic (the probe rng never touches ir.Rng), so the
		// fallback fires identically at any worker count.
		health.CountSVDFallback()
		return Explicit{Mode: ir.Mode}.Factor(eng, spec, rank, ops...)
	}
	a, b := p.assemble(eng, u, s, v, ir.Mode)
	return a, b, s, nil
}
