package einsumsvd

import "math/rand"

// Forker is implemented by strategies that can split into independent
// per-task strategies for concurrent use. Stateless strategies return
// copies of themselves; strategies carrying mutable state (a random
// stream) derive task-private state deterministically.
type Forker interface {
	// Fork returns n strategies safe to use from n concurrent tasks.
	Fork(n int) []Strategy
}

// Fork splits st into n strategies safe for concurrent use, one per
// lattice task. The split is deterministic: ImplicitRand draws one seed
// per task from its parent Rng, in task order, on the calling goroutine,
// so the per-task random streams depend only on the parent stream's
// position — never on scheduling — and parallel lattice algorithms stay
// bit-identical across worker counts. A nil or stateless strategy
// (Explicit) forks into shared copies. Fork returns nil for unknown
// stateful strategies, signaling the caller to fall back to a
// sequential path.
// Reseed returns a copy of st whose random stream restarts from seed;
// stateless strategies come back unchanged. Callers that reseed at known
// boundaries (ite.Evolve reseeds per measurement step) make their random
// streams a pure function of (base seed, step), which is what lets a
// checkpoint-resumed run reproduce an uninterrupted one bit-identically:
// the resumed process never needs the rng position the dead process had.
func Reseed(st Strategy, seed int64) Strategy {
	if s, ok := st.(ImplicitRand); ok {
		s.Rng = rand.New(rand.NewSource(seed))
		return s
	}
	return st
}

func Fork(st Strategy, n int) []Strategy {
	if n <= 0 {
		return nil
	}
	out := make([]Strategy, n)
	switch s := st.(type) {
	case nil:
		return out
	case Forker:
		return s.Fork(n)
	case Explicit:
		for i := range out {
			out[i] = s
		}
		return out
	case ImplicitRand:
		for i := range out {
			c := s
			if s.Rng != nil {
				c.Rng = rand.New(rand.NewSource(s.Rng.Int63()))
			}
			out[i] = c
		}
		return out
	}
	return nil
}
