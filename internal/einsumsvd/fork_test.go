package einsumsvd

import (
	"math/rand"
	"testing"

	"gokoala/internal/backend"
	"gokoala/internal/tensor"
)

func TestForkExplicitCopies(t *testing.T) {
	sts := Fork(Explicit{Mode: SigmaBoth}, 3)
	if len(sts) != 3 {
		t.Fatalf("len = %d, want 3", len(sts))
	}
	for i, s := range sts {
		e, ok := s.(Explicit)
		if !ok || e.Mode != SigmaBoth {
			t.Fatalf("fork %d = %#v, want Explicit{SigmaBoth}", i, s)
		}
	}
}

func TestForkImplicitRandDeterministic(t *testing.T) {
	// Forking from identically seeded parents yields identical per-task
	// streams, independent of how the forks are later scheduled.
	draw := func() [][]int64 {
		parent := ImplicitRand{NIter: 2, Oversample: 3, Rng: rand.New(rand.NewSource(7))}
		sts := Fork(parent, 4)
		out := make([][]int64, len(sts))
		for i, s := range sts {
			ir := s.(ImplicitRand)
			if ir.NIter != 2 || ir.Oversample != 3 {
				t.Fatalf("fork %d lost parameters: %#v", i, ir)
			}
			if ir.Rng == parent.Rng {
				t.Fatalf("fork %d shares the parent Rng", i)
			}
			for j := 0; j < 5; j++ {
				out[i] = append(out[i], ir.Rng.Int63())
			}
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("fork %d draw %d differs between runs: %d vs %d", i, j, a[i][j], b[i][j])
			}
		}
	}
	// Distinct tasks get distinct streams.
	if a[0][0] == a[1][0] && a[0][1] == a[1][1] {
		t.Fatal("forks 0 and 1 produced the same stream")
	}
}

func TestForkUnknownStrategyIsNil(t *testing.T) {
	if got := Fork(unknownStrategy{}, 2); got != nil {
		t.Fatalf("Fork(unknown) = %v, want nil", got)
	}
}

type unknownStrategy struct{}

func (unknownStrategy) Name() string { return "unknown" }
func (unknownStrategy) Factor(eng backend.Engine, spec string, rank int, ops ...*tensor.Dense) (*tensor.Dense, *tensor.Dense, []float64, error) {
	return nil, nil, nil, nil
}
