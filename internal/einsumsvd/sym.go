package einsumsvd

import (
	"fmt"
	"math"
	"strings"

	"gokoala/internal/backend"
	"gokoala/internal/tensor"
)

// SymFactor evaluates a split spec over block-sparse operands: contract
// the network block by block, then factor sector by sector with a
// globally-truncated SVD. It is the explicit contract-then-SVD strategy
// for symmetric tensors — randomized sketching mixes charge sectors, so
// there is no implicit variant. The sigma mode scales the new bond the
// same way the dense assemble step does, per-column on the first factor
// and per-row on the second, with the singular values in the bond's
// canonical order (ascending sector charge, descending within a sector).
func SymFactor(eng backend.SymEngine, mode SigmaMode, spec string, rank int, ops ...*tensor.Sym) (a, b *tensor.Sym, s []float64, err error) {
	shapes := make([][]int, len(ops))
	for i, op := range ops {
		shapes[i] = op.Shape()
	}
	p, err := parse(spec, shapes)
	if err != nil {
		return nil, nil, nil, err
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("einsumsvd: sym factor %q: %v", spec, r)
		}
	}()
	full := eng.SymEinsum(p.inputs+"->"+p.row+p.col, ops...)
	u, s, vh := eng.SymSVDSplit(full, len(p.row), rank)
	k := len(s)
	var uScale, vScale []float64
	switch mode {
	case SigmaRight:
		uScale, vScale = ones(k), s
	case SigmaLeft:
		uScale, vScale = s, ones(k)
	case SigmaNone:
		uScale, vScale = ones(k), ones(k)
	case SigmaBoth:
		uScale, vScale = make([]float64, k), make([]float64, k)
		for i, x := range s {
			r := math.Sqrt(x)
			uScale[i], vScale[i] = r, r
		}
	}
	scaleSymBond(u, u.Rank()-1, uScale)
	scaleSymBond(vh, 0, vScale)
	a = symPermuteTo(u, p.row+string(p.newLetter), p.out1)
	b = symPermuteTo(vh, string(p.newLetter)+p.col, p.out2)
	return a, b, s, nil
}

// MustSymFactor is the panic-on-error form of SymFactor for constant
// specs in library code.
func MustSymFactor(eng backend.SymEngine, mode SigmaMode, spec string, rank int, ops ...*tensor.Sym) (*tensor.Sym, *tensor.Sym, []float64) {
	a, b, s, err := SymFactor(eng, mode, spec, rank, ops...)
	if err != nil {
		panic(err.Error())
	}
	return a, b, s
}

// scaleSymBond multiplies slice j of the given axis by scale[off+j],
// where off is the bond leg's dense offset of the block's sector; scale
// is indexed in the bond's canonical order, matching the singular-value
// layout SymSVDSplit returns.
func scaleSymBond(t *tensor.Sym, axis int, scale []float64) {
	allOnes := true
	for _, x := range scale {
		if x != 1 {
			allOnes = false
			break
		}
	}
	if allOnes {
		return
	}
	leg := t.Leg(axis)
	offsets := leg.Offsets()
	t.EachBlock(func(sectors []int, blk *tensor.Dense) {
		off := offsets[sectors[axis]]
		shape := blk.Shape()
		inner := 1
		for i := axis + 1; i < len(shape); i++ {
			inner *= shape[i]
		}
		outer := 1
		for i := 0; i < axis; i++ {
			outer *= shape[i]
		}
		n := shape[axis]
		data := blk.Data()
		for o := 0; o < outer; o++ {
			for j := 0; j < n; j++ {
				sc := complex(scale[off+j], 0)
				base := (o*n + j) * inner
				for i := 0; i < inner; i++ {
					data[base+i] *= sc
				}
			}
		}
	})
}

// symPermuteTo transposes t (axes labeled by from) into the order of to.
func symPermuteTo(t *tensor.Sym, from, to string) *tensor.Sym {
	if from == to {
		return t
	}
	perm := make([]int, len(to))
	for i := 0; i < len(to); i++ {
		p := strings.IndexByte(from, to[i])
		if p < 0 {
			panic(fmt.Sprintf("einsumsvd: internal label mismatch %q vs %q", from, to))
		}
		perm[i] = p
	}
	return t.Transpose(perm...)
}
