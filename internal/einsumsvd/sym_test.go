package einsumsvd

import (
	"math"
	"math/rand"
	"testing"

	"gokoala/internal/backend"
	"gokoala/internal/tensor"
)

func symEach(legs []tensor.Leg, f func(sec []int)) {
	sec := make([]int, len(legs))
	var rec func(i int)
	rec = func(i int) {
		if i == len(legs) {
			f(sec)
			return
		}
		for s := 0; s < legs[i].NumSectors(); s++ {
			sec[i] = s
			rec(i + 1)
		}
	}
	rec(0)
}

func randSymOp(rng *rand.Rand, mod, total int, legs []tensor.Leg) *tensor.Sym {
	s := tensor.NewSym(mod, total, legs)
	symEach(legs, func(sec []int) {
		if !s.Allowed(sec) {
			return
		}
		shape := make([]int, len(sec))
		for i, x := range sec {
			shape[i] = legs[i].Dims[x]
		}
		s.SetBlock(tensor.Rand(rng, shape...), sec...)
	})
	return s
}

func symTensorsClose(t *testing.T, got, want *tensor.Dense, tol float64) {
	t.Helper()
	gd, wd := got.Data(), want.Data()
	if len(gd) != len(wd) {
		t.Fatalf("size %d, want %d", len(gd), len(wd))
	}
	for i := range gd {
		d := gd[i] - wd[i]
		if math.Hypot(real(d), imag(d)) > tol {
			t.Fatalf("element %d: %v, want %v", i, gd[i], wd[i])
		}
	}
}

// TestSymFactorReconstructs checks the split contract A·B (with sigma
// absorbed per the mode) against the full network contraction, for every
// sigma placement.
func TestSymFactorReconstructs(t *testing.T) {
	eng := backend.NewDense()
	rng := rand.New(rand.NewSource(41))
	q := tensor.Leg{Dir: 1, Charges: []int{0, 1}, Dims: []int{2, 2}}
	x := randSymOp(rng, 0, 0, []tensor.Leg{q, q.Dual(), q})
	y := randSymOp(rng, 0, 1, []tensor.Leg{q.Dual(), q, q.Dual()})
	full := eng.SymEinsum("abk,kcd->abcd", x, y).ToDense()

	for _, mode := range []SigmaMode{SigmaRight, SigmaLeft, SigmaBoth} {
		a, b, s, err := SymFactor(eng, mode, "abk,kcd->abn|ncd", 0, x, y)
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if len(s) == 0 {
			t.Fatalf("mode %d: no singular values", mode)
		}
		got := eng.SymEinsum("abn,ncd->abcd", a, b).ToDense()
		symTensorsClose(t, got, full, 1e-10)
	}
}

// TestSymFactorMatchesDenseFactor embeds the operands and compares the
// kept spectrum with the dense explicit strategy at the same truncation
// rank.
func TestSymFactorMatchesDenseFactor(t *testing.T) {
	eng := backend.NewDense()
	rng := rand.New(rand.NewSource(42))
	q := tensor.Leg{Dir: 1, Charges: []int{0, 1}, Dims: []int{2, 2}}
	x := randSymOp(rng, 2, 0, []tensor.Leg{q, q.Dual(), q})
	y := randSymOp(rng, 2, 1, []tensor.Leg{q.Dual(), q, q.Dual()})
	const rank = 3
	_, _, ss, err := SymFactor(eng, SigmaBoth, "abk,kcd->abn|ncd", rank, x, y)
	if err != nil {
		t.Fatal(err)
	}
	_, _, ds := MustFactor(Explicit{}, eng, "abk,kcd->abn|ncd", rank, x.ToDense(), y.ToDense())
	if len(ss) != rank || len(ds) != rank {
		t.Fatalf("kept %d sym and %d dense values, want %d", len(ss), len(ds), rank)
	}
	// Same multiset of kept values; the orders differ (dense descending,
	// sym in bond-canonical order).
	sortedSym := append([]float64{}, ss...)
	sortedDense := append([]float64{}, ds...)
	for _, s := range [][]float64{sortedSym, sortedDense} {
		for i := range s {
			for j := i + 1; j < len(s); j++ {
				if s[j] > s[i] {
					s[i], s[j] = s[j], s[i]
				}
			}
		}
	}
	for i := range sortedSym {
		if math.Abs(sortedSym[i]-sortedDense[i]) > 1e-10 {
			t.Fatalf("kept value %d: sym %g dense %g", i, sortedSym[i], sortedDense[i])
		}
	}
}

func TestSymFactorBadSpec(t *testing.T) {
	eng := backend.NewDense()
	rng := rand.New(rand.NewSource(43))
	q := tensor.Leg{Dir: 1, Charges: []int{0, 1}, Dims: []int{2, 2}}
	x := randSymOp(rng, 0, 0, []tensor.Leg{q, q.Dual()})
	if _, _, _, err := SymFactor(eng, SigmaBoth, "ab->a|b|c", 0, x); err == nil {
		t.Fatal("malformed spec must error, not panic")
	}
}
