package einsumsvd

import (
	"math"
	"math/rand"
	"testing"

	"gokoala/internal/backend"
	"gokoala/internal/dist"
	"gokoala/internal/einsum"
	"gokoala/internal/tensor"
)

func strategies(rng *rand.Rand) map[string]Strategy {
	return map[string]Strategy{
		"explicit": Explicit{},
		"implicit": ImplicitRand{NIter: 2, Oversample: 4, Rng: rng},
	}
}

func TestFullRankFactorizationReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	eng := backend.NewDense()
	// Two-site network: rank large enough to be exact.
	m1 := tensor.Rand(rng, 2, 3, 4)
	m2 := tensor.Rand(rng, 4, 3, 2)
	want := einsum.MustContract("apb,bqc->apqc", m1, m2)
	for name, st := range strategies(rng) {
		a, b, s, err := st.Factor(eng, "apb,bqc->apx|xqc", 6, m1, m2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(s) == 0 || s[0] <= 0 {
			t.Fatalf("%s: bad singular values %v", name, s)
		}
		got := einsum.MustContract("apx,xqc->apqc", a, b)
		if !tensor.AllClose(got, want, 1e-8, 1e-8) {
			t.Errorf("%s: full-rank refactorization not exact, dev %g", name, got.Sub(want).MaxAbs())
		}
	}
}

func TestTruncationMatchesEckartYoung(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	eng := backend.NewDense()
	m := tensor.Rand(rng, 6, 7)
	a, b, _, err := Explicit{}.Factor(eng, "ij->ix|xj", 3, m)
	if err != nil {
		t.Fatal(err)
	}
	approx := einsum.MustContract("ix,xj->ij", a, b)
	// Compare against the optimal rank-3 error computed from the spectrum.
	_, s, _ := eng.TruncSVD(m, 7)
	var opt float64
	for i := 3; i < len(s); i++ {
		opt += s[i] * s[i]
	}
	got := approx.Sub(m).Norm()
	if math.Abs(got-math.Sqrt(opt)) > 1e-9 {
		t.Fatalf("truncation error %g, optimal %g", got, math.Sqrt(opt))
	}
}

func TestImplicitMatchesExplicitOnLowRank(t *testing.T) {
	// Build a 5-site network whose contraction has exact rank 3 across the
	// split, then check implicit and explicit agree to high precision
	// (the paper's Figure 10 claim: implicit rSVD adds no error).
	rng := rand.New(rand.NewSource(3))
	eng := backend.NewDense()
	left := tensor.Rand(rng, 5, 4, 3)  // [a p x0]
	right := tensor.Rand(rng, 3, 4, 5) // [x0 q c]
	// network contracting to left x right through bond 3
	full := einsum.MustContract("apk,kqc->apqc", left, right)
	aE, bE, _, err := Explicit{}.Factor(eng, "apqc->apx|xqc", 3, full)
	if err != nil {
		t.Fatal(err)
	}
	aI, bI, _, err := ImplicitRand{NIter: 3, Oversample: 3, Rng: rng}.Factor(eng, "apqc->apx|xqc", 3, full)
	if err != nil {
		t.Fatal(err)
	}
	gotE := einsum.MustContract("apx,xqc->apqc", aE, bE)
	gotI := einsum.MustContract("apx,xqc->apqc", aI, bI)
	if !tensor.AllClose(gotE, full, 1e-9, 1e-9) {
		t.Fatal("explicit lost accuracy on exactly-rank-3 tensor")
	}
	if !tensor.AllClose(gotI, full, 1e-7, 1e-7) {
		t.Fatal("implicit rSVD lost accuracy on exactly-rank-3 tensor")
	}
}

func TestSigmaModes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	eng := backend.NewDense()
	m := tensor.Rand(rng, 4, 4)
	for _, mode := range []SigmaMode{SigmaRight, SigmaLeft, SigmaBoth} {
		a, b, _, err := Explicit{Mode: mode}.Factor(eng, "ij->ix|xj", 4, m)
		if err != nil {
			t.Fatal(err)
		}
		got := einsum.MustContract("ix,xj->ij", a, b)
		if !tensor.AllClose(got, m, 1e-10, 1e-10) {
			t.Fatalf("mode %d does not reconstruct", mode)
		}
	}
	// SigmaRight leaves the first factor an isometry.
	a, _, _, _ := Explicit{Mode: SigmaRight}.Factor(eng, "ij->ix|xj", 4, m)
	am := a.Reshape(4, 4)
	if !tensor.AllClose(tensor.MatMul(am.Conj().Transpose(1, 0), am), tensor.Eye(4), 0, 1e-10) {
		t.Fatal("SigmaRight first factor should be an isometry")
	}
	// SigmaBoth balances the factor norms.
	ab, bb, _, _ := Explicit{Mode: SigmaBoth}.Factor(eng, "ij->ix|xj", 4, m)
	if r := ab.Norm() / bb.Norm(); r < 0.5 || r > 2 {
		t.Fatalf("SigmaBoth factors unbalanced: ratio %g", r)
	}
}

func TestNewIndexPlacementWithinOutputs(t *testing.T) {
	// The new bond may sit anywhere in each output subscript.
	rng := rand.New(rand.NewSource(5))
	eng := backend.NewDense()
	m := tensor.Rand(rng, 3, 4, 5)
	a, b, _, err := Explicit{}.Factor(eng, "ijk->xi|jxk", 20, m)
	if err != nil {
		t.Fatal(err)
	}
	if a.Dim(1) != 3 || b.Dim(0) != 4 || b.Dim(2) != 5 {
		t.Fatalf("output shapes %v %v", a.Shape(), b.Shape())
	}
	got := einsum.MustContract("xi,jxk->ijk", a, b)
	if !tensor.AllClose(got, m, 1e-9, 1e-9) {
		t.Fatal("placement permutation broke reconstruction")
	}
}

func TestSummedOutLetters(t *testing.T) {
	// Letter d appears only in inputs: summed away before the split.
	rng := rand.New(rand.NewSource(6))
	eng := backend.NewDense()
	m := tensor.Rand(rng, 3, 4, 2)
	a, b, _, err := Explicit{}.Factor(eng, "ijd->ix|xj", 10, m)
	if err != nil {
		t.Fatal(err)
	}
	want := einsum.MustContract("ijd->ij", m)
	got := einsum.MustContract("ix,xj->ij", a, b)
	if !tensor.AllClose(got, want, 1e-9, 1e-9) {
		t.Fatal("summed letters mishandled")
	}
}

func TestDistEngineAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dense := backend.NewDense()
	de := backend.NewDist(dist.NewGrid(dist.Stampede2(8)), true)
	m1 := tensor.Rand(rng, 2, 3, 4)
	m2 := tensor.Rand(rng, 4, 3, 2)
	want := einsum.MustContract("apb,bqc->apqc", m1, m2)
	for _, eng := range []backend.Engine{dense, de} {
		a, b, _, err := Explicit{}.Factor(eng, "apb,bqc->apx|xqc", 6, m1, m2)
		if err != nil {
			t.Fatal(err)
		}
		got := einsum.MustContract("apx,xqc->apqc", a, b)
		if !tensor.AllClose(got, want, 1e-8, 1e-8) {
			t.Errorf("engine %s: reconstruction failed", eng.Name())
		}
	}
}

func TestErrorCases(t *testing.T) {
	eng := backend.NewDense()
	rng := rand.New(rand.NewSource(8))
	m := tensor.Rand(rng, 2, 2)
	cases := []string{
		"ij->ixj",     // no split
		"ij->ix|yj",   // no shared new letter
		"ij->ijx|xij", // output letters shared beyond the new one... (i,j shared and in inputs)
		"ij->ix|xk",   // unknown letter k
		"ij->ii|ij",   // malformed
		"ij",          // no arrow
	}
	for _, spec := range cases {
		if _, _, _, err := (Explicit{}).Factor(eng, spec, 2, m); err == nil {
			t.Errorf("spec %q should fail", spec)
		}
	}
	if _, _, _, err := (ImplicitRand{}).Factor(eng, "ij->ix|xj", 2, m); err == nil {
		t.Error("ImplicitRand without Rng should fail")
	}
}

func TestSigmaNoneFactorsAreIsometries(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	eng := backend.NewDense()
	m := tensor.Rand(rng, 5, 5)
	a, b, s, err := Explicit{Mode: SigmaNone}.Factor(eng, "ij->ix|xj", 5, m)
	if err != nil {
		t.Fatal(err)
	}
	am := a.Reshape(5, 5)
	if !tensor.AllClose(tensor.MatMul(am.Conj().Transpose(1, 0), am), tensor.Eye(5), 0, 1e-10) {
		t.Fatal("U factor not an isometry under SigmaNone")
	}
	bm := b.Reshape(5, 5)
	if !tensor.AllClose(tensor.MatMul(bm, bm.Conj().Transpose(1, 0)), tensor.Eye(5), 0, 1e-10) {
		t.Fatal("V* factor not an isometry under SigmaNone")
	}
	// Reconstruct with sigma inserted manually.
	sd := tensor.New(5, 5)
	for i := range s {
		sd.Set(complex(s[i], 0), i, i)
	}
	back := tensor.MatMul(tensor.MatMul(am, sd), bm)
	if !tensor.AllClose(back, m, 1e-10, 1e-10) {
		t.Fatal("U diag(s) V* != M")
	}
}
