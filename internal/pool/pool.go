// Package pool provides the process-wide pool of persistent worker
// goroutines the compute kernels run on. A fixed set of workers is
// started on first use and fed through a buffered work channel, so hot
// paths (batched GEMM partitions, blocked transposes, Jacobi rotation
// rounds) never pay per-call goroutine spawning.
//
// The unit of work is a half-open index range: For splits [0, n) into
// disjoint chunks and runs the body once per chunk, one chunk on the
// calling goroutine and the rest on the workers. Because chunks are
// disjoint, bodies may write to shared output slices without locking.
//
// Bodies must not call back into the pool: nested For calls execute
// inline on the submitting goroutine, which is correct but serial.
package pool

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"time"

	"gokoala/internal/obs"
)

// Dispatch observability: chunks handed to workers versus chunks the
// submitting goroutine ran because the queue was full, plus worker-side
// queue-wait seconds (submission to execution start; wall-clock, so
// never diffed or gated).
var (
	obsPoolTasks     = obs.NewCounter("pool.tasks")
	obsPoolInline    = obs.NewCounter("pool.inline")
	obsPoolQueueWait = obs.NewFloatCounter("pool.queue_wait_seconds")
)

type task struct {
	body   func(lo, hi int)
	lo, hi int
	wg     *sync.WaitGroup
	// sp is the submitting call's dispatch span; workers hang their
	// per-chunk spans under it so a chunk lands beneath its true parent
	// (the einsum/GEMM region that submitted it), not the trace root.
	// nil while tracing is off.
	sp *obs.Span
	// submitted is the dispatch timestamp for queue-wait attribution;
	// zero while tracing is off.
	submitted time.Time
}

var (
	mu    sync.Mutex
	size  int       // worker count of the running pool; 0 = not started
	queue chan task // nil until the pool starts
)

// queueDepth is the per-worker submission buffer; submissions beyond it
// run inline on the caller instead of blocking.
const queueDepth = 8

// envWorkers reads the KOALA_WORKERS environment variable once; a
// positive integer overrides the GOMAXPROCS default pool size (the
// tuning knob of long-running services and benchmark sweeps — see the
// README tuning notes). SetWorkers still takes precedence. An invalid
// or non-positive value is rejected with a one-line warning instead of
// silently poisoning the worker budget.
var envWorkers = sync.OnceValue(func() int {
	n, bad := ParseWorkers(os.Getenv("KOALA_WORKERS"))
	if bad != "" {
		fmt.Fprintf(os.Stderr, "koala: ignoring KOALA_WORKERS=%s: %s; using default (%d workers)\n",
			os.Getenv("KOALA_WORKERS"), bad, runtime.GOMAXPROCS(0))
	}
	return n
})

// ParseWorkers validates a worker-count setting. It returns the count
// (0 meaning "unset, use the default") and, when the value is present
// but unusable, a short reason for the caller's warning line. Shared by
// the KOALA_WORKERS path here and the -workers flag path in cliutil so
// both reject garbage the same way.
func ParseWorkers(s string) (n int, bad string) {
	if s == "" {
		return 0, ""
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, "not an integer"
	}
	if v <= 0 {
		return 0, "must be positive"
	}
	return v, ""
}

// defaultSize is the pool size used when SetWorkers has not been called:
// KOALA_WORKERS when set, GOMAXPROCS otherwise.
func defaultSize() int {
	if n := envWorkers(); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Size returns the worker count parallel kernels should split work for:
// the running pool's size, or the default (KOALA_WORKERS / GOMAXPROCS)
// if the pool has not started.
func Size() int {
	mu.Lock()
	defer mu.Unlock()
	if size > 0 {
		return size
	}
	return defaultSize()
}

// kernelShare is the chunk budget of one kernel-level split: the full
// pool normally, or the pool divided by the number of active lattice
// tasks, so nested kernel parallelism under a task group never
// oversubscribes the pool (the hierarchical budget of the lattice
// scheduler; see group.go). Chunk counts only partition disjoint output
// ranges, so this adaptivity never changes numerical results.
func kernelShare() int {
	n := Size()
	if a := latticeActive.Load(); a > 1 {
		n /= int(a)
		if n < 1 {
			n = 1
		}
	}
	return n
}

// SetWorkers resizes the pool to n workers (n <= 0 restores the
// KOALA_WORKERS / GOMAXPROCS default). Already-submitted work completes
// on the old workers. Intended for tests and for tuning long-running
// services; kernels cap their own parallelism per call via the max
// argument of ForMax instead.
func SetWorkers(n int) {
	if n <= 0 {
		n = defaultSize()
	}
	mu.Lock()
	defer mu.Unlock()
	if size == n {
		return
	}
	if queue != nil {
		close(queue) // old workers drain their queue and exit
	}
	start(n)
}

// ensure returns the work queue, starting the pool if needed.
func ensure() chan task {
	mu.Lock()
	defer mu.Unlock()
	if queue == nil {
		start(defaultSize())
	}
	return queue
}

// start launches n workers on a fresh queue. Caller holds mu.
func start(n int) {
	size = n
	queue = make(chan task, n*queueDepth)
	for i := 0; i < n; i++ {
		go worker(i, queue)
	}
}

func worker(id int, q chan task) {
	for t := range q {
		if t.sp != nil {
			// Per-chunk span under the dispatching call's span: worker
			// lane, chunk bounds, and how long the chunk sat queued.
			sp := t.sp.StartChild("pool.chunk").SetTrack(id + 1).
				SetInt("worker", int64(id)).
				SetInt("n", int64(t.hi-t.lo))
			wait := time.Since(t.submitted).Seconds()
			sp.SetFloat("queue_wait_s", wait)
			obsPoolQueueWait.Add(wait)
			sp.Adopt()
			t.body(t.lo, t.hi)
			sp.End()
		} else {
			t.body(t.lo, t.hi)
		}
		t.wg.Done()
	}
}

// For splits [0, n) into chunks of at least grain indices and runs body
// over the chunks in parallel, returning when all chunks are done. With
// one chunk (small n, or a single-worker pool) the body runs inline on
// the calling goroutine with no synchronization at all.
func For(n, grain int, body func(lo, hi int)) { ForMax(0, n, grain, body) }

// ForMax is For with an additional cap on the number of chunks
// (max <= 0 means the pool size). Engines expose their own worker-count
// knobs by passing them here.
func ForMax(max, n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	chunks := kernelShare()
	if max > 0 && max < chunks {
		chunks = max
	}
	if byGrain := (n + grain - 1) / grain; byGrain < chunks {
		chunks = byGrain
	}
	if chunks <= 1 {
		body(0, n)
		return
	}
	// Dispatch span: one per multi-chunk ForMax call, parented under the
	// submitting goroutine's innermost span (the kernel region that asked
	// for parallelism). Worker-side chunks become its children, so nested
	// kernel splits land under their true parent in the trace.
	var sp *obs.Span
	var submitted time.Time
	if obs.Enabled() {
		if cur := obs.Current(); cur != nil {
			sp = cur.StartChild("pool.for").
				SetInt("n", int64(n)).SetInt("chunks", int64(chunks))
			submitted = time.Now()
		}
	}
	q := ensure()
	var wg sync.WaitGroup
	for c := 1; c < chunks; c++ {
		lo, hi := n*c/chunks, n*(c+1)/chunks
		if lo == hi {
			continue
		}
		wg.Add(1)
		select {
		case q <- task{body, lo, hi, &wg, sp, submitted}:
			obsPoolTasks.Add(1)
		default:
			// Queue full (deep nesting or heavy concurrent use): make
			// progress on the submitting goroutine rather than block.
			obsPoolInline.Add(1)
			body(lo, hi)
			wg.Done()
		}
	}
	body(0, n/chunks)
	wg.Wait()
	sp.End()
}
