package pool

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestForCoversRange checks every index in [0, n) is visited exactly
// once, across a spread of sizes, grains, and worker counts.
func TestForCoversRange(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		SetWorkers(workers)
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			for _, grain := range []int{0, 1, 3, 64, 10000} {
				visits := make([]int32, n)
				For(n, grain, func(lo, hi int) {
					if lo < 0 || hi > n || lo > hi {
						t.Errorf("workers=%d n=%d grain=%d: chunk [%d,%d) out of range", workers, n, grain, lo, hi)
						return
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&visits[i], 1)
					}
				})
				for i, v := range visits {
					if v != 1 {
						t.Fatalf("workers=%d n=%d grain=%d: index %d visited %d times", workers, n, grain, i, v)
					}
				}
			}
		}
	}
	SetWorkers(0)
}

// TestForMaxRespectsCap verifies ForMax never runs more concurrent
// chunks than its cap.
func TestForMaxRespectsCap(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(0)
	for _, max := range []int{1, 2, 3} {
		var cur, peak int32
		var mu sync.Mutex
		ForMax(max, 64, 1, func(lo, hi int) {
			c := atomic.AddInt32(&cur, 1)
			mu.Lock()
			if c > peak {
				peak = c
			}
			mu.Unlock()
			for i := 0; i < 1000; i++ {
				_ = i * i
			}
			atomic.AddInt32(&cur, -1)
		})
		if int(peak) > max {
			t.Fatalf("ForMax(max=%d): observed %d concurrent chunks", max, peak)
		}
	}
}

// TestForGrainFloor checks chunks are never smaller than the grain
// (except possibly the remainder split over the chunk count).
func TestForGrainFloor(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(0)
	const n, grain = 100, 40
	var chunks int32
	For(n, grain, func(lo, hi int) { atomic.AddInt32(&chunks, 1) })
	// ceil(100/40) = 3 chunks at most.
	if c := atomic.LoadInt32(&chunks); c > 3 {
		t.Fatalf("grain %d over %d indices produced %d chunks", grain, n, c)
	}
}

// TestConcurrentFor hammers the pool from many goroutines at once; the
// full-queue fallback must keep every call correct.
func TestConcurrentFor(t *testing.T) {
	SetWorkers(2)
	defer SetWorkers(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < 50; it++ {
				var sum int64
				For(100, 7, func(lo, hi int) {
					var local int64
					for i := lo; i < hi; i++ {
						local += int64(i)
					}
					atomic.AddInt64(&sum, local)
				})
				if sum != 4950 {
					t.Errorf("sum = %d, want 4950", sum)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestSetWorkersResize cycles the pool size and confirms work still
// completes afterwards.
func TestSetWorkersResize(t *testing.T) {
	for _, n := range []int{1, 3, 1, 0} {
		SetWorkers(n)
		var count int32
		For(10, 1, func(lo, hi int) { atomic.AddInt32(&count, int32(hi-lo)) })
		if count != 10 {
			t.Fatalf("after SetWorkers(%d): covered %d of 10 indices", n, count)
		}
	}
}

// TestParseWorkers covers the KOALA_WORKERS / -workers validation shared
// with cliutil: empty means unset, garbage and non-positive values are
// rejected with a reason instead of flowing into the worker budget.
func TestParseWorkers(t *testing.T) {
	cases := []struct {
		in  string
		n   int
		bad bool
	}{
		{"", 0, false},
		{"8", 8, false},
		{"1", 1, false},
		{"0", 0, true},
		{"-4", 0, true},
		{"eight", 0, true},
		{"3.5", 0, true},
		{" 2", 0, true},
	}
	for _, c := range cases {
		n, bad := ParseWorkers(c.in)
		if n != c.n || (bad != "") != c.bad {
			t.Errorf("ParseWorkers(%q) = (%d, %q), want n=%d bad=%v", c.in, n, bad, c.n, c.bad)
		}
	}
}
