package pool

import (
	"sync"
	"testing"

	"gokoala/internal/obs"
)

// recordSink collects completed span events.
type recordSink struct {
	mu     sync.Mutex
	events []obs.Event
}

func (r *recordSink) SpanEnd(e obs.Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

func (r *recordSink) Flush() error { return nil }

func attrs(e obs.Event) map[string]obs.Attr {
	m := map[string]obs.Attr{}
	for _, a := range e.Attrs {
		m[a.Key] = a
	}
	return m
}

// Every group task must get a span parented under its group's span,
// carrying the group name, task index, worker slot and queue wait —
// whether it ran on a worker goroutine or inline.
func TestGroupTaskSpansAttribution(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(2)
	sink := &recordSink{}
	obs.Enable(sink)
	defer func() {
		obs.Disable()
		obs.ResetCounters()
	}()

	const n = 8
	before := obs.MetricValueOf("pool.task.count")
	Tasks("test-group", n, func(i int) {})

	var group obs.Event
	var tasks []obs.Event
	sink.mu.Lock()
	for _, e := range sink.events {
		switch e.Name {
		case "pool.group":
			group = e
		case "pool.task":
			tasks = append(tasks, e)
		}
	}
	sink.mu.Unlock()

	if group.ID == 0 {
		t.Fatal("no pool.group span recorded")
	}
	if got := attrs(group)["name"].Str; got != "test-group" {
		t.Fatalf("group span name attr = %q", got)
	}
	if len(tasks) != n {
		t.Fatalf("want %d task spans, got %d", n, len(tasks))
	}
	seenTask := map[int64]bool{}
	for _, e := range tasks {
		if e.Parent != group.ID {
			t.Fatalf("task span parent %d, want group id %d", e.Parent, group.ID)
		}
		a := attrs(e)
		if a["group"].Str != "test-group" {
			t.Fatalf("task group attr = %q", a["group"].Str)
		}
		if _, ok := a["queue_wait_s"]; !ok {
			t.Fatal("task span missing queue_wait_s")
		}
		worker, ok := a["worker"]
		if !ok {
			t.Fatal("task span missing worker slot")
		}
		if worker.Int >= 0 && e.Track != int(worker.Int)+1 {
			t.Fatalf("worker %d task on track %d, want %d", worker.Int, e.Track, worker.Int+1)
		}
		idx := a["task"].Int
		if idx < 0 || idx >= n || seenTask[idx] {
			t.Fatalf("bad or duplicate task index %d", idx)
		}
		seenTask[idx] = true
	}
	// The deterministic task counter counts every submission exactly once.
	if got := obs.MetricValueOf("pool.task.count") - before; got != n {
		t.Fatalf("pool.task.count advanced by %v, want %d", got, n)
	}
}

// Spans started inside a task body must nest under the task span, not
// under the coordinator's current span — the attribution bug explicit
// handles exist to fix.
func TestSpansInsideTaskNestUnderTask(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(4)
	sink := &recordSink{}
	obs.Enable(sink)
	defer func() {
		obs.Disable()
		obs.ResetCounters()
	}()

	coord := obs.Start("coordinator")
	Tasks("g", 4, func(i int) {
		sp := obs.Start("kernel")
		sp.End()
	})
	coord.End()

	taskIDs := map[int64]bool{}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	for _, e := range sink.events {
		if e.Name == "pool.task" {
			taskIDs[e.ID] = true
		}
	}
	kernels := 0
	for _, e := range sink.events {
		if e.Name != "kernel" {
			continue
		}
		kernels++
		if !taskIDs[e.Parent] {
			t.Fatalf("kernel span parented under %d, not a task span", e.Parent)
		}
	}
	if kernels != 4 {
		t.Fatalf("want 4 kernel spans, got %d", kernels)
	}
}

// ForMax under a current span hangs its chunk spans under a pool.for
// span; the deterministic counters must not depend on it.
func TestForMaxChunkSpans(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(4)
	sink := &recordSink{}
	obs.Enable(sink)
	defer func() {
		obs.Disable()
		obs.ResetCounters()
	}()

	root := obs.Start("kernel")
	var mu sync.Mutex
	covered := make([]bool, 64)
	ForMax(0, 64, 1, func(lo, hi int) {
		mu.Lock()
		for i := lo; i < hi; i++ {
			covered[i] = true
		}
		mu.Unlock()
	})
	root.End()

	for i, ok := range covered {
		if !ok {
			t.Fatalf("index %d not covered with spans enabled", i)
		}
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	var forSpan obs.Event
	chunks := 0
	for _, e := range sink.events {
		switch e.Name {
		case "pool.for":
			forSpan = e
		case "pool.chunk":
			chunks++
		}
	}
	if forSpan.ID == 0 {
		t.Fatal("no pool.for span for a multi-chunk ForMax")
	}
	for _, e := range sink.events {
		if e.Name == "pool.chunk" {
			if e.Parent != forSpan.ID {
				t.Fatalf("chunk parent %d, want pool.for id %d", e.Parent, forSpan.ID)
			}
			a := attrs(e)
			if _, ok := a["worker"]; !ok {
				t.Fatal("chunk span missing worker attr")
			}
		}
	}
	if chunks == 0 {
		t.Fatal("expected at least one worker-dispatched chunk span")
	}
}
