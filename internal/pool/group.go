package pool

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"gokoala/internal/obs"
)

// Lattice-level task groups. The worker pool's For/ForMax primitives
// parallelize a single kernel; Group parallelizes the layer above it —
// independent lattice tasks such as the two boundary-MPS sweeps of a
// cached expectation, the per-term strip contractions, or the gates of
// one checkerboard wave. Each task is a full algorithm step that runs
// kernels of its own, so groups and kernels share one hierarchical
// parallelism budget:
//
//   - A group task claims one worker token before it gets a goroutine of
//     its own; with no token free it runs inline on the submitting
//     goroutine (never blocking, so nested groups cannot deadlock).
//     Tokens bound the lattice-level goroutine count by the pool size.
//   - While lattice tasks are active, kernel-level splits (ForMax) see a
//     reduced worker share — Size()/activeTasks — so the product of
//     lattice-level and kernel-level parallelism stays at the pool size
//     instead of oversubscribing GOMAXPROCS.
//
// Determinism contract: a Group never reorders results by itself — tasks
// write to caller-indexed slots and callers reduce in fixed order — so
// lattice algorithms driven through groups produce bit-identical results
// for any worker count, provided each task draws its randomness from a
// task-private source (see einsumsvd.Fork).

// Scheduler observability: tasks handed their own goroutine, tasks run
// inline because every worker token was taken (token contention), the
// total task count (deterministic: it depends only on the submitted
// work, never on worker count — the regression gate and koala-obs diff
// rely on that), and coordinator seconds spent waiting for group
// completion (idle time).
var (
	obsGroupTasks  = obs.NewCounter("pool.group.tasks")
	obsGroupInline = obs.NewCounter("pool.group.inline")
	obsTaskCount   = obs.NewCounter("pool.task.count")
	obsGroupWait   = obs.NewFloatCounter("pool.group.wait_seconds")
)

// latticeActive counts group tasks currently executing (goroutine or
// inline). ForMax divides the kernel worker share by it.
var latticeActive atomic.Int64

// tokenMu guards the worker-token slots. Tokens bound how many group
// tasks hold a private goroutine at once; the bound tracks Size() at
// acquisition time, so SetWorkers takes effect for new tasks
// immediately. Tokens are slot-indexed (lowest free slot wins) so task
// spans can name the lattice-level worker lane they ran on.
var (
	tokenMu    sync.Mutex
	tokenSlots []bool // true = slot in use; len grows to Size() on demand
	tokenCount int
)

// tryToken claims the lowest free worker-token slot, returning the slot
// index, or -1 when all Size() tokens are taken.
func tryToken() int {
	tokenMu.Lock()
	defer tokenMu.Unlock()
	n := Size()
	if tokenCount >= n {
		return -1
	}
	for len(tokenSlots) < n {
		tokenSlots = append(tokenSlots, false)
	}
	for i := 0; i < n; i++ {
		if !tokenSlots[i] {
			tokenSlots[i] = true
			tokenCount++
			return i
		}
	}
	return -1
}

func releaseToken(slot int) {
	tokenMu.Lock()
	tokenSlots[slot] = false
	tokenCount--
	tokenMu.Unlock()
}

// TokensInUse reports how many lattice tasks currently hold a worker
// token; exposed for tests and scheduler diagnostics.
func TokensInUse() int {
	tokenMu.Lock()
	defer tokenMu.Unlock()
	return tokenCount
}

// Group is a structured set of lattice-level tasks: spawn with Go, then
// Wait for all of them. The zero value is not usable; construct with
// NewGroup. A Group must not be reused after Wait returns.
type Group struct {
	name      string
	sp        *obs.Span
	nextTask  atomic.Int64
	wg        sync.WaitGroup
	panicOnce sync.Once
	panicked  any
}

// NewGroup opens a task group. The name labels the group's obs span
// (one span per group, covering spawn to Wait) and the task spans hung
// under it.
func NewGroup(name string) *Group {
	return &Group{name: name, sp: obs.Start("pool.group").SetStr("name", name)}
}

// Go submits one task. If a worker token is free the task runs on its
// own goroutine; otherwise it runs inline on the caller before Go
// returns, which keeps nested groups deadlock-free and guarantees
// forward progress under full load. Bodies of one group must write to
// disjoint locations; a panic in any body is re-raised by Wait.
func (g *Group) Go(body func()) {
	submitted := time.Now()
	if slot := tryToken(); slot >= 0 {
		obsGroupTasks.Add(1)
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			defer releaseToken(slot)
			g.run(body, slot, submitted)
		}()
		return
	}
	obsGroupInline.Add(1)
	g.run(body, -1, submitted)
}

// TaskPanic is the panic value Wait re-raises when a task body panicked:
// the original value plus the stack of the panicking task's goroutine,
// which the recover in the task runner would otherwise discard (Wait
// re-panics on the coordinator goroutine, whose stack says nothing about
// where the task failed).
type TaskPanic struct {
	// Value is the original panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

func (p *TaskPanic) Error() string {
	return fmt.Sprintf("pool: task panicked: %v\n\ntask stack:\n%s", p.Value, p.Stack)
}

func (p *TaskPanic) String() string { return p.Error() }

// Unwrap exposes the original panic value when it was an error.
func (p *TaskPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// run executes one task body with lattice-task accounting and panic
// capture (first panic wins; Wait re-raises it wrapped in *TaskPanic
// with the task goroutine's stack). The recover sits in its own defer so
// the lattice-active decrement — and, on the goroutine path in Go, the
// worker-token release — always run, keeping a panicking task from
// starving later groups of tokens or kernel shares.
//
// Each task gets a span parented under the group span — from any
// goroutine, via the explicit StartChild handle — carrying the group
// name, the task index within the group, the worker slot it ran on
// (-1 = inline on the submitter), and the queue wait between submission
// and execution start. Adopt binds the span to the executing goroutine
// so everything the body starts (engine spans, nested ForMax chunks)
// nests under its true task.
func (g *Group) run(body func(), slot int, submitted time.Time) {
	latticeActive.Add(1)
	defer latticeActive.Add(-1)
	defer func() {
		if r := recover(); r != nil {
			tp, ok := r.(*TaskPanic)
			if !ok {
				tp = &TaskPanic{Value: r, Stack: debug.Stack()}
			}
			g.panicOnce.Do(func() { g.panicked = tp })
		}
	}()
	obsTaskCount.Add(1)
	sp := g.sp.StartChild("pool.task")
	if sp != nil {
		sp.SetStr("group", g.name).
			SetInt("task", g.nextTask.Add(1)-1).
			SetInt("worker", int64(slot)).
			SetFloat("queue_wait_s", time.Since(submitted).Seconds())
		if slot >= 0 {
			sp.SetTrack(slot + 1)
		}
		sp.Adopt()
		defer sp.End()
	}
	body()
}

// Wait blocks until every submitted task has finished, then re-raises
// the first task panic, if any.
func (g *Group) Wait() {
	start := time.Now()
	g.wg.Wait()
	obsGroupWait.Add(time.Since(start).Seconds())
	g.sp.End()
	if g.panicked != nil {
		panic(g.panicked)
	}
}

// Tasks runs body(0..n-1) as one task group and waits for completion.
// The convenience form of NewGroup/Go/Wait for index-shaped fan-out
// (per-site merges, per-column preparation).
func Tasks(name string, n int, body func(i int)) {
	g := NewGroup(name)
	for i := 0; i < n; i++ {
		i := i
		g.Go(func() { body(i) })
	}
	g.Wait()
}
