package pool

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"gokoala/internal/obs"
)

// Lattice-level task groups. The worker pool's For/ForMax primitives
// parallelize a single kernel; Group parallelizes the layer above it —
// independent lattice tasks such as the two boundary-MPS sweeps of a
// cached expectation, the per-term strip contractions, or the gates of
// one checkerboard wave. Each task is a full algorithm step that runs
// kernels of its own, so groups and kernels share one hierarchical
// parallelism budget:
//
//   - A group task claims one worker token before it gets a goroutine of
//     its own; with no token free it runs inline on the submitting
//     goroutine (never blocking, so nested groups cannot deadlock).
//     Tokens bound the lattice-level goroutine count by the pool size.
//   - While lattice tasks are active, kernel-level splits (ForMax) see a
//     reduced worker share — Size()/activeTasks — so the product of
//     lattice-level and kernel-level parallelism stays at the pool size
//     instead of oversubscribing GOMAXPROCS.
//
// Determinism contract: a Group never reorders results by itself — tasks
// write to caller-indexed slots and callers reduce in fixed order — so
// lattice algorithms driven through groups produce bit-identical results
// for any worker count, provided each task draws its randomness from a
// task-private source (see einsumsvd.Fork).

// Scheduler observability: tasks handed their own goroutine, tasks run
// inline because every worker token was taken (token contention), and
// coordinator seconds spent waiting for group completion (idle time).
var (
	obsGroupTasks  = obs.NewCounter("pool.group.tasks")
	obsGroupInline = obs.NewCounter("pool.group.inline")
	obsGroupWait   = obs.NewFloatCounter("pool.group.wait_seconds")
)

// latticeActive counts group tasks currently executing (goroutine or
// inline). ForMax divides the kernel worker share by it.
var latticeActive atomic.Int64

// tokenMu guards the worker-token count. Tokens bound how many group
// tasks hold a private goroutine at once; the bound tracks Size() at
// acquisition time, so SetWorkers takes effect for new tasks immediately.
var (
	tokenMu     sync.Mutex
	tokensInUse int
)

func tryToken() bool {
	tokenMu.Lock()
	defer tokenMu.Unlock()
	if tokensInUse >= Size() {
		return false
	}
	tokensInUse++
	return true
}

func releaseToken() {
	tokenMu.Lock()
	tokensInUse--
	tokenMu.Unlock()
}

// TokensInUse reports how many lattice tasks currently hold a worker
// token; exposed for tests and scheduler diagnostics.
func TokensInUse() int {
	tokenMu.Lock()
	defer tokenMu.Unlock()
	return tokensInUse
}

// Group is a structured set of lattice-level tasks: spawn with Go, then
// Wait for all of them. The zero value is not usable; construct with
// NewGroup. A Group must not be reused after Wait returns.
type Group struct {
	sp        *obs.Span
	wg        sync.WaitGroup
	panicOnce sync.Once
	panicked  any
}

// NewGroup opens a task group. The name labels the group's obs span
// (one span per group, covering spawn to Wait).
func NewGroup(name string) *Group {
	return &Group{sp: obs.Start("pool.group").SetStr("name", name)}
}

// Go submits one task. If a worker token is free the task runs on its
// own goroutine; otherwise it runs inline on the caller before Go
// returns, which keeps nested groups deadlock-free and guarantees
// forward progress under full load. Bodies of one group must write to
// disjoint locations; a panic in any body is re-raised by Wait.
func (g *Group) Go(body func()) {
	if tryToken() {
		obsGroupTasks.Add(1)
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			defer releaseToken()
			g.run(body)
		}()
		return
	}
	obsGroupInline.Add(1)
	g.run(body)
}

// TaskPanic is the panic value Wait re-raises when a task body panicked:
// the original value plus the stack of the panicking task's goroutine,
// which the recover in the task runner would otherwise discard (Wait
// re-panics on the coordinator goroutine, whose stack says nothing about
// where the task failed).
type TaskPanic struct {
	// Value is the original panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

func (p *TaskPanic) Error() string {
	return fmt.Sprintf("pool: task panicked: %v\n\ntask stack:\n%s", p.Value, p.Stack)
}

func (p *TaskPanic) String() string { return p.Error() }

// Unwrap exposes the original panic value when it was an error.
func (p *TaskPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// run executes one task body with lattice-task accounting and panic
// capture (first panic wins; Wait re-raises it wrapped in *TaskPanic
// with the task goroutine's stack). The recover sits in its own defer so
// the lattice-active decrement — and, on the goroutine path in Go, the
// worker-token release — always run, keeping a panicking task from
// starving later groups of tokens or kernel shares.
func (g *Group) run(body func()) {
	latticeActive.Add(1)
	defer latticeActive.Add(-1)
	defer func() {
		if r := recover(); r != nil {
			tp, ok := r.(*TaskPanic)
			if !ok {
				tp = &TaskPanic{Value: r, Stack: debug.Stack()}
			}
			g.panicOnce.Do(func() { g.panicked = tp })
		}
	}()
	body()
}

// Wait blocks until every submitted task has finished, then re-raises
// the first task panic, if any.
func (g *Group) Wait() {
	start := time.Now()
	g.wg.Wait()
	obsGroupWait.Add(time.Since(start).Seconds())
	g.sp.End()
	if g.panicked != nil {
		panic(g.panicked)
	}
}

// Tasks runs body(0..n-1) as one task group and waits for completion.
// The convenience form of NewGroup/Go/Wait for index-shaped fan-out
// (per-site merges, per-column preparation).
func Tasks(name string, n int, body func(i int)) {
	g := NewGroup(name)
	for i := 0; i < n; i++ {
		i := i
		g.Go(func() { body(i) })
	}
	g.Wait()
}
