package pool

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestTasksRunsAllIndices(t *testing.T) {
	defer SetWorkers(0)
	for _, workers := range []int{1, 2, 4, 8} {
		SetWorkers(workers)
		const n = 100
		got := make([]int32, n)
		Tasks("test", n, func(i int) { atomic.AddInt32(&got[i], 1) })
		for i, c := range got {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times, want 1", workers, i, c)
			}
		}
	}
}

func TestGroupSlotWritesAreOrdered(t *testing.T) {
	// The determinism contract: tasks write caller-indexed slots, the
	// caller reduces in index order, so the reduction is identical for
	// every worker count.
	defer SetWorkers(0)
	var want float64
	for _, workers := range []int{1, 2, 4, 8} {
		SetWorkers(workers)
		const n = 64
		vals := make([]float64, n)
		g := NewGroup("reduce")
		for i := 0; i < n; i++ {
			i := i
			g.Go(func() { vals[i] = 1.0 / float64(i+1) })
		}
		g.Wait()
		sum := 0.0
		for _, v := range vals {
			sum += v
		}
		if workers == 1 {
			want = sum
			continue
		}
		if sum != want {
			t.Fatalf("workers=%d: sum %v differs from single-worker %v", workers, sum, want)
		}
	}
}

func TestTokenAccounting(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(2)
	if n := TokensInUse(); n != 0 {
		t.Fatalf("tokens in use before any group: %d", n)
	}
	release := make(chan struct{})
	started := make(chan struct{}, 2)
	g := NewGroup("hold")
	// Two tasks claim both tokens and park.
	for i := 0; i < 2; i++ {
		g.Go(func() {
			started <- struct{}{}
			<-release
		})
	}
	<-started
	<-started
	if n := TokensInUse(); n != 2 {
		t.Fatalf("tokens in use with 2 parked tasks: %d, want 2", n)
	}
	// A third task must fall back inline (no token left) rather than
	// block; if it were queued behind the parked tasks this would hang.
	ranInline := false
	g.Go(func() { ranInline = true })
	if !ranInline {
		t.Fatal("third task did not run inline with all tokens taken")
	}
	close(release)
	g.Wait()
	if n := TokensInUse(); n != 0 {
		t.Fatalf("tokens in use after Wait: %d", n)
	}
}

func TestNestedGroupsComplete(t *testing.T) {
	// Nested fan-out must not deadlock even when the inner groups far
	// exceed the token budget: token-less tasks run inline.
	defer SetWorkers(0)
	SetWorkers(2)
	var count atomic.Int64
	Tasks("outer", 8, func(i int) {
		Tasks("inner", 8, func(j int) {
			count.Add(1)
		})
	})
	if got := count.Load(); got != 64 {
		t.Fatalf("nested tasks ran %d bodies, want 64", got)
	}
	if n := TokensInUse(); n != 0 {
		t.Fatalf("tokens leaked after nested groups: %d", n)
	}
}

func TestGroupPanicPropagates(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(4)
	g := NewGroup("panic")
	for i := 0; i < 4; i++ {
		i := i
		g.Go(func() {
			if i == 2 {
				panic("boom")
			}
		})
	}
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("Wait recovered %v, want boom", r)
		}
		if n := TokensInUse(); n != 0 {
			t.Fatalf("tokens leaked after panic: %d", n)
		}
	}()
	g.Wait()
	t.Fatal("Wait returned without panicking")
}

func TestKernelShareUnderLatticeTasks(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(8)
	if got := kernelShare(); got != 8 {
		t.Fatalf("idle kernelShare = %d, want 8", got)
	}
	var entered sync.WaitGroup
	entered.Add(2)
	proceed := make(chan struct{})
	g := NewGroup("share")
	g.Go(func() { entered.Done(); <-proceed })
	g.Go(func() { entered.Done(); <-proceed })
	entered.Wait()
	// Both tasks active: kernels see half the pool.
	if got := kernelShare(); got != 4 {
		t.Fatalf("kernelShare with 2 active lattice tasks = %d, want 4", got)
	}
	close(proceed)
	g.Wait()
	if got := kernelShare(); got != 8 {
		t.Fatalf("kernelShare after Wait = %d, want 8", got)
	}
}

func TestForMaxInsideGroupStillCoversRange(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(4)
	Tasks("cover", 4, func(i int) {
		const n = 1000
		marks := make([]int32, n)
		ForMax(0, n, 1, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				atomic.AddInt32(&marks[k], 1)
			}
		})
		for k, c := range marks {
			if c != 1 {
				panic("index not covered exactly once: " + string(rune(k)))
			}
		}
	})
}
