package pool

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestTasksRunsAllIndices(t *testing.T) {
	defer SetWorkers(0)
	for _, workers := range []int{1, 2, 4, 8} {
		SetWorkers(workers)
		const n = 100
		got := make([]int32, n)
		Tasks("test", n, func(i int) { atomic.AddInt32(&got[i], 1) })
		for i, c := range got {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times, want 1", workers, i, c)
			}
		}
	}
}

func TestGroupSlotWritesAreOrdered(t *testing.T) {
	// The determinism contract: tasks write caller-indexed slots, the
	// caller reduces in index order, so the reduction is identical for
	// every worker count.
	defer SetWorkers(0)
	var want float64
	for _, workers := range []int{1, 2, 4, 8} {
		SetWorkers(workers)
		const n = 64
		vals := make([]float64, n)
		g := NewGroup("reduce")
		for i := 0; i < n; i++ {
			i := i
			g.Go(func() { vals[i] = 1.0 / float64(i+1) })
		}
		g.Wait()
		sum := 0.0
		for _, v := range vals {
			sum += v
		}
		if workers == 1 {
			want = sum
			continue
		}
		if sum != want {
			t.Fatalf("workers=%d: sum %v differs from single-worker %v", workers, sum, want)
		}
	}
}

func TestTokenAccounting(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(2)
	if n := TokensInUse(); n != 0 {
		t.Fatalf("tokens in use before any group: %d", n)
	}
	release := make(chan struct{})
	started := make(chan struct{}, 2)
	g := NewGroup("hold")
	// Two tasks claim both tokens and park.
	for i := 0; i < 2; i++ {
		g.Go(func() {
			started <- struct{}{}
			<-release
		})
	}
	<-started
	<-started
	if n := TokensInUse(); n != 2 {
		t.Fatalf("tokens in use with 2 parked tasks: %d, want 2", n)
	}
	// A third task must fall back inline (no token left) rather than
	// block; if it were queued behind the parked tasks this would hang.
	ranInline := false
	g.Go(func() { ranInline = true })
	if !ranInline {
		t.Fatal("third task did not run inline with all tokens taken")
	}
	close(release)
	g.Wait()
	if n := TokensInUse(); n != 0 {
		t.Fatalf("tokens in use after Wait: %d", n)
	}
}

func TestNestedGroupsComplete(t *testing.T) {
	// Nested fan-out must not deadlock even when the inner groups far
	// exceed the token budget: token-less tasks run inline.
	defer SetWorkers(0)
	SetWorkers(2)
	var count atomic.Int64
	Tasks("outer", 8, func(i int) {
		Tasks("inner", 8, func(j int) {
			count.Add(1)
		})
	})
	if got := count.Load(); got != 64 {
		t.Fatalf("nested tasks ran %d bodies, want 64", got)
	}
	if n := TokensInUse(); n != 0 {
		t.Fatalf("tokens leaked after nested groups: %d", n)
	}
}

func TestGroupPanicPropagates(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(4)
	g := NewGroup("panic")
	for i := 0; i < 4; i++ {
		i := i
		g.Go(func() {
			if i == 2 {
				panic("boom")
			}
		})
	}
	defer func() {
		r := recover()
		tp, ok := r.(*TaskPanic)
		if !ok {
			t.Fatalf("Wait recovered %T %v, want *TaskPanic", r, r)
		}
		if tp.Value != "boom" {
			t.Fatalf("TaskPanic.Value = %v, want boom", tp.Value)
		}
		// The re-raised panic must carry the panicking task's stack, not
		// the coordinator's: the frame of the task closure below is the
		// evidence a debugger actually needs.
		if !strings.Contains(string(tp.Stack), "TestGroupPanicPropagates") {
			t.Fatalf("TaskPanic.Stack does not reference the task body:\n%s", tp.Stack)
		}
		if n := TokensInUse(); n != 0 {
			t.Fatalf("tokens leaked after panic: %d", n)
		}
	}()
	g.Wait()
	t.Fatal("Wait returned without panicking")
}

func TestGroupPanicInlinePathAlsoWrapped(t *testing.T) {
	// With zero tokens free every Go runs inline on the caller; the panic
	// unwinds through run's recover on the submitting goroutine and must
	// still come back from Wait as a *TaskPanic with a stack.
	defer SetWorkers(0)
	SetWorkers(1)
	release := make(chan struct{})
	started := make(chan struct{})
	holder := NewGroup("holder")
	holder.Go(func() { close(started); <-release })
	<-started

	g := NewGroup("inline-panic")
	func() {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Go re-raised the inline panic instead of deferring it to Wait: %v", r)
			}
		}()
		g.Go(func() { panic("inline-boom") })
	}()
	func() {
		defer func() {
			tp, ok := recover().(*TaskPanic)
			if !ok || tp.Value != "inline-boom" {
				t.Fatalf("Wait recovered %v, want TaskPanic{inline-boom}", tp)
			}
			if !strings.Contains(string(tp.Stack), "TestGroupPanicInlinePathAlsoWrapped") {
				t.Fatalf("inline TaskPanic.Stack does not reference the task body:\n%s", tp.Stack)
			}
		}()
		g.Wait()
		t.Fatal("Wait returned without panicking")
	}()
	close(release)
	holder.Wait()
}

func TestGroupPanicDoesNotStarveLaterGroups(t *testing.T) {
	// A panicking lattice task must release its worker token and leave
	// the lattice-active budget balanced, so subsequent task groups and
	// kernel ForMax splits still get the full pool. Repeat to catch
	// leaks that only starve after several failures.
	defer SetWorkers(0)
	SetWorkers(2)
	for round := 0; round < 5; round++ {
		func() {
			defer func() { recover() }()
			Tasks("failing", 4, func(i int) {
				if i%2 == 1 {
					panic(i)
				}
			})
		}()
		if n := TokensInUse(); n != 0 {
			t.Fatalf("round %d: %d tokens leaked by panicking tasks", round, n)
		}
		if got := kernelShare(); got != 2 {
			t.Fatalf("round %d: kernelShare = %d after panics, want 2", round, got)
		}
		// The pool must still execute fresh work to completion.
		var count atomic.Int64
		Tasks("after", 8, func(i int) { count.Add(1) })
		if count.Load() != 8 {
			t.Fatalf("round %d: follow-up group ran %d tasks, want 8", round, count.Load())
		}
		covered := make([]int32, 256)
		ForMax(0, len(covered), 1, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				atomic.AddInt32(&covered[k], 1)
			}
		})
		for k, c := range covered {
			if c != 1 {
				t.Fatalf("round %d: ForMax covered index %d %d times", round, k, c)
			}
		}
	}
}

func TestKernelShareUnderLatticeTasks(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(8)
	if got := kernelShare(); got != 8 {
		t.Fatalf("idle kernelShare = %d, want 8", got)
	}
	var entered sync.WaitGroup
	entered.Add(2)
	proceed := make(chan struct{})
	g := NewGroup("share")
	g.Go(func() { entered.Done(); <-proceed })
	g.Go(func() { entered.Done(); <-proceed })
	entered.Wait()
	// Both tasks active: kernels see half the pool.
	if got := kernelShare(); got != 4 {
		t.Fatalf("kernelShare with 2 active lattice tasks = %d, want 4", got)
	}
	close(proceed)
	g.Wait()
	if got := kernelShare(); got != 8 {
		t.Fatalf("kernelShare after Wait = %d, want 8", got)
	}
}

func TestForMaxInsideGroupStillCoversRange(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(4)
	Tasks("cover", 4, func(i int) {
		const n = 1000
		marks := make([]int32, n)
		ForMax(0, n, 1, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				atomic.AddInt32(&marks[k], 1)
			}
		})
		for k, c := range marks {
			if c != 1 {
				panic("index not covered exactly once: " + string(rune(k)))
			}
		}
	})
}
