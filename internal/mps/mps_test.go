package mps

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"gokoala/internal/backend"
	"gokoala/internal/einsumsvd"
	"gokoala/internal/tensor"
)

var eng = backend.NewDense()

// amplitudes contracts an MPS to its full 2^... amplitude tensor (small
// sizes only), the brute-force oracle.
func amplitudes(t *testing.T, s *MPS) *tensor.Dense {
	t.Helper()
	cur := s.Sites[0] // [1, p, b] -> treat as [P..., b]
	shape := []int{s.Sites[0].Dim(1)}
	cur = cur.Reshape(shape[0], s.Sites[0].Dim(2))
	for i := 1; i < s.Len(); i++ {
		st := s.Sites[i]
		cur = eng.Einsum("ab,bpc->apc", cur, st)
		sh := cur.Shape()
		cur = cur.Reshape(sh[0]*sh[1], sh[2])
		shape = append(shape, st.Dim(1))
	}
	return cur.Reshape(append([]int{}, shape...)...)
}

// applyMPODense applies an MPO to the dense amplitude tensor directly.
func applyMPODense(t *testing.T, o *MPO, amps *tensor.Dense) *tensor.Dense {
	t.Helper()
	// contract the MPO to a dense operator [outs..., ins...]
	cur := o.Sites[0].Reshape(o.Sites[0].Dim(1), o.Sites[0].Dim(2), o.Sites[0].Dim(3)) // [q p b]
	var outs, ins []int
	outs = append(outs, o.Sites[0].Dim(1))
	ins = append(ins, o.Sites[0].Dim(2))
	for i := 1; i < len(o.Sites); i++ {
		st := o.Sites[i]
		cur = eng.Einsum("ab,bqpc->aqpc", cur.Reshape(cur.Size()/o.Sites[i-1].Dim(3), o.Sites[i-1].Dim(3)), st)
		sh := cur.Shape()
		cur = cur.Reshape(sh[0]*sh[1]*sh[2], sh[3])
		outs = append(outs, st.Dim(1))
		ins = append(ins, st.Dim(2))
	}
	// cur rows are interleaved (q1 p1 q2 p2 ...); unravel to [q1 p1 q2 p2...]
	shape := []int{}
	for i := range outs {
		shape = append(shape, outs[i], ins[i])
	}
	op := cur.Reshape(append([]int{}, shape...)...)
	// permute to [q1 q2 ... p1 p2 ...]
	n := len(outs)
	perm := make([]int, 0, 2*n)
	for i := 0; i < n; i++ {
		perm = append(perm, 2*i)
	}
	for i := 0; i < n; i++ {
		perm = append(perm, 2*i+1)
	}
	op = op.Transpose(perm...)
	dimOut, dimIn := 1, 1
	for i := 0; i < n; i++ {
		dimOut *= outs[i]
		dimIn *= ins[i]
	}
	res := tensor.MatVec(op.Reshape(dimOut, dimIn), amps.Reshape(dimIn))
	outShape := append([]int{}, outs...)
	return res.Reshape(outShape...)
}

func randomMPO(rng *rand.Rand, n, d, bond int) *MPO {
	sites := make([]*tensor.Dense, n)
	left := 1
	for i := 0; i < n; i++ {
		right := bond
		if i == n-1 {
			right = 1
		}
		sites[i] = tensor.Rand(rng, left, d, d, right)
		left = right
	}
	return NewMPO(sites)
}

func TestProductStateAmplitudes(t *testing.T) {
	s := Product([][]complex128{{1, 0}, {0, 1}, {1 / complex(math.Sqrt2, 0), 1 / complex(math.Sqrt2, 0)}})
	amps := amplitudes(t, s)
	if cmplx.Abs(amps.At(0, 1, 0)-complex(1/math.Sqrt2, 0)) > 1e-14 {
		t.Fatalf("amplitude(010) = %v", amps.At(0, 1, 0))
	}
	if amps.At(1, 1, 0) != 0 {
		t.Fatal("amplitude(110) should vanish")
	}
}

func TestInnerAndNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := Random(rng, 4, 2, 3)
	amps := amplitudes(t, s)
	wantNorm := amps.Norm()
	if got := s.Norm(eng); math.Abs(got-wantNorm) > 1e-10*wantNorm {
		t.Fatalf("Norm = %g, want %g", got, wantNorm)
	}
	u := Random(rng, 4, 2, 2)
	wantInner := amplitudes(t, u).Dot(amps)
	if got := Inner(eng, u, s); cmplx.Abs(got-wantInner) > 1e-10*cmplx.Abs(wantInner) {
		t.Fatalf("Inner = %v, want %v", got, wantInner)
	}
}

func TestIdentityMPOPreservesState(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := Random(rng, 4, 2, 3)
	id := IdentityMPO(4, 2)
	for name, apply := range map[string]func() *MPS{
		"exact": func() *MPS { return ApplyMPOExact(eng, s, id) },
		"zipup": func() *MPS {
			return ApplyMPOZipUp(eng, s, id, 16, einsumsvd.Explicit{})
		},
	} {
		got := amplitudes(t, apply())
		want := amplitudes(t, s)
		if !tensor.AllClose(got, want, 1e-9, 1e-9) {
			t.Errorf("%s: identity MPO changed the state", name)
		}
	}
}

func TestApplyMPOExactMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := Random(rng, 4, 2, 2)
	o := randomMPO(rng, 4, 2, 3)
	got := amplitudes(t, ApplyMPOExact(eng, s, o))
	want := applyMPODense(t, o, amplitudes(t, s))
	if !tensor.AllClose(got, want, 1e-9, 1e-9) {
		t.Fatal("exact MPO application disagrees with dense oracle")
	}
}

func TestZipUpLargeBondIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := Random(rng, 5, 2, 2)
	o := randomMPO(rng, 5, 2, 2)
	want := applyMPODense(t, o, amplitudes(t, s))
	for name, st := range map[string]einsumsvd.Strategy{
		"explicit": einsumsvd.Explicit{},
		"implicit": einsumsvd.ImplicitRand{NIter: 3, Oversample: 4, Rng: rng},
	} {
		got := amplitudes(t, ApplyMPOZipUp(eng, s, o, 64, st))
		if !tensor.AllClose(got, want, 1e-7, 1e-7) {
			t.Errorf("%s: untruncated zip-up should be exact, dev %g", name, got.Sub(want).MaxAbs())
		}
	}
}

func TestZipUpTruncationErrorDecreasesWithBond(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := Random(rng, 6, 2, 3)
	o := randomMPO(rng, 6, 2, 3)
	want := applyMPODense(t, o, amplitudes(t, s))
	wn := want.Norm()
	var prev float64 = math.Inf(1)
	for _, m := range []int{2, 4, 8, 32} {
		got := amplitudes(t, ApplyMPOZipUp(eng, s, o, m, einsumsvd.Explicit{}))
		err := got.Sub(want).Norm() / wn
		if err > prev*1.5 { // allow small non-monotonic wiggle
			t.Fatalf("truncation error grew with bond: m=%d err=%g prev=%g", m, err, prev)
		}
		prev = err
	}
	if prev > 1e-8 {
		t.Fatalf("final error %g should be near zero", prev)
	}
}

func TestZipUpRespectsBondCap(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := Random(rng, 6, 2, 4)
	o := randomMPO(rng, 6, 2, 4)
	got := ApplyMPOZipUp(eng, s, o, 5, einsumsvd.Explicit{})
	if got.MaxBond() > 5 {
		t.Fatalf("bond %d exceeds cap 5", got.MaxBond())
	}
}

func TestZipUpSingleSite(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := Random(rng, 1, 2, 1)
	o := randomMPO(rng, 1, 2, 1)
	got := amplitudes(t, ApplyMPOZipUp(eng, s, o, 4, einsumsvd.Explicit{}))
	want := applyMPODense(t, o, amplitudes(t, s))
	if !tensor.AllClose(got, want, 1e-10, 1e-10) {
		t.Fatal("single-site MPO application wrong")
	}
}

func TestCompressPreservesStateAtFullRank(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := Random(rng, 5, 2, 4)
	c := Compress(eng, s, 64, einsumsvd.Explicit{})
	if !tensor.AllClose(amplitudes(t, c), amplitudes(t, s), 1e-9, 1e-9) {
		t.Fatal("full-rank compression changed the state")
	}
	c2 := Compress(eng, s, 2, einsumsvd.Explicit{})
	if c2.MaxBond() > 2 {
		t.Fatalf("compression ignored bond cap: %d", c2.MaxBond())
	}
}

func TestContractChain(t *testing.T) {
	// MPS with phys dims 1 is a chain of matrices; the contraction is the
	// product of those matrices summed over boundary (dims 1).
	a := tensor.FromData([]complex128{1, 2, 3, 4}, 1, 1, 4)
	b := tensor.FromData([]complex128{5, 6, 7, 8}, 4, 1, 1)
	s := NewMPS([]*tensor.Dense{a, b})
	got := s.ContractChain(eng)
	if got != 1*5+2*6+3*7+4*8 {
		t.Fatalf("ContractChain = %v", got)
	}
}

func TestValidationPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewMPS(nil) },
		func() { NewMPS([]*tensor.Dense{tensor.New(2, 2)}) },                         // rank
		func() { NewMPS([]*tensor.Dense{tensor.New(2, 2, 1)}) },                      // left boundary
		func() { NewMPS([]*tensor.Dense{tensor.New(1, 2, 3), tensor.New(2, 2, 1)}) }, // bond mismatch
		func() { NewMPO([]*tensor.Dense{tensor.New(1, 2, 2)}) },                      // rank
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
