// Package mps implements matrix product states and operators (paper
// section II-B) with the approximate MPO application algorithms the
// boundary-MPS PEPS contraction is built on: exact application and the
// zip-up truncation of paper Algorithm 3, parameterized by an einsumsvd
// strategy (explicit SVD for BMPS, implicit randomized SVD for IBMPS).
//
// Index conventions:
//
//	MPS site:  [left bond, physical, right bond]
//	MPO site:  [left bond, physical out, physical in, right bond]
//
// Boundary bonds have dimension 1.
package mps

import (
	"fmt"
	"math"
	"math/rand"

	"gokoala/internal/backend"
	"gokoala/internal/einsumsvd"
	"gokoala/internal/obs"
	"gokoala/internal/tensor"
)

// MPS is a matrix product state.
type MPS struct {
	Sites []*tensor.Dense
}

// MPO is a matrix product operator.
type MPO struct {
	Sites []*tensor.Dense
}

// NewMPS validates site shapes and boundary bonds and wraps them.
func NewMPS(sites []*tensor.Dense) *MPS {
	if len(sites) == 0 {
		panic("mps: empty MPS")
	}
	for i, s := range sites {
		if s.Rank() != 3 {
			panic(fmt.Sprintf("mps: site %d has rank %d, want 3", i, s.Rank()))
		}
		if i > 0 && sites[i-1].Dim(2) != s.Dim(0) {
			panic(fmt.Sprintf("mps: bond mismatch between sites %d and %d", i-1, i))
		}
	}
	if sites[0].Dim(0) != 1 || sites[len(sites)-1].Dim(2) != 1 {
		panic("mps: boundary bonds must have dimension 1")
	}
	return &MPS{Sites: sites}
}

// NewMPO validates site shapes and wraps them.
func NewMPO(sites []*tensor.Dense) *MPO {
	if len(sites) == 0 {
		panic("mps: empty MPO")
	}
	for i, s := range sites {
		if s.Rank() != 4 {
			panic(fmt.Sprintf("mps: MPO site %d has rank %d, want 4", i, s.Rank()))
		}
		if i > 0 && sites[i-1].Dim(3) != s.Dim(0) {
			panic(fmt.Sprintf("mps: MPO bond mismatch between sites %d and %d", i-1, i))
		}
	}
	if sites[0].Dim(0) != 1 || sites[len(sites)-1].Dim(3) != 1 {
		panic("mps: MPO boundary bonds must have dimension 1")
	}
	return &MPO{Sites: sites}
}

// Len returns the number of sites.
func (s *MPS) Len() int { return len(s.Sites) }

// MaxBond returns the largest internal bond dimension.
func (s *MPS) MaxBond() int {
	m := 1
	for _, t := range s.Sites {
		if t.Dim(2) > m {
			m = t.Dim(2)
		}
	}
	return m
}

// Clone returns a deep copy.
func (s *MPS) Clone() *MPS {
	out := make([]*tensor.Dense, len(s.Sites))
	for i, t := range s.Sites {
		out[i] = t.Clone()
	}
	return &MPS{Sites: out}
}

// Product returns the product state with the given per-site vectors.
func Product(vectors [][]complex128) *MPS {
	sites := make([]*tensor.Dense, len(vectors))
	for i, v := range vectors {
		sites[i] = tensor.FromData(append([]complex128(nil), v...), 1, len(v), 1)
	}
	return NewMPS(sites)
}

// Random returns an MPS of n sites with physical dimension d and uniform
// internal bond dimension bond (clipped near the boundary to keep shapes
// consistent with open boundary conditions).
func Random(rng *rand.Rand, n, d, bond int) *MPS {
	sites := make([]*tensor.Dense, n)
	left := 1
	for i := 0; i < n; i++ {
		right := bond
		if i == n-1 {
			right = 1
		}
		sites[i] = tensor.Rand(rng, left, d, right)
		left = right
	}
	return NewMPS(sites)
}

// Inner returns <s|t>, contracting the two states site by site with
// transfer matrices.
func Inner(eng backend.Engine, s, t *MPS) complex128 {
	if s.Len() != t.Len() {
		panic("mps: length mismatch")
	}
	// env[a, b]: a = bond of conj(s), b = bond of t
	env := tensor.Ones(1, 1)
	for i := range s.Sites {
		sc := s.Sites[i].Conj()
		env = eng.Einsum("ab,apc,bpd->cd", env, sc, t.Sites[i])
	}
	return env.Item()
}

// CloseWith zips a top boundary MPS against a bottom boundary MPS,
// pairing their physical legs site by site without conjugation (the
// bottom boundary comes from a vertically flipped sweep, which already
// accounts for orientation). This closes a bisected boundary-MPS
// contraction: the top sweep absorbs rows 0..mid-1, the bottom sweep
// absorbs the rest, and CloseWith joins the two fronts at the cut.
func CloseWith(eng backend.Engine, top, bottom *MPS) complex128 {
	if top.Len() != bottom.Len() {
		panic("mps: CloseWith length mismatch")
	}
	env := tensor.Ones(1, 1)
	for i := range top.Sites {
		env = eng.Einsum("ac,apb,cpd->bd", env, top.Sites[i], bottom.Sites[i])
	}
	return env.Item()
}

// Norm returns sqrt(<s|s>).
func (s *MPS) Norm(eng backend.Engine) float64 {
	return math.Sqrt(math.Max(0, real(Inner(eng, s, s))))
}

// ContractChain contracts an MPS whose physical dimensions are all 1 to a
// scalar (the final step of boundary-MPS contraction, Algorithm 2 step 5).
func (s *MPS) ContractChain(eng backend.Engine) complex128 {
	env := tensor.Ones(1)
	for _, t := range s.Sites {
		if t.Dim(1) != 1 {
			panic(fmt.Sprintf("mps: ContractChain requires physical dimension 1, got %v", t.Shape()))
		}
		env = eng.Einsum("a,apb->b", env, t)
	}
	return env.Item()
}

// ApplyMPOExact applies an MPO to the MPS without truncation; bond
// dimensions multiply. Used by the exact PEPS contraction baseline.
func ApplyMPOExact(eng backend.Engine, s *MPS, o *MPO) *MPS {
	if s.Len() != len(o.Sites) {
		panic("mps: MPO length mismatch")
	}
	sp := obs.Start("mps.apply_exact").SetInt("bond", int64(s.MaxBond()))
	defer sp.End()
	sites := make([]*tensor.Dense, s.Len())
	for i := range s.Sites {
		st, ot := s.Sites[i], o.Sites[i]
		// [a p b] x [c q p d] -> [(a c) q (b d)]
		v := eng.Einsum("apb,cqpd->acqbd", st, ot)
		sh := v.Shape()
		sites[i] = v.Reshape(sh[0]*sh[1], sh[2], sh[3]*sh[4])
	}
	return NewMPS(sites)
}

// ApplyMPOZipUp applies an MPO to the MPS with bond truncation m using
// the zip-up sweep of paper Algorithm 3: the first pair is contracted and
// split by einsumsvd, and the sigma-carrying factor is zipped into the
// next pair. With an Explicit strategy this is the BMPS building block;
// with ImplicitRand it is the IBMPS building block.
func ApplyMPOZipUp(eng backend.Engine, s *MPS, o *MPO, m int, st einsumsvd.Strategy) *MPS {
	n := s.Len()
	if n != len(o.Sites) {
		panic("mps: MPO length mismatch")
	}
	sp := obs.Start("mps.zipup").SetInt("m", int64(m)).SetInt("bond", int64(s.MaxBond()))
	defer sp.End()
	if n == 1 {
		v := eng.Einsum("apb,cqpd->qbd", s.Sites[0], o.Sites[0])
		sh := v.Shape()
		return NewMPS([]*tensor.Dense{v.Reshape(1, sh[0], sh[1]*sh[2])})
	}
	out := make([]*tensor.Dense, n)
	// First site: contract S_1 O_1 over phys and split. Left boundary
	// bonds (dim 1) are summed out by the einsum inside the strategy.
	a, carry, _ := einsumsvd.MustFactor(st, eng, "apb,cqpd->qx|xbd", m, s.Sites[0], o.Sites[0])
	sh := a.Shape()
	out[0] = a.Reshape(1, sh[0], sh[1])
	for i := 1; i < n-1; i++ {
		// carry[g, b, d] zips with S_i[b, p, e] and O_i[d, q, p, f].
		a, carry, _ = einsumsvd.MustFactor(st, eng, "gbd,bpe,dqpf->gqx|xef", m, carry, s.Sites[i], o.Sites[i])
		out[i] = a
	}
	// Last site: right boundary bonds are dim 1 and summed away.
	v := eng.Einsum("gbd,bpe,dqpf->gq", carry, s.Sites[n-1], o.Sites[n-1])
	sh = v.Shape()
	out[n-1] = v.Reshape(sh[0], sh[1], 1)
	return NewMPS(out)
}

// Compress truncates every internal bond of the MPS to at most m by a
// left-to-right sweep of einsumsvd splits.
func Compress(eng backend.Engine, s *MPS, m int, st einsumsvd.Strategy) *MPS {
	n := s.Len()
	if n == 1 {
		return s.Clone()
	}
	sp := obs.Start("mps.compress").SetInt("m", int64(m))
	defer sp.End()
	out := make([]*tensor.Dense, n)
	carry := s.Sites[0]
	for i := 0; i < n-1; i++ {
		a, c, _ := einsumsvd.MustFactor(st, eng, "apb,bqc->apx|xqc", m, carry, s.Sites[i+1])
		out[i] = a
		carry = c
	}
	out[n-1] = carry
	return NewMPS(out)
}

// IdentityMPO returns the identity operator on n sites of physical
// dimension d.
func IdentityMPO(n, d int) *MPO {
	sites := make([]*tensor.Dense, n)
	id := tensor.Eye(d)
	for i := range sites {
		sites[i] = id.Reshape(1, d, d, 1).Clone()
	}
	return NewMPO(sites)
}
