package mps

import (
	"gokoala/internal/backend"
	"gokoala/internal/einsumsvd"
	"gokoala/internal/obs"
	"gokoala/internal/tensor"
)

// BondDims returns the internal bond dimensions (length n-1).
func (s *MPS) BondDims() []int {
	out := make([]int, 0, len(s.Sites)-1)
	for i := 0; i < len(s.Sites)-1; i++ {
		out = append(out, s.Sites[i].Dim(2))
	}
	return out
}

// CanonicalizeLeft returns an equivalent MPS in left-canonical form:
// every site except the last is a left isometry (sum_{l,p} conj(A)[l,p,a]
// A[l,p,b] = delta_{ab}), with the state's norm concentrated in the last
// site. Produced by a left-to-right QR sweep.
func CanonicalizeLeft(eng backend.Engine, s *MPS) *MPS {
	sp := obs.Start("mps.canonicalize").SetStr("direction", "left")
	defer sp.End()
	n := s.Len()
	out := make([]*tensor.Dense, n)
	carry := s.Sites[0]
	for i := 0; i < n-1; i++ {
		q, r := eng.QRSplit(carry, 2) // rows (l, p), cols (right bond)
		out[i] = q
		carry = eng.Einsum("kb,bpc->kpc", r, s.Sites[i+1])
	}
	out[n-1] = carry
	return NewMPS(out)
}

// CanonicalizeRight is the mirror image: every site except the first is a
// right isometry, produced by a right-to-left sweep.
func CanonicalizeRight(eng backend.Engine, s *MPS) *MPS {
	sp := obs.Start("mps.canonicalize").SetStr("direction", "right")
	defer sp.End()
	n := s.Len()
	out := make([]*tensor.Dense, n)
	carry := s.Sites[n-1]
	for i := n - 1; i > 0; i-- {
		// Factor carry [a,p,b] with rows (p,b): transpose to [p,b,a],
		// QR gives Q [p,b,k] (right isometry after folding) and R [k,a].
		q, r := eng.QRSplit(carry.Transpose(1, 2, 0), 2)
		out[i] = q.Transpose(2, 0, 1) // [k, p, b]
		carry = eng.Einsum("apb,kb->apk", s.Sites[i-1], r)
	}
	out[0] = carry
	return NewMPS(out)
}

// CompressCanonical truncates every bond to at most m using the standard
// quasi-optimal scheme: left-canonicalize, then sweep right-to-left with
// truncated SVDs. In a canonical form each local truncation is globally
// optimal for that bond, unlike the single-pass Compress sweep.
func CompressCanonical(eng backend.Engine, s *MPS, m int) *MPS {
	n := s.Len()
	if n == 1 {
		return s.Clone()
	}
	sp := obs.Start("mps.compress").SetStr("mode", "canonical").SetInt("m", int64(m))
	defer sp.End()
	lc := CanonicalizeLeft(eng, s)
	out := make([]*tensor.Dense, n)
	carry := lc.Sites[n-1]
	st := einsumsvd.Explicit{Mode: einsumsvd.SigmaLeft}
	for i := n - 1; i > 0; i-- {
		// Split carry [a,p,b] into (a) x (p,b) with the new bond capped.
		b, a, _ := einsumsvd.MustFactor(st, eng, "apb->ax|xpb", m, carry)
		out[i] = a
		carry = eng.Einsum("lqc,cx->lqx", lc.Sites[i-1], b)
	}
	out[0] = carry
	return NewMPS(out)
}
