package mps

import (
	"math"
	"math/rand"
	"testing"

	"gokoala/internal/einsumsvd"
	"gokoala/internal/tensor"
)

func TestCanonicalizeLeftPreservesState(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := Random(rng, 5, 2, 3)
	c := CanonicalizeLeft(eng, s)
	if !tensor.AllClose(amplitudes(t, c), amplitudes(t, s), 1e-10, 1e-10) {
		t.Fatal("left canonicalization changed the state")
	}
	// Every site but the last is a left isometry.
	for i := 0; i < c.Len()-1; i++ {
		st := c.Sites[i]
		g := eng.Einsum("lpa,lpb->ab", st.Conj(), st)
		k := st.Dim(2)
		if !tensor.AllClose(g, tensor.Eye(k), 0, 1e-10) {
			t.Fatalf("site %d not a left isometry", i)
		}
	}
	// Norm concentrated in the last site.
	if got, want := c.Sites[c.Len()-1].Norm(), s.Norm(eng); math.Abs(got-want) > 1e-9*want {
		t.Fatalf("last-site norm %g, state norm %g", got, want)
	}
}

func TestCanonicalizeRightPreservesState(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := Random(rng, 4, 3, 2)
	c := CanonicalizeRight(eng, s)
	if !tensor.AllClose(amplitudes(t, c), amplitudes(t, s), 1e-10, 1e-10) {
		t.Fatal("right canonicalization changed the state")
	}
	for i := 1; i < c.Len(); i++ {
		st := c.Sites[i]
		g := eng.Einsum("apr,bpr->ab", st.Conj(), st)
		k := st.Dim(0)
		if !tensor.AllClose(g, tensor.Eye(k), 0, 1e-10) {
			t.Fatalf("site %d not a right isometry", i)
		}
	}
}

func TestCompressCanonicalExactAtFullRank(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := Random(rng, 5, 2, 4)
	c := CompressCanonical(eng, s, 64)
	if !tensor.AllClose(amplitudes(t, c), amplitudes(t, s), 1e-9, 1e-9) {
		t.Fatal("full-rank canonical compression changed the state")
	}
}

func TestCompressCanonicalRespectsCapAndBeatsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := Random(rng, 6, 2, 6)
	want := amplitudes(t, s)
	wn := want.Norm()

	canon := CompressCanonical(eng, s, 3)
	if canon.MaxBond() > 3 {
		t.Fatalf("canonical compression ignored cap: %d", canon.MaxBond())
	}
	errCanon := amplitudes(t, canon).Sub(want).Norm() / wn

	// The canonical scheme should be at least as accurate (up to noise)
	// as the single-pass sweep, and far from garbage.
	if errCanon > 0.9 {
		t.Fatalf("canonical compression error %g too large", errCanon)
	}
	naive := Compress(eng, s, 3, einsumsvd.Explicit{})
	errNaive := amplitudes(t, naive).Sub(want).Norm() / wn
	if errCanon > errNaive*1.2 {
		t.Fatalf("canonical compression (%g) should not lose badly to single-pass (%g)", errCanon, errNaive)
	}
}

func TestBondDims(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := Random(rng, 4, 2, 3)
	d := s.BondDims()
	if len(d) != 3 || d[0] != 3 || d[2] != 3 {
		t.Fatalf("BondDims = %v", d)
	}
}
