package einsum

import (
	"container/list"
	"strconv"
	"sync"
	"sync/atomic"

	"gokoala/internal/obs"
	"gokoala/internal/tensor"
)

// Plan cache: contraction hot loops (BMPS row absorption, expectation
// sweeps) evaluate the same handful of specs over tensors of unchanging
// shapes thousands of times. Compiled plans are memoized in a bounded
// LRU keyed on (spec, operand shapes) so the planning work runs once per
// unique signature.

// DefaultPlanCacheSize is the number of compiled plans retained; a
// simulation sweep uses a few dozen distinct signatures, so the default
// never evicts in practice while still bounding memory for adversarial
// spec streams.
const DefaultPlanCacheSize = 256

// Cache traffic observability. The obs counters appear in metrics dumps
// when observability is enabled; the atomics below back PlanCacheStats
// unconditionally so benchmarks can assert hit rates without enabling
// the full metrics layer.
var (
	obsPlanHits      = obs.NewCounter("einsum.plan.hits")
	obsPlanMisses    = obs.NewCounter("einsum.plan.misses")
	obsPlanEvictions = obs.NewCounter("einsum.plan.evictions")

	planHits, planMisses, planEvictions atomic.Int64
)

type planEntry struct {
	key  string
	plan *Plan
}

var (
	planMu    sync.Mutex
	planCap   = DefaultPlanCacheSize
	planLRU   list.List
	planIndex = map[string]*list.Element{}
)

// Plan kinds namespace the cache by the engine/tensor flavor that
// compiled the plan. Dense contractions and the per-block contractions
// of the block-sparse path can present identical (spec, shapes)
// signatures; tagging the key keeps their plans from colliding if the
// two lowerings ever diverge.
const (
	planKindDense byte = 'd'
	planKindSym   byte = 's'
)

// planKey encodes the plan kind, the spec, and every operand shape.
// Ranks are implied by the spec, so flat dimension lists with separators
// are unambiguous.
func planKey(kind byte, spec string, ops []*tensor.Dense) string {
	buf := make([]byte, 0, 2+len(spec)+16*len(ops))
	buf = append(buf, kind, '!')
	buf = append(buf, spec...)
	for _, op := range ops {
		buf = append(buf, '|')
		for _, d := range op.Shape() {
			buf = strconv.AppendInt(buf, int64(d), 10)
			buf = append(buf, ',')
		}
	}
	return string(buf)
}

// cachedPlan returns the compiled plan for (kind, spec, operand
// shapes), compiling and inserting it on a miss. Compilation happens
// outside the lock; concurrent first calls may compile twice, and the
// incumbent entry wins so all callers share one scratch pool.
func cachedPlan(kind byte, spec string, ops []*tensor.Dense) (*Plan, error) {
	key := planKey(kind, spec, ops)
	planMu.Lock()
	if el, ok := planIndex[key]; ok {
		planLRU.MoveToFront(el)
		p := el.Value.(*planEntry).plan
		planMu.Unlock()
		planHits.Add(1)
		obsPlanHits.Add(1)
		return p, nil
	}
	planMu.Unlock()
	planMisses.Add(1)
	obsPlanMisses.Add(1)

	shapes := make([][]int, len(ops))
	for i, op := range ops {
		shapes[i] = op.Shape()
	}
	p, err := Compile(spec, shapes)
	if err != nil {
		return nil, err
	}

	planMu.Lock()
	if el, ok := planIndex[key]; ok {
		planLRU.MoveToFront(el)
		p = el.Value.(*planEntry).plan
	} else {
		planIndex[key] = planLRU.PushFront(&planEntry{key, p})
		for planLRU.Len() > planCap {
			back := planLRU.Back()
			planLRU.Remove(back)
			delete(planIndex, back.Value.(*planEntry).key)
			planEvictions.Add(1)
			obsPlanEvictions.Add(1)
		}
	}
	planMu.Unlock()
	return p, nil
}

// PlanCacheStats returns the cumulative plan-cache hit, miss, and
// eviction counts since process start or the last ResetPlanCache.
func PlanCacheStats() (hits, misses, evictions int64) {
	return planHits.Load(), planMisses.Load(), planEvictions.Load()
}

// ResetPlanCache empties the plan cache and zeroes its statistics.
func ResetPlanCache() {
	planMu.Lock()
	planLRU.Init()
	planIndex = map[string]*list.Element{}
	planMu.Unlock()
	planHits.Store(0)
	planMisses.Store(0)
	planEvictions.Store(0)
}

// SetPlanCacheSize bounds the cache to n plans (minimum 1), evicting
// least-recently-used entries immediately if the cache is over the new
// bound.
func SetPlanCacheSize(n int) {
	if n < 1 {
		n = 1
	}
	planMu.Lock()
	planCap = n
	for planLRU.Len() > planCap {
		back := planLRU.Back()
		planLRU.Remove(back)
		delete(planIndex, back.Value.(*planEntry).key)
		planEvictions.Add(1)
		obsPlanEvictions.Add(1)
	}
	planMu.Unlock()
}
