package einsum

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"gokoala/internal/tensor"
)

// planEquivalenceCases spans the lowering space: plain pairwise GEMMs,
// batch letters, private sum-outs, scalar outputs, outer products,
// identity specs, traces to scalars, and the short-k GEMM + transpose
// shapes the plan compiler fuses into scatter ops.
var planEquivalenceCases = []struct {
	spec   string
	shapes [][]int
}{
	{"ij,jk->ik", [][]int{{3, 4}, {4, 5}}},
	{"bij,bjk->bik", [][]int{{2, 3, 4}, {2, 4, 5}}},
	{"ij,jk,kl->il", [][]int{{3, 4}, {4, 5}, {5, 3}}},
	{"ijk->ikj", [][]int{{2, 3, 4}}},
	{"ij->ij", [][]int{{3, 4}}},
	{"ijk->i", [][]int{{3, 4, 2}}},
	{"ij,ij->", [][]int{{3, 4}, {3, 4}}},
	{"i,j->ij", [][]int{{5}, {7}}},
	{"ijk,k->ij", [][]int{{2, 3, 4}, {4}}},
	{"ijkl->lkji", [][]int{{2, 3, 2, 3}}},
	// Double-layer PEPS merge: k=2 GEMM + interleaving transpose, the
	// canonical fused opGEMMScatter shape (both run4 and 4-row-block
	// paths fire at these sizes).
	{"ULDRp,uldrp->UuLlDdRr", [][]int{{4, 4, 4, 4, 2}, {4, 4, 4, 4, 2}}},
	// Same fusion with dims that defeat the 4-wide run detection.
	{"ABp,abp->AaBb", [][]int{{3, 5, 2}, {3, 5, 2}}},
	// Fused shape with k=1 (pure outer product + transpose).
	{"ABp,abp->AaBb", [][]int{{4, 4, 1}, {4, 4, 1}}},
	// Fused shape with k=3 (general-k scatter path).
	{"ABp,abp->AaBb", [][]int{{4, 4, 3}, {4, 4, 3}}},
	{"ac,apqb,cpqd->bd", [][]int{{4, 4}, {4, 3, 3, 4}, {4, 3, 3, 4}}},
	{"abck,kin->abcni", [][]int{{2, 3, 2, 4}, {4, 2, 4}}},
	{"aXb,bYc->aXYc", [][]int{{2, 3, 4}, {4, 5, 2}}},
}

func randOperands(rng *rand.Rand, shapes [][]int) []*tensor.Dense {
	ops := make([]*tensor.Dense, len(shapes))
	for i, s := range shapes {
		ops[i] = tensor.Rand(rng, s...)
	}
	return ops
}

// TestPlanMatchesUncached contracts every case through the compiled-plan
// path and through direct evaluation, requiring elementwise agreement.
func TestPlanMatchesUncached(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, tc := range planEquivalenceCases {
		for trial := 0; trial < 3; trial++ {
			ops := randOperands(rng, tc.shapes)
			want, err := contractUncached(tc.spec, ops, Hooks{})
			if err != nil {
				t.Fatalf("%q: uncached: %v", tc.spec, err)
			}
			p, err := Compile(tc.spec, shapesOf(ops))
			if err != nil {
				t.Fatalf("%q: compile: %v", tc.spec, err)
			}
			got, err := p.Execute(ops...)
			if err != nil {
				t.Fatalf("%q: execute: %v", tc.spec, err)
			}
			assertClose(t, tc.spec, got, want)
		}
	}
}

// TestCachedContractMatchesUncached exercises the full public path —
// cache lookup included — twice per case, so both the compile-miss and
// the cache-hit replay are compared against direct evaluation.
func TestCachedContractMatchesUncached(t *testing.T) {
	ResetPlanCache()
	rng := rand.New(rand.NewSource(42))
	for _, tc := range planEquivalenceCases {
		for trial := 0; trial < 2; trial++ {
			ops := randOperands(rng, tc.shapes)
			want, err := contractUncached(tc.spec, ops, Hooks{})
			if err != nil {
				t.Fatalf("%q: uncached: %v", tc.spec, err)
			}
			got, err := Contract(tc.spec, ops...)
			if err != nil {
				t.Fatalf("%q: contract: %v", tc.spec, err)
			}
			assertClose(t, tc.spec, got, want)
		}
	}
}

// TestPlanHookSequence verifies the compiled executor reports the same
// hook firing sequence (moves, GEMM shapes, final cost) as direct
// evaluation: the dist backend's communication accounting depends on it.
func TestPlanHookSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, tc := range planEquivalenceCases {
		ops := randOperands(rng, tc.shapes)
		record := func(events *[]string, costs *[]Cost) Hooks {
			return Hooks{
				OnMove: func(n int) { *events = append(*events, fmt.Sprintf("move:%d", n)) },
				OnGEMM: func(b, m, n, k int) { *events = append(*events, fmt.Sprintf("gemm:%d,%d,%d,%d", b, m, n, k)) },
				OnContract: func(spec string, c Cost) {
					*events = append(*events, "contract:"+spec)
					*costs = append(*costs, c)
				},
			}
		}
		var wantEv, gotEv []string
		var wantCost, gotCost []Cost
		if _, err := contractUncached(tc.spec, ops, record(&wantEv, &wantCost)); err != nil {
			t.Fatalf("%q: uncached: %v", tc.spec, err)
		}
		p, err := Compile(tc.spec, shapesOf(ops))
		if err != nil {
			t.Fatalf("%q: compile: %v", tc.spec, err)
		}
		if _, err := p.execute(ops, record(&gotEv, &gotCost)); err != nil {
			t.Fatalf("%q: execute: %v", tc.spec, err)
		}
		// The fused scatter op fires OnGEMM then OnMove where the
		// uncached path fires them around the separate transpose; both
		// orderings describe the same primitives, so compare as
		// multisets via sorted copies.
		if !sameMultiset(wantEv, gotEv) {
			t.Errorf("%q: hook events differ:\nuncached: %v\nplan:     %v", tc.spec, wantEv, gotEv)
		}
		if len(wantCost) != 1 || len(gotCost) != 1 || wantCost[0] != gotCost[0] {
			t.Errorf("%q: contract cost differs: uncached %+v plan %+v", tc.spec, wantCost, gotCost)
		}
	}
}

// TestPlanCacheHitRate replays a BMPS-like working set and requires the
// cache to absorb it at well above the 90%% acceptance floor.
func TestPlanCacheHitRate(t *testing.T) {
	ResetPlanCache()
	rng := rand.New(rand.NewSource(44))
	for i := 0; i < 50; i++ {
		for _, tc := range planEquivalenceCases[:6] {
			ops := randOperands(rng, tc.shapes)
			if _, err := Contract(tc.spec, ops...); err != nil {
				t.Fatal(err)
			}
		}
	}
	hits, misses, _ := PlanCacheStats()
	rate := float64(hits) / float64(hits+misses)
	if rate < 0.9 {
		t.Fatalf("plan cache hit rate %.3f (hits=%d misses=%d), want > 0.9", rate, hits, misses)
	}
}

// TestPlanCacheEviction bounds the cache and checks eviction counts and
// continued correctness once the working set exceeds the bound.
func TestPlanCacheEviction(t *testing.T) {
	ResetPlanCache()
	SetPlanCacheSize(4)
	defer func() {
		SetPlanCacheSize(DefaultPlanCacheSize)
		ResetPlanCache()
	}()
	rng := rand.New(rand.NewSource(45))
	// 8 distinct shape signatures through a 4-entry cache, twice.
	for round := 0; round < 2; round++ {
		for d := 2; d < 10; d++ {
			a := tensor.Rand(rng, 2, d)
			b := tensor.Rand(rng, d, 3)
			got := MustContract("ij,jk->ik", a, b)
			want, err := contractUncached("ij,jk->ik", []*tensor.Dense{a, b}, Hooks{})
			if err != nil {
				t.Fatal(err)
			}
			assertClose(t, fmt.Sprintf("d=%d", d), got, want)
		}
	}
	if _, _, ev := PlanCacheStats(); ev == 0 {
		t.Fatal("expected evictions from a 4-entry cache under an 8-signature working set")
	}
}

// TestPlanCacheConcurrent hits one signature and misses many from
// several goroutines at once; run under -race this checks the
// lock-compile-recheck path and concurrent plan replay.
func TestPlanCacheConcurrent(t *testing.T) {
	ResetPlanCache()
	SetPlanCacheSize(8)
	defer func() {
		SetPlanCacheSize(DefaultPlanCacheSize)
		ResetPlanCache()
	}()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 30; i++ {
				d := 2 + rng.Intn(12)
				a := tensor.Rand(rng, 3, d)
				b := tensor.Rand(rng, d, 2)
				got := MustContract("ij,jk->ik", a, b)
				want, err := contractUncached("ij,jk->ik", []*tensor.Dense{a, b}, Hooks{})
				if err != nil {
					t.Error(err)
					return
				}
				for j, v := range got.Data() {
					if d := v - want.Data()[j]; absc(d) > 1e-12 {
						t.Errorf("concurrent contract diverged at %d", j)
						return
					}
				}
			}
		}(int64(g))
	}
	wg.Wait()
}

// TestPlanShapeMismatch checks a compiled plan rejects operands whose
// shapes differ from the compiled signature.
func TestPlanShapeMismatch(t *testing.T) {
	p, err := Compile("ij,jk->ik", [][]int{{3, 4}, {4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(46))
	if _, err := p.Execute(tensor.Rand(rng, 3, 5), tensor.Rand(rng, 5, 5)); err == nil {
		t.Fatal("plan accepted operands with the wrong shapes")
	}
	if _, err := p.Execute(tensor.Rand(rng, 3, 4)); err == nil {
		t.Fatal("plan accepted the wrong operand count")
	}
}

func shapesOf(ops []*tensor.Dense) [][]int {
	shapes := make([][]int, len(ops))
	for i, op := range ops {
		shapes[i] = op.Shape()
	}
	return shapes
}

func sameMultiset(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	count := map[string]int{}
	for _, s := range a {
		count[s]++
	}
	for _, s := range b {
		count[s]--
		if count[s] < 0 {
			return false
		}
	}
	return true
}

func absc(c complex128) float64 {
	r, i := real(c), imag(c)
	if r < 0 {
		r = -r
	}
	if i < 0 {
		i = -i
	}
	return r + i
}

func assertClose(t *testing.T, label string, got, want *tensor.Dense) {
	t.Helper()
	if !tensor.SameShape(got.Shape(), want.Shape()) {
		t.Fatalf("%s: shape %v, want %v", label, got.Shape(), want.Shape())
	}
	wd := want.Data()
	for i, v := range got.Data() {
		if absc(v-wd[i]) > 1e-10 {
			t.Fatalf("%s: element %d = %v, want %v", label, i, v, wd[i])
		}
	}
}
