package einsum

import (
	"math/rand"
	"sync"
	"testing"

	"gokoala/internal/tensor"
)

// TestConcurrentSamePlanReplays stresses the satellite guarantee for the
// lattice scheduler: many goroutines replaying the *same* cached plan
// (identical spec and shapes, distinct operand data) must each get a
// frame of their own from the per-plan frame pool and produce the same
// result as a sequential evaluation.
func TestConcurrentSamePlanReplays(t *testing.T) {
	const spec = "abc,cd,dbe->ae"
	rng := rand.New(rand.NewSource(17))
	type testCase struct {
		ops  []*tensor.Dense
		want *tensor.Dense
	}
	cases := make([]testCase, 32)
	for i := range cases {
		ops := []*tensor.Dense{
			tensor.Rand(rng, 4, 3, 5),
			tensor.Rand(rng, 5, 6),
			tensor.Rand(rng, 6, 3, 2),
		}
		cases[i] = testCase{ops: ops, want: MustContract(spec, ops...)}
	}

	// The plan is now cached; hammer it from many goroutines at once,
	// several rounds per goroutine so frames get recycled under load.
	var wg sync.WaitGroup
	errs := make(chan string, len(cases)*4)
	for round := 0; round < 4; round++ {
		for i := range cases {
			wg.Add(1)
			go func(tc testCase) {
				defer wg.Done()
				got := MustContract(spec, tc.ops...)
				gd, wd := got.Data(), tc.want.Data()
				for k := range gd {
					if gd[k] != wd[k] {
						errs <- "concurrent replay differs from sequential result"
						return
					}
				}
			}(cases[i])
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestConcurrentPlanCompilation hammers cachedPlan on a cold key from
// many goroutines: every caller must get a usable plan for its shapes
// (first-writer-wins races in the LRU are fine, torn plans are not).
func TestConcurrentPlanCompilation(t *testing.T) {
	ResetPlanCache()
	rng := rand.New(rand.NewSource(23))
	ops := []*tensor.Dense{tensor.Rand(rng, 7, 4), tensor.Rand(rng, 4, 9)}
	want := MustContract("xy,yz->xz", ops...) // reference via warm path
	ResetPlanCache()                          // make the key cold again for the stampede

	var wg sync.WaitGroup
	results := make([]*tensor.Dense, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = MustContract("xy,yz->xz", ops...)
		}(i)
	}
	wg.Wait()
	wd := want.Data()
	for i, got := range results {
		gd := got.Data()
		for k := range gd {
			if gd[k] != wd[k] {
				t.Fatalf("goroutine %d got a wrong contraction under cold-cache stampede", i)
			}
		}
	}
}
