// Package einsum implements Einstein-summation contraction of dense
// complex tensors, mirroring the role numpy.einsum and Cyclops' einsum
// play for the Koala library. A spec like "abc,cd->abd" names every axis
// with a letter; repeated letters across operands are contracted, letters
// in the output are kept, and letters appearing in a single operand but
// not in the output are summed out.
//
// Multi-operand contractions are reduced to a sequence of pairwise
// contractions chosen greedily by estimated flop count; each pairwise
// contraction is lowered to transposes plus one batched GEMM. Hooks allow
// callers (the simulated distributed backend) to observe every GEMM and
// every transpose's data movement for communication accounting.
package einsum

import (
	"fmt"
	"strings"

	"gokoala/internal/tensor"
)

// Hooks observe the primitive operations a contraction decomposes into.
// Any field may be nil.
type Hooks struct {
	// OnGEMM is called once per batched matrix multiply with the batch
	// count and the m, n, k dimensions of each multiply in the batch.
	OnGEMM func(batch, m, n, k int)
	// OnMove is called with the element count of every materializing
	// transpose (axis reordering that physically moves data).
	OnMove func(elements int)
	// OnContract is called once per top-level contraction with the spec
	// and the aggregate cost of every primitive it decomposed into, so
	// callers get per-contraction totals without reimplementing the GEMM
	// arithmetic.
	OnContract func(spec string, cost Cost)
	// GEMM, when non-nil, replaces the default batched matrix multiply.
	// Operands have shapes [bt, m, k] and [bt, k, n]; the result must have
	// shape [bt, m, n]. The simulated distributed backend routes the
	// computation through its SPMD kernel this way.
	GEMM func(a, b *tensor.Dense) *tensor.Dense
}

// Cost is the aggregate primitive-operation cost of one contraction.
type Cost struct {
	// Flops is the complex multiply-add count of every batched GEMM
	// (sum-out reductions are not included; they are lower order).
	Flops int64
	// MovedElements is the element count of every materializing
	// transpose that relocates data across the leading axis.
	MovedElements int64
	// GEMMs is the number of batched GEMM calls.
	GEMMs int
}

// FlopCount returns the complex multiply-add count of one batched GEMM
// with the given batch count and per-multiply m, n, k dimensions — the
// arithmetic OnGEMM observers would otherwise reimplement.
func FlopCount(batch, m, n, k int) int64 {
	return int64(batch) * int64(m) * int64(n) * int64(k)
}

// Chain returns hooks that invoke both h's and g's observers for every
// primitive. The replacement GEMM kernel is h's when set, else g's
// (kernels execute the multiply, so only one can run).
func (h Hooks) Chain(g Hooks) Hooks {
	out := Hooks{GEMM: h.GEMM}
	if out.GEMM == nil {
		out.GEMM = g.GEMM
	}
	switch {
	case h.OnGEMM != nil && g.OnGEMM != nil:
		hf, gf := h.OnGEMM, g.OnGEMM
		out.OnGEMM = func(batch, m, n, k int) { hf(batch, m, n, k); gf(batch, m, n, k) }
	case h.OnGEMM != nil:
		out.OnGEMM = h.OnGEMM
	default:
		out.OnGEMM = g.OnGEMM
	}
	switch {
	case h.OnMove != nil && g.OnMove != nil:
		hf, gf := h.OnMove, g.OnMove
		out.OnMove = func(elements int) { hf(elements); gf(elements) }
	case h.OnMove != nil:
		out.OnMove = h.OnMove
	default:
		out.OnMove = g.OnMove
	}
	switch {
	case h.OnContract != nil && g.OnContract != nil:
		hf, gf := h.OnContract, g.OnContract
		out.OnContract = func(spec string, cost Cost) { hf(spec, cost); gf(spec, cost) }
	case h.OnContract != nil:
		out.OnContract = h.OnContract
	default:
		out.OnContract = g.OnContract
	}
	return out
}

// Contract evaluates the einsum spec over the operands and returns the
// resulting tensor.
func Contract(spec string, ops ...*tensor.Dense) (*tensor.Dense, error) {
	return ContractWithHooks(spec, ops, Hooks{})
}

// MustContract is Contract but panics on error; intended for specs that
// are compile-time constants in library code.
func MustContract(spec string, ops ...*tensor.Dense) *tensor.Dense {
	out, err := Contract(spec, ops...)
	if err != nil {
		panic(fmt.Sprintf("einsum: %v", err))
	}
	return out
}

// ContractWithHooks evaluates the spec, reporting primitive operations to
// the provided hooks. The contraction is compiled into a Plan memoized
// in a bounded process-wide cache keyed on (spec, operand shapes), so
// hot loops that repeat the same contraction signature — BMPS row
// absorption, expectation sweeps — pay for parsing, path search, and
// permutation layout only once.
func ContractWithHooks(spec string, ops []*tensor.Dense, h Hooks) (*tensor.Dense, error) {
	p, err := cachedPlan(planKindDense, spec, ops)
	if err != nil {
		return nil, err
	}
	return p.execute(ops, h)
}

// contractUncached is the direct evaluation path the plan compiler
// mirrors. It is kept as the reference implementation: equivalence tests
// and benchmarks compare the cached plan path against it.
func contractUncached(spec string, ops []*tensor.Dense, h Hooks) (*tensor.Dense, error) {
	if h.OnContract != nil {
		// Accumulate primitive costs through chained observers and report
		// the per-contraction total once at the end.
		var cost Cost
		acc := Hooks{
			OnGEMM: func(batch, m, n, k int) {
				cost.Flops += FlopCount(batch, m, n, k)
				cost.GEMMs++
			},
			OnMove: func(elements int) { cost.MovedElements += int64(elements) },
		}
		inner := h
		inner.OnContract = nil
		out, err := contractUncached(spec, ops, acc.Chain(inner))
		if err == nil {
			h.OnContract(spec, cost)
		}
		return out, err
	}
	inputs, output, err := parseSpec(spec, len(ops))
	if err != nil {
		return nil, err
	}
	dims, err := resolveDims(inputs, ops)
	if err != nil {
		return nil, fmt.Errorf("einsum %q: %w", spec, err)
	}
	for i := 0; i < len(output); i++ {
		if _, ok := dims[output[i]]; !ok {
			return nil, fmt.Errorf("einsum %q: output letter %q not present in any input", spec, string(output[i]))
		}
	}

	// Working set of (subscript, tensor) pairs.
	type node struct {
		subs string
		t    *tensor.Dense
	}
	nodes := make([]node, len(ops))
	for i := range ops {
		nodes[i] = node{inputs[i], ops[i]}
	}

	// lettersNeeded reports the letters required by the output or by nodes
	// other than i and j.
	lettersNeeded := func(i, j int) map[byte]bool {
		need := map[byte]bool{}
		for _, c := range []byte(output) {
			need[c] = true
		}
		for k, n := range nodes {
			if k == i || k == j {
				continue
			}
			for _, c := range []byte(n.subs) {
				need[c] = true
			}
		}
		return need
	}

	for len(nodes) > 1 {
		// Greedy: pick the pair with the smallest estimated flop count
		// (product of dims of the union of their subscripts).
		bi, bj := 0, 1
		best := -1.0
		for i := 0; i < len(nodes); i++ {
			for j := i + 1; j < len(nodes); j++ {
				cost := 1.0
				seen := map[byte]bool{}
				for _, c := range []byte(nodes[i].subs + nodes[j].subs) {
					if !seen[c] {
						seen[c] = true
						cost *= float64(dims[c])
					}
				}
				if best < 0 || cost < best {
					best, bi, bj = cost, i, j
				}
			}
		}
		need := lettersNeeded(bi, bj)
		subs, t := contractPair(nodes[bi].subs, nodes[bi].t, nodes[bj].subs, nodes[bj].t, need, dims, h)
		nodes[bi] = node{subs, t}
		nodes = append(nodes[:bj], nodes[bj+1:]...)
	}

	res := nodes[0]
	// Sum out any letters not in the output, then permute to output order.
	res.subs, res.t = sumOut(res.subs, res.t, letterSet(output), h)
	if res.subs == output {
		// An identity spec can pass the input tensor straight through;
		// clone so the result never aliases caller-owned data.
		for _, op := range ops {
			if res.t == op {
				return res.t.Clone(), nil
			}
		}
		return res.t, nil
	}
	perm := make([]int, len(output))
	for i := 0; i < len(output); i++ {
		p := strings.IndexByte(res.subs, output[i])
		if p < 0 {
			return nil, fmt.Errorf("einsum %q: internal error, letter %q lost", spec, string(output[i]))
		}
		perm[i] = p
	}
	return maybeTranspose(res.t, perm, h), nil
}

// parseSpec splits "ab,bc->ac" into input subscripts and the output
// subscript, validating letter syntax.
func parseSpec(spec string, nops int) ([]string, string, error) {
	parts := strings.Split(spec, "->")
	if len(parts) != 2 {
		return nil, "", fmt.Errorf("einsum %q: spec must contain exactly one \"->\"", spec)
	}
	inputs := strings.Split(parts[0], ",")
	output := strings.TrimSpace(parts[1])
	if len(inputs) != nops {
		return nil, "", fmt.Errorf("einsum %q: %d subscripts but %d operands", spec, len(inputs), nops)
	}
	check := func(s string) error {
		seen := map[byte]bool{}
		for i := 0; i < len(s); i++ {
			c := s[i]
			if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z') {
				return fmt.Errorf("einsum %q: invalid subscript letter %q", spec, string(c))
			}
			if seen[c] {
				return fmt.Errorf("einsum %q: repeated letter %q within one subscript is not supported", spec, string(c))
			}
			seen[c] = true
		}
		return nil
	}
	for i := range inputs {
		inputs[i] = strings.TrimSpace(inputs[i])
		if err := check(inputs[i]); err != nil {
			return nil, "", err
		}
	}
	if err := check(output); err != nil {
		return nil, "", err
	}
	return inputs, output, nil
}

// resolveDims maps each letter to its dimension, checking consistency.
func resolveDims(inputs []string, ops []*tensor.Dense) (map[byte]int, error) {
	dims := map[byte]int{}
	for i, subs := range inputs {
		if len(subs) != ops[i].Rank() {
			return nil, fmt.Errorf("operand %d has rank %d but subscript %q has %d letters", i, ops[i].Rank(), subs, len(subs))
		}
		for j := 0; j < len(subs); j++ {
			c := subs[j]
			d := ops[i].Dim(j)
			if prev, ok := dims[c]; ok && prev != d {
				return nil, fmt.Errorf("letter %q has conflicting dimensions %d and %d", string(c), prev, d)
			}
			dims[c] = d
		}
	}
	return dims, nil
}

func letterSet(s string) map[byte]bool {
	m := make(map[byte]bool, len(s))
	for i := 0; i < len(s); i++ {
		m[s[i]] = true
	}
	return m
}

// sumOut reduces axes whose letters are not in keep, returning the new
// subscript and tensor.
func sumOut(subs string, t *tensor.Dense, keep map[byte]bool, h Hooks) (string, *tensor.Dense) {
	var keptSubs, dropSubs []byte
	var keptAxes, dropAxes []int
	for i := 0; i < len(subs); i++ {
		if keep[subs[i]] {
			keptSubs = append(keptSubs, subs[i])
			keptAxes = append(keptAxes, i)
		} else {
			dropSubs = append(dropSubs, subs[i])
			dropAxes = append(dropAxes, i)
		}
	}
	if len(dropAxes) == 0 {
		return subs, t
	}
	perm := append(append([]int{}, keptAxes...), dropAxes...)
	tt := maybeTranspose(t, perm, h)
	keptN, dropN := 1, 1
	for _, a := range keptAxes {
		keptN *= t.Dim(a)
	}
	for _, a := range dropAxes {
		dropN *= t.Dim(a)
	}
	m := tt.Reshape(keptN, dropN)
	outShape := make([]int, len(keptAxes))
	for i, a := range keptAxes {
		outShape[i] = t.Dim(a)
	}
	if len(outShape) == 0 {
		outShape = []int{}
	}
	out := tensor.New(append([]int{}, outShape...)...)
	data, src := out.Data(), m.Data()
	tensor.AddFlops(int64(keptN) * int64(dropN))
	for i := 0; i < keptN; i++ {
		var s complex128
		row := src[i*dropN : (i+1)*dropN]
		for _, v := range row {
			s += v
		}
		data[i] = s
	}
	return string(keptSubs), out
}

// maybeTranspose permutes t's axes. Accounting follows a 1-D row-block
// distribution over the leading axis: a permutation that keeps axis 0 in
// place only rearranges data within each rank's local block (no
// redistribution), while a permutation that moves axis 0 relocates every
// element across ranks and is reported to OnMove. Identity permutations
// skip the data movement entirely.
func maybeTranspose(t *tensor.Dense, perm []int, h Hooks) *tensor.Dense {
	identity := true
	for i, p := range perm {
		if p != i {
			identity = false
			break
		}
	}
	if identity {
		return t
	}
	if h.OnMove != nil && len(perm) > 0 && perm[0] != 0 {
		h.OnMove(t.Size())
	}
	return t.Transpose(perm...)
}

// contractPair contracts two tensors over their shared letters that are
// not needed elsewhere, producing subscript batch+freeA+freeB.
func contractPair(sa string, a *tensor.Dense, sb string, b *tensor.Dense, need map[byte]bool, dims map[byte]int, h Hooks) (string, *tensor.Dense) {
	inB := letterSet(sb)
	inA := letterSet(sa)
	// Letters private to one operand and not needed later are summed first.
	keepA := map[byte]bool{}
	for c := range need {
		keepA[c] = true
	}
	for c := range inB {
		keepA[c] = true
	}
	sa, a = sumOut(sa, a, keepA, h)
	keepB := map[byte]bool{}
	for c := range need {
		keepB[c] = true
	}
	for c := range inA {
		keepB[c] = true
	}
	sb, b = sumOut(sb, b, keepB, h)
	inA, inB = letterSet(sa), letterSet(sb)

	var batch, con, freeA, freeB []byte
	for i := 0; i < len(sa); i++ {
		c := sa[i]
		switch {
		case inB[c] && need[c]:
			batch = append(batch, c)
		case inB[c]:
			con = append(con, c)
		default:
			freeA = append(freeA, c)
		}
	}
	for i := 0; i < len(sb); i++ {
		c := sb[i]
		if !inA[c] {
			freeB = append(freeB, c)
		}
	}

	axisOf := func(subs string, c byte) int { return strings.IndexByte(subs, c) }
	permFor := func(subs string, groups ...[]byte) []int {
		var perm []int
		for _, g := range groups {
			for _, c := range g {
				perm = append(perm, axisOf(subs, c))
			}
		}
		return perm
	}
	prod := func(g []byte) int {
		p := 1
		for _, c := range g {
			p *= dims[c]
		}
		return p
	}

	at := maybeTranspose(a, permFor(sa, batch, freeA, con), h).Reshape(prod(batch), prod(freeA), prod(con))
	bt := maybeTranspose(b, permFor(sb, batch, con, freeB), h).Reshape(prod(batch), prod(con), prod(freeB))
	if h.OnGEMM != nil {
		h.OnGEMM(prod(batch), prod(freeA), prod(freeB), prod(con))
	}
	var ct *tensor.Dense
	if h.GEMM != nil {
		ct = h.GEMM(at, bt)
	} else {
		ct = tensor.BatchMatMul(at, bt)
	}

	outSubs := string(batch) + string(freeA) + string(freeB)
	outShape := make([]int, 0, len(outSubs))
	for i := 0; i < len(outSubs); i++ {
		outShape = append(outShape, dims[outSubs[i]])
	}
	return outSubs, ct.Reshape(outShape...)
}
