package einsum

import (
	"fmt"
	"math"
	"strings"

	"gokoala/internal/tensor"
)

// A Path is a contraction order: each step names two current node
// indices to contract; the result replaces the lower index and the
// higher index is removed (numpy.einsum_path convention, normalized so
// step pairs are (low, high)).
type Path [][2]int

// maxOptimalOperands bounds the exhaustive planner; the subset DP visits
// 3^n states, which stays under ~5M up to n = 14.
const maxOptimalOperands = 14

// PlanGreedy returns the pair order chosen by the greedy minimum-flops
// heuristic the engine uses by default.
func PlanGreedy(inputs []string, dims map[byte]int, output string) Path {
	type node struct {
		subs string
		id   int
	}
	nodes := make([]node, len(inputs))
	for i, s := range inputs {
		nodes[i] = node{s, i}
	}
	var path Path
	for len(nodes) > 1 {
		bi, bj := 0, 1
		best := math.Inf(1)
		for i := 0; i < len(nodes); i++ {
			for j := i + 1; j < len(nodes); j++ {
				cost := 1.0
				seen := map[byte]bool{}
				for _, c := range []byte(nodes[i].subs + nodes[j].subs) {
					if !seen[c] {
						seen[c] = true
						cost *= float64(dims[c])
					}
				}
				if cost < best {
					best, bi, bj = cost, i, j
				}
			}
		}
		// Result subscript: letters still needed by the output or other nodes.
		need := map[byte]bool{}
		for _, c := range []byte(output) {
			need[c] = true
		}
		for k, n := range nodes {
			if k == bi || k == bj {
				continue
			}
			for _, c := range []byte(n.subs) {
				need[c] = true
			}
		}
		merged := mergedSubs(nodes[bi].subs, nodes[bj].subs, need)
		path = append(path, [2]int{bi, bj})
		nodes[bi] = node{merged, nodes[bi].id}
		nodes = append(nodes[:bj], nodes[bj+1:]...)
	}
	return path
}

// mergedSubs returns the subscript of contracting two nodes: the letters
// of either operand that remain needed, in first-appearance order.
func mergedSubs(a, b string, need map[byte]bool) string {
	var out []byte
	seen := map[byte]bool{}
	for _, c := range []byte(a + b) {
		if need[c] && !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return string(out)
}

// PlanOptimal returns a flop-optimal contraction order computed by
// dynamic programming over operand subsets (the classical O(3^n)
// algorithm). It falls back to PlanGreedy beyond maxOptimalOperands.
// The flop model for contracting two groups is the product of the
// dimensions of the union of their letters — the same model the greedy
// planner uses, so the two are directly comparable.
func PlanOptimal(inputs []string, dims map[byte]int, output string) Path {
	n := len(inputs)
	if n > maxOptimalOperands {
		return PlanGreedy(inputs, dims, output)
	}
	if n <= 1 {
		return nil
	}
	full := (1 << n) - 1

	// outside[i] = letters appearing in operands other than i or in the
	// output; a subset's result keeps exactly the letters needed outside.
	letterUsers := map[byte]int{} // letter -> bitmask of operands using it
	for i, s := range inputs {
		for _, c := range []byte(s) {
			letterUsers[c] |= 1 << i
		}
	}
	outLetters := letterSet(output)

	subsOf := make([]string, full+1)
	for i := 0; i < n; i++ {
		subsOf[1<<i] = inputs[i]
	}
	// resultSubs computes the subscript a subset's contraction keeps.
	resultSubs := func(set int) string {
		var out []byte
		seen := map[byte]bool{}
		for i := 0; i < n; i++ {
			if set&(1<<i) == 0 {
				continue
			}
			for _, c := range []byte(inputs[i]) {
				if seen[c] {
					continue
				}
				seen[c] = true
				if outLetters[c] || letterUsers[c]&^set != 0 {
					out = append(out, c)
				}
			}
		}
		return string(out)
	}

	cost := make([]float64, full+1)
	split := make([]int, full+1)
	for set := 1; set <= full; set++ {
		if set&(set-1) == 0 { // singleton
			cost[set] = 0
			subsOf[set] = inputs[trailingBit(set)]
			continue
		}
		cost[set] = math.Inf(1)
		subsOf[set] = resultSubs(set)
		// Enumerate proper sub-subsets; canonical form keeps the lowest
		// set bit on the left side to halve the enumeration.
		low := set & (-set)
		rest := set &^ low
		for sub := rest; sub > 0; sub = (sub - 1) & rest {
			left := set &^ sub
			right := sub
			c := cost[left] + cost[right] + pairCost(subsOf[left], subsOf[right], dims)
			if c < cost[set] {
				cost[set] = c
				split[set] = right
			}
		}
	}

	// Reconstruct the binary contraction tree, then linearize it into
	// pairwise steps over a live node list (same convention as greedy).
	type tree struct {
		set         int
		left, right *tree
	}
	var build func(set int) *tree
	build = func(set int) *tree {
		if set&(set-1) == 0 {
			return &tree{set: set}
		}
		r := split[set]
		return &tree{set: set, left: build(set &^ r), right: build(r)}
	}
	root := build(full)

	// live maps node-list positions to subset ids.
	live := make([]int, n)
	for i := 0; i < n; i++ {
		live[i] = 1 << i
	}
	var path Path
	var emit func(t *tree)
	emit = func(t *tree) {
		if t.left == nil {
			return
		}
		emit(t.left)
		emit(t.right)
		i := indexOf(live, t.left.set)
		j := indexOf(live, t.right.set)
		if i > j {
			i, j = j, i
		}
		path = append(path, [2]int{i, j})
		live[i] = t.set
		live = append(live[:j], live[j+1:]...)
	}
	emit(root)
	return path
}

func trailingBit(x int) int {
	i := 0
	for x&1 == 0 {
		x >>= 1
		i++
	}
	return i
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	panic("einsum: internal path reconstruction error")
}

// pairCost is the flop estimate for contracting two subscripts: the
// product of the dimensions of their letter union.
func pairCost(a, b string, dims map[byte]int) float64 {
	cost := 1.0
	seen := map[byte]bool{}
	for _, c := range []byte(a + b) {
		if !seen[c] {
			seen[c] = true
			cost *= float64(dims[c])
		}
	}
	return cost
}

// PathCost evaluates a path's total flop estimate under the planner's
// cost model, for comparing planners.
func PathCost(inputs []string, dims map[byte]int, output string, path Path) float64 {
	nodes := append([]string{}, inputs...)
	total := 0.0
	for _, step := range path {
		i, j := step[0], step[1]
		if i < 0 || j >= len(nodes) || i >= j {
			panic(fmt.Sprintf("einsum: invalid path step %v over %d nodes", step, len(nodes)))
		}
		total += pairCost(nodes[i], nodes[j], dims)
		need := map[byte]bool{}
		for _, c := range []byte(output) {
			need[c] = true
		}
		for k, s := range nodes {
			if k == i || k == j {
				continue
			}
			for _, c := range []byte(s) {
				need[c] = true
			}
		}
		nodes[i] = mergedSubs(nodes[i], nodes[j], need)
		nodes = append(nodes[:j], nodes[j+1:]...)
	}
	return total
}

// ContractOptimal evaluates the spec like Contract but plans the
// contraction order with the exhaustive subset DP instead of the greedy
// heuristic. Worth it for deep reused networks; planning cost grows as
// 3^operands.
func ContractOptimal(spec string, ops ...*tensor.Dense) (*tensor.Dense, error) {
	inputs, output, err := parseSpec(spec, len(ops))
	if err != nil {
		return nil, err
	}
	dims, err := resolveDims(inputs, ops)
	if err != nil {
		return nil, fmt.Errorf("einsum %q: %w", spec, err)
	}
	for i := 0; i < len(output); i++ {
		if _, ok := dims[output[i]]; !ok {
			return nil, fmt.Errorf("einsum %q: output letter %q not present in any input", spec, string(output[i]))
		}
	}
	path := PlanOptimal(inputs, dims, output)
	return contractAlongPath(spec, inputs, output, dims, ops, path, Hooks{})
}

// contractAlongPath executes a planned path with the pairwise kernel.
func contractAlongPath(spec string, inputs []string, output string, dims map[byte]int, ops []*tensor.Dense, path Path, h Hooks) (*tensor.Dense, error) {
	type node struct {
		subs string
		t    *tensor.Dense
	}
	nodes := make([]node, len(ops))
	for i := range ops {
		nodes[i] = node{inputs[i], ops[i]}
	}
	for _, step := range path {
		i, j := step[0], step[1]
		if i < 0 || j >= len(nodes) || i >= j {
			return nil, fmt.Errorf("einsum %q: invalid path step %v", spec, step)
		}
		need := map[byte]bool{}
		for _, c := range []byte(output) {
			need[c] = true
		}
		for k, n := range nodes {
			if k == i || k == j {
				continue
			}
			for _, c := range []byte(n.subs) {
				need[c] = true
			}
		}
		subs, t := contractPair(nodes[i].subs, nodes[i].t, nodes[j].subs, nodes[j].t, need, dims, h)
		nodes[i] = node{subs, t}
		nodes = append(nodes[:j], nodes[j+1:]...)
	}
	res := nodes[0]
	res.subs, res.t = sumOut(res.subs, res.t, letterSet(output), h)
	if res.subs == output {
		for _, op := range ops {
			if res.t == op {
				return res.t.Clone(), nil
			}
		}
		return res.t, nil
	}
	perm := make([]int, len(output))
	for i := 0; i < len(output); i++ {
		p := strings.IndexByte(res.subs, output[i])
		if p < 0 {
			return nil, fmt.Errorf("einsum %q: internal error, letter %q lost", spec, string(output[i]))
		}
		perm[i] = p
	}
	return maybeTranspose(res.t, perm, h), nil
}
