package einsum

import (
	"math/rand"
	"testing"

	"gokoala/internal/tensor"
)

// bmpsSequence is the repeated, structurally identical contraction
// sequence of one BMPS sweep step at Figure 7a sizes (PEPS bond r = 4,
// boundary bond m = 8, physical dimension 2): the double-layer site
// merge, a boundary environment absorption, a QR-update recombination,
// and an MPS canonicalization carry. A BMPS sweep evaluates these specs
// over and over with the same operand shapes, which is exactly the
// reuse the plan cache targets.
var bmpsSequence = []struct {
	spec   string
	shapes [][]int
}{
	// Double-layer merge of bra and ket site tensors (peps.MergeLayers).
	{"ULDRp,uldrp->UuLlDdRr", [][]int{{4, 4, 4, 4, 2}, {4, 4, 4, 4, 2}}},
	// Boundary environment absorption of one column (peps twolayer).
	{"ac,apqb,cpqd->bd", [][]int{{8, 8}, {8, 4, 4, 8}, {8, 4, 4, 8}}},
	// QR-update recombination (peps.ApplyTwoSite, Algorithm 1).
	{"abck,kin->abcni", [][]int{{4, 4, 4, 8}, {8, 2, 8}}},
	// Canonicalization carry (mps.Canonicalize).
	{"kb,bpc->kpc", [][]int{{8, 8}, {8, 2, 8}}},
}

// bmpsOperands materializes fixed-seed operands for the sequence.
func bmpsOperands() [][]*tensor.Dense {
	rng := rand.New(rand.NewSource(7))
	ops := make([][]*tensor.Dense, len(bmpsSequence))
	for i, s := range bmpsSequence {
		ops[i] = make([]*tensor.Dense, len(s.shapes))
		for j, sh := range s.shapes {
			ops[i][j] = tensor.Rand(rng, sh...)
		}
	}
	return ops
}

// BenchmarkBMPSSequence contracts the BMPS-shaped sequence through the
// default engine path. Each b.N iteration is one full sequence pass, so
// -benchtime 100x repeats every spec 100 times with identical shapes.
func BenchmarkBMPSSequence(b *testing.B) {
	ops := bmpsOperands()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, s := range bmpsSequence {
			MustContract(s.spec, ops[j]...)
		}
	}
}

// BenchmarkBMPSSequenceUncached runs the same sequence through the
// direct evaluation path, re-planning every contraction; the gap to
// BenchmarkBMPSSequence is what the plan cache buys.
func BenchmarkBMPSSequenceUncached(b *testing.B) {
	ops := bmpsOperands()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, s := range bmpsSequence {
			if _, err := contractUncached(s.spec, ops[j], Hooks{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkBMPSSequenceHitRate asserts, as a side effect of the
// benchmark run, that the plan cache absorbs the repeated sequence: one
// compile per distinct signature, everything else a hit.
func BenchmarkBMPSSequenceHitRate(b *testing.B) {
	ops := bmpsOperands()
	ResetPlanCache()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, s := range bmpsSequence {
			MustContract(s.spec, ops[j]...)
		}
	}
	b.StopTimer()
	hits, misses, _ := PlanCacheStats()
	if total := hits + misses; total > 0 {
		b.ReportMetric(float64(hits)/float64(total), "hit-rate")
	}
}
