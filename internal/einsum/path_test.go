package einsum

import (
	"math/rand"
	"strings"
	"testing"

	"gokoala/internal/tensor"
)

func specDims(inputs []string, ops []*tensor.Dense) map[byte]int {
	dims, err := resolveDims(inputs, ops)
	if err != nil {
		panic(err)
	}
	return dims
}

func TestContractOptimalMatchesGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	specs := []struct {
		spec   string
		shapes [][]int
	}{
		{"ij,jk,kl->il", [][]int{{3, 4}, {4, 5}, {5, 2}}},
		{"ab,bcd,de,cf,eg->afg", [][]int{{2, 3}, {3, 2, 4}, {4, 3}, {2, 2}, {3, 2}}},
		{"gbd,bpe,dqpf->gqef", [][]int{{3, 4, 5}, {4, 2, 6}, {5, 3, 2, 4}}},
	}
	for _, c := range specs {
		var ops []*tensor.Dense
		for _, sh := range c.shapes {
			ops = append(ops, tensor.Rand(rng, sh...))
		}
		want := MustContract(c.spec, ops...)
		got, err := ContractOptimal(c.spec, ops...)
		if err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
		if !tensor.AllClose(got, want, 1e-10, 1e-10) {
			t.Fatalf("%s: optimal-path result differs from greedy", c.spec)
		}
	}
}

func TestOptimalNeverWorseThanGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	letters := "abcdefgh"
	strictlyBetter := 0
	for trial := 0; trial < 60; trial++ {
		nops := 3 + rng.Intn(3)
		dims := map[byte]int{}
		for i := 0; i < len(letters); i++ {
			dims[letters[i]] = 1 + rng.Intn(9)
		}
		var inputs []string
		for i := 0; i < nops; i++ {
			r := 1 + rng.Intn(3)
			perm := rng.Perm(len(letters))[:r]
			subs := make([]byte, r)
			for j, p := range perm {
				subs[j] = letters[p]
			}
			inputs = append(inputs, string(subs))
		}
		// pick a random subset of used letters as output
		used := map[byte]bool{}
		for _, s := range inputs {
			for _, c := range []byte(s) {
				used[c] = true
			}
		}
		var out []byte
		for c := range used {
			if rng.Intn(3) == 0 {
				out = append(out, c)
			}
		}
		output := string(out)
		cg := PathCost(inputs, dims, output, PlanGreedy(inputs, dims, output))
		co := PathCost(inputs, dims, output, PlanOptimal(inputs, dims, output))
		if co > cg*(1+1e-12) {
			t.Fatalf("optimal cost %g exceeds greedy %g for %v->%s", co, cg, inputs, output)
		}
		if co < cg*(1-1e-12) {
			strictlyBetter++
		}
		// Cross-check numerically on small dims.
		var ops []*tensor.Dense
		ok := true
		for _, s := range inputs {
			shape := make([]int, len(s))
			for j := range s {
				shape[j] = dims[s[j]]
				if shape[j] > 4 {
					shape[j] = 4
					dims[s[j]] = 4
				}
			}
			ops = append(ops, tensor.Rand(rng, shape...))
		}
		if !ok {
			continue
		}
		spec := strings.Join(inputs, ",") + "->" + output
		want, err1 := Contract(spec, ops...)
		got, err2 := ContractOptimal(spec, ops...)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("spec %q: error disagreement %v vs %v", spec, err1, err2)
		}
		if err1 == nil && !tensor.AllClose(got, want, 1e-9, 1e-9) {
			t.Fatalf("spec %q: value disagreement", spec)
		}
	}
	if strictlyBetter == 0 {
		t.Log("optimal never strictly beat greedy in this fuzz run (allowed but unusual)")
	}
}

func TestPlanOptimalChain(t *testing.T) {
	// Matrix chain where association order matters: (AB)C vs A(BC).
	inputs := []string{"ij", "jk", "kl"}
	dims := map[byte]int{'i': 2, 'j': 100, 'k': 2, 'l': 100}
	p := PlanOptimal(inputs, dims, "il")
	// Optimal contracts A(ij) with B(jk) first: cost 2*100*2 = 400, then
	// 2*2*100 = 400; the alternative costs 100*2*100 + ... >> that.
	cost := PathCost(inputs, dims, "il", p)
	if cost > 900 {
		t.Fatalf("optimal chain cost %g, want 800", cost)
	}
}

func TestPathCostRejectsBadPath(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PathCost([]string{"ij", "jk"}, map[byte]int{'i': 2, 'j': 2, 'k': 2}, "ik", Path{{1, 1}})
}

func TestPlanOptimalFallsBackBeyondLimit(t *testing.T) {
	// 15 scalar operands exceed the DP limit; the fallback must still
	// produce a valid full-length path.
	inputs := make([]string, 15)
	dims := map[byte]int{}
	p := PlanOptimal(inputs, dims, "")
	if len(p) != 14 {
		t.Fatalf("fallback path length %d, want 14", len(p))
	}
}
