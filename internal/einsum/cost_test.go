package einsum

import (
	"math/rand"
	"testing"

	"gokoala/internal/tensor"
)

func TestFlopCountHelper(t *testing.T) {
	if got := FlopCount(1, 2, 3, 4); got != 24 {
		t.Fatalf("FlopCount(1,2,3,4) = %d want 24", got)
	}
	if got := FlopCount(5, 2, 3, 4); got != 120 {
		t.Fatalf("FlopCount(5,2,3,4) = %d want 120", got)
	}
	// Large dims must not overflow int.
	if got := FlopCount(1, 1<<20, 1<<20, 1<<20); got != 1<<60 {
		t.Fatalf("FlopCount(1,2^20,2^20,2^20) = %d want 2^60", got)
	}
}

// TestOnContractHandCounted checks the per-contraction cost totals
// against hand-counted small contractions.
func TestOnContractHandCounted(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := []struct {
		spec      string
		shapes    [][]int
		wantFlops int64
	}{
		// One GEMM: (2x3) @ (3x4) = 2*4*3 multiply-adds.
		{"ab,bc->ac", [][]int{{2, 3}, {3, 4}}, 2 * 4 * 3},
		// Matrix-vector: (5x7) @ (7) = 5*7.
		{"ab,b->a", [][]int{{5, 7}, {7}}, 5 * 7},
		// Batched: shared letter a (dim 2) is a batch axis;
		// per-slice (3x4)@(4x5) = 3*5*4, times 2 batches.
		{"abc,acd->abd", [][]int{{2, 3, 4}, {2, 4, 5}}, 2 * 3 * 5 * 4},
		// Three operands, greedy order: dims a=2,b=3,c=4,d=5.
		// Cheapest pair is ab,bc (cost 2*3*4=24) -> GEMM 2*4*3 = 24 flops
		// giving ac; then ac,cd -> GEMM 2*5*4 = 40 flops. Total 64.
		{"ab,bc,cd->ad", [][]int{{2, 3}, {3, 4}, {4, 5}}, 64},
	}
	for _, tc := range cases {
		ops := make([]*tensor.Dense, len(tc.shapes))
		for i, sh := range tc.shapes {
			ops[i] = tensor.Rand(rng, sh...)
		}
		var got Cost
		var calls int
		_, err := ContractWithHooks(tc.spec, ops, Hooks{
			OnContract: func(spec string, c Cost) {
				if spec != tc.spec {
					t.Errorf("OnContract spec = %q want %q", spec, tc.spec)
				}
				got = c
				calls++
			},
		})
		if err != nil {
			t.Fatalf("%s: %v", tc.spec, err)
		}
		if calls != 1 {
			t.Fatalf("%s: OnContract called %d times, want 1", tc.spec, calls)
		}
		if got.Flops != tc.wantFlops {
			t.Errorf("%s: flops = %d want %d", tc.spec, got.Flops, tc.wantFlops)
		}
		if got.GEMMs < 1 {
			t.Errorf("%s: GEMMs = %d want >= 1", tc.spec, got.GEMMs)
		}
	}
}

// TestOnContractMatchesOnGEMM cross-checks the aggregate against the
// per-GEMM observer on a nontrivial network.
func TestOnContractMatchesOnGEMM(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := tensor.Rand(rng, 2, 3, 4)
	b := tensor.Rand(rng, 4, 5)
	c := tensor.Rand(rng, 5, 3)
	var fromGEMMs int64
	var total Cost
	_, err := ContractWithHooks("abc,cd,db->a", []*tensor.Dense{a, b, c}, Hooks{
		OnGEMM:     func(batch, m, n, k int) { fromGEMMs += FlopCount(batch, m, n, k) },
		OnContract: func(_ string, cost Cost) { total = cost },
	})
	if err != nil {
		t.Fatal(err)
	}
	if fromGEMMs == 0 {
		t.Fatal("no GEMMs observed")
	}
	if total.Flops != fromGEMMs {
		t.Fatalf("OnContract flops %d != sum of OnGEMM %d", total.Flops, fromGEMMs)
	}
}

func TestHooksChain(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := tensor.Rand(rng, 3, 4)
	b := tensor.Rand(rng, 4, 5)
	var g1, g2, m1, m2 int
	var kernelCalls int
	h1 := Hooks{
		OnGEMM: func(batch, m, n, k int) { g1++ },
		OnMove: func(int) { m1++ },
		GEMM: func(x, y *tensor.Dense) *tensor.Dense {
			kernelCalls++
			return tensor.BatchMatMul(x, y)
		},
	}
	h2 := Hooks{
		OnGEMM: func(batch, m, n, k int) { g2++ },
		OnMove: func(int) { m2++ },
	}
	out, err := ContractWithHooks("ab,bc->ca", []*tensor.Dense{a, b}, h1.Chain(h2))
	if err != nil {
		t.Fatal(err)
	}
	want := MustContract("ab,bc->ca", a, b)
	if !tensor.AllClose(out, want, 1e-12, 1e-12) {
		t.Fatal("chained hooks changed the result")
	}
	if g1 != g2 || g1 == 0 {
		t.Fatalf("OnGEMM chain mismatch: %d vs %d", g1, g2)
	}
	if m1 != m2 {
		t.Fatalf("OnMove chain mismatch: %d vs %d", m1, m2)
	}
	if kernelCalls != g1 {
		t.Fatalf("replacement kernel ran %d times for %d GEMMs", kernelCalls, g1)
	}
}

// BenchmarkContract is the tracing-off overhead reference: the einsum
// hot path with no hooks installed must not regress when obs is wired in
// above it.
func BenchmarkContract(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	x := tensor.Rand(rng, 8, 16, 8)
	y := tensor.Rand(rng, 8, 8, 16)
	z := tensor.Rand(rng, 8, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MustContract("abc,cdb,de->ae", x, y, z)
	}
}
