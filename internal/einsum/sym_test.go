package einsum

import (
	"math"
	"math/rand"
	"testing"

	"gokoala/internal/tensor"
)

// eachTuple enumerates sector tuples of the legs in lexicographic order.
func eachTuple(legs []tensor.Leg, f func(sec []int)) {
	sec := make([]int, len(legs))
	var rec func(i int)
	rec = func(i int) {
		if i == len(legs) {
			f(sec)
			return
		}
		for s := 0; s < legs[i].NumSectors(); s++ {
			sec[i] = s
			rec(i + 1)
		}
	}
	rec(0)
}

// randSymTensor fills every allowed block of the structure with random
// data.
func randSymTensor(rng *rand.Rand, mod, total int, legs []tensor.Leg) *tensor.Sym {
	s := tensor.NewSym(mod, total, legs)
	eachTuple(legs, func(sec []int) {
		if !s.Allowed(sec) {
			return
		}
		shape := make([]int, len(sec))
		for i, x := range sec {
			shape[i] = legs[i].Dims[x]
		}
		s.SetBlock(tensor.Rand(rng, shape...), sec...)
	})
	return s
}

func denseClose(t *testing.T, got, want *tensor.Dense, tol float64) {
	t.Helper()
	gd, wd := got.Data(), want.Data()
	if len(gd) != len(wd) {
		t.Fatalf("size %d, want %d", len(gd), len(wd))
	}
	for i := range gd {
		d := gd[i] - wd[i]
		if math.Hypot(real(d), imag(d)) > tol {
			t.Fatalf("element %d: %v, want %v", i, gd[i], wd[i])
		}
	}
}

func q2(dims ...int) tensor.Leg {
	return tensor.Leg{Dir: 1, Charges: []int{0, 1}, Dims: dims}
}

func TestContractSymPairMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, mod := range []int{0, 2} {
		bond := q2(2, 3)
		a := randSymTensor(rng, mod, 1, []tensor.Leg{q2(2, 2), bond})
		b := randSymTensor(rng, mod, 0, []tensor.Leg{bond.Dual(), q2(3, 1)})
		got, err := ContractSym("ik,kj->ij", a, b)
		if err != nil {
			t.Fatalf("mod %d: %v", mod, err)
		}
		if gt := got.Total(); gt != tensor.CanonCharge(1, mod) {
			t.Fatalf("mod %d: output total %d", mod, gt)
		}
		want := MustContract("ik,kj->ij", a.ToDense(), b.ToDense())
		denseClose(t, got.ToDense(), want, 1e-12)
	}
}

func TestContractSymMultiOperandMatchesDense(t *testing.T) {
	// Three operands with two contracted bonds and a transposed output:
	// exercises the greedy pairwise order and the final permutation.
	rng := rand.New(rand.NewSource(22))
	x := q2(2, 2)
	y := q2(3, 2)
	a := randSymTensor(rng, 0, 0, []tensor.Leg{q2(2, 1), x})
	b := randSymTensor(rng, 0, 1, []tensor.Leg{x.Dual(), y})
	c := randSymTensor(rng, 0, 0, []tensor.Leg{y.Dual(), q2(2, 2)})
	got := MustContractSym("ax,xy,yd->da", a, b, c)
	want := MustContract("ax,xy,yd->da", a.ToDense(), b.ToDense(), c.ToDense())
	denseClose(t, got.ToDense(), want, 1e-12)
}

func TestContractSymTracesOutSingleSectorLeg(t *testing.T) {
	// Summed-out letters are allowed on single-sector legs only; the
	// total charge shifts by the dropped leg's Dir*q.
	rng := rand.New(rand.NewSource(23))
	single := tensor.Leg{Dir: 1, Charges: []int{1}, Dims: []int{3}}
	a := randSymTensor(rng, 0, 1, []tensor.Leg{q2(2, 2), single})
	got := MustContractSym("is->i", a)
	if got.Total() != 0 {
		t.Fatalf("total %d after dropping a charge-1 leg, want 0", got.Total())
	}
	want := MustContract("is->i", a.ToDense())
	denseClose(t, got.ToDense(), want, 1e-12)

	multi := randSymTensor(rng, 0, 0, []tensor.Leg{q2(2, 2), q2(2, 2).Dual()})
	if _, err := ContractSym("is->i", multi); err == nil {
		t.Fatal("summing out a charged multi-sector leg must fail")
	}
}

func TestContractSymRejectsNonDualLegs(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	shifted := tensor.Leg{Dir: -1, Charges: []int{0, 2}, Dims: []int{2, 2}}
	a := randSymTensor(rng, 0, 0, []tensor.Leg{q2(2, 2), q2(2, 2).Dual()})
	b := randSymTensor(rng, 0, 2, []tensor.Leg{shifted, q2(2, 2)})
	// "k" joins legs with equal total dim but different charge content —
	// not a contractible bond.
	if _, err := ContractSym("ik,kj->ij", a, b); err == nil {
		t.Fatal("contracting non-dual legs must fail")
	}
}

func TestContractSymSavesFlops(t *testing.T) {
	// A block-diagonal matrix product: two 4x4 sectors instead of one
	// dense 8x8 GEMM, so the executed flops must be well under dense.
	rng := rand.New(rand.NewSource(25))
	bond := tensor.Leg{Dir: 1, Charges: []int{0, 1}, Dims: []int{4, 4}}
	a := randSymTensor(rng, 0, 0, []tensor.Leg{bond, bond.Dual()})
	b := randSymTensor(rng, 0, 0, []tensor.Leg{bond, bond.Dual()})
	_, cost, err := ContractSymWithHooks("ik,kj->ij", []*tensor.Sym{a, b}, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	if cost.DenseFlops < 2*cost.Flops {
		t.Fatalf("expected >=2x flop saving, executed %d dense-equiv %d", cost.Flops, cost.DenseFlops)
	}
	if cost.Blocks != 2 || cost.OutBlocks != 2 {
		t.Fatalf("blocks %d out %d, want 2 and 2", cost.Blocks, cost.OutBlocks)
	}
}

func TestSymStatsAccumulate(t *testing.T) {
	ResetSymStats()
	rng := rand.New(rand.NewSource(26))
	bond := q2(2, 2)
	a := randSymTensor(rng, 0, 0, []tensor.Leg{q2(2, 2), bond})
	b := randSymTensor(rng, 0, 0, []tensor.Leg{bond.Dual(), q2(2, 2)})
	MustContractSym("ik,kj->ij", a, b)
	contr, blocks, flops, dense := SymStats()
	if contr != 1 || blocks == 0 || flops == 0 || dense < flops {
		t.Fatalf("stats contractions=%d blocks=%d flops=%d dense=%d", contr, blocks, flops, dense)
	}
	ResetSymStats()
	if c, _, _, _ := SymStats(); c != 0 {
		t.Fatal("ResetSymStats did not clear counters")
	}
}

// TestPlanKeyKindSeparation is the plan-cache regression for the
// block-sparse backend: a dense contraction and a per-block symmetric
// contraction with the same spec and operand shapes must cache under
// different keys, so neither can serve the other's compiled plan.
func TestPlanKeyKindSeparation(t *testing.T) {
	ops := []*tensor.Dense{tensor.New(2, 3), tensor.New(3, 4)}
	kd := planKey(planKindDense, "ik,kj->ij", ops)
	ks := planKey(planKindSym, "ik,kj->ij", ops)
	if kd == ks {
		t.Fatalf("dense and sym plan keys collide: %q", kd)
	}
	// Both kinds must still distinguish specs and shapes as before.
	if planKey(planKindSym, "ik,kj->ij", ops) != ks {
		t.Fatal("sym plan key not deterministic")
	}
	ops2 := []*tensor.Dense{tensor.New(2, 5), tensor.New(5, 4)}
	if planKey(planKindSym, "ik,kj->ij", ops2) == ks {
		t.Fatal("sym plan key ignores operand shapes")
	}
}

func TestPlanCacheServesBothKinds(t *testing.T) {
	// Interleave dense and block-sparse contractions of the same spec
	// whose per-block shapes coincide with the dense shapes; both must
	// stay correct with the shared cache warm.
	ResetPlanCache()
	rng := rand.New(rand.NewSource(27))
	single := tensor.Leg{Dir: 1, Charges: []int{0}, Dims: []int{3}}
	for i := 0; i < 3; i++ {
		da := tensor.Rand(rng, 3, 3)
		db := tensor.Rand(rng, 3, 3)
		want := naiveEinsum(t, "ik,kj->ij", da, db)
		denseClose(t, MustContract("ik,kj->ij", da, db), want, 1e-12)

		sa := randSymTensor(rng, 0, 0, []tensor.Leg{single, single.Dual()})
		sb := randSymTensor(rng, 0, 0, []tensor.Leg{single, single.Dual()})
		got := MustContractSym("ik,kj->ij", sa, sb)
		denseClose(t, got.ToDense(), naiveEinsum(t, "ik,kj->ij", sa.ToDense(), sb.ToDense()), 1e-12)
	}
}
