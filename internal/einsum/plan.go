package einsum

import (
	"fmt"
	"strings"
	"sync"

	"gokoala/internal/obs"
	"gokoala/internal/tensor"
)

// This file compiles a contraction into a replayable Plan. All the
// decisions Contract makes — the greedy pairwise order, which private
// letters to sum out, every transpose permutation, and the shape of
// every batched GEMM — depend only on the spec and the operand shapes,
// never on element values. Compiling resolves them once into a linear
// tape of primitive ops over value slots; replaying the tape skips the
// parsing, path search, and layout bookkeeping entirely and runs its
// intermediates on pooled scratch buffers.

type opKind uint8

const (
	opTranspose   opKind = iota // dst = src with axes permuted
	opRowSum                    // dst[i] = sum_j src[i*dropN+j] (private-letter sum-out)
	opGEMM                      // dst = batched src @ src2
	opGEMMScatter               // dst = batched src @ src2 scattered through offset tables (fused GEMM+transpose)
	opClone                     // dst = copy of src (identity specs)
)

// planOp is one primitive of a compiled contraction. Slots 0..nIn-1 hold
// the operands; the i-th op writes slot nIn+i, so the tape is in SSA
// form and every slot is written exactly once.
type planOp struct {
	kind  opKind
	src   int
	src2  int // opGEMM only
	dst   int
	shape []int // logical shape of the result
	size  int   // product of shape

	perm []int // opTranspose: result axis i is src axis perm[i]
	move int   // opTranspose: elements reported to OnMove (0 = leading axis kept)

	keptN, dropN int // opRowSum: src viewed as keptN x dropN

	batch, m, n, k int // opGEMM dimensions
	axB, axM       int // opGEMM: leading axes of shape forming batch / m

	// opGEMMScatter: the absorbed transpose. gemmShape is the product's
	// logical shape before permutation (perm and move describe the
	// transpose, as for opTranspose); the offset tables map a product
	// element (t, i, j) to dst offset bMap[t]+iMap[i]+jMap[j].
	gemmShape        []int
	bMap, iMap, jMap []int

	// Executor view shapes, precomputed so replays build operand and
	// result views without allocating: [batch, m, k], [batch, k, n],
	// and [batch, m, n] for opGEMM and opGEMMScatter.
	aShape, bShape, cShape []int
}

// Plan is a contraction compiled for one (spec, operand shapes) pair:
// the pairwise order and every permutation, reshape, and GEMM shape,
// resolved once and replayable against any operands with those shapes.
// Plans are safe for concurrent use.
type Plan struct {
	spec     string
	inShapes [][]int
	nIn      int
	nSlots   int // operands plus every op result ever emitted
	ops      []planOp
	out      int // slot holding the final result
	cost     Cost

	// scratch recycles one buffer per intermediate op across executions
	// (the op producing the output slot is excluded — its buffer escapes
	// to the caller). The overwrite-mode kernels never read their
	// destination, so recycled buffers are reused dirty: replaying a plan
	// allocates no intermediate storage and creates no garbage beyond the
	// result itself.
	scratch sync.Pool
	// frameBytes is the byte size of one scratch frame (all intermediate
	// buffers) and outBytes the size of the escaping result buffer; both
	// feed the obs live/peak scratch-memory account per execution.
	frameBytes int64
	outBytes   int64
}

// bytesPerElem is the storage size of one complex128 tensor element.
const bytesPerElem = 16

// Compile resolves spec against the given operand shapes and returns the
// reusable contraction plan. The result is identical, op for op, to what
// Contract would do for operands of those shapes.
func Compile(spec string, shapes [][]int) (*Plan, error) {
	inputs, output, err := parseSpec(spec, len(shapes))
	if err != nil {
		return nil, err
	}
	dims, err := resolveDimsShapes(inputs, shapes)
	if err != nil {
		return nil, fmt.Errorf("einsum %q: %w", spec, err)
	}
	for i := 0; i < len(output); i++ {
		if _, ok := dims[output[i]]; !ok {
			return nil, fmt.Errorf("einsum %q: output letter %q not present in any input", spec, string(output[i]))
		}
	}

	p := &Plan{spec: spec, nIn: len(shapes)}
	p.inShapes = make([][]int, len(shapes))
	for i, s := range shapes {
		p.inShapes[i] = append([]int(nil), s...)
	}

	// symNode tracks an intermediate symbolically: its subscript, the
	// slot its value will occupy at run time, and its shape.
	type symNode struct {
		subs  string
		slot  int
		shape []int
	}

	emit := func(op planOp) int {
		op.dst = p.nIn + len(p.ops)
		op.size = 1
		for _, d := range op.shape {
			op.size *= d
		}
		p.ops = append(p.ops, op)
		return op.dst
	}

	// symTranspose mirrors maybeTranspose: identity permutations vanish,
	// and a permutation moving axis 0 counts as data movement (the 1-D
	// row-block distribution accounting described there).
	symTranspose := func(n symNode, perm []int) symNode {
		identity := true
		for i, q := range perm {
			if q != i {
				identity = false
				break
			}
		}
		if identity {
			return n
		}
		shape := make([]int, len(perm))
		subs := make([]byte, len(perm))
		for i, q := range perm {
			shape[i] = n.shape[q]
			subs[i] = n.subs[q]
		}
		move := 0
		if len(perm) > 0 && perm[0] != 0 {
			move = 1
			for _, d := range shape {
				move *= d
			}
			p.cost.MovedElements += int64(move)
		}
		slot := emit(planOp{kind: opTranspose, src: n.slot, perm: append([]int(nil), perm...), shape: shape, move: move})
		return symNode{string(subs), slot, shape}
	}

	// symSumOut mirrors sumOut: reduce axes whose letters are not kept.
	symSumOut := func(n symNode, keep map[byte]bool) symNode {
		var keptSubs []byte
		var keptAxes, dropAxes []int
		for i := 0; i < len(n.subs); i++ {
			if keep[n.subs[i]] {
				keptSubs = append(keptSubs, n.subs[i])
				keptAxes = append(keptAxes, i)
			} else {
				dropAxes = append(dropAxes, i)
			}
		}
		if len(dropAxes) == 0 {
			return n
		}
		perm := append(append([]int{}, keptAxes...), dropAxes...)
		nt := symTranspose(n, perm)
		keptN, dropN := 1, 1
		for _, a := range keptAxes {
			keptN *= n.shape[a]
		}
		for _, a := range dropAxes {
			dropN *= n.shape[a]
		}
		outShape := make([]int, len(keptAxes))
		for i, a := range keptAxes {
			outShape[i] = n.shape[a]
		}
		slot := emit(planOp{kind: opRowSum, src: nt.slot, keptN: keptN, dropN: dropN, shape: outShape})
		return symNode{string(keptSubs), slot, outShape}
	}

	// symContractPair mirrors contractPair: sum out private letters, then
	// classify axes as batch/contracted/free and lower to one batched GEMM.
	symContractPair := func(a, b symNode, need map[byte]bool) symNode {
		inB := letterSet(b.subs)
		inA := letterSet(a.subs)
		keepA := map[byte]bool{}
		for c := range need {
			keepA[c] = true
		}
		for c := range inB {
			keepA[c] = true
		}
		a = symSumOut(a, keepA)
		keepB := map[byte]bool{}
		for c := range need {
			keepB[c] = true
		}
		for c := range inA {
			keepB[c] = true
		}
		b = symSumOut(b, keepB)
		inA, inB = letterSet(a.subs), letterSet(b.subs)

		var batch, con, freeA, freeB []byte
		for i := 0; i < len(a.subs); i++ {
			c := a.subs[i]
			switch {
			case inB[c] && need[c]:
				batch = append(batch, c)
			case inB[c]:
				con = append(con, c)
			default:
				freeA = append(freeA, c)
			}
		}
		for i := 0; i < len(b.subs); i++ {
			c := b.subs[i]
			if !inA[c] {
				freeB = append(freeB, c)
			}
		}

		permFor := func(subs string, groups ...[]byte) []int {
			var perm []int
			for _, g := range groups {
				for _, c := range g {
					perm = append(perm, strings.IndexByte(subs, c))
				}
			}
			return perm
		}
		prod := func(g []byte) int {
			p := 1
			for _, c := range g {
				p *= dims[c]
			}
			return p
		}

		at := symTranspose(a, permFor(a.subs, batch, freeA, con))
		bt := symTranspose(b, permFor(b.subs, batch, con, freeB))
		bn, fa, cn, fb := prod(batch), prod(freeA), prod(con), prod(freeB)

		outSubs := string(batch) + string(freeA) + string(freeB)
		outShape := make([]int, 0, len(outSubs))
		for i := 0; i < len(outSubs); i++ {
			outShape = append(outShape, dims[outSubs[i]])
		}
		p.cost.Flops += FlopCount(bn, fa, fb, cn)
		p.cost.GEMMs++
		slot := emit(planOp{kind: opGEMM, src: at.slot, src2: bt.slot, batch: bn, m: fa, n: fb, k: cn, axB: len(batch), axM: len(freeA), shape: outShape})
		return symNode{outSubs, slot, outShape}
	}

	nodes := make([]symNode, len(shapes))
	for i := range shapes {
		nodes[i] = symNode{inputs[i], i, p.inShapes[i]}
	}

	// lettersNeeded reports the letters required by the output or by nodes
	// other than i and j.
	lettersNeeded := func(i, j int) map[byte]bool {
		need := map[byte]bool{}
		for _, c := range []byte(output) {
			need[c] = true
		}
		for k, n := range nodes {
			if k == i || k == j {
				continue
			}
			for _, c := range []byte(n.subs) {
				need[c] = true
			}
		}
		return need
	}

	for len(nodes) > 1 {
		// Greedy: pick the pair with the smallest estimated flop count
		// (product of dims of the union of their subscripts) — byte for
		// byte the same selection Contract has always made.
		bi, bj := 0, 1
		best := -1.0
		for i := 0; i < len(nodes); i++ {
			for j := i + 1; j < len(nodes); j++ {
				cost := 1.0
				seen := map[byte]bool{}
				for _, c := range []byte(nodes[i].subs + nodes[j].subs) {
					if !seen[c] {
						seen[c] = true
						cost *= float64(dims[c])
					}
				}
				if best < 0 || cost < best {
					best, bi, bj = cost, i, j
				}
			}
		}
		need := lettersNeeded(bi, bj)
		nodes[bi] = symContractPair(nodes[bi], nodes[bj], need)
		nodes = append(nodes[:bj], nodes[bj+1:]...)
	}

	// Sum out letters absent from the output, then permute to output order.
	res := symSumOut(nodes[0], letterSet(output))
	switch {
	case res.subs == output && res.slot < p.nIn:
		// Identity spec: the result is an operand; clone so the caller
		// never receives aliased input data.
		res = symNode{res.subs, emit(planOp{kind: opClone, src: res.slot, shape: res.shape}), res.shape}
	case res.subs != output:
		perm := make([]int, len(output))
		for i := 0; i < len(output); i++ {
			q := strings.IndexByte(res.subs, output[i])
			if q < 0 {
				return nil, fmt.Errorf("einsum %q: internal error, letter %q lost", spec, string(output[i]))
			}
			perm[i] = q
		}
		res = symTranspose(res, perm)
	}
	p.out = res.slot
	p.nSlots = p.nIn + len(p.ops)
	p.fuse()
	p.initScratch()
	return p, nil
}

// fuse merges each short-k GEMM with the transpose that immediately
// consumes its result into one scatter-store op. The product's flat
// (t, i, j) index decomposes exactly into the batch, freeA, and freeB
// axis groups of its logical shape, so the permuted destination offset
// splits into three additive tables computed here once. Fusing skips
// materializing (and zeroing) the whole intermediate product: the
// double-layer PEPS merge — a k=2 GEMM followed by a full-size
// interleaving transpose — collapses to one pass.
func (p *Plan) fuse() {
	for i := 0; i+1 < len(p.ops); i++ {
		g := p.ops[i]
		t := p.ops[i+1]
		if g.kind != opGEMM || t.kind != opTranspose || t.src != g.dst || g.dst == p.out {
			continue
		}
		if g.m >= 4 && g.k >= 8 {
			// The packed-panel kernel keeps its dense writeback; fusion
			// only pays where the GEMM streams whole rows anyway.
			continue
		}
		consumed := false
		for j := i + 2; j < len(p.ops); j++ {
			o := p.ops[j]
			if o.src == g.dst || (o.kind == opGEMM && o.src2 == g.dst) {
				consumed = true
				break
			}
		}
		if consumed {
			continue
		}
		// Stride of each product axis in the transposed layout.
		ds := tensor.Strides(t.shape)
		axStride := make([]int, len(g.shape))
		for pos, a := range t.perm {
			axStride[a] = ds[pos]
		}
		fused := planOp{
			kind: opGEMMScatter, src: g.src, src2: g.src2, dst: t.dst,
			shape: t.shape, size: t.size, gemmShape: g.shape,
			perm: t.perm, move: t.move,
			batch: g.batch, m: g.m, n: g.n, k: g.k,
			bMap: offsetTable(g.shape[:g.axB], axStride[:g.axB]),
			iMap: offsetTable(g.shape[g.axB:g.axB+g.axM], axStride[g.axB:g.axB+g.axM]),
			jMap: offsetTable(g.shape[g.axB+g.axM:], axStride[g.axB+g.axM:]),
		}
		p.ops[i] = fused
		p.ops = append(p.ops[:i+1], p.ops[i+2:]...)
	}
}

// offsetTable enumerates the mixed-radix index space dims in row-major
// order, returning each index's offset under the given strides.
func offsetTable(dims, strides []int) []int {
	n := 1
	for _, d := range dims {
		n *= d
	}
	out := make([]int, n)
	idx := make([]int, len(dims))
	off := 0
	for i := range out {
		out[i] = off
		for k := len(dims) - 1; k >= 0; k-- {
			idx[k]++
			off += strides[k]
			if idx[k] < dims[k] {
				break
			}
			off -= idx[k] * strides[k]
			idx[k] = 0
		}
	}
	return out
}

// frame is the pooled per-execution scratch: one buffer per
// intermediate op, pre-wrapped in a Dense of the op's result shape so
// replays allocate nothing for intermediates. Slots of the output op
// stay nil: its buffer escapes to the caller and must be fresh every
// execution.
type frame struct {
	bufs [][]complex128
	outs []*tensor.Dense
}

// initScratch precomputes the executor's GEMM view shapes and wires the
// scratch pool to produce frames.
func (p *Plan) initScratch() {
	for i := range p.ops {
		op := &p.ops[i]
		if op.kind == opGEMM || op.kind == opGEMMScatter {
			op.aShape = []int{op.batch, op.m, op.k}
			op.bShape = []int{op.batch, op.k, op.n}
			op.cShape = []int{op.batch, op.m, op.n}
		}
		if op.dst != p.out {
			p.frameBytes += int64(op.size) * bytesPerElem
		} else {
			p.outBytes = int64(op.size) * bytesPerElem
		}
	}
	ops := p.ops
	out := p.out
	p.scratch.New = func() any {
		f := &frame{
			bufs: make([][]complex128, len(ops)),
			outs: make([]*tensor.Dense, len(ops)),
		}
		for i := range ops {
			if op := &ops[i]; op.dst != out {
				buf := make([]complex128, op.size)
				f.bufs[i] = buf
				f.outs[i] = tensor.Wrap(buf, op.shape)
			}
		}
		return f
	}
}

// Spec returns the einsum spec the plan was compiled from.
func (p *Plan) Spec() string { return p.spec }

// Cost returns the aggregate primitive-operation cost of one execution,
// known at compile time since it depends only on shapes.
func (p *Plan) Cost() Cost { return p.cost }

// Execute replays the plan against operands, whose shapes must match the
// shapes the plan was compiled for.
func (p *Plan) Execute(ops ...*tensor.Dense) (*tensor.Dense, error) {
	return p.execute(ops, Hooks{})
}

func (p *Plan) execute(ops []*tensor.Dense, h Hooks) (*tensor.Dense, error) {
	if len(ops) != p.nIn {
		return nil, fmt.Errorf("einsum %q: plan compiled for %d operands, got %d", p.spec, p.nIn, len(ops))
	}
	for i, op := range ops {
		if !tensor.SameShape(op.Shape(), p.inShapes[i]) {
			return nil, fmt.Errorf("einsum %q: operand %d has shape %v, plan compiled for %v", p.spec, i, op.Shape(), p.inShapes[i])
		}
	}
	vals := make([]*tensor.Dense, p.nSlots)
	copy(vals, ops)
	// Working-set accounting: the checked-out scratch frame plus the
	// result under construction count as live until the frame returns to
	// the pool (the result's share is released then too — past that
	// point it is the caller's tensor, not executor scratch).
	obs.TrackBytes(p.frameBytes + p.outBytes)
	fr := p.scratch.Get().(*frame)
	for i := range p.ops {
		op := &p.ops[i]
		buf, w := fr.bufs[i], fr.outs[i]
		if op.dst == p.out {
			buf = make([]complex128, op.size)
			w = tensor.Wrap(buf, op.shape)
		}
		switch op.kind {
		case opTranspose:
			if op.move > 0 && h.OnMove != nil {
				h.OnMove(op.move)
			}
			tensor.TransposeInto(w, vals[op.src], op.perm...)
			vals[op.dst] = w
		case opRowSum:
			src := vals[op.src].Data()
			tensor.AddFlops(int64(op.keptN) * int64(op.dropN))
			for r := 0; r < op.keptN; r++ {
				var s complex128
				row := src[r*op.dropN : (r+1)*op.dropN]
				for _, v := range row {
					s += v
				}
				buf[r] = s
			}
			vals[op.dst] = w
		case opGEMM:
			if h.OnGEMM != nil {
				h.OnGEMM(op.batch, op.m, op.n, op.k)
			}
			va := tensor.Wrap(vals[op.src].Data(), op.aShape)
			vb := tensor.Wrap(vals[op.src2].Data(), op.bShape)
			if h.GEMM != nil {
				// Replacement kernels (the simulated distributed backend)
				// allocate their own result; the pooled buffer sits idle.
				vals[op.dst] = h.GEMM(va, vb).Reshape(op.shape...)
			} else {
				tensor.BatchMatMulInto(tensor.Wrap(buf, op.cShape), va, vb)
				vals[op.dst] = w
			}
		case opGEMMScatter:
			if h.OnGEMM != nil {
				h.OnGEMM(op.batch, op.m, op.n, op.k)
			}
			if op.move > 0 && h.OnMove != nil {
				h.OnMove(op.move)
			}
			va := tensor.Wrap(vals[op.src].Data(), op.aShape)
			vb := tensor.Wrap(vals[op.src2].Data(), op.bShape)
			if h.GEMM != nil {
				// Replacement kernels produce the dense product; apply the
				// absorbed transpose as a separate pass.
				ct := h.GEMM(va, vb)
				tensor.TransposeInto(w, ct.Reshape(op.gemmShape...), op.perm...)
				vals[op.dst] = w
			} else {
				tensor.BatchMatMulScatter(buf, va, vb, op.bMap, op.iMap, op.jMap)
				vals[op.dst] = w
			}
		case opClone:
			copy(buf, vals[op.src].Data())
			vals[op.dst] = w
		}
	}
	out := vals[p.out]
	p.scratch.Put(fr)
	obs.TrackBytes(-(p.frameBytes + p.outBytes))
	if h.OnContract != nil {
		h.OnContract(p.spec, p.cost)
	}
	return out, nil
}

// resolveDimsShapes is resolveDims over raw shapes instead of tensors.
func resolveDimsShapes(inputs []string, shapes [][]int) (map[byte]int, error) {
	dims := map[byte]int{}
	for i, subs := range inputs {
		if len(subs) != len(shapes[i]) {
			return nil, fmt.Errorf("operand %d has rank %d but subscript %q has %d letters", i, len(shapes[i]), subs, len(subs))
		}
		for j := 0; j < len(subs); j++ {
			c := subs[j]
			d := shapes[i][j]
			if prev, ok := dims[c]; ok && prev != d {
				return nil, fmt.Errorf("letter %q has conflicting dimensions %d and %d", string(c), prev, d)
			}
			dims[c] = d
		}
	}
	return dims, nil
}
