// Block-sparse einsum: contraction of charge-symmetric tensors
// (tensor.Sym) sector block by sector block. The spec language is the
// dense one; the multi-operand reduction uses the same greedy pairwise
// order, and every surviving block pair is contracted with the ordinary
// dense machinery — compiled plans (cached under their own plan kind),
// fused batched GEMMs, and the caller's hooks — so the per-block kernels
// are exactly the dense ones.
//
// Restrictions beyond dense einsum, all rooted in charge conservation:
//
//   - a letter may appear in at most two inputs;
//   - contracted letters must join a leg and its dual (same charges and
//     sector dims, opposite directions);
//   - batch letters (shared letters kept in the output) must carry a
//     single charge-0 sector;
//   - summed-out letters must be single-sector legs (the sum then stays
//     within one charge sector; the total charge is adjusted).
//
// None of the PEPS contraction specs need the excluded cases.
package einsum

import (
	"fmt"
	"strings"
	"sync/atomic"

	"gokoala/internal/tensor"
)

// SymCost aggregates what one block-sparse contraction did and what the
// equivalent dense contraction would have done.
type SymCost struct {
	// Blocks is the number of block pairs that were actually contracted.
	Blocks int64
	// Flops is the complex multiply-add count of the executed per-block
	// GEMMs.
	Flops int64
	// DenseFlops is the GEMM flop count the dense engine would have spent
	// on the same pairwise contraction sequence at the full (embedded)
	// dimensions.
	DenseFlops int64
	// OutBlocks is the number of blocks in the result.
	OutBlocks int
	// MaxSectors is the largest per-leg sector count over all operands.
	MaxSectors int
}

// Process-wide symmetric-contraction statistics. Like the plan-cache
// atomics these are maintained unconditionally (they are a handful of
// atomic adds per contraction, not per block), so the /metrics
// flops-saved ratio works without enabling the obs layer.
var (
	symContractions atomic.Int64
	symBlockGEMMs   atomic.Int64
	symFlops        atomic.Int64
	symDenseFlops   atomic.Int64
)

// SymStats returns the cumulative block-sparse contraction counters:
// contractions, executed block pairs, executed GEMM flops, and the
// dense-equivalent GEMM flops of the same contractions.
func SymStats() (contractions, blocks, flops, denseFlops int64) {
	return symContractions.Load(), symBlockGEMMs.Load(), symFlops.Load(), symDenseFlops.Load()
}

// ResetSymStats zeroes the block-sparse contraction counters.
func ResetSymStats() {
	symContractions.Store(0)
	symBlockGEMMs.Store(0)
	symFlops.Store(0)
	symDenseFlops.Store(0)
}

// ContractSym evaluates the einsum spec over block-sparse operands.
func ContractSym(spec string, ops ...*tensor.Sym) (*tensor.Sym, error) {
	out, _, err := ContractSymWithHooks(spec, ops, Hooks{})
	return out, err
}

// MustContractSym is ContractSym but panics on error.
func MustContractSym(spec string, ops ...*tensor.Sym) *tensor.Sym {
	out, err := ContractSym(spec, ops...)
	if err != nil {
		panic(fmt.Sprintf("einsum: %v", err))
	}
	return out
}

// contractBlocks runs one dense contraction on behalf of the
// block-sparse path, through the plan cache under the sym plan kind.
func contractBlocks(spec string, ops []*tensor.Dense, h Hooks) (*tensor.Dense, error) {
	p, err := cachedPlan(planKindSym, spec, ops)
	if err != nil {
		return nil, err
	}
	return p.execute(ops, h)
}

// symNode is one live operand of the pairwise reduction.
type symNode struct {
	subs string
	t    *tensor.Sym
}

// ContractSymWithHooks evaluates the spec block by block, reporting
// every executed per-block primitive to the hooks (OnContract fires
// once, with the aggregate executed cost) and returning the symmetric
// cost summary.
func ContractSymWithHooks(spec string, ops []*tensor.Sym, h Hooks) (*tensor.Sym, SymCost, error) {
	var cost SymCost
	if len(ops) == 0 {
		return nil, cost, fmt.Errorf("einsum %q: no operands", spec)
	}
	mod := ops[0].Mod()
	for i, op := range ops {
		if op.Mod() != mod {
			return nil, cost, fmt.Errorf("einsum %q: operand %d has modulus %d, want %d", spec, i, op.Mod(), mod)
		}
		for j := 0; j < op.Rank(); j++ {
			if n := op.Leg(j).NumSectors(); n > cost.MaxSectors {
				cost.MaxSectors = n
			}
		}
	}
	inputs, output, err := parseSpec(spec, len(ops))
	if err != nil {
		return nil, cost, err
	}
	// Letter occurrence counts and total (embedded) dimensions.
	occur := map[byte]int{}
	dims := map[byte]int{}
	for i, subs := range inputs {
		if len(subs) != ops[i].Rank() {
			return nil, cost, fmt.Errorf("einsum %q: operand %d has rank %d but subscript %q has %d letters",
				spec, i, ops[i].Rank(), subs, len(subs))
		}
		for j := 0; j < len(subs); j++ {
			c := subs[j]
			occur[c]++
			d := ops[i].Leg(j).TotalDim()
			if prev, ok := dims[c]; ok && prev != d {
				return nil, cost, fmt.Errorf("einsum %q: letter %q has conflicting dimensions %d and %d",
					spec, string(c), prev, d)
			}
			dims[c] = d
		}
	}
	for c, n := range occur {
		if n > 2 {
			return nil, cost, fmt.Errorf("einsum %q: letter %q appears in %d inputs; block-sparse contraction supports at most 2",
				spec, string(c), n)
		}
	}
	for i := 0; i < len(output); i++ {
		if _, ok := dims[output[i]]; !ok {
			return nil, cost, fmt.Errorf("einsum %q: output letter %q not present in any input", spec, string(output[i]))
		}
	}

	// Inner hooks: the caller's per-primitive observers plus the actual
	// executed-cost accumulator. OnContract is withheld from per-block
	// contractions and fired once for the whole symmetric contraction.
	var agg Cost
	acc := Hooks{
		OnGEMM: func(batch, m, n, k int) {
			agg.Flops += FlopCount(batch, m, n, k)
			agg.GEMMs++
		},
		OnMove: func(elements int) { agg.MovedElements += int64(elements) },
	}
	inner := h
	inner.OnContract = nil
	inner = acc.Chain(inner)

	nodes := make([]symNode, len(ops))
	for i := range ops {
		nodes[i] = symNode{inputs[i], ops[i]}
	}
	lettersNeeded := func(i, j int) map[byte]bool {
		need := map[byte]bool{}
		for _, c := range []byte(output) {
			need[c] = true
		}
		for k, n := range nodes {
			if k == i || k == j {
				continue
			}
			for _, c := range []byte(n.subs) {
				need[c] = true
			}
		}
		return need
	}

	for len(nodes) > 1 {
		// Same greedy pair choice as the dense path, on embedded dims, so
		// the dense-equivalent flop accounting compares like with like.
		bi, bj := 0, 1
		best := -1.0
		for i := 0; i < len(nodes); i++ {
			for j := i + 1; j < len(nodes); j++ {
				c := 1.0
				seen := map[byte]bool{}
				for _, ch := range []byte(nodes[i].subs + nodes[j].subs) {
					if !seen[ch] {
						seen[ch] = true
						c *= float64(dims[ch])
					}
				}
				if best < 0 || c < best {
					best, bi, bj = c, i, j
				}
			}
		}
		need := lettersNeeded(bi, bj)
		subs, t, err := contractSymPair(spec, nodes[bi].subs, nodes[bi].t, nodes[bj].subs, nodes[bj].t, need, dims, inner, &cost)
		if err != nil {
			return nil, cost, err
		}
		nodes[bi] = symNode{subs, t}
		nodes = append(nodes[:bj], nodes[bj+1:]...)
	}

	res := nodes[0]
	res.subs, res.t, err = symSumOut(spec, res.subs, res.t, letterSet(output), inner)
	if err != nil {
		return nil, cost, err
	}
	if res.subs == output {
		for _, op := range ops {
			if res.t == op {
				res.t = res.t.Clone()
				break
			}
		}
	} else {
		perm := make([]int, len(output))
		for i := 0; i < len(output); i++ {
			p := strings.IndexByte(res.subs, output[i])
			if p < 0 {
				return nil, cost, fmt.Errorf("einsum %q: internal error, letter %q lost", spec, string(output[i]))
			}
			perm[i] = p
		}
		res.t = res.t.Transpose(perm...)
	}
	cost.OutBlocks = res.t.NumBlocks()

	cost.Flops = agg.Flops
	symContractions.Add(1)
	symBlockGEMMs.Add(cost.Blocks)
	symFlops.Add(cost.Flops)
	symDenseFlops.Add(cost.DenseFlops)
	if h.OnContract != nil {
		h.OnContract(spec, agg)
	}
	return res.t, cost, nil
}

// symSumOut reduces legs whose letters are not in keep. Each dropped
// leg must carry a single charge sector — the index sum then stays
// within one block and only shifts the total charge by Dir*q.
func symSumOut(spec, subs string, t *tensor.Sym, keep map[byte]bool, h Hooks) (string, *tensor.Sym, error) {
	var kept []byte
	var keptAxes []int
	dropTotal := 0
	for i := 0; i < len(subs); i++ {
		if keep[subs[i]] {
			kept = append(kept, subs[i])
			keptAxes = append(keptAxes, i)
			continue
		}
		l := t.Leg(i)
		if l.NumSectors() != 1 {
			return "", nil, fmt.Errorf("einsum %q: cannot sum out letter %q over a charged leg with %d sectors",
				spec, string(subs[i]), l.NumSectors())
		}
		dropTotal += l.Dir * l.Charges[0]
	}
	if len(kept) == len(subs) {
		return subs, t, nil
	}
	legs := make([]tensor.Leg, len(keptAxes))
	for i, ax := range keptAxes {
		legs[i] = t.Leg(ax)
	}
	out := tensor.NewSym(t.Mod(), tensor.CanonCharge(t.Total()-dropTotal, t.Mod()), legs)
	blockSpec := subs + "->" + string(kept)
	var blockErr error
	t.EachBlock(func(sectors []int, b *tensor.Dense) {
		if blockErr != nil {
			return
		}
		rb, err := contractBlocks(blockSpec, []*tensor.Dense{b}, h)
		if err != nil {
			blockErr = err
			return
		}
		outSec := make([]int, len(keptAxes))
		for i, ax := range keptAxes {
			outSec[i] = sectors[ax]
		}
		out.AddToBlock(rb, outSec...)
	})
	if blockErr != nil {
		return "", nil, blockErr
	}
	return string(kept), out, nil
}

// contractSymPair contracts two symmetric tensors over their shared
// letters, block pair by block pair.
func contractSymPair(spec, sa string, a *tensor.Sym, sb string, b *tensor.Sym, need map[byte]bool,
	dims map[byte]int, h Hooks, cost *SymCost) (string, *tensor.Sym, error) {
	inA, inB := letterSet(sa), letterSet(sb)
	// Sum out private unneeded letters first (mirrors the dense path).
	keepA := map[byte]bool{}
	for c := range need {
		keepA[c] = true
	}
	for c := range inB {
		keepA[c] = true
	}
	var err error
	sa, a, err = symSumOut(spec, sa, a, keepA, h)
	if err != nil {
		return "", nil, err
	}
	keepB := map[byte]bool{}
	for c := range need {
		keepB[c] = true
	}
	for c := range inA {
		keepB[c] = true
	}
	sb, b, err = symSumOut(spec, sb, b, keepB, h)
	if err != nil {
		return "", nil, err
	}
	inA, inB = letterSet(sa), letterSet(sb)

	var batch, con, freeA, freeB []byte
	for i := 0; i < len(sa); i++ {
		c := sa[i]
		switch {
		case inB[c] && need[c]:
			batch = append(batch, c)
		case inB[c]:
			con = append(con, c)
		default:
			freeA = append(freeA, c)
		}
	}
	for i := 0; i < len(sb); i++ {
		c := sb[i]
		if !inA[c] {
			freeB = append(freeB, c)
		}
	}
	axA := func(c byte) int { return strings.IndexByte(sa, c) }
	axB := func(c byte) int { return strings.IndexByte(sb, c) }

	// Shared letters: validate charge structure once, up front.
	type sharedAxis struct{ ia, ib int }
	var shared []sharedAxis
	for _, c := range con {
		la, lb := a.Leg(axA(c)), b.Leg(axB(c))
		if !tensor.DualLegs(la, lb) {
			return "", nil, fmt.Errorf("einsum %q: contracted letter %q joins non-dual legs", spec, string(c))
		}
		shared = append(shared, sharedAxis{axA(c), axB(c)})
	}
	for _, c := range batch {
		la, lb := a.Leg(axA(c)), b.Leg(axB(c))
		if la.NumSectors() != 1 || la.Charges[0] != 0 || lb.NumSectors() != 1 || lb.Charges[0] != 0 ||
			la.Dims[0] != lb.Dims[0] {
			return "", nil, fmt.Errorf("einsum %q: batch letter %q requires a single charge-0 sector on both legs", spec, string(c))
		}
		shared = append(shared, sharedAxis{axA(c), axB(c)})
	}

	outSubs := string(batch) + string(freeA) + string(freeB)
	outLegs := make([]tensor.Leg, 0, len(outSubs))
	type outSrc struct {
		fromA bool
		axis  int
	}
	srcs := make([]outSrc, 0, len(outSubs))
	for _, c := range batch {
		outLegs = append(outLegs, a.Leg(axA(c)))
		srcs = append(srcs, outSrc{true, axA(c)})
	}
	for _, c := range freeA {
		outLegs = append(outLegs, a.Leg(axA(c)))
		srcs = append(srcs, outSrc{true, axA(c)})
	}
	for _, c := range freeB {
		outLegs = append(outLegs, b.Leg(axB(c)))
		srcs = append(srcs, outSrc{false, axB(c)})
	}
	out := tensor.NewSym(a.Mod(), tensor.CanonCharge(a.Total()+b.Total(), a.Mod()), outLegs)

	// Dense-equivalent GEMM cost of this pairwise contraction.
	prodDims := func(g []byte) int64 {
		p := int64(1)
		for _, c := range g {
			p *= int64(dims[c])
		}
		return p
	}
	cost.DenseFlops += prodDims(batch) * prodDims(freeA) * prodDims(freeB) * prodDims(con)

	// Collect blocks in canonical order (EachBlock is sorted), then
	// contract every compatible pair. The nested loop order is fixed, so
	// accumulation into output blocks is deterministic.
	var keysA, keysB [][]int
	var blksA, blksB []*tensor.Dense
	a.EachBlock(func(sec []int, blk *tensor.Dense) {
		keysA = append(keysA, append([]int{}, sec...))
		blksA = append(blksA, blk)
	})
	b.EachBlock(func(sec []int, blk *tensor.Dense) {
		keysB = append(keysB, append([]int{}, sec...))
		blksB = append(blksB, blk)
	})
	pairSpec := sa + "," + sb + "->" + outSubs
	for ia, secA := range keysA {
		for ib, secB := range keysB {
			match := true
			for _, sh := range shared {
				if secA[sh.ia] != secB[sh.ib] {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			blk, err := contractBlocks(pairSpec, []*tensor.Dense{blksA[ia], blksB[ib]}, h)
			if err != nil {
				return "", nil, err
			}
			outSec := make([]int, len(srcs))
			for i, src := range srcs {
				if src.fromA {
					outSec[i] = secA[src.axis]
				} else {
					outSec[i] = secB[src.axis]
				}
			}
			out.AddToBlock(blk, outSec...)
			cost.Blocks++
		}
	}
	return outSubs, out, nil
}
