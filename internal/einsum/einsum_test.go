package einsum

import (
	"math/rand"
	"strings"
	"testing"

	"gokoala/internal/tensor"
)

// naiveEinsum evaluates a spec by brute-force loops over every letter's
// index range. It is exponentially slow but obviously correct, serving as
// the oracle for the production implementation.
func naiveEinsum(t *testing.T, spec string, ops ...*tensor.Dense) *tensor.Dense {
	t.Helper()
	parts := strings.Split(spec, "->")
	inputs := strings.Split(parts[0], ",")
	output := parts[1]
	dims := map[byte]int{}
	var letters []byte
	for i, subs := range inputs {
		for j := 0; j < len(subs); j++ {
			if _, ok := dims[subs[j]]; !ok {
				letters = append(letters, subs[j])
			}
			dims[subs[j]] = ops[i].Dim(j)
		}
	}
	outShape := make([]int, len(output))
	for i := 0; i < len(output); i++ {
		outShape[i] = dims[output[i]]
	}
	out := tensor.New(append([]int{}, outShape...)...)
	idx := map[byte]int{}
	var rec func(k int)
	rec = func(k int) {
		if k == len(letters) {
			term := complex128(1)
			for i, subs := range inputs {
				ix := make([]int, len(subs))
				for j := 0; j < len(subs); j++ {
					ix[j] = idx[subs[j]]
				}
				term *= ops[i].At(ix...)
			}
			ox := make([]int, len(output))
			for j := 0; j < len(output); j++ {
				ox[j] = idx[output[j]]
			}
			out.Set(out.At(ox...)+term, ox...)
			return
		}
		for v := 0; v < dims[letters[k]]; v++ {
			idx[letters[k]] = v
			rec(k + 1)
		}
	}
	rec(0)
	return out
}

func checkAgainstNaive(t *testing.T, spec string, ops ...*tensor.Dense) {
	t.Helper()
	got, err := Contract(spec, ops...)
	if err != nil {
		t.Fatalf("Contract(%q): %v", spec, err)
	}
	want := naiveEinsum(t, spec, ops...)
	if !tensor.SameShape(got.Shape(), want.Shape()) {
		t.Fatalf("Contract(%q) shape %v, want %v", spec, got.Shape(), want.Shape())
	}
	if !tensor.AllClose(got, want, 1e-10, 1e-10) {
		t.Fatalf("Contract(%q) disagrees with naive oracle", spec)
	}
}

func TestMatrixMultiply(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := tensor.Rand(rng, 3, 4)
	b := tensor.Rand(rng, 4, 5)
	checkAgainstNaive(t, "ij,jk->ik", a, b)
}

func TestTransposeOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := tensor.Rand(rng, 3, 4, 2)
	checkAgainstNaive(t, "ijk->kji", a)
}

func TestTraceLikeSum(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := tensor.Rand(rng, 3, 4)
	checkAgainstNaive(t, "ij->i", a)
	checkAgainstNaive(t, "ij->j", a)
	checkAgainstNaive(t, "ij->", a)
}

func TestInnerProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := tensor.Rand(rng, 6)
	b := tensor.Rand(rng, 6)
	checkAgainstNaive(t, "i,i->", a, b)
}

func TestOuterProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := tensor.Rand(rng, 3)
	b := tensor.Rand(rng, 4)
	checkAgainstNaive(t, "i,j->ij", a, b)
}

func TestBatchedContraction(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := tensor.Rand(rng, 2, 3, 4)
	b := tensor.Rand(rng, 2, 4, 5)
	checkAgainstNaive(t, "bij,bjk->bik", a, b)
}

func TestThreeOperandChain(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := tensor.Rand(rng, 3, 4)
	b := tensor.Rand(rng, 4, 5)
	c := tensor.Rand(rng, 5, 2)
	checkAgainstNaive(t, "ij,jk,kl->il", a, b, c)
}

func TestFiveOperandNetwork(t *testing.T) {
	// The 5-site refactorization network shape from paper Figure 2(a).
	rng := rand.New(rand.NewSource(8))
	a := tensor.Rand(rng, 2, 3)
	b := tensor.Rand(rng, 3, 2, 4)
	c := tensor.Rand(rng, 4, 3)
	d := tensor.Rand(rng, 2, 2)
	e := tensor.Rand(rng, 3, 2)
	checkAgainstNaive(t, "ab,bcd,de,cf,eg->afg", a, b, c, d, e)
}

func TestTwoSiteGateApplication(t *testing.T) {
	// Paper equation (4): gate applied to two neighboring PEPS sites.
	rng := rand.New(rand.NewSource(9))
	g := tensor.Rand(rng, 2, 2, 2, 2)
	m1 := tensor.Rand(rng, 2, 3, 3, 3, 3)
	m2 := tensor.Rand(rng, 2, 3, 3, 3, 3)
	checkAgainstNaive(t, "xyuv,uabcd,vdefg->xabcyefg", g, m1, m2)
}

func TestPrivateIndexSummedOut(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := tensor.Rand(rng, 3, 4, 2)
	b := tensor.Rand(rng, 3, 5)
	// letter k appears only in a and not in output: summed out.
	checkAgainstNaive(t, "ijk,im->jm", a, b)
}

func TestScalarOperand(t *testing.T) {
	a := tensor.Scalar(2)
	b := tensor.FromData([]complex128{1, 2, 3}, 3)
	got, err := Contract(",i->i", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got.At(1) != 4 {
		t.Fatalf("scalar scale failed: %v", got)
	}
}

func TestHooksObserveGEMM(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := tensor.Rand(rng, 4, 3) // subscript "ji": requires a transpose
	b := tensor.Rand(rng, 4, 5)
	var gemms int
	var moved int
	_, err := ContractWithHooks("ji,jk->ik", []*tensor.Dense{a, b}, Hooks{
		OnGEMM: func(batch, m, n, k int) {
			gemms++
			if batch != 1 || m != 3 || n != 5 || k != 4 {
				t.Errorf("unexpected GEMM dims %d,%d,%d,%d", batch, m, n, k)
			}
		},
		OnMove: func(elements int) { moved += elements },
	})
	if err != nil {
		t.Fatal(err)
	}
	if gemms != 1 {
		t.Fatalf("gemms = %d, want 1", gemms)
	}
	if moved == 0 {
		t.Fatal("expected transpose movement to be reported")
	}
}

func TestErrorCases(t *testing.T) {
	a := tensor.New(2, 3)
	cases := []struct {
		spec string
		ops  []*tensor.Dense
	}{
		{"ij", []*tensor.Dense{a}},                        // missing ->
		{"ij,jk->ik", []*tensor.Dense{a}},                 // operand count
		{"i->i", []*tensor.Dense{a}},                      // rank mismatch
		{"ii->", []*tensor.Dense{tensor.New(2, 2)}},       // repeated letter
		{"ij->ik", []*tensor.Dense{a}},                    // unknown output letter
		{"1j->j", []*tensor.Dense{a}},                     // bad letter
		{"ij,ji->", []*tensor.Dense{a, tensor.New(2, 2)}}, // dim conflict
		{"ij->ji->ij", []*tensor.Dense{a}},                // two arrows
	}
	for _, c := range cases {
		if _, err := Contract(c.spec, c.ops...); err == nil {
			t.Errorf("Contract(%q) succeeded, want error", c.spec)
		}
	}
}

func TestRandomizedSpecsAgainstNaive(t *testing.T) {
	// Property-style fuzz: random small networks checked against the oracle.
	rng := rand.New(rand.NewSource(12))
	letters := "abcdefg"
	for trial := 0; trial < 40; trial++ {
		nops := 1 + rng.Intn(3)
		dims := map[byte]int{}
		for i := 0; i < len(letters); i++ {
			dims[letters[i]] = 1 + rng.Intn(3)
		}
		var inputs []string
		var ops []*tensor.Dense
		used := map[byte]bool{}
		for i := 0; i < nops; i++ {
			r := 1 + rng.Intn(3)
			perm := rng.Perm(len(letters))[:r]
			subs := make([]byte, r)
			shape := make([]int, r)
			for j, p := range perm {
				subs[j] = letters[p]
				shape[j] = dims[letters[p]]
				used[letters[p]] = true
			}
			inputs = append(inputs, string(subs))
			ops = append(ops, tensor.Rand(rng, shape...))
		}
		var outLetters []byte
		for c := range used {
			if rng.Intn(2) == 0 {
				outLetters = append(outLetters, c)
			}
		}
		spec := strings.Join(inputs, ",") + "->" + string(outLetters)
		checkAgainstNaive(t, spec, ops...)
	}
}
