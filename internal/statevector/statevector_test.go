package statevector

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"gokoala/internal/linalg"
	"gokoala/internal/quantum"
	"gokoala/internal/tensor"
)

func TestZerosState(t *testing.T) {
	s := Zeros(3)
	if s.Amp[0] != 1 {
		t.Fatal("|000> amplitude wrong")
	}
	if math.Abs(s.Norm()-1) > 1e-15 {
		t.Fatal("not normalized")
	}
}

func TestBasisState(t *testing.T) {
	s := Basis([]int{1, 0, 1})
	if s.Amplitude([]int{1, 0, 1}) != 1 {
		t.Fatal("basis amplitude wrong")
	}
	if s.Amplitude([]int{0, 0, 0}) != 0 {
		t.Fatal("other amplitude nonzero")
	}
}

func TestApplyOneX(t *testing.T) {
	s := Zeros(2)
	s.ApplyOne(quantum.X(), 0)
	if s.Amplitude([]int{1, 0}) != 1 {
		t.Fatal("X on qubit 0 failed")
	}
	s = Zeros(2)
	s.ApplyOne(quantum.X(), 1)
	if s.Amplitude([]int{0, 1}) != 1 {
		t.Fatal("X on qubit 1 failed")
	}
}

func TestApplyOneHadamardTwiceIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := randomState(rng, 3)
	orig := s.Clone()
	s.ApplyOne(quantum.H(), 1)
	s.ApplyOne(quantum.H(), 1)
	for i := range s.Amp {
		if cmplx.Abs(s.Amp[i]-orig.Amp[i]) > 1e-13 {
			t.Fatal("HH != I")
		}
	}
}

func TestBellState(t *testing.T) {
	s := Zeros(2)
	s.ApplyOne(quantum.H(), 0)
	s.ApplyTwo(quantum.CX(), 0, 1)
	inv := 1 / math.Sqrt2
	if cmplx.Abs(s.Amplitude([]int{0, 0})-complex(inv, 0)) > 1e-14 {
		t.Fatalf("amp(00) = %v", s.Amplitude([]int{0, 0}))
	}
	if cmplx.Abs(s.Amplitude([]int{1, 1})-complex(inv, 0)) > 1e-14 {
		t.Fatalf("amp(11) = %v", s.Amplitude([]int{1, 1}))
	}
	if s.Amplitude([]int{0, 1}) != 0 || s.Amplitude([]int{1, 0}) != 0 {
		t.Fatal("cross amplitudes nonzero")
	}
}

func TestApplyTwoNonAdjacentAndOrder(t *testing.T) {
	// CX with control qubit 2, target qubit 0 on a 3-qubit register.
	s := Zeros(3)
	s.ApplyOne(quantum.X(), 2) // |001>
	s.ApplyTwo(quantum.CX(), 2, 0)
	if s.Amplitude([]int{1, 0, 1}) != 1 {
		t.Fatal("CX(2->0) failed")
	}
}

func TestApplyTwoAgainstKron(t *testing.T) {
	// On 2 qubits, ApplyTwo(g, 0, 1) must equal the 4x4 matrix action.
	rng := rand.New(rand.NewSource(2))
	g := quantum.RandomUnitary(rng, 4)
	s := randomState(rng, 2)
	want := tensor.MatVec(g, tensor.FromData(append([]complex128(nil), s.Amp...), 4))
	s.ApplyTwo(g, 0, 1)
	for i := range s.Amp {
		if cmplx.Abs(s.Amp[i]-want.Data()[i]) > 1e-12 {
			t.Fatal("ApplyTwo disagrees with matrix action")
		}
	}
}

func TestApplyTwoSwappedQubitsMatchesSwappedGate(t *testing.T) {
	// Applying g on (q1,q2) must equal applying SWAP.g.SWAP on (q2,q1).
	rng := rand.New(rand.NewSource(3))
	g := quantum.RandomUnitary(rng, 4)
	sw := quantum.SWAP()
	gs := tensor.MatMul(tensor.MatMul(sw, g), sw)
	a := randomState(rng, 3)
	b := a.Clone()
	a.ApplyTwo(g, 0, 2)
	b.ApplyTwo(gs, 2, 0)
	for i := range a.Amp {
		if cmplx.Abs(a.Amp[i]-b.Amp[i]) > 1e-12 {
			t.Fatal("qubit order convention inconsistent")
		}
	}
}

func TestUnitaryPreservesNormProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		s := randomState(rng, 4)
		n0 := s.Norm()
		s.ApplyOne(quantum.RandomUnitary(rng, 2), rng.Intn(4))
		q1 := rng.Intn(4)
		q2 := (q1 + 1 + rng.Intn(3)) % 4
		s.ApplyTwo(quantum.RandomUnitary(rng, 4), q1, q2)
		if math.Abs(s.Norm()-n0) > 1e-12 {
			t.Fatal("unitary changed norm")
		}
	}
}

func TestExpectationSingleQubit(t *testing.T) {
	s := Zeros(1)
	if e := real(s.Expectation(quantum.ObservableZ(0))); math.Abs(e-1) > 1e-14 {
		t.Fatalf("<0|Z|0> = %g", e)
	}
	s.ApplyOne(quantum.X(), 0)
	if e := real(s.Expectation(quantum.ObservableZ(0))); math.Abs(e+1) > 1e-14 {
		t.Fatalf("<1|Z|1> = %g", e)
	}
	s = Zeros(1)
	s.ApplyOne(quantum.H(), 0)
	if e := real(s.Expectation(quantum.ObservableX(0))); math.Abs(e-1) > 1e-13 {
		t.Fatalf("<+|X|+> = %g", e)
	}
}

func TestExpectationBellZZ(t *testing.T) {
	s := Zeros(2)
	s.ApplyOne(quantum.H(), 0)
	s.ApplyTwo(quantum.CX(), 0, 1)
	if e := real(s.Expectation(quantum.ObservableZZ(0, 1))); math.Abs(e-1) > 1e-13 {
		t.Fatalf("<Bell|ZZ|Bell> = %g", e)
	}
}

func TestExpectationHermitianProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := randomState(rng, 3)
	obs := quantum.TransverseFieldIsing(1, 3, -1, -3.5)
	e := s.Expectation(obs)
	if math.Abs(imag(e)) > 1e-12 {
		t.Fatalf("Hermitian expectation has imaginary part %g", imag(e))
	}
}

func TestGroundStateTFI1x2(t *testing.T) {
	// H = -ZZ - 3.5(X1+X2); check against dense diagonalization by
	// building the 4x4 matrix explicitly.
	obs := quantum.TransverseFieldIsing(1, 2, -1, -3.5)
	hmat := observableMatrix(obs, 2)
	wantE := minEigDense(t, hmat)
	rng := rand.New(rand.NewSource(6))
	gotE, gs := GroundState(obs, 2, rng)
	if math.Abs(gotE-wantE) > 1e-9 {
		t.Fatalf("ground energy %g, want %g", gotE, wantE)
	}
	if e := real(gs.Expectation(obs)); math.Abs(e-wantE) > 1e-9 {
		t.Fatalf("eigenstate expectation %g, want %g", e, wantE)
	}
}

func TestGroundStatePaperTFI3x3(t *testing.T) {
	// Paper section VI-D2: exact ground state energy per site of the 3x3
	// ferromagnetic TFI model (Jz=-1, hx=-3.5) is -3.60024.
	obs := quantum.TransverseFieldIsing(3, 3, -1, -3.5)
	rng := rand.New(rand.NewSource(7))
	e, _ := GroundState(obs, 9, rng)
	perSite := e / 9
	if math.Abs(perSite-(-3.60024)) > 5e-5 {
		t.Fatalf("TFI 3x3 ground energy per site = %.5f, paper says -3.60024", perSite)
	}
}

func TestITEConvergesToGroundState(t *testing.T) {
	obs := quantum.TransverseFieldIsing(2, 2, -1, -3.5)
	rng := rand.New(rand.NewSource(8))
	want, _ := GroundState(obs, 4, rng)
	energies := ITE(obs, 4, 0.02, 200)
	got := energies[len(energies)-1]
	if math.Abs(got-want) > 1e-2*math.Abs(want) {
		t.Fatalf("ITE final energy %g, ground %g", got, want)
	}
	// Energy should be non-increasing up to Trotter error.
	for i := 1; i < len(energies); i++ {
		if energies[i] > energies[i-1]+1e-6 {
			t.Fatalf("ITE energy increased at step %d: %g -> %g", i, energies[i-1], energies[i])
		}
	}
}

func TestMatVecMatchesExpectation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	obs := quantum.J1J2Heisenberg(2, 2, quantum.PaperJ1J2Params())
	s := randomState(rng, 4)
	s.Normalize()
	mv := MatVec(obs, 4)
	hs := mv(append([]complex128(nil), s.Amp...))
	var dot complex128
	for i := range hs {
		dot += cmplx.Conj(s.Amp[i]) * hs[i]
	}
	if cmplx.Abs(dot-s.Expectation(obs)) > 1e-11 {
		t.Fatal("MatVec inconsistent with Expectation")
	}
}

// --- helpers ---

func randomState(rng *rand.Rand, n int) *State {
	s := Zeros(n)
	for i := range s.Amp {
		s.Amp[i] = complex(2*rng.Float64()-1, 2*rng.Float64()-1)
	}
	s.Normalize()
	return s
}

// observableMatrix builds the dense matrix of an observable on n qubits.
func observableMatrix(obs *quantum.Observable, n int) *tensor.Dense {
	dim := 1 << n
	m := tensor.New(dim, dim)
	for col := 0; col < dim; col++ {
		basis := &State{N: n, Amp: make([]complex128, dim)}
		basis.Amp[col] = 1
		hv := MatVec(obs, n)(basis.Amp)
		for row := 0; row < dim; row++ {
			m.Set(hv[row], row, col)
		}
	}
	return m
}

func minEigDense(t *testing.T, m *tensor.Dense) float64 {
	t.Helper()
	w, _ := linalg.EigH(m)
	return w[0]
}
