// Package statevector implements an exact dense state-vector simulator.
// It is the reference the paper compares PEPS against in its accuracy
// studies ("state vector" curves in Figures 13 and 14) and the oracle our
// PEPS tests validate against. Qubit 0 is the most significant bit of the
// amplitude index, matching the tensor ordering t_{i1...in}.
package statevector

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"gokoala/internal/linalg"
	"gokoala/internal/quantum"
	"gokoala/internal/tensor"
)

// State is a pure quantum state of n qubits stored as 2^n amplitudes.
type State struct {
	N   int
	Amp []complex128
}

// Zeros returns the computational basis state |0...0> on n qubits.
func Zeros(n int) *State {
	if n < 1 || n > 26 {
		panic(fmt.Sprintf("statevector: unsupported qubit count %d", n))
	}
	s := &State{N: n, Amp: make([]complex128, 1<<n)}
	s.Amp[0] = 1
	return s
}

// Basis returns the computational basis state with the given bits
// (bits[0] is qubit 0).
func Basis(bits []int) *State {
	s := Zeros(len(bits))
	idx := 0
	for _, b := range bits {
		idx = idx<<1 | (b & 1)
	}
	s.Amp[0] = 0
	s.Amp[idx] = 1
	return s
}

// Clone returns a deep copy.
func (s *State) Clone() *State {
	return &State{N: s.N, Amp: append([]complex128(nil), s.Amp...)}
}

// Norm returns the 2-norm of the amplitude vector.
func (s *State) Norm() float64 {
	var t float64
	for _, a := range s.Amp {
		t += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(t)
}

// Normalize scales the state to unit norm.
func (s *State) Normalize() {
	n := s.Norm()
	if n == 0 {
		return
	}
	inv := complex(1/n, 0)
	for i := range s.Amp {
		s.Amp[i] *= inv
	}
}

// Inner returns <s|t>.
func (s *State) Inner(t *State) complex128 {
	if s.N != t.N {
		panic("statevector: qubit count mismatch")
	}
	var sum complex128
	for i := range s.Amp {
		sum += cmplx.Conj(s.Amp[i]) * t.Amp[i]
	}
	return sum
}

// ApplyOne applies a 2x2 gate to qubit q in place.
func (s *State) ApplyOne(g *tensor.Dense, q int) {
	if g.Rank() != 2 || g.Dim(0) != 2 || g.Dim(1) != 2 {
		panic("statevector: one-qubit gate must be 2x2")
	}
	s.checkQubit(q)
	gd := g.Data()
	stride := 1 << (s.N - 1 - q)
	n := len(s.Amp)
	for base := 0; base < n; base += stride << 1 {
		for i := base; i < base+stride; i++ {
			a0, a1 := s.Amp[i], s.Amp[i+stride]
			s.Amp[i] = gd[0]*a0 + gd[1]*a1
			s.Amp[i+stride] = gd[2]*a0 + gd[3]*a1
		}
	}
}

// ApplyTwo applies a two-qubit gate (4x4 matrix over (q1, q2) with q1 the
// more significant gate index) to arbitrary distinct qubits in place.
func (s *State) ApplyTwo(g *tensor.Dense, q1, q2 int) {
	if g.Size() != 16 {
		panic("statevector: two-qubit gate must be 4x4")
	}
	s.checkQubit(q1)
	s.checkQubit(q2)
	if q1 == q2 {
		panic("statevector: two-qubit gate on identical qubits")
	}
	gd := g.Reshape(4, 4).Data()
	b1 := 1 << (s.N - 1 - q1)
	b2 := 1 << (s.N - 1 - q2)
	n := len(s.Amp)
	for i := 0; i < n; i++ {
		// visit each 4-group once, at its 00 member
		if i&b1 != 0 || i&b2 != 0 {
			continue
		}
		i00 := i
		i01 := i | b2
		i10 := i | b1
		i11 := i | b1 | b2
		a00, a01, a10, a11 := s.Amp[i00], s.Amp[i01], s.Amp[i10], s.Amp[i11]
		s.Amp[i00] = gd[0]*a00 + gd[1]*a01 + gd[2]*a10 + gd[3]*a11
		s.Amp[i01] = gd[4]*a00 + gd[5]*a01 + gd[6]*a10 + gd[7]*a11
		s.Amp[i10] = gd[8]*a00 + gd[9]*a01 + gd[10]*a10 + gd[11]*a11
		s.Amp[i11] = gd[12]*a00 + gd[13]*a01 + gd[14]*a10 + gd[15]*a11
	}
}

// ApplyGate dispatches a one- or two-site gate by site count.
func (s *State) ApplyGate(g quantum.TrotterGate) {
	switch len(g.Sites) {
	case 1:
		s.ApplyOne(g.Gate, g.Sites[0])
	case 2:
		s.ApplyTwo(g.Gate, g.Sites[0], g.Sites[1])
	default:
		panic("statevector: unsupported gate arity")
	}
}

// ApplyObservableTerm returns term.Op applied to s (times the coefficient)
// as a new state (not normalized).
func (s *State) applyTerm(t quantum.Term) *State {
	out := s.Clone()
	switch len(t.Sites) {
	case 1:
		out.ApplyOne(t.Op, t.Sites[0])
	case 2:
		out.ApplyTwo(t.Op, t.Sites[0], t.Sites[1])
	}
	for i := range out.Amp {
		out.Amp[i] *= t.Coef
	}
	return out
}

// Expectation returns <s|H|s> for an observable given as a sum of local
// terms. The state need not be normalized; divide by Norm()^2 for the
// Rayleigh quotient.
func (s *State) Expectation(obs *quantum.Observable) complex128 {
	var sum complex128
	for _, t := range obs.Terms {
		phi := s.applyTerm(t)
		sum += s.Inner(phi)
	}
	return sum
}

// Amplitude returns the amplitude of the given computational basis state.
func (s *State) Amplitude(bits []int) complex128 {
	if len(bits) != s.N {
		panic("statevector: wrong bit count")
	}
	idx := 0
	for _, b := range bits {
		idx = idx<<1 | (b & 1)
	}
	return s.Amp[idx]
}

func (s *State) checkQubit(q int) {
	if q < 0 || q >= s.N {
		panic(fmt.Sprintf("statevector: qubit %d out of range [0,%d)", q, s.N))
	}
}

// MatVec applies the observable to an amplitude vector, the matrix-free
// Hamiltonian application used by the Lanczos ground-state solver.
func MatVec(obs *quantum.Observable, n int) linalg.MatVecFunc {
	return func(x []complex128) []complex128 {
		in := &State{N: n, Amp: x}
		out := make([]complex128, len(x))
		for _, t := range obs.Terms {
			phi := in.applyTerm(t)
			for i := range out {
				out[i] += phi.Amp[i]
			}
		}
		return out
	}
}

// GroundState computes the lowest eigenvalue and eigenstate of the
// observable on n qubits via Lanczos iteration with the matrix-free
// Hamiltonian application.
func GroundState(obs *quantum.Observable, n int, rng *rand.Rand) (float64, *State) {
	dim := 1 << n
	iters := 200
	if iters > dim {
		iters = dim
	}
	eval, evec := linalg.Lanczos(MatVec(obs, n), dim, iters, 1e-12, rng)
	return eval, &State{N: n, Amp: evec}
}

// ITE performs imaginary time evolution on the state vector: `steps`
// applications of the first-order Trotterized e^{-tau H}, renormalizing
// after each step. It returns the Rayleigh-quotient energy after every
// step, providing the "state vector" reference curves of paper Figure 13.
func ITE(obs *quantum.Observable, n int, tau float64, steps int) []float64 {
	s := plusState(n)
	gates := obs.TrotterGates(complex(-tau, 0))
	energies := make([]float64, steps)
	for step := 0; step < steps; step++ {
		for _, g := range gates {
			s.ApplyGate(g)
		}
		s.Normalize()
		energies[step] = real(s.Expectation(obs))
	}
	return energies
}

// plusState returns |+>^n, a symmetric start state that overlaps the
// ground state of the benchmark Hamiltonians.
func plusState(n int) *State {
	s := Zeros(n)
	h := quantum.H()
	for q := 0; q < n; q++ {
		s.ApplyOne(h, q)
	}
	return s
}
