// Package health is the numerical-robustness layer: NaN/Inf guards at
// stage boundaries, fallback and non-convergence accounting, and the
// thresholds that decide when a fast-but-fragile kernel (Gram
// orthogonalization, randomized SVD) must degrade to its robust
// counterpart (Householder QR, exact truncated SVD).
//
// The paper's Gram orthogonalization (Algorithm 5) squares the condition
// number of the matricized tensor, and its randomized einsumsvd
// (Algorithm 4) can silently under-resolve a subspace. Long ITE/VQE runs
// that go numerically bad would otherwise produce garbage — or die —
// hours in. This package gives every layer one place to report trouble
// and one policy knob for what to do about it:
//
//   - PolicyOff: guards compile to a single atomic load (production hot
//     path, trusted inputs).
//   - PolicyCount: detections increment counters (both package-local
//     atomics, always available, and obs counters visible in -metrics
//     output) and execution continues.
//   - PolicyError: detections additionally panic with *NumError, failing
//     fast so a checkpointed run can be killed and resumed rather than
//     burning hours on garbage.
//
// Fallback counters (health.svd_fallbacks, health.gram_fallbacks,
// health.nonconverged, health.checkpoint_failures) are active under every
// policy — degradation is always accounted, only the NaN/Inf scan is
// policy-gated.
package health

import (
	"fmt"
	"math"
	"sync/atomic"

	"gokoala/internal/obs"
	"gokoala/internal/tensor"
)

// Policy selects what the NaN/Inf stage guards do.
type Policy int32

const (
	// PolicyOff disables the scans entirely (default).
	PolicyOff Policy = iota
	// PolicyCount scans and counts detections, but never interrupts.
	PolicyCount
	// PolicyError scans, counts, and panics with *NumError on detection.
	PolicyError
)

// String returns the flag spelling of the policy.
func (p Policy) String() string {
	switch p {
	case PolicyCount:
		return "count"
	case PolicyError:
		return "error"
	default:
		return "off"
	}
}

// ParsePolicy parses the -health flag values "off", "count", "error".
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "off", "":
		return PolicyOff, nil
	case "count":
		return PolicyCount, nil
	case "error":
		return PolicyError, nil
	}
	return PolicyOff, fmt.Errorf("health: unknown policy %q (want off|count|error)", s)
}

var policy atomic.Int32

// SetPolicy installs the global guard policy.
func SetPolicy(p Policy) { policy.Store(int32(p)) }

// CurrentPolicy returns the global guard policy.
func CurrentPolicy() Policy { return Policy(policy.Load()) }

// Checking reports whether NaN/Inf guards are active; the one atomic
// load every guard pays when the policy is off.
func Checking() bool { return CurrentPolicy() != PolicyOff }

// NumError is the typed panic value raised by guards under PolicyError.
type NumError struct {
	// Stage names the boundary that detected the problem, e.g.
	// "backend.truncsvd" or "ite.energy".
	Stage string
	// Index is the flat element index of the first bad entry, or -1 for
	// scalar checks.
	Index int
}

func (e *NumError) Error() string {
	if e.Index < 0 {
		return fmt.Sprintf("health: non-finite value at stage %q", e.Stage)
	}
	return fmt.Sprintf("health: non-finite value at stage %q (element %d)", e.Stage, e.Index)
}

// --- counters ---
//
// Counts are kept twice: package-local atomics that are always on (so
// fallback decisions are observable without enabling tracing) and obs
// counters that surface in -metrics / summary output when obs is enabled.

var (
	cntNaN          atomic.Int64
	cntSVDFallback  atomic.Int64
	cntGramFallback atomic.Int64
	cntNonconverged atomic.Int64
	cntCkptFailure  atomic.Int64
	cntSymFallback  atomic.Int64

	obsNaN          = obs.NewCounter("health.nan_detected")
	obsSVDFallback  = obs.NewCounter("health.svd_fallbacks")
	obsGramFallback = obs.NewCounter("health.gram_fallbacks")
	obsNonconverged = obs.NewCounter("health.nonconverged")
	obsCkptFailure  = obs.NewCounter("health.checkpoint_failures")
	obsSymFallback  = obs.NewCounter("health.sym_fallbacks")
)

// NaNDetected returns how many guard scans found a non-finite value.
func NaNDetected() int64 { return cntNaN.Load() }

// SVDFallbacks returns how many randomized-SVD factorizations degraded
// to the exact truncated SVD.
func SVDFallbacks() int64 { return cntSVDFallback.Load() }

// GramFallbacks returns how many Gram orthogonalizations degraded to
// Householder QR.
func GramFallbacks() int64 { return cntGramFallback.Load() }

// Nonconverged returns how many iterative solves exhausted their
// iteration budget without meeting tolerance.
func Nonconverged() int64 { return cntNonconverged.Load() }

// CheckpointFailures returns how many checkpoint writes failed (and were
// survived).
func CheckpointFailures() int64 { return cntCkptFailure.Load() }

// ResetCounters zeroes the package-local counters; tests use this to
// assert "exactly once" semantics.
func ResetCounters() {
	cntNaN.Store(0)
	cntSVDFallback.Store(0)
	cntGramFallback.Store(0)
	cntNonconverged.Store(0)
	cntCkptFailure.Store(0)
	cntSymFallback.Store(0)
}

// CountSVDFallback records one randomized-SVD → exact-SVD degradation.
func CountSVDFallback() {
	cntSVDFallback.Add(1)
	obsSVDFallback.Add(1)
}

// CountGramFallback records one Gram → Householder-QR degradation.
func CountGramFallback() {
	cntGramFallback.Add(1)
	obsGramFallback.Add(1)
}

// CountNonconverged records an iterative solve that exhausted its budget.
func CountNonconverged(stage string) {
	_ = stage // kept for call-site documentation; counters are global
	cntNonconverged.Add(1)
	obsNonconverged.Add(1)
}

// CountCheckpointFailure records a failed (but survived) checkpoint write.
func CountCheckpointFailure() {
	cntCkptFailure.Add(1)
	obsCkptFailure.Add(1)
}

// SymFallbacks returns how many symmetric evolutions embedded to dense
// because a gate did not conserve charge.
func SymFallbacks() int64 { return cntSymFallback.Load() }

// CountSymFallback records one block-sparse → dense evolution fallback.
func CountSymFallback() {
	cntSymFallback.Add(1)
	obsSymFallback.Add(1)
}

// --- NaN/Inf guards ---

func badFloat(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }

func badComplex(v complex128) bool { return badFloat(real(v)) || badFloat(imag(v)) }

// ScanSlice returns the index of the first non-finite element, or -1.
func ScanSlice(d []complex128) int {
	for i, v := range d {
		if badComplex(v) {
			return i
		}
	}
	return -1
}

func detect(stage string, index int) {
	cntNaN.Add(1)
	obsNaN.Add(1)
	if CurrentPolicy() == PolicyError {
		panic(&NumError{Stage: stage, Index: index})
	}
}

// CheckTensor scans t at a stage boundary under the current policy.
// Nil tensors are ignored.
func CheckTensor(stage string, t *tensor.Dense) {
	if !Checking() || t == nil {
		return
	}
	if i := ScanSlice(t.Data()); i >= 0 {
		detect(stage, i)
	}
}

// CheckFloats scans a real vector (singular values, eigenvalues).
func CheckFloats(stage string, d []float64) {
	if !Checking() {
		return
	}
	for i, v := range d {
		if badFloat(v) {
			detect(stage, i)
			return
		}
	}
}

// CheckValue guards a scalar (a contracted norm, an energy).
func CheckValue(stage string, v complex128) {
	if !Checking() {
		return
	}
	if badComplex(v) {
		detect(stage, -1)
	}
}

// CheckFloat guards a real scalar.
func CheckFloat(stage string, v float64) {
	if !Checking() {
		return
	}
	if badFloat(v) {
		detect(stage, -1)
	}
}

// --- degradation thresholds ---

// kappa2MaxBits holds the κ² threshold for the Gram path as float bits;
// default 1e12 (κ ≈ 1e6): beyond it the squared-condition-number method
// cannot resolve the small directions in double precision and the caller
// must degrade to Householder QR.
var kappa2MaxBits atomic.Uint64

func init() { kappa2MaxBits.Store(math.Float64bits(1e12)) }

// Kappa2Max returns the current Gram-path κ² threshold.
func Kappa2Max() float64 { return math.Float64frombits(kappa2MaxBits.Load()) }

// SetKappa2Max installs a κ² threshold; values <= 0 restore the default.
func SetKappa2Max(v float64) {
	if v <= 0 {
		v = 1e12
	}
	kappa2MaxBits.Store(math.Float64bits(v))
}

// GramIllConditioned decides, from the extreme eigenvalues of the Gram
// matrix G = A*A (which are the squared singular values of A), whether
// the Gram orthogonalization path must degrade to QR. Non-positive or
// non-finite wmin means numerically rank-deficient: always degrade.
func GramIllConditioned(wmax, wmin float64) bool {
	if wmax <= 0 {
		return false // zero matrix: nothing to orthogonalize either way
	}
	if wmin <= 0 || badFloat(wmin) || badFloat(wmax) {
		return true
	}
	return wmax/wmin > Kappa2Max()
}

// DefaultSubspaceTol is the randomized-SVD probe-residual tolerance above
// which ImplicitRand falls back to the exact truncated SVD. The residual
// of a healthy truncation is the relative spectral weight the truncation
// discards (typically ≪ 0.1); a sketch that missed a dominant subspace
// shows residuals of order one.
const DefaultSubspaceTol = 0.5

// --- checkpoint fault injection hook ---

// ckptFault, when armed by an Injector, makes the next checkpoint writes
// fail deterministically so tests can prove crash-safety.
var ckptFault atomic.Pointer[func() error]

// SetCheckpointFault installs (or, with nil, clears) the checkpoint
// write-fault hook.
func SetCheckpointFault(f func() error) {
	if f == nil {
		ckptFault.Store(nil)
		return
	}
	ckptFault.Store(&f)
}

// CheckpointFault returns a non-nil error when a fault is armed for this
// write; checkpoint.WriteAtomic consults it before touching the disk.
func CheckpointFault() error {
	p := ckptFault.Load()
	if p == nil {
		return nil
	}
	return (*p)()
}
