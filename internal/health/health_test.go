package health

import (
	"math"
	"math/rand"
	"testing"

	"gokoala/internal/dist"
	"gokoala/internal/tensor"
)

func reset() {
	SetPolicy(PolicyOff)
	SetKappa2Max(0)
	SetCheckpointFault(nil)
	ResetCounters()
}

func TestParsePolicy(t *testing.T) {
	cases := map[string]Policy{"": PolicyOff, "off": PolicyOff, "count": PolicyCount, "error": PolicyError}
	for s, want := range cases {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("ParsePolicy accepted bogus policy")
	}
	for _, p := range []Policy{PolicyOff, PolicyCount, PolicyError} {
		back, err := ParsePolicy(p.String())
		if err != nil || back != p {
			t.Fatalf("round trip of %v via %q failed", p, p.String())
		}
	}
}

func TestGuardsOffByDefault(t *testing.T) {
	defer reset()
	reset()
	bad := tensor.New(2, 2)
	bad.Data()[3] = complex(math.NaN(), 0)
	CheckTensor("test.stage", bad)
	CheckFloats("test.stage", []float64{1, math.Inf(1)})
	CheckValue("test.stage", complex(math.NaN(), 0))
	CheckFloat("test.stage", math.NaN())
	if n := NaNDetected(); n != 0 {
		t.Fatalf("PolicyOff counted %d detections, want 0", n)
	}
}

func TestGuardsCountPolicy(t *testing.T) {
	defer reset()
	reset()
	SetPolicy(PolicyCount)
	bad := tensor.New(2, 2)
	bad.Data()[2] = complex(0, math.Inf(-1))
	CheckTensor("test.stage", bad)
	CheckFloat("test.stage", math.NaN())
	// Clean values must not count.
	CheckTensor("test.stage", tensor.New(2, 2))
	CheckFloat("test.stage", 1.5)
	if n := NaNDetected(); n != 2 {
		t.Fatalf("PolicyCount counted %d detections, want 2", n)
	}
}

func TestGuardsErrorPolicyPanics(t *testing.T) {
	defer reset()
	reset()
	SetPolicy(PolicyError)
	bad := tensor.New(3)
	bad.Data()[1] = complex(math.NaN(), 0)
	func() {
		defer func() {
			ne, ok := recover().(*NumError)
			if !ok {
				t.Fatal("PolicyError did not panic with *NumError")
			}
			if ne.Stage != "test.stage" || ne.Index != 1 {
				t.Fatalf("NumError = %+v, want stage test.stage element 1", ne)
			}
		}()
		CheckTensor("test.stage", bad)
	}()
	if n := NaNDetected(); n != 1 {
		t.Fatalf("PolicyError counted %d detections, want 1", n)
	}
}

func TestGramIllConditioned(t *testing.T) {
	defer reset()
	reset()
	cases := []struct {
		wmax, wmin float64
		want       bool
	}{
		{1, 1, false},
		{1, 1e-11, false},         // κ² = 1e11 < 1e12
		{1, 1e-13, true},          // κ² = 1e13 > 1e12
		{1, 0, true},              // rank deficient
		{1, -1e-20, true},         // negative rounding
		{1, math.NaN(), true},     // poisoned spectrum
		{0, 0, false},             // zero matrix
		{math.Inf(1), 1e3, true},  // poisoned spectrum
	}
	for _, c := range cases {
		if got := GramIllConditioned(c.wmax, c.wmin); got != c.want {
			t.Fatalf("GramIllConditioned(%g, %g) = %v, want %v", c.wmax, c.wmin, got, c.want)
		}
	}
	SetKappa2Max(1e6)
	if !GramIllConditioned(1, 1e-8) {
		t.Fatal("lowered threshold not applied")
	}
	SetKappa2Max(0) // restores the default
	if Kappa2Max() != 1e12 {
		t.Fatalf("Kappa2Max after reset = %g, want 1e12", Kappa2Max())
	}
}

func TestFallbackCountersAlwaysOn(t *testing.T) {
	defer reset()
	reset() // PolicyOff: fallback accounting must still work
	CountSVDFallback()
	CountGramFallback()
	CountGramFallback()
	CountNonconverged("linalg.svd")
	CountCheckpointFailure()
	if SVDFallbacks() != 1 || GramFallbacks() != 2 || Nonconverged() != 1 || CheckpointFailures() != 1 {
		t.Fatalf("counters = %d %d %d %d, want 1 2 1 1",
			SVDFallbacks(), GramFallbacks(), Nonconverged(), CheckpointFailures())
	}
	ResetCounters()
	if SVDFallbacks() != 0 || GramFallbacks() != 0 || Nonconverged() != 0 || CheckpointFailures() != 0 {
		t.Fatal("ResetCounters left residue")
	}
}

func TestInjectorFlipNaNDeterministic(t *testing.T) {
	mk := func() *tensor.Dense {
		return tensor.Rand(rand.New(rand.NewSource(7)), 4, 5)
	}
	a, b := mk(), mk()
	ia, ib := NewInjector(99), NewInjector(99)
	i1, i2 := ia.FlipNaN(a), ib.FlipNaN(b)
	if i1 != i2 {
		t.Fatalf("same-seed injectors flipped different elements: %d vs %d", i1, i2)
	}
	if !math.IsNaN(real(a.Data()[i1])) {
		t.Fatal("flipped element is not NaN")
	}
	if got := ScanSlice(a.Data()); got != i1 {
		t.Fatalf("ScanSlice found %d, injector reported %d", got, i1)
	}
}

func TestInjectorFailCheckpoints(t *testing.T) {
	defer reset()
	reset()
	if err := CheckpointFault(); err != nil {
		t.Fatalf("fault armed by default: %v", err)
	}
	in := NewInjector(3)
	in.FailCheckpoints(2)
	if CheckpointFault() == nil || CheckpointFault() == nil {
		t.Fatal("armed fault did not fire twice")
	}
	if err := CheckpointFault(); err != nil {
		t.Fatalf("fault fired a third time: %v", err)
	}
	in.FailCheckpoints(0) // disarm entirely
	if err := CheckpointFault(); err != nil {
		t.Fatalf("disarmed fault fired: %v", err)
	}
}

func TestInjectorPerturbGridSpeed(t *testing.T) {
	g := dist.NewGrid(dist.Stampede2(4))
	gamma := g.Machine.Gamma
	f := NewInjector(11).PerturbGridSpeed(g, 0.5)
	if f < 1 || f > 1.5 {
		t.Fatalf("factor %g outside [1, 1.5]", f)
	}
	if got := g.Machine.Gamma; math.Abs(got-gamma*f) > 1e-30 {
		t.Fatalf("Gamma = %g, want %g", got, gamma*f)
	}
	if f2 := NewInjector(11).PerturbGridSpeed(dist.NewGrid(dist.Stampede2(4)), 0.5); f2 != f {
		t.Fatalf("same seed gave different factors %g vs %g", f, f2)
	}
}
