package health

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"gokoala/internal/dist"
	"gokoala/internal/tensor"
)

// Injector produces deterministic, seeded faults so tests can prove each
// degradation path engages: NaN elements in tensors (exercising the
// policy guards), checkpoint write failures (exercising atomic-write
// crash safety), and perturbed machine-model speeds (exercising modeled
// load imbalance). All methods are reproducible for a given seed and
// call sequence.
type Injector struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewInjector returns an injector whose fault choices derive only from
// seed.
func NewInjector(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// FlipNaN sets one seeded-random element of t to NaN and returns its flat
// index (-1 for an empty tensor).
func (in *Injector) FlipNaN(t *tensor.Dense) int {
	d := t.Data()
	if len(d) == 0 {
		return -1
	}
	in.mu.Lock()
	i := in.rng.Intn(len(d))
	in.mu.Unlock()
	d[i] = complex(math.NaN(), 0)
	return i
}

// FailCheckpoints arms the checkpoint write-fault hook so the next n
// checkpoint writes fail with a deterministic error, after which writes
// succeed again.
func (in *Injector) FailCheckpoints(n int) {
	if n <= 0 {
		SetCheckpointFault(nil)
		return
	}
	var mu sync.Mutex
	remaining := n
	SetCheckpointFault(func() error {
		mu.Lock()
		defer mu.Unlock()
		if remaining <= 0 {
			return nil
		}
		remaining--
		return fmt.Errorf("health: injected checkpoint write fault (%d remaining)", remaining)
	})
}

// PerturbGridSpeed scales one modeled machine parameter of g — the
// per-flop time Gamma — by a seeded factor in [1, 1+maxFrac], modeling a
// slow rank, and returns the applied factor. The grid's accumulated stats
// are untouched; only future metering sees the slower machine.
func (in *Injector) PerturbGridSpeed(g *dist.Grid, maxFrac float64) float64 {
	if maxFrac < 0 {
		maxFrac = 0
	}
	in.mu.Lock()
	f := 1 + maxFrac*in.rng.Float64()
	in.mu.Unlock()
	g.Machine.Gamma *= f
	return f
}
