package linalg

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"

	"gokoala/internal/health"
	"gokoala/internal/telemetry"
	"gokoala/internal/tensor"
)

// eigTol is the relative off-diagonal threshold at which the cyclic Jacobi
// iteration is considered converged.
const eigTol = 1e-14

// maxJacobiSweeps bounds both the Hermitian eigensolver and the one-sided
// SVD; convergence is quadratic so well-conditioned problems finish in a
// handful of sweeps. A variable (not a const) so regression tests can
// starve the iteration and exercise the non-convergence reporting path.
var maxJacobiSweeps = 60

// EigFlops exposes the analytic HEEV-style flop count charged by EigH
// (~9 n^3 / 2 complex fused multiply-adds).
func EigFlops(n int) int64 {
	n64 := int64(n)
	return 9 * n64 * n64 * n64 / 2
}

// EigH computes the eigendecomposition A = V diag(w) V* of a Hermitian
// matrix by the cyclic complex Jacobi method. Eigenvalues are returned in
// ascending order with matching eigenvector columns. The input must be
// Hermitian; only its Hermitian part influences the result.
func EigH(a *tensor.Dense) (w []float64, v *tensor.Dense) {
	w, v, _ = EigHReport(a)
	return w, v
}

// EigHReport is EigH plus the convergence report of the cyclic Jacobi
// iteration; non-convergence is recorded in health.nonconverged and the
// best-effort decomposition is still returned.
func EigHReport(a *tensor.Dense) (w []float64, v *tensor.Dense, rep Report) {
	if a.Rank() != 2 || a.Dim(0) != a.Dim(1) {
		panic(fmt.Sprintf("linalg: EigH requires a square matrix, got %v", a.Shape()))
	}
	// Charge the global flop counter with the standard HEEV-style count
	// rather than the cyclic Jacobi iteration's larger raw arithmetic;
	// see svdFlops.
	chargeAnalytic(func() { w, v, rep = eigHJacobi(a) }, EigFlops(a.Dim(0)))
	if !rep.Converged {
		health.CountNonconverged("linalg.eigh")
	}
	telemetry.ObserveHist("solver.sweeps", telemetry.Pow2Bounds, float64(rep.Sweeps),
		telemetry.Label{Key: "solver", Value: "jacobi_eigh"})
	return w, v, rep
}

// eigHJacobi is the cyclic Jacobi worker behind EigH.
func eigHJacobi(a *tensor.Dense) (w []float64, v *tensor.Dense, rep Report) {
	n := a.Dim(0)
	// Work on the Hermitian average to be robust against tiny asymmetries
	// from upstream floating point.
	m := make([]complex128, n*n)
	ad := a.Data()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m[i*n+j] = (ad[i*n+j] + cmplx.Conj(ad[j*n+i])) / 2
		}
	}
	vd := make([]complex128, n*n)
	for i := 0; i < n; i++ {
		vd[i*n+i] = 1
	}

	frob := 0.0
	for _, x := range m {
		frob += real(x)*real(x) + imag(x)*imag(x)
	}
	frob = math.Sqrt(frob)
	if frob == 0 {
		frob = 1
	}

	for rep.Sweeps = 0; ; rep.Sweeps++ {
		off := 0.0
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				off += cmplx.Abs(m[p*n+q]) * cmplx.Abs(m[p*n+q])
			}
		}
		rep.Residual = math.Sqrt(2*off) / frob
		if rep.Residual <= eigTol {
			rep.Converged = true
			break
		}
		if rep.Sweeps >= maxJacobiSweeps {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				apq := m[p*n+q]
				r := cmplx.Abs(apq)
				if r <= eigTol*frob/float64(n) {
					continue
				}
				c, s, phase := jacobiRotation(real(m[p*n+p]), real(m[q*n+q]), apq)
				applyJacobi(m, vd, n, p, q, c, s, phase)
			}
		}
	}

	type pair struct {
		w   float64
		col int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{real(m[i*n+i]), i}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].w < pairs[j].w })

	w = make([]float64, n)
	v = tensor.New(n, n)
	od := v.Data()
	for k, pr := range pairs {
		w[k] = pr.w
		for i := 0; i < n; i++ {
			od[i*n+k] = vd[i*n+pr.col]
		}
	}
	return w, v, rep
}

// jacobiRotation returns the (c, s, phase) of the unitary 2x2 rotation
//
//	G = [[ c,            s*phase ],
//	     [ -s*conj(phase), c     ]]
//
// that diagonalizes the Hermitian block [[app, apq], [conj(apq), aqq]] via
// G* B G, where phase = apq/|apq|.
func jacobiRotation(app, aqq float64, apq complex128) (c, s float64, phase complex128) {
	r := cmplx.Abs(apq)
	phase = apq / complex(r, 0)
	tau := (aqq - app) / (2 * r)
	var t float64
	if tau >= 0 {
		t = 1 / (tau + math.Sqrt(1+tau*tau))
	} else {
		t = -1 / (-tau + math.Sqrt(1+tau*tau))
	}
	c = 1 / math.Sqrt(1+t*t)
	s = t * c
	return c, s, phase
}

// applyJacobi performs m <- G* m G and v <- v G for the rotation acting on
// rows/columns p and q.
func applyJacobi(m, v []complex128, n, p, q int, c, s float64, phase complex128) {
	cc := complex(c, 0)
	sp := complex(s, 0) * phase
	spc := cmplx.Conj(sp)
	tensor.AddFlops(6 * int64(n))
	// Columns: m[:, p], m[:, q] <- (m G)
	for i := 0; i < n; i++ {
		mip, miq := m[i*n+p], m[i*n+q]
		m[i*n+p] = cc*mip - spc*miq
		m[i*n+q] = sp*mip + cc*miq
	}
	// Rows: m[p, :], m[q, :] <- (G* m)
	for j := 0; j < n; j++ {
		mpj, mqj := m[p*n+j], m[q*n+j]
		m[p*n+j] = cc*mpj - sp*mqj
		m[q*n+j] = spc*mpj + cc*mqj
	}
	// enforce exact zero and real diagonal for numerical hygiene
	m[p*n+q] = 0
	m[q*n+p] = 0
	m[p*n+p] = complex(real(m[p*n+p]), 0)
	m[q*n+q] = complex(real(m[q*n+q]), 0)
	for i := 0; i < n; i++ {
		vip, viq := v[i*n+p], v[i*n+q]
		v[i*n+p] = cc*vip - spc*viq
		v[i*n+q] = sp*vip + cc*viq
	}
}

// ExpmHermitian returns exp(scale * H) for Hermitian H, computed through
// the eigendecomposition H = V diag(w) V*. Used to build Trotter gates
// e^{-tau h} for imaginary time evolution and e^{-i t h} for real time.
func ExpmHermitian(h *tensor.Dense, scale complex128) *tensor.Dense {
	w, v := EigH(h)
	n := h.Dim(0)
	// exp = V diag(e^{scale w}) V*
	d := tensor.New(n, n)
	for i := 0; i < n; i++ {
		d.Set(cmplx.Exp(scale*complex(w[i], 0)), i, i)
	}
	vh := v.Conj().Transpose(1, 0)
	return tensor.MatMul(tensor.MatMul(v, d), vh)
}
