package linalg

import (
	"fmt"
	"math"
	"math/rand"

	"gokoala/internal/health"
	"gokoala/internal/tensor"
)

// Operator is a linear map C^n -> C^m given only through its action on
// block vectors. It is the "implicit matrix" of the paper's Algorithm 4:
// tensor networks implement it by contracting the block vector into the
// network instead of ever forming the matrix.
type Operator interface {
	// Rows returns m, the (flattened) output dimension.
	Rows() int
	// Cols returns n, the (flattened) input dimension.
	Cols() int
	// Apply returns A @ q for q of shape [n, r]; result shape [m, r].
	Apply(q *tensor.Dense) *tensor.Dense
	// ApplyAdjoint returns A* @ p for p of shape [m, r]; result [n, r].
	ApplyAdjoint(p *tensor.Dense) *tensor.Dense
}

// SketchApplier is an optional Operator capability: reduced-precision
// application for the sketch/power-iteration stages of RandSVD. The
// sketch only has to span the dominant subspace, not reproduce entries,
// so implementations may compute in complex64 (convert-in/convert-out at
// the kernel boundary); RandSVD never uses them for the probe or the
// final projection, which stay full precision, and the deterministic
// subspace probe catches a sketch the reduced precision degraded.
type SketchApplier interface {
	// ApplySketch is Apply, allowed to compute in reduced precision.
	ApplySketch(q *tensor.Dense) *tensor.Dense
	// ApplyAdjointSketch is ApplyAdjoint, allowed to compute in reduced
	// precision.
	ApplyAdjointSketch(p *tensor.Dense) *tensor.Dense
}

// MatrixOperator adapts an explicit matrix to the Operator interface,
// used for testing and for the explicit einsumsvd path.
type MatrixOperator struct{ M *tensor.Dense }

func (o MatrixOperator) Rows() int { return o.M.Dim(0) }
func (o MatrixOperator) Cols() int { return o.M.Dim(1) }
func (o MatrixOperator) Apply(q *tensor.Dense) *tensor.Dense {
	return tensor.MatMul(o.M, q)
}
func (o MatrixOperator) ApplyAdjoint(p *tensor.Dense) *tensor.Dense {
	return tensor.MatMul(o.M.Conj().Transpose(1, 0), p)
}
func (o MatrixOperator) ApplySketch(q *tensor.Dense) *tensor.Dense {
	return tensor.MatMulMixed(o.M, q)
}
func (o MatrixOperator) ApplyAdjointSketch(p *tensor.Dense) *tensor.Dense {
	return tensor.MatMulMixed(o.M.Conj().Transpose(1, 0), p)
}

var _ SketchApplier = MatrixOperator{}

// OrthFunc orthonormalizes the columns of an m-by-r block vector,
// returning a matrix with the same span and orthonormal columns. The two
// implementations are QR (OrthQR) and the reshape-avoiding Gram-matrix
// method of paper Algorithm 5 (OrthGram).
type OrthFunc func(x *tensor.Dense) *tensor.Dense

// OrthQR orthonormalizes via Householder QR.
func OrthQR(x *tensor.Dense) *tensor.Dense {
	q, _ := QR(x)
	return q
}

// OrthGram orthonormalizes via the Gram-matrix eigendecomposition of
// Algorithm 5 (see gram.go).
func OrthGram(x *tensor.Dense) *tensor.Dense {
	q, _ := GramOrth(x)
	return q
}

// RandSVDOptions configures RandSVD.
type RandSVDOptions struct {
	// NIter is the number of orthogonal-iteration refinement rounds
	// (the loop in Algorithm 4). 1 is usually sufficient for PEPS
	// truncations; 0 gives the plain range sketch.
	NIter int
	// Oversample adds extra sketch columns that are truncated away at the
	// end, improving the accuracy of the leading rank singular values.
	Oversample int
	// Orth selects the orthogonalization kernel; defaults to OrthQR.
	Orth OrthFunc
	// Rng supplies the random sketch; required.
	Rng *rand.Rand
	// Sketch32 runs the sketch and power-iteration operator applications
	// in reduced (complex64) precision when the operator implements
	// SketchApplier; operators that do not are applied at full precision,
	// so the option degrades to a no-op rather than an error. The probe
	// and the final projection always stay complex128.
	Sketch32 bool
}

// RandSVD approximates the rank-`rank` truncated SVD of the implicitly
// given operator following the paper's Algorithm 4:
//
//	Q <- random n-by-r block; P <- orth(A Q)
//	repeat NIter times: Q <- orth(A* P); P <- orth(A Q)
//	B = P* A  (computed as (A* P)*);  SVD(B) = U~ S V*;  U = P U~
//
// It returns U (m-by-k), s (length k), V (n-by-k) with
// k = min(rank, m, n). The operator is never materialized.
func RandSVD(op Operator, rank int, opts RandSVDOptions) (u *tensor.Dense, s []float64, v *tensor.Dense) {
	u, s, v, _ = randSVD(op, rank, opts, false, 0)
	return u, s, v
}

// RandSVDReport is RandSVD plus a subspace-quality report. After the
// sketch basis P is built, a fixed block of probe vectors w (drawn from a
// seed derived only from the problem dimensions, never from opts.Rng, so
// existing random streams are unshifted) is pushed through the operator
// and the relative energy outside the sketch,
//
//	resid = ||(I - P P*) A w||_F / ||A w||_F,
//
// is measured. A healthy rank-k truncation leaves resid near the
// discarded spectral weight; a sketch that missed a dominant subspace
// shows resid of order one. The report is Converged when resid <= tol
// (tol <= 0 selects health.DefaultSubspaceTol).
func RandSVDReport(op Operator, rank int, opts RandSVDOptions, tol float64) (u *tensor.Dense, s []float64, v *tensor.Dense, rep Report) {
	return randSVD(op, rank, opts, true, tol)
}

// probeColumns is the width of the probe block in RandSVDReport: two
// independent Gaussian probes make the odds of both being near-orthogonal
// to a missed dominant direction negligible, at the cost of two extra
// operator applications.
const probeColumns = 2

func randSVD(op Operator, rank int, opts RandSVDOptions, probe bool, tol float64) (u *tensor.Dense, s []float64, v *tensor.Dense, rep Report) {
	if opts.Rng == nil {
		panic("linalg: RandSVD requires RandSVDOptions.Rng")
	}
	orth := opts.Orth
	if orth == nil {
		orth = OrthQR
	}
	m, n := op.Rows(), op.Cols()
	k := min(rank, min(m, n))
	if k <= 0 {
		panic(fmt.Sprintf("linalg: RandSVD rank %d invalid for %d x %d operator", rank, m, n))
	}
	r := min(k+opts.Oversample, min(m, n))

	apply, applyAdjoint := op.Apply, op.ApplyAdjoint
	if opts.Sketch32 {
		if sa, ok := op.(SketchApplier); ok {
			apply, applyAdjoint = sa.ApplySketch, sa.ApplyAdjointSketch
		}
	}
	q := tensor.Rand(opts.Rng, n, r)
	p := orth(apply(q))
	for i := 0; i < opts.NIter; i++ {
		q = orth(applyAdjoint(p))
		p = orth(apply(q))
	}
	rep.Sweeps = opts.NIter
	rep.Converged = true
	if probe {
		rep.Residual = subspaceResidual(op, p, m, n, k)
		if tol <= 0 {
			tol = health.DefaultSubspaceTol
		}
		rep.Converged = rep.Residual <= tol
	}
	// B = P* A as an r-by-n matrix: (A* P)*.
	b := op.ApplyAdjoint(p).Conj().Transpose(1, 0)
	ub, sb, vb := SVD(b)
	kk := min(k, len(sb))
	u = tensor.MatMul(p, sliceCols(ub, kk))
	return u, sb[:kk], sliceCols(vb, kk), rep
}

// subspaceResidual measures the relative Frobenius mass of A w outside
// the orthonormal sketch basis p. The probe rng is seeded purely from the
// problem dimensions so the check is deterministic and does not consume
// the caller's random stream.
func subspaceResidual(op Operator, p *tensor.Dense, m, n, k int) float64 {
	seed := int64(0x1E3779B97F4A7C15) ^ int64(m)<<40 ^ int64(n)<<20 ^ int64(k)
	prng := rand.New(rand.NewSource(seed))
	probe := tensor.Rand(prng, n, probeColumns)
	y := op.Apply(probe)
	// y_in = P (P* y)
	yin := tensor.MatMul(p, tensor.MatMul(p.Conj().Transpose(1, 0), y))
	yd, ind := y.Data(), yin.Data()
	var out, total float64
	for i := range yd {
		d := yd[i] - ind[i]
		out += real(d)*real(d) + imag(d)*imag(d)
		total += real(yd[i])*real(yd[i]) + imag(yd[i])*imag(yd[i])
	}
	if total == 0 {
		return 0
	}
	return math.Sqrt(out / total)
}
