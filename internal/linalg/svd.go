package linalg

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"
	"sync/atomic"

	"gokoala/internal/health"
	"gokoala/internal/obs"
	"gokoala/internal/pool"
	"gokoala/internal/telemetry"
	"gokoala/internal/tensor"
)

// Truncation observability: every truncated SVD records how much
// spectral weight it discarded (the per-truncation accuracy knob the
// paper's m sweeps trade against time) and how many truncations ran.
var (
	obsSVDCalls      = obs.NewCounter("svd.truncations")
	obsSVDTruncError = obs.NewGauge("svd.trunc_error")
)

// svdFlops is the standard LAPACK-equivalent complex-flop estimate for a
// thin SVD of an m-by-n matrix (GESVD-style, ~14 m n min(m,n) fused
// multiply-adds). The one-sided Jacobi iteration used here performs more
// raw arithmetic than a production bidiagonalization kernel; charging the
// global counter with the standard count keeps cost models and empirical
// complexity fits representative of a production implementation rather
// than of Jacobi's constant factor.
func svdFlops(m, n int) int64 {
	k := int64(min(m, n))
	return 14 * int64(m) * int64(n) * k / 2
}

// SVDFlops exposes the analytic thin-SVD flop count charged by SVD, so
// cost models (backend.Dist) can account a factorization without racing
// on the measured global counter.
func SVDFlops(m, n int) int64 { return svdFlops(m, n) }

// chargeAnalytic replaces the flops f added to the global counter with
// the given analytic count.
func chargeAnalytic(f func(), analytic int64) {
	before := tensor.FlopCount()
	f()
	tensor.AddFlops(analytic - (tensor.FlopCount() - before))
}

// SVD computes the thin singular value decomposition A = U diag(s) V* of
// an m-by-n matrix using the one-sided (Hestenes) Jacobi method. U is
// m-by-k, s has length k, and V is n-by-k with k = min(m, n). Singular
// values are returned in descending order. One-sided Jacobi computes even
// the small singular values to high relative accuracy, which matters for
// the truncation decisions in PEPS compression.
func SVD(a *tensor.Dense) (u *tensor.Dense, s []float64, v *tensor.Dense) {
	u, s, v, _ = SVDReport(a)
	return u, s, v
}

// SVDReport is SVD plus the convergence report of the Jacobi iteration.
// A non-converged report (sweep budget exhausted before every column
// pair met tolerance) is recorded in health.nonconverged; the factors
// are still returned — they are the best available orthogonal set — so
// callers choose between using and rejecting them.
func SVDReport(a *tensor.Dense) (u *tensor.Dense, s []float64, v *tensor.Dense, rep Report) {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("linalg: SVD requires a matrix, got rank %d", a.Rank()))
	}
	chargeAnalytic(func() { u, s, v, rep = svdJacobi(a) }, svdFlops(a.Dim(0), a.Dim(1)))
	if !rep.Converged {
		health.CountNonconverged("linalg.svd")
	}
	telemetry.ObserveHist("solver.sweeps", telemetry.Pow2Bounds, float64(rep.Sweeps),
		telemetry.Label{Key: "solver", Value: "jacobi_svd"})
	return u, s, v, rep
}

// svdJacobi is the one-sided Jacobi worker behind SVD.
func svdJacobi(a *tensor.Dense) (u *tensor.Dense, s []float64, v *tensor.Dense, rep Report) {
	m, n := a.Dim(0), a.Dim(1)
	if m < n {
		// SVD(A) from SVD(A*): A = U S V*  <=>  A* = V S U*.
		vv, s, uu, rep := svdJacobi(a.Conj().Transpose(1, 0))
		return uu, s, vv, rep
	}

	// Column-major copy of A: cols[j] is the j-th column, length m.
	cols := make([][]complex128, n)
	ad := a.Data()
	for j := 0; j < n; j++ {
		cols[j] = make([]complex128, m)
		for i := 0; i < m; i++ {
			cols[j][i] = ad[i*n+j]
		}
	}
	// V accumulated as columns too.
	vcols := make([][]complex128, n)
	for j := 0; j < n; j++ {
		vcols[j] = make([]complex128, n)
		vcols[j][j] = 1
	}

	const tol = 1e-14
	// Round-robin tournament (circle method) pair ordering: each of the
	// nc-1 rounds in a sweep pairs every column exactly once, so the
	// nc/2 rotations of a round touch pairwise-disjoint columns and run
	// concurrently on the worker pool. The schedule is fixed before the
	// sweep starts, so the result is bit-identical for any worker count.
	nc := n
	if nc%2 == 1 {
		nc++ // odd column count: one slot sits out each round
	}
	pos := make([]int, nc)
	for i := range pos {
		pos[i] = i
	}
	grain := int(65536/int64(7*m)) + 1
	// Columns with norm below eps times the largest column norm carry
	// singular values beneath float64 relative accuracy; their partially
	// underflowed Gram entries are inconsistent (the computed correlation
	// can exceed 1), so rotating against them churns forever without
	// converging. Treat them as numerical zeros: skip their rotations and
	// exclude them from the residual scan. The floor is refreshed each
	// sweep because rotations can grow the largest column toward sigma_max.
	const eps = 2.220446049250313e-16
	zeroFloor := func() float64 {
		maxAlpha := 0.0
		for j := 0; j < n; j++ {
			if a := normSq(cols[j]); a > maxAlpha {
				maxAlpha = a
			}
		}
		return eps * eps * maxAlpha
	}
	var floor float64
	var rotated atomic.Bool
	rotated.Store(true) // n <= 1 never sweeps yet is trivially converged
	for rep.Sweeps = 0; rep.Sweeps < maxJacobiSweeps; rep.Sweeps++ {
		rotated.Store(false)
		floor = zeroFloor()
		for round := 0; round < nc-1; round++ {
			pool.For(nc/2, grain, func(lo, hi int) {
				for w := lo; w < hi; w++ {
					p, q := pos[w], pos[nc-1-w]
					if p >= n || q >= n {
						continue // the padded slot of an odd tournament
					}
					if p > q {
						p, q = q, p
					}
					alpha, beta, gamma := colGram(cols[p], cols[q])
					if alpha <= floor || beta <= floor ||
						cmplx.Abs(gamma) <= tol*math.Sqrt(alpha)*math.Sqrt(beta) {
						continue
					}
					rotated.Store(true)
					c, sn, phase := jacobiRotation(alpha, beta, gamma)
					rotateCols(cols[p], cols[q], c, sn, phase)
					rotateCols(vcols[p], vcols[q], c, sn, phase)
				}
			})
			// Advance the circle: slot 0 stays, the rest shift one step.
			last := pos[nc-1]
			copy(pos[2:], pos[1:nc-1])
			pos[1] = last
		}
		if !rotated.Load() {
			break
		}
	}
	// Converged iff a full sweep finished without any rotation. When the
	// sweep budget ran out, measure how far from orthogonal the columns
	// still are: the largest |<p,q>| / (||p|| ||q||) over column pairs
	// (the quantity each rotation drives below tol). This scan is O(n^2 m)
	// but only runs on the rare non-converged exit.
	rep.Converged = !rotated.Load()
	if !rep.Converged {
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				alpha, beta, gamma := colGram(cols[p], cols[q])
				if alpha > floor && beta > floor {
					if r := cmplx.Abs(gamma) / (math.Sqrt(alpha) * math.Sqrt(beta)); r > rep.Residual {
						rep.Residual = r
					}
				}
			}
		}
	}

	// Singular values are the column norms; sort descending.
	type pair struct {
		s float64
		j int
	}
	pairs := make([]pair, n)
	for j := 0; j < n; j++ {
		pairs[j] = pair{norm2(cols[j]), j}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].s > pairs[j].s })

	k := n // thin: k = min(m,n) = n here
	u = tensor.New(m, k)
	v = tensor.New(n, k)
	s = make([]float64, k)
	ud, vd := u.Data(), v.Data()
	smax := pairs[0].s
	for col, pr := range pairs {
		s[col] = pr.s
		src := cols[pr.j]
		if pr.s > 1e-300 && pr.s > 1e-16*smax {
			inv := complex(1/pr.s, 0)
			for i := 0; i < m; i++ {
				ud[i*k+col] = src[i] * inv
			}
		} else {
			// Numerically zero singular value: complete U with a unit
			// vector orthogonal to the previous columns (deterministic
			// Gram-Schmidt over coordinate vectors).
			fillOrthoColumn(ud, m, k, col)
		}
		vsrc := vcols[pr.j]
		for i := 0; i < n; i++ {
			vd[i*k+col] = vsrc[i]
		}
	}
	return u, s, v, rep
}

// colGram returns ||p||^2, ||q||^2 and <p, q> = p* q.
func colGram(p, q []complex128) (alpha, beta float64, gamma complex128) {
	tensor.AddFlops(3 * int64(len(p)))
	for i := range p {
		alpha += real(p[i])*real(p[i]) + imag(p[i])*imag(p[i])
		beta += real(q[i])*real(q[i]) + imag(q[i])*imag(q[i])
		gamma += cmplx.Conj(p[i]) * q[i]
	}
	return alpha, beta, gamma
}

// rotateCols applies the 2-column Jacobi update [p q] <- [p q] G where
// G = [[c, s*phase], [-s*conj(phase), c]].
func rotateCols(p, q []complex128, c, s float64, phase complex128) {
	tensor.AddFlops(4 * int64(len(p)))
	tensor.JacobiRotate(p, q, c, s, phase)
}

// fillOrthoColumn writes into column col of the row-major m-by-k matrix a
// unit vector orthogonal to columns 0..col-1.
func fillOrthoColumn(d []complex128, m, k, col int) {
	for trial := 0; trial < m; trial++ {
		// candidate basis vector e_trial
		cand := make([]complex128, m)
		cand[trial] = 1
		for c := 0; c < col; c++ {
			var dot complex128
			for i := 0; i < m; i++ {
				dot += cmplx.Conj(d[i*k+c]) * cand[i]
			}
			for i := 0; i < m; i++ {
				cand[i] -= dot * d[i*k+c]
			}
		}
		if nn := norm2(cand); nn > 1e-6 {
			inv := complex(1/nn, 0)
			for i := 0; i < m; i++ {
				d[i*k+col] = cand[i] * inv
			}
			return
		}
	}
	// Unreachable for col < m, but leave the column zero rather than panic.
}

// TruncatedSVD computes the best rank-r approximation factors of A:
// U (m-by-r), s (length r), V (n-by-r) with r = min(rank, min(m, n)).
// Where the singular values should be attached is the caller's choice
// (see einsumsvd.SigmaMode for the conventions the PEPS layer uses).
func TruncatedSVD(a *tensor.Dense, rank int) (u *tensor.Dense, s []float64, v *tensor.Dense) {
	uf, sf, vf := SVD(a)
	k := min(rank, len(sf))
	if k <= 0 {
		panic(fmt.Sprintf("linalg: TruncatedSVD rank %d invalid", rank))
	}
	if obs.Enabled() || telemetry.Active() {
		te := TruncError(sf, k)
		if obs.Enabled() {
			obsSVDCalls.Add(1)
			obsSVDTruncError.Set(te)
		}
		if telemetry.Active() {
			telemetry.Observe("svd.trunc_error", te)
			telemetry.ObserveHist("svd.trunc_error_hist", telemetry.LogBounds, te)
			// Stash for the peps update on this goroutine to re-label
			// with its lattice bond (see telemetry.SetPendingTrunc).
			telemetry.SetPendingTrunc(te)
		}
	}
	return sliceCols(uf, k), sf[:k], sliceCols(vf, k)
}

// sliceCols returns the first k columns of a row-major matrix.
func sliceCols(a *tensor.Dense, k int) *tensor.Dense {
	m, n := a.Dim(0), a.Dim(1)
	if k == n {
		return a
	}
	out := tensor.New(m, k)
	ad, od := a.Data(), out.Data()
	for i := 0; i < m; i++ {
		copy(od[i*k:(i+1)*k], ad[i*n:i*n+k])
	}
	return out
}

// TruncError returns the relative Frobenius truncation error implied by
// keeping the first k of the given (descending) singular values.
func TruncError(s []float64, k int) float64 {
	var kept, all float64
	for i, x := range s {
		all += x * x
		if i < k {
			kept += x * x
		}
	}
	if all == 0 {
		return 0
	}
	return math.Sqrt((all - kept) / all)
}
