package linalg

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"gokoala/internal/health"
	"gokoala/internal/tensor"
)

// maxOffUnitary returns max |Q*Q - I| over entries, the orthonormality
// defect of the columns of q.
func maxOffUnitary(q *tensor.Dense) float64 {
	g := tensor.MatMul(q.Conj().Transpose(1, 0), q)
	n := g.Dim(0)
	worst := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := complex128(0)
			if i == j {
				want = 1
			}
			if d := cmplx.Abs(g.At(i, j) - want); d > worst {
				worst = d
			}
		}
	}
	return worst
}

func maxAbsDiff(a, b *tensor.Dense) float64 {
	ad, bd := a.Data(), b.Data()
	worst := 0.0
	for i := range ad {
		if d := cmplx.Abs(ad[i] - bd[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func TestSVDReportSurfacesNonConvergence(t *testing.T) {
	// Regression: the Jacobi iteration used to exhaust maxJacobiSweeps
	// silently, returning non-orthogonal factors as if all was well. Starve
	// the sweep budget on a matrix with a clustered (near-defective)
	// spectrum and demand the failure is reported and counted.
	defer func() { maxJacobiSweeps = 60 }()
	health.ResetCounters()
	rng := rand.New(rand.NewSource(5))
	// Near-defective: I + small random perturbation has singular values
	// clustered at 1, the slow case for one-sided Jacobi.
	n := 10
	a := tensor.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := complex(0.05*(2*rng.Float64()-1), 0.05*(2*rng.Float64()-1))
			if i == j {
				v += 1
			}
			a.Set(v, i, j)
		}
	}

	maxJacobiSweeps = 1
	_, _, _, rep := SVDReport(a)
	if rep.Converged {
		t.Fatal("one sweep reported converged on a clustered spectrum")
	}
	if rep.Residual <= 0 {
		t.Fatalf("non-converged report has residual %g, want > 0", rep.Residual)
	}
	if got := health.Nonconverged(); got != 1 {
		t.Fatalf("health.Nonconverged = %d after starved SVD, want 1", got)
	}

	// With the full budget the same matrix converges and the factors
	// reconstruct it.
	maxJacobiSweeps = 60
	health.ResetCounters()
	u, s, v, rep := SVDReport(a)
	if !rep.Converged {
		t.Fatalf("full budget did not converge (sweeps %d, residual %g)", rep.Sweeps, rep.Residual)
	}
	if got := health.Nonconverged(); got != 0 {
		t.Fatalf("converged SVD counted %d non-convergences", got)
	}
	sm := tensor.New(len(s), len(s))
	for i, x := range s {
		sm.Set(complex(x, 0), i, i)
	}
	recon := tensor.MatMul(tensor.MatMul(u, sm), v.Conj().Transpose(1, 0))
	if d := maxAbsDiff(recon, a); d > 1e-10 {
		t.Fatalf("reconstruction off by %g", d)
	}
}

func TestEigHReportConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 6
	a := tensor.New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := complex(2*rng.Float64()-1, 2*rng.Float64()-1)
			if i == j {
				v = complex(real(v), 0)
			}
			a.Set(v, i, j)
			a.Set(cmplx.Conj(v), j, i)
		}
	}
	_, _, rep := EigHReport(a)
	if !rep.Converged {
		t.Fatalf("random Hermitian did not converge: %+v", rep)
	}
	if rep.Residual > eigTol {
		t.Fatalf("converged residual %g above tolerance", rep.Residual)
	}
}

func TestGramOrthFallsBackPastKappa2(t *testing.T) {
	health.ResetCounters()
	// Columns e0 and e0 + 1e-8 e1: kappa^2 ~ 4e16, far past the 1e12
	// threshold — the Gram method cannot resolve the second direction and
	// must degrade to Householder QR.
	m := 6
	a := tensor.New(m, 2)
	a.Set(1, 0, 0)
	a.Set(1, 0, 1)
	a.Set(complex(1e-8, 0), 1, 1)
	q, r := GramOrth(a)
	if got := health.GramFallbacks(); got != 1 {
		t.Fatalf("GramFallbacks = %d, want exactly 1", got)
	}
	// The QR fallback must deliver genuinely orthonormal columns and an
	// exact factorization — the properties the Gram path lost.
	if d := maxOffUnitary(q); d > 1e-12 {
		t.Fatalf("fallback Q orthonormality defect %g", d)
	}
	if d := maxAbsDiff(tensor.MatMul(q, r), a); d > 1e-12 {
		t.Fatalf("fallback QR reconstruction off by %g", d)
	}

	// A well-conditioned matrix must stay on the Gram path.
	health.ResetCounters()
	rng := rand.New(rand.NewSource(7))
	b := tensor.Rand(rng, 8, 3)
	q2, r2 := GramOrth(b)
	if got := health.GramFallbacks(); got != 0 {
		t.Fatalf("well-conditioned input fell back %d times", got)
	}
	if d := maxOffUnitary(q2); d > 1e-10 {
		t.Fatalf("Gram Q orthonormality defect %g", d)
	}
	if d := maxAbsDiff(tensor.MatMul(q2, r2), b); d > 1e-10 {
		t.Fatalf("Gram reconstruction off by %g", d)
	}
}

func TestRandSVDReportDetectsMissedSubspace(t *testing.T) {
	// A flat spectrum (identity) offers a rank-2 sketch only 2 of 6 equal
	// directions: the probe residual must be order one and fail the
	// default tolerance.
	n := 6
	id := tensor.New(n, n)
	for i := 0; i < n; i++ {
		id.Set(1, i, i)
	}
	op := MatrixOperator{M: id}
	opts := RandSVDOptions{NIter: 0, Oversample: 0, Rng: rand.New(rand.NewSource(8))}
	_, _, _, rep := RandSVDReport(op, 2, opts, 0)
	if rep.Converged {
		t.Fatalf("flat spectrum at rank 2 reported converged (residual %g)", rep.Residual)
	}
	if rep.Residual < health.DefaultSubspaceTol {
		t.Fatalf("missed-subspace residual %g below tolerance %g", rep.Residual, health.DefaultSubspaceTol)
	}

	// A sharply decaying spectrum is captured: residual near the discarded
	// weight, far below tolerance.
	d := tensor.New(n, n)
	diag := []float64{3, 2, 1e-8, 1e-8, 1e-8, 1e-8}
	for i := 0; i < n; i++ {
		d.Set(complex(diag[i], 0), i, i)
	}
	opts = RandSVDOptions{NIter: 2, Oversample: 2, Rng: rand.New(rand.NewSource(9))}
	_, s, _, rep2 := RandSVDReport(MatrixOperator{M: d}, 2, opts, 0)
	if !rep2.Converged {
		t.Fatalf("low-rank operator reported non-converged (residual %g)", rep2.Residual)
	}
	if rep2.Residual > 1e-6 {
		t.Fatalf("healthy residual %g, want ~1e-8", rep2.Residual)
	}
	if math.Abs(s[0]-3) > 1e-8 || math.Abs(s[1]-2) > 1e-8 {
		t.Fatalf("leading singular values %v, want [3 2]", s)
	}
}

func TestRandSVDReportProbeDoesNotConsumeCallerRng(t *testing.T) {
	// The probe must draw from its own fixed-seed stream: RandSVD and
	// RandSVDReport with same-seeded rngs must produce identical factors,
	// and the caller's rng must sit at the same position afterwards.
	n := 8
	a := tensor.Rand(rand.New(rand.NewSource(10)), n, n)
	op := MatrixOperator{M: a}
	r1 := rand.New(rand.NewSource(11))
	r2 := rand.New(rand.NewSource(11))
	u1, s1, v1 := RandSVD(op, 3, RandSVDOptions{NIter: 1, Oversample: 2, Rng: r1})
	u2, s2, v2, _ := RandSVDReport(op, 3, RandSVDOptions{NIter: 1, Oversample: 2, Rng: r2}, 0)
	if maxAbsDiff(u1, u2) != 0 || maxAbsDiff(v1, v2) != 0 {
		t.Fatal("probe changed the factors")
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("probe changed the singular values")
		}
	}
	if r1.Int63() != r2.Int63() {
		t.Fatal("probe consumed the caller's random stream")
	}
}

func TestLanczosReportConverges(t *testing.T) {
	health.ResetCounters()
	// Diagonal operator: ground state is e_min with eigenvalue -2.
	diag := []float64{-2, -1, 0, 1, 2, 3}
	n := len(diag)
	matvec := func(x []complex128) []complex128 {
		out := make([]complex128, n)
		for i := range x {
			out[i] = complex(diag[i], 0) * x[i]
		}
		return out
	}
	eval, _, rep := LanczosReport(matvec, n, n, 1e-10, rand.New(rand.NewSource(12)))
	if !rep.Converged {
		t.Fatalf("Lanczos on a 6-dim operator did not converge: %+v", rep)
	}
	if math.Abs(eval-(-2)) > 1e-8 {
		t.Fatalf("ground energy %g, want -2", eval)
	}
	// Starved budget with a tolerance it cannot meet: must be counted.
	health.ResetCounters()
	_, _, rep = LanczosReport(matvec, n, 2, 1e-30, rand.New(rand.NewSource(13)))
	if rep.Converged {
		t.Fatal("2 iterations at tol 1e-30 reported converged")
	}
	if got := health.Nonconverged(); got != 1 {
		t.Fatalf("health.Nonconverged = %d after starved Lanczos, want 1", got)
	}
}
