package linalg

import (
	"math/cmplx"
	"math/rand"
	"testing"

	"gokoala/internal/pool"
	"gokoala/internal/tensor"
)

// TestSVDWorkerCountInvariant verifies the round-robin Jacobi sweep
// returns bit-identical factors for 1 and 4 workers: the tournament
// schedule is fixed before each sweep and every round's rotations touch
// disjoint column pairs, so the partition cannot change the arithmetic.
func TestSVDWorkerCountInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	defer pool.SetWorkers(0)
	for _, sz := range []struct{ m, n int }{{6, 6}, {16, 9}, {9, 16}, {40, 24}, {7, 1}} {
		a := tensor.Rand(rng, sz.m, sz.n)
		pool.SetWorkers(1)
		u1, s1, v1 := SVD(a)
		pool.SetWorkers(4)
		u4, s4, v4 := SVD(a)
		for i := range s1 {
			if s1[i] != s4[i] {
				t.Fatalf("%dx%d: singular value %d differs between 1 and 4 workers: %v vs %v", sz.m, sz.n, i, s1[i], s4[i])
			}
		}
		for i, v := range u1.Data() {
			if v != u4.Data()[i] {
				t.Fatalf("%dx%d: U element %d differs between worker counts", sz.m, sz.n, i)
			}
		}
		for i, v := range v1.Data() {
			if v != v4.Data()[i] {
				t.Fatalf("%dx%d: V element %d differs between worker counts", sz.m, sz.n, i)
			}
		}
	}
}

// TestSVDParallelReconstruction re-checks A = U diag(s) V* and factor
// orthonormality under a multi-worker pool, including odd column counts
// (which exercise the padded tournament slot).
func TestSVDParallelReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	pool.SetWorkers(4)
	defer pool.SetWorkers(0)
	for _, sz := range []struct{ m, n int }{{8, 8}, {12, 7}, {7, 12}, {15, 15}, {5, 3}} {
		a := tensor.Rand(rng, sz.m, sz.n)
		u, s, v := SVD(a)
		k := len(s)
		// Reconstruct and compare elementwise.
		recon := tensor.New(sz.m, sz.n)
		rd, ud, vd := recon.Data(), u.Data(), v.Data()
		for i := 0; i < sz.m; i++ {
			for j := 0; j < sz.n; j++ {
				var acc complex128
				for l := 0; l < k; l++ {
					acc += ud[i*k+l] * complex(s[l], 0) * cmplx.Conj(vd[j*k+l])
				}
				rd[i*sz.n+j] = acc
			}
		}
		if !tensor.AllClose(recon, a, 1e-9, 1e-9) {
			t.Fatalf("%dx%d: U s V* does not reconstruct A under 4 workers", sz.m, sz.n)
		}
		for i := 1; i < k; i++ {
			if s[i] > s[i-1] {
				t.Fatalf("%dx%d: singular values not descending: %v", sz.m, sz.n, s)
			}
		}
		// U*U = I.
		for c1 := 0; c1 < k; c1++ {
			for c2 := 0; c2 < k; c2++ {
				var dot complex128
				for i := 0; i < sz.m; i++ {
					dot += cmplx.Conj(ud[i*k+c1]) * ud[i*k+c2]
				}
				want := complex128(0)
				if c1 == c2 {
					want = 1
				}
				if d := dot - want; real(d)*real(d)+imag(d)*imag(d) > 1e-18 {
					t.Fatalf("%dx%d: U columns %d,%d not orthonormal: %v", sz.m, sz.n, c1, c2, dot)
				}
			}
		}
	}
}
