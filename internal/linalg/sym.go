// Block-wise factorizations of charge-symmetric tensors. A matricized
// symmetric tensor is block-diagonal over row charge: every stored block
// with row-sector charge q contributes to the dense sub-matrix of sector
// q, so QR and SVD factor each sector independently with the ordinary
// dense kernels (Householder QR, one-sided parallel Jacobi SVD), and
// truncation selects singular values globally across sectors. Sector
// assembly, factorization, and scatter-back all follow the canonical
// (ascending charge, lexicographic sector tuple) order, keeping results
// deterministic.
package linalg

import (
	"fmt"
	"sort"

	"gokoala/internal/obs"
	"gokoala/internal/telemetry"
	"gokoala/internal/tensor"
)

// symSector is one row-charge sector of a matricized symmetric tensor.
type symSector struct {
	charge  int     // canonical row charge
	rowKeys [][]int // left sector tuples, sorted lexicographically
	colKeys [][]int // right sector tuples, sorted lexicographically
	rowOff  []int   // dense row offset of each rowKey
	colOff  []int
	rowDims []int // dense row extent of each rowKey
	colDims []int
	m, n    int
	mat     *tensor.Dense
}

// prodSectorDims returns the dense extent of a sector tuple over legs.
func prodSectorDims(legs []tensor.Leg, sectors []int) int {
	d := 1
	for i, s := range sectors {
		d *= legs[i].Dims[s]
	}
	return d
}

func lessIntSlice(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// symMatricize groups the blocks of t by row charge (over the first
// leftAxes legs) and assembles one dense matrix per sector, in ascending
// charge order. Only row/column sector tuples that appear in at least
// one stored block are included: absent tuples would contribute zero
// rows/columns, which change neither the factorization's action on the
// stored data nor its singular values.
func symMatricize(t *tensor.Sym, leftAxes int) []*symSector {
	if leftAxes <= 0 || leftAxes >= t.Rank() {
		panic(fmt.Sprintf("linalg: sym split leftAxes %d out of range for rank %d", leftAxes, t.Rank()))
	}
	legs := t.Legs()
	type group struct {
		rows map[string][]int
		cols map[string][]int
	}
	groups := map[int]*group{}
	keyOf := func(sec []int) string {
		b := make([]byte, len(sec))
		for i, s := range sec {
			b[i] = byte(s)
		}
		return string(b)
	}
	rowCharge := func(sec []int) int {
		q := 0
		for i := 0; i < leftAxes; i++ {
			q += legs[i].Dir * legs[i].Charges[sec[i]]
		}
		return tensor.CanonCharge(q, t.Mod())
	}
	t.EachBlock(func(sec []int, _ *tensor.Dense) {
		q := rowCharge(sec)
		g := groups[q]
		if g == nil {
			g = &group{rows: map[string][]int{}, cols: map[string][]int{}}
			groups[q] = g
		}
		row := append([]int{}, sec[:leftAxes]...)
		col := append([]int{}, sec[leftAxes:]...)
		g.rows[keyOf(row)] = row
		g.cols[keyOf(col)] = col
	})

	charges := make([]int, 0, len(groups))
	for q := range groups {
		charges = append(charges, q)
	}
	sort.Ints(charges)
	sectors := make([]*symSector, 0, len(charges))
	for _, q := range charges {
		g := groups[q]
		sec := &symSector{charge: q}
		for _, row := range g.rows {
			sec.rowKeys = append(sec.rowKeys, row)
		}
		for _, col := range g.cols {
			sec.colKeys = append(sec.colKeys, col)
		}
		sort.Slice(sec.rowKeys, func(i, j int) bool { return lessIntSlice(sec.rowKeys[i], sec.rowKeys[j]) })
		sort.Slice(sec.colKeys, func(i, j int) bool { return lessIntSlice(sec.colKeys[i], sec.colKeys[j]) })
		for _, row := range sec.rowKeys {
			sec.rowOff = append(sec.rowOff, sec.m)
			d := prodSectorDims(legs[:leftAxes], row)
			sec.rowDims = append(sec.rowDims, d)
			sec.m += d
		}
		for _, col := range sec.colKeys {
			sec.colOff = append(sec.colOff, sec.n)
			d := prodSectorDims(legs[leftAxes:], col)
			sec.colDims = append(sec.colDims, d)
			sec.n += d
		}
		sec.mat = tensor.New(sec.m, sec.n)
		sectors = append(sectors, sec)
	}

	// Scatter the stored blocks into their sector matrices.
	rowIndex := func(sec *symSector, row []int) int {
		for i, r := range sec.rowKeys {
			if keyOf(r) == keyOf(row) {
				return i
			}
		}
		panic("linalg: sym sector row lost")
	}
	colIndex := func(sec *symSector, col []int) int {
		for i, c := range sec.colKeys {
			if keyOf(c) == keyOf(col) {
				return i
			}
		}
		panic("linalg: sym sector col lost")
	}
	byCharge := map[int]*symSector{}
	for _, s := range sectors {
		byCharge[s.charge] = s
	}
	t.EachBlock(func(sec []int, b *tensor.Dense) {
		s := byCharge[rowCharge(sec)]
		ri := rowIndex(s, sec[:leftAxes])
		ci := colIndex(s, sec[leftAxes:])
		bm, bn := s.rowDims[ri], s.colDims[ci]
		src := b.Data()
		dst := s.mat.Data()
		for i := 0; i < bm; i++ {
			copy(dst[(s.rowOff[ri]+i)*s.n+s.colOff[ci]:(s.rowOff[ri]+i)*s.n+s.colOff[ci]+bn], src[i*bn:(i+1)*bn])
		}
	})
	return sectors
}

// bondLegFrom builds the new bond leg from per-sector kept counts,
// dropping empty sectors.
func bondLegFrom(sectors []*symSector, kept []int, dir int) (tensor.Leg, []int) {
	leg := tensor.Leg{Dir: dir}
	bondSector := make([]int, len(sectors)) // sector index on the bond leg, -1 if dropped
	for i := range bondSector {
		bondSector[i] = -1
	}
	for i, s := range sectors {
		if kept[i] <= 0 {
			continue
		}
		bondSector[i] = len(leg.Charges)
		leg.Charges = append(leg.Charges, s.charge)
		leg.Dims = append(leg.Dims, kept[i])
	}
	return leg, bondSector
}

// scatterLeft folds the per-sector row factors (m_g x k_g matrices,
// columns possibly truncated to kept[g]) into a symmetric tensor with
// legs leftLegs + bond(dir -1) and total charge 0.
func scatterLeft(t *tensor.Sym, leftAxes int, sectors []*symSector, facs []*tensor.Dense, kept []int) *tensor.Sym {
	legs := t.Legs()
	bond, bondSector := bondLegFrom(sectors, kept, -1)
	outLegs := append(append([]tensor.Leg{}, legs[:leftAxes]...), bond)
	out := tensor.NewSym(t.Mod(), 0, outLegs)
	for gi, s := range sectors {
		k := kept[gi]
		if k <= 0 {
			continue
		}
		f := facs[gi]
		fn := f.Dim(1) // full column count of the factor
		for ri, row := range s.rowKeys {
			shape := make([]int, 0, leftAxes+1)
			for i, sec := range row {
				shape = append(shape, legs[i].Dims[sec])
			}
			shape = append(shape, k)
			blk := tensor.New(shape...)
			bd, fd := blk.Data(), f.Data()
			for i := 0; i < s.rowDims[ri]; i++ {
				copy(bd[i*k:(i+1)*k], fd[(s.rowOff[ri]+i)*fn:(s.rowOff[ri]+i)*fn+k])
			}
			out.SetBlock(blk, append(append([]int{}, row...), bondSector[gi])...)
		}
	}
	return out
}

// scatterRight folds the per-sector column factors (k_g x n_g matrices,
// rows possibly truncated to kept[g]) into a symmetric tensor with legs
// bond(dir +1) + rightLegs and total charge equal to t's.
func scatterRight(t *tensor.Sym, leftAxes int, sectors []*symSector, facs []*tensor.Dense, kept []int) *tensor.Sym {
	legs := t.Legs()
	bond, bondSector := bondLegFrom(sectors, kept, +1)
	outLegs := append([]tensor.Leg{bond}, legs[leftAxes:]...)
	out := tensor.NewSym(t.Mod(), t.Total(), outLegs)
	for gi, s := range sectors {
		k := kept[gi]
		if k <= 0 {
			continue
		}
		f := facs[gi]
		for ci, col := range s.colKeys {
			cn := s.colDims[ci]
			shape := make([]int, 0, t.Rank()-leftAxes+1)
			shape = append(shape, k)
			for i, sec := range col {
				shape = append(shape, legs[leftAxes+i].Dims[sec])
			}
			blk := tensor.New(shape...)
			bd, fd := blk.Data(), f.Data()
			for j := 0; j < k; j++ {
				copy(bd[j*cn:(j+1)*cn], fd[j*s.n+s.colOff[ci]:j*s.n+s.colOff[ci]+cn])
			}
			out.SetBlock(blk, append([]int{bondSector[gi]}, col...)...)
		}
	}
	return out
}

// SymQRSplit is QRSplit for block-sparse symmetric tensors: the first
// leftAxes legs become Q's rows, factoring each row-charge sector with
// the dense Householder QR. Q carries the new bond with direction -1 and
// total charge 0; R carries the dual bond and t's total charge, so
// contracting Q·R over the bond reproduces t.
func SymQRSplit(t *tensor.Sym, leftAxes int) (q, r *tensor.Sym) {
	sectors := symMatricize(t, leftAxes)
	if len(sectors) == 0 {
		panic("linalg: SymQRSplit on a tensor with no blocks")
	}
	qs := make([]*tensor.Dense, len(sectors))
	rs := make([]*tensor.Dense, len(sectors))
	kept := make([]int, len(sectors))
	for i, s := range sectors {
		qg, rg := QR(s.mat)
		qs[i], rs[i] = qg, rg
		kept[i] = qg.Dim(1)
	}
	return scatterLeft(t, leftAxes, sectors, qs, kept), scatterRight(t, leftAxes, sectors, rs, kept)
}

// symSingular is one singular value with its sector provenance.
type symSingular struct {
	sigma float64
	group int // index into the ascending-charge sector list
	idx   int // position within the sector's descending spectrum
}

// SymSVDSplit factors t (first leftAxes legs as rows) into U, s, V†
// block by block: each row-charge sector gets a dense one-sided Jacobi
// SVD, and the kept rank is chosen globally — the union spectrum is
// sorted descending (ties broken by ascending sector charge, then
// position) and the top min(rank, total) values survive. Within each
// sector the kept values are a prefix of its descending spectrum, so U
// keeps leading columns and V† leading rows. U carries the new bond
// (direction -1, total charge 0); V† carries the dual bond and t's
// total charge. The returned singular values follow the bond's
// canonical order: ascending sector charge, descending within a sector.
func SymSVDSplit(t *tensor.Sym, leftAxes, rank int) (u *tensor.Sym, s []float64, vh *tensor.Sym) {
	sectors := symMatricize(t, leftAxes)
	if len(sectors) == 0 {
		panic("linalg: SymSVDSplit on a tensor with no blocks")
	}
	us := make([]*tensor.Dense, len(sectors))
	vhs := make([]*tensor.Dense, len(sectors))
	sigmas := make([][]float64, len(sectors))
	var all []symSingular
	for i, sec := range sectors {
		ug, sg, vg := SVD(sec.mat)
		us[i] = ug
		sigmas[i] = sg
		// Store V† (k x n) so truncation slices rows.
		k := len(sg)
		vt := tensor.New(k, sec.n)
		vd, vtd := vg.Data(), vt.Data()
		for j := 0; j < k; j++ {
			for c := 0; c < sec.n; c++ {
				x := vd[c*k+j]
				vtd[j*sec.n+c] = complex(real(x), -imag(x))
			}
		}
		vhs[i] = vt
		for j, sv := range sg {
			all = append(all, symSingular{sigma: sv, group: i, idx: j})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].sigma != all[j].sigma {
			return all[i].sigma > all[j].sigma
		}
		if all[i].group != all[j].group {
			return all[i].group < all[j].group
		}
		return all[i].idx < all[j].idx
	})
	k := len(all)
	if rank > 0 && rank < k {
		k = rank
	}
	kept := make([]int, len(sectors))
	for _, sv := range all[:k] {
		kept[sv.group]++
	}
	// Truncation-error bookkeeping, matching TruncatedSVD's telemetry.
	if obs.Enabled() || telemetry.Active() {
		global := make([]float64, len(all))
		for i, sv := range all {
			global[i] = sv.sigma
		}
		te := TruncError(global, k)
		if obs.Enabled() {
			obsSVDCalls.Add(1)
			obsSVDTruncError.Set(te)
		}
		if telemetry.Active() {
			telemetry.Observe("svd.trunc_error", te)
			telemetry.ObserveHist("svd.trunc_error_hist", telemetry.LogBounds, te)
			telemetry.SetPendingTrunc(te)
		}
	}
	u = scatterLeft(t, leftAxes, sectors, us, kept)
	// V† factors already have the bond as rows; slice happens in scatter.
	vh = scatterRight(t, leftAxes, sectors, vhs, kept)
	for gi := range sectors {
		s = append(s, sigmas[gi][:kept[gi]]...)
	}
	return u, s, vh
}
