package linalg

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"gokoala/internal/einsum"
	"gokoala/internal/tensor"
)

func symEachTuple(legs []tensor.Leg, f func(sec []int)) {
	sec := make([]int, len(legs))
	var rec func(i int)
	rec = func(i int) {
		if i == len(legs) {
			f(sec)
			return
		}
		for s := 0; s < legs[i].NumSectors(); s++ {
			sec[i] = s
			rec(i + 1)
		}
	}
	rec(0)
}

func randSymFull(rng *rand.Rand, mod, total int, legs []tensor.Leg) *tensor.Sym {
	s := tensor.NewSym(mod, total, legs)
	symEachTuple(legs, func(sec []int) {
		if !s.Allowed(sec) {
			return
		}
		shape := make([]int, len(sec))
		for i, x := range sec {
			shape[i] = legs[i].Dims[x]
		}
		s.SetBlock(tensor.Rand(rng, shape...), sec...)
	})
	return s
}

func symDenseClose(t *testing.T, got, want *tensor.Dense, tol float64) {
	t.Helper()
	gd, wd := got.Data(), want.Data()
	if len(gd) != len(wd) {
		t.Fatalf("size %d, want %d", len(gd), len(wd))
	}
	for i := range gd {
		d := gd[i] - wd[i]
		if math.Hypot(real(d), imag(d)) > tol {
			t.Fatalf("element %d: %v, want %v", i, gd[i], wd[i])
		}
	}
}

func symTestLegs() []tensor.Leg {
	return []tensor.Leg{
		{Dir: 1, Charges: []int{0, 1}, Dims: []int{2, 2}},
		{Dir: -1, Charges: []int{0, 1}, Dims: []int{1, 2}},
		{Dir: 1, Charges: []int{0, 1}, Dims: []int{2, 1}},
	}
}

func TestSymQRSplitReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, mod := range []int{0, 2} {
		a := randSymFull(rng, mod, 1, symTestLegs())
		q, r := SymQRSplit(a, 2)
		if q.Total() != 0 {
			t.Fatalf("Q total %d, want 0", q.Total())
		}
		if r.Total() != a.Total() {
			t.Fatalf("R total %d, want %d", r.Total(), a.Total())
		}
		if !tensor.DualLegs(q.Leg(2), r.Leg(0)) {
			t.Fatal("Q and R bond legs are not dual")
		}
		got := einsum.MustContractSym("abk,kc->abc", q, r)
		symDenseClose(t, got.ToDense(), a.ToDense(), 1e-12)
	}
}

func TestSymQRSplitOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	a := randSymFull(rng, 0, 0, symTestLegs())
	q, _ := SymQRSplit(a, 2)
	// Q† Q over the row legs must be the identity on the bond.
	g := einsum.MustContractSym("abk,abl->kl", q.Conj(), q)
	gd := g.ToDense()
	n := gd.Dim(0)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := complex(0, 0)
			if i == j {
				want = 1
			}
			d := gd.Data()[i*n+j] - want
			if math.Hypot(real(d), imag(d)) > 1e-12 {
				t.Fatalf("QhQ[%d,%d] = %v", i, j, gd.Data()[i*n+j])
			}
		}
	}
}

func TestSymSVDSplitFullRankMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for _, mod := range []int{0, 2} {
		a := randSymFull(rng, mod, 0, symTestLegs())
		u, s, vh := SymSVDSplit(a, 2, 0)
		// The union spectrum must equal the dense spectrum of the
		// embedded matricization (zeros from symmetry-forbidden entries
		// excepted — the dense matricization has extra exact zeros).
		m := a.Leg(0).TotalDim() * a.Leg(1).TotalDim()
		n := a.Leg(2).TotalDim()
		dmat := a.ToDense().Reshape(m, n)
		_, ds, _ := SVD(dmat)
		sorted := append([]float64{}, s...)
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
		for i, sv := range sorted {
			if math.Abs(sv-ds[i]) > 1e-10 {
				t.Fatalf("mod %d: singular value %d: %g, want %g", mod, i, sv, ds[i])
			}
		}
		// Reconstruction: U diag(s) V† == a.
		us := u.Clone()
		scaleBond(t, us, 2, s)
		got := einsum.MustContractSym("abk,kc->abc", us, vh)
		symDenseClose(t, got.ToDense(), a.ToDense(), 1e-10)
	}
}

// scaleBond multiplies bond-slice j of the given axis by s[j], walking
// blocks and using the bond leg's sector offsets.
func scaleBond(t *testing.T, x *tensor.Sym, axis int, s []float64) {
	t.Helper()
	leg := x.Leg(axis)
	off := leg.Offsets()
	x.EachBlock(func(sec []int, b *tensor.Dense) {
		sh := b.Shape()
		inner := 1
		for i := axis + 1; i < len(sh); i++ {
			inner *= sh[i]
		}
		outer := 1
		for i := 0; i < axis; i++ {
			outer *= sh[i]
		}
		d := b.Data()
		for o := 0; o < outer; o++ {
			for j := 0; j < sh[axis]; j++ {
				f := complex(s[off[sec[axis]]+j], 0)
				base := (o*sh[axis] + j) * inner
				for i := 0; i < inner; i++ {
					d[base+i] *= f
				}
			}
		}
	})
}

func TestSymSVDSplitTruncationMatchesDense(t *testing.T) {
	// Global truncation across sectors must keep exactly the top-k of the
	// union spectrum — the same values a dense truncated SVD keeps.
	rng := rand.New(rand.NewSource(34))
	a := randSymFull(rng, 0, 0, symTestLegs())
	const rank = 3
	u, s, vh := SymSVDSplit(a, 2, rank)
	if len(s) != rank {
		t.Fatalf("kept %d values, want %d", len(s), rank)
	}
	m := a.Leg(0).TotalDim() * a.Leg(1).TotalDim()
	n := a.Leg(2).TotalDim()
	_, ds, _ := SVD(a.ToDense().Reshape(m, n))
	sorted := append([]float64{}, s...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	for i := 0; i < rank; i++ {
		if math.Abs(sorted[i]-ds[i]) > 1e-10 {
			t.Fatalf("kept value %d: %g, want %g", i, sorted[i], ds[i])
		}
	}
	// Truncated reconstruction error equals the dense optimum: the norm
	// of the dropped tail.
	us := u.Clone()
	scaleBond(t, us, 2, s)
	rec := einsum.MustContractSym("abk,kc->abc", us, vh).ToDense()
	var errSq float64
	ad, rd := a.ToDense().Data(), rec.Data()
	for i := range ad {
		d := ad[i] - rd[i]
		errSq += real(d)*real(d) + imag(d)*imag(d)
	}
	var tailSq float64
	for _, sv := range ds[rank:] {
		tailSq += sv * sv
	}
	if math.Abs(math.Sqrt(errSq)-math.Sqrt(tailSq)) > 1e-10 {
		t.Fatalf("truncation error %g, dense optimum %g", math.Sqrt(errSq), math.Sqrt(tailSq))
	}
	// The bond must carry per-sector prefixes only: bond dim == rank.
	if u.Leg(2).TotalDim() != rank || vh.Leg(0).TotalDim() != rank {
		t.Fatalf("bond dims %d/%d, want %d", u.Leg(2).TotalDim(), vh.Leg(0).TotalDim(), rank)
	}
}

func TestSymSVDSplitDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	a := randSymFull(rng, 2, 1, symTestLegs())
	u1, s1, v1 := SymSVDSplit(a, 1, 2)
	u2, s2, v2 := SymSVDSplit(a.Clone(), 1, 2)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("singular values differ at %d: %v vs %v", i, s1, s2)
		}
	}
	symDenseClose(t, u1.ToDense(), u2.ToDense(), 0)
	symDenseClose(t, v1.ToDense(), v2.ToDense(), 0)
}
