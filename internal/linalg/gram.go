package linalg

import (
	"fmt"
	"math"

	"gokoala/internal/health"
	"gokoala/internal/tensor"
)

// GramOrth orthonormalizes the columns of a tall m-by-n matrix A via the
// reshape-avoiding Gram-matrix method of paper Algorithm 5:
//
//	G = A* A              (n-by-n, small)
//	G = X diag(w) X*      (Hermitian eigendecomposition)
//	R = sqrt(w) X*        so that A = Q R with
//	P = X diag(1/sqrt(w)) and Q = A P
//
// Q has orthonormal columns spanning range(A) and R is n-by-n with
// A = Q R (R is not triangular; for PEPS it only matters that it is a
// small square factor). In distributed memory only the n-by-n Gram matrix
// leaves the large distributed tensor, which is what removes the
// distributed reshape bottleneck in the paper's Cyclops backend.
//
// Eigenvalues below a relative cutoff are clamped so rank-deficient inputs
// do not produce Inf/NaN. In null directions the Q columns degrade (the
// Gram method squares the condition number — the method's known tradeoff,
// accepted by the paper as well); full-rank inputs, which is what PEPS
// site tensors are generically, are unaffected.
func GramOrth(a *tensor.Dense) (q, r *tensor.Dense) {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("linalg: GramOrth requires a matrix, got rank %d", a.Rank()))
	}
	n := a.Dim(1)
	ah := a.Conj().Transpose(1, 0)
	g := tensor.MatMul(ah, a)
	w, x := EigH(g)

	// The Gram eigenvalues are the squared singular values of A, so
	// wmax/wmin estimates κ²(A). Past health.Kappa2Max the squared
	// conditioning has destroyed the small directions in double
	// precision: degrade to Householder QR, which orthogonalizes A
	// directly and never squares κ. Q and R keep the same shapes for
	// tall inputs (k = n), so callers are unaffected beyond accuracy.
	if n > 0 && health.GramIllConditioned(w[n-1], w[0]) {
		health.CountGramFallback()
		return QR(a)
	}

	wmax := 0.0
	for _, v := range w {
		if v > wmax {
			wmax = v
		}
	}
	if wmax == 0 {
		wmax = 1
	}
	cutoff := 1e-24 * wmax

	sq := tensor.New(n, n)  // diag(sqrt(w))
	isq := tensor.New(n, n) // diag(1/sqrt(w)), zero for dropped directions
	for i := 0; i < n; i++ {
		wi := w[i]
		if wi < 0 {
			wi = 0
		}
		s := math.Sqrt(wi)
		sq.Set(complex(s, 0), i, i)
		if wi >= cutoff {
			// Directions below the cutoff carry no range of A: drop them
			// (zero column in Q) rather than amplify rounding noise by
			// 1/sqrt(w).
			isq.Set(complex(1/s, 0), i, i)
		}
	}
	xh := x.Conj().Transpose(1, 0)
	r = tensor.MatMul(sq, xh)
	p := tensor.MatMul(x, isq)
	q = tensor.MatMul(a, p)
	return q, r
}

// GramQRSplit is the tensor-level counterpart of QRSplit using GramOrth:
// t is matricized with the first leftAxes axes as rows, factored as Q R
// with the small Gram-matrix method, and folded back. This is the
// "local-gram-qr" variant benchmarked in paper Figure 7.
func GramQRSplit(t *tensor.Dense, leftAxes int) (q, r *tensor.Dense) {
	shape := t.Shape()
	if leftAxes <= 0 || leftAxes >= len(shape) {
		panic(fmt.Sprintf("linalg: GramQRSplit leftAxes %d out of range for rank %d", leftAxes, len(shape)))
	}
	rows, cols := 1, 1
	for i, d := range shape {
		if i < leftAxes {
			rows *= d
		} else {
			cols *= d
		}
	}
	qm, rm := GramOrth(t.Reshape(rows, cols))
	k := qm.Dim(1)
	qShape := append(append([]int{}, shape[:leftAxes]...), k)
	rShape := append([]int{k}, shape[leftAxes:]...)
	return qm.Reshape(qShape...), rm.Reshape(rShape...)
}
