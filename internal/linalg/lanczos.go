package linalg

import (
	"math"
	"math/cmplx"
	"math/rand"

	"gokoala/internal/health"
	"gokoala/internal/telemetry"
	"gokoala/internal/tensor"
)

// MatVecFunc applies a Hermitian operator to a vector.
type MatVecFunc func(x []complex128) []complex128

// Lanczos computes the smallest eigenvalue and corresponding eigenvector
// of a Hermitian operator of dimension n given only through matvec. It
// runs at most maxIter Krylov steps with full reorthogonalization (robust
// for the modest iteration counts ground-state problems need) and stops
// early when the residual estimate drops below tol.
//
// It is the exact-diagonalization reference for the ITE and VQE accuracy
// studies (paper Figures 13 and 14), where the Hamiltonian is applied
// term by term to state vectors of up to 2^16 amplitudes.
func Lanczos(matvec MatVecFunc, n, maxIter int, tol float64, rng *rand.Rand) (eval float64, evec []complex128) {
	eval, evec, _ = LanczosReport(matvec, n, maxIter, tol, rng)
	return eval, evec
}

// LanczosReport is Lanczos plus a convergence report: Converged when the
// recurrence residual (the last beta) dropped below tol before the
// iteration budget ran out, or when the Krylov basis reached the full
// space dimension (in which case the projection is exact). Exhausting
// maxIter with beta still above tol is recorded in health.nonconverged.
func LanczosReport(matvec MatVecFunc, n, maxIter int, tol float64, rng *rand.Rand) (eval float64, evec []complex128, rep Report) {
	if maxIter > n {
		maxIter = n
	}
	if maxIter < 1 {
		maxIter = 1
	}
	// Random start vector.
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(2*rng.Float64()-1, 2*rng.Float64()-1)
	}
	normalize(v)

	basis := make([][]complex128, 0, maxIter)
	var alphas, betas []float64

	w := v
	for it := 0; it < maxIter; it++ {
		basis = append(basis, w)
		hv := matvec(w)
		a := realDot(w, hv)
		alphas = append(alphas, a)
		// hv <- hv - a w - beta_{prev} basis[it-1]
		for i := range hv {
			hv[i] -= complex(a, 0) * w[i]
		}
		if it > 0 {
			b := betas[it-1]
			prev := basis[it-1]
			for i := range hv {
				hv[i] -= complex(b, 0) * prev[i]
			}
		}
		// Full reorthogonalization for numerical stability.
		for _, u := range basis {
			d := dot(u, hv)
			for i := range hv {
				hv[i] -= d * u[i]
			}
		}
		b := math.Sqrt(normSq(hv))
		rep.Residual = b
		rep.Sweeps = it + 1
		if b < tol {
			rep.Converged = true
			break
		}
		betas = append(betas, b)
		inv := complex(1/b, 0)
		for i := range hv {
			hv[i] *= inv
		}
		w = hv
	}
	// A Krylov basis spanning the full space makes the tridiagonal
	// projection exact regardless of the last residual.
	if len(basis) == n {
		rep.Converged = true
	}
	if !rep.Converged {
		health.CountNonconverged("linalg.lanczos")
	}
	telemetry.ObserveHist("solver.sweeps", telemetry.Pow2Bounds, float64(rep.Sweeps),
		telemetry.Label{Key: "solver", Value: "lanczos"})

	// Diagonalize the tridiagonal projection with the dense Hermitian
	// eigensolver (sizes here are <= maxIter, tiny).
	k := len(basis)
	t := tensor.New(k, k)
	for i := 0; i < k; i++ {
		t.Set(complex(alphas[i], 0), i, i)
		if i+1 < k {
			t.Set(complex(betas[i], 0), i, i+1)
			t.Set(complex(betas[i], 0), i+1, i)
		}
	}
	w2, vecs := EigH(t)
	eval = w2[0]
	evec = make([]complex128, n)
	for j := 0; j < k; j++ {
		c := vecs.At(j, 0)
		if c == 0 {
			continue
		}
		bj := basis[j]
		for i := 0; i < n; i++ {
			evec[i] += c * bj[i]
		}
	}
	normalize(evec)
	return eval, evec, rep
}

func normalize(v []complex128) {
	n := math.Sqrt(normSq(v))
	if n == 0 {
		return
	}
	inv := complex(1/n, 0)
	for i := range v {
		v[i] *= inv
	}
}

func dot(a, b []complex128) complex128 {
	var s complex128
	for i := range a {
		s += cmplx.Conj(a[i]) * b[i]
	}
	return s
}

func realDot(a, b []complex128) float64 { return real(dot(a, b)) }
