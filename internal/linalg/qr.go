// Package linalg provides the dense complex numerical linear algebra the
// PEPS algorithms are built on: Householder QR, Hermitian eigendecomposition
// by the cyclic Jacobi method, singular value decomposition by one-sided
// (Hestenes) Jacobi, truncated and randomized SVD (paper Algorithm 4),
// reshape-avoiding Gram-matrix orthogonalization (paper Algorithm 5),
// Hermitian matrix exponentials for Trotter gates, and a Lanczos
// eigensolver for exact reference ground states.
//
// All routines operate on rank-2 tensors from the tensor package and are
// written from scratch against the stdlib, playing the role LAPACK and
// ScaLAPACK play for the original Koala library.
package linalg

import (
	"fmt"
	"math"
	"math/cmplx"

	"gokoala/internal/tensor"
)

// QRFlops is the analytic flop count QR charges for an m-by-n input: each
// of the k = min(m, n) reflectors is applied once to the trailing
// submatrix (2 (m-j) n) and once while accumulating thin Q (2 (m-j) k),
// summing to 2 (n+k) (m k - k(k-1)/2). Exposed so cost models can charge
// a factorization without racing on the measured global counter.
func QRFlops(m, n int) int64 {
	k := int64(min(m, n))
	s := int64(m)*k - k*(k-1)/2
	return 2 * (int64(n) + k) * s
}

// QR computes the thin QR factorization A = Q R of an m-by-n matrix using
// complex Householder reflections. Q is m-by-k with orthonormal columns and
// R is k-by-n upper triangular, where k = min(m, n).
func QR(a *tensor.Dense) (q, r *tensor.Dense) {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("linalg: QR requires a matrix, got rank %d", a.Rank()))
	}
	m, n := a.Dim(0), a.Dim(1)
	k := min(m, n)
	// Work on a copy of A; reflectors stored as columns of vs.
	w := a.Clone()
	wd := w.Data()
	vs := make([][]complex128, 0, k)
	taus := make([]float64, 0, k)

	for j := 0; j < k; j++ {
		// x = w[j:m, j]
		x := make([]complex128, m-j)
		maxAbs := 0.0
		for i := j; i < m; i++ {
			x[i-j] = wd[i*n+j]
			if a := cmplx.Abs(x[i-j]); a > maxAbs {
				maxAbs = a
			}
		}
		// The Householder reflector H = I - tau v v* is invariant under
		// scaling of v, so build it from the column scaled to O(1). This
		// keeps ||v||^2 out of the subnormal range where 2/||v||^2 would
		// overflow (columns with entries ~1e-160 occur in near-rank-
		// deficient PEPS carries). Columns too tiny to scale safely are
		// treated as zero: the reflector is skipped, leaving only
		// negligible sub-diagonal residue in R.
		if maxAbs < 1e-290 {
			vs = append(vs, nil)
			taus = append(taus, 0)
			continue
		}
		invScale := complex(1/maxAbs, 0)
		for i := range x {
			x[i] *= invScale
		}
		nx := norm2(x)
		if nx == 0 {
			vs = append(vs, nil)
			taus = append(taus, 0)
			continue
		}
		phase := complex(1, 0)
		if x[0] != 0 {
			phase = x[0] / complex(cmplx.Abs(x[0]), 0)
		}
		alpha := -phase * complex(nx, 0)
		v := append([]complex128(nil), x...)
		v[0] -= alpha
		nv2 := normSq(v)
		if nv2 == 0 {
			vs = append(vs, nil)
			taus = append(taus, 0)
			continue
		}
		tau := 2 / nv2
		// Apply H = I - tau v v* to w[j:m, j:n].
		applyReflectorLeft(wd, m, n, j, v, tau)
		vs = append(vs, v)
		taus = append(taus, tau)
	}

	r = tensor.New(k, n)
	rd := r.Data()
	for i := 0; i < k; i++ {
		for j := i; j < n; j++ {
			rd[i*n+j] = wd[i*n+j]
		}
	}

	// Build thin Q by applying reflectors in reverse to the first k columns
	// of the identity.
	q = tensor.New(m, k)
	qd := q.Data()
	for i := 0; i < k; i++ {
		qd[i*k+i] = 1
	}
	for j := k - 1; j >= 0; j-- {
		if vs[j] == nil {
			continue
		}
		applyReflectorLeft(qd, m, k, j, vs[j], taus[j])
	}
	return q, r
}

// applyReflectorLeft applies H = I - tau v v* to the submatrix
// a[j:m, 0:n]... more precisely to rows j..m-1, all columns. v has length
// m-j. a is row-major m-by-n.
func applyReflectorLeft(a []complex128, m, n, j int, v []complex128, tau float64) {
	rows := m - j
	tensor.AddFlops(2 * int64(rows) * int64(n))
	// wvec = v* A[j:, :]  (length n)
	wvec := make([]complex128, n)
	for i := 0; i < rows; i++ {
		vi := cmplx.Conj(v[i])
		if vi == 0 {
			continue
		}
		row := a[(j+i)*n : (j+i+1)*n]
		for c := 0; c < n; c++ {
			wvec[c] += vi * row[c]
		}
	}
	// A[j:, :] -= tau * v wvec
	ct := complex(tau, 0)
	for i := 0; i < rows; i++ {
		f := ct * v[i]
		if f == 0 {
			continue
		}
		row := a[(j+i)*n : (j+i+1)*n]
		for c := 0; c < n; c++ {
			row[c] -= f * wvec[c]
		}
	}
}

func norm2(v []complex128) float64 { return math.Sqrt(normSq(v)) }

func normSq(v []complex128) float64 {
	var s float64
	for _, x := range v {
		re, im := real(x), imag(x)
		s += re*re + im*im
	}
	return s
}

// QRSplit matricizes tensor t with its first leftAxes axes as rows and the
// rest as columns, computes the thin QR, and folds the factors back:
// Q has shape leftShape + [k], R has shape [k] + rightShape.
// This is the tensor-level QR used by the QR-SVD update (paper Alg. 1).
func QRSplit(t *tensor.Dense, leftAxes int) (q, r *tensor.Dense) {
	shape := t.Shape()
	if leftAxes <= 0 || leftAxes >= len(shape) {
		panic(fmt.Sprintf("linalg: QRSplit leftAxes %d out of range for rank %d", leftAxes, len(shape)))
	}
	rows, cols := 1, 1
	for i, d := range shape {
		if i < leftAxes {
			rows *= d
		} else {
			cols *= d
		}
	}
	qm, rm := QR(t.Reshape(rows, cols))
	k := qm.Dim(1)
	qShape := append(append([]int{}, shape[:leftAxes]...), k)
	rShape := append([]int{k}, shape[leftAxes:]...)
	return qm.Reshape(qShape...), rm.Reshape(rShape...)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
