package linalg

// Report carries the convergence status of an iterative factorization
// (Jacobi SVD, Jacobi EigH, Lanczos, randomized SVD). The historical
// entry points (SVD, EigH, ...) keep their signatures and record
// non-convergence through internal/health; callers that want to react —
// einsumsvd fallbacks, the Gram→QR degradation — use the *Report
// variants.
type Report struct {
	// Converged is false when the iteration budget was exhausted before
	// the solver's tolerance was met.
	Converged bool
	// Sweeps is the number of sweeps (or iterations) actually performed.
	Sweeps int
	// Residual is the solver's convergence measure at exit: the largest
	// normalized off-diagonal |⟨p,q⟩|/(‖p‖‖q‖) for Jacobi SVD, the
	// relative off-diagonal Frobenius mass for EigH, the last Lanczos
	// beta, or the relative subspace probe residual for RandSVD. Zero
	// for direct (non-iterative) paths.
	Residual float64
}
