package linalg

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"gokoala/internal/einsum"
	"gokoala/internal/tensor"
)

func randHermitian(rng *rand.Rand, n int) *tensor.Dense {
	a := tensor.Rand(rng, n, n)
	return a.Add(a.Conj().Transpose(1, 0)).Scale(0.5)
}

func checkOrthonormalCols(t *testing.T, q *tensor.Dense, tol float64) {
	t.Helper()
	qhq := tensor.MatMul(q.Conj().Transpose(1, 0), q)
	k := q.Dim(1)
	if !tensor.AllClose(qhq, tensor.Eye(k), 0, tol) {
		t.Fatalf("columns not orthonormal: max dev %g", qhq.Sub(tensor.Eye(k)).MaxAbs())
	}
}

// --- QR ---

func TestQRReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][2]int{{5, 3}, {3, 5}, {6, 6}, {1, 4}, {40, 12}} {
		a := tensor.Rand(rng, dims[0], dims[1])
		q, r := QR(a)
		k := min(dims[0], dims[1])
		if q.Dim(0) != dims[0] || q.Dim(1) != k || r.Dim(0) != k || r.Dim(1) != dims[1] {
			t.Fatalf("dims %v: wrong factor shapes %v %v", dims, q.Shape(), r.Shape())
		}
		checkOrthonormalCols(t, q, 1e-12)
		if !tensor.AllClose(tensor.MatMul(q, r), a, 1e-11, 1e-11) {
			t.Fatalf("dims %v: QR != A", dims)
		}
		// R upper triangular
		for i := 0; i < k; i++ {
			for j := 0; j < i && j < dims[1]; j++ {
				if cmplx.Abs(r.At(i, j)) > 1e-12 {
					t.Fatalf("R not upper triangular at %d,%d", i, j)
				}
			}
		}
	}
}

func TestQRRankDeficient(t *testing.T) {
	// Two identical columns.
	a := tensor.FromData([]complex128{1, 1, 2, 2, 3, 3}, 3, 2)
	q, r := QR(a)
	if !tensor.AllClose(tensor.MatMul(q, r), a, 1e-12, 1e-12) {
		t.Fatal("QR reconstruction failed for rank-deficient input")
	}
}

func TestQRSplitShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := tensor.Rand(rng, 2, 3, 4, 5)
	q, r := QRSplit(a, 2)
	if !tensor.SameShape(q.Shape(), []int{2, 3, 6}) {
		t.Fatalf("q shape %v", q.Shape())
	}
	if !tensor.SameShape(r.Shape(), []int{6, 4, 5}) {
		t.Fatalf("r shape %v", r.Shape())
	}
	// q x r contracts back to a
	back := einsum.MustContract("abk,kcd->abcd", q, r)
	if !tensor.AllClose(back, a, 1e-11, 1e-11) {
		t.Fatal("QRSplit does not reconstruct")
	}
}

// --- EigH ---

func TestEigHPauliX(t *testing.T) {
	x := tensor.FromData([]complex128{0, 1, 1, 0}, 2, 2)
	w, v := EigH(x)
	if math.Abs(w[0]+1) > 1e-13 || math.Abs(w[1]-1) > 1e-13 {
		t.Fatalf("eigenvalues %v, want [-1, 1]", w)
	}
	checkOrthonormalCols(t, v, 1e-13)
}

func TestEigHReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 5, 16, 40} {
		a := randHermitian(rng, n)
		w, v := EigH(a)
		for i := 1; i < n; i++ {
			if w[i] < w[i-1] {
				t.Fatalf("n=%d: eigenvalues not ascending: %v", n, w)
			}
		}
		checkOrthonormalCols(t, v, 1e-11)
		d := tensor.New(n, n)
		for i := 0; i < n; i++ {
			d.Set(complex(w[i], 0), i, i)
		}
		back := tensor.MatMul(tensor.MatMul(v, d), v.Conj().Transpose(1, 0))
		if !tensor.AllClose(back, a, 1e-10, 1e-10) {
			t.Fatalf("n=%d: V diag(w) V* != A, dev %g", n, back.Sub(a).MaxAbs())
		}
	}
}

func TestEigHDiagonalInput(t *testing.T) {
	a := tensor.New(3, 3)
	a.Set(3, 0, 0)
	a.Set(-1, 1, 1)
	a.Set(2, 2, 2)
	w, _ := EigH(a)
	want := []float64{-1, 2, 3}
	for i := range want {
		if math.Abs(w[i]-want[i]) > 1e-13 {
			t.Fatalf("w = %v", w)
		}
	}
}

func TestEigHTraceInvariantProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(8)
		a := randHermitian(rng, n)
		var tr float64
		for i := 0; i < n; i++ {
			tr += real(a.At(i, i))
		}
		w, _ := EigH(a)
		var sum float64
		for _, x := range w {
			sum += x
		}
		if math.Abs(tr-sum) > 1e-10*(1+math.Abs(tr)) {
			t.Fatalf("trace %g != eigenvalue sum %g", tr, sum)
		}
	}
}

// --- SVD ---

func TestSVDReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, dims := range [][2]int{{4, 4}, {8, 3}, {3, 8}, {1, 5}, {30, 20}} {
		a := tensor.Rand(rng, dims[0], dims[1])
		u, s, v := SVD(a)
		k := min(dims[0], dims[1])
		if len(s) != k {
			t.Fatalf("dims %v: %d singular values, want %d", dims, len(s), k)
		}
		for i := 1; i < k; i++ {
			if s[i] > s[i-1]+1e-12 {
				t.Fatalf("dims %v: singular values not descending: %v", dims, s)
			}
		}
		checkOrthonormalCols(t, u, 1e-11)
		checkOrthonormalCols(t, v, 1e-11)
		// A = U diag(s) V*
		sd := tensor.New(k, k)
		for i := 0; i < k; i++ {
			sd.Set(complex(s[i], 0), i, i)
		}
		back := tensor.MatMul(tensor.MatMul(u, sd), v.Conj().Transpose(1, 0))
		if !tensor.AllClose(back, a, 1e-10, 1e-10) {
			t.Fatalf("dims %v: U S V* != A, dev %g", dims, back.Sub(a).MaxAbs())
		}
	}
}

func TestSVDMatchesGramEigenvalues(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := tensor.Rand(rng, 7, 5)
	_, s, _ := SVD(a)
	g := tensor.MatMul(a.Conj().Transpose(1, 0), a)
	w, _ := EigH(g)
	for i := 0; i < 5; i++ {
		if math.Abs(s[i]*s[i]-w[4-i]) > 1e-9 {
			t.Fatalf("sigma^2 %v vs gram eigenvalues %v", s, w)
		}
	}
}

func TestSVDRankDeficient(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Rank-2 matrix in a 6x5 frame.
	b := tensor.Rand(rng, 6, 2)
	c := tensor.Rand(rng, 2, 5)
	a := tensor.MatMul(b, c)
	u, s, v := SVD(a)
	for i := 2; i < len(s); i++ {
		if s[i] > 1e-10*s[0] {
			t.Fatalf("trailing singular values should vanish: %v", s)
		}
	}
	checkOrthonormalCols(t, u, 1e-9)
	checkOrthonormalCols(t, v, 1e-9)
}

func TestSVDZeroMatrix(t *testing.T) {
	a := tensor.New(4, 3)
	u, s, _ := SVD(a)
	for _, x := range s {
		if x != 0 {
			t.Fatalf("singular values of zero matrix: %v", s)
		}
	}
	checkOrthonormalCols(t, u, 1e-12)
}

func TestTruncatedSVDOptimality(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := tensor.Rand(rng, 10, 8)
	u, s, v := TruncatedSVD(a, 3)
	if u.Dim(1) != 3 || len(s) != 3 || v.Dim(1) != 3 {
		t.Fatalf("truncation shapes wrong: %v %d %v", u.Shape(), len(s), v.Shape())
	}
	sd := tensor.New(3, 3)
	for i := 0; i < 3; i++ {
		sd.Set(complex(s[i], 0), i, i)
	}
	approx := tensor.MatMul(tensor.MatMul(u, sd), v.Conj().Transpose(1, 0))
	// Eckart-Young: error equals sqrt(sum of discarded sigma^2).
	_, sFull, _ := SVD(a)
	var want float64
	for i := 3; i < len(sFull); i++ {
		want += sFull[i] * sFull[i]
	}
	got := approx.Sub(a).Norm()
	if math.Abs(got-math.Sqrt(want)) > 1e-9 {
		t.Fatalf("truncation error %g, Eckart-Young %g", got, math.Sqrt(want))
	}
}

func TestTruncError(t *testing.T) {
	s := []float64{3, 4} // unsorted is fine for the formula
	got := TruncError(s, 1)
	if math.Abs(got-0.8) > 1e-14 {
		t.Fatalf("TruncError = %g, want 0.8", got)
	}
	if TruncError(nil, 0) != 0 {
		t.Fatal("empty TruncError should be 0")
	}
}

// --- Randomized SVD ---

func TestRandSVDExactOnLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b := tensor.Rand(rng, 12, 3)
	c := tensor.Rand(rng, 3, 9)
	a := tensor.MatMul(b, c)
	for _, orth := range []OrthFunc{OrthQR, OrthGram} {
		u, s, v := RandSVD(MatrixOperator{a}, 3, RandSVDOptions{NIter: 2, Oversample: 2, Orth: orth, Rng: rng})
		sd := tensor.New(3, 3)
		for i := 0; i < 3; i++ {
			sd.Set(complex(s[i], 0), i, i)
		}
		back := tensor.MatMul(tensor.MatMul(u, sd), v.Conj().Transpose(1, 0))
		if !tensor.AllClose(back, a, 1e-8, 1e-8) {
			t.Fatalf("RandSVD failed to recover rank-3 matrix exactly, dev %g", back.Sub(a).MaxAbs())
		}
		checkOrthonormalCols(t, u, 1e-9)
	}
}

func TestRandSVDMatchesTruncatedSVD(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	// Matrix with sharply decaying spectrum so the sketch captures the top
	// subspace accurately.
	n := 10
	u0, _ := QR(tensor.Rand(rng, n, n))
	v0, _ := QR(tensor.Rand(rng, n, n))
	d := tensor.New(n, n)
	for i := 0; i < n; i++ {
		d.Set(complex(math.Pow(10, -float64(i)), 0), i, i)
	}
	a := tensor.MatMul(tensor.MatMul(u0, d), v0.Conj().Transpose(1, 0))
	_, sWant, _ := TruncatedSVD(a, 4)
	_, sGot, _ := RandSVD(MatrixOperator{a}, 4, RandSVDOptions{NIter: 3, Oversample: 3, Rng: rng})
	for i := range sWant {
		if math.Abs(sGot[i]-sWant[i]) > 1e-6*sWant[0] {
			t.Fatalf("singular values differ: %v vs %v", sGot, sWant)
		}
	}
}

func TestRandSVDRankClamped(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := tensor.Rand(rng, 4, 3)
	u, s, v := RandSVD(MatrixOperator{a}, 100, RandSVDOptions{NIter: 1, Rng: rng})
	if len(s) != 3 || u.Dim(1) != 3 || v.Dim(1) != 3 {
		t.Fatalf("rank not clamped: %d", len(s))
	}
}

// --- GramOrth ---

func TestGramOrthProducesQR(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := tensor.Rand(rng, 20, 5)
	q, r := GramOrth(a)
	checkOrthonormalCols(t, q, 1e-9)
	if !tensor.AllClose(tensor.MatMul(q, r), a, 1e-9, 1e-9) {
		t.Fatal("GramOrth: QR != A")
	}
}

func TestGramQRSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := tensor.Rand(rng, 3, 4, 2, 2)
	q, r := GramQRSplit(a, 2)
	if !tensor.SameShape(q.Shape(), []int{3, 4, 4}) || !tensor.SameShape(r.Shape(), []int{4, 2, 2}) {
		t.Fatalf("shapes %v %v", q.Shape(), r.Shape())
	}
	back := einsum.MustContract("abk,kcd->abcd", q, r)
	if !tensor.AllClose(back, a, 1e-9, 1e-9) {
		t.Fatal("GramQRSplit does not reconstruct")
	}
}

// --- Expm ---

func TestExpmHermitianPauliZ(t *testing.T) {
	z := tensor.FromData([]complex128{1, 0, 0, -1}, 2, 2)
	e := ExpmHermitian(z, -0.5)
	if cmplx.Abs(e.At(0, 0)-complex(math.Exp(-0.5), 0)) > 1e-13 {
		t.Fatalf("exp(-0.5 Z)[0,0] = %v", e.At(0, 0))
	}
	if cmplx.Abs(e.At(1, 1)-complex(math.Exp(0.5), 0)) > 1e-13 {
		t.Fatalf("exp(-0.5 Z)[1,1] = %v", e.At(1, 1))
	}
	if cmplx.Abs(e.At(0, 1)) > 1e-14 {
		t.Fatal("off-diagonal should vanish")
	}
}

func TestExpmHermitianUnitaryForImaginaryScale(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	h := randHermitian(rng, 4)
	u := ExpmHermitian(h, complex(0, -0.7))
	checkOrthonormalCols(t, u, 1e-11)
}

func TestExpmAdditivityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	h := randHermitian(rng, 3)
	lhs := ExpmHermitian(h, -0.3)
	rhs := tensor.MatMul(ExpmHermitian(h, -0.1), ExpmHermitian(h, -0.2))
	if !tensor.AllClose(lhs, rhs, 1e-10, 1e-10) {
		t.Fatal("exp((a+b)H) != exp(aH) exp(bH)")
	}
}

// --- Lanczos ---

func TestLanczosMatchesDenseEig(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	n := 30
	a := randHermitian(rng, n)
	w, _ := EigH(a)
	matvec := func(x []complex128) []complex128 {
		v := tensor.MatVec(a, tensor.FromData(append([]complex128(nil), x...), n))
		return v.Data()
	}
	eval, evec := Lanczos(matvec, n, n, 1e-12, rng)
	if math.Abs(eval-w[0]) > 1e-8 {
		t.Fatalf("Lanczos eval %g, dense %g", eval, w[0])
	}
	// Residual check: ||A v - eval v|| small.
	av := matvec(evec)
	var res float64
	for i := range av {
		d := av[i] - complex(eval, 0)*evec[i]
		res += real(d)*real(d) + imag(d)*imag(d)
	}
	if math.Sqrt(res) > 1e-6 {
		t.Fatalf("residual %g", math.Sqrt(res))
	}
}

func TestQRSubnormalColumns(t *testing.T) {
	// Columns with entries around 1e-160 square into the subnormal range;
	// the scaled Householder reflector must not overflow into Inf/NaN.
	rng := rand.New(rand.NewSource(20))
	a := tensor.Rand(rng, 6, 4)
	d := a.Data()
	for i := 0; i < 6; i++ {
		d[i*4+2] *= 1e-160 // third column tiny
		d[i*4+3] = 0       // fourth column zero
	}
	q, r := QR(a)
	for _, v := range append(q.Data(), r.Data()...) {
		if cmplx.IsNaN(v) || cmplx.IsInf(v) {
			t.Fatal("QR produced NaN/Inf on subnormal input")
		}
	}
	if !tensor.AllClose(tensor.MatMul(q, r), a, 1e-10, 1e-10) {
		t.Fatal("QR reconstruction failed on subnormal input")
	}
}
