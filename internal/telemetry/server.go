// The embeddable HTTP plane (stdlib net/http only). Endpoints:
//
//	/metrics      Prometheus text exposition (see prom.go)
//	/healthz      JSON rollup of internal/health counters; 503 when any
//	              NaN/Inf was detected or an iterative solver exhausted
//	              its budget without converging
//	/events       Server-Sent Events stream of structured step events,
//	              globally ordered by seq; ?replay=n prepends up to n
//	              recent events on connect
//	/debug/pprof  the standard runtime profiles
//
// The same mux is exposed as Handler() so koala-serve can mount the
// plane per tenant instead of opening a port per run.
package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"gokoala/internal/health"
)

// HealthStatus is the /healthz response body.
type HealthStatus struct {
	// Status is "ok" or "degraded".
	Status string `json:"status"`
	// Policy is the active NaN/Inf guard policy (off|count|error).
	Policy string `json:"policy"`
	// Counters are the always-on numerical-health counters.
	Counters map[string]int64 `json:"counters"`
	// UptimeSeconds counts from SetRunInfo.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Component is the run info component name, when set.
	Component string `json:"component,omitempty"`
	// Ranks is the per-rank liveness of an attached multi-process
	// transport (see RankHeartbeat/MarkRankDead); omitted for
	// single-process runs.
	Ranks []RankHealth `json:"ranks,omitempty"`
}

// CurrentHealth snapshots the health rollup: degraded when any NaN/Inf
// detection or solver non-convergence has been counted, or when any
// registered rank process is down.
func CurrentHealth() HealthStatus {
	st := HealthStatus{
		Status: "ok",
		Policy: health.CurrentPolicy().String(),
		Counters: map[string]int64{
			"nan_detected":        health.NaNDetected(),
			"svd_fallbacks":       health.SVDFallbacks(),
			"gram_fallbacks":      health.GramFallbacks(),
			"nonconverged":        health.Nonconverged(),
			"checkpoint_failures": health.CheckpointFailures(),
		},
	}
	if st.Counters["nan_detected"] > 0 || st.Counters["nonconverged"] > 0 {
		st.Status = "degraded"
	}
	st.Ranks = RankHealths()
	for _, r := range st.Ranks {
		if !r.Up {
			st.Status = "degraded"
		}
	}
	component, _, start := RunInfo()
	st.Component = component
	if !start.IsZero() {
		st.UptimeSeconds = time.Since(start).Seconds()
	}
	return st
}

// Handler returns the telemetry plane as an http.Handler rooted at "/".
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", handleMetrics)
	mux.HandleFunc("/healthz", handleHealthz)
	mux.HandleFunc("/events", handleEvents)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "koala telemetry plane: /metrics /healthz /events /debug/pprof")
	})
	return mux
}

func handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WriteMetrics(w)
}

func handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := CurrentHealth()
	w.Header().Set("Content-Type", "application/json")
	if st.Status != "ok" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(st)
}

// handleEvents streams structured step events as SSE. Each event is
// written as `id: <seq>`, `event: <kind>`, and a JSON `data:` payload.
func handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	replayN := 0
	if s := r.URL.Query().Get("replay"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			http.Error(w, "bad replay count", http.StatusBadRequest)
			return
		}
		replayN = n
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	ch, replay, cancel := Subscribe(256)
	defer cancel()

	writeEvent := func(ev Event) bool {
		b, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, b); err != nil {
			return false
		}
		fl.Flush()
		return true
	}

	// Orientation event so a watcher can label the run before the first
	// step arrives.
	component, labels, start := RunInfo()
	hello := map[string]interface{}{"component": component, "labels": labels}
	if !start.IsZero() {
		hello["uptime_seconds"] = time.Since(start).Seconds()
	}
	if b, err := json.Marshal(hello); err == nil {
		fmt.Fprintf(w, "event: run\ndata: %s\n\n", b)
		fl.Flush()
	}
	if replayN > 0 {
		if replayN < len(replay) {
			replay = replay[len(replay)-replayN:]
		}
		for _, ev := range replay {
			if !writeEvent(ev) {
				return
			}
		}
	}

	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return
			}
			if !writeEvent(ev) {
				return
			}
		case <-heartbeat.C:
			// SSE comment keeps idle proxies from closing the stream.
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// Server is a running telemetry listener.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// Serve starts the telemetry plane on addr (":9090", "127.0.0.1:0", ...)
// and activates the recorder. The registry is reset so the scrape
// reflects this run only.
func Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	Reset()
	SetActive(true)
	s := &Server{
		ln:   ln,
		srv:  &http.Server{Handler: Handler()},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		// ErrServerClosed is the normal Close path; anything else left
		// the plane dead mid-run, worth a stderr line but never fatal to
		// the simulation.
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Printf("telemetry: server stopped: %v\n", err)
		}
	}()
	return s, nil
}

// Addr returns the bound listen address (resolving a requested :0 port).
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close deactivates the recorder and shuts the listener down, waiting
// briefly for in-flight scrapes. Safe on nil.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	SetActive(false)
	err := s.srv.Close()
	select {
	case <-s.done:
	case <-time.After(2 * time.Second):
	}
	return err
}
