package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"gokoala/internal/health"
	"gokoala/internal/obs"
	"gokoala/internal/tensor"
)

// resetAll returns the package and health counters to a clean slate so
// tests compose regardless of order.
func resetAll(t *testing.T) {
	t.Helper()
	Reset()
	SetActive(false)
	health.ResetCounters()
	t.Cleanup(func() {
		Reset()
		SetActive(false)
		health.ResetCounters()
		health.SetPolicy(health.PolicyOff)
	})
}

func TestSeriesObserveAndSnapshot(t *testing.T) {
	resetAll(t)
	SetActive(true)
	Observe("ite.energy_per_site", -1.5)
	Observe("ite.energy_per_site", -2.0)
	Observe("peps.bond_dim", 4, Label{"dir", "h"}, Label{"row", "0"}, Label{"col", "1"})
	ObserveHist("svd.trunc_error_hist", LogBounds, 1e-9)

	series, hists := Snapshot()
	byKey := map[string]SeriesSnapshot{}
	for _, s := range series {
		byKey[seriesKey(s.Name, s.Labels)] = s
	}
	e, ok := byKey["ite.energy_per_site"]
	if !ok {
		t.Fatalf("missing ite.energy_per_site in snapshot: %+v", series)
	}
	if e.Last != -2.0 || e.Count != 2 || e.Sum != -3.5 {
		t.Fatalf("series aggregate wrong: %+v", e)
	}
	if _, ok := byKey[seriesKey("peps.bond_dim", []Label{{"dir", "h"}, {"row", "0"}, {"col", "1"}})]; !ok {
		t.Fatalf("labeled series missing: %v", byKey)
	}
	if len(hists) != 1 || hists[0].Count != 1 {
		t.Fatalf("hist snapshot wrong: %+v", hists)
	}
}

func TestObserveInactiveIsNoop(t *testing.T) {
	resetAll(t)
	Observe("ite.step", 1)
	ObserveHist("peps.bond_dim_hist", Pow2Bounds, 4)
	series, hists := Snapshot()
	if len(series) != 0 || len(hists) != 0 {
		t.Fatalf("inactive observes must not register: %v %v", series, hists)
	}
}

// TestMetricsExpositionRoundTrip renders /metrics with live series,
// histograms, run info, and health counters, then requires the strict
// parser to accept every line and find the families watch depends on.
func TestMetricsExpositionRoundTrip(t *testing.T) {
	resetAll(t)
	SetActive(true)
	SetRunInfo("ite", map[string]string{"model": "tfi", "rows": "2"})
	Observe("ite.energy_per_site", -2.125)
	Observe("ite.step", 3)
	Observe("svd.trunc_error", 2.5e-10)
	Observe("peps.bond_trunc_error", 1e-9, Label{"dir", "h"}, Label{"row", "0"}, Label{"col", "0"})
	ObserveHist("peps.bond_dim_hist", Pow2Bounds, 4)
	ObserveHist("solver.sweeps", Pow2Bounds, 7, Label{"solver", "jacobi_svd"})

	srv := httptest.NewServer(Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	samples, err := ParseMetrics(resp.Body)
	if err != nil {
		t.Fatalf("exposition rejected by strict parser: %v", err)
	}
	for _, want := range []string{
		"koala_ite_energy_per_site",
		"koala_ite_step",
		"koala_svd_trunc_error",
		`koala_peps_bond_trunc_error{dir="h",row="0",col="0"}`,
		`koala_peps_bond_dim_hist_bucket{le="4"}`,
		"koala_peps_bond_dim_hist_count",
		`koala_solver_sweeps_bucket{solver="jacobi_svd",le="8"}`,
		"koala_einsum_plan_hit_ratio",
		"koala_health_nan_detected",
		"koala_go_goroutines",
	} {
		if _, ok := samples[want]; !ok {
			keys := make([]string, 0, len(samples))
			for k := range samples {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			t.Fatalf("sample %q missing from exposition; have:\n%s", want, strings.Join(keys, "\n"))
		}
	}
	if v := samples[`koala_peps_bond_dim_hist_bucket{le="4"}`]; v != 1 {
		t.Fatalf("bucket le=4 cumulative count = %g, want 1", v)
	}
	if v := samples["koala_ite_energy_per_site"]; v != -2.125 {
		t.Fatalf("gauge value %g, want -2.125", v)
	}
}

func TestParseMetricsRejectsMalformed(t *testing.T) {
	for _, tc := range []struct{ name, text string }{
		{"bad name", "0bad 1\n"},
		{"sample before TYPE has bad chars", "koala_x{le=4} 1\n"},
		{"bad value", "# TYPE koala_x gauge\nkoala_x notanumber\n"},
		{"duplicate sample", "# TYPE koala_x gauge\nkoala_x 1\nkoala_x 2\n"},
		{"bad TYPE kind", "# TYPE koala_x wat\nkoala_x 1\n"},
		{"unterminated label block", "# TYPE koala_x gauge\nkoala_x{a=\"b\" 1\n"},
	} {
		if _, err := ParseMetrics(strings.NewReader(tc.text)); err == nil {
			t.Errorf("%s: parser accepted malformed exposition %q", tc.name, tc.text)
		}
	}
}

// TestHealthzTransitions drives /healthz 200 -> 503 -> 200 with the
// fault injector: a NaN flipped into a tensor and counted under
// PolicyCount must degrade the rollup until counters reset.
func TestHealthzTransitions(t *testing.T) {
	resetAll(t)
	health.SetPolicy(health.PolicyCount)
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	get := func() (int, HealthStatus) {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st HealthStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("/healthz body not JSON: %v", err)
		}
		return resp.StatusCode, st
	}

	if code, st := get(); code != http.StatusOK || st.Status != "ok" {
		t.Fatalf("clean state: code=%d status=%q, want 200 ok", code, st.Status)
	}

	x := tensor.New(2, 2)
	health.NewInjector(1).FlipNaN(x)
	health.CheckTensor("test", x)
	if code, st := get(); code != http.StatusServiceUnavailable || st.Status != "degraded" {
		t.Fatalf("after NaN: code=%d status=%q, want 503 degraded", code, st.Status)
	} else if st.Counters["nan_detected"] == 0 {
		t.Fatalf("nan_detected counter not surfaced: %+v", st.Counters)
	}

	health.ResetCounters()
	if code, st := get(); code != http.StatusOK || st.Status != "ok" {
		t.Fatalf("after reset: code=%d status=%q, want 200 ok", code, st.Status)
	}
}

// TestSSEOrdering publishes from concurrent goroutines and requires the
// stream to deliver globally ascending sequence numbers and, per
// publisher, its own events in publish order.
func TestSSEOrdering(t *testing.T) {
	resetAll(t)
	SetActive(true)
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("content type %q", ct)
	}

	const publishers, perPub = 4, 25
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPub; i++ {
				Publish("test.tick", i, map[string]float64{"pub": float64(p), "i": float64(i)})
			}
		}(p)
	}
	wg.Wait()

	sc := bufio.NewScanner(resp.Body)
	lastSeq := int64(-1)
	lastPerPub := map[int]float64{}
	got := 0
	deadline := time.Now().Add(10 * time.Second)
	for got < publishers*perPub && sc.Scan() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %d events", got)
		}
		line := sc.Text()
		if !strings.HasPrefix(line, "data:") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(strings.TrimSpace(line[5:])), &ev); err != nil {
			t.Fatalf("bad event payload %q: %v", line, err)
		}
		if ev.Kind != "test.tick" {
			continue // the hello/run event
		}
		if ev.Seq <= lastSeq {
			t.Fatalf("sequence not ascending: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		p := int(ev.Fields["pub"])
		if last, ok := lastPerPub[p]; ok && ev.Fields["i"] <= last {
			t.Fatalf("publisher %d reordered: i=%g after %g", p, ev.Fields["i"], last)
		}
		lastPerPub[p] = ev.Fields["i"]
		got++
	}
	if got != publishers*perPub {
		t.Fatalf("received %d events, want %d (scan err %v)", got, publishers*perPub, sc.Err())
	}
}

func TestSSEReplay(t *testing.T) {
	resetAll(t)
	SetActive(true)
	for i := 0; i < 5; i++ {
		Publish("warm.up", i, nil)
	}
	_, replay, cancel := Subscribe(8)
	defer cancel()
	if len(replay) != 5 {
		t.Fatalf("replay length %d, want 5", len(replay))
	}
	for i := 1; i < len(replay); i++ {
		if replay[i].Seq <= replay[i-1].Seq {
			t.Fatalf("replay out of order: %+v", replay)
		}
	}
}

func TestPendingTruncSameGoroutineOnly(t *testing.T) {
	resetAll(t)
	SetActive(true)
	SetPendingTrunc(0.25)
	done := make(chan bool)
	go func() {
		_, ok := TakePendingTrunc()
		done <- ok
	}()
	if <-done {
		t.Fatal("pending trunc leaked across goroutines")
	}
	if v, ok := TakePendingTrunc(); !ok || v != 0.25 {
		t.Fatalf("same-goroutine take = %v,%v want 0.25,true", v, ok)
	}
	if _, ok := TakePendingTrunc(); ok {
		t.Fatal("second take must miss")
	}
	SetPendingTrunc(0.5)
	ClearPendingTrunc()
	if _, ok := TakePendingTrunc(); ok {
		t.Fatal("take after clear must miss")
	}
}

func TestServerServeClose(t *testing.T) {
	resetAll(t)
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if !Active() {
		t.Fatal("Serve must activate recording")
	}
	Observe("ite.step", 1)
	for _, path := range []string{"/metrics", "/healthz", "/", "/debug/pprof/"} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if Active() {
		t.Fatal("Close must deactivate recording")
	}
	var nilSrv *Server
	if err := nilSrv.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
}

func TestEventRingDropsOldest(t *testing.T) {
	resetAll(t)
	SetActive(true)
	for i := 0; i < ringSize+10; i++ {
		Publish("fill", i, nil)
	}
	_, replay, cancel := Subscribe(4)
	defer cancel()
	if len(replay) != ringSize {
		t.Fatalf("replay %d, want ring size %d", len(replay), ringSize)
	}
	if replay[0].Step != 10 {
		t.Fatalf("oldest retained step %d, want 10", replay[0].Step)
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"ite.energy_per_site": "koala_ite_energy_per_site",
		"svd.trunc_error":     "koala_svd_trunc_error",
		"einsum.plan.hits":    "koala_einsum_plan_hits",
	} {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

// BenchmarkInactiveObserve measures the disabled hot path — the cost
// every solver/update call pays when no -listen plane is attached. It
// must stay a single atomic load with zero allocations.
func BenchmarkInactiveObserve(b *testing.B) {
	Reset()
	SetActive(false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Observe("svd.trunc_error", 1e-9)
	}
}

func BenchmarkActiveObserve(b *testing.B) {
	Reset()
	SetActive(true)
	defer SetActive(false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Observe("svd.trunc_error", 1e-9)
	}
}

func TestWriteMetricsValidUnderConcurrentLoad(t *testing.T) {
	resetAll(t)
	SetActive(true)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				Observe("load.series", float64(i), Label{"g", fmt.Sprint(g)})
				ObserveHist("load.hist", Pow2Bounds, float64(i%64))
			}
		}(g)
	}
	for i := 0; i < 20; i++ {
		var sb strings.Builder
		WriteMetrics(&sb)
		if _, err := ParseMetrics(strings.NewReader(sb.String())); err != nil {
			close(stop)
			wg.Wait()
			t.Fatalf("scrape %d invalid under load: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}

// With obs collection on, the obs counter dump exports the health
// counters (same underlying atomics) before the static health block;
// the block must skip already-emitted names or the strict parser sees
// duplicate samples.
func TestExpositionNoDuplicateHealthSamples(t *testing.T) {
	resetAll(t)
	obs.Enable()
	t.Cleanup(func() { obs.Disable() })
	health.CountGramFallback()
	SetActive(true)

	var buf strings.Builder
	WriteMetrics(&buf)
	samples, err := ParseMetrics(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("exposition rejected by strict parser: %v", err)
	}
	if v := samples["koala_health_gram_fallbacks"]; v != 1 {
		t.Fatalf("koala_health_gram_fallbacks = %g, want 1", v)
	}
}
