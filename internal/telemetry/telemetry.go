// Package telemetry is the live, in-process observability plane: where
// internal/obs records traces for post-hoc analysis, telemetry serves
// the *running* job — physics observables (step energy, truncation
// error, bond dimensions, solver sweeps) recorded as labeled timeseries,
// plus structured step events — over an embeddable stdlib-only HTTP
// surface (/metrics, /healthz, /events, /debug/pprof; see server.go).
//
// The recorder is built for hot paths: while no listener is attached
// every entry point is a single atomic load and an immediate return, so
// library code (linalg truncations, peps bond updates, ite steps) can
// publish unconditionally. When active, series updates are lock-free —
// a sync.Map lookup plus atomic adds — and scrapes snapshot the atomics
// without stopping writers. Event publication takes a short mutex to
// give every SSE subscriber the same globally ordered sequence.
//
// Series naming: recorders pass bare dotted names ("ite.energy_per_site");
// the Prometheus renderer (prom.go) prefixes "koala_" and rewrites
// non-alphanumerics, so the wire name is koala_ite_energy_per_site.
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gokoala/internal/obs"
)

// active is the global fast-path switch; it is set while a Server is
// listening (or a test calls SetActive).
var active atomic.Bool

// Active reports whether a live telemetry consumer is attached. Hot
// paths gate any per-record allocation (label formatting, map building)
// behind it.
func Active() bool { return active.Load() }

// SetActive toggles the recorder without a server; tests use it, and
// Serve/Close call it. Activation does not clear prior series — call
// Reset for a fresh registry.
func SetActive(on bool) { active.Store(on) }

// Label is one key/value dimension on a series.
type Label struct {
	Key, Value string
}

// Series is a labeled timeseries cell: last value, observation count,
// and running sum, all updated with atomics so concurrent recorders
// never contend on a lock.
type Series struct {
	name     string
	labels   []Label
	count    atomic.Int64
	sumBits  atomic.Uint64
	lastBits atomic.Uint64
	lastSet  atomic.Bool
}

// Observe records one value: the series' last value becomes v, and v is
// folded into the count/sum aggregates.
func (s *Series) Observe(v float64) {
	s.lastBits.Store(math.Float64bits(v))
	s.lastSet.Store(true)
	s.count.Add(1)
	atomicAddFloat(&s.sumBits, v)
}

// Last returns the most recent value and whether one was ever observed.
func (s *Series) Last() (float64, bool) {
	return math.Float64frombits(s.lastBits.Load()), s.lastSet.Load()
}

// Count returns how many observations the series has received.
func (s *Series) Count() int64 { return s.count.Load() }

// Sum returns the running sum of observations.
func (s *Series) Sum() float64 { return math.Float64frombits(s.sumBits.Load()) }

func atomicAddFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Hist is a fixed-bucket histogram (bond dimensions, truncation errors,
// solver sweeps). Buckets hold per-bucket counts; the Prometheus
// renderer cumulates them into the le convention at scrape time.
type Hist struct {
	name    string
	labels  []Label
	bounds  []float64 // upper bounds, ascending; implicit +Inf last
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records v into the first bucket whose upper bound contains it.
func (h *Hist) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	atomicAddFloat(&h.sumBits, v)
}

// Count returns the histogram's total observation count.
func (h *Hist) Count() int64 { return h.count.Load() }

// Pow2Bounds buckets small positive integers (bond dimensions, sweep
// counts) at powers of two.
var Pow2Bounds = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

// LogBounds buckets relative errors (truncation discarded weight) at
// decades from 1e-16 to 1.
var LogBounds = []float64{1e-16, 1e-14, 1e-12, 1e-10, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1}

// registry holds every live series and histogram, keyed by rendered
// name+labels. sync.Map keeps lookups lock-free on the hot path.
var registry struct {
	series sync.Map // string -> *Series
	hists  sync.Map // string -> *Hist
}

// seriesKey renders the registry key: name plus labels in given order.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	n := len(name) + 2
	for _, l := range labels {
		n += len(l.Key) + len(l.Value) + 2
	}
	b := make([]byte, 0, n)
	b = append(b, name...)
	b = append(b, '{')
	for i, l := range labels {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, l.Key...)
		b = append(b, '=')
		b = append(b, l.Value...)
	}
	b = append(b, '}')
	return string(b)
}

// GetSeries returns (creating on first use) the series for name+labels.
func GetSeries(name string, labels ...Label) *Series {
	key := seriesKey(name, labels)
	if v, ok := registry.series.Load(key); ok {
		return v.(*Series)
	}
	s := &Series{name: name, labels: append([]Label(nil), labels...)}
	v, _ := registry.series.LoadOrStore(key, s)
	return v.(*Series)
}

// GetHist returns (creating on first use) the histogram for name+labels
// with the given bounds. Bounds are fixed at creation; later calls with
// different bounds reuse the original.
func GetHist(name string, bounds []float64, labels ...Label) *Hist {
	key := seriesKey(name, labels)
	if v, ok := registry.hists.Load(key); ok {
		return v.(*Hist)
	}
	h := &Hist{
		name:    name,
		labels:  append([]Label(nil), labels...),
		bounds:  bounds,
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
	v, _ := registry.hists.LoadOrStore(key, h)
	return v.(*Hist)
}

// Observe records v into the named series when a listener is attached;
// a single atomic load otherwise.
func Observe(name string, v float64, labels ...Label) {
	if !active.Load() {
		return
	}
	GetSeries(name, labels...).Observe(v)
}

// ObserveHist records v into the named histogram when a listener is
// attached.
func ObserveHist(name string, bounds []float64, v float64, labels ...Label) {
	if !active.Load() {
		return
	}
	GetHist(name, bounds, labels...).Observe(v)
}

// --- run info ---

var runInfo struct {
	mu        sync.Mutex
	component string
	labels    map[string]string
	start     time.Time
}

// SetRunInfo names the running component ("ite", "vqe", ...) and its
// static labels; rendered as the koala_run_info metric and sent to new
// SSE subscribers as a "run" event.
func SetRunInfo(component string, labels map[string]string) {
	runInfo.mu.Lock()
	runInfo.component = component
	runInfo.labels = labels
	if runInfo.start.IsZero() {
		runInfo.start = time.Now()
	}
	runInfo.mu.Unlock()
}

// RunInfo returns the component name, static labels, and process start
// time recorded by SetRunInfo.
func RunInfo() (string, map[string]string, time.Time) {
	runInfo.mu.Lock()
	defer runInfo.mu.Unlock()
	return runInfo.component, runInfo.labels, runInfo.start
}

// --- structured step events (the /events SSE payload) ---

// Event is one structured progress record: an ITE step, a VQE round, an
// RQC gate application. Seq is a process-global, strictly increasing
// sequence number — subscribers always observe events in Seq order.
type Event struct {
	Seq        int64              `json:"seq"`
	TimeUnixMS int64              `json:"time_unix_ms"`
	Kind       string             `json:"kind"`
	Step       int                `json:"step,omitempty"`
	Fields     map[string]float64 `json:"fields,omitempty"`
}

// ringSize bounds the replay buffer new subscribers receive.
const ringSize = 64

var events struct {
	mu   sync.Mutex
	seq  int64
	ring []Event // last ringSize events, oldest first
	subs map[int]chan Event
	next int // subscriber id allocator
}

// Publish records a structured event and fans it out to subscribers.
// No-op (one atomic load) while no listener is attached. Slow
// subscribers never block the recorder: events that do not fit a
// subscriber's buffer are dropped for that subscriber only, counted in
// the events.dropped series.
func Publish(kind string, step int, fields map[string]float64) {
	if !active.Load() {
		return
	}
	events.mu.Lock()
	events.seq++
	ev := Event{
		Seq:        events.seq,
		TimeUnixMS: time.Now().UnixMilli(),
		Kind:       kind,
		Step:       step,
		Fields:     fields,
	}
	events.ring = append(events.ring, ev)
	if len(events.ring) > ringSize {
		events.ring = events.ring[len(events.ring)-ringSize:]
	}
	dropped := 0
	for _, ch := range events.subs {
		select {
		case ch <- ev:
		default:
			dropped++
		}
	}
	events.mu.Unlock()
	if dropped > 0 {
		GetSeries("events.dropped").Observe(float64(dropped))
	}
}

// Subscribe registers an event consumer: ch receives every future event
// in Seq order (buffered by buf; overflow drops, never blocks the
// recorder), replay holds the most recent past events. Call cancel to
// unsubscribe and close the channel.
func Subscribe(buf int) (ch <-chan Event, replay []Event, cancel func()) {
	c := make(chan Event, buf)
	events.mu.Lock()
	if events.subs == nil {
		events.subs = make(map[int]chan Event)
	}
	id := events.next
	events.next++
	events.subs[id] = c
	replay = append([]Event(nil), events.ring...)
	events.mu.Unlock()
	return c, replay, func() {
		events.mu.Lock()
		if _, ok := events.subs[id]; ok {
			delete(events.subs, id)
			close(c)
		}
		events.mu.Unlock()
	}
}

// --- pending truncation handoff (linalg -> peps, same goroutine) ---

// The truncated SVD knows the discarded spectral weight but not which
// lattice bond it served; the peps update knows the bond but not the
// full spectrum. Truncation runs synchronously on the update's
// goroutine, so a goroutine-keyed slot hands the error across layers
// without widening the einsumsvd.Strategy interface.
var pendingTrunc sync.Map // goroutine id -> float64

// SetPendingTrunc stashes the current goroutine's latest truncation
// error. Called by linalg.TruncatedSVD while active.
func SetPendingTrunc(v float64) {
	if !active.Load() {
		return
	}
	pendingTrunc.Store(obs.GoID(), v)
}

// TakePendingTrunc returns and clears the current goroutine's stashed
// truncation error.
func TakePendingTrunc() (float64, bool) {
	if !active.Load() {
		return 0, false
	}
	v, ok := pendingTrunc.LoadAndDelete(obs.GoID())
	if !ok {
		return 0, false
	}
	return v.(float64), true
}

// ClearPendingTrunc drops any stashed truncation error on the current
// goroutine, so a bond update never adopts an error left over from an
// unrelated earlier factorization (e.g. a boundary-MPS compression).
func ClearPendingTrunc() {
	if !active.Load() {
		return
	}
	pendingTrunc.Delete(obs.GoID())
}

// SeriesSnapshot is one series' scrape-time state.
type SeriesSnapshot struct {
	Name   string
	Labels []Label
	Last   float64
	Sum    float64
	Count  int64
}

// HistSnapshot is one histogram's scrape-time state; Buckets are
// per-bucket (non-cumulative) counts aligned with Bounds plus a final
// +Inf bucket.
type HistSnapshot struct {
	Name    string
	Labels  []Label
	Bounds  []float64
	Buckets []int64
	Sum     float64
	Count   int64
}

// Snapshot captures every series and histogram, sorted by name+labels,
// without stopping writers (values are atomically read; a scrape racing
// an Observe sees either side of it).
func Snapshot() ([]SeriesSnapshot, []HistSnapshot) {
	var ss []SeriesSnapshot
	registry.series.Range(func(k, v interface{}) bool {
		s := v.(*Series)
		last, ok := s.Last()
		if !ok {
			return true
		}
		ss = append(ss, SeriesSnapshot{
			Name: s.name, Labels: s.labels,
			Last: last, Sum: s.Sum(), Count: s.Count(),
		})
		return true
	})
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].Name != ss[j].Name {
			return ss[i].Name < ss[j].Name
		}
		return seriesKey("", ss[i].Labels) < seriesKey("", ss[j].Labels)
	})
	var hs []HistSnapshot
	registry.hists.Range(func(k, v interface{}) bool {
		h := v.(*Hist)
		buckets := make([]int64, len(h.buckets))
		for i := range h.buckets {
			buckets[i] = h.buckets[i].Load()
		}
		hs = append(hs, HistSnapshot{
			Name: h.name, Labels: h.labels, Bounds: h.bounds,
			Buckets: buckets, Sum: math.Float64frombits(h.sumBits.Load()), Count: h.count.Load(),
		})
		return true
	})
	sort.Slice(hs, func(i, j int) bool {
		if hs[i].Name != hs[j].Name {
			return hs[i].Name < hs[j].Name
		}
		return seriesKey("", hs[i].Labels) < seriesKey("", hs[j].Labels)
	})
	return ss, hs
}

// Reset clears every series, histogram, queued event, and the run info.
// Serve calls it so each run's scrape starts clean; tests use it for
// isolation. Active subscribers are cancelled.
func Reset() {
	registry.series.Range(func(k, _ interface{}) bool {
		registry.series.Delete(k)
		return true
	})
	registry.hists.Range(func(k, _ interface{}) bool {
		registry.hists.Delete(k)
		return true
	})
	pendingTrunc.Range(func(k, _ interface{}) bool {
		pendingTrunc.Delete(k)
		return true
	})
	events.mu.Lock()
	events.seq = 0
	events.ring = nil
	for id, ch := range events.subs {
		delete(events.subs, id)
		close(ch)
	}
	events.mu.Unlock()
	runInfo.mu.Lock()
	runInfo.component = ""
	runInfo.labels = nil
	runInfo.start = time.Time{}
	runInfo.mu.Unlock()
	ResetRanks()
}
