// Prometheus text exposition (version 0.0.4): the /metrics renderer and
// a strict line parser. The parser is the validity oracle — unit tests,
// `koala-obs watch`, and the telemetry-smoke CI gate all feed scraped
// output back through ParseMetrics and fail on anything malformed, so
// the renderer cannot drift from the format it claims.
package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"gokoala/internal/einsum"
	"gokoala/internal/health"
	"gokoala/internal/obs"
)

// MetricPrefix namespaces every exposed metric.
const MetricPrefix = "koala_"

// PromName rewrites a dotted internal metric name ("einsum.plan.hits")
// to its exposed Prometheus name (koala_einsum_plan_hits).
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(MetricPrefix) + len(name))
	b.WriteString(MetricPrefix)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

func labelString(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, escapeLabel(l.Value))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// typeLine emits the # TYPE header once per metric family.
func typeLine(w io.Writer, seen map[string]bool, name, kind string) {
	if !seen[name] {
		fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
		seen[name] = true
	}
}

// WriteMetrics renders the full exposition: run info, process stats,
// every telemetry series (last value as a gauge plus _sum/_count
// aggregates) and histogram (cumulative le buckets), the obs
// counter/gauge registry, the always-on health counters, and the einsum
// plan-cache hit ratio.
func WriteMetrics(w io.Writer) {
	seen := map[string]bool{}

	component, labels, start := RunInfo()
	if component != "" {
		ls := []Label{{"component", component}}
		keys := make([]string, 0, len(labels))
		for k := range labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			ls = append(ls, Label{k, labels[k]})
		}
		typeLine(w, seen, MetricPrefix+"run_info", "gauge")
		fmt.Fprintf(w, "%srun_info%s 1\n", MetricPrefix, labelString(ls))
	}
	if !start.IsZero() {
		typeLine(w, seen, MetricPrefix+"process_uptime_seconds", "gauge")
		fmt.Fprintf(w, "%sprocess_uptime_seconds %s\n", MetricPrefix, formatValue(time.Since(start).Seconds()))
	}
	typeLine(w, seen, MetricPrefix+"go_goroutines", "gauge")
	fmt.Fprintf(w, "%sgo_goroutines %d\n", MetricPrefix, runtime.NumGoroutine())

	series, hists := Snapshot()
	for _, s := range series {
		name := PromName(s.Name)
		typeLine(w, seen, name, "gauge")
		ls := labelString(s.Labels)
		fmt.Fprintf(w, "%s%s %s\n", name, ls, formatValue(s.Last))
		fmt.Fprintf(w, "%s_sum%s %s\n", name, ls, formatValue(s.Sum))
		fmt.Fprintf(w, "%s_count%s %d\n", name, ls, s.Count)
	}
	for _, h := range hists {
		name := PromName(h.Name)
		typeLine(w, seen, name, "histogram")
		var cum int64
		for i, b := range h.Bounds {
			cum += h.Buckets[i]
			fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelString(h.Labels, Label{"le", formatValue(b)}), cum)
		}
		cum += h.Buckets[len(h.Bounds)]
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelString(h.Labels, Label{"le", "+Inf"}), cum)
		fmt.Fprintf(w, "%s_sum%s %s\n", name, labelString(h.Labels), formatValue(h.Sum))
		fmt.Fprintf(w, "%s_count%s %d\n", name, labelString(h.Labels), h.Count)
	}

	// The obs registry: tracing counters (flops, plan-cache hits, comm
	// bytes, pool tasks) and gauges, live whenever obs collection is on —
	// cliutil enables it with zero sinks for any -listen run. Some
	// publishers mirror a value into both registries under one name
	// (svd.trunc_error is a telemetry series and an obs gauge); the
	// telemetry family above already carries it with more structure, so
	// an obs name that collides with an emitted family is skipped rather
	// than duplicated.
	var hits, misses float64
	for _, m := range obs.Metrics() {
		switch m.Name {
		case "einsum.plan.hits":
			hits = m.Value
		case "einsum.plan.misses":
			misses = m.Value
		}
		name := PromName(m.Name)
		if seen[name] {
			continue
		}
		kind := "counter"
		if m.Kind == "gauge" {
			kind = "gauge"
		}
		typeLine(w, seen, name, kind)
		fmt.Fprintf(w, "%s %s\n", name, formatValue(m.Value))
	}
	ratio := 0.0
	if hits+misses > 0 {
		ratio = hits / (hits + misses)
	}
	typeLine(w, seen, MetricPrefix+"einsum_plan_hit_ratio", "gauge")
	fmt.Fprintf(w, "%seinsum_plan_hit_ratio %s\n", MetricPrefix, formatValue(ratio))

	// Block-sparse savings, derived from einsum's always-on atomics: the
	// fraction of dense-equivalent GEMM flops the symmetric contractions
	// avoided (0 when no symmetric contraction ran), plus the raw flop
	// tallies it is computed from.
	_, symBlocks, symFlops, symDense := einsum.SymStats()
	saved := 0.0
	if symDense > 0 {
		saved = float64(symDense-symFlops) / float64(symDense)
	}
	typeLine(w, seen, MetricPrefix+"einsum_flops_saved_ratio", "gauge")
	fmt.Fprintf(w, "%seinsum_flops_saved_ratio %s\n", MetricPrefix, formatValue(saved))
	for _, c := range []struct {
		name string
		v    int64
	}{
		{"einsum_sym_block_gemms", symBlocks},
		{"einsum_sym_flops_total", symFlops},
		{"einsum_sym_dense_equiv_flops_total", symDense},
	} {
		name := MetricPrefix + c.name
		if seen[name] {
			continue
		}
		typeLine(w, seen, name, "counter")
		fmt.Fprintf(w, "%s %d\n", name, c.v)
	}

	// Health counters are package-local atomics, alive under every
	// policy and independent of obs collection.
	for _, c := range []struct {
		name string
		v    int64
	}{
		{"health_nan_detected", health.NaNDetected()},
		{"health_svd_fallbacks", health.SVDFallbacks()},
		{"health_gram_fallbacks", health.GramFallbacks()},
		{"health_nonconverged", health.Nonconverged()},
		{"health_checkpoint_failures", health.CheckpointFailures()},
		{"health_sym_fallbacks", health.SymFallbacks()},
	} {
		// The obs counter dump above may already have exported the same
		// counter (same underlying atomic) when collection is on; a second
		// sample would fail the strict parser.
		name := MetricPrefix + c.name
		if seen[name] {
			continue
		}
		typeLine(w, seen, name, "counter")
		fmt.Fprintf(w, "%s %d\n", name, c.v)
	}
}

// --- parser / validator ---

// Sample is one parsed exposition sample.
type Sample struct {
	// Name is the metric name without labels.
	Name string
	// Labels is the raw label block as written ("" or "{k=\"v\",...}").
	Labels string
	Value  float64
}

// Key is the map key form: name plus raw label block.
func (s Sample) Key() string { return s.Name + s.Labels }

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if i > 0 {
			ok = ok || (c >= '0' && c <= '9')
		}
		if !ok {
			return false
		}
	}
	return true
}

var validTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true,
}

// ParseMetrics strictly parses Prometheus text exposition, returning
// samples keyed by name+labels. It rejects malformed metric names, label
// syntax, values, TYPE lines, samples of a family appearing before its
// TYPE line, and duplicate samples — the failure modes a drifting
// renderer would produce.
func ParseMetrics(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	typed := map[string]string{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineno, line)
				}
				if !validName(fields[2]) {
					return nil, fmt.Errorf("line %d: invalid metric name %q in TYPE line", lineno, fields[2])
				}
				if !validTypes[fields[3]] {
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineno, fields[3])
				}
				if _, dup := typed[fields[2]]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE line for %q", lineno, fields[2])
				}
				typed[fields[2]] = fields[3]
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineno, err)
		}
		// A typed family must declare itself before its first sample.
		// _bucket/_sum/_count samples belong to the family they suffix
		// (histograms, and the _sum/_count aggregates of gauge series).
		base := s.Name
		if _, ok := typed[base]; !ok {
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if trimmed := strings.TrimSuffix(s.Name, suf); trimmed != s.Name {
					if _, ok := typed[trimmed]; ok {
						base = trimmed
						break
					}
				}
			}
		}
		if _, ok := typed[base]; !ok {
			return nil, fmt.Errorf("line %d: sample %q before its TYPE line", lineno, s.Name)
		}
		if _, dup := out[s.Key()]; dup {
			return nil, fmt.Errorf("line %d: duplicate sample %q", lineno, s.Key())
		}
		out[s.Key()] = s.Value
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseSample parses `name[{labels}] value [timestamp]`.
func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	// Name runs to '{' or whitespace.
	end := strings.IndexAny(rest, "{ \t")
	if end < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = rest[:end]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[end:]
	if strings.HasPrefix(rest, "{") {
		close := parseLabelBlock(rest)
		if close < 0 {
			return s, fmt.Errorf("malformed label block in %q", line)
		}
		s.Labels = rest[:close+1]
		rest = rest[close+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("malformed sample value in %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return s, nil
}

// parseLabelBlock validates a `{k="v",...}` block starting at s[0]=='{'
// and returns the index of its closing brace, or -1 when malformed.
func parseLabelBlock(s string) int {
	i := 1
	for {
		if i < len(s) && s[i] == '}' {
			return i
		}
		// label name
		start := i
		for i < len(s) && (s[i] == '_' || (s[i] >= 'a' && s[i] <= 'z') || (s[i] >= 'A' && s[i] <= 'Z') || (i > start && s[i] >= '0' && s[i] <= '9')) {
			i++
		}
		if i == start || i >= len(s) || s[i] != '=' {
			return -1
		}
		i++
		if i >= len(s) || s[i] != '"' {
			return -1
		}
		i++
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				i++
			}
			i++
		}
		if i >= len(s) {
			return -1
		}
		i++ // closing quote
		if i < len(s) && s[i] == ',' {
			i++
			continue
		}
		if i < len(s) && s[i] == '}' {
			return i
		}
		return -1
	}
}
