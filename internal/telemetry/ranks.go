// Rank liveness registry: the driver-side federation point for child
// rank processes. The socket transport (internal/dist/net) registers
// every spawned rank, heartbeats it on each successful sync ping or
// collective ack, and marks it dead when its monitor reaps the process
// — so the parent's /healthz answers "are all my ranks alive" (503 on a
// dead rank) without scraping the children. Unlike the series registry
// this is not gated on Active(): liveness must be current the moment a
// listener attaches.
package telemetry

import (
	"sort"
	"sync"
	"time"
)

// RankHealth is one rank's liveness entry in the /healthz rollup.
type RankHealth struct {
	Rank int  `json:"rank"`
	Up   bool `json:"up"`
	// LastHeartbeatAgeSeconds is the age of the newest heartbeat
	// (sync ping or collective ack) at snapshot time.
	LastHeartbeatAgeSeconds float64 `json:"last_heartbeat_age_seconds"`
	// Err is the monitor's reason when the rank is down.
	Err string `json:"err,omitempty"`
}

var rankReg struct {
	mu sync.Mutex
	m  map[int]*rankState
}

type rankState struct {
	up   bool
	last time.Time
	err  string
}

// RankHeartbeat records that rank is alive right now, registering it on
// first call.
func RankHeartbeat(rank int) {
	rankReg.mu.Lock()
	defer rankReg.mu.Unlock()
	if rankReg.m == nil {
		rankReg.m = map[int]*rankState{}
	}
	st := rankReg.m[rank]
	if st == nil {
		st = &rankState{}
		rankReg.m[rank] = st
	}
	st.up = true
	st.last = time.Now()
	st.err = ""
}

// MarkRankDead records that rank's process is gone; msg is the
// monitor's reason ("rank 2 died: signal: killed"). The entry stays
// down until ResetRanks.
func MarkRankDead(rank int, msg string) {
	rankReg.mu.Lock()
	defer rankReg.mu.Unlock()
	if rankReg.m == nil {
		rankReg.m = map[int]*rankState{}
	}
	st := rankReg.m[rank]
	if st == nil {
		st = &rankState{}
		rankReg.m[rank] = st
	}
	st.up = false
	st.err = msg
}

// ResetRanks clears the registry (a transport closing cleanly, or test
// isolation). Called from Reset.
func ResetRanks() {
	rankReg.mu.Lock()
	rankReg.m = nil
	rankReg.mu.Unlock()
}

// RankHealths snapshots the registry sorted by rank; nil when no ranks
// were ever registered (single-process run).
func RankHealths() []RankHealth {
	rankReg.mu.Lock()
	defer rankReg.mu.Unlock()
	if len(rankReg.m) == 0 {
		return nil
	}
	now := time.Now()
	out := make([]RankHealth, 0, len(rankReg.m))
	for r, st := range rankReg.m {
		h := RankHealth{Rank: r, Up: st.up, Err: st.err}
		if !st.last.IsZero() {
			h.LastHeartbeatAgeSeconds = now.Sub(st.last).Seconds()
		}
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}
